package depsense

// Golden regression fixture: a seeded synthetic world, the EM-Ext estimate
// on it, and its exact error bound, frozen under testdata/. Any numeric
// drift in the estimator or the bound — an accidental reordering of a
// floating-point reduction, a changed default — fails this test. JSON's
// shortest-round-trip float encoding makes the comparison bit-exact.
//
// Regenerate deliberately with:
//
//	go test -run TestGoldenRegression -update .

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"depsense/internal/randutil"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures")

type goldenFixture struct {
	Posterior     []float64   `json:"posterior"`
	LogLikelihood float64     `json:"logLikelihood"`
	Iterations    int         `json:"iterations"`
	Params        *Params     `json:"params"`
	ExactBound    BoundResult `json:"exactBound"`
}

func computeGolden(workers int) (*goldenFixture, error) {
	cfg := DefaultSyntheticConfig()
	cfg.Sources = 12
	cfg.Assertions = 40
	w, err := GenerateSynthetic(cfg, randutil.New(2026))
	if err != nil {
		return nil, err
	}
	res, err := NewEMExt(EMOptions{Seed: 9, Workers: workers}).Run(w.Dataset)
	if err != nil {
		return nil, err
	}
	b, err := ErrorBound(w.Dataset, w.TrueParams, BoundOptions{
		Method:  BoundExact,
		Workers: workers,
	}, randutil.New(1))
	if err != nil {
		return nil, err
	}
	return &goldenFixture{
		Posterior:     res.Posterior,
		LogLikelihood: res.LogLikelihood,
		Iterations:    res.Iterations,
		Params:        res.Params,
		ExactBound:    b,
	}, nil
}

func TestGoldenRegression(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	for _, workers := range []int{1, 4} {
		g, err := computeGolden(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')

		if *updateGolden {
			if workers != 1 {
				continue // one canonical fixture; workers=4 must match it below
			}
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s", path)
			continue
		}

		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture (regenerate with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: output drifted from %s\n%s\nregenerate deliberately with -update",
				workers, path, diffHint(want, got))
		}
	}
}

// diffHint locates the first differing line so drift reports are readable
// without an external diff tool.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  fixture: %s\n  current: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: fixture %d, current %d", len(wl), len(gl))
}
