// Breakingnews: the full empirical pipeline on a simulated breaking-news
// event. A Table III-style Twitter stream (reduced scale) flows through the
// Apollo pipeline — tweet clustering, dependency derivation, fact-finding —
// with all seven algorithms of Fig. 11, and the simulated graders score
// each algorithm's top-ranked assertions.
//
//	go run ./examples/breakingnews
package main

import (
	"fmt"
	"log"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/grader"
	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 1/5-scale Paris-Attack-like event: ~7.7k sources, ~4.7k assertions.
	scenario := twittersim.Small("Paris Attack", 5)
	world, err := twittersim.Generate(scenario, randutil.New(2015))
	if err != nil {
		return err
	}
	fmt.Printf("simulated stream: %+v\n\n", world.Summarize())

	msgs := make([]apollo.Message, len(world.Tweets))
	for i, t := range world.Tweets {
		msgs[i] = apollo.Message{Source: t.Source, Time: int64(t.ID), Text: t.Text}
	}
	input := apollo.Input{
		NumSources: scenario.Sources,
		Messages:   msgs,
		Graph:      world.Graph,
	}

	const topK = 100
	fmt.Printf("top-%d graded accuracy, #True/(#True+#False+#Opinion):\n", topK)
	var best *apollo.Output
	for _, alg := range baselines.All(1) {
		out, err := apollo.Run(input, alg, apollo.Options{TopK: topK})
		if err != nil {
			return fmt.Errorf("%s: %w", alg.Name(), err)
		}
		labels, err := grader.Grade(out.MessageAssertion, world.Tweets, world.Kinds)
		if err != nil {
			return err
		}
		score, err := grader.ScoreTopK(out.Ranked, labels)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s %.3f  (True=%d False=%d Opinion=%d)\n",
			alg.Name(), score.Accuracy(), score.True, score.False, score.Opinion)
		if alg.Name() == "EM-Ext" {
			best = out
		}
	}

	fmt.Println("\nEM-Ext's five most credible assertions:")
	for rank, c := range best.Ranked[:5] {
		fmt.Printf("  %d. p=%.4f %q\n", rank+1, best.Result.Posterior[c], best.RepresentativeText[c])
	}
	return nil
}
