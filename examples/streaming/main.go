// Streaming: incremental fact-finding over a tweet stream arriving in
// batches, the extension direction of the paper's reference [21]. A
// simulated breaking-news stream is replayed hour by hour; after each batch
// the estimator refits from a warm start and we watch the top assertions
// and the rumor posteriors evolve as evidence accumulates.
//
// The replay runs under a cancellable run-context (Ctrl-C, or the demo's
// own mid-stream cancellation of the final batch): a cancelled refit
// returns within one EM iteration, the estimator keeps the last completed
// fit, and the ranking below is served from that state — graceful
// degradation rather than a torn estimate.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"depsense/internal/core"
	"depsense/internal/grader"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
	"depsense/internal/stream"
	"depsense/internal/twittersim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	sc := twittersim.Small("Ukraine", 10)
	world, err := twittersim.Generate(sc, randutil.New(99))
	if err != nil {
		return err
	}
	fmt.Printf("stream: %+v\n\n", world.Summarize())

	est := stream.New(stream.Options{EM: core.Options{Seed: 7}})
	// The follow graph is observed up front (it comes from the account
	// relationships, not the claim stream).
	for i := 0; i < world.Graph.N(); i++ {
		for _, anc := range world.Graph.Ancestors(i) {
			if err := est.ObserveFollow(i, anc); err != nil {
				return err
			}
		}
	}

	// Replay the stream in six batches ("hours"). Tweets already carry
	// ground-truth assertion ids here; a production deployment would
	// cluster text first (see examples/breakingnews).
	events := world.Events()
	const batches = 6
	per := (len(events) + batches - 1) / batches
	for b := 0; b < batches; b++ {
		lo, hi := b*per, min((b+1)*per, len(events))
		if lo >= hi {
			break
		}
		batchCtx := ctx
		if b == batches-1 {
			// Demonstrate graceful mid-stream cancellation: cancel the
			// final batch's refit from its own iteration hook, as if the
			// operator hit Ctrl-C while hour 6 was fitting.
			var cancel context.CancelFunc
			batchCtx, cancel = context.WithCancel(ctx)
			defer cancel()
			batchCtx = runctx.WithHook(batchCtx, func(it runctx.Iteration) {
				if it.N >= 2 {
					cancel()
				}
			})
		}
		res, err := est.AddBatchContext(batchCtx, events[lo:hi])
		if reason := runctx.Reason(err); reason != "" {
			partial := 0
			if res != nil {
				partial = res.Iterations
			}
			fmt.Printf("hour %d: refit %s after %d iterations — serving the hour-%d estimate instead\n",
				b+1, reason, partial, b)
			continue
		}
		if err != nil {
			return err
		}
		st := est.Stats()
		correct, graded := 0, 0
		for j, p := range res.Posterior {
			if j >= len(world.Kinds) || world.Kinds[j] == twittersim.KindOpinion {
				continue
			}
			graded++
			if (p > 0.5) == (world.Kinds[j] == twittersim.KindTrue) {
				correct++
			}
		}
		fmt.Printf("hour %d: %4d claims, %4d assertions | EM iters=%2d | factual accuracy %.1f%%\n",
			b+1, st.Claims, st.Assertions, res.Iterations, 100*float64(correct)/float64(graded))
	}

	// Final ranking, graded against ground truth.
	res, err := est.Result()
	if err != nil {
		return err
	}
	labels := world.Kinds
	top := res.TopK(10)
	fmt.Println("\nfinal top 10:")
	for rank, j := range top {
		label := "?"
		if j < len(labels) {
			label = labels[j].String()
		}
		fmt.Printf("  %2d. p=%.3f [%s] %v\n", rank+1, res.Posterior[j], label, world.AssertionTokens[j])
	}
	score, err := grader.ScoreTopK(top, labels)
	if err != nil {
		return err
	}
	fmt.Printf("top-10 accuracy: %.2f\n", score.Accuracy())
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
