// Quickstart: build a source-claim matrix with the claims.Builder, run the
// dependency-aware EM-Ext estimator, and print per-assertion truth
// posteriors alongside the estimated source parameters.
//
// Three independent reporters (S0-S2) observe 40 events, half of which
// really happened; three followers (S3-S5) mostly repeat whatever S0 says —
// including its mistakes. A dependency-blind fact-finder over-counts those
// repeats; EM-Ext models them through the dependent channel.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
	"depsense/internal/stats"
)

const (
	numSources    = 6
	numAssertions = 40
	numTrue       = 20
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := randutil.New(7)
	truth := make([]bool, numAssertions)
	for j := 0; j < numTrue; j++ {
		truth[j] = true
	}
	rng.Shuffle(numAssertions, func(a, b int) { truth[a], truth[b] = truth[b], truth[a] })

	b := claims.NewBuilder(numSources, numAssertions)

	// Independent reporters: claim true events often, false ones rarely.
	reporterTrueRate := [...]float64{0.8, 0.7, 0.6}
	reporterFalseRate := [...]float64{0.15, 0.25, 0.2}
	s0Claims := make([]bool, numAssertions)
	for i := 0; i < 3; i++ {
		for j := 0; j < numAssertions; j++ {
			p := reporterFalseRate[i]
			if truth[j] {
				p = reporterTrueRate[i]
			}
			if rng.Float64() < p {
				b.AddClaim(i, j, false)
				if i == 0 {
					s0Claims[j] = true
				}
			}
		}
	}
	// Followers of S0: repeat half of what S0 says, true or not. Pairs
	// where S0 claimed but the follower stayed silent are marked
	// silent-dependent — the follower saw the claim and let it pass.
	for i := 3; i < numSources; i++ {
		for j := 0; j < numAssertions; j++ {
			if !s0Claims[j] {
				continue
			}
			if rng.Float64() < 0.5 {
				b.AddClaim(i, j, true)
			} else {
				b.MarkSilentDependent(i, j)
			}
		}
	}

	ds, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Println("dataset:", ds.Summarize())

	// An IterationHook on the run context observes the fit live: one call
	// per EM iteration with the current log-likelihood. The same context
	// would also carry a deadline or cancellation in a service setting.
	fmt.Println("\nEM-Ext progress:")
	ctx := runctx.WithHook(context.Background(), func(it runctx.Iteration) {
		if it.N%5 == 0 || it.Done {
			fmt.Printf("  iter %2d  log-likelihood=%.2f  (%s)\n", it.N, it.LogLikelihood, it.Elapsed.Round(10*time.Microsecond))
		}
	})
	est := &core.EMExt{Opts: core.Options{Seed: 42}}
	res, err := est.RunContext(ctx, ds)
	if err != nil {
		return err
	}
	fmt.Printf("\nconverged=%v after %d iterations, log-likelihood=%.2f, ẑ=%.3f\n",
		res.Converged, res.Iterations, res.LogLikelihood, res.Params.Z)

	cl, err := stats.Classify(res.Decisions(0.5), truth)
	if err != nil {
		return err
	}
	fmt.Printf("accuracy vs ground truth: %.1f%% (FP=%.2f FN=%.2f)\n",
		100*cl.Accuracy, cl.FalsePosRate, cl.FalseNegRate)

	fmt.Println("\nfirst ten assertion posteriors:")
	for j := 0; j < 10; j++ {
		fmt.Printf("  C%-2d p=%.3f  truth=%-5v  (%d claims)\n",
			j, res.Posterior[j], truth[j], len(ds.Claimants(j)))
	}
	fmt.Println("\nmost credible assertions:", res.TopK(5))
	fmt.Println("\nestimated source channels (a/b independent, f/g dependent):")
	for i, s := range res.Params.Sources {
		fmt.Printf("  S%d a=%.3f b=%.3f f=%.3f g=%.3f\n", i, s.A, s.B, s.F, s.G)
	}
	return nil
}
