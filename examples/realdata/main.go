// Realdata: fact-finding on a real-world Twitter archive format. A small
// embedded archive in the Twitter API v1.1 JSONL format (the format of the
// paper's 2015 datasets) flows through ingestion — dense source ids, a
// follow graph from retweet edges, chronological ordering — and the full
// pipeline, finishing with an HTML report on disk.
//
//	go run ./examples/realdata
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"depsense/internal/apollo"
	"depsense/internal/core"
	"depsense/internal/report"
	"depsense/internal/tweetjson"
)

// archive is a miniature incident stream: two reporters, a news desk, a
// repeat offender spreading a rumor, and retweeters of both camps.
const archive = `
{"id_str":"1","text":"witness14 reported explosion near station3 n88 #metro","created_at":"Sat Mar 14 08:00:00 +0000 2015","user":{"id_str":"100","screen_name":"eyewitness_ann"}}
{"id_str":"2","text":"official2 confirmed evacuation near station3 n12 #metro","created_at":"Sat Mar 14 08:04:00 +0000 2015","user":{"id_str":"101","screen_name":"city_desk"}}
{"id_str":"3","text":"witness14 reported explosion near station3 n88 #metro update","created_at":"Sat Mar 14 08:06:00 +0000 2015","user":{"id_str":"102","screen_name":"marco_t"}}
{"id_str":"4","text":"resident9 spotted zombies near plaza7 n5 #metro","created_at":"Sat Mar 14 08:10:00 +0000 2015","user":{"id_str":"103","screen_name":"chaos_andy"}}
{"id_str":"5","text":"RT @chaos_andy: resident9 spotted zombies near plaza7 n5 #metro","created_at":"Sat Mar 14 08:11:00 +0000 2015","user":{"id_str":"104","screen_name":"bot_aa"},"retweeted_status":{"id_str":"4","user":{"id_str":"103","screen_name":"chaos_andy"}}}
{"id_str":"6","text":"RT @chaos_andy: resident9 spotted zombies near plaza7 n5 #metro","created_at":"Sat Mar 14 08:12:00 +0000 2015","user":{"id_str":"105","screen_name":"bot_bb"},"retweeted_status":{"id_str":"4","user":{"id_str":"103","screen_name":"chaos_andy"}}}
{"id_str":"7","text":"RT @eyewitness_ann: witness14 reported explosion near station3 n88 #metro","created_at":"Sat Mar 14 08:13:00 +0000 2015","user":{"id_str":"106","screen_name":"paula_r"},"retweeted_status":{"id_str":"1","user":{"id_str":"100","screen_name":"eyewitness_ann"}}}
{"id_str":"8","text":"official2 confirmed evacuation near station3 n12 #metro","created_at":"Sat Mar 14 08:15:00 +0000 2015","user":{"id_str":"107","screen_name":"metro_watch"}}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tweets, err := tweetjson.Parse(strings.NewReader(archive))
	if err != nil {
		return err
	}
	input, mapping, err := tweetjson.ToPipeline(tweets)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d tweets from %d accounts, %d retweet edges\n",
		len(input.Messages), input.NumSources, input.Graph.NumEdges())

	finder := &core.EMExt{Opts: core.Options{Seed: 3}}
	out, err := apollo.Run(input, finder, apollo.Options{TopK: 10})
	if err != nil {
		return err
	}
	fmt.Println("derived:", out.Dataset.Summarize())
	fmt.Println("\nranked assertions:")
	for rank, c := range out.Ranked {
		fmt.Printf("  %d. p=%.3f %s\n", rank+1, out.Result.Posterior[c], out.RepresentativeText[c])
	}

	f, err := os.CreateTemp("", "depsense-report-*.html")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.Render(f, report.Input{
		Title:       "Metro incident",
		Algorithm:   finder.Name(),
		Pipeline:    out,
		SourceNames: mapping.ScreenNames,
	}); err != nil {
		return err
	}
	fmt.Println("\nHTML report:", f.Name())
	return nil
}
