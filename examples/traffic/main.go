// Traffic: the running example of Section II-A (Figure 1). John follows
// Sally but not Heather; all three tweet about congested streets. The
// example builds the timestamped claim log, derives the source-claim matrix
// and dependency indicators exactly as the paper's Figure 1 does, and runs
// EM-Ext over a larger simulated commute season built on the same follow
// graph.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/randutil"
)

const (
	john = iota
	sally
	heather
	numCommuters
)

var names = [...]string{"John", "Sally", "Heather"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	graph := depgraph.NewGraph(numCommuters)
	if err := graph.AddFollow(john, sally); err != nil { // John follows Sally
		return err
	}

	// The morning of Figure 1: two assertions, four tweets.
	const (
		mainStreet    = 0 // "Main Street, Urbana, IL is congested"
		universityAve = 1 // "University Ave., Urbana, IL is congested"
	)
	events := []depgraph.Event{
		{Source: sally, Assertion: mainStreet, Time: 1},
		{Source: heather, Assertion: universityAve, Time: 1},
		{Source: john, Assertion: mainStreet, Time: 2},    // repeat of Sally: dependent
		{Source: john, Assertion: universityAve, Time: 3}, // John doesn't follow Heather: independent
	}
	ds, err := depgraph.BuildDataset(graph, events, 2)
	if err != nil {
		return err
	}
	fmt.Println("Figure 1 dependency indicators:")
	for _, e := range events {
		fmt.Printf("  %-8s asserts C%d at t%d  -> D=%v\n",
			names[e.Source], e.Assertion+1, e.Time, ds.Dependent(e.Source, e.Assertion))
	}

	// A full commute season on the same follow graph: 120 street-condition
	// assertions (60 genuinely congested), with Sally reliable, Heather
	// very reliable, and John mostly repeating whatever Sally says.
	const (
		numAssertions = 120
		numTrue       = 60
	)
	rng := randutil.New(7)
	congested := make([]bool, numAssertions)
	for j := 0; j < numTrue; j++ {
		congested[j] = true
	}
	rng.Shuffle(numAssertions, func(a, b int) {
		congested[a], congested[b] = congested[b], congested[a]
	})

	var season []depgraph.Event
	now := int64(0)
	claim := func(src, assertion int) {
		now++
		season = append(season, depgraph.Event{Source: src, Assertion: assertion, Time: now})
	}
	for j := 0; j < numAssertions; j++ {
		// Sally: reports congested streets 70% of the time, clear ones 15%.
		sallyClaimed := false
		if p := 0.15; congested[j] && randutil.Bernoulli(rng, 0.7) || !congested[j] && randutil.Bernoulli(rng, p) {
			claim(sally, j)
			sallyClaimed = true
		}
		// Heather: 80% / 5%.
		if congested[j] && randutil.Bernoulli(rng, 0.8) || !congested[j] && randutil.Bernoulli(rng, 0.05) {
			claim(heather, j)
		}
		// John: repeats Sally 60% of the time regardless of the street,
		// and occasionally reports independently (40% / 10%).
		switch {
		case sallyClaimed && randutil.Bernoulli(rng, 0.6):
			claim(john, j)
		case congested[j] && randutil.Bernoulli(rng, 0.4):
			claim(john, j)
		case !congested[j] && randutil.Bernoulli(rng, 0.1):
			claim(john, j)
		}
	}
	seasonDS, err := depgraph.BuildDataset(graph, season, numAssertions)
	if err != nil {
		return err
	}
	fmt.Println("\ncommute season:", seasonDS.Summarize())

	res, err := (&core.EMExt{Opts: core.Options{Seed: 1}}).Run(seasonDS)
	if err != nil {
		return err
	}
	correct := 0
	for j, p := range res.Posterior {
		if (p > 0.5) == congested[j] {
			correct++
		}
	}
	fmt.Printf("EM-Ext accuracy over the season: %.1f%% (%d/%d assertions)\n",
		100*float64(correct)/numAssertions, correct, numAssertions)
	for i, s := range res.Params.Sources {
		fmt.Printf("  %-8s a=%.2f b=%.2f f=%.2f g=%.2f\n", names[i], s.A, s.B, s.F, s.G)
	}
	return nil
}
