// Errorbound: the fundamental error bound of Section III, three ways.
// First the paper's Table I walk-through (expected Err = 26.98%), then an
// exact-vs-Gibbs comparison on a synthetic world (the Figs. 3-5 setup), and
// finally the point of the whole exercise: how close the practical EM-Ext
// estimator gets to the optimal-estimator bound as data grows (Fig. 8's
// message).
//
//	go run ./examples/errorbound
package main

import (
	"fmt"
	"log"

	"depsense/internal/bound"
	"depsense/internal/core"
	"depsense/internal/eval"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Table I: the paper's walk-through example.
	t1, err := eval.TableI()
	if err != nil {
		return err
	}
	fmt.Printf("Table I walk-through: Err = %.8f (paper reports %.8f)\n\n",
		t1.Result.Err, t1.PaperErr)

	// 2. Exact enumeration vs Gibbs approximation on one synthetic world.
	cfg := synthetic.DefaultConfig() // n=20: exact = 2^20 patterns/column
	rng := randutil.New(99)
	world, err := synthetic.Generate(cfg, rng)
	if err != nil {
		return err
	}
	fmt.Println("synthetic world:", world.Dataset.Summarize())
	exact, err := bound.ForDataset(world.Dataset, world.TrueParams,
		bound.DatasetOptions{Method: bound.MethodExact, MaxColumns: 10}, randutil.New(5))
	if err != nil {
		return err
	}
	approx, err := bound.ForDataset(world.Dataset, world.TrueParams,
		bound.DatasetOptions{Method: bound.MethodApprox, MaxColumns: 10}, randutil.New(5))
	if err != nil {
		return err
	}
	fmt.Printf("exact bound:  Err=%.4f (FP=%.4f FN=%.4f)\n", exact.Err, exact.FalsePos, exact.FalseNeg)
	fmt.Printf("approx bound: Err=%.4f (FP=%.4f FN=%.4f), |diff|=%.4f\n\n",
		approx.Err, approx.FalsePos, approx.FalseNeg, abs(exact.Err-approx.Err))

	// 3. EM-Ext vs the bound as the number of assertions grows.
	fmt.Println("EM-Ext accuracy vs the optimal bound (n=100, 10 runs each):")
	for _, m := range []int{20, 50, 100, 200} {
		c := synthetic.EstimatorConfig()
		c.Sources = 100
		c.Assertions = m
		var acc, opt stats.Series
		for r := 0; r < 10; r++ {
			w, err := synthetic.Generate(c, randutil.New(int64(1000+r)))
			if err != nil {
				return err
			}
			res, err := (&core.EMExt{Opts: core.Options{Seed: int64(r)}}).Run(w.Dataset)
			if err != nil {
				return err
			}
			cl, err := stats.Classify(res.Decisions(0.5), w.Truth)
			if err != nil {
				return err
			}
			acc.Add(cl.Accuracy)
			br, err := bound.ForDataset(w.Dataset, w.TrueParams, bound.DatasetOptions{
				Method:     bound.MethodApprox,
				MaxColumns: 8,
				Approx:     bound.ApproxOptions{MaxSweeps: 2000},
			}, randutil.New(int64(r)))
			if err != nil {
				return err
			}
			opt.Add(1 - br.Err)
		}
		fmt.Printf("  m=%3d  EM-Ext=%.3f  Optimal=%.3f  gap=%.3f\n",
			m, acc.Mean(), opt.Mean(), opt.Mean()-acc.Mean())
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
