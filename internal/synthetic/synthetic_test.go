package synthetic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"depsense/internal/randutil"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Sources != 20 || cfg.Assertions != 50 {
		t.Fatalf("defaults n=%d m=%d", cfg.Sources, cfg.Assertions)
	}
	if cfg.Trees.Lo != 8 || cfg.Trees.Hi != 10 {
		t.Fatalf("tree range %+v", cfg.Trees)
	}
	if cfg.PIndepT.Lo != 7.0/12.0 || cfg.PIndepT.Hi != 0.75 {
		t.Fatalf("PIndepT %+v", cfg.PIndepT)
	}
	if EstimatorConfig().Sources != 50 {
		t.Fatal("estimator config n != 50")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Sources = 0 },
		func(c *Config) { c.Assertions = 1 },
		func(c *Config) { c.Trees = IntRange{Lo: 0, Hi: 3} },
		func(c *Config) { c.TrueRatio = Range{Lo: 0.8, Hi: 0.2} },
		func(c *Config) { c.POn = Range{Lo: -0.1, Hi: 0.5} },
		func(c *Config) { c.PDepT = Range{Lo: 0.5, Hi: 1.5} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Generate(cfg, randutil.New(1)); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestOddsToProb(t *testing.T) {
	if math.Abs(OddsToProb(1)-0.5) > 1e-12 {
		t.Fatal("odds 1 != prob 0.5")
	}
	if math.Abs(OddsToProb(2)-2.0/3.0) > 1e-12 {
		t.Fatal("odds 2 != prob 2/3")
	}
}

func TestWorldStructuralInvariants(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		cfg := DefaultConfig()
		rng := randutil.New(seed)
		w, err := Generate(cfg, rng)
		if err != nil {
			return false
		}
		ds := w.Dataset
		if ds.N() != cfg.Sources || ds.M() != cfg.Assertions {
			return false
		}
		if len(w.Truth) != ds.M() || len(w.Profiles) != ds.N() {
			return false
		}
		if w.Trees < cfg.Trees.Lo || w.Trees > cfg.Trees.Hi {
			return false
		}
		// Roots never make dependent claims and never appear silent-dependent.
		for i := 0; i < ds.N(); i++ {
			if w.IsRoot[i] && (len(ds.ClaimsD1(i)) > 0 || len(ds.SilentD1(i)) > 0) {
				return false
			}
		}
		// Every leaf pair with a root claim is dependent (claimed or
		// silent); no dependent pair exists without a root claim.
		for i := 0; i < ds.N(); i++ {
			if w.IsRoot[i] {
				continue
			}
			root := w.Graph.Ancestors(i)[0]
			for j := 0; j < ds.M(); j++ {
				rootClaimed := ds.Claimed(root, j)
				if rootClaimed != ds.Dependent(i, j) {
					return false
				}
			}
		}
		// Truth pool size matches the drawn ratio.
		nTrue := 0
		for _, v := range w.Truth {
			if v {
				nTrue++
			}
		}
		return math.Abs(float64(nTrue)/float64(ds.M())-w.TrueRatio) < 1e-9
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrueParamsValid(t *testing.T) {
	w, err := Generate(DefaultConfig(), randutil.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.TrueParams.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, p := range w.Profiles {
		s := w.TrueParams.Sources[i]
		wantA, wantB := IndependentChannel(p)
		if s.A != wantA || s.B != wantB {
			t.Fatalf("source %d channel (a,b) = (%v,%v), want (%v,%v)", i, s.A, s.B, wantA, wantB)
		}
		// Discrimination knob honored for the independent channel.
		if odds := s.A / s.B; math.Abs(odds-p.PIndepT/(1-p.PIndepT)) > 1e-9 {
			t.Fatalf("source %d a/b odds = %v", i, odds)
		}
	}
}

func TestDependentChannelKnob(t *testing.T) {
	p := Profile{POn: 0.6, PDep: 0.5, PIndepT: 2.0 / 3.0, PDepT: 0.5}
	// Raising p_depT must raise f and lower g, at fixed pool share.
	f1, g1 := DependentChannel(p, 0.7)
	p.PDepT = 0.75
	f2, g2 := DependentChannel(p, 0.7)
	if f2 <= f1 || g2 >= g1 {
		t.Fatalf("knob not monotone: f %v->%v, g %v->%v", f1, f2, g1, g2)
	}
	// Repeat volume scales with p_dep.
	p.PDep = 0.25
	f3, g3 := DependentChannel(p, 0.7)
	if f3 >= f2 || g3 >= g2 {
		t.Fatal("p_dep does not scale repeat volume")
	}
	// Degenerate pool shares stay clamped and finite.
	for _, share := range []float64{0, 0.02, 0.98, 1} {
		f, g := DependentChannel(p, share)
		if f <= 0 || f >= 1 || g <= 0 || g >= 1 {
			t.Fatalf("channel out of range at share %v: f=%v g=%v", share, f, g)
		}
	}
}

func TestReproducibility(t *testing.T) {
	a, err := Generate(DefaultConfig(), randutil.New(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(), randutil.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.NumClaims() != b.Dataset.NumClaims() ||
		a.Dataset.NumDependentClaims() != b.Dataset.NumDependentClaims() {
		t.Fatal("same seed generated different datasets")
	}
	for j := range a.Truth {
		if a.Truth[j] != b.Truth[j] {
			t.Fatal("same seed generated different truth")
		}
	}
}

func TestDependentClaimShareIsSubstantial(t *testing.T) {
	// The defaults should produce a dependent-claim share broadly in line
	// with the paper's Twitter datasets (~40%); guard the regime so a
	// refactor cannot silently de-fang the dependency structure.
	var total, dependent int
	for seed := int64(0); seed < 10; seed++ {
		w, err := Generate(EstimatorConfig(), randutil.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		total += w.Dataset.NumClaims()
		dependent += w.Dataset.NumDependentClaims()
	}
	share := float64(dependent) / float64(total)
	if share < 0.2 || share > 0.6 {
		t.Fatalf("dependent claim share = %v, want 0.2-0.6", share)
	}
}

func TestRangeDraw(t *testing.T) {
	rng := randutil.New(1)
	r := Range{Lo: 0.3, Hi: 0.4}
	for i := 0; i < 100; i++ {
		v := r.Draw(rng)
		if v < 0.3 || v >= 0.4 {
			t.Fatalf("draw %v out of range", v)
		}
	}
	if Fixed(0.7).Draw(rng) != 0.7 {
		t.Fatal("Fixed not fixed")
	}
	ir := IntRange{Lo: 2, Hi: 4}
	for i := 0; i < 100; i++ {
		v := ir.Draw(rng)
		if v < 2 || v > 4 {
			t.Fatalf("int draw %d out of range", v)
		}
	}
	if FixedInt(3).Draw(rng) != 3 {
		t.Fatal("FixedInt not fixed")
	}
}

func TestDeepForestWorldInvariants(t *testing.T) {
	cfg := EstimatorConfig()
	cfg.Trees = FixedInt(5)
	cfg.Depth = IntRange{Lo: 4, Hi: 4}
	w, err := Generate(cfg, randutil.New(13))
	if err != nil {
		t.Fatal(err)
	}
	// Mid-level sources exist: some source is both a child and a parent.
	isParent := make([]bool, cfg.Sources)
	midLevel := false
	for i, p := range w.Parent {
		if p >= 0 {
			isParent[p] = true
		}
		_ = i
	}
	for i, p := range w.Parent {
		if p >= 0 && isParent[i] {
			midLevel = true
		}
	}
	if !midLevel {
		t.Fatal("depth-4 forest has no mid-level sources")
	}
	// Dependency invariant at any depth: a pair is dependent exactly when
	// the source's parent claimed the assertion.
	ds := w.Dataset
	for i, p := range w.Parent {
		if p < 0 {
			continue
		}
		for j := 0; j < ds.M(); j++ {
			if ds.Claimed(p, j) != ds.Dependent(i, j) {
				t.Fatalf("dependency mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDepthDefaultIsLevelTwo(t *testing.T) {
	w, err := Generate(DefaultConfig(), randutil.New(14))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range w.Parent {
		if p >= 0 && w.Parent[p] >= 0 {
			t.Fatalf("source %d has a grandparent under the default depth", i)
		}
	}
}

func TestDepthValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = IntRange{Lo: 1, Hi: 3}
	if _, err := Generate(cfg, randutil.New(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatal("depth 1 accepted")
	}
}
