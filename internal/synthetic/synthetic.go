// Package synthetic implements the paper's simulation data generator
// (Section V-A). Sources are arranged in a forest of τ level-two dependency
// trees; assertions are split into a true pool and a false pool by the ratio
// d; and each source is personalized by a participation probability p_on and
// reliabilities p_indepT / p_depT.
//
// Claims are drawn directly from the paper's channel model of Section II,
// with per-source channel parameters derived from the behavioral knobs.
// The independent channel is
//
//	a_i = p_on·p_indepT        b_i = p_on·(1-p_indepT)
//
// so p_indepT/(1-p_indepT) is exactly the channel's true/false
// discrimination odds — the paper's stated tuning knob — and p_on scales
// original-reporting volume.
//
// The dependent channel preserves the paper's pool-picking semantics:
// p_depT is the probability that a claim a leaf repeats is true, i.e. the
// MARGINAL truth odds of dependent claims are p_depT/(1-p_depT) (the Fig. 10
// knob). Because a root's claimed pool is itself truth-enriched (roots claim
// true assertions a/b ≈ 2× more often), the implied PER-PAIR channel is
//
//	f_i = 2·p_dep·q          g_i = 2·p_dep·(1-q)
//	q/(1-q) = [p_depT/(1-p_depT)] · [(1-dshare)/dshare]
//
// where dshare is the fraction of the root's claims that are true. At the
// default p_depT ≈ 0.5 this makes a repeat per-pair evidence of falsehood
// (rumors spread through dependent claims) even though dependent claims are
// marginally 50/50 — precisely the structure a dependency-aware estimator
// can exploit and an independence-assuming one double-counts. p_dep scales
// repeat volume.
//
// Root sources emit through the independent channel on every assertion.
// A leaf pair (i, j) is dependent exactly when i's root claimed j — the
// structural definition of Section II-A — and the leaf then emits through
// the (f, g) channel whether it repeats or stays silent; all other leaf
// pairs go through the independent channel. Generation order (roots first)
// guarantees every dependent claim repeats an earlier ancestor claim.
package synthetic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"depsense/internal/claims"
	"depsense/internal/depgraph"
	"depsense/internal/model"
	"depsense/internal/randutil"
)

// Range is a closed interval from which per-dataset or per-source values
// are drawn uniformly. Lo == Hi pins the value.
type Range struct {
	Lo, Hi float64
}

// Draw samples the range.
func (r Range) Draw(rng *rand.Rand) float64 { return randutil.Uniform(rng, r.Lo, r.Hi) }

// Fixed returns a degenerate range pinning v.
func Fixed(v float64) Range { return Range{Lo: v, Hi: v} }

// IntRange is a closed integer interval.
type IntRange struct {
	Lo, Hi int
}

// Draw samples the range.
func (r IntRange) Draw(rng *rand.Rand) int { return randutil.UniformInt(rng, r.Lo, r.Hi) }

// FixedInt returns a degenerate integer range.
func FixedInt(v int) IntRange { return IntRange{Lo: v, Hi: v} }

// Config parameterizes the generator. DefaultConfig reproduces the paper's
// default setting.
type Config struct {
	// Sources is n, the total number of sources.
	Sources int
	// Assertions is m, the total number of assertions.
	Assertions int
	// Trees is τ, the number of dependency trees; drawn once per dataset.
	Trees IntRange
	// Depth is the trees' maximum depth. The paper's structure is
	// level-two (depth 2, the zero-value default); larger depths model
	// repeat cascades (retweets of retweets), an extension beyond the
	// paper's simulations. Each non-root source depends on its direct
	// parent.
	Depth IntRange
	// TrueRatio is d, the fraction of assertions placed in the true pool;
	// drawn once per dataset.
	TrueRatio Range
	// POn is each source's participation scale: the probability the source
	// claims an assertion it would endorse.
	POn Range
	// PDep scales each leaf's repeat volume: the dependent channel claims
	// a root-claimed assertion with probability 2·PDep·PDepT (true) or
	// 2·PDep·(1-PDepT) (false).
	PDep Range
	// PIndepT sets the independent channel's discrimination:
	// a_i/b_i = PIndepT/(1-PIndepT).
	PIndepT Range
	// PDepT sets the dependent channel's discrimination:
	// f_i/g_i = PDepT/(1-PDepT).
	PDepT Range
}

// DefaultConfig returns the paper's default parameters (Section V-A):
// n=20, m=50, p_on ∈ [0.5,0.7], τ ∈ [8,10], p_dep ∈ [0.4,0.6],
// d ∈ [0.55,0.75], p_indepT ∈ [7/12,3/4], p_depT ∈ [0.4,0.6].
func DefaultConfig() Config {
	return Config{
		Sources:    20,
		Assertions: 50,
		Trees:      IntRange{Lo: 8, Hi: 10},
		TrueRatio:  Range{Lo: 0.55, Hi: 0.75},
		POn:        Range{Lo: 0.5, Hi: 0.7},
		PDep:       Range{Lo: 0.4, Hi: 0.6},
		PIndepT:    Range{Lo: 7.0 / 12.0, Hi: 3.0 / 4.0},
		PDepT:      Range{Lo: 0.4, Hi: 0.6},
	}
}

// EstimatorConfig is DefaultConfig with n=50, the default of the estimator
// simulations (Section V-B).
func EstimatorConfig() Config {
	cfg := DefaultConfig()
	cfg.Sources = 50
	return cfg
}

// OddsToProb converts an odds ratio p/(1-p) back to p, the inverse of the
// tuning knob used by Figs. 5 and 10.
func OddsToProb(odds float64) float64 { return odds / (1 + odds) }

// Profile records the behavioral parameters drawn for one source.
type Profile struct {
	POn     float64
	PDep    float64
	PIndepT float64
	PDepT   float64
}

// World is one generated dataset plus everything the evaluation needs: the
// ground truth, the dependency structure, and the generating channel
// parameters.
type World struct {
	Dataset *claims.Dataset
	// Truth[j] is the ground-truth value of assertion j.
	Truth []bool
	// Graph is the dependency forest; IsRoot flags the independent
	// sources and Parent records each source's parent (-1 for roots).
	Graph  *depgraph.Graph
	IsRoot []bool
	Parent []int
	// TrueParams is the channel parameter set θ the claims were drawn
	// from, consumed by the error bound ("Optimal" knows θ exactly).
	TrueParams *model.Params
	// Profiles are the drawn behavioral parameters per source.
	Profiles []Profile
	// TrueRatio is the realized d; Trees the drawn τ.
	TrueRatio float64
	Trees     int
}

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("synthetic: invalid config")

func (c Config) validate() error {
	if c.Sources < 1 {
		return fmt.Errorf("%w: Sources=%d", ErrBadConfig, c.Sources)
	}
	if c.Assertions < 2 {
		return fmt.Errorf("%w: Assertions=%d (need ≥2 for both pools)", ErrBadConfig, c.Assertions)
	}
	if c.Trees.Lo < 1 {
		return fmt.Errorf("%w: Trees.Lo=%d", ErrBadConfig, c.Trees.Lo)
	}
	if c.Depth.Lo != 0 && c.Depth.Lo < 2 {
		return fmt.Errorf("%w: Depth.Lo=%d (must be ≥ 2, or 0 for the default)", ErrBadConfig, c.Depth.Lo)
	}
	for _, r := range [...]struct {
		name string
		r    Range
	}{
		{"TrueRatio", c.TrueRatio}, {"POn", c.POn}, {"PDep", c.PDep},
		{"PIndepT", c.PIndepT}, {"PDepT", c.PDepT},
	} {
		if r.r.Lo < 0 || r.r.Hi > 1 || r.r.Hi < r.r.Lo {
			return fmt.Errorf("%w: range %s = [%v,%v]", ErrBadConfig, r.name, r.r.Lo, r.r.Hi)
		}
	}
	return nil
}

// IndependentChannel derives the independent-channel parameters (a_i, b_i)
// implied by a behavioral profile. The dependent channel additionally
// depends on the truth composition of the root's claims; see DependentChannel.
func IndependentChannel(p Profile) (a, b float64) {
	return model.ClampProb(p.POn * p.PIndepT), model.ClampProb(p.POn * (1 - p.PIndepT))
}

// poolCorrection is the exponent γ applied to the root-pool enrichment when
// deriving the dependent channel. γ = 0 anchors p_depT per pair (f/g =
// odds(p_depT)); γ = 1 anchors it per claim (marginal truth odds of repeats
// = odds(p_depT)), which makes rumor cascades so heavy that aggregate
// support anti-correlates with truth and every vote-anchored estimator
// flips. The half-correction keeps repeats mildly rumor-marking per pair —
// the middle ground the paper's model is built to exploit — while aggregate
// support stays truth-correlated, as in the paper's real Twitter datasets
// (where Voting remains a serviceable baseline, Fig. 11).
const poolCorrection = 0.5

// DependentChannel derives the per-pair dependent-channel parameters
// (f_i, g_i) for a leaf whose root's claimed pool has truth share dshare:
//
//	f = 2·p_dep·q,  g = 2·p_dep·(1-q),
//	q/(1-q) = [p_depT/(1-p_depT)] · [(1-dshare)/dshare]^γ
//
// so p_depT/(1-p_depT) remains the channel's discrimination knob (Fig. 10)
// and p_dep scales repeat volume.
func DependentChannel(p Profile, dshare float64) (f, g float64) {
	// Guard degenerate pools so neither channel parameter collapses.
	if dshare < 0.05 {
		dshare = 0.05
	}
	if dshare > 0.95 {
		dshare = 0.95
	}
	odds := p.PDepT / (1 - p.PDepT) * math.Pow((1-dshare)/dshare, poolCorrection)
	q := odds / (1 + odds)
	return model.ClampProb(2 * p.PDep * q), model.ClampProb(2 * p.PDep * (1 - q))
}

// Generate builds one synthetic world.
func Generate(cfg Config, rng *rand.Rand) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n, m := cfg.Sources, cfg.Assertions
	tau := cfg.Trees.Draw(rng)
	if tau > n {
		tau = n
	}

	// Assertion pools, shuffled so truth is uncorrelated with assertion id.
	d := cfg.TrueRatio.Draw(rng)
	mTrue := int(math.Round(d * float64(m)))
	if mTrue < 1 {
		mTrue = 1
	}
	if mTrue > m-1 {
		mTrue = m - 1
	}
	truth := make([]bool, m)
	for k, j := range randutil.Perm(rng, m) {
		if k < mTrue {
			truth[j] = true
		}
	}

	depth := 2
	if cfg.Depth.Lo >= 2 {
		depth = cfg.Depth.Draw(rng)
	}
	graph, parent, err := depgraph.ForestWithDepth(n, tau, depth)
	if err != nil {
		return nil, err
	}
	isRoot := make([]bool, n)
	for i, p := range parent {
		isRoot[i] = p < 0
	}

	profiles := make([]Profile, n)
	params := model.NewParams(n, float64(mTrue)/float64(m))
	for i := range profiles {
		profiles[i] = Profile{
			POn:     cfg.POn.Draw(rng),
			PDep:    cfg.PDep.Draw(rng),
			PIndepT: cfg.PIndepT.Draw(rng),
			PDepT:   cfg.PDepT.Draw(rng),
		}
		s := &params.Sources[i]
		s.A, s.B = IndependentChannel(profiles[i])
		// Dependent channels are resolved below: for leaves they depend on
		// the realized truth share of the root's claims; for roots the
		// channel never fires.
		s.F, s.G = model.ProbEpsilon, model.ProbEpsilon
	}

	b := claims.NewBuilder(n, m)

	// Sources are generated in id order, which ForestWithDepth guarantees
	// is topological (parents precede children), so a pair (i, j) is
	// dependent exactly when i's parent already claimed j. Roots claim
	// through the independent channel on every assertion; other sources
	// route parent-claimed pairs through the (f, g) channel — whether they
	// repeat or stay silent — and everything else through (a, b).
	claimedBy := make([]map[int]bool, n)
	trueShare := make([]float64, n)
	for i := 0; i < n; i++ {
		claimedBy[i] = make(map[int]bool)
		s := &params.Sources[i]
		dependentOf := func(int) bool { return false }
		if !isRoot[i] {
			p := parent[i]
			s.F, s.G = DependentChannel(profiles[i], trueShare[p])
			dependentOf = func(j int) bool { return claimedBy[p][j] }
		}
		nTrue, nTotal := 0, 0
		for j := 0; j < m; j++ {
			dependent := dependentOf(j)
			var prob float64
			switch {
			case dependent && truth[j]:
				prob = s.F
			case dependent:
				prob = s.G
			case truth[j]:
				prob = s.A
			default:
				prob = s.B
			}
			switch {
			case randutil.Bernoulli(rng, prob):
				b.AddClaim(i, j, dependent)
				claimedBy[i][j] = true
				nTotal++
				if truth[j] {
					nTrue++
				}
			case dependent:
				b.MarkSilentDependent(i, j)
			}
		}
		if nTotal > 0 {
			trueShare[i] = float64(nTrue) / float64(nTotal)
		} else {
			trueShare[i] = float64(mTrue) / float64(m)
		}
	}

	ds, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &World{
		Dataset:    ds,
		Truth:      truth,
		Graph:      graph,
		IsRoot:     isRoot,
		Parent:     parent,
		TrueParams: params,
		Profiles:   profiles,
		TrueRatio:  float64(mTrue) / float64(m),
		Trees:      tau,
	}, nil
}
