package bound

import (
	"context"
	"errors"
	"testing"

	"depsense/internal/randutil"
	"depsense/internal/runctx"
)

// heterogeneousColumn builds a column whose per-source probabilities all
// differ, so any block mis-ordering in the parallel reduction would change
// the floating-point sums and fail the exact-equality assertions below.
func heterogeneousColumn(n int) Column {
	rng := randutil.New(int64(n))
	c := Column{P1: make([]float64, n), P0: make([]float64, n), Z: 0.37}
	for i := 0; i < n; i++ {
		c.P1[i] = randutil.Uniform(rng, 0.5, 0.95)
		c.P0[i] = randutil.Uniform(rng, 0.05, 0.5)
	}
	return c
}

// TestExactWorkersEquivalence: the blocked enumeration must return the same
// Result bit for bit at any worker count, above and below the one-block
// threshold.
func TestExactWorkersEquivalence(t *testing.T) {
	for _, n := range []int{8, 15, 18} {
		col := heterogeneousColumn(n)
		serial, err := ExactOpts(context.Background(), col, ExactOptions{Workers: 1})
		if err != nil {
			t.Fatalf("n=%d serial: %v", n, err)
		}
		for _, workers := range []int{2, 8} {
			par, err := ExactOpts(context.Background(), col, ExactOptions{Workers: workers})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if par != serial {
				t.Fatalf("n=%d workers=%d: %+v != serial %+v", n, workers, par, serial)
			}
		}
	}
}

// TestExactWorkersCancelValidPartial: cancelling the parallel enumeration
// must return the sums over a contiguous prefix of completed blocks — a
// state a serial run could also have reported — with the final hook marking
// the stop.
func TestExactWorkersCancelValidPartial(t *testing.T) {
	const n = 18 // 8 blocks
	col := heterogeneousColumn(n)
	full, err := Exact(col)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var final runctx.Iteration
	ctx = runctx.WithHook(ctx, func(it runctx.Iteration) {
		if it.Done {
			final = it
		} else if it.N >= 1 {
			cancel()
		}
	})
	res, err := ExactOpts(ctx, col, ExactOptions{Workers: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !final.Done || final.Stopped != runctx.StopCancelled {
		t.Fatalf("final hook iteration = %+v", final)
	}
	if final.Samples != final.N*ExactBlockPatterns {
		t.Fatalf("final Samples = %d inconsistent with %d completed blocks", final.Samples, final.N)
	}
	// The partial is a prefix sum: non-negative, no larger than the full
	// bound, and internally consistent.
	if res.Err < 0 || res.Err > full.Err {
		t.Fatalf("partial Err = %v outside [0, %v]", res.Err, full.Err)
	}
	if res.Err != res.FalsePos+res.FalseNeg {
		t.Fatalf("partial decomposition inconsistent: %v != %v + %v", res.Err, res.FalsePos, res.FalseNeg)
	}
}

// TestApproxChainsWorkersEquivalence: with a fixed seed and chain count the
// multi-chain estimate must be bit-for-bit identical at any worker count —
// chains are seeded up front and merged in chain order.
func TestApproxChainsWorkersEquivalence(t *testing.T) {
	col := heterogeneousColumn(10)
	opts := ApproxOptions{MaxSweeps: 4000, Chains: 4}
	run := func(workers int) Result {
		o := opts
		o.Workers = workers
		res, err := ApproxContext(context.Background(), col, o, randutil.New(99))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	if serial.Sweeps == 0 {
		t.Fatal("multi-chain run drew no samples")
	}
	for _, workers := range []int{2, 4, 8} {
		if par := run(workers); par != serial {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, par, serial)
		}
	}
}

// TestApproxSingleChainUnchanged: Chains 0/1 must reproduce the historical
// single-chain estimator on the caller's generator exactly.
func TestApproxSingleChainUnchanged(t *testing.T) {
	col := heterogeneousColumn(9)
	base, err := Approx(col, ApproxOptions{MaxSweeps: 2000}, randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Approx(col, ApproxOptions{MaxSweeps: 2000, Chains: 1, Workers: 8}, randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if explicit != base {
		t.Fatalf("Chains=1 altered the estimator: %+v != %+v", explicit, base)
	}
}

// TestApproxChainsCancelValidPartial: cancelling concurrent chains returns
// merged partial tallies over every chain's completed sweeps.
func TestApproxChainsCancelValidPartial(t *testing.T) {
	col := heterogeneousColumn(8)
	opts := ApproxOptions{BurnIn: 5, MaxSweeps: 400000, CheckEvery: 50, Tol: 1e-12, Chains: 4, Workers: 4}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = runctx.WithHook(ctx, func(it runctx.Iteration) {
		if it.N >= 1 && !it.Done {
			cancel()
		}
	})
	res, err := ApproxContext(ctx, col, opts, randutil.New(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Sweeps <= 0 {
		t.Fatalf("cancelled multi-chain run kept no samples (Sweeps = %d)", res.Sweeps)
	}
	if res.Sweeps >= opts.MaxSweeps {
		t.Fatalf("cancel did not shorten the run: %d sweeps", res.Sweeps)
	}
	if res.Err <= 0 || res.Err >= 1 {
		t.Fatalf("partial bound = %v", res.Err)
	}
}
