package bound

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"depsense/internal/claims"
	"depsense/internal/model"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
)

// Method selects how per-column bounds are computed for a dataset.
type Method int

// Bound computation methods.
const (
	// MethodExact enumerates all 2^n patterns per distinct column.
	MethodExact Method = iota + 1
	// MethodApprox runs the Gibbs approximation per distinct column.
	MethodApprox
	// MethodConvolution runs the deterministic log-likelihood-ratio DP per
	// distinct column.
	MethodConvolution
)

// DatasetOptions configures ForDataset.
type DatasetOptions struct {
	Method Method
	// Approx tunes the Gibbs chains when Method == MethodApprox.
	Approx ApproxOptions
	// Convolution tunes the lattice when Method == MethodConvolution.
	Convolution ConvolutionOptions
	// MaxColumns caps the number of distinct dependency columns evaluated;
	// when exceeded, columns are sampled and the result reweighted by column
	// frequency. Zero means no cap.
	MaxColumns int
	// Workers bounds the intra-column parallelism: exact enumeration blocks
	// (MethodExact) or concurrent Gibbs chains (MethodApprox, when
	// Approx.Chains > 1) fan out over this many goroutines. Columns
	// themselves are evaluated serially so the frequency-weighted reduction
	// order — and therefore the Result — never depends on Workers. 0 or 1
	// runs fully serial.
	Workers int
}

// ForDataset computes the expected error bound of a dataset: the frequency-
// weighted average over assertions of the per-assertion bound. Assertions
// sharing a dependency column share a bound, so distinct columns are
// evaluated once and weighted by multiplicity — the dominant saving in the
// paper's forest-structured simulations, where columns repeat heavily.
func ForDataset(ds *claims.Dataset, p *model.Params, opts DatasetOptions, rng *rand.Rand) (Result, error) {
	return ForDatasetContext(context.Background(), ds, p, opts, rng)
}

// ForDatasetContext is ForDataset under a run-context. The context is
// threaded into each per-column computation (exact enumeration blocks and
// Gibbs sweeps both check it), and also checked between columns, so a
// cancel returns within one block/sweep of work with the context's error.
func ForDatasetContext(ctx context.Context, ds *claims.Dataset, p *model.Params, opts DatasetOptions, rng *rand.Rand) (Result, error) {
	if ds.M() == 0 {
		return Result{}, fmt.Errorf("bound: dataset has no assertions")
	}
	if ds.N() != p.NumSources() {
		return Result{}, fmt.Errorf("bound: dataset has %d sources, params have %d", ds.N(), p.NumSources())
	}
	if opts.Method == 0 {
		opts.Method = MethodApprox
	}

	type group struct {
		col   []bool
		count int
	}
	groups := make(map[string]*group)
	order := make([]string, 0, ds.M())
	for j := 0; j < ds.M(); j++ {
		col := ds.DependencyColumn(j)
		key := colKey(col)
		g, ok := groups[key]
		if !ok {
			g = &group{col: col}
			groups[key] = g
			order = append(order, key)
		}
		g.count++
	}

	selected := order
	if opts.MaxColumns > 0 && len(order) > opts.MaxColumns {
		idx := randutil.SampleWithoutReplacement(rng, len(order), opts.MaxColumns)
		selected = make([]string, 0, opts.MaxColumns)
		for _, i := range idx {
			selected = append(selected, order[i])
		}
	}

	var agg Result
	totalWeight := 0.0
	for _, key := range selected {
		if err := runctx.Err(ctx); err != nil {
			return Result{}, err
		}
		g := groups[key]
		col, err := NewColumn(p, g.col)
		if err != nil {
			return Result{}, err
		}
		var r Result
		switch opts.Method {
		case MethodExact:
			r, err = ExactOpts(ctx, col, ExactOptions{Workers: opts.Workers})
		case MethodApprox:
			approx := opts.Approx
			if approx.Workers == 0 {
				approx.Workers = opts.Workers
			}
			r, err = ApproxContext(ctx, col, approx, rng)
		case MethodConvolution:
			r, err = Convolution(col, opts.Convolution)
		default:
			return Result{}, fmt.Errorf("bound: unknown method %d", opts.Method)
		}
		if err != nil {
			return Result{}, err
		}
		w := float64(g.count)
		agg.Err += w * r.Err
		agg.FalsePos += w * r.FalsePos
		agg.FalseNeg += w * r.FalseNeg
		agg.StdErr += w * w * r.StdErr * r.StdErr
		agg.Sweeps += r.Sweeps
		totalWeight += w
	}
	agg.Err /= totalWeight
	agg.FalsePos /= totalWeight
	agg.FalseNeg /= totalWeight
	if agg.StdErr > 0 {
		agg.StdErr = math.Sqrt(agg.StdErr) / totalWeight
	}
	return agg, nil
}

// DistinctColumns returns the number of distinct dependency columns in the
// dataset, a useful cost predictor for exact bounds.
func DistinctColumns(ds *claims.Dataset) int {
	seen := make(map[string]struct{})
	for j := 0; j < ds.M(); j++ {
		seen[colKey(ds.DependencyColumn(j))] = struct{}{}
	}
	return len(seen)
}

func colKey(col []bool) string {
	b := make([]byte, (len(col)+7)/8)
	for i, on := range col {
		if on {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}
