package bound

import (
	"context"
	"errors"
	"testing"

	"depsense/internal/randutil"
	"depsense/internal/runctx"
)

// wideColumn builds an n-source column large enough for exact enumeration
// to span several cancellation blocks (2^n / ExactBlockPatterns blocks).
func wideColumn(n int) Column {
	p1 := make([]float64, n)
	p0 := make([]float64, n)
	for i := range p1 {
		p1[i] = 0.7
		p0[i] = 0.3
	}
	return Column{P1: p1, P0: p0, Z: 0.5}
}

func TestExactContextCancelAtFirstBlock(t *testing.T) {
	const n = 18 // 2^18 patterns = 8 blocks of ExactBlockPatterns
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var final runctx.Iteration
	ctx = runctx.WithHook(ctx, func(it runctx.Iteration) {
		final = it
		if it.N >= 1 {
			cancel()
		}
	})
	_, err := ExactContext(ctx, wideColumn(n))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if final.Stopped != runctx.StopCancelled || !final.Done {
		t.Fatalf("final hook iteration = %+v", final)
	}
	// Cancellation fired at the first block checkpoint, so enumeration must
	// stop within one further block of patterns.
	if final.Samples >= 3*ExactBlockPatterns {
		t.Fatalf("enumerated %d patterns after a first-block cancel", final.Samples)
	}
	if final.Samples < ExactBlockPatterns {
		t.Fatalf("cancelled before the first full block: %d patterns", final.Samples)
	}
}

func TestExactContextUncancelledMatchesExact(t *testing.T) {
	col := wideColumn(16)
	want, err := Exact(col)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactContext(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ExactContext = %+v, Exact = %+v", got, want)
	}
}

func TestApproxContextCancelAtFirstCheckpoint(t *testing.T) {
	col := wideColumn(6)
	opts := ApproxOptions{BurnIn: 10, MaxSweeps: 100000, CheckEvery: 100, Tol: 1e-12}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = runctx.WithHook(ctx, func(it runctx.Iteration) {
		if it.N >= 1 && !it.Done {
			cancel()
		}
	})
	res, err := ApproxContext(ctx, col, opts, randutil.New(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Partial Monte Carlo averages over the sweeps completed so far.
	if res.Sweeps < opts.CheckEvery || res.Sweeps > opts.CheckEvery+1 {
		t.Fatalf("Sweeps = %d, want about one checkpoint interval", res.Sweeps)
	}
	if res.Err <= 0 || res.Err >= 1 {
		t.Fatalf("partial bound = %v", res.Err)
	}
}

func TestApproxContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ApproxContext(ctx, wideColumn(5), ApproxOptions{}, randutil.New(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Sweeps != 0 {
		t.Fatalf("pre-cancelled run drew %d sweeps", res.Sweeps)
	}
}

func TestForDatasetContextPreCancelled(t *testing.T) {
	// A pre-cancelled context must return before any column is computed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, params := smallWorldParams(t)
	_, err := ForDatasetContext(ctx, ds, params, DatasetOptions{Method: MethodExact}, randutil.New(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
