package bound

import (
	"errors"
	"fmt"
)

// ErrBadTable reports malformed pattern tables.
var ErrBadTable = errors.New("bound: invalid pattern table")

// FromPatternTable computes the error bound directly from tabulated
// per-pattern likelihoods P(SC_j|C_j=1) and P(SC_j|C_j=0), the form of the
// paper's walk-through example (Table I): Err = Σ min(z·p1, (1-z)·p0).
// The tables must have equal length covering all patterns; each should sum
// to 1 (not enforced, so partially tabulated supports can be bounded too).
func FromPatternTable(p1, p0 []float64, z float64) (Result, error) {
	if len(p1) == 0 || len(p1) != len(p0) {
		return Result{}, fmt.Errorf("%w: %d vs %d entries", ErrBadTable, len(p1), len(p0))
	}
	if z < 0 || z > 1 {
		return Result{}, fmt.Errorf("%w: prior z = %v", ErrBadTable, z)
	}
	var res Result
	for k := range p1 {
		if p1[k] < 0 || p0[k] < 0 {
			return Result{}, fmt.Errorf("%w: negative probability at pattern %d", ErrBadTable, k)
		}
		w1 := z * p1[k]
		w0 := (1 - z) * p0[k]
		if w1 >= w0 {
			res.FalsePos += w0
		} else {
			res.FalseNeg += w1
		}
	}
	res.Err = res.FalsePos + res.FalseNeg
	return res, nil
}
