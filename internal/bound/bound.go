// Package bound computes the paper's fundamental error bound (Section III):
// the Bayes risk of an optimal estimator that knows the source parameter set
// θ and the dependency indicators D exactly. Any fact-finder's expected
// misclassification rate on an assertion is lower-bounded by this value.
//
// Exact computes Eq. (3) by enumerating all 2^n claim patterns; Approx
// implements the Gibbs-sampling approximation of Algorithm 1. Both decompose
// the bound into its false-positive part (false assertions the optimal
// estimator would label true) and false-negative part (true assertions it
// would label false).
package bound

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"depsense/internal/model"
	"depsense/internal/runctx"
)

// Column is the bound's input for a single assertion: the prior z and, for
// every source, the claim probability under each hypothesis, already
// resolved through the dependency indicator:
//
//	P1[i] = P(S_iC_j = 1 | C_j = 1) = a_i if D_ij = 0 else f_i
//	P0[i] = P(S_iC_j = 1 | C_j = 0) = b_i if D_ij = 0 else g_i
type Column struct {
	P1 []float64
	P0 []float64
	Z  float64
}

// Errors returned by the bound computations.
var (
	ErrEmptyColumn   = errors.New("bound: column has no sources")
	ErrColumnLengths = errors.New("bound: P1 and P0 lengths differ")
	ErrTooManyExact  = errors.New("bound: too many sources for exact enumeration")
)

// MaxExactSources caps the exact enumeration; 2^30 patterns is already ~10s
// of CPU, and the whole point of Algorithm 1 is that exact computation is
// intractable beyond roughly this size.
const MaxExactSources = 30

// NewColumn resolves a dependency column against a parameter set, clamping
// probabilities away from {0, 1} so products and logs stay finite.
func NewColumn(p *model.Params, depCol []bool) (Column, error) {
	n := p.NumSources()
	if n == 0 {
		return Column{}, model.ErrNoSources
	}
	if len(depCol) != n {
		return Column{}, fmt.Errorf("bound: dependency column length %d != sources %d", len(depCol), n)
	}
	col := Column{
		P1: make([]float64, n),
		P0: make([]float64, n),
		Z:  model.ClampProb(p.Z),
	}
	for i, s := range p.Sources {
		s = s.Clamp()
		if depCol[i] {
			col.P1[i] = s.F
			col.P0[i] = s.G
		} else {
			col.P1[i] = s.A
			col.P0[i] = s.B
		}
	}
	return col, nil
}

// Validate checks structural sanity of a hand-built column.
func (c Column) Validate() error {
	if len(c.P1) == 0 {
		return ErrEmptyColumn
	}
	if len(c.P1) != len(c.P0) {
		return fmt.Errorf("%w: %d vs %d", ErrColumnLengths, len(c.P1), len(c.P0))
	}
	if math.IsNaN(c.Z) || c.Z < 0 || c.Z > 1 {
		return fmt.Errorf("bound: prior z = %v out of [0,1]", c.Z)
	}
	for i := range c.P1 {
		for _, v := range [...]float64{c.P1[i], c.P0[i]} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("bound: claim probability %v out of [0,1] at source %d", v, i)
			}
		}
	}
	return nil
}

// N returns the number of sources in the column.
func (c Column) N() int { return len(c.P1) }

// PatternWeights returns the two joint masses of a claim pattern s:
// w1 = z·P(s|C=1) and w0 = (1-z)·P(s|C=0). Exported for the walk-through
// example (Table I) and for tests.
func (c Column) PatternWeights(pattern []bool) (w1, w0 float64) {
	w1, w0 = c.Z, 1-c.Z
	for i, on := range pattern {
		if on {
			w1 *= c.P1[i]
			w0 *= c.P0[i]
		} else {
			w1 *= 1 - c.P1[i]
			w0 *= 1 - c.P0[i]
		}
	}
	return w1, w0
}

// Result is a computed error bound and its decomposition. Err = FalsePos +
// FalseNeg up to floating-point error. For Approx results, StdErr estimates
// the Monte Carlo standard error of Err and Sweeps records chain length;
// both are zero for exact results.
type Result struct {
	Err      float64
	FalsePos float64
	FalseNeg float64
	StdErr   float64
	Sweeps   int
}

// ExactBlockPatterns is the cancellation granularity of the exact
// enumeration: the context is checked (and any runctx hook fired) once per
// this many enumerated patterns, so a cancel returns within one block —
// microseconds of work — regardless of n.
const ExactBlockPatterns = 1 << 15

// Exact enumerates all 2^n claim patterns (Eq. 3). The enumeration shares
// prefix products through recursion, so total work is O(2^n) rather than
// O(n·2^n).
func Exact(c Column) (Result, error) {
	return ExactContext(context.Background(), c)
}

// ExactContext is Exact under a run-context: cancellation is checked every
// ExactBlockPatterns enumerated patterns, and any runctx hook on ctx fires
// at the same cadence with the cumulative pattern count. On cancellation it
// returns the partial sums accumulated so far together with the context's
// error — the partial Result is a deterministic function of the enumeration
// prefix completed.
func ExactContext(ctx context.Context, c Column) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	n := c.N()
	if n > MaxExactSources {
		return Result{}, fmt.Errorf("%w: n=%d > %d", ErrTooManyExact, n, MaxExactSources)
	}
	if err := runctx.Err(ctx); err != nil {
		return Result{}, err
	}
	var (
		res      Result
		patterns int
		stop     error
		hook     = runctx.HookFrom(ctx)
		start    = time.Now()
		blocks   int
	)
	var rec func(i int, w1, w0 float64)
	rec = func(i int, w1, w0 float64) {
		if stop != nil {
			return
		}
		if i == n {
			// The optimal estimator picks the larger joint mass; the loser
			// is the conditional error contribution. Ties break toward
			// "true", matching the practical estimator's decision rule.
			if w1 >= w0 {
				res.FalsePos += w0
			} else {
				res.FalseNeg += w1
			}
			patterns++
			if patterns%ExactBlockPatterns == 0 {
				blocks++
				stop = runctx.Err(ctx)
				it := runctx.Iteration{
					Algorithm: "exact-bound", N: blocks, Samples: patterns,
					Elapsed: time.Since(start),
				}
				if stop != nil {
					it.Done = true
					it.Stopped = runctx.Reason(stop)
				}
				hook.Emit(it)
			}
			return
		}
		rec(i+1, w1*c.P1[i], w0*c.P0[i])
		rec(i+1, w1*(1-c.P1[i]), w0*(1-c.P0[i]))
	}
	rec(0, c.Z, 1-c.Z)
	res.Err = res.FalsePos + res.FalseNeg
	if stop != nil {
		return res, stop
	}
	return res, nil
}
