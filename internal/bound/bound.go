// Package bound computes the paper's fundamental error bound (Section III):
// the Bayes risk of an optimal estimator that knows the source parameter set
// θ and the dependency indicators D exactly. Any fact-finder's expected
// misclassification rate on an assertion is lower-bounded by this value.
//
// Exact computes Eq. (3) by enumerating all 2^n claim patterns; Approx
// implements the Gibbs-sampling approximation of Algorithm 1. Both decompose
// the bound into its false-positive part (false assertions the optimal
// estimator would label true) and false-negative part (true assertions it
// would label false).
package bound

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"depsense/internal/model"
	"depsense/internal/parallel"
	"depsense/internal/runctx"
)

// Column is the bound's input for a single assertion: the prior z and, for
// every source, the claim probability under each hypothesis, already
// resolved through the dependency indicator:
//
//	P1[i] = P(S_iC_j = 1 | C_j = 1) = a_i if D_ij = 0 else f_i
//	P0[i] = P(S_iC_j = 1 | C_j = 0) = b_i if D_ij = 0 else g_i
type Column struct {
	P1 []float64
	P0 []float64
	Z  float64
}

// Errors returned by the bound computations.
var (
	ErrEmptyColumn   = errors.New("bound: column has no sources")
	ErrColumnLengths = errors.New("bound: P1 and P0 lengths differ")
	ErrTooManyExact  = errors.New("bound: too many sources for exact enumeration")
)

// MaxExactSources caps the exact enumeration; 2^30 patterns is already ~10s
// of CPU, and the whole point of Algorithm 1 is that exact computation is
// intractable beyond roughly this size.
const MaxExactSources = 30

// NewColumn resolves a dependency column against a parameter set, clamping
// probabilities away from {0, 1} so products and logs stay finite.
func NewColumn(p *model.Params, depCol []bool) (Column, error) {
	n := p.NumSources()
	if n == 0 {
		return Column{}, model.ErrNoSources
	}
	if len(depCol) != n {
		return Column{}, fmt.Errorf("bound: dependency column length %d != sources %d", len(depCol), n)
	}
	col := Column{
		P1: make([]float64, n),
		P0: make([]float64, n),
		Z:  model.ClampProb(p.Z),
	}
	for i, s := range p.Sources {
		s = s.Clamp()
		if depCol[i] {
			col.P1[i] = s.F
			col.P0[i] = s.G
		} else {
			col.P1[i] = s.A
			col.P0[i] = s.B
		}
	}
	return col, nil
}

// Validate checks structural sanity of a hand-built column.
func (c Column) Validate() error {
	if len(c.P1) == 0 {
		return ErrEmptyColumn
	}
	if len(c.P1) != len(c.P0) {
		return fmt.Errorf("%w: %d vs %d", ErrColumnLengths, len(c.P1), len(c.P0))
	}
	if math.IsNaN(c.Z) || c.Z < 0 || c.Z > 1 {
		return fmt.Errorf("bound: prior z = %v out of [0,1]", c.Z)
	}
	for i := range c.P1 {
		for _, v := range [...]float64{c.P1[i], c.P0[i]} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("bound: claim probability %v out of [0,1] at source %d", v, i)
			}
		}
	}
	return nil
}

// N returns the number of sources in the column.
func (c Column) N() int { return len(c.P1) }

// PatternWeights returns the two joint masses of a claim pattern s:
// w1 = z·P(s|C=1) and w0 = (1-z)·P(s|C=0). Exported for the walk-through
// example (Table I) and for tests.
func (c Column) PatternWeights(pattern []bool) (w1, w0 float64) {
	w1, w0 = c.Z, 1-c.Z
	for i, on := range pattern {
		if on {
			w1 *= c.P1[i]
			w0 *= c.P0[i]
		} else {
			w1 *= 1 - c.P1[i]
			w0 *= 1 - c.P0[i]
		}
	}
	return w1, w0
}

// Result is a computed error bound and its decomposition. Err = FalsePos +
// FalseNeg up to floating-point error. For Approx results, StdErr estimates
// the Monte Carlo standard error of Err and Sweeps records chain length;
// both are zero for exact results.
type Result struct {
	Err      float64
	FalsePos float64
	FalseNeg float64
	StdErr   float64
	Sweeps   int
}

// exactBlockBits is the suffix width of one enumeration block: blocks hold
// 2^exactBlockBits patterns each.
const exactBlockBits = 15

// ExactBlockPatterns is the block granularity of the exact enumeration: the
// 2^n pattern space splits into fixed blocks of this many patterns (the
// first n-15 bits index the block, the last 15 enumerate within it). The
// context is checked — and any runctx hook fired — once per block, so a
// cancel returns within one block of work regardless of n, and the blocks
// are the unit the parallel path fans out.
const ExactBlockPatterns = 1 << exactBlockBits

// ExactOptions tunes the execution of the exact enumeration. It changes how
// the fixed block decomposition is scheduled, never what it computes: the
// block partial sums are reduced in block index order, so the Result is
// bit-for-bit identical for every Workers value.
type ExactOptions struct {
	// Workers bounds the number of enumeration blocks computed
	// concurrently. 0 or 1 runs serial (the default, preserving the
	// one-block cancellation latency contract exactly).
	Workers int
}

// Exact enumerates all 2^n claim patterns (Eq. 3). The enumeration shares
// prefix products through recursion, so total work is O(2^n) rather than
// O(n·2^n).
func Exact(c Column) (Result, error) {
	return ExactContext(context.Background(), c)
}

// ExactContext is Exact under a run-context: cancellation is checked every
// ExactBlockPatterns enumerated patterns, and any runctx hook on ctx fires
// at the same cadence with the cumulative pattern count. On cancellation it
// returns the partial sums accumulated so far together with the context's
// error — the partial Result is a deterministic function of the enumeration
// prefix completed.
func ExactContext(ctx context.Context, c Column) (Result, error) {
	return ExactOpts(ctx, c, ExactOptions{})
}

// ExactOpts is ExactContext with execution options. With Workers > 1 the
// enumeration blocks fan out over a bounded worker pool; each block sums
// its own false-positive/false-negative partials and the partials are
// reduced in block index order, so the Result matches the serial run bit
// for bit. On cancellation the sums over the longest contiguous prefix of
// completed blocks are returned with the context's error — a valid partial
// state at a block checkpoint. Hooks fire once per completed block, under a
// lock, with the cumulative count of completed blocks.
func ExactOpts(ctx context.Context, c Column, opts ExactOptions) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	n := c.N()
	if n > MaxExactSources {
		return Result{}, fmt.Errorf("%w: n=%d > %d", ErrTooManyExact, n, MaxExactSources)
	}
	if err := runctx.Err(ctx); err != nil {
		return Result{}, err
	}

	suffixBits := n
	if suffixBits > exactBlockBits {
		suffixBits = exactBlockBits
	}
	prefixBits := n - suffixBits
	numBlocks := 1 << prefixBits

	var (
		fpPart = make([]float64, numBlocks)
		fnPart = make([]float64, numBlocks)
		done   = make([]bool, numBlocks)

		mu         sync.Mutex
		blocksDone int
		hook       = runctx.HookFrom(ctx)
		//lint:allow seedsource wall-clock timing for the observability hook Elapsed field, not part of results
		start = time.Now()
	)
	poolErr := parallel.ForEachCtx(ctx, numBlocks, opts.Workers, func(b int) error {
		// The block's prefix pattern: bit i of the pattern is ON when the
		// corresponding bit of b is zero, so block 0 starts at the all-on
		// pattern — the same global enumeration order as the on-first
		// recursion below.
		w1, w0 := c.Z, 1-c.Z
		for i := 0; i < prefixBits; i++ {
			if (b>>(prefixBits-1-i))&1 == 0 {
				w1 *= c.P1[i]
				w0 *= c.P0[i]
			} else {
				w1 *= 1 - c.P1[i]
				w0 *= 1 - c.P0[i]
			}
		}
		var fp, fn float64
		var rec func(i int, w1, w0 float64)
		rec = func(i int, w1, w0 float64) {
			if i == n {
				// The optimal estimator picks the larger joint mass; the
				// loser is the conditional error contribution. Ties break
				// toward "true", matching the practical estimator's
				// decision rule.
				if w1 >= w0 {
					fp += w0
				} else {
					fn += w1
				}
				return
			}
			rec(i+1, w1*c.P1[i], w0*c.P0[i])
			rec(i+1, w1*(1-c.P1[i]), w0*(1-c.P0[i]))
		}
		rec(prefixBits, w1, w0)
		fpPart[b], fnPart[b] = fp, fn
		done[b] = true
		if suffixBits == exactBlockBits {
			// Full-size blocks report progress; a single sub-block run
			// (n < 15) finishes in microseconds and stays silent, matching
			// the historical per-2^15-patterns cadence.
			mu.Lock()
			blocksDone++
			hook.Emit(runctx.Iteration{
				Algorithm: "exact-bound", N: blocksDone,
				Samples: blocksDone * ExactBlockPatterns,
				Elapsed: time.Since(start),
			})
			mu.Unlock()
		}
		return nil
	})

	limit := numBlocks
	if poolErr != nil {
		// Longest contiguous prefix of completed blocks: the deterministic
		// "how far the enumeration got" state a serial run would also report.
		limit = 0
		//lint:allow ctxloop bounded scan: limit strictly increases toward numBlocks
		for limit < numBlocks && done[limit] {
			limit++
		}
	}
	var res Result
	for b := 0; b < limit; b++ {
		res.FalsePos += fpPart[b]
		res.FalseNeg += fnPart[b]
	}
	res.Err = res.FalsePos + res.FalseNeg
	if poolErr != nil {
		hook.Emit(runctx.Iteration{
			Algorithm: "exact-bound", N: limit,
			Samples: limit * (1 << suffixBits), Elapsed: time.Since(start),
			Done: true, Stopped: runctx.Reason(poolErr),
		})
		return res, poolErr
	}
	return res, nil
}
