package bound

import (
	"math"
	"testing"
	"testing/quick"

	"depsense/internal/randutil"
)

// TestConvolutionMatchesExact: the DP approximation must track exact
// enumeration tightly on random small columns. The Err tolerance is tight;
// the FP/FN split gets more slack because a claim pattern whose likelihood
// ratio lands exactly on the decision boundary contributes the same error
// mass to either side, and lattice rounding may tip such ties the other
// way than exact enumeration's w1 >= w0 rule does.
func TestConvolutionMatchesExact(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := randutil.New(seed)
		n := 1 + rng.Intn(12)
		col := randomColumn(rng, n)
		exact, err := Exact(col)
		if err != nil {
			return false
		}
		conv, err := Convolution(col, ConvolutionOptions{})
		if err != nil {
			return false
		}
		return math.Abs(exact.Err-conv.Err) < 2e-3 &&
			math.Abs(exact.FalsePos-conv.FalsePos) < 2e-2 &&
			math.Abs(exact.FalseNeg-conv.FalseNeg) < 2e-2
	}, &quick.Config{MaxCount: 80, Rand: randutil.New(20260706)})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConvolutionSingleSource(t *testing.T) {
	col := Column{P1: []float64{0.9}, P0: []float64{0.2}, Z: 0.5}
	res, err := Convolution(col, ConvolutionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Err-0.15) > 1e-3 {
		t.Fatalf("Err = %v, want 0.15", res.Err)
	}
}

func TestConvolutionLargeN(t *testing.T) {
	// Far beyond exact enumeration's reach: 500 sources. The bound must be
	// finite, tiny (massive evidence), and decomposed consistently.
	rng := randutil.New(3)
	n := 500
	col := Column{P1: make([]float64, n), P0: make([]float64, n), Z: 0.4}
	for i := 0; i < n; i++ {
		col.P1[i] = 0.5 + 0.3*rng.Float64()
		col.P0[i] = 0.1 + 0.3*rng.Float64()
	}
	res, err := Convolution(col, ConvolutionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err < 0 || res.Err > 0.05 {
		t.Fatalf("500 informative sources left Err = %v", res.Err)
	}
	if math.Abs(res.Err-(res.FalsePos+res.FalseNeg)) > 1e-12 {
		t.Fatal("decomposition broken")
	}
}

func TestConvolutionAgreesWithGibbsLargeN(t *testing.T) {
	// Cross-validate the two tractable methods against each other where
	// exact enumeration is impossible (n = 60).
	rng := randutil.New(9)
	col := randomColumn(rng, 60)
	conv, err := Convolution(col, ConvolutionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gibbs, err := Approx(col, ApproxOptions{MaxSweeps: 30000, Tol: 1e-9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(conv.Err - gibbs.Err); diff > 0.02 {
		t.Fatalf("convolution %v vs gibbs %v (diff %v)", conv.Err, gibbs.Err, diff)
	}
}

func TestConvolutionResolutionTradeoff(t *testing.T) {
	rng := randutil.New(11)
	col := randomColumn(rng, 10)
	exact, err := Exact(col)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Convolution(col, ConvolutionOptions{Bins: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Convolution(col, ConvolutionOptions{Bins: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fine.Err-exact.Err) > math.Abs(coarse.Err-exact.Err)+1e-9 {
		t.Fatalf("finer grid did not improve: coarse %v fine %v exact %v",
			coarse.Err, fine.Err, exact.Err)
	}
}

func TestConvolutionValidatesColumn(t *testing.T) {
	if _, err := Convolution(Column{}, ConvolutionOptions{}); err == nil {
		t.Fatal("empty column accepted")
	}
}
