package bound

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"depsense/internal/model"
	"depsense/internal/randutil"
)

// TestTableI reproduces the paper's walk-through example: the tabulated
// pattern likelihoods of Table I with z = 0.5 must yield
// Err = 0.26980433 ("the expected error probability of any fact-finding
// algorithm is no less than 26.98%").
func TestTableI(t *testing.T) {
	p1 := []float64{
		0.18546216, 0.17606773, 0.00033244, 0.01971855,
		0.24427898, 0.19063986, 0.02321803, 0.16028224,
	}
	p0 := []float64{
		0.05851677, 0.05300123, 0.12803859, 0.16032756,
		0.14231588, 0.08222352, 0.18716734, 0.18840910,
	}
	res, err := FromPatternTable(p1, p0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Err-0.26980433) > 1e-8 {
		t.Fatalf("Table I bound = %.8f, want 0.26980433", res.Err)
	}
	if math.Abs(res.Err-(res.FalsePos+res.FalseNeg)) > 1e-12 {
		t.Fatal("FP+FN != Err")
	}
}

func TestFromPatternTableValidation(t *testing.T) {
	if _, err := FromPatternTable(nil, nil, 0.5); !errors.Is(err, ErrBadTable) {
		t.Fatalf("want ErrBadTable, got %v", err)
	}
	if _, err := FromPatternTable([]float64{1}, []float64{1, 2}, 0.5); !errors.Is(err, ErrBadTable) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromPatternTable([]float64{1}, []float64{1}, 1.5); !errors.Is(err, ErrBadTable) {
		t.Fatal("bad prior accepted")
	}
	if _, err := FromPatternTable([]float64{-1}, []float64{1}, 0.5); !errors.Is(err, ErrBadTable) {
		t.Fatal("negative probability accepted")
	}
}

func TestExactSingleSource(t *testing.T) {
	// One source: claim w.p. a if true, b if false; z = 0.5, a=0.9, b=0.2.
	// Patterns: claim -> min(0.45, 0.10); silence -> min(0.05, 0.40).
	col := Column{P1: []float64{0.9}, P0: []float64{0.2}, Z: 0.5}
	res, err := Exact(col)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.10 + 0.05
	if math.Abs(res.Err-want) > 1e-12 {
		t.Fatalf("Err = %v, want %v", res.Err, want)
	}
	if math.Abs(res.FalsePos-0.10) > 1e-12 || math.Abs(res.FalseNeg-0.05) > 1e-12 {
		t.Fatalf("FP/FN = %v/%v", res.FalsePos, res.FalseNeg)
	}
}

func TestExactUninformativeSources(t *testing.T) {
	// P1 == P0: patterns carry no information, so the optimal estimator
	// always follows the prior and Err = min(z, 1-z).
	col := Column{P1: []float64{0.5, 0.3}, P0: []float64{0.5, 0.3}, Z: 0.3}
	res, err := Exact(col)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Err-0.3) > 1e-12 {
		t.Fatalf("Err = %v, want 0.3", res.Err)
	}
}

func TestExactMatchesBruteForcePatternTable(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := randutil.New(seed)
		n := 1 + rng.Intn(6)
		col := randomColumn(rng, n)
		res, err := Exact(col)
		if err != nil {
			return false
		}
		// Brute force: enumerate patterns explicitly, tabulate, reuse the
		// Table I arithmetic.
		size := 1 << n
		p1 := make([]float64, size)
		p0 := make([]float64, size)
		pattern := make([]bool, n)
		for k := 0; k < size; k++ {
			for i := range pattern {
				pattern[i] = k&(1<<i) != 0
			}
			w1, w0 := col.PatternWeights(pattern)
			p1[k] = w1 / col.Z
			p0[k] = w0 / (1 - col.Z)
		}
		want, err := FromPatternTable(p1, p0, col.Z)
		if err != nil {
			return false
		}
		return math.Abs(res.Err-want.Err) < 1e-10 &&
			math.Abs(res.FalsePos-want.FalsePos) < 1e-10 &&
			math.Abs(res.FalseNeg-want.FalseNeg) < 1e-10
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExactPermutationInvariant: the bound cannot depend on source order.
func TestExactPermutationInvariant(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := randutil.New(seed)
		n := 2 + rng.Intn(7)
		col := randomColumn(rng, n)
		res, err := Exact(col)
		if err != nil {
			return false
		}
		perm := randutil.Perm(rng, n)
		pc := Column{P1: make([]float64, n), P0: make([]float64, n), Z: col.Z}
		for i, p := range perm {
			pc.P1[i] = col.P1[p]
			pc.P0[i] = col.P0[p]
		}
		res2, err := Exact(pc)
		if err != nil {
			return false
		}
		return math.Abs(res.Err-res2.Err) < 1e-10
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExactBoundedByPrior: Bayes risk never exceeds the prior-only error.
func TestExactBoundedByPrior(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := randutil.New(seed)
		col := randomColumn(rng, 1+rng.Intn(8))
		res, err := Exact(col)
		if err != nil {
			return false
		}
		priorErr := math.Min(col.Z, 1-col.Z)
		return res.Err >= -1e-12 && res.Err <= priorErr+1e-12
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExactRejectsTooManySources(t *testing.T) {
	col := Column{
		P1: make([]float64, MaxExactSources+1),
		P0: make([]float64, MaxExactSources+1),
		Z:  0.5,
	}
	for i := range col.P1 {
		col.P1[i], col.P0[i] = 0.5, 0.5
	}
	if _, err := Exact(col); !errors.Is(err, ErrTooManyExact) {
		t.Fatalf("want ErrTooManyExact, got %v", err)
	}
}

func TestColumnValidation(t *testing.T) {
	if err := (Column{}).Validate(); !errors.Is(err, ErrEmptyColumn) {
		t.Fatal("empty column accepted")
	}
	if err := (Column{P1: []float64{0.5}, P0: nil, Z: 0.5}).Validate(); !errors.Is(err, ErrColumnLengths) {
		t.Fatal("length mismatch accepted")
	}
	if err := (Column{P1: []float64{0.5}, P0: []float64{0.5}, Z: -1}).Validate(); err == nil {
		t.Fatal("bad prior accepted")
	}
	if err := (Column{P1: []float64{1.5}, P0: []float64{0.5}, Z: 0.5}).Validate(); err == nil {
		t.Fatal("bad probability accepted")
	}
}

func TestNewColumnResolvesDependency(t *testing.T) {
	p := model.NewParams(2, 0.4)
	p.Sources[0] = model.SourceParams{A: 0.8, B: 0.3, F: 0.6, G: 0.5}
	p.Sources[1] = model.SourceParams{A: 0.7, B: 0.2, F: 0.9, G: 0.1}
	col, err := NewColumn(p, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if col.P1[0] != 0.8 || col.P0[0] != 0.3 {
		t.Fatalf("independent source resolved wrong: %v/%v", col.P1[0], col.P0[0])
	}
	if col.P1[1] != 0.9 || col.P0[1] != 0.1 {
		t.Fatalf("dependent source resolved wrong: %v/%v", col.P1[1], col.P0[1])
	}
	if _, err := NewColumn(p, []bool{true}); err == nil {
		t.Fatal("column length mismatch accepted")
	}
}

// TestApproxMatchesExact is the reproduction target behind Figs. 3-5: the
// Gibbs approximation must track the exact bound closely.
func TestApproxMatchesExact(t *testing.T) {
	rng := randutil.New(123)
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(10)
		col := randomColumn(rng, n)
		exact, err := Exact(col)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := Approx(col, ApproxOptions{MaxSweeps: 30000, Tol: 1e-9}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(exact.Err - approx.Err); diff > 0.015 {
			t.Errorf("trial %d (n=%d): exact %v vs approx %v (diff %v)", trial, n, exact.Err, approx.Err, diff)
		}
		if fpDiff := math.Abs(exact.FalsePos - approx.FalsePos); fpDiff > 0.02 {
			t.Errorf("trial %d: FP exact %v vs approx %v", trial, exact.FalsePos, approx.FalsePos)
		}
	}
}

func TestApproxDecomposition(t *testing.T) {
	rng := randutil.New(5)
	col := randomColumn(rng, 6)
	res, err := Approx(col, ApproxOptions{MaxSweeps: 5000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Err-(res.FalsePos+res.FalseNeg)) > 1e-12 {
		t.Fatal("FP+FN != Err")
	}
	if res.Sweeps <= 0 || res.StdErr < 0 {
		t.Fatalf("bad metadata: %+v", res)
	}
}

func TestApproxConvergesEarly(t *testing.T) {
	rng := randutil.New(6)
	col := randomColumn(rng, 4)
	res, err := Approx(col, ApproxOptions{MaxSweeps: 100000, CheckEvery: 200, Tol: 1e-3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps >= 100000 {
		t.Fatal("convergence check never fired")
	}
}

func TestApproxValidatesColumn(t *testing.T) {
	if _, err := Approx(Column{}, ApproxOptions{}, randutil.New(1)); err == nil {
		t.Fatal("empty column accepted")
	}
}

func randomColumn(rng interface{ Float64() float64 }, n int) Column {
	col := Column{P1: make([]float64, n), P0: make([]float64, n), Z: 0.2 + 0.6*rng.Float64()}
	for i := 0; i < n; i++ {
		col.P1[i] = 0.05 + 0.9*rng.Float64()
		col.P0[i] = 0.05 + 0.9*rng.Float64()
	}
	return col
}
