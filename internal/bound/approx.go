package bound

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"depsense/internal/gibbs"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
)

// ApproxOptions tunes the Gibbs-sampling bound approximation (Algorithm 1).
type ApproxOptions struct {
	// BurnIn sweeps are discarded before accumulation starts.
	BurnIn int
	// MaxSweeps caps the chain length (post burn-in).
	MaxSweeps int
	// CheckEvery sets the convergence-check interval in sweeps.
	CheckEvery int
	// Tol declares convergence when the running estimate moves less than
	// Tol between consecutive checks ("while Err not convergent" in the
	// paper's pseudocode).
	Tol float64
}

// DefaultApproxOptions matches the accuracy demonstrated in Figs. 3-5
// (absolute error around 0.01 against exact enumeration).
func DefaultApproxOptions() ApproxOptions {
	return ApproxOptions{
		BurnIn:     200,
		MaxSweeps:  20000,
		CheckEvery: 500,
		Tol:        1e-4,
	}
}

func (o ApproxOptions) normalized() ApproxOptions {
	d := DefaultApproxOptions()
	if o.BurnIn < 0 {
		o.BurnIn = d.BurnIn
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = d.MaxSweeps
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = d.CheckEvery
	}
	if o.Tol <= 0 {
		o.Tol = d.Tol
	}
	return o
}

// Approx estimates the error bound by Gibbs sampling claim patterns from
// their marginal P(SC_j) = z·P(SC_j|C=1) + (1-z)·P(SC_j|C=0) (Algorithm 1).
//
// For a sampled pattern s with joint masses w1 = z·P(s|C=1) and
// w0 = (1-z)·P(s|C=0), the quantity min(w1,w0)/(w1+w0) is the conditional
// Bayes error P^opt(error|s), and its expectation over s ~ P is exactly the
// bound of Eq. (3). The chain therefore averages min/(w1+w0) over samples —
// the measure-weighted form of the paper's ErrPart/Total ratio — which is
// unbiased at any n, including the large-n regimes where every individual
// pattern has vanishing probability.
func Approx(c Column, opts ApproxOptions, rng *rand.Rand) (Result, error) {
	return ApproxContext(context.Background(), c, opts, rng)
}

// ApproxContext is Approx under a run-context. Cancellation is checked once
// per sweep (burn-in included), so a cancel returns within one O(n) sweep;
// on cancellation the partial Monte Carlo averages over the samples drawn so
// far are returned together with the context's error. Any runctx hook on
// ctx fires at every convergence checkpoint (every CheckEvery sweeps) with
// the cumulative sample count. A nil rng falls back to the context's
// generator (runctx.WithRNG), then to a fixed seed.
func ApproxContext(ctx context.Context, c Column, opts ApproxOptions, rng *rand.Rand) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.normalized()
	if rng == nil {
		if rng = runctx.RNGFrom(ctx); rng == nil {
			rng = randutil.New(1)
		}
	}

	n := c.N()
	pOn := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		pOn[0][i] = clampOpen(c.P1[i])
		pOn[1][i] = clampOpen(c.P0[i])
	}
	z := clampOpen(c.Z)
	chain, err := gibbs.NewProductMixtureChain([]float64{z, 1 - z}, pOn, rng)
	if err != nil {
		return Result{}, fmt.Errorf("bound: build chain: %w", err)
	}

	hook := runctx.HookFrom(ctx)
	start := time.Now()
	if _, err := chain.SweepN(ctx, opts.BurnIn); err != nil {
		return Result{}, err
	}

	var (
		sumErr, sumSq float64
		sumFP, sumFN  float64
		samples       int
		checkpoints   int
		lastEstimate  = math.Inf(1)
		res           Result
		stop          error
	)
	for s := 0; s < opts.MaxSweeps; s++ {
		if stop = runctx.Err(ctx); stop != nil {
			break
		}
		chain.Sweep()
		lw := chain.LogJointWeights()
		// r = min(w1,w0)/(w1+w0) computed stably in log space.
		l1, l0 := lw[0], lw[1]
		diff := l1 - l0 // log(w1/w0)
		var r float64
		var isFP bool
		if diff >= 0 {
			// decide true; error mass is w0: r = 1/(1+w1/w0)
			r = 1 / (1 + math.Exp(diff))
			isFP = true
		} else {
			r = 1 / (1 + math.Exp(-diff))
		}
		sumErr += r
		sumSq += r * r
		if isFP {
			sumFP += r
		} else {
			sumFN += r
		}
		samples++

		if samples%opts.CheckEvery == 0 {
			est := sumErr / float64(samples)
			checkpoints++
			converged := math.Abs(est-lastEstimate) < opts.Tol
			it := runctx.Iteration{
				Algorithm: "gibbs-bound", N: checkpoints, Samples: samples,
				Elapsed: time.Since(start), Done: converged,
			}
			if converged {
				it.Stopped = runctx.StopConverged
			}
			hook.Emit(it)
			if converged {
				break
			}
			lastEstimate = est
		}
	}
	if stop != nil {
		hook.Emit(runctx.Iteration{
			Algorithm: "gibbs-bound", N: checkpoints + 1, Samples: samples,
			Elapsed: time.Since(start), Done: true, Stopped: runctx.Reason(stop),
		})
		if samples == 0 {
			return Result{}, stop
		}
	}

	fs := float64(samples)
	res.Err = sumErr / fs
	res.FalsePos = sumFP / fs
	res.FalseNeg = sumFN / fs
	res.Sweeps = samples
	variance := sumSq/fs - res.Err*res.Err
	if variance > 0 {
		// Gibbs samples are autocorrelated; this plain-iid standard error
		// understates uncertainty but is still a useful scale indicator.
		res.StdErr = math.Sqrt(variance / fs)
	}
	// stop is non-nil when cancellation cut the chain short: the partial
	// averages are still returned alongside the context error.
	return res, stop
}

// clampOpen forces p strictly inside (0,1) as the mixture chain requires.
func clampOpen(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
