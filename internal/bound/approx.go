package bound

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"depsense/internal/gibbs"
	"depsense/internal/parallel"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
)

// ApproxOptions tunes the Gibbs-sampling bound approximation (Algorithm 1).
type ApproxOptions struct {
	// BurnIn sweeps are discarded before accumulation starts (per chain).
	BurnIn int
	// MaxSweeps caps the total chain length (post burn-in), summed across
	// chains when Chains > 1.
	MaxSweeps int
	// CheckEvery sets the convergence-check interval in sweeps.
	CheckEvery int
	// Tol declares convergence when the running estimate moves less than
	// Tol between consecutive checks ("while Err not convergent" in the
	// paper's pseudocode").
	Tol float64
	// Chains is the number of independent Gibbs chains the sweep budget is
	// split across. 0 or 1 runs the historical single-chain estimator on
	// the caller's generator, bit for bit. With K > 1 chains, K child seeds
	// are drawn from the caller's generator up front, each chain burns in
	// and converges independently, and the chain tallies merge in chain
	// index order — so the estimate is a deterministic function of the seed
	// and Chains, never of Workers or scheduling.
	Chains int
	// Workers bounds how many chains run concurrently. 0 or 1 runs the
	// chains serially; values above Chains are clamped. Workers changes
	// wall-clock only, never the Result.
	Workers int
}

// DefaultApproxOptions matches the accuracy demonstrated in Figs. 3-5
// (absolute error around 0.01 against exact enumeration).
func DefaultApproxOptions() ApproxOptions {
	return ApproxOptions{
		BurnIn:     200,
		MaxSweeps:  20000,
		CheckEvery: 500,
		Tol:        1e-4,
	}
}

func (o ApproxOptions) normalized() ApproxOptions {
	d := DefaultApproxOptions()
	if o.BurnIn < 0 {
		o.BurnIn = d.BurnIn
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = d.MaxSweeps
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = d.CheckEvery
	}
	if o.Tol <= 0 {
		o.Tol = d.Tol
	}
	if o.Chains <= 0 {
		o.Chains = 1
	}
	return o
}

// approxTally is the raw Monte Carlo accumulator of one Gibbs chain. Tallies
// from independent chains merge by plain addition in chain index order.
type approxTally struct {
	sumErr, sumSq float64
	sumFP, sumFN  float64
	samples       int
}

func (t *approxTally) add(o approxTally) {
	t.sumErr += o.sumErr
	t.sumSq += o.sumSq
	t.sumFP += o.sumFP
	t.sumFN += o.sumFN
	t.samples += o.samples
}

func (t approxTally) result() Result {
	fs := float64(t.samples)
	res := Result{
		Err:      t.sumErr / fs,
		FalsePos: t.sumFP / fs,
		FalseNeg: t.sumFN / fs,
		Sweeps:   t.samples,
	}
	variance := t.sumSq/fs - res.Err*res.Err
	if variance > 0 {
		// Gibbs samples are autocorrelated; this plain-iid standard error
		// understates uncertainty but is still a useful scale indicator.
		res.StdErr = math.Sqrt(variance / fs)
	}
	return res
}

// Approx estimates the error bound by Gibbs sampling claim patterns from
// their marginal P(SC_j) = z·P(SC_j|C=1) + (1-z)·P(SC_j|C=0) (Algorithm 1).
//
// For a sampled pattern s with joint masses w1 = z·P(s|C=1) and
// w0 = (1-z)·P(s|C=0), the quantity min(w1,w0)/(w1+w0) is the conditional
// Bayes error P^opt(error|s), and its expectation over s ~ P is exactly the
// bound of Eq. (3). The chain therefore averages min/(w1+w0) over samples —
// the measure-weighted form of the paper's ErrPart/Total ratio — which is
// unbiased at any n, including the large-n regimes where every individual
// pattern has vanishing probability.
func Approx(c Column, opts ApproxOptions, rng *rand.Rand) (Result, error) {
	return ApproxContext(context.Background(), c, opts, rng)
}

// ApproxContext is Approx under a run-context. Cancellation is checked once
// per sweep (burn-in included), so a cancel returns within one O(n) sweep;
// on cancellation the partial Monte Carlo averages over the samples drawn so
// far are returned together with the context's error. Any runctx hook on
// ctx fires at every convergence checkpoint (every CheckEvery sweeps) with
// the cumulative per-chain sample count. A nil rng falls back to the
// context's generator (runctx.WithRNG), then to a fixed seed.
//
// With opts.Chains > 1 the sweep budget splits over that many independent
// chains (seeded deterministically from rng) whose tallies merge in chain
// index order; opts.Workers bounds how many run concurrently. On
// cancellation the merged partial tallies over every chain's completed
// sweeps are returned — each chain stops at a sweep boundary, so the partial
// state is valid, though which sweep each chain reached depends on timing.
func ApproxContext(ctx context.Context, c Column, opts ApproxOptions, rng *rand.Rand) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.normalized()
	if rng == nil {
		if rng = runctx.RNGFrom(ctx); rng == nil {
			rng = randutil.New(1)
		}
	}

	if opts.Chains == 1 {
		t, err := runApproxChain(ctx, c, opts, rng, opts.MaxSweeps, 0)
		if t.samples == 0 {
			return Result{}, err
		}
		return t.result(), err
	}

	// Multi-chain: derive every chain seed up front, in order, so the
	// decomposition is a pure function of the caller's generator state.
	seeds := randutil.DeriveSeeds(rng, opts.Chains)
	per, rem := opts.MaxSweeps/opts.Chains, opts.MaxSweeps%opts.Chains
	sctx := runctx.WithSerializedHook(ctx)
	type slot struct {
		t   approxTally
		err error
	}
	slots := make([]slot, opts.Chains)
	poolErr := parallel.ForEachCtx(ctx, opts.Chains, opts.Workers, func(k int) error {
		sweeps := per
		if k < rem {
			sweeps++
		}
		slots[k].t, slots[k].err = runApproxChain(sctx, c, opts, randutil.New(seeds[k]), sweeps, k)
		return nil
	})

	var (
		merged   approxTally
		firstErr error
	)
	for k := range slots {
		merged.add(slots[k].t)
		if firstErr == nil {
			firstErr = slots[k].err
		}
	}
	if firstErr == nil {
		firstErr = poolErr
	}
	if merged.samples == 0 {
		return Result{}, firstErr
	}
	return merged.result(), firstErr
}

// runApproxChain runs one Gibbs chain for up to maxSweeps accumulation
// sweeps and returns its raw tallies. The returned error is a chain-build
// failure or the context's cancellation error; on cancellation the tallies
// over the sweeps completed so far are still returned. chainIdx is the
// chain's index in the multi-chain decomposition (0 when single-chain),
// reported on every hook firing so observers can reassemble per-chain
// trajectories.
func runApproxChain(ctx context.Context, c Column, opts ApproxOptions, rng *rand.Rand, maxSweeps, chainIdx int) (approxTally, error) {
	n := c.N()
	pOn := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		pOn[0][i] = clampOpen(c.P1[i])
		pOn[1][i] = clampOpen(c.P0[i])
	}
	z := clampOpen(c.Z)
	chain, err := gibbs.NewProductMixtureChain([]float64{z, 1 - z}, pOn, rng)
	if err != nil {
		return approxTally{}, fmt.Errorf("bound: build chain: %w", err)
	}

	hook := runctx.HookFrom(ctx)
	start := time.Now() //lint:allow seedsource wall-clock timing for the observability hook Elapsed field, not part of results
	if _, err := chain.SweepN(ctx, opts.BurnIn); err != nil {
		return approxTally{}, err
	}

	var (
		t            approxTally
		checkpoints  int
		lastEstimate = math.Inf(1)
		lastSumErr   float64 // sumErr at the previous checkpoint
		lastSamples  int     // samples at the previous checkpoint
		stop         error
	)
	for s := 0; s < maxSweeps; s++ {
		if stop = runctx.Err(ctx); stop != nil {
			break
		}
		chain.Sweep()
		lw := chain.LogJointWeights()
		// r = min(w1,w0)/(w1+w0) computed stably in log space.
		l1, l0 := lw[0], lw[1]
		diff := l1 - l0 // log(w1/w0)
		var r float64
		var isFP bool
		if diff >= 0 {
			// decide true; error mass is w0: r = 1/(1+w1/w0)
			r = 1 / (1 + math.Exp(diff))
			isFP = true
		} else {
			r = 1 / (1 + math.Exp(-diff))
		}
		t.sumErr += r
		t.sumSq += r * r
		if isFP {
			t.sumFP += r
		} else {
			t.sumFN += r
		}
		t.samples++

		if t.samples%opts.CheckEvery == 0 {
			est := t.sumErr / float64(t.samples)
			checkpoints++
			converged := math.Abs(est-lastEstimate) < opts.Tol
			// The hook's Value is the checkpoint's BATCH mean — the error
			// average over just this checkpoint's CheckEvery sweeps — not the
			// cumulative running estimate: batch means are the near-iid
			// per-checkpoint statistic convergence diagnostics (split-chain
			// R-hat) need, where running means carry a deterministic
			// converging trend that would read as non-stationarity.
			batch := (t.sumErr - lastSumErr) / float64(t.samples-lastSamples)
			lastSumErr, lastSamples = t.sumErr, t.samples
			it := runctx.Iteration{
				Algorithm: "gibbs-bound", N: checkpoints, Chain: chainIdx,
				Samples: t.samples, Value: batch, HasValue: true,
				Elapsed: time.Since(start), Done: converged,
			}
			if converged {
				it.Stopped = runctx.StopConverged
			}
			hook.Emit(it)
			if converged {
				break
			}
			lastEstimate = est
		}
	}
	if stop != nil {
		it := runctx.Iteration{
			Algorithm: "gibbs-bound", N: checkpoints + 1, Chain: chainIdx,
			Samples: t.samples,
			Elapsed: time.Since(start), Done: true, Stopped: runctx.Reason(stop),
		}
		if t.samples > lastSamples {
			// Partial batch since the last checkpoint.
			it.Value = (t.sumErr - lastSumErr) / float64(t.samples-lastSamples)
			it.HasValue = true
		}
		hook.Emit(it)
	}
	return t, stop
}

// clampOpen forces p strictly inside (0,1) as the mixture chain requires.
func clampOpen(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
