package bound

import (
	"fmt"
	"math"
)

// ConvolutionOptions tunes the deterministic bound approximation.
type ConvolutionOptions struct {
	// Bins is the grid resolution of the log-likelihood-ratio lattice
	// (default 1 << 15). Finer grids reduce quantization error near the
	// decision threshold at linear cost.
	Bins int
	// HalfWidth is the lattice half-width in logits around the decision
	// threshold (default 60). Mass beyond the lattice is decisively
	// classified and accumulates exactly in saturating edge bins.
	HalfWidth float64
}

func (o ConvolutionOptions) normalized() ConvolutionOptions {
	if o.Bins <= 0 {
		o.Bins = 1 << 15
	}
	if o.HalfWidth <= 0 {
		o.HalfWidth = 60
	}
	return o
}

// Convolution computes the error bound by dynamic programming over the
// log-likelihood ratio, a deterministic alternative to both exact
// enumeration and Gibbs sampling.
//
// The optimal estimator declares an assertion true exactly when the claim
// pattern's log-likelihood ratio Λ(s) = Σ_i log(p1_i(s_i)/p0_i(s_i))
// reaches the prior threshold t = log((1-z)/z), so the Bayes risk of
// Eq. (3) is
//
//	Err = z·P(Λ < t | C=1) + (1-z)·P(Λ ≥ t | C=0).
//
// Under each hypothesis Λ is a sum of independent two-valued random
// variables (one per source), whose distribution is computed by convolving
// the per-source contributions over a discretized lattice — O(n·Bins)
// rather than O(2^n). The only approximation is lattice quantization: each
// source's contribution is rounded to the nearest bin, so mass within
// roughly n·(lattice step)/2 of the threshold may be misclassified. At the
// default resolution this keeps the bound within ~1e-3 of exact for the
// paper's problem sizes, deterministically.
func Convolution(c Column, opts ConvolutionOptions) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.normalized()
	n := c.N()
	z := clampOpen(c.Z)
	threshold := math.Log((1 - z) / z)

	// Lattice index k represents Λ = t + (k - bins/2)·step: the decision
	// boundary falls exactly between bins/2-1 and bins/2 ("Λ ≥ t" ⇔
	// k ≥ bins/2, up to per-source rounding).
	bins := opts.Bins
	step := 2 * opts.HalfWidth / float64(bins)

	// Per-source log-likelihood-ratio offsets, in bins.
	type contrib struct {
		onBins, offBins int
		p1, p0          float64
	}
	contribs := make([]contrib, n)
	for i := 0; i < n; i++ {
		p1 := clampOpen(c.P1[i])
		p0 := clampOpen(c.P0[i])
		lOn := math.Log(p1 / p0)
		lOff := math.Log((1 - p1) / (1 - p0))
		contribs[i] = contrib{
			onBins:  int(math.Round(lOn / step)),
			offBins: int(math.Round(lOff / step)),
			p1:      p1,
			p0:      p0,
		}
	}

	// dist1/dist0: lattice distribution of Λ under C=1 / C=0. All mass
	// starts at Λ = 0, i.e. lattice position bins/2 - t/step.
	start := bins/2 - int(math.Round(threshold/step))
	if start < 0 {
		start = 0
	}
	if start >= bins {
		start = bins - 1
	}
	dist1 := make([]float64, bins)
	dist0 := make([]float64, bins)
	next1 := make([]float64, bins)
	next0 := make([]float64, bins)
	dist1[start] = 1
	dist0[start] = 1

	shift := func(dst, src []float64, onBins, offBins int, pOn float64) {
		for k := range dst {
			dst[k] = 0
		}
		for k, mass := range src {
			if mass == 0 {
				continue
			}
			kOn := clampBin(k+onBins, bins)
			kOff := clampBin(k+offBins, bins)
			dst[kOn] += mass * pOn
			dst[kOff] += mass * (1 - pOn)
		}
	}
	for _, ct := range contribs {
		shift(next1, dist1, ct.onBins, ct.offBins, ct.p1)
		shift(next0, dist0, ct.onBins, ct.offBins, ct.p0)
		dist1, next1 = next1, dist1
		dist0, next0 = next0, dist0
	}

	// Decision: true iff Λ ≥ t, i.e. lattice index ≥ bins/2.
	var res Result
	for k := 0; k < bins; k++ {
		if k >= bins/2 {
			res.FalsePos += (1 - z) * dist0[k]
		} else {
			res.FalseNeg += z * dist1[k]
		}
	}
	res.Err = res.FalsePos + res.FalseNeg
	if math.IsNaN(res.Err) {
		return Result{}, fmt.Errorf("bound: convolution produced NaN")
	}
	return res, nil
}

// clampBin saturates a lattice index; mass beyond the lattice is decisive
// and belongs to the edge bins.
func clampBin(k, bins int) int {
	if k < 0 {
		return 0
	}
	if k >= bins {
		return bins - 1
	}
	return k
}
