package bound

import (
	"math"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/model"
	"depsense/internal/randutil"
	"depsense/internal/synthetic"
)

func smallWorldParams(t *testing.T) (*claims.Dataset, *model.Params) {
	t.Helper()
	cfg := synthetic.DefaultConfig()
	cfg.Sources = 10
	cfg.Assertions = 30
	cfg.Trees = synthetic.FixedInt(4)
	w, err := synthetic.Generate(cfg, randutil.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return w.Dataset, w.TrueParams
}

func TestForDatasetExactVsApprox(t *testing.T) {
	ds, params := smallWorldParams(t)
	rng := randutil.New(7)
	exact, err := ForDataset(ds, params, DatasetOptions{Method: MethodExact}, rng)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ForDataset(ds, params, DatasetOptions{
		Method: MethodApprox,
		Approx: ApproxOptions{MaxSweeps: 20000, Tol: 1e-9},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(exact.Err - approx.Err); diff > 0.015 {
		t.Fatalf("dataset bound: exact %v vs approx %v (diff %v)", exact.Err, approx.Err, diff)
	}
	if exact.Err <= 0 || exact.Err >= 0.5 {
		t.Fatalf("implausible exact bound %v", exact.Err)
	}
}

func TestForDatasetColumnDedup(t *testing.T) {
	// Two assertions with identical dependency columns must yield the same
	// bound as one, and DistinctColumns must see through the duplication.
	b := claims.NewBuilder(3, 4)
	for j := 0; j < 4; j++ {
		b.AddClaim(0, j, false)
		b.MarkSilentDependent(1, j)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := DistinctColumns(ds); got != 1 {
		t.Fatalf("DistinctColumns = %d, want 1", got)
	}
	p := model.NewParams(3, 0.5)
	for i := range p.Sources {
		p.Sources[i] = model.SourceParams{A: 0.8, B: 0.2, F: 0.7, G: 0.4}
	}
	whole, err := ForDataset(ds, p, DatasetOptions{Method: MethodExact}, randutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewColumn(p, ds.DependencyColumn(0))
	if err != nil {
		t.Fatal(err)
	}
	single, err := Exact(col)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole.Err-single.Err) > 1e-12 {
		t.Fatalf("dedup bound %v != column bound %v", whole.Err, single.Err)
	}
}

func TestForDatasetColumnSampling(t *testing.T) {
	ds, params := smallWorldParams(t)
	rng := randutil.New(9)
	full, err := ForDataset(ds, params, DatasetOptions{Method: MethodExact}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := ForDataset(ds, params, DatasetOptions{Method: MethodExact, MaxColumns: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling trades accuracy for speed; it must stay in the ballpark.
	if math.Abs(full.Err-sampled.Err) > 0.15 {
		t.Fatalf("sampled bound too far off: %v vs %v", sampled.Err, full.Err)
	}
}

func TestForDatasetValidation(t *testing.T) {
	ds, params := smallWorldParams(t)
	rng := randutil.New(1)
	empty, err := claims.NewBuilder(3, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForDataset(empty, params, DatasetOptions{}, rng); err == nil {
		t.Fatal("empty dataset accepted")
	}
	wrong := model.NewParams(ds.N()+1, 0.5)
	if _, err := ForDataset(ds, wrong, DatasetOptions{}, rng); err == nil {
		t.Fatal("mismatched params accepted")
	}
	if _, err := ForDataset(ds, params, DatasetOptions{Method: Method(99)}, rng); err == nil {
		t.Fatal("unknown method accepted")
	}
}
