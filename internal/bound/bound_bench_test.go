package bound

import (
	"context"
	"fmt"
	"testing"

	"depsense/internal/randutil"
)

// BenchmarkExactWorkers measures the blocked 2^n enumeration across worker
// counts at the acceptance scale n = 20 (32 blocks of 2^15 patterns).
func BenchmarkExactWorkers(b *testing.B) {
	col := heterogeneousColumn(20)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExactOpts(context.Background(), col, ExactOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApproxChains measures the multi-chain Gibbs estimator: a fixed
// total sweep budget split across chains, with chains running on up to
// `workers` goroutines.
func BenchmarkApproxChains(b *testing.B) {
	col := heterogeneousColumn(20)
	const sweeps = 8000
	for _, c := range []struct{ chains, workers int }{
		{1, 1}, {4, 1}, {4, 4}, {8, 8},
	} {
		b.Run(fmt.Sprintf("chains=%d_workers=%d", c.chains, c.workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := ApproxContext(context.Background(), col, ApproxOptions{
					MaxSweeps: sweeps, Chains: c.chains, Workers: c.workers,
				}, randutil.New(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
