package twittersim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"depsense/internal/randutil"
)

func TestPresetsMatchTableIII(t *testing.T) {
	want := []struct {
		name                                  string
		sources, assertions, claims, original int
	}{
		{"Ukraine", 5403, 3703, 7192, 4242},
		{"Kirkuk", 4816, 2795, 6188, 3079},
		{"Superbug", 7764, 2873, 9426, 5831},
		{"LA Marathon", 5174, 3537, 7148, 4332},
		{"Paris Attack", 38844, 23513, 41249, 38794},
	}
	presets := Presets()
	if len(presets) != len(want) {
		t.Fatalf("%d presets", len(presets))
	}
	for i, w := range want {
		p := presets[i]
		if p.Name != w.name || p.Sources != w.sources || p.Assertions != w.assertions ||
			p.Claims != w.claims || p.OriginalClaims != w.original {
			t.Errorf("preset %d = %+v, want %+v", i, p, w)
		}
	}
}

func TestPresetLookup(t *testing.T) {
	if _, ok := Preset("Ukraine"); !ok {
		t.Fatal("Ukraine preset missing")
	}
	if _, ok := Preset("Atlantis"); ok {
		t.Fatal("unknown preset found")
	}
}

func TestSmallScales(t *testing.T) {
	s := Small("Kirkuk", 10)
	if s.Sources != 481 || s.Claims != 618 {
		t.Fatalf("scaled: %+v", s)
	}
	if !strings.Contains(s.Name, "1/10") {
		t.Fatalf("name = %q", s.Name)
	}
	// Unknown names fall back to the first preset rather than failing.
	if f := Small("Atlantis", 2); f.Sources == 0 {
		t.Fatal("fallback broken")
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := Small("Ukraine", 20)
	bad := []func(*Scenario){
		func(s *Scenario) { s.Sources = 0 },
		func(s *Scenario) { s.Claims = s.Assertions - 1 },
		func(s *Scenario) { s.OriginalClaims = s.Claims + 1 },
		func(s *Scenario) { s.OriginalClaims = s.Assertions - 1 },
		func(s *Scenario) { s.TrueShare = 0.9 }, // shares no longer sum to 1
		func(s *Scenario) { s.ReliabilityLow = 0.9; s.ReliabilityHigh = 0.5 },
		func(s *Scenario) { s.RumorVirality = 0 },
	}
	for i, mutate := range bad {
		s := sc
		mutate(&s)
		if _, err := Generate(s, randutil.New(1)); !errors.Is(err, ErrBadScenario) {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
}

func TestGenerateRealizedCounts(t *testing.T) {
	sc := Small("Ukraine", 4)
	w, err := Generate(sc, randutil.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sum := w.Summarize()
	within := func(got, want int, tol float64) bool {
		return math.Abs(float64(got-want)) <= tol*float64(want)
	}
	if !within(sum.TotalClaims, sc.Claims, 0.01) {
		t.Errorf("claims %d, want ≈%d", sum.TotalClaims, sc.Claims)
	}
	if !within(sum.Sources, sc.Sources, 0.15) {
		t.Errorf("sources %d, want ≈%d", sum.Sources, sc.Sources)
	}
	if !within(sum.Assertions, sc.Assertions, 0.15) {
		t.Errorf("assertions %d, want ≈%d", sum.Assertions, sc.Assertions)
	}
	if !within(sum.OriginalClaims, sc.OriginalClaims, 0.15) {
		t.Errorf("originals %d, want ≈%d", sum.OriginalClaims, sc.OriginalClaims)
	}
}

func TestStreamStructure(t *testing.T) {
	sc := Small("LA Marathon", 10)
	w, err := Generate(sc, randutil.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i, tw := range w.Tweets {
		if tw.ID != i {
			t.Fatalf("tweet %d has ID %d", i, tw.ID)
		}
		if tw.Source < 0 || tw.Source >= sc.Sources {
			t.Fatalf("tweet %d source %d", i, tw.Source)
		}
		if tw.Assertion < 0 || tw.Assertion >= len(w.Kinds) {
			t.Fatalf("tweet %d assertion %d", i, tw.Assertion)
		}
		if tw.Text == "" {
			t.Fatalf("tweet %d has empty text", i)
		}
		if tw.RetweetOf >= 0 {
			orig := w.Tweets[tw.RetweetOf]
			if tw.RetweetOf >= i {
				t.Fatalf("tweet %d retweets the future (%d)", i, tw.RetweetOf)
			}
			if orig.Assertion != tw.Assertion {
				t.Fatalf("retweet %d changed assertion", i)
			}
			if orig.Source == tw.Source {
				t.Fatalf("tweet %d retweets itself", i)
			}
			if !strings.HasPrefix(tw.Text, "rt @user") {
				t.Fatalf("retweet %d text %q", i, tw.Text)
			}
			// The follow edge implied by the retweet must exist.
			found := false
			for _, anc := range w.Graph.Ancestors(tw.Source) {
				if anc == orig.Source {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("retweet %d has no follow edge", i)
			}
		}
	}
}

func TestKindsAreValid(t *testing.T) {
	sc := Small("Superbug", 10)
	w, err := Generate(sc, randutil.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	for _, k := range w.Kinds {
		counts[k]++
	}
	if counts[KindTrue] == 0 || counts[KindFalse] == 0 || counts[KindOpinion] == 0 {
		t.Fatalf("kind counts: %v", counts)
	}
	if counts[KindTrue] <= counts[KindFalse] {
		t.Fatalf("true (%d) should outnumber rumors (%d) at default shares",
			counts[KindTrue], counts[KindFalse])
	}
}

func TestRumorsAreMoreViral(t *testing.T) {
	sc := Small("Ukraine", 2)
	w, err := Generate(sc, randutil.New(8))
	if err != nil {
		t.Fatal(err)
	}
	retweets := map[Kind]int{}
	claims := map[Kind]int{}
	for _, tw := range w.Tweets {
		k := w.Kinds[tw.Assertion]
		claims[k]++
		if tw.RetweetOf >= 0 {
			retweets[k]++
		}
	}
	rumorShare := float64(retweets[KindFalse]) / float64(claims[KindFalse])
	trueShare := float64(retweets[KindTrue]) / float64(claims[KindTrue])
	if rumorShare <= trueShare {
		t.Fatalf("rumor retweet share %.3f should exceed true %.3f", rumorShare, trueShare)
	}
}

func TestReliabilityCorrelatesWithActivity(t *testing.T) {
	sc := Small("Kirkuk", 4)
	w, err := Generate(sc, randutil.New(3))
	if err != nil {
		t.Fatal(err)
	}
	activity := make([]int, sc.Sources)
	for _, tw := range w.Tweets {
		activity[tw.Source]++
	}
	var prolific, oneOff []float64
	for i, a := range activity {
		switch {
		case a >= 5:
			prolific = append(prolific, w.SourceReliability[i])
		case a == 1:
			oneOff = append(oneOff, w.SourceReliability[i])
		}
	}
	if len(prolific) == 0 || len(oneOff) == 0 {
		t.Skip("degenerate activity split")
	}
	if mean(prolific) <= mean(oneOff) {
		t.Fatalf("prolific reliability %.3f should exceed one-off %.3f",
			mean(prolific), mean(oneOff))
	}
}

func TestEventsMatchTweets(t *testing.T) {
	sc := Small("Ukraine", 20)
	w, err := Generate(sc, randutil.New(2))
	if err != nil {
		t.Fatal(err)
	}
	events := w.Events()
	if len(events) != len(w.Tweets) {
		t.Fatal("event count mismatch")
	}
	for i, e := range events {
		if e.Source != w.Tweets[i].Source || e.Assertion != w.Tweets[i].Assertion || e.Time != int64(i) {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindTrue.String() != "True" || KindFalse.String() != "False" ||
		KindOpinion.String() != "Opinion" || Kind(9).String() != "Kind(9)" {
		t.Fatal("Kind.String broken")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc := Small("Ukraine", 10)
	a, err := Generate(sc, randutil.New(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(sc, randutil.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tweets) != len(b.Tweets) {
		t.Fatal("different stream lengths")
	}
	for i := range a.Tweets {
		if a.Tweets[i] != b.Tweets[i] {
			t.Fatalf("tweet %d differs", i)
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func TestSybilInjection(t *testing.T) {
	sc := Small("Ukraine", 20)
	sc.Sybils = 30
	sc.SybilTargets = 5
	w, err := Generate(sc, randutil.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Sybil ids sit above the organic source space.
	sybilTweets := 0
	boosted := map[int]bool{}
	for _, tw := range w.Tweets {
		if tw.Source >= sc.Sources {
			sybilTweets++
			if tw.RetweetOf < 0 {
				t.Fatal("sybil tweeted an original")
			}
			if w.Kinds[tw.Assertion] != KindFalse {
				t.Fatalf("sybil boosted a %v assertion", w.Kinds[tw.Assertion])
			}
			boosted[tw.Assertion] = true
			if w.SourceReliability[tw.Source] != 0 {
				t.Fatal("sybil has nonzero reliability")
			}
		}
	}
	if sybilTweets != 30*5 {
		t.Fatalf("sybil tweets = %d, want 150", sybilTweets)
	}
	if len(boosted) != 5 {
		t.Fatalf("boosted %d rumors, want 5", len(boosted))
	}
}

func TestSybilsOffByDefault(t *testing.T) {
	sc := Small("Ukraine", 20)
	w, err := Generate(sc, randutil.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, tw := range w.Tweets {
		if tw.Source >= sc.Sources {
			t.Fatal("sybil tweet without Sybils configured")
		}
	}
}
