package twittersim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"depsense/internal/depgraph"
	"depsense/internal/randutil"
)

// Kind classifies an assertion for the (simulated) human graders.
type Kind int

// Assertion kinds, matching the grading rule of Section V-C.
const (
	// KindTrue is a verifiable assertion that is true in the simulated
	// world.
	KindTrue Kind = iota + 1
	// KindFalse is a verifiable assertion that is false (a rumor).
	KindFalse
	// KindOpinion is a subjective statement that does not constitute an
	// act of sensing; graders mark it "Opinion".
	KindOpinion
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTrue:
		return "True"
	case KindFalse:
		return "False"
	case KindOpinion:
		return "Opinion"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Tweet is one message of the simulated stream.
type Tweet struct {
	// ID is the tweet's index in the stream; times are the IDs, so stream
	// order is chronological.
	ID int
	// Source is the author.
	Source int
	// Text is the rendered tweet body.
	Text string
	// RetweetOf is the ID of the retweeted tweet, or -1 for originals.
	RetweetOf int
	// Assertion is the ground-truth assertion id — hidden input for the
	// simulated graders, never shown to the fact-finding pipeline.
	Assertion int
}

// World is one simulated dataset.
type World struct {
	Scenario Scenario
	// Tweets is the chronological stream.
	Tweets []Tweet
	// Graph is the follow graph implied by retweet behaviour (an edge is
	// added whenever a source retweets another), the same construction the
	// paper uses to obtain its dependency network.
	Graph *depgraph.Graph
	// Kinds[j] classifies ground-truth assertion j.
	Kinds []Kind
	// AssertionTokens[j] is assertion j's canonical token sequence.
	AssertionTokens [][]string
	// SourceReliability[i] is the probability source i originates true
	// facts.
	SourceReliability []float64
	// FlippedSources lists the source ids whose reliability flipped to
	// Scenario.FlipReliability at claim Scenario.FlipAtClaim, ascending;
	// empty when the flip injection is disabled.
	FlippedSources []int
	// ActiveSources is the number of sources that authored ≥ 1 tweet.
	ActiveSources int
}

// ErrBadScenario reports an invalid scenario.
var ErrBadScenario = errors.New("twittersim: invalid scenario")

func (s Scenario) validate() error {
	if s.Sources < 1 || s.Assertions < 1 || s.Claims < s.Assertions || s.OriginalClaims > s.Claims {
		return fmt.Errorf("%w: sources=%d assertions=%d claims=%d originals=%d",
			ErrBadScenario, s.Sources, s.Assertions, s.Claims, s.OriginalClaims)
	}
	if s.OriginalClaims < s.Assertions {
		return fmt.Errorf("%w: need at least one original per assertion (%d < %d)",
			ErrBadScenario, s.OriginalClaims, s.Assertions)
	}
	sum := s.TrueShare + s.FalseShare + s.OpinionShare
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("%w: kind shares sum to %v", ErrBadScenario, sum)
	}
	if s.ReliabilityLow < 0 || s.ReliabilityHigh > 1 || s.ReliabilityHigh < s.ReliabilityLow {
		return fmt.Errorf("%w: reliability range [%v,%v]", ErrBadScenario, s.ReliabilityLow, s.ReliabilityHigh)
	}
	for _, v := range [...]float64{s.RumorVirality, s.OpinionVirality, s.TrueReassert, s.FalseReassert} {
		if v <= 0 {
			return fmt.Errorf("%w: virality/re-assert weights must be positive", ErrBadScenario)
		}
	}
	if s.FlipAtClaim > 0 {
		if s.FlipReliability < 0 || s.FlipReliability > 1 {
			return fmt.Errorf("%w: flip reliability %v outside [0,1]", ErrBadScenario, s.FlipReliability)
		}
		if s.FlipSources > s.Sources {
			return fmt.Errorf("%w: flip sources %d > sources %d", ErrBadScenario, s.FlipSources, s.Sources)
		}
	}
	return nil
}

// Generate simulates one tweet stream.
//
// The stream interleaves three behaviours, tuned so that the realized
// counts land on the scenario targets:
//
//   - new-assertion originals: a source reports something not yet asserted.
//     Factual reports are true with the source's reliability; a fraction are
//     opinions.
//   - re-assertion originals: an independent report of an existing
//     assertion, biased toward true assertions (real events have many
//     independent witnesses, rumors few).
//   - retweets: a source repeats an earlier tweet, biased toward viral
//     rumors and opinions; the retweet adds a follow edge, which is how the
//     dependency network is observed.
func Generate(sc Scenario, rng *rand.Rand) (*World, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	vocab := newVocabulary(sc)

	totalSources := sc.Sources + sc.Sybils
	w := &World{
		Scenario:          sc,
		Graph:             depgraph.NewGraph(totalSources),
		SourceReliability: make([]float64, totalSources),
	}

	// Source activity: a Zipf-weighted pool. A tweet reuses an active
	// source with probability tuned so the number of distinct sources
	// lands near the target.
	reuse := 1 - float64(sc.Sources)/float64(sc.Claims)
	if reuse < 0 {
		reuse = 0
	}
	sourcePerm := randutil.Perm(rng, sc.Sources)

	// Reliability correlates with activity: early-activated sources are
	// the prolific accounts (news desks, on-the-ground reporters) and skew
	// reliable, late one-off accounts skew noisy. This is the signal that
	// lets reliability-estimating fact-finders beat raw popularity, as in
	// the paper's real datasets.
	for rank, src := range sourcePerm {
		rankFrac := float64(rank) / float64(sc.Sources)
		mix := 0.35*rng.Float64() + 0.65*(1-rankFrac)
		w.SourceReliability[src] = sc.ReliabilityLow + (sc.ReliabilityHigh-sc.ReliabilityLow)*mix
	}
	// Mid-stream drift injection: the flipped set is the earliest-activated
	// sources — the prolific, reliable accounts whose compromise moves the
	// fitted reliability trajectory the most. Membership is a permutation
	// prefix, so checking it consumes no randomness.
	var flipped []bool
	if sc.FlipAtClaim > 0 {
		n := sc.FlipSources
		if n <= 0 {
			n = 1
		}
		flipped = make([]bool, totalSources)
		for _, src := range sourcePerm[:n] {
			flipped[src] = true
			w.FlippedSources = append(w.FlippedSources, src)
		}
		sort.Ints(w.FlippedSources)
	}

	zipf := randutil.NewZipfPicker(sc.Sources, sc.ActivitySkew)
	nextFresh := 0
	active := make([]int, 0, sc.Sources)
	pickSource := func() int {
		if nextFresh < sc.Sources && (len(active) == 0 || rng.Float64() >= reuse) {
			s := sourcePerm[nextFresh]
			nextFresh++
			active = append(active, s)
			return s
		}
		// Zipf over the activation order: early activations stay prolific.
		idx := zipf.Pick(rng)
		if idx >= len(active) {
			idx = rng.Intn(len(active))
		}
		return active[idx]
	}

	retweetRate := 1 - float64(sc.OriginalClaims)/float64(sc.Claims)
	newAssertionRate := float64(sc.Assertions) / float64(sc.OriginalClaims)

	// Weighted pools of re-assertable and retweetable items. Weights are
	// kind-dependent; both pools are sampled by rejection against the max
	// weight, which stays O(1) because weights span a small fixed range.
	type weighted struct {
		ids []int
		max float64
	}
	reassertW := func(k Kind) float64 {
		switch k {
		case KindTrue:
			return sc.TrueReassert
		case KindFalse:
			return sc.FalseReassert
		default:
			return 1
		}
	}
	retweetW := func(k Kind) float64 {
		switch k {
		case KindFalse:
			return sc.RumorVirality
		case KindOpinion:
			return sc.OpinionVirality
		default:
			return 1
		}
	}
	assertPool := weighted{max: maxOf(sc.TrueReassert, sc.FalseReassert, 1)}
	tweetPool := weighted{max: maxOf(sc.RumorVirality, sc.OpinionVirality, 1)}
	pickWeighted := func(p *weighted, weightOf func(int) float64) int {
		if len(p.ids) == 0 {
			return -1
		}
		for {
			id := p.ids[rng.Intn(len(p.ids))]
			if rng.Float64()*p.max <= weightOf(id) {
				return id
			}
		}
	}

	drawKind := func(src int) Kind {
		if rng.Float64() < sc.OpinionRate {
			return KindOpinion
		}
		if rng.Float64() < w.SourceReliability[src] {
			return KindTrue
		}
		return KindFalse
	}

	for len(w.Tweets) < sc.Claims {
		id := len(w.Tweets)
		src := pickSource()

		if rng.Float64() < retweetRate && len(tweetPool.ids) > 0 {
			// Retweet: pick a viral-weighted earlier tweet by a different
			// author; the repeat manifests the follow edge.
			target := pickWeighted(&tweetPool, func(tid int) float64 {
				return retweetW(w.Kinds[w.Tweets[tid].Assertion])
			})
			orig := w.Tweets[target]
			if orig.Source == src {
				continue // self-retweet: redraw everything
			}
			if err := w.Graph.AddFollow(src, orig.Source); err != nil {
				return nil, err
			}
			w.Tweets = append(w.Tweets, Tweet{
				ID:        id,
				Source:    src,
				Text:      retweetText(orig.Source, orig.Text),
				RetweetOf: target,
				Assertion: orig.Assertion,
			})
			tweetPool.ids = append(tweetPool.ids, id)
			continue
		}

		// Original tweet.
		var assertion int
		if flipped != nil && id >= sc.FlipAtClaim && flipped[src] {
			// Compromised account: fabricate a fresh assertion, true only
			// with probability FlipReliability. Fabrications bypass the
			// assertion budget and stay out of the re-assertion pool — a
			// unique lie has no independent co-claimants, which is exactly
			// the behavioral break the drift detectors watch for (claims on
			// fringe assertions drag the fitted reliability down, whereas
			// re-asserting consensus rumors would push it up). Retweet
			// cascades on fabrications still happen via the tweet pool.
			kind := KindFalse
			if rng.Float64() < sc.FlipReliability {
				kind = KindTrue
			}
			assertion = len(w.Kinds)
			w.Kinds = append(w.Kinds, kind)
			w.AssertionTokens = append(w.AssertionTokens, vocab.assertionText(rng, kind))
		} else if len(w.Kinds) < sc.Assertions && (len(assertPool.ids) == 0 || rng.Float64() < newAssertionRate) {
			kind := drawKind(src)
			assertion = len(w.Kinds)
			w.Kinds = append(w.Kinds, kind)
			w.AssertionTokens = append(w.AssertionTokens, vocab.assertionText(rng, kind))
			assertPool.ids = append(assertPool.ids, assertion)
		} else {
			assertion = pickWeighted(&assertPool, func(aid int) float64 {
				return reassertW(w.Kinds[aid])
			})
			if assertion < 0 {
				continue
			}
		}
		w.Tweets = append(w.Tweets, Tweet{
			ID:        id,
			Source:    src,
			Text:      vocab.tweetText(rng, w.AssertionTokens[assertion]),
			RetweetOf: -1,
			Assertion: assertion,
		})
		tweetPool.ids = append(tweetPool.ids, id)
	}

	if err := w.injectSybils(rng); err != nil {
		return nil, err
	}
	w.ActiveSources = len(active)
	return w, nil
}

// injectSybils appends the coordinated bot accounts' retweets: each sybil
// (source ids Sources..Sources+Sybils-1) retweets the earliest tweet of
// every targeted rumor, manifesting a dense dependency cascade on exactly
// the assertions the attack boosts.
func (w *World) injectSybils(rng *rand.Rand) error {
	sc := w.Scenario
	if sc.Sybils <= 0 {
		return nil
	}
	targets := sc.SybilTargets
	if targets <= 0 {
		targets = 10
	}
	// Earliest tweet per rumor assertion.
	firstTweet := make(map[int]int)
	for id, t := range w.Tweets {
		if w.Kinds[t.Assertion] != KindFalse {
			continue
		}
		if _, seen := firstTweet[t.Assertion]; !seen {
			firstTweet[t.Assertion] = id
		}
	}
	rumorIDs := make([]int, 0, len(firstTweet))
	for a := range firstTweet {
		rumorIDs = append(rumorIDs, a)
	}
	sort.Ints(rumorIDs)
	randutil.Shuffle(rng, rumorIDs)
	if targets > len(rumorIDs) {
		targets = len(rumorIDs)
	}
	boosted := rumorIDs[:targets]

	for s := 0; s < sc.Sybils; s++ {
		sybil := sc.Sources + s
		w.SourceReliability[sybil] = 0 // bots never originate truth
		for _, assertion := range boosted {
			orig := w.Tweets[firstTweet[assertion]]
			if err := w.Graph.AddFollow(sybil, orig.Source); err != nil {
				return err
			}
			id := len(w.Tweets)
			w.Tweets = append(w.Tweets, Tweet{
				ID:        id,
				Source:    sybil,
				Text:      retweetText(orig.Source, orig.Text),
				RetweetOf: orig.ID,
				Assertion: assertion,
			})
		}
	}
	return nil
}

func maxOf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Events converts the stream into the timestamped claim log consumed by
// depgraph.BuildDataset, using ground-truth assertion ids. The Apollo
// pipeline does NOT use this — it reconstructs assertions by clustering
// tweet text — but the oracle dataset is useful for ablations that isolate
// clustering error.
func (w *World) Events() []depgraph.Event {
	events := make([]depgraph.Event, len(w.Tweets))
	for i, t := range w.Tweets {
		events[i] = depgraph.Event{Source: t.Source, Assertion: t.Assertion, Time: int64(t.ID)}
	}
	return events
}

// Summary describes the realized scale of a world.
type Summary struct {
	Name           string
	Sources        int
	Assertions     int
	TotalClaims    int
	OriginalClaims int
	Retweets       int
	FollowEdges    int
	TrueAssertions int
	Rumors         int
	Opinions       int
}

// Summarize computes the realized counts, the numbers our Table III
// reproduction reports next to the paper's.
func (w *World) Summarize() Summary {
	s := Summary{
		Name:        w.Scenario.Name,
		Sources:     w.ActiveSources,
		Assertions:  len(w.Kinds),
		TotalClaims: len(w.Tweets),
		FollowEdges: w.Graph.NumEdges(),
	}
	for _, t := range w.Tweets {
		if t.RetweetOf >= 0 {
			s.Retweets++
		}
	}
	s.OriginalClaims = s.TotalClaims - s.Retweets
	for _, k := range w.Kinds {
		switch k {
		case KindTrue:
			s.TrueAssertions++
		case KindFalse:
			s.Rumors++
		case KindOpinion:
			s.Opinions++
		}
	}
	return s
}
