package twittersim

import (
	"reflect"
	"sort"
	"testing"

	"depsense/internal/randutil"
)

// TestFlipPrefixUnchanged: the reliability flip leaves the generator
// untouched before the flip point, so the flipped world's tweet stream is
// identical to the unflipped world's up to FlipAtClaim — the drift the
// quality monitor sees is purely a mid-stream behavior change, not a
// different world.
func TestFlipPrefixUnchanged(t *testing.T) {
	base := Small("Ukraine", 30)
	flip := base
	flip.FlipAtClaim = 80
	flip.FlipSources = 3
	flip.FlipReliability = 0.0

	wBase, err := Generate(base, randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	wFlip, err := Generate(flip, randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(wFlip.Tweets) != len(wBase.Tweets) {
		t.Fatalf("flip changed stream length: %d vs %d", len(wFlip.Tweets), len(wBase.Tweets))
	}
	for i := 0; i < flip.FlipAtClaim; i++ {
		if !reflect.DeepEqual(wBase.Tweets[i], wFlip.Tweets[i]) {
			t.Fatalf("tweet %d differs before the flip point:\n%+v\n%+v", i, wBase.Tweets[i], wFlip.Tweets[i])
		}
	}
	if reflect.DeepEqual(wBase.Tweets, wFlip.Tweets) {
		t.Fatal("flip had no effect on the stream after the flip point")
	}

	if len(wFlip.FlippedSources) != flip.FlipSources {
		t.Fatalf("FlippedSources = %v, want %d sources", wFlip.FlippedSources, flip.FlipSources)
	}
	if !sort.IntsAreSorted(wFlip.FlippedSources) {
		t.Fatalf("FlippedSources not sorted: %v", wFlip.FlippedSources)
	}
	if wBase.FlippedSources != nil {
		t.Fatalf("unflipped world has FlippedSources %v", wBase.FlippedSources)
	}

	// Same scenario and seed: fully deterministic.
	again, err := Generate(flip, randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Tweets, wFlip.Tweets) || !reflect.DeepEqual(again.FlippedSources, wFlip.FlippedSources) {
		t.Fatal("flip generation is not deterministic for a fixed seed")
	}
}

// TestFlipValidation: flip knobs are only checked when a flip is requested,
// and bad values fail generation instead of silently misbehaving.
func TestFlipValidation(t *testing.T) {
	ok := Small("Ukraine", 60)
	ok.FlipAtClaim = 10
	if _, err := Generate(ok, randutil.New(1)); err != nil {
		t.Fatalf("default flip knobs rejected: %v", err)
	}

	bad := Small("Ukraine", 60)
	bad.FlipAtClaim = 10
	bad.FlipReliability = 1.5
	if _, err := Generate(bad, randutil.New(1)); err == nil {
		t.Fatal("FlipReliability out of range accepted")
	}

	bad = Small("Ukraine", 60)
	bad.FlipAtClaim = 10
	bad.FlipSources = bad.Sources + 1
	if _, err := Generate(bad, randutil.New(1)); err == nil {
		t.Fatal("FlipSources > Sources accepted")
	}

	// No flip requested: the other knobs are ignored entirely.
	off := Small("Ukraine", 60)
	off.FlipReliability = 99
	if _, err := Generate(off, randutil.New(1)); err != nil {
		t.Fatalf("flip knobs validated without FlipAtClaim: %v", err)
	}
}
