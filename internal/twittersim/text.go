package twittersim

import (
	"math/rand"
	"strconv"
	"strings"
)

// vocabulary holds the scenario-specific word pools that assertion texts
// are composed from. Entities and places are synthesized with numeric
// suffixes so that large scenarios get enough combinatorial room for tens
// of thousands of distinguishable assertions.
type vocabulary struct {
	entities []string
	places   []string
	verbs    []string
	objects  []string
	opinionT []string // opinion templates
	fillers  []string
	hashtag  string
}

func newVocabulary(sc Scenario) *vocabulary {
	v := &vocabulary{
		verbs: []string{
			"reported", "confirmed", "denied", "spotted", "announced",
			"evacuated", "closed", "attacked", "blocked", "rescued",
			"arrested", "injured", "witnessed", "canceled", "warned",
		},
		objects: []string{
			"explosion", "gunfire", "crowd", "fire", "outage", "protest",
			"roadblock", "casualties", "sirens", "smoke", "panic",
			"shortage", "flooding", "lockdown", "stampede",
		},
		opinionT: []string{
			"thoughts prayers", "heartbroken about", "so proud of",
			"disgusted by", "cant believe", "stay safe", "praying for",
			"shame about", "furious about", "grateful for",
		},
		fillers: []string{
			"breaking", "just", "now", "omg", "update", "live", "watch",
			"developing", "alert", "unconfirmed", "via", "more", "soon",
		},
		hashtag: "#" + strings.ToLower(strings.Split(sc.Name, " ")[0]),
	}
	stems := []string{"witness", "official", "officer", "reporter", "resident", "medic", "driver", "student"}
	for i := 0; i < sc.Entities; i++ {
		v.entities = append(v.entities, stems[i%len(stems)]+strconv.Itoa(i))
	}
	placeStems := []string{"avenue", "square", "district", "station", "bridge", "market", "campus", "plaza"}
	for i := 0; i < sc.Places; i++ {
		v.places = append(v.places, placeStems[i%len(placeStems)]+strconv.Itoa(i))
	}
	return v
}

// assertionText composes the canonical content tokens of one assertion.
// Factual assertions are (entity, verb, object, place, numeral, hashtag)
// tuples; opinions are (template…, entity, entity, place, hashtag). Each
// carries enough distinguishing tokens that distinct assertions rarely
// exceed the clustering similarity threshold, while repeats of the same
// assertion (sharing the canonical tokens) clear it comfortably.
func (v *vocabulary) assertionText(rng *rand.Rand, kind Kind) []string {
	place := v.places[rng.Intn(len(v.places))]
	if kind == KindOpinion {
		tmpl := v.opinionT[rng.Intn(len(v.opinionT))]
		toks := strings.Fields(tmpl)
		toks = append(toks,
			v.entities[rng.Intn(len(v.entities))],
			v.entities[rng.Intn(len(v.entities))],
			place, v.hashtag)
		return toks
	}
	return []string{
		v.entities[rng.Intn(len(v.entities))],
		v.verbs[rng.Intn(len(v.verbs))],
		v.objects[rng.Intn(len(v.objects))],
		place,
		"n" + strconv.Itoa(rng.Intn(500)),
		v.hashtag,
	}
}

// tweetText renders one tweet of an assertion: the canonical tokens with
// light noise (an optional dropped token, filler words, an occasional fake
// link), as real tweets of the same claim vary in phrasing.
func (v *vocabulary) tweetText(rng *rand.Rand, canonical []string) string {
	toks := make([]string, 0, len(canonical)+3)
	drop := -1
	// Never drop the first (entity) or last (hashtag) token: they anchor
	// cluster recall.
	if len(canonical) > 4 && rng.Float64() < 0.25 {
		drop = 1 + rng.Intn(len(canonical)-2)
	}
	if rng.Float64() < 0.5 {
		toks = append(toks, v.fillers[rng.Intn(len(v.fillers))])
	}
	for i, tok := range canonical {
		if i == drop {
			continue
		}
		toks = append(toks, tok)
	}
	if rng.Float64() < 0.3 {
		toks = append(toks, v.fillers[rng.Intn(len(v.fillers))])
	}
	if rng.Float64() < 0.2 {
		toks = append(toks, "http://t.co/"+strconv.FormatInt(rng.Int63n(1<<30), 36))
	}
	return strings.Join(toks, " ")
}

// retweetText renders a retweet in the classic quoted form.
func retweetText(author int, original string) string {
	return "rt @user" + strconv.Itoa(author) + ": " + original
}
