// Package twittersim is the repository's substitute for the paper's five
// 2015 Twitter datasets (Table III), which are no longer publicly
// available. It simulates a topic-focused tweet stream end to end: a pool
// of sources with heterogeneous reliability and activity, factual
// assertions (true and false) plus opinion chaff, original reporting,
// rumor-biased retweet cascades, and per-tweet text built from a scenario
// vocabulary so that assertion extraction (clustering) remains a real,
// imperfect step exactly as in the Apollo tool.
//
// The five presets are scaled to the paper's Table III: the number of
// sources, assertions, total claims, and original claims land within a few
// percent of the reported values. The behavioural structure preserves what
// the empirical evaluation actually exercises: correlated errors flow along
// observable retweet edges, so dependency-aware estimation pays off, while
// raw popularity (Voting) is inflated by viral rumors and opinions.
package twittersim

import "strconv"

// Scenario parameterizes one simulated dataset.
type Scenario struct {
	// Name of the event, e.g. "Ukraine".
	Name string
	// Sources is the target number of distinct sources.
	Sources int
	// Assertions is the target number of distinct factual+opinion
	// assertions.
	Assertions int
	// Claims is the target total number of claims (tweets before
	// per-source deduplication).
	Claims int
	// OriginalClaims is the target number of original (non-retweet) tweets.
	OriginalClaims int

	// TrueShare, FalseShare and OpinionShare partition the assertion space;
	// they must sum to 1.
	TrueShare    float64
	FalseShare   float64
	OpinionShare float64

	// RumorVirality multiplies a false assertion's chance of being picked
	// as a retweet target; OpinionVirality does the same for opinions.
	// Values above 1 make misinformation cascade, the phenomenon the
	// paper's dependency model is built to discount.
	RumorVirality   float64
	OpinionVirality float64

	// TrueReassert multiplies a true assertion's chance of being picked for
	// independent re-reporting (multiple witnesses of a real event);
	// FalseReassert is the rumor counterpart (usually < 1: few independent
	// fabrications of the same falsehood).
	TrueReassert  float64
	FalseReassert float64

	// ActivitySkew is the Zipf exponent of per-source activity; higher
	// concentrates tweeting in a few prolific accounts.
	ActivitySkew float64
	// ReliabilityLow/High bound each source's probability of originating a
	// true assertion rather than a false one when reporting facts.
	ReliabilityLow, ReliabilityHigh float64
	// OpinionRate is the probability an original tweet voices an opinion
	// instead of reporting a fact.
	OpinionRate float64

	// Vocabulary sizing for tweet text generation.
	Entities int
	Places   int

	// Sybils adds that many coordinated bot accounts on top of Sources.
	// Each sybil retweets the first tweet of SybilTargets rumors, the
	// classic amplification attack: popularity-driven fact-finders inflate
	// the boosted rumors while dependency-aware estimators see the support
	// is correlated. Zero disables the attack.
	Sybils int
	// SybilTargets is the number of rumors the bot network boosts
	// (default 10 when Sybils > 0).
	SybilTargets int

	// FlipAtClaim, when > 0, injects mid-stream reliability drift: once the
	// stream reaches that many claims, the FlipSources earliest-activated
	// (most prolific) sources turn fabrication mill — every original tweet
	// they post coins a fresh assertion that is true only with probability
	// FlipReliability, a unique lie with no independent co-claimants — a
	// compromised news desk, the regime change the drift detectors
	// (internal/qual) are built to catch. Fabrications bypass the Assertions
	// budget, so a flipped world carries more distinct assertions than its
	// unflipped twin. The flipped stream is deterministic given the seed and
	// identical to the unflipped one before the flip point.
	// World.FlippedSources lists the flipped source ids. Zero disables the
	// injection.
	FlipAtClaim int
	// FlipSources is the number of sources flipped (default 1 when
	// FlipAtClaim > 0).
	FlipSources int
	// FlipReliability is the flipped sources' post-flip probability of
	// originating truth, in [0, 1].
	FlipReliability float64
}

// Presets returns the five scenarios scaled to Table III of the paper.
func Presets() []Scenario {
	base := Scenario{
		TrueShare:       0.50,
		FalseShare:      0.32,
		OpinionShare:    0.18,
		RumorVirality:   4.0,
		OpinionVirality: 1.6,
		TrueReassert:    2.0,
		FalseReassert:   0.4,
		ActivitySkew:    0.8,
		ReliabilityLow:  0.55,
		ReliabilityHigh: 0.95,
		OpinionRate:     0.18,
	}
	mk := func(name string, sources, assertions, claims, originals int) Scenario {
		s := base
		s.Name = name
		s.Sources = sources
		s.Assertions = assertions
		s.Claims = claims
		s.OriginalClaims = originals
		s.Entities = 40 + isqrt(assertions)*3
		s.Places = 20 + isqrt(assertions)
		return s
	}
	return []Scenario{
		mk("Ukraine", 5403, 3703, 7192, 4242),
		mk("Kirkuk", 4816, 2795, 6188, 3079),
		mk("Superbug", 7764, 2873, 9426, 5831),
		mk("LA Marathon", 5174, 3537, 7148, 4332),
		mk("Paris Attack", 38844, 23513, 41249, 38794),
	}
}

// Preset returns the named scenario, or false when unknown.
func Preset(name string) (Scenario, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Small returns a reduced-scale scenario for tests and examples: the same
// behavioural parameters as a preset but a fraction of the volume.
func Small(name string, scale int) Scenario {
	s, ok := Preset(name)
	if !ok {
		s = Presets()[0]
	}
	if scale < 1 {
		scale = 1
	}
	s.Name = s.Name + " (1/" + strconv.Itoa(scale) + ")"
	s.Sources /= scale
	s.Assertions /= scale
	s.Claims /= scale
	s.OriginalClaims /= scale
	s.Entities = 40 + isqrt(s.Assertions)*3
	s.Places = 20 + isqrt(s.Assertions)
	return s
}

func isqrt(v int) int {
	if v <= 0 {
		return 0
	}
	x := v
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + v/x) / 2
	}
	return x
}
