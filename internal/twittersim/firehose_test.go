package twittersim

import (
	"context"
	"testing"
	"time"

	"depsense/internal/randutil"
)

func firehoseWorld(t *testing.T) *World {
	t.Helper()
	w, err := Generate(Small("Ukraine", 20), randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tweets) == 0 {
		t.Fatal("generated world has no tweets")
	}
	return w
}

// TestFirehoseEmitsAllTweetsInOrder: an unpaced firehose replays the whole
// stream in id order with stable epoch-anchored timestamps.
func TestFirehoseEmitsAllTweetsInOrder(t *testing.T) {
	w := firehoseWorld(t)
	fh := w.Firehose(FirehoseOptions{Interval: time.Second})
	ctx := context.Background()
	n := 0
	for {
		tt, ok := fh.Next(ctx)
		if !ok {
			break
		}
		if tt.ID != w.Tweets[n].ID || tt.Text != w.Tweets[n].Text {
			t.Fatalf("emission %d: got tweet %d, want %d", n, tt.ID, w.Tweets[n].ID)
		}
		want := time.Unix(0, 0).UTC().Add(time.Duration(tt.ID) * time.Second)
		if !tt.Time.Equal(want) {
			t.Fatalf("tweet %d stamped %v, want %v", tt.ID, tt.Time, want)
		}
		n++
	}
	if n != len(w.Tweets) {
		t.Fatalf("emitted %d tweets, want %d", n, len(w.Tweets))
	}
	if fh.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", fh.Remaining())
	}
}

// TestFirehoseStampsStableAcrossResume: a firehose resumed at an offset (or
// re-seeked) stamps every tweet identically to the uninterrupted run — the
// timestamp is a function of the tweet id, not of when emission happens.
func TestFirehoseStampsStableAcrossResume(t *testing.T) {
	w := firehoseWorld(t)
	ctx := context.Background()
	epoch := time.Unix(1700000000, 0).UTC()
	opts := FirehoseOptions{Interval: 250 * time.Millisecond, Epoch: epoch}

	full := w.Firehose(opts)
	var want []TimedTweet
	for {
		tt, ok := full.Next(ctx)
		if !ok {
			break
		}
		want = append(want, tt)
	}

	cut := len(want) / 2
	resumedOpts := opts
	resumedOpts.Offset = cut
	resumed := w.Firehose(resumedOpts)
	for i := cut; ; i++ {
		tt, ok := resumed.Next(ctx)
		if !ok {
			if i != len(want) {
				t.Fatalf("resumed firehose ended at %d, want %d", i, len(want))
			}
			break
		}
		if tt.ID != want[i].ID || !tt.Time.Equal(want[i].Time) {
			t.Fatalf("resumed emission %d: (%d, %v), want (%d, %v)",
				i, tt.ID, tt.Time, want[i].ID, want[i].Time)
		}
	}

	// Seek repositions an existing firehose the same way.
	full.Seek(cut)
	tt, ok := full.Next(ctx)
	if !ok || tt.ID != want[cut].ID || !tt.Time.Equal(want[cut].Time) {
		t.Fatalf("after Seek(%d): got (%d, %v, ok=%v), want (%d, %v)",
			cut, tt.ID, tt.Time, ok, want[cut].ID, want[cut].Time)
	}
}

// TestFirehosePacesOnInjectedClock: with Pace set, each emission waits until
// its due instant on the injected clock; the fake sleeper advances the fake
// clock, so the requested waits are exactly the configured cadence.
func TestFirehosePacesOnInjectedClock(t *testing.T) {
	w := firehoseWorld(t)
	now := time.Unix(5000, 0)
	var waits []time.Duration
	opts := FirehoseOptions{
		Interval: 10 * time.Millisecond,
		Pace:     true,
		Clock:    func() time.Time { return now },
		Sleep: func(d time.Duration) {
			waits = append(waits, d)
			now = now.Add(d)
		},
	}
	fh := w.Firehose(opts)
	ctx := context.Background()
	const emit = 5
	for i := 0; i < emit; i++ {
		if _, ok := fh.Next(ctx); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
	}
	// The first tweet is due immediately at the creation instant; each of
	// the remaining emissions sleeps one full interval.
	if len(waits) != emit-1 {
		t.Fatalf("slept %d times, want %d", len(waits), emit-1)
	}
	for i, d := range waits {
		if d != 10*time.Millisecond {
			t.Fatalf("wait %d = %v, want 10ms", i, d)
		}
	}
	// A slow consumer that falls behind does not sleep at all.
	now = now.Add(time.Hour)
	before := len(waits)
	if _, ok := fh.Next(ctx); !ok {
		t.Fatal("stream ended early")
	}
	if len(waits) != before {
		t.Fatal("firehose slept while behind schedule")
	}
}

// TestFirehoseStopsOnCancel: cancellation ends the stream both before and
// during a paced wait.
func TestFirehoseStopsOnCancel(t *testing.T) {
	w := firehoseWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fh := w.Firehose(FirehoseOptions{})
	if _, ok := fh.Next(ctx); ok {
		t.Fatal("Next succeeded on cancelled context")
	}

	// Cancelled mid-sleep: the injected sleeper cancels, and Next reports
	// the stream closed instead of emitting.
	ctx2, cancel2 := context.WithCancel(context.Background())
	now := time.Unix(0, 0)
	fh2 := w.Firehose(FirehoseOptions{
		Pace:  true,
		Clock: func() time.Time { return now },
		Sleep: func(d time.Duration) { cancel2() },
	})
	if _, ok := fh2.Next(ctx2); !ok {
		t.Fatal("first tweet should emit without sleeping")
	}
	if _, ok := fh2.Next(ctx2); ok {
		t.Fatal("Next succeeded after cancellation during paced wait")
	}
}

// TestRetweetedSource resolves retweets to the original author.
func TestRetweetedSource(t *testing.T) {
	w := firehoseWorld(t)
	sawRetweet := false
	for _, tw := range w.Tweets {
		got := w.RetweetedSource(tw)
		if tw.RetweetOf < 0 {
			if got != -1 {
				t.Fatalf("original tweet %d resolved to source %d", tw.ID, got)
			}
			continue
		}
		sawRetweet = true
		if want := w.Tweets[tw.RetweetOf].Source; got != want {
			t.Fatalf("tweet %d retweets %d: source %d, want %d", tw.ID, tw.RetweetOf, got, want)
		}
	}
	if !sawRetweet {
		t.Skip("scenario generated no retweets")
	}
}
