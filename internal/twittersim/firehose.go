package twittersim

import (
	"context"
	"time"
)

// TimedTweet is one firehose emission: a tweet plus its stable stream
// timestamp. The timestamp is a deterministic function of the tweet's ID
// and the firehose's epoch — never of the wall clock at emission — so the
// same world always yields the same timestamps, across runs and across
// restarts resuming mid-stream.
type TimedTweet struct {
	Tweet
	// Time is the tweet's timestamp: Epoch + ID·Interval.
	Time time.Time
}

// FirehoseOptions configures a World's firehose replay.
type FirehoseOptions struct {
	// Interval is the per-tweet spacing, used both for the stable
	// timestamps (Epoch + ID·Interval) and, when Pace is set, for the
	// emission cadence. Zero selects one millisecond.
	Interval time.Duration
	// Epoch anchors the stable timestamps; the zero value selects the Unix
	// epoch. Persist it alongside stream state so a restarted service
	// resumes with identical timestamps.
	Epoch time.Time
	// Offset skips the first Offset tweets, resuming mid-stream after a
	// restart. Skipped tweets keep their ids and timestamps.
	Offset int
	// Pace throttles emission to the interval cadence, making the firehose
	// stand in for a live stream; unset replays as fast as the consumer
	// drains. Pacing is measured on Clock relative to the firehose's
	// creation instant, independent of the stamped timestamps.
	Pace bool
	// Clock supplies the pacing clock; nil means the wall clock. Injected
	// so paced emission is testable with a fake clock under the
	// clocked-zone lint contract.
	Clock func() time.Time
	// Sleep waits out pacing gaps; nil selects a context-aware real sleep.
	// Tests inject a fake that advances their fake clock.
	Sleep func(time.Duration)
}

// Firehose replays a World's tweet stream one tweet at a time, stamping
// each with its stable timestamp and optionally pacing emission on an
// injected clock. It is the ingestion pipeline's stand-in for a live
// tweet stream; it is not safe for concurrent use.
type Firehose struct {
	world   *World
	opts    FirehoseOptions
	created time.Time
	next    int
}

// Firehose starts a replay of the world's stream.
func (w *World) Firehose(opts FirehoseOptions) *Firehose {
	if opts.Interval <= 0 {
		opts.Interval = time.Millisecond
	}
	if opts.Epoch.IsZero() {
		opts.Epoch = time.Unix(0, 0).UTC()
	}
	if opts.Offset < 0 {
		opts.Offset = 0
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	opts.Clock = clock
	return &Firehose{world: w, opts: opts, created: clock(), next: opts.Offset}
}

// TweetTime returns the stable timestamp of tweet id under the firehose's
// epoch and interval.
func (f *Firehose) TweetTime(id int) time.Time {
	return f.opts.Epoch.Add(time.Duration(id) * f.opts.Interval)
}

// Remaining returns how many tweets are left to emit.
func (f *Firehose) Remaining() int {
	if f.next >= len(f.world.Tweets) {
		return 0
	}
	return len(f.world.Tweets) - f.next
}

// Seek repositions the firehose so the next emission is tweet id (clamped
// to the stream bounds); a restarted service seeks to its replayed
// position before resuming.
func (f *Firehose) Seek(id int) {
	if id < 0 {
		id = 0
	}
	if id > len(f.world.Tweets) {
		id = len(f.world.Tweets)
	}
	f.next = id
}

// Next emits the next tweet, sleeping out the pacing gap first when Pace
// is set. ok is false when the stream is exhausted or ctx is cancelled.
func (f *Firehose) Next(ctx context.Context) (TimedTweet, bool) {
	if f.next >= len(f.world.Tweets) || ctx.Err() != nil {
		return TimedTweet{}, false
	}
	if f.opts.Pace {
		due := f.created.Add(time.Duration(f.next-f.opts.Offset) * f.opts.Interval)
		if wait := due.Sub(f.opts.Clock()); wait > 0 {
			if !f.sleep(ctx, wait) {
				return TimedTweet{}, false
			}
		}
	}
	t := f.world.Tweets[f.next]
	f.next++
	return TimedTweet{Tweet: t, Time: f.TweetTime(t.ID)}, true
}

// sleep waits d on the injected sleeper, or on a context-aware timer when
// none is injected; it reports false when ctx ended the wait early.
func (f *Firehose) sleep(ctx context.Context, d time.Duration) bool {
	if f.opts.Sleep != nil {
		f.opts.Sleep(d)
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// RetweetedSource resolves the author a tweet repeats: the source of the
// retweeted tweet, or -1 for originals. The ingestion pipeline derives
// follow edges from this (retweeting manifests "follower sees followee").
func (w *World) RetweetedSource(t Tweet) int {
	if t.RetweetOf < 0 || t.RetweetOf >= len(w.Tweets) {
		return -1
	}
	return w.Tweets[t.RetweetOf].Source
}
