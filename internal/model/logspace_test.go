package model

import (
	"math"
	"testing"
)

func TestSafeLogMatchesLogInRange(t *testing.T) {
	for _, p := range []float64{ProbEpsilon, 0.01, 0.5, 0.9, 1} {
		if got, want := SafeLog(p), math.Log(p); got != want {
			t.Errorf("SafeLog(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestSafeLogClampsDegenerate(t *testing.T) {
	floor := math.Log(ProbEpsilon)
	for _, p := range []float64{0, -1, ProbEpsilon / 2} {
		got := SafeLog(p)
		if math.IsInf(got, -1) || math.IsNaN(got) {
			t.Fatalf("SafeLog(%g) = %g; the clamp floor must keep it finite", p, got)
		}
		if got != floor {
			t.Errorf("SafeLog(%g) = %g, want clamp floor %g", p, got, floor)
		}
	}
}

func TestLog1m(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 1 - ProbEpsilon} {
		if got, want := Log1m(p), math.Log1p(-p); got != want {
			t.Errorf("Log1m(%g) = %g, want %g", p, got, want)
		}
	}
	if got := Log1m(1); math.IsInf(got, -1) || math.IsNaN(got) {
		t.Errorf("Log1m(1) = %g; must clamp, not overflow to -Inf", got)
	}
}

func TestLogSumExp(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{math.Log(0.3), math.Log(0.7)},
		{math.Log(1e-12), math.Log(1)},
		{-1000, -1001}, // both exp() underflow raw; stable in log-space
	}
	for _, c := range cases {
		got := LogSumExp(c.a, c.b)
		want := math.Max(c.a, c.b) + math.Log1p(math.Exp(math.Min(c.a, c.b)-math.Max(c.a, c.b)))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("LogSumExp(%g, %g) = %g, want %g", c.a, c.b, got, want)
		}
	}
	// Symmetry and the -Inf identity element.
	if LogSumExp(-2, -5) != LogSumExp(-5, -2) {
		t.Error("LogSumExp is not symmetric")
	}
	if got := LogSumExp(math.Inf(-1), -3); got != -3 {
		t.Errorf("LogSumExp(-Inf, -3) = %g, want -3", got)
	}
	if got := LogSumExp(math.Inf(-1), math.Inf(-1)); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(-Inf, -Inf) = %g, want -Inf", got)
	}
	// log(0.3+0.7) == log(1) == 0.
	if got := LogSumExp(math.Log(0.3), math.Log(0.7)); math.Abs(got) > 1e-12 {
		t.Errorf("LogSumExp(log .3, log .7) = %g, want 0", got)
	}
}

// TestLogProdSurvivesUnderflow is the motivating case for the whole file: a
// raw chain of 2000 factors of 0.5 underflows float64 to exactly 0, while
// the log-space product keeps the magnitude.
func TestLogProdSurvivesUnderflow(t *testing.T) {
	raw := 1.0
	ps := make([]float64, 2000)
	for i := range ps {
		ps[i] = 0.5
		raw *= 0.5
	}
	if raw != 0 {
		t.Fatalf("expected the raw product to underflow to 0, got %g", raw)
	}
	got := LogProd(ps...)
	want := 2000 * math.Log(0.5)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("LogProd = %g, want %g", got, want)
	}
	if math.IsInf(got, -1) || math.IsNaN(got) {
		t.Errorf("LogProd underflowed: %g", got)
	}
}

func TestFromLog(t *testing.T) {
	if got := FromLog(math.Log(0.25)); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("FromLog(log .25) = %g", got)
	}
	if got := FromLog(math.Inf(-1)); got != 0 {
		t.Errorf("FromLog(-Inf) = %g, want 0", got)
	}
	if got := FromLog(0); got != 1 {
		t.Errorf("FromLog(0) = %g, want 1", got)
	}
}
