package model

import "math"

// Log-space helpers for the posterior computations of Eqs. 9-14. A raw
// product of per-source emission probabilities underflows float64 once a
// few hundred factors of magnitude ~0.5 are chained (0.5^1075 == 0), so
// every likelihood accumulation in this repository sums logs and resolves
// normalization with LogSumExp. The probexpr analyzer points raw-space
// product chains here.

// SafeLog returns log(p) for a probability, mapping p <= 0 to the log of
// the clamp floor instead of -Inf so that one degenerate factor cannot
// poison a whole log-space accumulation. Probabilities that went through
// ClampProb never hit the fallback.
func SafeLog(p float64) float64 {
	if p < ProbEpsilon {
		return logProbEpsilon
	}
	return math.Log(p)
}

// Log1m returns log(1-p) with the same clamp-floor behavior as SafeLog,
// for complement factors (1-a_i, 1-f_i, ...).
func Log1m(p float64) float64 {
	if p > 1-ProbEpsilon {
		return logProbEpsilon
	}
	return math.Log1p(-p)
}

var logProbEpsilon = math.Log(ProbEpsilon)

// LogSumExp returns log(exp(a)+exp(b)) computed stably; it is how a
// log-space accumulation resolves the (true, false) hypothesis
// normalization without leaving log-space.
func LogSumExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogProd returns the log of the product of the given probabilities,
// accumulated as a sum of SafeLogs. It is the drop-in replacement for a
// raw p1*p2*...*pk chain.
func LogProd(ps ...float64) float64 {
	sum := 0.0
	for _, p := range ps {
		sum += SafeLog(p)
	}
	return sum
}

// FromLog maps a log-space value back to a probability, flushing underflow
// to 0 rather than NaN.
func FromLog(logp float64) float64 {
	if math.IsInf(logp, -1) {
		return 0
	}
	return math.Exp(logp)
}
