package model

import (
	"math/rand"
	"reflect"
	"testing"
)

// randDense draws an n×m boolean matrix with the given density.
func randDense(rng *rand.Rand, n, m int, density float64) [][]bool {
	d := make([][]bool, n)
	for i := range d {
		d[i] = make([]bool, m)
		for j := range d[i] {
			d[i][j] = rng.Float64() < density
		}
	}
	return d
}

// sparseGrid is the (n, m, density, seed) case grid shared by the property
// tests, mirroring the kernel differential suite's shape.
var sparseGrid = []struct {
	n, m    int
	density float64
	seed    int64
}{
	{0, 0, 0, 1},
	{1, 1, 1, 1},
	{3, 7, 0.0, 2},
	{5, 5, 0.2, 3},
	{17, 9, 0.5, 4},
	{32, 64, 0.05, 5},
	{64, 32, 0.9, 6},
}

func TestCSRDenseRoundTrip(t *testing.T) {
	for _, tc := range sparseGrid {
		rng := rand.New(rand.NewSource(tc.seed))
		d := randDense(rng, tc.n, tc.m, tc.density)
		a := CSRFromDense(d)
		if err := a.Validate(); err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		if back := a.Dense(); !reflect.DeepEqual(back, denseOrNil(d)) {
			t.Fatalf("n=%d m=%d density=%v: CSR dense round trip drifted", tc.n, tc.m, tc.density)
		}
		c := CSCFromDense(d)
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		if back := c.Dense(); !reflect.DeepEqual(back, denseOrNil(d)) {
			t.Fatalf("n=%d m=%d density=%v: CSC dense round trip drifted", tc.n, tc.m, tc.density)
		}
	}
}

// denseOrNil mirrors Dense's nil-for-empty convention so DeepEqual
// comparisons do not fail on nil vs empty slice.
func denseOrNil(d [][]bool) [][]bool {
	if len(d) == 0 {
		return nil
	}
	return d
}

// TestTransposeRoundTrip: CSR → CSC → CSR and CSC → CSR → CSC are
// identities, and both directions agree with building from the transposed
// dense matrix.
func TestTransposeRoundTrip(t *testing.T) {
	for _, tc := range sparseGrid {
		rng := rand.New(rand.NewSource(tc.seed))
		d := randDense(rng, tc.n, tc.m, tc.density)
		a := CSRFromDense(d)
		if got := a.CSC().CSR(); !got.Equal(a) {
			t.Fatalf("n=%d m=%d: CSR→CSC→CSR not identity", tc.n, tc.m)
		}
		c := CSCFromDense(d)
		if got := c.CSR().CSC(); !got.Equal(c) {
			t.Fatalf("n=%d m=%d: CSC→CSR→CSC not identity", tc.n, tc.m)
		}
		if !a.CSC().Equal(c) {
			t.Fatalf("n=%d m=%d: CSRFromDense().CSC() != CSCFromDense()", tc.n, tc.m)
		}
	}
}

// TestBuildOrderDeterminism: NewCSR/NewCSC canonicalize, so shuffled and
// duplicated coordinate lists build byte-identical structures.
func TestBuildOrderDeterminism(t *testing.T) {
	for _, tc := range sparseGrid {
		if tc.n == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(tc.seed))
		d := randDense(rng, tc.n, tc.m, tc.density)
		var pairs []Pair
		for i := range d {
			for j := range d[i] {
				if d[i][j] {
					pairs = append(pairs, Pair{i, j})
				}
			}
		}
		want, err := NewCSR(tc.n, tc.m, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(CSRFromDense(d)) {
			t.Fatalf("n=%d m=%d: NewCSR != CSRFromDense", tc.n, tc.m)
		}
		shuffled := append([]Pair(nil), pairs...)
		shuffled = append(shuffled, pairs...) // duplicates must dedup away
		rng.Shuffle(len(shuffled), func(a, b int) {
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		})
		got, err := NewCSR(tc.n, tc.m, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("n=%d m=%d: shuffled build differs from sorted build", tc.n, tc.m)
		}
		gotC, err := NewCSC(tc.n, tc.m, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !gotC.Equal(want.CSC()) {
			t.Fatalf("n=%d m=%d: shuffled CSC build differs", tc.n, tc.m)
		}
	}
}

// TestIterationOrder: Row/Col iteration is strictly increasing — the
// invariant every floating-point reduction in the kernels leans on.
func TestIterationOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randDense(rng, 40, 25, 0.3)
	a := CSRFromDense(d)
	for i := 0; i < a.NumRows; i++ {
		row := a.Row(i)
		for k := 1; k < len(row); k++ {
			if row[k-1] >= row[k] {
				t.Fatalf("row %d not strictly increasing at %d", i, k)
			}
		}
	}
	c := a.CSC()
	for j := 0; j < c.NumCols; j++ {
		col := c.Col(j)
		for k := 1; k < len(col); k++ {
			if col[k-1] >= col[k] {
				t.Fatalf("col %d not strictly increasing at %d", j, k)
			}
		}
	}
}

func TestNewCSRRejectsOutOfRange(t *testing.T) {
	for _, p := range []Pair{{-1, 0}, {0, -1}, {3, 0}, {0, 5}} {
		if _, err := NewCSR(3, 5, []Pair{p}); err == nil {
			t.Fatalf("NewCSR accepted out-of-range pair %+v", p)
		}
	}
	if _, err := NewCSR(-1, 2, nil); err == nil {
		t.Fatal("NewCSR accepted negative dimension")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := func() *CSR {
		return CSRFromDense([][]bool{{true, false, true}, {false, true, false}})
	}
	cases := []struct {
		name    string
		corrupt func(*CSR)
	}{
		{"pointer-length", func(a *CSR) { a.RowPtr = a.RowPtr[:len(a.RowPtr)-1] }},
		{"pointer-decrease", func(a *CSR) { a.RowPtr[1] = 3; a.RowPtr[2] = 2 }},
		{"index-range", func(a *CSR) { a.Col[0] = 9 }},
		{"index-order", func(a *CSR) { a.Col[0], a.Col[1] = a.Col[1], a.Col[0] }},
		{"tail-mismatch", func(a *CSR) { a.RowPtr[len(a.RowPtr)-1] = 1 }},
	}
	for _, tc := range cases {
		a := base()
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: base not valid: %v", tc.name, err)
		}
		tc.corrupt(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: corruption not caught", tc.name)
		}
	}
}

// FuzzCSRFromDense drives the dense↔sparse↔transpose round trips from
// fuzzed bit patterns: whatever the matrix, CSRFromDense must validate,
// round-trip through Dense, and agree with its double transpose.
func FuzzCSRFromDense(f *testing.F) {
	f.Add(uint(3), uint(4), []byte{0b1011, 0b0110, 0b0001})
	f.Add(uint(1), uint(1), []byte{1})
	f.Add(uint(0), uint(0), []byte{})
	f.Add(uint(8), uint(8), []byte{0xff, 0x00, 0xaa, 0x55, 0x0f, 0xf0, 0x81, 0x18})
	f.Fuzz(func(t *testing.T, un, um uint, bits []byte) {
		n := int(un % 48)
		m := int(um % 48)
		d := make([][]bool, n)
		for i := range d {
			d[i] = make([]bool, m)
			for j := range d[i] {
				k := i*m + j
				if k/8 < len(bits) {
					d[i][j] = bits[k/8]&(1<<(k%8)) != 0
				}
			}
		}
		a := CSRFromDense(d)
		if err := a.Validate(); err != nil {
			t.Fatalf("CSR invalid: %v", err)
		}
		if back := a.Dense(); !reflect.DeepEqual(back, denseOrNil(d)) {
			t.Fatal("dense round trip drifted")
		}
		c := a.CSC()
		if err := c.Validate(); err != nil {
			t.Fatalf("CSC invalid: %v", err)
		}
		if !c.CSR().Equal(a) {
			t.Fatal("double transpose not identity")
		}
		if !c.Equal(CSCFromDense(d)) {
			t.Fatal("CSC() disagrees with CSCFromDense")
		}
	})
}
