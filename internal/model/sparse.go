package model

import (
	"errors"
	"fmt"
	"sort"
)

// Sparse pattern matrices for the hot-path kernels. The SC (source-claim)
// and D (dependency) matrices of Section II are n×m binary and extremely
// sparse on social data — a source touches a handful of the thousands of
// assertions in a dataset — so the estimator kernels iterate their nonzero
// structure only. CSR (compressed sparse row) serves the by-source loops
// (the M-step of Eqs. 10-13), CSC (compressed sparse column) the
// by-assertion loops (the E-step of Eq. 9 and the bound's dependency
// columns). Both are pattern-only: a nonzero's value is its presence.
// Per-nonzero payloads (the dependency flag riding on SC's nonzeros) live
// in caller-owned slices aligned with the nonzero order.
//
// Determinism contract: column indices are strictly increasing within every
// CSR row and row indices strictly increasing within every CSC column, so
// iteration order — and therefore every floating-point reduction driven by
// these structures — is a pure function of the matrix, never of the build
// path. NewCSR/NewCSC sort and deduplicate; Validate checks the invariant
// for hand-assembled values.

// Pair is one nonzero coordinate of a sparse pattern matrix.
type Pair struct {
	Row, Col int
}

// ErrBadSparse reports a structurally invalid sparse matrix.
var ErrBadSparse = errors.New("model: invalid sparse matrix")

// CSR is a binary pattern matrix in compressed sparse row form: the column
// indices of row i are Col[RowPtr[i]:RowPtr[i+1]], strictly increasing.
type CSR struct {
	NumRows, NumCols int
	// RowPtr has NumRows+1 entries; RowPtr[0] = 0 and RowPtr[NumRows] = NNZ.
	RowPtr []int32
	// Col holds the nonzeros' column indices, row-major.
	Col []int32
}

// CSC is a binary pattern matrix in compressed sparse column form: the row
// indices of column j are Row[ColPtr[j]:ColPtr[j+1]], strictly increasing.
type CSC struct {
	NumRows, NumCols int
	// ColPtr has NumCols+1 entries; ColPtr[0] = 0 and ColPtr[NumCols] = NNZ.
	ColPtr []int32
	// Row holds the nonzeros' row indices, column-major.
	Row []int32
}

// NewCSR builds a CSR matrix from nonzero coordinates. Pairs may arrive in
// any order and may repeat; the result is sorted and deduplicated, so two
// builds from permutations of the same coordinate set are identical.
func NewCSR(rows, cols int, pairs []Pair) (*CSR, error) {
	sorted, err := canonPairs(rows, cols, pairs)
	if err != nil {
		return nil, err
	}
	a := &CSR{
		NumRows: rows,
		NumCols: cols,
		RowPtr:  make([]int32, rows+1),
		Col:     make([]int32, 0, len(sorted)),
	}
	for _, p := range sorted {
		a.Col = append(a.Col, int32(p.Col))
		a.RowPtr[p.Row+1]++
	}
	for i := 0; i < rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a, nil
}

// NewCSC builds a CSC matrix from nonzero coordinates, with the same
// sort-and-deduplicate canonicalization as NewCSR.
func NewCSC(rows, cols int, pairs []Pair) (*CSC, error) {
	a, err := NewCSR(rows, cols, pairs)
	if err != nil {
		return nil, err
	}
	return a.CSC(), nil
}

// canonPairs range-checks, sorts row-major, and deduplicates.
func canonPairs(rows, cols int, pairs []Pair) ([]Pair, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: %d×%d", ErrBadSparse, rows, cols)
	}
	sorted := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		if p.Row < 0 || p.Row >= rows || p.Col < 0 || p.Col >= cols {
			return nil, fmt.Errorf("%w: nonzero (%d,%d) outside %d×%d",
				ErrBadSparse, p.Row, p.Col, rows, cols)
		}
		sorted = append(sorted, p)
	}
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	dedup := sorted[:0]
	for i, p := range sorted {
		if i == 0 || p != sorted[i-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup, nil
}

// CSRFromDense converts a dense boolean matrix (rows of equal length) into
// CSR form. An empty matrix yields a valid 0×0 CSR.
func CSRFromDense(d [][]bool) *CSR {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	a := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int32, rows+1)}
	for i, row := range d {
		for j, on := range row {
			if on {
				a.Col = append(a.Col, int32(j))
			}
		}
		a.RowPtr[i+1] = int32(len(a.Col))
	}
	return a
}

// CSCFromDense converts a dense boolean matrix into CSC form.
func CSCFromDense(d [][]bool) *CSC {
	return CSRFromDense(d).CSC()
}

// NNZ returns the number of nonzeros.
func (a *CSR) NNZ() int { return len(a.Col) }

// NNZ returns the number of nonzeros.
func (a *CSC) NNZ() int { return len(a.Row) }

// Row returns the column indices of row i. The slice aliases the matrix and
// must not be modified.
func (a *CSR) Row(i int) []int32 { return a.Col[a.RowPtr[i]:a.RowPtr[i+1]] }

// Col returns the row indices of column j. The slice aliases the matrix and
// must not be modified.
func (a *CSC) Col(j int) []int32 { return a.Row[a.ColPtr[j]:a.ColPtr[j+1]] }

// Dense materializes the matrix as dense rows. A 0-row matrix yields nil.
func (a *CSR) Dense() [][]bool {
	if a.NumRows == 0 {
		return nil
	}
	d := make([][]bool, a.NumRows)
	for i := range d {
		d[i] = make([]bool, a.NumCols)
		for _, j := range a.Row(i) {
			d[i][j] = true
		}
	}
	return d
}

// Dense materializes the matrix as dense rows. A 0-row matrix yields nil.
func (a *CSC) Dense() [][]bool {
	if a.NumRows == 0 {
		return nil
	}
	d := make([][]bool, a.NumRows)
	for i := range d {
		d[i] = make([]bool, a.NumCols)
	}
	for j := 0; j < a.NumCols; j++ {
		for _, i := range a.Col(j) {
			d[i][j] = true
		}
	}
	return d
}

// CSC converts to compressed sparse column form via a counting sort over
// columns — deterministic, and stable in row order, so the CSC invariant
// (strictly increasing rows per column) follows from the CSR invariant.
func (a *CSR) CSC() *CSC {
	t := &CSC{
		NumRows: a.NumRows,
		NumCols: a.NumCols,
		ColPtr:  make([]int32, a.NumCols+1),
		Row:     make([]int32, len(a.Col)),
	}
	for _, j := range a.Col {
		t.ColPtr[j+1]++
	}
	for j := 0; j < a.NumCols; j++ {
		t.ColPtr[j+1] += t.ColPtr[j]
	}
	next := make([]int32, a.NumCols)
	copy(next, t.ColPtr[:a.NumCols])
	for i := 0; i < a.NumRows; i++ {
		for _, j := range a.Row(i) {
			t.Row[next[j]] = int32(i)
			next[j]++
		}
	}
	return t
}

// CSR converts to compressed sparse row form (the inverse of CSR.CSC).
func (a *CSC) CSR() *CSR {
	t := &CSR{
		NumRows: a.NumRows,
		NumCols: a.NumCols,
		RowPtr:  make([]int32, a.NumRows+1),
		Col:     make([]int32, len(a.Row)),
	}
	for _, i := range a.Row {
		t.RowPtr[i+1]++
	}
	for i := 0; i < a.NumRows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int32, a.NumRows)
	copy(next, t.RowPtr[:a.NumRows])
	for j := 0; j < a.NumCols; j++ {
		for _, i := range a.Col(j) {
			t.Col[next[i]] = int32(j)
			next[i]++
		}
	}
	return t
}

// Validate checks the structural invariants: pointer array shape, monotone
// pointers, in-range indices, and strictly increasing indices within each
// row — the determinism contract hand-assembled matrices must meet.
func (a *CSR) Validate() error {
	return validateCompressed("CSR", a.NumRows, a.NumCols, a.RowPtr, a.Col)
}

// Validate checks the structural invariants (see CSR.Validate).
func (a *CSC) Validate() error {
	return validateCompressed("CSC", a.NumCols, a.NumRows, a.ColPtr, a.Row)
}

// validateCompressed checks a compressed-axis layout: ptr spans the major
// axis (outer entries), idx holds minor-axis indices.
func validateCompressed(kind string, major, minor int, ptr, idx []int32) error {
	if major < 0 || minor < 0 {
		return fmt.Errorf("%w: %s dims %d×%d", ErrBadSparse, kind, major, minor)
	}
	if len(ptr) != major+1 {
		return fmt.Errorf("%w: %s pointer length %d, want %d", ErrBadSparse, kind, len(ptr), major+1)
	}
	if ptr[0] != 0 || int(ptr[major]) != len(idx) {
		return fmt.Errorf("%w: %s pointer bounds [%d, %d], want [0, %d]",
			ErrBadSparse, kind, ptr[0], ptr[major], len(idx))
	}
	for o := 0; o < major; o++ {
		if ptr[o] > ptr[o+1] {
			return fmt.Errorf("%w: %s pointer decreases at %d", ErrBadSparse, kind, o)
		}
		for k := ptr[o] + 1; k < ptr[o+1]; k++ {
			if idx[k-1] >= idx[k] {
				return fmt.Errorf("%w: %s indices not strictly increasing in entry %d",
					ErrBadSparse, kind, o)
			}
		}
	}
	for _, v := range idx {
		if v < 0 || int(v) >= minor {
			return fmt.Errorf("%w: %s index %d outside [0, %d)", ErrBadSparse, kind, v, minor)
		}
	}
	return nil
}

// Equal reports structural equality (same dimensions and nonzero pattern).
func (a *CSR) Equal(b *CSR) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || len(a.Col) != len(b.Col) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] {
			return false
		}
	}
	return true
}

// Equal reports structural equality (same dimensions and nonzero pattern).
func (a *CSC) Equal(b *CSC) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || len(a.Row) != len(b.Row) {
		return false
	}
	for j := range a.ColPtr {
		if a.ColPtr[j] != b.ColPtr[j] {
			return false
		}
	}
	for k := range a.Row {
		if a.Row[k] != b.Row[k] {
			return false
		}
	}
	return true
}
