package model

import (
	"math"
	"testing"
	"testing/quick"

	"depsense/internal/randutil"
)

func TestPClaimTable(t *testing.T) {
	p := SourceParams{A: 0.8, B: 0.3, F: 0.6, G: 0.2}
	cases := []struct {
		claimed, truth, dependent bool
		want                      float64
	}{
		{true, true, false, 0.8},
		{false, true, false, 0.2},
		{true, false, false, 0.3},
		{false, false, false, 0.7},
		{true, true, true, 0.6},
		{false, true, true, 0.4},
		{true, false, true, 0.2},
		{false, false, true, 0.8},
	}
	for _, c := range cases {
		got := p.PClaim(c.claimed, c.truth, c.dependent)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PClaim(%v,%v,%v) = %v, want %v", c.claimed, c.truth, c.dependent, got, c.want)
		}
	}
}

func TestPClaimComplementarity(t *testing.T) {
	err := quick.Check(func(a, b, f, g float64, truth, dep bool) bool {
		p := SourceParams{A: frac(a), B: frac(b), F: frac(f), G: frac(g)}
		sum := p.PClaim(true, truth, dep) + p.PClaim(false, truth, dep)
		return math.Abs(sum-1) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// frac maps an arbitrary float64 into [0,1].
func frac(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	v = math.Abs(v)
	return v - math.Floor(v)
}

func TestValidate(t *testing.T) {
	good := SourceParams{A: 0.5, B: 0.5, F: 0.5, G: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []SourceParams{
		{A: -0.1, B: 0.5, F: 0.5, G: 0.5},
		{A: 0.5, B: 1.1, F: 0.5, G: 0.5},
		{A: 0.5, B: 0.5, F: math.NaN(), G: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (&Params{}).Validate(); err == nil {
		t.Error("empty params accepted")
	}
	p := NewParams(2, 0.5)
	if err := p.Validate(); err != nil {
		t.Errorf("zeroed params rejected: %v", err)
	}
	p.Z = 2
	if err := p.Validate(); err == nil {
		t.Error("z=2 accepted")
	}
	p.Z = 0.5
	p.Sources[1].A = -1
	if err := p.Validate(); err == nil {
		t.Error("negative source param accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewParams(3, 0.4)
	p.Sources[0].A = 0.9
	q := p.Clone()
	q.Sources[0].A = 0.1
	q.Z = 0.8
	if p.Sources[0].A != 0.9 || p.Z != 0.4 {
		t.Fatal("Clone aliases the original")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	p := NewParams(2, 0.5)
	q := p.Clone()
	if d := p.MaxAbsDiff(q); d != 0 {
		t.Fatalf("identical params diff = %v", d)
	}
	q.Sources[1].G = 0.25
	if d := p.MaxAbsDiff(q); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("diff = %v, want 0.25", d)
	}
	q.Z = 0.9
	if d := p.MaxAbsDiff(q); math.Abs(d-0.4) > 1e-12 {
		t.Fatalf("diff = %v, want 0.4", d)
	}
}

func TestClampProb(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, ProbEpsilon},
		{0, ProbEpsilon},
		{0.5, 0.5},
		{1, 1 - ProbEpsilon},
		{2, 1 - ProbEpsilon},
		{math.NaN(), 0.5},
	}
	for _, c := range cases {
		if got := ClampProb(c.in); got != c.want {
			t.Errorf("ClampProb(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampProbRange(t *testing.T) {
	err := quick.Check(func(v float64) bool {
		got := ClampProb(v)
		return got >= ProbEpsilon && got <= 1-ProbEpsilon
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomParamsValid(t *testing.T) {
	rng := randutil.New(1)
	for i := 0; i < 20; i++ {
		p := RandomParams(rng, 5)
		if err := p.Validate(); err != nil {
			t.Fatalf("RandomParams invalid: %v", err)
		}
	}
}

func TestInformedInitOrdering(t *testing.T) {
	rng := randutil.New(2)
	for i := 0; i < 50; i++ {
		p := InformedInitParams(rng, 10)
		if err := p.Validate(); err != nil {
			t.Fatalf("InformedInitParams invalid: %v", err)
		}
		for j, s := range p.Sources {
			if s.A <= s.B || s.F <= s.G {
				t.Fatalf("informed init not label-identified at source %d: %+v", j, s)
			}
		}
	}
}

func TestParamsClampInPlace(t *testing.T) {
	p := NewParams(1, -0.5)
	p.Sources[0] = SourceParams{A: 5, B: -5, F: 0.5, G: math.NaN()}
	p.Clamp()
	if err := p.Validate(); err != nil {
		t.Fatalf("clamped params invalid: %v", err)
	}
	if p.Sources[0].G != 0.5 {
		t.Fatalf("NaN clamp = %v, want 0.5", p.Sources[0].G)
	}
}

func TestReliability(t *testing.T) {
	// t_i = a z / (a z + b (1-z)) by direct computation.
	p := SourceParams{A: 0.9, B: 0.2}
	got := p.Reliability(0.5)
	want := 0.9 * 0.5 / (0.9*0.5 + 0.2*0.5)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("Reliability(0.5) = %v, want %v", got, want)
	}
	// A perfectly clean channel is fully reliable; a degenerate one is 0.
	if r := (SourceParams{A: 0.4, B: 0}).Reliability(0.5); r != 1 {
		t.Fatalf("b=0 reliability = %v, want 1", r)
	}
	if r := (SourceParams{}).Reliability(0.5); r != 0 {
		t.Fatalf("degenerate reliability = %v, want 0", r)
	}
	// Scale-free: halving both rates (the source tweeting half as often)
	// leaves t_i unchanged — the property that makes it the drift series.
	q := SourceParams{A: p.A / 2, B: p.B / 2}
	if math.Abs(q.Reliability(0.5)-got) > 1e-15 {
		t.Fatalf("reliability not scale-free: %v vs %v", q.Reliability(0.5), got)
	}
	// Monotone in the prior.
	if p.Reliability(0.9) <= p.Reliability(0.1) {
		t.Fatal("reliability not monotone in z")
	}
}
