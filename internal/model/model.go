// Package model defines the probabilistic source model from Section II of
// the paper: each source is a four-parameter noisy binary channel whose
// emission probabilities depend on the (latent) truth of an assertion and on
// whether the source's claim is dependent (an ancestor asserted the same
// thing first). The parameter set θ collects the per-source channels plus
// the prior probability z that a generic assertion is true.
package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ProbEpsilon is the clamp applied to all model probabilities so that
// likelihoods stay finite: every probability is kept in
// [ProbEpsilon, 1-ProbEpsilon].
const ProbEpsilon = 1e-6

// SourceParams is the per-source channel θ_i = {a_i, b_i, f_i, g_i}.
//
//	A = P(S_iC_j = 1 | C_j = 1, D_ij = 0)  — true independent claims
//	B = P(S_iC_j = 1 | C_j = 0, D_ij = 0)  — false independent claims
//	F = P(S_iC_j = 1 | C_j = 1, D_ij = 1)  — true dependent claims
//	G = P(S_iC_j = 1 | C_j = 0, D_ij = 1)  — false dependent claims
type SourceParams struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
	F float64 `json:"f"`
	G float64 `json:"g"`
}

// PClaim returns P(S_iC_j = claimed | C_j = truth, D_ij = dependent), the
// entry of Table II selected by (truth, dependent, claimed).
func (p SourceParams) PClaim(claimed, truth, dependent bool) float64 {
	var on float64
	switch {
	case truth && !dependent:
		on = p.A
	case !truth && !dependent:
		on = p.B
	case truth && dependent:
		on = p.F
	default:
		on = p.G
	}
	if claimed {
		return on
	}
	return 1 - on
}

// Reliability returns the paper's posterior source reliability
//
//	t_i = a_i z / (a_i z + b_i (1 − z)),
//
// the probability that an independent claim by this source is true under
// prior z. Unlike the raw rate a_i — which scales with how often the
// source tweets at all — t_i is scale-free, which makes it the right
// per-source trajectory for drift detection (internal/qual). A degenerate
// channel (both rates zero) returns 0.
func (p SourceParams) Reliability(z float64) float64 {
	den := p.A*z + p.B*(1-z)
	if den <= 0 {
		return 0
	}
	return p.A * z / den
}

// Clamp returns a copy with every probability forced into
// [ProbEpsilon, 1-ProbEpsilon].
func (p SourceParams) Clamp() SourceParams {
	return SourceParams{
		A: ClampProb(p.A),
		B: ClampProb(p.B),
		F: ClampProb(p.F),
		G: ClampProb(p.G),
	}
}

// Validate reports an error if any parameter is outside [0, 1] or NaN.
func (p SourceParams) Validate() error {
	for _, v := range [...]struct {
		name string
		val  float64
	}{{"a", p.A}, {"b", p.B}, {"f", p.F}, {"g", p.G}} {
		if math.IsNaN(v.val) || v.val < 0 || v.val > 1 {
			return fmt.Errorf("model: parameter %s = %v out of [0,1]", v.name, v.val)
		}
	}
	return nil
}

// Params is the full unknown set θ: one SourceParams per source plus the
// prior z = P(C_j = 1).
type Params struct {
	Sources []SourceParams `json:"sources"`
	Z       float64        `json:"z"`
}

// ErrNoSources is returned by Validate for a parameter set with no sources.
var ErrNoSources = errors.New("model: parameter set has no sources")

// NewParams allocates a parameter set for n sources with all probabilities
// zeroed and the given prior.
func NewParams(n int, z float64) *Params {
	return &Params{Sources: make([]SourceParams, n), Z: z}
}

// NumSources returns the number of sources the parameter set covers.
func (p *Params) NumSources() int { return len(p.Sources) }

// Validate checks structural sanity: at least one source, all probabilities
// in range.
func (p *Params) Validate() error {
	if len(p.Sources) == 0 {
		return ErrNoSources
	}
	if math.IsNaN(p.Z) || p.Z < 0 || p.Z > 1 {
		return fmt.Errorf("model: prior z = %v out of [0,1]", p.Z)
	}
	for i, s := range p.Sources {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("source %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy. The EM estimators mutate their working copy in
// place and must not alias caller-provided initial parameters.
func (p *Params) Clone() *Params {
	cp := &Params{Sources: make([]SourceParams, len(p.Sources)), Z: p.Z}
	copy(cp.Sources, p.Sources)
	return cp
}

// Clamp forces every probability into [ProbEpsilon, 1-ProbEpsilon] in place.
func (p *Params) Clamp() {
	p.Z = ClampProb(p.Z)
	for i := range p.Sources {
		p.Sources[i] = p.Sources[i].Clamp()
	}
}

// MaxAbsDiff returns the largest absolute difference between corresponding
// entries of two parameter sets (used as the EM convergence criterion). The
// parameter sets must have the same number of sources.
func (p *Params) MaxAbsDiff(q *Params) float64 {
	d := math.Abs(p.Z - q.Z)
	for i := range p.Sources {
		a, b := p.Sources[i], q.Sources[i]
		for _, v := range [...]float64{a.A - b.A, a.B - b.B, a.F - b.F, a.G - b.G} {
			if av := math.Abs(v); av > d {
				d = av
			}
		}
	}
	return d
}

// RandomParams draws an initial parameter set uniformly at random, the
// initialization step of Algorithm 2 ("Initialize parameter set θ with
// random probability"). Reliability-ordered draws (A > B, F > G is NOT
// forced) keep the initializer fully uninformative; the EM label-switching
// ambiguity is resolved downstream by InitBias when requested.
func RandomParams(rng *rand.Rand, n int) *Params {
	p := NewParams(n, rng.Float64())
	for i := range p.Sources {
		p.Sources[i] = SourceParams{
			A: rng.Float64(),
			B: rng.Float64(),
			F: rng.Float64(),
			G: rng.Float64(),
		}
	}
	p.Clamp()
	return p
}

// InformedInitParams draws a random but label-identified initialization:
// each source's true-claim probabilities (A, F) are drawn above its
// false-claim probabilities (B, G). Truth-discovery EM has a global
// label-switching symmetry (swap truth labels and all (A,B),(F,G) pairs);
// starting in the "sources are better than chance" basin is the standard
// way estimators in this literature break it.
func InformedInitParams(rng *rand.Rand, n int) *Params {
	p := NewParams(n, 0.3+0.4*rng.Float64())
	for i := range p.Sources {
		hi := 0.5 + 0.5*rng.Float64()
		lo := 0.5 * rng.Float64()
		hiDep := 0.5 + 0.5*rng.Float64()
		loDep := 0.5 * rng.Float64()
		p.Sources[i] = SourceParams{A: hi, B: lo, F: hiDep, G: loDep}
	}
	p.Clamp()
	return p
}

// ClampProb forces one probability into [ProbEpsilon, 1-ProbEpsilon],
// mapping NaN to 0.5 so that a degenerate M-step cannot poison the next
// E-step.
func ClampProb(v float64) float64 {
	if math.IsNaN(v) {
		return 0.5
	}
	if v < ProbEpsilon {
		return ProbEpsilon
	}
	if v > 1-ProbEpsilon {
		return 1 - ProbEpsilon
	}
	return v
}
