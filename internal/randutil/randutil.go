// Package randutil provides small deterministic randomness helpers shared by
// the synthetic data generators, the Gibbs sampler, and the experiment
// harness. Every consumer takes an explicit *rand.Rand so that experiments
// are reproducible from a single seed.
package randutil

import (
	"math"
	"math/rand"
	"sort"
)

// New returns a rand.Rand seeded deterministically.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// DeriveSeeds draws k child seeds from rng in a fixed order. Parallel
// fan-outs (concurrent Gibbs chains, restart pools) derive all their seeds
// up front with this so every child generator is a deterministic function
// of the parent seed and its own index, independent of execution order.
func DeriveSeeds(rng *rand.Rand, k int) []int64 {
	seeds := make([]int64, k)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// Uniform draws a value uniformly from [lo, hi). It panics if hi < lo, which
// always indicates a programming error in experiment configuration.
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi < lo {
		panic("randutil: Uniform called with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// UniformInt draws an integer uniformly from [lo, hi] inclusive.
func UniformInt(rng *rand.Rand, lo, hi int) int {
	if hi < lo {
		panic("randutil: UniformInt called with hi < lo")
	}
	return lo + rng.Intn(hi-lo+1)
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Pick returns a uniformly random element of xs. It panics on an empty
// slice; callers must guard against empty candidate sets.
func Pick(rng *rand.Rand, xs []int) int {
	if len(xs) == 0 {
		panic("randutil: Pick from empty slice")
	}
	return xs[rng.Intn(len(xs))]
}

// Shuffle permutes xs in place.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Perm returns a random permutation of 0..n-1.
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n). If k >= n it returns all of 0..n-1 in random order.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k >= n {
		return rng.Perm(n)
	}
	// Partial Fisher-Yates over an index map keeps this O(k) in memory for
	// the common small-k case used by the bound column sampler.
	chosen := make([]int, 0, k)
	swapped := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		swapped[j] = vi
		chosen = append(chosen, vj)
	}
	return chosen
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with exponent
// s, used by the Twitter simulator to model heavy-tailed source activity.
// It precomputes nothing; for repeated draws use NewZipfPicker.
func Zipf(rng *rand.Rand, n int, s float64) int {
	p := NewZipfPicker(n, s)
	return p.Pick(rng)
}

// ZipfPicker samples indices in [0, n) with P(i) proportional to 1/(i+1)^s.
type ZipfPicker struct {
	cdf []float64
}

// NewZipfPicker builds the cumulative distribution once for repeated draws.
func NewZipfPicker(n int, s float64) *ZipfPicker {
	if n <= 0 {
		panic("randutil: ZipfPicker needs n > 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &ZipfPicker{cdf: cdf}
}

// Pick draws one index.
func (z *ZipfPicker) Pick(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
