package randutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformBounds(t *testing.T) {
	rng := New(1)
	for i := 0; i < 1000; i++ {
		v := Uniform(rng, 0.25, 0.75)
		if v < 0.25 || v >= 0.75 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	rng := New(1)
	if v := Uniform(rng, 0.4, 0.4); v != 0.4 {
		t.Fatalf("degenerate Uniform = %v, want 0.4", v)
	}
}

func TestUniformPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	Uniform(New(1), 1, 0)
}

func TestUniformIntBounds(t *testing.T) {
	rng := New(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := UniformInt(rng, 3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		seen[v] = true
	}
	for want := 3; want <= 7; want++ {
		if !seen[want] {
			t.Errorf("UniformInt never produced %d", want)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	rng := New(3)
	for i := 0; i < 100; i++ {
		if Bernoulli(rng, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(rng, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := New(4)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty slice")
		}
	}()
	Pick(New(1), nil)
}

func TestPickCoversAll(t *testing.T) {
	rng := New(5)
	xs := []int{10, 20, 30}
	seen := make(map[int]bool)
	for i := 0; i < 300; i++ {
		seen[Pick(rng, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick covered %d of 3 values", len(seen))
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	rng := New(6)
	err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw % 60)
		got := SampleWithoutReplacement(rng, n, k)
		want := k
		if k >= n {
			want = n
		}
		if len(got) != want {
			return false
		}
		seen := make(map[int]bool, len(got))
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementUniformity(t *testing.T) {
	rng := New(7)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(rng, 10, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-0.3) > 0.02 {
			t.Fatalf("value %d sampled at rate %v, want ~0.3", v, rate)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := New(8)
	xs := []int{1, 2, 3, 4, 5}
	Shuffle(rng, xs)
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	for v := 1; v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("Shuffle lost element %d", v)
		}
	}
}

func TestZipfPickerSkew(t *testing.T) {
	rng := New(9)
	p := NewZipfPicker(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[p.Pick(rng)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20000 {
		t.Fatalf("lost draws: %d", total)
	}
}

func TestZipfPickerUniformWhenSZero(t *testing.T) {
	rng := New(10)
	p := NewZipfPicker(4, 0)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[p.Pick(rng)]++
	}
	for i, c := range counts {
		rate := float64(c) / 40000
		if math.Abs(rate-0.25) > 0.02 {
			t.Fatalf("s=0 Zipf not uniform at %d: %v", i, rate)
		}
	}
}

func TestNewZipfPickerPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewZipfPicker(0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	rng := New(11)
	p := Perm(rng, 20)
	if len(p) != 20 {
		t.Fatalf("Perm length %d", len(p))
	}
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}
