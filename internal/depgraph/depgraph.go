// Package depgraph models the influence structure among sources: who can see
// (and hence repeat) whose claims. A directed edge i -> k means source i
// follows source k, so k is an ancestor of i in the paper's terminology and
// claims by k can render later identical claims by i dependent.
//
// The package also derives the dependency indicator matrix D from a
// timestamped claim log (Section II-A, Figure 1): a claim S_iC_j is
// dependent iff some ancestor of S_i asserted C_j strictly earlier, and a
// silent pair (i, j) is dependent iff some ancestor of S_i asserted C_j at
// any time.
package depgraph

import (
	"errors"
	"fmt"
	"sort"

	"depsense/internal/claims"
	"depsense/internal/mapsort"
)

// Graph is a directed follower graph over n sources. Edges(i) lists the
// ancestors of i (the sources i follows).
type Graph struct {
	n         int
	ancestors [][]int
}

// ErrBadSource is returned when an edge references a source out of range.
var ErrBadSource = errors.New("depgraph: source index out of range")

// NewGraph creates an empty graph over n sources.
func NewGraph(n int) *Graph {
	return &Graph{n: n, ancestors: make([][]int, n)}
}

// N returns the number of sources.
func (g *Graph) N() int { return g.n }

// AddFollow records that follower follows followee (followee becomes an
// ancestor of follower). Self-follows and duplicates are ignored.
func (g *Graph) AddFollow(follower, followee int) error {
	if follower < 0 || follower >= g.n || followee < 0 || followee >= g.n {
		return fmt.Errorf("%w: follow(%d -> %d) with n=%d", ErrBadSource, follower, followee, g.n)
	}
	if follower == followee {
		return nil
	}
	for _, a := range g.ancestors[follower] {
		if a == followee {
			return nil
		}
	}
	g.ancestors[follower] = append(g.ancestors[follower], followee)
	return nil
}

// Ancestors returns the sources that source i follows. The slice is owned by
// the graph and must not be modified.
func (g *Graph) Ancestors(i int) []int { return g.ancestors[i] }

// NumEdges returns the total number of follow edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.ancestors {
		total += len(a)
	}
	return total
}

// Followers returns the inverse adjacency: followers[k] lists sources that
// follow k. Computed on demand; used by the Twitter simulator to propagate
// retweets.
func (g *Graph) Followers() [][]int {
	followers := make([][]int, g.n)
	for i, ancs := range g.ancestors {
		for _, k := range ancs {
			followers[k] = append(followers[k], i)
		}
	}
	return followers
}

// Event is one timestamped claim: source asserted assertion at time t.
// Times are opaque monotone integers (e.g. Unix seconds or sequence
// numbers); only their order matters.
type Event struct {
	Source    int   `json:"source"`
	Assertion int   `json:"assertion"`
	Time      int64 `json:"time"`
}

// BuildDataset derives the source-claim matrix and the full dependency
// indicator matrix from a claim log and the follow graph, producing the
// estimator input of Section II:
//
//   - SC[i][j] = 1 iff the log contains an event (i, j, ·); duplicates
//     collapse to the earliest occurrence.
//   - For a claimed pair, D[i][j] = 1 iff an ancestor of i asserted j
//     strictly before i's earliest claim of j.
//   - For a silent pair, D[i][j] = 1 iff an ancestor of i asserted j at any
//     time. Only silent pairs reachable through at least one edge are
//     materialized (the matrix stays sparse).
//
// m is the total number of assertions (assertion ids must lie in [0, m)).
func BuildDataset(g *Graph, events []Event, m int) (*claims.Dataset, error) {
	// earliest[i][j] = earliest claim time of j by i.
	earliest := make([]map[int]int64, g.n)
	for _, e := range events {
		if e.Source < 0 || e.Source >= g.n {
			return nil, fmt.Errorf("%w: event source %d with n=%d", ErrBadSource, e.Source, g.n)
		}
		if e.Assertion < 0 || e.Assertion >= m {
			return nil, fmt.Errorf("depgraph: event assertion %d out of range m=%d", e.Assertion, m)
		}
		if earliest[e.Source] == nil {
			earliest[e.Source] = make(map[int]int64)
		}
		if t, ok := earliest[e.Source][e.Assertion]; !ok || e.Time < t {
			earliest[e.Source][e.Assertion] = e.Time
		}
	}

	b := claims.NewBuilder(g.n, m)
	// Iterate each source's claim set in sorted assertion order, never map
	// order, so the builder sees an identical call sequence every run and
	// any validation error it reports is reproducible.
	for i := 0; i < g.n; i++ {
		// Assertions this source claimed.
		for _, j := range mapsort.Keys(earliest[i]) {
			t := earliest[i][j]
			dep := false
			for _, anc := range g.ancestors[i] {
				if ta, ok := earliest[anc][j]; ok && ta < t {
					dep = true
					break
				}
			}
			b.AddClaim(i, j, dep)
		}
		// Silent pairs: ancestor claimed j, i did not.
		seen := make(map[int]bool)
		for _, anc := range g.ancestors[i] {
			for _, j := range mapsort.Keys(earliest[anc]) {
				if _, claimed := earliest[i][j]; claimed || seen[j] {
					continue
				}
				seen[j] = true
				b.MarkSilentDependent(i, j)
			}
		}
	}
	return b.Build()
}

// SortEvents orders events by time, breaking ties by source then assertion,
// so downstream processing is deterministic.
func SortEvents(events []Event) {
	sort.Slice(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if ea.Time != eb.Time {
			return ea.Time < eb.Time
		}
		if ea.Source != eb.Source {
			return ea.Source < eb.Source
		}
		return ea.Assertion < eb.Assertion
	})
}

// Forest builds the paper's synthetic dependency structure (Section V-A): a
// forest of tau level-two trees over n sources. The first tau sources are
// roots; every remaining source follows exactly one root, assigned
// round-robin so trees are balanced. Roots are independent; leaves are
// dependent on their root. It returns the graph plus the root flag vector.
func Forest(n, tau int) (*Graph, []bool, error) {
	g, parent, err := ForestWithDepth(n, tau, 2)
	if err != nil {
		return nil, nil, err
	}
	isRoot := make([]bool, n)
	for i, p := range parent {
		isRoot[i] = p < 0
	}
	return g, isRoot, nil
}

// ForestWithDepth generalizes Forest to trees of the given maximum depth
// (depth 2 is the paper's structure; larger depths model retweets of
// retweets). The first tau sources are roots; each remaining source is
// attached round-robin to the earliest source whose subtree still has room
// above the depth limit, keeping trees balanced level by level. It returns
// the graph plus each source's parent (-1 for roots).
func ForestWithDepth(n, tau, depth int) (*Graph, []int, error) {
	if tau < 1 || tau > n {
		return nil, nil, fmt.Errorf("depgraph: forest needs 1 <= tau <= n, got tau=%d n=%d", tau, n)
	}
	if depth < 2 {
		return nil, nil, fmt.Errorf("depgraph: forest depth must be >= 2, got %d", depth)
	}
	g := NewGraph(n)
	parent := make([]int, n)
	level := make([]int, n)
	for i := 0; i < tau; i++ {
		parent[i] = -1
		level[i] = 1
	}
	// Fill level by level: level-2 children of the roots first, then
	// level-3 children of level-2 sources, and so on; overflow past the
	// depth limit re-enters at level 2.
	levelStart := 0 // first source of the parents' level
	levelEnd := tau // one past the last source of the parents' level
	next := tau
	for next < n {
		parentsAvailable := levelEnd - levelStart
		if parentsAvailable == 0 || level[levelStart] >= depth {
			// Deepest level reached: wrap back to attaching under roots.
			levelStart, levelEnd = 0, tau
			parentsAvailable = tau
		}
		fill := n - next
		if fill > parentsAvailable {
			fill = parentsAvailable
		}
		newStart := next
		for k := 0; k < fill; k++ {
			p := levelStart + k
			parent[next] = p
			level[next] = level[p] + 1
			if err := g.AddFollow(next, p); err != nil {
				return nil, nil, err
			}
			next++
		}
		levelStart, levelEnd = newStart, next
	}
	return g, parent, nil
}
