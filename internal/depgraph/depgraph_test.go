package depgraph

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
)

func TestAddFollow(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddFollow(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFollow(0, 1); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := g.AddFollow(1, 1); err != nil { // self-follow ignored
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if err := g.AddFollow(0, 3); !errors.Is(err, ErrBadSource) {
		t.Fatalf("want ErrBadSource, got %v", err)
	}
	if err := g.AddFollow(-1, 0); !errors.Is(err, ErrBadSource) {
		t.Fatalf("want ErrBadSource, got %v", err)
	}
}

func TestFollowersInverse(t *testing.T) {
	g := NewGraph(4)
	_ = g.AddFollow(1, 0)
	_ = g.AddFollow(2, 0)
	_ = g.AddFollow(3, 2)
	f := g.Followers()
	if len(f[0]) != 2 || len(f[2]) != 1 || len(f[1]) != 0 {
		t.Fatalf("followers = %v", f)
	}
}

// TestFigureOneExample reproduces the running example of Section II-A:
// John (S1) follows Sally (S2) but not Heather (S3). Sally tweets C1 at t1,
// Heather tweets C2 at t1, John tweets C1 at t2 and C2 at t3. Only John's
// repeat of Sally's assertion is dependent.
func TestFigureOneExample(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddFollow(0, 1); err != nil { // John follows Sally
		t.Fatal(err)
	}
	events := []Event{
		{Source: 1, Assertion: 0, Time: 1}, // Sally: Main St congested
		{Source: 2, Assertion: 1, Time: 1}, // Heather: University Ave congested
		{Source: 0, Assertion: 0, Time: 2}, // John repeats Sally
		{Source: 0, Assertion: 1, Time: 3}, // John independently matches Heather
	}
	ds, err := BuildDataset(g, events, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Claimed(0, 0) || !ds.Claimed(0, 1) || !ds.Claimed(1, 0) || !ds.Claimed(2, 1) {
		t.Fatal("claims missing")
	}
	if !ds.Dependent(0, 0) {
		t.Error("D[1,1] should be 1 (John repeated Sally)")
	}
	if ds.Dependent(0, 1) {
		t.Error("D[1,2] should be 0 (John does not follow Heather)")
	}
	if ds.Dependent(1, 0) || ds.Dependent(2, 1) {
		t.Error("Sally's and Heather's tweets are independent")
	}
	if ds.NumDependentClaims() != 1 || ds.NumClaims() != 4 {
		t.Fatalf("summary: %+v", ds.Summarize())
	}
}

func TestSimultaneousClaimsAreIndependent(t *testing.T) {
	g := NewGraph(2)
	_ = g.AddFollow(1, 0)
	events := []Event{
		{Source: 0, Assertion: 0, Time: 5},
		{Source: 1, Assertion: 0, Time: 5}, // same instant: not "before"
	}
	ds, err := BuildDataset(g, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dependent(1, 0) {
		t.Fatal("simultaneous claim must not be dependent")
	}
}

func TestDuplicateEventsCollapseToEarliest(t *testing.T) {
	g := NewGraph(2)
	_ = g.AddFollow(1, 0)
	events := []Event{
		{Source: 1, Assertion: 0, Time: 1}, // follower first...
		{Source: 0, Assertion: 0, Time: 2},
		{Source: 1, Assertion: 0, Time: 3}, // ...then repeats after ancestor
	}
	ds, err := BuildDataset(g, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Earliest claim (t=1) precedes the ancestor's (t=2): independent.
	if ds.Dependent(1, 0) {
		t.Fatal("earliest-claim semantics violated")
	}
	if ds.NumClaims() != 2 {
		t.Fatalf("claims = %d, want 2", ds.NumClaims())
	}
}

func TestSilentDependentPairs(t *testing.T) {
	g := NewGraph(3)
	_ = g.AddFollow(1, 0)
	_ = g.AddFollow(2, 0)
	events := []Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2},
	}
	ds, err := BuildDataset(g, events, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Source 2 follows 0, saw assertion 0, stayed silent.
	if got := ds.SilentDependents(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SilentDependents(0) = %v", got)
	}
	// Nobody claimed assertion 1 at all.
	if len(ds.SilentDependents(1)) != 0 {
		t.Fatal("assertion 1 has spurious silent dependents")
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	g := NewGraph(1)
	if _, err := BuildDataset(g, []Event{{Source: 1, Assertion: 0, Time: 1}}, 1); !errors.Is(err, ErrBadSource) {
		t.Fatalf("want ErrBadSource, got %v", err)
	}
	if _, err := BuildDataset(g, []Event{{Source: 0, Assertion: 2, Time: 1}}, 1); err == nil {
		t.Fatal("out-of-range assertion accepted")
	}
}

func TestSortEvents(t *testing.T) {
	events := []Event{
		{Source: 2, Assertion: 1, Time: 5},
		{Source: 1, Assertion: 0, Time: 5},
		{Source: 1, Assertion: 2, Time: 1},
		{Source: 1, Assertion: 1, Time: 5},
	}
	SortEvents(events)
	want := []Event{
		{Source: 1, Assertion: 2, Time: 1},
		{Source: 1, Assertion: 0, Time: 5},
		{Source: 1, Assertion: 1, Time: 5},
		{Source: 2, Assertion: 1, Time: 5},
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("SortEvents[%d] = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestForestShape(t *testing.T) {
	err := quick.Check(func(nRaw, tauRaw uint8) bool {
		n := int(nRaw%40) + 1
		tau := int(tauRaw%uint8(n)) + 1
		g, isRoot, err := Forest(n, tau)
		if err != nil {
			return false
		}
		roots := 0
		for i := 0; i < n; i++ {
			anc := g.Ancestors(i)
			if isRoot[i] {
				roots++
				if len(anc) != 0 {
					return false
				}
			} else {
				// Level-two: exactly one ancestor, which is a root.
				if len(anc) != 1 || !isRoot[anc[0]] {
					return false
				}
			}
		}
		return roots == tau && g.NumEdges() == n-tau
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForestBalance(t *testing.T) {
	g, _, err := Forest(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := 3; i < 10; i++ {
		counts[g.Ancestors(i)[0]]++
	}
	for _, c := range counts {
		if c < 2 || c > 3 {
			t.Fatalf("unbalanced forest: %v", counts)
		}
	}
}

func TestForestValidation(t *testing.T) {
	if _, _, err := Forest(5, 0); err == nil {
		t.Fatal("tau=0 accepted")
	}
	if _, _, err := Forest(5, 6); err == nil {
		t.Fatal("tau>n accepted")
	}
}

func TestForestWithDepthShape(t *testing.T) {
	err := quick.Check(func(nRaw, tauRaw, depthRaw uint8) bool {
		n := int(nRaw%60) + 1
		tau := int(tauRaw%uint8(n)) + 1
		depth := 2 + int(depthRaw%4)
		g, parent, err := ForestWithDepth(n, tau, depth)
		if err != nil {
			return false
		}
		if len(parent) != n || g.NumEdges() != n-tau {
			return false
		}
		level := make([]int, n)
		roots := 0
		for i := 0; i < n; i++ {
			p := parent[i]
			if p < 0 {
				roots++
				level[i] = 1
				if len(g.Ancestors(i)) != 0 {
					return false
				}
				continue
			}
			// Parents precede children (topological id order) and carry
			// the single follow edge.
			if p >= i {
				return false
			}
			anc := g.Ancestors(i)
			if len(anc) != 1 || anc[0] != p {
				return false
			}
			level[i] = level[p] + 1
			if level[i] > depth {
				return false
			}
		}
		return roots == tau
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForestWithDepthReachesDepth(t *testing.T) {
	_, parent, err := ForestWithDepth(30, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	level := make([]int, 30)
	deepest := 0
	for i, p := range parent {
		if p < 0 {
			level[i] = 1
		} else {
			level[i] = level[p] + 1
		}
		if level[i] > deepest {
			deepest = level[i]
		}
	}
	if deepest != 4 {
		t.Fatalf("deepest level = %d, want 4", deepest)
	}
}

func TestForestWithDepthValidation(t *testing.T) {
	if _, _, err := ForestWithDepth(5, 2, 1); err == nil {
		t.Fatal("depth 1 accepted")
	}
	if _, _, err := ForestWithDepth(5, 0, 2); err == nil {
		t.Fatal("tau 0 accepted")
	}
}

// TestBuildDatasetStableAcrossRuns is the regression test for the
// map-iteration fix in BuildDataset: repeated builds from the same graph
// and event log must JSON-encode to byte-identical datasets. Before the
// fix, per-source claim maps were iterated in map order, so the builder's
// call sequence (and any error it picked) varied run to run.
func TestBuildDatasetStableAcrossRuns(t *testing.T) {
	g := NewGraph(6)
	for _, e := range [][2]int{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}} {
		if err := g.AddFollow(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	events := []Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 0, Assertion: 1, Time: 2},
		{Source: 0, Assertion: 2, Time: 3},
		{Source: 1, Assertion: 0, Time: 5},
		{Source: 1, Assertion: 3, Time: 6},
		{Source: 2, Assertion: 1, Time: 7},
		{Source: 3, Assertion: 0, Time: 8},
		{Source: 3, Assertion: 3, Time: 9},
		{Source: 4, Assertion: 2, Time: 10},
		{Source: 5, Assertion: 1, Time: 11},
	}
	encode := func() []byte {
		ds, err := BuildDataset(g, events, 4)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(ds)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := encode()
	for run := 0; run < 30; run++ {
		if got := encode(); !bytes.Equal(got, first) {
			t.Fatalf("run %d: dataset encoding differs from first run", run)
		}
	}
}
