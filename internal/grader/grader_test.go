package grader

import (
	"testing"

	"depsense/internal/twittersim"
)

func tweets(assertions ...int) []twittersim.Tweet {
	out := make([]twittersim.Tweet, len(assertions))
	for i, a := range assertions {
		out[i] = twittersim.Tweet{ID: i, Assertion: a}
	}
	return out
}

func TestGradeMajority(t *testing.T) {
	kinds := []twittersim.Kind{twittersim.KindTrue, twittersim.KindFalse, twittersim.KindOpinion}
	// Cluster 0: two tweets of assertion 0 (true) and one of assertion 1
	// (false) — an impure cluster graded by majority.
	assign := []int{0, 0, 0, 1}
	tw := tweets(0, 0, 1, 2)
	labels, err := Grade(assign, tw, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	if labels[0] != twittersim.KindTrue {
		t.Fatalf("cluster 0 label = %v", labels[0])
	}
	if labels[1] != twittersim.KindOpinion {
		t.Fatalf("cluster 1 label = %v", labels[1])
	}
}

func TestGradeTieBreaksDeterministically(t *testing.T) {
	kinds := []twittersim.Kind{twittersim.KindTrue, twittersim.KindFalse}
	assign := []int{0, 0}
	tw := tweets(1, 0) // one vote each; lower assertion id wins
	labels, err := Grade(assign, tw, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != twittersim.KindTrue {
		t.Fatalf("tie label = %v", labels[0])
	}
}

func TestGradeValidation(t *testing.T) {
	if _, err := Grade([]int{0}, nil, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Tweet referencing an assertion with no kind.
	if _, err := Grade([]int{0}, tweets(5), []twittersim.Kind{twittersim.KindTrue}); err == nil {
		t.Fatal("out-of-range assertion accepted")
	}
}

func TestScoreTopK(t *testing.T) {
	labels := []twittersim.Kind{
		twittersim.KindTrue, twittersim.KindFalse, twittersim.KindOpinion, twittersim.KindTrue,
	}
	s, err := ScoreTopK([]int{0, 1, 2, 3}, labels)
	if err != nil {
		t.Fatal(err)
	}
	if s.True != 2 || s.False != 1 || s.Opinion != 1 {
		t.Fatalf("score = %+v", s)
	}
	if s.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %v", s.Accuracy())
	}
}

func TestScoreTopKValidation(t *testing.T) {
	labels := []twittersim.Kind{twittersim.KindTrue}
	if _, err := ScoreTopK([]int{3}, labels); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}
	if _, err := ScoreTopK([]int{0}, []twittersim.Kind{0}); err == nil {
		t.Fatal("invalid label accepted")
	}
}

func TestScoreEmpty(t *testing.T) {
	if (Score{}).Accuracy() != 0 {
		t.Fatal("empty score accuracy != 0")
	}
	s, err := ScoreTopK(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Accuracy() != 0 {
		t.Fatal("nil ranking accuracy != 0")
	}
}
