// Package grader simulates the human grading protocol of Section V-C: the
// top-ranked assertions of each algorithm are marked "True", "False", or
// "Opinion", and an algorithm's score is #True/(#True+#False+#Opinion).
//
// Real graders researched each tweet's claim; the simulator already knows
// each tweet's ground-truth assertion, so a pipeline-extracted cluster is
// graded by the majority ground-truth assertion among its member tweets —
// the same judgement a human reading the cluster's tweets would reach, with
// the same exposure to clustering impurity.
package grader

import (
	"errors"
	"fmt"

	"depsense/internal/twittersim"
)

// Grade labels pipeline clusters against simulator ground truth.
//
// messageAssertion maps every pipeline message (tweet) to its cluster;
// tweets[i].Assertion is the hidden ground-truth assertion; kinds is the
// ground-truth kind per assertion. The returned slice labels each cluster.
func Grade(messageAssertion []int, tweets []twittersim.Tweet, kinds []twittersim.Kind) ([]twittersim.Kind, error) {
	if len(messageAssertion) != len(tweets) {
		return nil, fmt.Errorf("grader: %d assignments for %d tweets", len(messageAssertion), len(tweets))
	}
	numClusters := 0
	for _, c := range messageAssertion {
		if c >= numClusters {
			numClusters = c + 1
		}
	}
	// Majority ground-truth assertion per cluster.
	type voteMap map[int]int
	votes := make([]voteMap, numClusters)
	for i, c := range messageAssertion {
		if votes[c] == nil {
			votes[c] = make(voteMap)
		}
		votes[c][tweets[i].Assertion]++
	}
	labels := make([]twittersim.Kind, numClusters)
	for c, vm := range votes {
		bestAssertion, bestCount := -1, 0
		for a, n := range vm {
			if n > bestCount || (n == bestCount && a < bestAssertion) {
				bestAssertion, bestCount = a, n
			}
		}
		if bestAssertion < 0 || bestAssertion >= len(kinds) {
			return nil, errors.New("grader: cluster with no gradable tweets")
		}
		labels[c] = kinds[bestAssertion]
	}
	return labels, nil
}

// Score computes the paper's evaluation metric over a ranked cut-off:
// #True / (#True + #False + #Opinion).
type Score struct {
	True, False, Opinion int
}

// Accuracy returns #True/(#True+#False+#Opinion), or 0 for an empty cut.
func (s Score) Accuracy() float64 {
	total := s.True + s.False + s.Opinion
	if total == 0 {
		return 0
	}
	return float64(s.True) / float64(total)
}

// ScoreTopK grades the ranked prefix.
func ScoreTopK(ranked []int, labels []twittersim.Kind) (Score, error) {
	var s Score
	for _, c := range ranked {
		if c < 0 || c >= len(labels) {
			return Score{}, fmt.Errorf("grader: ranked cluster %d outside %d labels", c, len(labels))
		}
		switch labels[c] {
		case twittersim.KindTrue:
			s.True++
		case twittersim.KindFalse:
			s.False++
		case twittersim.KindOpinion:
			s.Opinion++
		default:
			return Score{}, fmt.Errorf("grader: cluster %d has invalid label %v", c, labels[c])
		}
	}
	return s, nil
}
