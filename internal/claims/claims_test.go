package claims

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Dataset {
	t.Helper()
	ds, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ds
}

func TestEmptyDataset(t *testing.T) {
	ds := mustBuild(t, NewBuilder(3, 4))
	if ds.N() != 3 || ds.M() != 4 {
		t.Fatalf("dims = (%d,%d)", ds.N(), ds.M())
	}
	if ds.NumClaims() != 0 || ds.NumDependentClaims() != 0 {
		t.Fatal("empty dataset has claims")
	}
	for j := 0; j < 4; j++ {
		if len(ds.Claimants(j)) != 0 || len(ds.SilentDependents(j)) != 0 {
			t.Fatal("empty dataset has assertion entries")
		}
	}
}

func TestBasicClaims(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddClaim(0, 0, false)
	b.AddClaim(1, 0, true)
	b.AddClaim(2, 1, false)
	b.MarkSilentDependent(0, 1)
	ds := mustBuild(t, b)

	if ds.NumClaims() != 3 || ds.NumDependentClaims() != 1 || ds.NumOriginalClaims() != 2 {
		t.Fatalf("counts: %+v", ds.Summarize())
	}
	if !ds.Claimed(0, 0) || ds.Claimed(0, 1) || !ds.Claimed(1, 0) {
		t.Fatal("Claimed wrong")
	}
	if ds.Dependent(0, 0) || !ds.Dependent(1, 0) || !ds.Dependent(0, 1) {
		t.Fatal("Dependent wrong")
	}
	if got := ds.ClaimsD0(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ClaimsD0(0) = %v", got)
	}
	if got := ds.ClaimsD1(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ClaimsD1(1) = %v", got)
	}
	if got := ds.SilentD1(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SilentD1(0) = %v", got)
	}
}

func TestDuplicateClaimDependentWins(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddClaim(0, 0, false)
	b.AddClaim(0, 0, true)
	ds := mustBuild(t, b)
	if ds.NumClaims() != 1 || !ds.Dependent(0, 0) {
		t.Fatal("dependent mark should win and duplicates collapse")
	}

	b = NewBuilder(1, 1)
	b.AddClaim(0, 0, true)
	b.AddClaim(0, 0, false)
	ds = mustBuild(t, b)
	if !ds.Dependent(0, 0) {
		t.Fatal("dependent mark lost when added first")
	}
}

func TestSilentThenClaimConflicts(t *testing.T) {
	b := NewBuilder(1, 1)
	b.MarkSilentDependent(0, 0)
	b.AddClaim(0, 0, false)
	if _, err := b.Build(); !errors.Is(err, ErrConflictingPair) {
		t.Fatalf("want ErrConflictingPair, got %v", err)
	}

	// A dependent claim subsumes the silent mark.
	b = NewBuilder(1, 1)
	b.MarkSilentDependent(0, 0)
	b.AddClaim(0, 0, true)
	ds := mustBuild(t, b)
	if len(ds.SilentDependents(0)) != 0 || !ds.Dependent(0, 0) {
		t.Fatal("dependent claim should subsume silent mark")
	}
}

func TestOutOfRange(t *testing.T) {
	for _, f := range []func(*Builder){
		func(b *Builder) { b.AddClaim(-1, 0, false) },
		func(b *Builder) { b.AddClaim(2, 0, false) },
		func(b *Builder) { b.AddClaim(0, 3, false) },
		func(b *Builder) { b.MarkSilentDependent(0, -1) },
	} {
		b := NewBuilder(2, 3)
		f(b)
		if _, err := b.Build(); !errors.Is(err, ErrIndexOutOfRange) {
			t.Fatalf("want ErrIndexOutOfRange, got %v", err)
		}
	}
}

func TestDependencyColumn(t *testing.T) {
	b := NewBuilder(4, 1)
	b.AddClaim(0, 0, false)
	b.AddClaim(1, 0, true)
	b.MarkSilentDependent(3, 0)
	ds := mustBuild(t, b)
	col := ds.DependencyColumn(0)
	want := []bool{false, true, false, true}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("column = %v, want %v", col, want)
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	build := func() *Dataset {
		b := NewBuilder(10, 5)
		for i := 9; i >= 0; i-- {
			b.AddClaim(i, i%5, i%2 == 0)
		}
		b.MarkSilentDependent(3, 4)
		b.MarkSilentDependent(1, 4)
		ds, _ := b.Build()
		return ds
	}
	a, b := build(), build()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("identical builds serialize differently (map-order leak)")
	}
	for j := 0; j < 5; j++ {
		cl := a.Claimants(j)
		for k := 1; k < len(cl); k++ {
			if cl[k-1].Source >= cl[k].Source {
				t.Fatal("claimants not sorted")
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder(5, 4)
	b.AddClaim(0, 1, false)
	b.AddClaim(2, 1, true)
	b.AddClaim(4, 3, true)
	b.MarkSilentDependent(1, 1)
	b.MarkSilentDependent(3, 3)
	ds := mustBuild(t, b)

	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatalf("ReadDataset: %v", err)
	}
	if got.N() != ds.N() || got.M() != ds.M() {
		t.Fatal("dims changed in round trip")
	}
	ja, _ := json.Marshal(ds)
	jb, _ := json.Marshal(got)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("round trip mismatch:\n%s\n%s", ja, jb)
	}
}

func TestReadDatasetRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Structurally valid JSON with out-of-range index.
	bad := `{"sources":1,"assertions":1,"claims":[{"source":5,"assertion":0}]}`
	if _, err := ReadDataset(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("out-of-range claim accepted")
	}
}

// TestIndexConsistency is the structural invariant: the by-assertion and
// by-source views must describe exactly the same set of pairs.
func TestIndexConsistency(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(12)
		b := NewBuilder(n, m)
		type pk struct{ i, j int }
		claimed := make(map[pk]bool)
		silent := make(map[pk]bool)
		for k := 0; k < rng.Intn(40); k++ {
			i, j := rng.Intn(n), rng.Intn(m)
			dep := rng.Intn(2) == 0
			key := pk{i, j}
			if silent[key] {
				dep = true // avoid intentional conflicts in this test
			}
			b.AddClaim(i, j, dep)
			claimed[key] = claimed[key] || dep
		}
		for k := 0; k < rng.Intn(20); k++ {
			i, j := rng.Intn(n), rng.Intn(m)
			key := pk{i, j}
			if _, isClaim := claimed[key]; isClaim {
				continue
			}
			b.MarkSilentDependent(i, j)
			silent[key] = true
		}
		ds, err := b.Build()
		if err != nil {
			return false
		}

		// Rebuild the pair sets from the by-source view.
		gotClaims := make(map[pk]bool)
		gotSilent := make(map[pk]bool)
		for i := 0; i < n; i++ {
			for _, j := range ds.ClaimsD0(i) {
				gotClaims[pk{i, j}] = false
			}
			for _, j := range ds.ClaimsD1(i) {
				gotClaims[pk{i, j}] = true
			}
			for _, j := range ds.SilentD1(i) {
				gotSilent[pk{i, j}] = true
			}
		}
		// And from the by-assertion view.
		gotClaims2 := make(map[pk]bool)
		total := 0
		for j := 0; j < m; j++ {
			for _, c := range ds.Claimants(j) {
				gotClaims2[pk{c.Source, j}] = c.Dependent
				total++
			}
		}
		if total != ds.NumClaims() || len(gotClaims) != len(claimed) || len(gotClaims2) != len(claimed) {
			return false
		}
		for k, dep := range claimed {
			if gotClaims[k] != dep || gotClaims2[k] != dep {
				return false
			}
		}
		if len(gotSilent) != len(silent) {
			return false
		}
		sum := ds.Summarize()
		return sum.TotalClaims == sum.OriginalClaims+sum.DependentClaims &&
			sum.SilentDependent == len(silent)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConflictErrorDeterministic: when several pairs are marked both
// claimed and silent-dependent, Build must always report the same one —
// the lowest (source, assertion) in lexicographic order — instead of
// whichever a map iteration surfaced first.
func TestConflictErrorDeterministic(t *testing.T) {
	build := func() error {
		b := NewBuilder(8, 8)
		for _, p := range [][2]int{{5, 5}, {1, 1}, {3, 3}} {
			b.MarkSilentDependent(p[0], p[1])
			b.AddClaim(p[0], p[1], false)
		}
		_, err := b.Build()
		return err
	}
	first := build()
	if !errors.Is(first, ErrConflictingPair) {
		t.Fatalf("expected ErrConflictingPair, got %v", first)
	}
	want := "(source=1, assertion=1)"
	if !strings.Contains(first.Error(), want) {
		t.Fatalf("conflict error %q does not name the lowest pair %s", first, want)
	}
	for run := 0; run < 50; run++ {
		if got := build(); got.Error() != first.Error() {
			t.Fatalf("run %d: error %q differs from first run %q", run, got, first)
		}
	}
}

// TestSparseViewMatchesAccessors: the flattened CSR/CSC kernel view and the
// slice-of-slices accessors describe the same matrices in the same order.
func TestSparseViewMatchesAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		m := 1 + rng.Intn(30)
		b := NewBuilder(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				switch {
				case rng.Float64() < 0.15:
					b.AddClaim(i, j, rng.Float64() < 0.4)
				case rng.Float64() < 0.05:
					b.MarkSilentDependent(i, j)
				}
			}
		}
		ds := mustBuild(t, b)
		sv := ds.Sparse()
		for _, v := range []interface{ Validate() error }{
			sv.Claims, sv.Silent, sv.ClaimsD0, sv.ClaimsD1, sv.SilentD1,
		} {
			if err := v.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if len(sv.ClaimDep) != sv.Claims.NNZ() {
			t.Fatalf("trial %d: ClaimDep length %d != nnz %d", trial, len(sv.ClaimDep), sv.Claims.NNZ())
		}
		for j := 0; j < m; j++ {
			want := ds.Claimants(j)
			col := sv.Claims.Col(j)
			if len(col) != len(want) {
				t.Fatalf("trial %d col %d: %d claimants, want %d", trial, j, len(col), len(want))
			}
			base := int(sv.Claims.ColPtr[j])
			for k, ref := range want {
				if int(col[k]) != ref.Source || sv.ClaimDep[base+k] != ref.Dependent {
					t.Fatalf("trial %d col %d entry %d: (%d,%v) want (%d,%v)",
						trial, j, k, col[k], sv.ClaimDep[base+k], ref.Source, ref.Dependent)
				}
			}
			sil := sv.Silent.Col(j)
			wantSil := ds.SilentDependents(j)
			if len(sil) != len(wantSil) {
				t.Fatalf("trial %d col %d: %d silent, want %d", trial, j, len(sil), len(wantSil))
			}
			for k := range sil {
				if int(sil[k]) != wantSil[k] {
					t.Fatalf("trial %d col %d silent %d: %d want %d", trial, j, k, sil[k], wantSil[k])
				}
			}
		}
		rowsMatch := func(name string, row []int32, want []int) {
			if len(row) != len(want) {
				t.Fatalf("trial %d %s: len %d want %d", trial, name, len(row), len(want))
			}
			for k := range row {
				if int(row[k]) != want[k] {
					t.Fatalf("trial %d %s entry %d: %d want %d", trial, name, k, row[k], want[k])
				}
			}
		}
		for i := 0; i < n; i++ {
			rowsMatch("ClaimsD0", sv.ClaimsD0.Row(i), ds.ClaimsD0(i))
			rowsMatch("ClaimsD1", sv.ClaimsD1.Row(i), ds.ClaimsD1(i))
			rowsMatch("SilentD1", sv.SilentD1.Row(i), ds.SilentD1(i))
		}
	}
	// Zero-value dataset still yields a structurally valid (empty) view.
	var zero Dataset
	if err := zero.Sparse().Claims.Validate(); err != nil {
		t.Fatalf("zero-value view: %v", err)
	}
}
