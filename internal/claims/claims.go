// Package claims holds the data structures at the heart of the fact-finding
// problem: the source-claim matrix SC and the dependency indicator matrix D
// from Section II of the paper.
//
// Both matrices are n×m but extremely sparse in practice (a Twitter source
// asserts a handful of the thousands of assertions in a dataset), so the
// Dataset stores only the nonzero structure, indexed both by assertion (for
// the E-step and the bound) and by source (for the M-step):
//
//   - claims: pairs (i, j) with SC[i][j] = 1, each tagged with D[i][j];
//   - silent-dependent pairs: (i, j) with SC[i][j] = 0 but D[i][j] = 1,
//     i.e. an ancestor of S_i asserted C_j yet S_i stayed silent. These are
//     informative under the dependent channel (factor 1-f_i or 1-g_i instead
//     of 1-a_i or 1-b_i) and must be tracked explicitly.
//
// All remaining (i, j) pairs are independent non-claims (factor 1-a_i or
// 1-b_i), which estimators handle in aggregate.
package claims

import (
	"errors"
	"fmt"
	"sort"

	"depsense/internal/mapsort"
	"depsense/internal/model"
)

// ClaimRef identifies one claimant of an assertion and whether that claim is
// dependent (D[i][j] = 1).
type ClaimRef struct {
	Source    int  `json:"source"`
	Dependent bool `json:"dependent"`
}

// SourceRef identifies one assertion touched by a source, mirror of
// ClaimRef for the by-source index.
type SourceRef struct {
	Assertion int  `json:"assertion"`
	Dependent bool `json:"dependent"`
}

// Dataset is an immutable fact-finding input: n sources, m assertions, the
// sparse claim structure, and the sparse dependent-pair structure. Construct
// one with a Builder; a zero Dataset is empty but valid.
type Dataset struct {
	n int
	m int

	// byAssertion[j] lists the sources that claimed C_j.
	byAssertion [][]ClaimRef
	// silentDepByAssertion[j] lists sources with D[i][j] = 1 and no claim.
	silentDepByAssertion [][]int

	// bySource indices for the M-step.
	claimsD0BySource [][]int // assertions claimed independently by i
	claimsD1BySource [][]int // assertions claimed dependently by i
	silentD1BySource [][]int // assertions with D=1 where i stayed silent

	// sparse is the flattened CSR/CSC kernel view, frozen at Build time.
	sparse *SparseView

	numClaims    int
	numDependent int
}

// SparseView is the flattened sparse-kernel view of a Dataset: the SC and D
// nonzero structure packed into model.CSR/model.CSC index arrays, the form
// the estimator hot paths iterate. Columns are assertions, rows are sources.
// All fields are frozen at Build time and must not be modified; the
// slice-of-slices accessors (Claimants, ClaimsD0, ...) and this view always
// describe the same matrices, in the same per-row / per-column order.
type SparseView struct {
	// Claims is SC's nonzero pattern by assertion: Claims.Col(j) lists the
	// claimants of assertion j in increasing source order.
	Claims *model.CSC
	// ClaimDep carries D over SC's nonzeros, aligned with Claims' nonzero
	// order: ClaimDep[k] is the dependency flag of nonzero k.
	ClaimDep []bool
	// Silent is the silent-dependent pattern by assertion (D[i][j] = 1,
	// SC[i][j] = 0).
	Silent *model.CSC
	// ClaimsD0 / ClaimsD1 / SilentD1 are the by-source (CSR) views the
	// M-step iterates: independent claims, dependent claims, and
	// silent-dependent pairs of each source, in increasing assertion order.
	ClaimsD0 *model.CSR
	ClaimsD1 *model.CSR
	SilentD1 *model.CSR
}

// Sparse returns the dataset's flattened CSR/CSC kernel view. The view is
// built once at Build time and shared by every caller; it is safe for
// concurrent reads and must not be modified.
func (d *Dataset) Sparse() *SparseView {
	if d.sparse == nil {
		// Zero-value Dataset (n = m = 0): synthesize an empty view so the
		// kernels need no nil checks. Not cached — caching here would race
		// with concurrent readers; Build-produced datasets are always cached.
		return d.buildSparse()
	}
	return d.sparse
}

// buildSparse flattens the sorted slice-of-slices indexes into the packed
// form. Iteration order is inherited from sortIndexes, so the view meets the
// CSR/CSC strict-ordering invariant by construction.
func (d *Dataset) buildSparse() *SparseView {
	sv := &SparseView{
		Claims:   &model.CSC{NumRows: d.n, NumCols: d.m, ColPtr: make([]int32, d.m+1)},
		Silent:   &model.CSC{NumRows: d.n, NumCols: d.m, ColPtr: make([]int32, d.m+1)},
		ClaimsD0: &model.CSR{NumRows: d.n, NumCols: d.m, RowPtr: make([]int32, d.n+1)},
		ClaimsD1: &model.CSR{NumRows: d.n, NumCols: d.m, RowPtr: make([]int32, d.n+1)},
		SilentD1: &model.CSR{NumRows: d.n, NumCols: d.m, RowPtr: make([]int32, d.n+1)},
	}
	sv.Claims.Row = make([]int32, 0, d.numClaims)
	sv.ClaimDep = make([]bool, 0, d.numClaims)
	for j := 0; j < d.m; j++ {
		for _, c := range d.byAssertion[j] {
			sv.Claims.Row = append(sv.Claims.Row, int32(c.Source))
			sv.ClaimDep = append(sv.ClaimDep, c.Dependent)
		}
		sv.Claims.ColPtr[j+1] = int32(len(sv.Claims.Row))
		for _, i := range d.silentDepByAssertion[j] {
			sv.Silent.Row = append(sv.Silent.Row, int32(i))
		}
		sv.Silent.ColPtr[j+1] = int32(len(sv.Silent.Row))
	}
	flattenRows := func(dst *model.CSR, rows [][]int) {
		for i := 0; i < d.n; i++ {
			for _, j := range rows[i] {
				dst.Col = append(dst.Col, int32(j))
			}
			dst.RowPtr[i+1] = int32(len(dst.Col))
		}
	}
	flattenRows(sv.ClaimsD0, d.claimsD0BySource)
	flattenRows(sv.ClaimsD1, d.claimsD1BySource)
	flattenRows(sv.SilentD1, d.silentD1BySource)
	return sv
}

// N returns the number of sources.
func (d *Dataset) N() int { return d.n }

// M returns the number of assertions.
func (d *Dataset) M() int { return d.m }

// NumClaims returns the total number of claims (nonzeros of SC).
func (d *Dataset) NumClaims() int { return d.numClaims }

// NumDependentClaims returns the number of claims with D[i][j] = 1.
func (d *Dataset) NumDependentClaims() int { return d.numDependent }

// NumOriginalClaims returns the number of independent claims, the paper's
// "#Original Claims" column in Table III.
func (d *Dataset) NumOriginalClaims() int { return d.numClaims - d.numDependent }

// Claimants returns the sources claiming assertion j. The returned slice is
// owned by the Dataset and must not be modified.
func (d *Dataset) Claimants(j int) []ClaimRef { return d.byAssertion[j] }

// SilentDependents returns the sources with D[i][j] = 1 that did not claim
// j. The returned slice is owned by the Dataset and must not be modified.
func (d *Dataset) SilentDependents(j int) []int { return d.silentDepByAssertion[j] }

// ClaimsD0 returns the assertions source i claimed independently.
func (d *Dataset) ClaimsD0(i int) []int { return d.claimsD0BySource[i] }

// ClaimsD1 returns the assertions source i claimed dependently.
func (d *Dataset) ClaimsD1(i int) []int { return d.claimsD1BySource[i] }

// SilentD1 returns the assertions with D[i][j] = 1 that source i did not
// claim.
func (d *Dataset) SilentD1(i int) []int { return d.silentD1BySource[i] }

// Claimed reports SC[i][j].
func (d *Dataset) Claimed(i, j int) bool {
	for _, c := range d.byAssertion[j] {
		if c.Source == i {
			return true
		}
	}
	return false
}

// Dependent reports D[i][j].
func (d *Dataset) Dependent(i, j int) bool {
	for _, c := range d.byAssertion[j] {
		if c.Source == i {
			return c.Dependent
		}
	}
	for _, s := range d.silentDepByAssertion[j] {
		if s == i {
			return true
		}
	}
	return false
}

// DependencyColumn materializes column j of D as a dense boolean vector of
// length n. The error-bound computation consumes columns in this form.
func (d *Dataset) DependencyColumn(j int) []bool {
	col := make([]bool, d.n)
	for _, c := range d.byAssertion[j] {
		if c.Dependent {
			col[c.Source] = true
		}
	}
	for _, s := range d.silentDepByAssertion[j] {
		col[s] = true
	}
	return col
}

// Summary aggregates the Table III-style dataset statistics.
type Summary struct {
	Sources         int `json:"sources"`
	Assertions      int `json:"assertions"`
	TotalClaims     int `json:"totalClaims"`
	OriginalClaims  int `json:"originalClaims"`
	DependentClaims int `json:"dependentClaims"`
	SilentDependent int `json:"silentDependentPairs"`
}

// Summarize computes dataset statistics.
func (d *Dataset) Summarize() Summary {
	silent := 0
	for _, s := range d.silentDepByAssertion {
		silent += len(s)
	}
	return Summary{
		Sources:         d.n,
		Assertions:      d.m,
		TotalClaims:     d.numClaims,
		OriginalClaims:  d.NumOriginalClaims(),
		DependentClaims: d.numDependent,
		SilentDependent: silent,
	}
}

// String renders the summary, convenient for examples and CLIs.
func (s Summary) String() string {
	return fmt.Sprintf("sources=%d assertions=%d claims=%d (original=%d dependent=%d) silent-dependent=%d",
		s.Sources, s.Assertions, s.TotalClaims, s.OriginalClaims, s.DependentClaims, s.SilentDependent)
}

// Builder accumulates claims and dependency marks, then freezes them into a
// Dataset. It validates index ranges eagerly and duplicate/conflicting
// entries at Build time.
type Builder struct {
	n, m      int
	claimed   map[pairKey]bool // value: dependent
	silentDep map[pairKey]struct{}
	err       error
}

type pairKey struct{ i, j int }

// Errors reported by the Builder.
var (
	ErrIndexOutOfRange = errors.New("claims: source or assertion index out of range")
	ErrConflictingPair = errors.New("claims: pair marked both claimed and silent-dependent")
)

// NewBuilder creates a Builder for n sources and m assertions.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		n:         n,
		m:         m,
		claimed:   make(map[pairKey]bool),
		silentDep: make(map[pairKey]struct{}),
	}
}

func (b *Builder) checkRange(i, j int) bool {
	if i < 0 || i >= b.n || j < 0 || j >= b.m {
		if b.err == nil {
			b.err = fmt.Errorf("%w: (source=%d, assertion=%d) with n=%d, m=%d",
				ErrIndexOutOfRange, i, j, b.n, b.m)
		}
		return false
	}
	return true
}

// AddClaim records SC[i][j] = 1 with D[i][j] = dependent. Re-adding the same
// pair is allowed; a dependent mark wins over an independent one (a claim is
// dependent if ANY earlier ancestor assertion exists).
func (b *Builder) AddClaim(i, j int, dependent bool) *Builder {
	if !b.checkRange(i, j) {
		return b
	}
	k := pairKey{i, j}
	b.claimed[k] = b.claimed[k] || dependent
	return b
}

// MarkSilentDependent records D[i][j] = 1 for a pair where source i made no
// claim. If the pair is later claimed, Build reports ErrConflictingPair
// unless the claim itself was added as dependent (in which case the silent
// mark is redundant and dropped).
func (b *Builder) MarkSilentDependent(i, j int) *Builder {
	if !b.checkRange(i, j) {
		return b
	}
	b.silentDep[pairKey{i, j}] = struct{}{}
	return b
}

// Build freezes the accumulated structure into a Dataset.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	d := &Dataset{
		n:                    b.n,
		m:                    b.m,
		byAssertion:          make([][]ClaimRef, b.m),
		silentDepByAssertion: make([][]int, b.m),
		claimsD0BySource:     make([][]int, b.n),
		claimsD1BySource:     make([][]int, b.n),
		silentD1BySource:     make([][]int, b.n),
	}
	// Iterate both pair maps in sorted order so the dataset layout and —
	// when several pairs conflict — the reported error are identical on
	// every run, per the determinism contract (maporder).
	pairLess := func(a, b pairKey) bool {
		if a.i != b.i {
			return a.i < b.i
		}
		return a.j < b.j
	}
	for _, k := range mapsort.KeysFunc(b.claimed, pairLess) {
		dep := b.claimed[k]
		if _, silent := b.silentDep[k]; silent && !dep {
			return nil, fmt.Errorf("%w: (source=%d, assertion=%d)", ErrConflictingPair, k.i, k.j)
		}
		d.byAssertion[k.j] = append(d.byAssertion[k.j], ClaimRef{Source: k.i, Dependent: dep})
		if dep {
			d.claimsD1BySource[k.i] = append(d.claimsD1BySource[k.i], k.j)
			d.numDependent++
		} else {
			d.claimsD0BySource[k.i] = append(d.claimsD0BySource[k.i], k.j)
		}
		d.numClaims++
	}
	for _, k := range mapsort.KeysFunc(b.silentDep, pairLess) {
		if _, isClaim := b.claimed[k]; isClaim {
			continue // claim already carries the dependent mark
		}
		d.silentDepByAssertion[k.j] = append(d.silentDepByAssertion[k.j], k.i)
		d.silentD1BySource[k.i] = append(d.silentD1BySource[k.i], k.j)
	}
	d.sortIndexes()
	d.sparse = d.buildSparse()
	return d, nil
}

// sortIndexes makes iteration order deterministic regardless of map order.
func (d *Dataset) sortIndexes() {
	for j := range d.byAssertion {
		sort.Slice(d.byAssertion[j], func(a, b int) bool {
			return d.byAssertion[j][a].Source < d.byAssertion[j][b].Source
		})
		sort.Ints(d.silentDepByAssertion[j])
	}
	for i := 0; i < d.n; i++ {
		sort.Ints(d.claimsD0BySource[i])
		sort.Ints(d.claimsD1BySource[i])
		sort.Ints(d.silentD1BySource[i])
	}
}
