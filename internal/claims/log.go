package claims

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Log record kinds. A claim log is an append-only JSONL write-ahead log:
// tweet records carry the raw observations, and a commit record marks the
// preceding uncommitted tweets as one atomically-applied batch. Records
// after the last commit are an uncommitted tail — written but never applied
// — and are discarded on replay.
const (
	// RecordTweet logs one accepted raw observation.
	RecordTweet = "tweet"
	// RecordCommit marks the tweets since the previous commit as applied.
	RecordCommit = "commit"
)

// LogRecord is one line of the claim log. Tweet records populate Seq,
// Source, Time, Text, and RetweetOf; commit records populate Batch, Tweets,
// and SrcSeq. The type is deliberately self-contained (no dependency on the
// graph or simulator layers) so the log format stands on its own.
type LogRecord struct {
	Kind string `json:"kind"`

	// Tweet fields.
	Seq       int    `json:"seq,omitempty"`    // position in the source stream
	Source    int    `json:"source,omitempty"` // authoring source id
	Time      int64  `json:"time,omitempty"`   // stable timestamp, Unix nanoseconds
	Text      string `json:"text,omitempty"`   // raw tweet text
	RetweetOf int    `json:"retweetOf"`        // author repeated, -1 for originals
	// Commit fields.
	Batch  int `json:"batch,omitempty"`  // committed batch sequence number
	Tweets int `json:"tweets,omitempty"` // cumulative accepted tweets after this batch
	SrcSeq int `json:"srcSeq,omitempty"` // last source-stream seq in this batch
}

// TornTail reports a truncated final log line — the signature of a crash
// mid-append. Replay skips it (the record never committed) rather than
// failing; callers should surface it and rewrite the log without the torn
// bytes.
type TornTail struct {
	// Line is the 1-based line number of the torn record.
	Line int
	// Bytes is how many trailing bytes the torn line occupies.
	Bytes int
}

// LogWriter appends records to a claim log. Writes are buffered; callers
// must Flush (and fsync the underlying file, if durability is needed)
// before treating a batch as committed.
type LogWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewLogWriter wraps w for appending log records.
func NewLogWriter(w io.Writer) *LogWriter {
	bw := bufio.NewWriter(w)
	return &LogWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Append writes one record as a JSON line.
func (lw *LogWriter) Append(rec LogRecord) error {
	if rec.Kind != RecordTweet && rec.Kind != RecordCommit {
		return fmt.Errorf("claims: log record has unknown kind %q", rec.Kind)
	}
	return lw.enc.Encode(rec)
}

// Flush pushes buffered records to the underlying writer.
func (lw *LogWriter) Flush() error { return lw.w.Flush() }

// ReadLog decodes a claim log. A final line that fails to parse — truncated
// by a crash mid-append — is skipped and reported via torn instead of
// failing the whole replay; malformed interior lines still error, since a
// line followed by well-formed records was not torn by a crash.
func ReadLog(r io.Reader) (recs []LogRecord, torn *TornTail, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	var pending *TornTail
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(trimSpace(raw)) == 0 {
			continue
		}
		if pending != nil {
			return nil, nil, fmt.Errorf("claims: malformed log record at line %d (followed by further records)", pending.Line)
		}
		var rec LogRecord
		if uerr := json.Unmarshal(raw, &rec); uerr != nil {
			// Tentatively torn: only stands if no further records follow.
			pending = &TornTail{Line: line, Bytes: len(raw)}
			continue
		}
		if rec.Kind != RecordTweet && rec.Kind != RecordCommit {
			pending = &TornTail{Line: line, Bytes: len(raw)}
			continue
		}
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		return nil, nil, fmt.Errorf("claims: reading log: %w", serr)
	}
	return recs, pending, nil
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
