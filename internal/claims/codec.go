package claims

import (
	"encoding/json"
	"fmt"
	"io"
)

// datasetJSON is the on-disk representation consumed by the CLI tools. The
// silent-dependent pairs are serialized explicitly so that a round trip
// preserves the full D matrix, not just its claimed entries.
type datasetJSON struct {
	Sources    int         `json:"sources"`
	Assertions int         `json:"assertions"`
	Claims     []claimJSON `json:"claims"`
	SilentDep  []pairJSON  `json:"silentDependent,omitempty"`
}

type claimJSON struct {
	Source    int  `json:"source"`
	Assertion int  `json:"assertion"`
	Dependent bool `json:"dependent,omitempty"`
}

type pairJSON struct {
	Source    int `json:"source"`
	Assertion int `json:"assertion"`
}

// MarshalJSON implements json.Marshaler.
func (d *Dataset) MarshalJSON() ([]byte, error) {
	out := datasetJSON{Sources: d.n, Assertions: d.m}
	out.Claims = make([]claimJSON, 0, d.numClaims)
	for j, refs := range d.byAssertion {
		for _, c := range refs {
			out.Claims = append(out.Claims, claimJSON{Source: c.Source, Assertion: j, Dependent: c.Dependent})
		}
		for _, i := range d.silentDepByAssertion[j] {
			out.SilentDep = append(out.SilentDep, pairJSON{Source: i, Assertion: j})
		}
	}
	return json.Marshal(out)
}

// MaxWireDim caps the source and assertion counts accepted from the wire.
// The dataset pre-allocates per-source and per-assertion index slices, so an
// attacker-controlled header like {"sources": 1e18} would otherwise turn a
// tiny JSON body into an enormous allocation (or, when negative, a panic in
// Build). In-memory construction via Builder is not capped.
const MaxWireDim = 1 << 20

// UnmarshalJSON implements json.Unmarshaler. It rejects negative or
// oversized (> MaxWireDim) dimension headers before building anything, so
// decoding untrusted input never panics and never allocates more than the
// input's declared, bounded shape.
func (d *Dataset) UnmarshalJSON(data []byte) error {
	var in datasetJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("claims: decode dataset: %w", err)
	}
	if in.Sources < 0 || in.Assertions < 0 {
		return fmt.Errorf("claims: decode dataset: negative dimensions (sources=%d, assertions=%d)", in.Sources, in.Assertions)
	}
	if in.Sources > MaxWireDim || in.Assertions > MaxWireDim {
		return fmt.Errorf("claims: decode dataset: dimensions (sources=%d, assertions=%d) exceed limit %d", in.Sources, in.Assertions, MaxWireDim)
	}
	b := NewBuilder(in.Sources, in.Assertions)
	for _, c := range in.Claims {
		b.AddClaim(c.Source, c.Assertion, c.Dependent)
	}
	for _, p := range in.SilentDep {
		b.MarkSilentDependent(p.Source, p.Assertion)
	}
	built, err := b.Build()
	if err != nil {
		return fmt.Errorf("claims: decode dataset: %w", err)
	}
	*d = *built
	return nil
}

// WriteTo streams the dataset as JSON.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// ReadDataset decodes a dataset from JSON.
func ReadDataset(r io.Reader) (*Dataset, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("claims: read dataset: %w", err)
	}
	var d Dataset
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
