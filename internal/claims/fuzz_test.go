package claims

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary bytes into the dataset JSON decoder. The
// properties under test: decoding never panics on any input, and any input
// that decodes successfully survives an encode→decode round trip with an
// identical in-memory dataset (the codec normalizes — sorted indexes,
// dependent-mark folding — so a second trip must be a fixed point).
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{}`),
		[]byte(`{"sources":2,"assertions":2,"claims":[{"source":0,"assertion":1}]}`),
		[]byte(`{"sources":3,"assertions":2,"claims":[{"source":1,"assertion":0,"dependent":true}],"silentDependent":[{"source":2,"assertion":0}]}`),
		[]byte(`{"sources":-1,"assertions":-1}`),
		[]byte(`{"sources":9999999999,"assertions":1}`),
		[]byte(`{"sources":1,"assertions":1,"claims":[{"source":5,"assertion":0}]}`),
		[]byte(`{"sources":2,"assertions":1,"claims":[{"source":0,"assertion":0}],"silentDependent":[{"source":0,"assertion":0}]}`),
		[]byte(`not json`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Dataset
		if err := json.Unmarshal(data, &d); err != nil {
			return // malformed or rejected input: an error is the contract
		}
		if d.N() < 0 || d.M() < 0 || d.N() > MaxWireDim || d.M() > MaxWireDim {
			t.Fatalf("decoded dimensions escape validation: n=%d m=%d", d.N(), d.M())
		}
		enc, err := json.Marshal(&d)
		if err != nil {
			t.Fatalf("re-encode of successfully decoded dataset failed: %v", err)
		}
		var d2 Dataset
		if err := json.Unmarshal(enc, &d2); err != nil {
			t.Fatalf("decode of our own encoding failed: %v\nencoding: %s", err, enc)
		}
		if !reflect.DeepEqual(&d, &d2) {
			t.Fatalf("round trip not a fixed point:\nfirst:  %+v\nsecond: %+v", d.Summarize(), d2.Summarize())
		}
	})
}
