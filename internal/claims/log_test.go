package claims

import (
	"bytes"
	"strings"
	"testing"
)

func sampleLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	recs := []LogRecord{
		{Kind: RecordTweet, Seq: 0, Source: 3, Time: 1000, Text: "explosion at bridge", RetweetOf: -1},
		{Kind: RecordTweet, Seq: 1, Source: 5, Time: 2000, Text: "rt explosion at bridge", RetweetOf: 3},
		{Kind: RecordCommit, Batch: 0, Tweets: 2, SrcSeq: 1},
		{Kind: RecordTweet, Seq: 2, Source: 1, Time: 3000, Text: "power outage downtown", RetweetOf: -1},
		{Kind: RecordCommit, Batch: 1, Tweets: 3, SrcSeq: 2},
	}
	for _, rec := range recs {
		if err := lw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLogRoundTrip(t *testing.T) {
	data := sampleLog(t)
	recs, torn, err := ReadLog(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if torn != nil {
		t.Fatalf("clean log reported torn tail %+v", torn)
	}
	if len(recs) != 5 {
		t.Fatalf("read %d records, want 5", len(recs))
	}
	if recs[0].Text != "explosion at bridge" || recs[0].RetweetOf != -1 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].RetweetOf != 3 {
		t.Fatalf("record 1 retweetOf = %d, want 3", recs[1].RetweetOf)
	}
	if recs[2].Kind != RecordCommit || recs[2].Tweets != 2 || recs[2].SrcSeq != 1 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

// TestReadLogTornTail is the crash-mid-append regression: a truncated final
// line is skipped and reported, and every complete record before it is
// still replayed.
func TestReadLogTornTail(t *testing.T) {
	data := sampleLog(t)
	// Tear the log mid-way through its final record, as a crash between
	// write and flush would: the last line loses its tail and newline.
	torn := data[:len(data)-9]
	tornLine := torn[bytes.LastIndexByte(torn[:len(torn)-1], '\n')+1:]

	recs, tail, err := ReadLog(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn log failed replay: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 (all complete lines)", len(recs))
	}
	if tail == nil {
		t.Fatal("torn tail not reported")
	}
	if tail.Line != 5 {
		t.Fatalf("torn line = %d, want 5", tail.Line)
	}
	if tail.Bytes != len(tornLine) {
		t.Fatalf("torn bytes = %d, want %d", tail.Bytes, len(tornLine))
	}
	// Truncating the log at len-tail.Bytes removes exactly the torn bytes,
	// which is how recovery compacts the file.
	healed := torn[:len(torn)-tail.Bytes]
	recs2, tail2, err := ReadLog(bytes.NewReader(healed))
	if err != nil || tail2 != nil {
		t.Fatalf("healed log: err=%v tail=%+v", err, tail2)
	}
	if len(recs2) != 4 {
		t.Fatalf("healed log has %d records, want 4", len(recs2))
	}
}

// TestReadLogInteriorCorruptionFails: a malformed line with well-formed
// records after it is corruption, not a crash tear, and must error.
func TestReadLogInteriorCorruptionFails(t *testing.T) {
	data := sampleLog(t)
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "{\"kind\":\"tweet\",\"seq\":1,\n"
	if _, _, err := ReadLog(strings.NewReader(strings.Join(lines, ""))); err == nil {
		t.Fatal("interior corruption accepted")
	}
}

// TestReadLogUnknownKindTail: a final record whose kind is gibberish (torn
// inside the kind string, say) is treated as torn, not fatal.
func TestReadLogUnknownKindTail(t *testing.T) {
	data := append(sampleLog(t), []byte("{\"kind\":\"twe\"}")...)
	recs, tail, err := ReadLog(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || tail == nil {
		t.Fatalf("recs=%d tail=%+v, want 5 records and a torn tail", len(recs), tail)
	}
}

func TestLogWriterRejectsUnknownKind(t *testing.T) {
	lw := NewLogWriter(&bytes.Buffer{})
	if err := lw.Append(LogRecord{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestReadLogEmpty(t *testing.T) {
	recs, tail, err := ReadLog(strings.NewReader(""))
	if err != nil || tail != nil || len(recs) != 0 {
		t.Fatalf("empty log: recs=%d tail=%+v err=%v", len(recs), tail, err)
	}
}
