// Fixture analyzed under depsense/internal/synthetic: library code, not a
// clocked zone, not randutil.
package fixture

import (
	"math/rand"
	"time"

	"depsense/internal/randutil"
)

// Draw exercises every flavor of forbidden randomness.
func Draw() int {
	rand.Seed(42)                      // want `rand\.Seed mutates the process-global source`
	n := rand.Intn(10)                 // want `process-global source`
	x := rand.Float64()                // want `process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `process-global source`

	src := rand.NewSource(7) // want `construct RNGs via depsense/internal/randutil`
	rng := rand.New(src)     // want `construct RNGs via depsense/internal/randutil`

	// The blessed path: an explicit seed through randutil.
	good := randutil.New(7)
	_ = good.Intn(10) // method on an explicit generator: fine

	//lint:allow seedsource demonstration that a justified allow silences the finding
	rand.Seed(1)

	_ = x
	_ = rng
	return n
}

// Stamp shows time.Now is NOT flagged outside clocked zones.
func Stamp() time.Time {
	return time.Now()
}
