// Fixture analyzed under depsense/internal/randutil, the one package
// allowed to construct generators — but still barred from the global
// source.
package fixture

import "math/rand"

// New may construct sources and generators here.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Global draws are forbidden even here.
func Global() int {
	return rand.Intn(10) // want `process-global source`
}
