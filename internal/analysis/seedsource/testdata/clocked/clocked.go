// Fixture analyzed under depsense/internal/report, a clocked zone: bare
// wall-clock reads must be injected or justified.
package fixture

import "time"

// Stamp reads the wall clock bare.
func Stamp() time.Time {
	return time.Now() // want `bare time\.Now\(\) in clocked zone`
}

// Timing carries the sanctioned justification.
func Timing() time.Duration {
	start := time.Now() //lint:allow seedsource wall-clock timing measurement
	return time.Since(start)
}

// Injected is the preferred shape: time.Now referenced as the default of an
// injectable clock, never called bare.
func Injected(clock func() time.Time) time.Time {
	if clock == nil {
		clock = time.Now
	}
	return clock()
}
