// Package seedsource implements the depsenselint analyzer that keeps
// nondeterminism sources — RNGs and wall clocks — behind the repository's
// injection points.
//
// The reproducibility contract (DESIGN.md, "run lifecycle" and "parallel
// determinism" sections) is that every random draw flows from an explicit
// seed through depsense/internal/randutil, and every timestamp that lands
// in a result flows from an injectable clock. The analyzer therefore flags,
// in library code:
//
//   - any use of math/rand's (or math/rand/v2's) process-global source
//     (rand.Intn, rand.Float64, rand.Shuffle, ...), which is seeded
//     nondeterministically since Go 1.20;
//   - rand.Seed, which mutates global state and is deprecated;
//   - direct generator construction (rand.New, rand.NewSource) outside
//     depsense/internal/randutil, the blessed constructor package;
//   - bare time.Now() inside clocked zones (see internal/analysis/zones);
//     wall-clock *timing* measurements are legitimate there and carry a
//     //lint:allow seedsource <reason> suppression instead.
package seedsource

import (
	"go/ast"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// Analyzer flags global-source randomness, ad-hoc RNG construction, and
// bare wall-clock reads in clocked zones.
var Analyzer = &framework.Analyzer{
	Name: "seedsource",
	Doc: "flag math/rand global-source use, rand.Seed, RNG construction outside " +
		"internal/randutil, and bare time.Now() in clocked zones",
	Requires: []*framework.Analyzer{zonefacts.Analyzer},
	Run:      run,
}

// randutilPath is the only package allowed to construct RNGs directly.
const randutilPath = "depsense/internal/randutil"

// globalSource lists math/rand package-level functions that draw from the
// process-global source.
var globalSource = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"N": true, "Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

func run(pass *framework.Pass) error {
	inClockedZone := zonefacts.Of(pass).Clocked
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name := framework.SelectorPkgPath(pass.TypesInfo, call.Fun)
			switch path {
			case "math/rand", "math/rand/v2":
				switch {
				case name == "Seed":
					pass.Reportf(call.Pos(),
						"rand.Seed mutates the process-global source; seed an explicit generator with randutil.New(seed) instead")
				case globalSource[name]:
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-global source (nondeterministically seeded since Go 1.20); "+
							"thread a *rand.Rand from randutil.New(seed) instead", name)
				case (name == "New" || name == "NewSource" || name == "NewPCG" || name == "NewChaCha8") &&
					pass.Path != randutilPath:
					pass.Reportf(call.Pos(),
						"construct RNGs via depsense/internal/randutil (explicit seed, one generator per run) "+
							"rather than rand.%s, so reproducibility flows from a single seed", name)
				}
			case "time":
				if name == "Now" && inClockedZone {
					pass.Reportf(call.Pos(),
						"bare time.Now() in clocked zone %s: results must not read the wall clock directly; "+
							"inject a clock (see report.Input.Clock / eval.BenchParallelOptions.Clock) or, for a pure "+
							"timing measurement, suppress with //lint:allow seedsource <reason>", pass.Path)
				}
			}
			return true
		})
	}
	return nil
}
