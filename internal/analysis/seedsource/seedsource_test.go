package seedsource_test

import (
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/seedsource"
)

func TestLibraryCode(t *testing.T) {
	analysistest.RunPath(t, seedsource.Analyzer, "testdata/lib", "depsense/internal/synthetic")
}

func TestClockedZone(t *testing.T) {
	analysistest.RunPath(t, seedsource.Analyzer, "testdata/clocked", "depsense/internal/report")
}

func TestRandutilItself(t *testing.T) {
	analysistest.RunPath(t, seedsource.Analyzer, "testdata/randutil", "depsense/internal/randutil")
}
