// Package analysistest runs a depsenselint analyzer over fixture files and
// checks its findings against expectations written in the fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest:
//
//	for i := range m { // want `range over map`
//
// Each `// want "regexp"` (or backquoted) comment asserts that the
// analyzer, after //lint:allow suppression, reports a finding on that line
// matching the regexp. Findings without a want, and wants without a
// finding, fail the test. Suppression fixtures therefore carry a violation
// plus a //lint:allow directive and no want comment.
//
// Fixture directories hold one package of standalone Go files; they live
// under testdata/ so the surrounding module never compiles them. Because
// the zone-based analyzers key off import paths, RunPath lets a fixture
// impersonate a real package path (e.g. depsense/internal/core). Imports
// are resolved offline against export data from the local go toolchain,
// so fixtures may import both stdlib and depsense packages.
package analysistest

import (
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"depsense/internal/analysis/framework"
)

// Run analyzes the fixture package in dir under its own package name.
func Run(t *testing.T, a *framework.Analyzer, dir string) {
	t.Helper()
	RunPath(t, a, dir, "")
}

// RunPath analyzes the fixture package in dir as if its import path were
// importPath (empty: "fixture/<pkgname>"). Besides the // want contract,
// any fixture file with a sibling "<name>.golden" asserts the suggested-fix
// round trip: applying every finding's first fix must reproduce the golden
// body byte-for-byte.
func RunPath(t *testing.T, a *framework.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, findings := analyze(t, a, dir, importPath)
	checkWants(t, []*framework.Package{pkg}, findings)
	checkGoldens(t, []*framework.Package{pkg}, findings)
}

// Fixture names one package of a multi-package fixture: its directory and
// the import path it impersonates. Later fixtures may import earlier ones
// by that path, which is how cross-package fact propagation is exercised —
// the importing package's analysis sees the facts exported while analyzing
// the imported one.
type Fixture struct {
	Dir        string
	ImportPath string
}

// RunDirs analyzes several fixture packages as one dependency-ordered unit
// (facts flow from earlier entries to later ones), checking // want
// comments and .golden fix fixtures across all of them.
func RunDirs(t *testing.T, a *framework.Analyzer, fixtures ...Fixture) {
	t.Helper()
	pkgs := loadFixtures(t, fixtures)
	findings, err := framework.RunAnalyzers(pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, pkgs, findings)
	checkGoldens(t, pkgs, findings)
}

// Findings analyzes the fixture package in dir under importPath and returns
// the raw post-suppression findings without want-comment checking, for
// cases a trailing want comment cannot express (e.g. findings positioned on
// a directive comment itself).
func Findings(t *testing.T, a *framework.Analyzer, dir, importPath string) []framework.Finding {
	t.Helper()
	_, findings := analyze(t, a, dir, importPath)
	return findings
}

func analyze(t *testing.T, a *framework.Analyzer, dir, importPath string) (*framework.Package, []framework.Finding) {
	t.Helper()
	pkg, err := loadFixture(dir, importPath, nil)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := framework.RunAnalyzers([]*framework.Package{pkg}, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	return pkg, findings
}

func loadFixtures(t *testing.T, fixtures []Fixture) []*framework.Package {
	t.Helper()
	var pkgs []*framework.Package
	prior := map[string]*types.Package{}
	for _, fx := range fixtures {
		pkg, err := loadFixture(fx.Dir, fx.ImportPath, prior)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx.Dir, err)
		}
		pkgs = append(pkgs, pkg)
		prior[pkg.ImportPath] = pkg.Types
	}
	return pkgs
}

// checkGoldens verifies the suggested-fix round trip wherever a fixture
// ships a .golden file: source + fixes must equal the golden bytes.
func checkGoldens(t *testing.T, pkgs []*framework.Package, findings []framework.Finding) {
	t.Helper()
	sources := map[string][]byte{}
	goldens := map[string]string{} // source path -> golden path
	for _, pkg := range pkgs {
		for path, src := range pkg.Sources {
			sources[path] = src
			if g := path + ".golden"; fileExists(g) {
				goldens[path] = g
			}
		}
	}
	if len(goldens) == 0 {
		return
	}
	fixed, err := framework.ApplyFixes(findings, sources)
	if err != nil {
		t.Fatalf("applying suggested fixes: %v", err)
	}
	for path, goldenPath := range goldens {
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading golden %s: %v", goldenPath, err)
		}
		got, ok := fixed[path]
		if !ok {
			got = sources[path]
		}
		if string(got) != string(want) {
			t.Errorf("fix round-trip mismatch for %s:\n--- got ---\n%s\n--- want (%s) ---\n%s",
				path, got, goldenPath, want)
		}
	}
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// checkWants cross-checks findings against the fixtures' want comments.
func checkWants(t *testing.T, pkgs []*framework.Package, findings []framework.Finding) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			tf := pkg.Fset.File(f.Pos())
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat := m[1]
					if pat == "" {
						pat = m[2]
					} else {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
					}
					wants = append(wants, &want{file: tf.Name(), line: tf.Line(c.Pos()), re: re})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// loadFixture parses and type-checks one fixture directory as a package.
// prior supplies already-checked fixture packages by import path, so a
// fixture can import a sibling fixture (cross-package fact tests); all
// other imports resolve offline from export data.
func loadFixture(dir, importPath string, prior map[string]*types.Package) (*framework.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	pkg := &framework.Package{Dir: dir, Fset: fset, Sources: map[string][]byte{}}
	importSet := map[string]bool{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		pkg.Sources[p] = src
		f, err := parser.ParseFile(fset, p, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			pkg.Imports = append(pkg.Imports, path)
			if prior[path] == nil {
				importSet[path] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, os.ErrNotExist
	}
	if importPath == "" {
		importPath = "fixture/" + pkg.Files[0].Name.Name
	}
	pkg.ImportPath = importPath

	exp, err := fixtureImporter(fset, importSet)
	if err != nil {
		return nil, err
	}
	info := framework.NewTypesInfo()
	conf := types.Config{
		Importer: chainedImporter{prior: prior, fallback: exp},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
	if len(pkg.TypeErrors) > 0 {
		return nil, pkg.TypeErrors[0]
	}
	return pkg, nil
}

// chainedImporter resolves sibling fixture packages from their
// source-checked types.Package and everything else from export data.
type chainedImporter struct {
	prior    map[string]*types.Package
	fallback types.Importer
}

func (c chainedImporter) Import(path string) (*types.Package, error) {
	if p := c.prior[path]; p != nil {
		return p, nil
	}
	return c.fallback.Import(path)
}

// fixtureImporter builds an export-data importer for the fixture's imports
// (resolved from the test's working directory, which is inside the
// module).
func fixtureImporter(fset *token.FileSet, importSet map[string]bool) (types.Importer, error) {
	patterns := make([]string, 0, len(importSet))
	for p := range importSet {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	if len(patterns) == 0 {
		patterns = []string{"fmt"} // importer is still consulted for nothing; keep go list happy
	}
	return framework.ExportImporter(fset, ".", patterns...)
}
