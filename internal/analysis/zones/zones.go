// Package zones centralizes which packages each depsenselint analyzer
// patrols, so the contract lives in one place (and in DESIGN.md) rather
// than scattered across analyzers.
//
// A "deterministic zone" is a package whose exported results must be
// bit-for-bit reproducible from a seed at any worker count — the contract
// introduced by the PR 2 parallel execution work. Functions outside these
// packages can opt in with a "//depsense:deterministic" doc comment.
//
// These maps are the root declarations only: analyzers no longer read them
// directly. The zonefacts analyzer unites them with in-package
// "//depsense:zone" directives and publishes the result as a package fact,
// which is what the checking analyzers consume (see
// internal/analysis/zonefacts). New packages should prefer the in-package
// directive; the maps remain for the packages that predate it and as the
// single list the zone-completeness test audits.
package zones

// Deterministic lists the packages whose outputs must be bit-for-bit
// reproducible; maporder forbids unordered map iteration here.
var Deterministic = map[string]bool{
	"depsense/internal/core":     true,
	"depsense/internal/bound":    true,
	"depsense/internal/gibbs":    true,
	"depsense/internal/parallel": true,
	"depsense/internal/cluster":  true,
	"depsense/internal/depgraph": true,
	"depsense/internal/claims":   true,
	"depsense/internal/model":    true,
	"depsense/internal/stream":   true,
	"depsense/internal/ingest":   true,
	"depsense/internal/obs":      true,
	"depsense/internal/trace":    true,
	"depsense/internal/qual":     true,
	"depsense/cmd/sstrace":       true,
	"depsense/cmd/ssqual":        true,
}

// Estimator lists the packages that run open-ended iteration (EM rounds,
// Gibbs sweeps, belief/trust rounds, stream refits); ctxloop requires their
// unbounded loops to consult the runctx cancellation contract from PR 1.
var Estimator = map[string]bool{
	"depsense/internal/core":      true,
	"depsense/internal/gibbs":     true,
	"depsense/internal/bound":     true,
	"depsense/internal/baselines": true,
	"depsense/internal/stream":    true,
	"depsense/internal/ingest":    true,
	"depsense/internal/factfind":  true,
	"depsense/internal/apollo":    true,
	"depsense/internal/parallel":  true,
}

// Numeric lists the packages doing posterior/likelihood arithmetic
// (Eqs. 9–14 territory); probexpr patrols them for raw-probability
// products that belong in log-space and exact 0/1 comparisons.
var Numeric = map[string]bool{
	"depsense/internal/model":     true,
	"depsense/internal/core":      true,
	"depsense/internal/bound":     true,
	"depsense/internal/gibbs":     true,
	"depsense/internal/baselines": true,
	"depsense/internal/stats":     true,
	"depsense/internal/stream":    true,
	"depsense/internal/synthetic": true,
}

// Pipeline lists the packages built around staged, bounded-channel
// pipelines; chandisc requires their channel sends to be shed- or
// cancellation-aware selects and each channel to be closed exactly once by
// its owning stage.
var Pipeline = map[string]bool{
	"depsense/internal/ingest": true,
	"depsense/internal/serve":  true,
}

// Clocked lists the packages where a bare time.Now() is suspect: either a
// deterministic zone or a package that stamps results users diff across
// runs. seedsource requires wall-clock reads here to be injected clocks or
// explicitly allowed as timing measurements.
var Clocked = map[string]bool{
	"depsense/internal/core":       true,
	"depsense/internal/bound":      true,
	"depsense/internal/gibbs":      true,
	"depsense/internal/parallel":   true,
	"depsense/internal/cluster":    true,
	"depsense/internal/depgraph":   true,
	"depsense/internal/baselines":  true,
	"depsense/internal/eval":       true,
	"depsense/internal/report":     true,
	"depsense/internal/stream":     true,
	"depsense/internal/ingest":     true,
	"depsense/internal/twittersim": true,
	"depsense/internal/obs":        true,
	"depsense/internal/apollo":     true,
	"depsense/internal/httpapi":    true,
	"depsense/internal/serve":      true,
	"depsense/internal/trace":      true,
	"depsense/internal/qual":       true,
	"depsense/cmd/sstrace":         true,
	"depsense/cmd/ssingest":        true,
	"depsense/cmd/ssqual":          true,
}
