package zones_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"depsense/internal/analysis/zones"
)

// exempt lists the internal packages deliberately outside every zone, each
// with the reason it needs none of the lint contracts. A new internal
// package must either join a zone map (or carry a //depsense:zone
// directive recorded here) or be added here with a justification.
var exempt = map[string]string{
	"analysis":  "the linter itself: analyzers, framework, fixtures",
	"grader":    "offline scoring harness; consumes estimator output, produces none of its own contracts",
	"mapsort":   "the sanctioned sorted-iteration helper; its one unordered range is sorted immediately (see package doc)",
	"plot":      "report-side SVG rendering of already-final results",
	"randutil":  "seed-derivation utilities; it is the randomness source the zones discipline, not a consumer",
	"runctx":    "cancellation/hook plumbing shared by every zone; no estimator state of its own",
	"tweetjson": "stateless wire-format decoding; determinism follows from its inputs",
}

// zoneMaps is every root declaration, by name for error messages.
func zoneMaps() map[string]map[string]bool {
	return map[string]map[string]bool{
		"Deterministic": zones.Deterministic,
		"Estimator":     zones.Estimator,
		"Numeric":       zones.Numeric,
		"Clocked":       zones.Clocked,
		"Pipeline":      zones.Pipeline,
	}
}

// TestEveryInternalPackageIsZonedOrExempt is the completeness audit: each
// package under internal/ appears in at least one zone map or in the
// exempt list above — nobody slips between the contracts unnoticed.
func TestEveryInternalPackageIsZonedOrExempt(t *testing.T) {
	internalDir := filepath.Join("..", "..")
	entries, err := os.ReadDir(internalDir)
	if err != nil {
		t.Fatal(err)
	}
	inSomeZone := map[string]bool{}
	for _, m := range zoneMaps() {
		for path := range m {
			inSomeZone[path] = true
		}
	}
	for _, e := range entries {
		if !e.IsDir() || !hasGoFiles(t, filepath.Join(internalDir, e.Name())) {
			continue
		}
		name := e.Name()
		path := "depsense/internal/" + name
		zoned := inSomeZone[path]
		_, isExempt := exempt[name]
		switch {
		case !zoned && !isExempt:
			t.Errorf("internal package %s is in no zone map and not in the exempt list; "+
				"add it to a zone in internal/analysis/zones (or //depsense:zone) or exempt it here with a reason", path)
		case zoned && isExempt:
			t.Errorf("internal package %s is both zoned and exempt; drop one", path)
		}
	}
}

// TestZoneMapsNameRealPackages keeps the root maps honest: every entry must
// correspond to a directory that exists and contains Go files, so renames
// and deletions cannot leave contracts dangling.
func TestZoneMapsNameRealPackages(t *testing.T) {
	repoRoot := filepath.Join("..", "..", "..")
	for mapName, m := range zoneMaps() {
		for path := range m {
			rel, ok := strings.CutPrefix(path, "depsense/")
			if !ok {
				t.Errorf("%s entry %q is not a depsense package path", mapName, path)
				continue
			}
			dir := filepath.Join(repoRoot, filepath.FromSlash(rel))
			if !hasGoFiles(t, dir) {
				t.Errorf("%s entry %q names a package with no Go files at %s", mapName, path, dir)
			}
		}
	}
}

func hasGoFiles(t *testing.T, dir string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
