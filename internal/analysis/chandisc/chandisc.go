// Package chandisc implements the depsenselint analyzer for channel
// discipline in pipeline-zone packages (internal/ingest and anything that
// opts in with //depsense:zone pipeline).
//
// The staged ingestion pipeline moves data through bounded channels; a
// blocking send in one stage deadlocks every stage upstream of it when the
// consumer stalls, and a double close panics in production. chandisc
// enforces the two rules DESIGN.md states in prose:
//
//  1. A send on a pipeline channel (a chan-typed struct field or function
//     parameter) must be a select case alongside a cancellation path — a
//     receive case (normally <-ctx.Done()) or a default (shed). A bare
//     send gets a suggested fix wrapping it in select { case send:
//     case <-ctx.Done(): } when a context parameter is in scope.
//
//  2. A pipeline channel is closed exactly once, by a defer in its owning
//     stage: at most one static close site per channel object, and that
//     close must be deferred so the channel closes on every exit path.
//
// Sends and closes on channels local to the enclosing function are exempt:
// a channel that has not escaped its creator (errCh := make(chan error, 1))
// cannot stall another stage.
package chandisc

import (
	"go/ast"
	"go/types"
	"strings"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// Analyzer enforces pipeline-channel send and close discipline.
var Analyzer = &framework.Analyzer{
	Name: "chandisc",
	Doc: "in pipeline-zone packages, require channel sends to be selects with a " +
		"cancellation/shed path and channels to be closed exactly once via defer by the owning stage",
	Requires: []*framework.Analyzer{zonefacts.Analyzer},
	Run:      run,
}

// closeSite records one close(ch) call for the exactly-once audit.
type closeSite struct {
	call     *ast.CallExpr
	deferred bool
	name     string
}

func run(pass *framework.Pass) error {
	if !zonefacts.Of(pass).Pipeline {
		return nil
	}
	closes := map[types.Object][]closeSite{}
	var order []types.Object // report in source order, deterministically
	for _, file := range pass.Files {
		checkFile(pass, file, closes, &order)
	}
	for _, obj := range order {
		sites := closes[obj]
		if len(sites) > 1 {
			for _, s := range sites[1:] {
				pass.Reportf(s.call.Pos(),
					"pipeline channel %s has %d close sites; it must be closed exactly once by its owning stage",
					s.name, len(sites))
			}
		}
		for _, s := range sites {
			if !s.deferred {
				pass.Reportf(s.call.Pos(),
					"close of pipeline channel %s must be deferred (defer close(%s)) so the owning stage closes it on every exit path",
					s.name, s.name)
			}
		}
	}
	return nil
}

func checkFile(pass *framework.Pass, file *ast.File, closes map[types.Object][]closeSite, order *[]types.Object) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SendStmt:
			checkSend(pass, n, stack)
		case *ast.CallExpr:
			recordClose(pass, n, stack, closes, order)
		}
		return true
	})
}

// checkSend flags a send on a non-local pipeline channel that is not a
// select case with a cancellation or shed path.
func checkSend(pass *framework.Pass, send *ast.SendStmt, stack []ast.Node) {
	obj := chanObj(pass, send.Chan)
	if obj == nil {
		return
	}
	body := enclosingBody(stack[:len(stack)-1])
	if body == nil || localTo(obj, body) {
		return
	}
	if sel := selectCaseOf(send, stack); sel != nil && hasEscapeClause(sel, send) {
		return
	}
	name := types.ExprString(send.Chan)
	d := framework.Diagnostic{
		Pos: send.Pos(),
		Message: "send on pipeline channel " + name +
			" must be a select case with a <-ctx.Done() (or default) escape so a stalled consumer cannot wedge the stage",
	}
	if fix, ok := wrapSendFix(pass, send, stack); ok {
		d.SuggestedFixes = []framework.SuggestedFix{fix}
	}
	pass.Report(d)
}

// wrapSendFix builds the mechanical rewrite of a bare send into a
// cancellation-aware select, when a context.Context parameter is in scope.
// It assumes tab indentation (the repo is gofmt-clean), deriving the depth
// from the send's column.
func wrapSendFix(pass *framework.Pass, send *ast.SendStmt, stack []ast.Node) (framework.SuggestedFix, bool) {
	ctxName := contextParamName(pass, stack)
	if ctxName == "" {
		return framework.SuggestedFix{}, false
	}
	col := pass.Fset.Position(send.Pos()).Column
	if col < 1 {
		return framework.SuggestedFix{}, false
	}
	indent := strings.Repeat("\t", col-1)
	sendText := types.ExprString(send.Chan) + " <- " + types.ExprString(send.Value)
	newText := "select {\n" +
		indent + "case " + sendText + ":\n" +
		indent + "case <-" + ctxName + ".Done():\n" +
		indent + "}"
	return framework.SuggestedFix{
		Message: "wrap the send in a select with a <-" + ctxName + ".Done() escape",
		TextEdits: []framework.TextEdit{
			{Pos: send.Pos(), End: send.End(), NewText: newText},
		},
	}, true
}

// contextParamName returns the name of the innermost enclosing function's
// context.Context parameter, or "".
func contextParamName(pass *framework.Pass, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			ft = fn.Type
		case *ast.FuncDecl:
			ft = fn.Type
		default:
			continue
		}
		for _, p := range ft.Params.List {
			for _, name := range p.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj != nil && isContext(obj.Type()) {
					return name.Name
				}
			}
		}
		// Only the innermost function's parameters are trustworthy: an
		// outer ctx may be shadowed or out of scope for goroutines.
		return ""
	}
	return ""
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// selectCaseOf returns the SelectStmt in which send is a comm clause, or
// nil if the send is bare.
func selectCaseOf(send *ast.SendStmt, stack []ast.Node) *ast.SelectStmt {
	// stack ends at the send itself; above it sit the comm clause, the
	// select's body block, and the select (if the send is a case at all).
	if len(stack) < 4 {
		return nil
	}
	clause, ok := stack[len(stack)-2].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		return nil
	}
	for i := len(stack) - 3; i >= 0 && i >= len(stack)-4; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return sel
		}
	}
	return nil
}

// hasEscapeClause reports whether the select has, besides the send's own
// clause, a default or a receive case (the cancellation/shed path).
func hasEscapeClause(sel *ast.SelectStmt, send *ast.SendStmt) bool {
	for _, stmt := range sel.Body.List {
		clause, ok := stmt.(*ast.CommClause)
		if !ok || clause.Comm == ast.Stmt(send) {
			continue
		}
		if clause.Comm == nil {
			return true // default: shed
		}
		switch c := clause.Comm.(type) {
		case *ast.ExprStmt:
			if isReceive(c.X) {
				return true
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 && isReceive(c.Rhs[0]) {
				return true
			}
		}
	}
	return false
}

func isReceive(e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	return ok && u.Op.String() == "<-"
}

// recordClose registers close(ch) calls on non-local pipeline channels.
func recordClose(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node, closes map[types.Object][]closeSite, order *[]types.Object) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return
	}
	obj := chanObj(pass, call.Args[0])
	if obj == nil {
		return
	}
	body := enclosingBody(stack[:len(stack)-1])
	if body == nil || localTo(obj, body) {
		return
	}
	deferred := false
	if len(stack) >= 2 {
		if d, ok := stack[len(stack)-2].(*ast.DeferStmt); ok && d.Call == call {
			deferred = true
		}
	}
	if _, seen := closes[obj]; !seen {
		*order = append(*order, obj)
	}
	closes[obj] = append(closes[obj], closeSite{
		call:     call,
		deferred: deferred,
		name:     types.ExprString(call.Args[0]),
	})
}

// chanObj resolves expr to the variable holding the channel — a struct
// field, parameter, or package-level var — or nil for anything it cannot
// name (call results, map/slice elements, non-channels).
func chanObj(pass *framework.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if isChan(sel.Obj().Type()) {
				return sel.Obj()
			}
		}
		return nil
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj != nil && isChan(obj.Type()) {
			return obj
		}
		return nil
	}
	return nil
}

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// enclosingBody returns the innermost enclosing function body on the stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// localTo reports whether obj is declared inside body (the channel has not
// escaped its creating stage).
func localTo(obj types.Object, body *ast.BlockStmt) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() > body.Pos() && v.Pos() < body.End()
}
