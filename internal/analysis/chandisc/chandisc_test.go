package chandisc_test

import (
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/chandisc"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, chandisc.Analyzer, "testdata/basic")
}

// TestFix checks the bare-send rewrite against the golden post-fix source.
func TestFix(t *testing.T) {
	analysistest.Run(t, chandisc.Analyzer, "testdata/fix")
}

// TestZoneGate confirms the analyzer is inert outside the pipeline zone:
// the same violations with no zone directive produce no findings.
func TestZoneGate(t *testing.T) {
	findings := analysistest.Findings(t, chandisc.Analyzer, "testdata/nozone", "")
	if len(findings) != 0 {
		t.Errorf("expected no findings outside the pipeline zone, got %v", findings)
	}
}
