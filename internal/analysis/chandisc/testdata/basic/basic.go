// Package pipe exercises the chandisc send and close discipline.
//
//depsense:zone pipeline
package pipe

import "context"

type stage struct {
	out chan int
}

func (s *stage) bare(ctx context.Context, v int) {
	s.out <- v // want `send on pipeline channel s\.out must be a select case`
}

func (s *stage) withCtx(ctx context.Context, v int) {
	select {
	case s.out <- v: // ok: cancellation path present
	case <-ctx.Done():
	}
}

func (s *stage) shed(v int) {
	select {
	case s.out <- v: // ok: default sheds instead of blocking
	default:
	}
}

func (s *stage) spawned(ctx context.Context, v int) {
	go func() {
		s.out <- v // want `send on pipeline channel s\.out must be a select case`
	}()
}

func forward(ctx context.Context, out chan<- int, v int) {
	out <- v // want `send on pipeline channel out must be a select case`
}

func local() {
	errCh := make(chan error, 1)
	errCh <- nil // ok: channel is local to this function
	close(errCh) // ok: local close is the creator's business
}

type owner struct {
	ch chan int
}

func (o *owner) run() {
	defer close(o.ch) // ok: one deferred close by the owning stage
}

type double struct {
	ch chan int
}

func (d *double) a() {
	defer close(d.ch)
}

func (d *double) b() {
	defer close(d.ch) // want `d\.ch has 2 close sites`
}

type eager struct {
	ch chan int
}

func (e *eager) finish() {
	close(e.ch) // want `close of pipeline channel e\.ch must be deferred`
}
