// Package nozone repeats the basic violations without a pipeline zone
// directive; chandisc must stay silent here.
package nozone

type stage struct {
	out chan int
}

func (s *stage) bare(v int) {
	s.out <- v
}

func (s *stage) finish() {
	close(s.out)
}
