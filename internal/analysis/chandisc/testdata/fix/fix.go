// Package fixme carries the chandisc suggested-fix round-trip fixture: the
// bare send below must be rewritten into the cancellation-aware select in
// fix.go.golden.
//
//depsense:zone pipeline
package fixme

import "context"

type stage struct {
	out chan int
}

func (s *stage) produce(ctx context.Context, v int) {
	s.out <- v // want `send on pipeline channel s\.out must be a select case`
}
