package ctxloop_test

import (
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/ctxloop"
)

func TestEstimatorPackage(t *testing.T) {
	analysistest.RunPath(t, ctxloop.Analyzer, "testdata/est", "depsense/internal/core")
}

// TestNonEstimatorPackage re-analyzes the same fixture under a package path
// outside the estimator zones: nothing may fire.
func TestNonEstimatorPackage(t *testing.T) {
	findings := analysistest.Findings(t, ctxloop.Analyzer, "testdata/est", "depsense/internal/plot")
	if len(findings) != 0 {
		t.Errorf("ctxloop fired outside estimator zones: %v", findings)
	}
}
