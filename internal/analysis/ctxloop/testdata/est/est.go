// Fixture analyzed under depsense/internal/core, an estimator package:
// unbounded loops must consult cancellation.
package fixture

import (
	"context"

	"depsense/internal/runctx"
)

// SpinForever never consults cancellation.
func SpinForever(ctx context.Context) int {
	n := 0
	for { // want `unbounded for-loop .* never consults cancellation`
		n++
		if n > 100 {
			break
		}
	}

	// While-style convergence loops are unbounded too.
	converged := false
	for !converged { // want `unbounded for-loop .* never consults cancellation`
		converged = n%7 == 0
		n++
	}
	return n
}

// Iterate is the contract-conforming shape from the EM/Gibbs loops.
func Iterate(ctx context.Context) (int, error) {
	n := 0
	for {
		if err := runctx.Err(ctx); err != nil {
			return n, err
		}
		n++
		if n > 100 {
			return n, nil
		}
	}
}

// DirectCtx consults the context without the runctx wrapper.
func DirectCtx(ctx context.Context) int {
	n := 0
	for {
		if ctx.Err() != nil {
			return n
		}
		n++
	}
}

// SelectDone consults via the Done channel.
func SelectDone(ctx context.Context, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case w := <-work:
			total += w
		}
	}
}

// Counter loops are bounded by construction.
func Counter(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// Justified carries an allow for a loop that is bounded in practice.
func Justified(done []bool) int {
	limit := 0
	//lint:allow ctxloop bounded scan: limit strictly increases toward len(done)
	for limit < len(done) && done[limit] {
		limit++
	}
	return limit
}
