// Package ctxloop implements the depsenselint analyzer that enforces the
// run-context contract on estimator iteration loops.
//
// Every long-running computation in this repository — EM iterations
// (Algorithm 2), Gibbs sweeps (Algorithm 1), the exact-bound enumeration,
// baseline belief rounds — must be cancellable at iteration granularity via
// depsense/internal/runctx (the PR 1 contract). An unbounded loop
// (`for { ... }` or `for cond { ... }`) in an estimator package that never
// consults cancellation can spin past a caller's deadline forever. The
// analyzer flags such loops unless their body (syntactically) consults the
// contract: a runctx call, ctx.Err()/ctx.Done()/ctx.Deadline() on a
// context.Context value, or a call whose name mentions cancellation.
// Counter-style `for i := 0; i < n; i++` loops are bounded by construction
// and exempt.
package ctxloop

import (
	"go/ast"
	"go/types"
	"strings"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// Analyzer flags unbounded loops in estimator packages that never consult
// the runctx cancellation contract.
var Analyzer = &framework.Analyzer{
	Name: "ctxloop",
	Doc: "flag unbounded for-loops in estimator packages that never consult " +
		"runctx/ctx cancellation (the run-context contract)",
	Requires: []*framework.Analyzer{zonefacts.Analyzer},
	Run:      run,
}

const runctxPath = "depsense/internal/runctx"

func run(pass *framework.Pass) error {
	if !zonefacts.Of(pass).Estimator {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			// A three-clause loop (init/post present) is a bounded counter
			// loop; while-style and infinite loops are the risk.
			if fs.Init != nil || fs.Post != nil {
				return true
			}
			if !consultsCancellation(pass, fs.Body) {
				pass.Reportf(fs.Pos(),
					"unbounded for-loop in estimator package %s never consults cancellation; "+
						"check runctx.Err(ctx) (or ctx.Err()/ctx.Done()) each iteration per the run-context contract, "+
						"or suppress with //lint:allow ctxloop <reason>", pass.Path)
			}
			return true
		})
	}
	return nil
}

// consultsCancellation reports whether body contains a syntactic consult of
// the cancellation contract.
func consultsCancellation(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// runctx.Err(ctx), runctx.HookFrom(ctx), ... — any use of the
		// run-context package counts.
		if path, _ := framework.SelectorPkgPath(pass.TypesInfo, call.Fun); path == runctxPath {
			found = true
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			// ctx.Err() / ctx.Done() / ctx.Deadline() on a context value.
			name := fun.Sel.Name
			if name == "Err" || name == "Done" || name == "Deadline" {
				if tv, ok := pass.TypesInfo.Types[fun.X]; ok && isContext(tv.Type) {
					found = true
					return false
				}
			}
			if mentionsCancel(name) {
				found = true
				return false
			}
		case *ast.Ident:
			if mentionsCancel(fun.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsCancel(name string) bool {
	return strings.Contains(strings.ToLower(name), "cancel")
}

func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
	}
	return t.String() == "context.Context"
}
