package zonefacts_test

import (
	"strings"
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/zonefacts"
)

// TestValidDirective checks that a well-formed //depsense:zone directive
// produces no findings. (Membership semantics are exercised by the
// zone-gated analyzers' own tests, which opt fixtures in via directives.)
func TestValidDirective(t *testing.T) {
	analysistest.Run(t, zonefacts.Analyzer, "testdata/good")
}

// TestUnknownZone checks that a typo'd zone name is reported rather than
// silently ignored.
func TestUnknownZone(t *testing.T) {
	findings := analysistest.Findings(t, zonefacts.Analyzer, "testdata/bad", "")
	if len(findings) != 1 || !strings.Contains(findings[0].Message, `unknown zone "pipelines"`) {
		t.Errorf("expected one unknown-zone finding, got %v", findings)
	}
}
