// Package zonefacts is the fact-producing pass at the root of the
// depsenselint analyzer DAG: it computes each package's zone membership
// once and publishes it as a package fact, so the checking analyzers
// consult facts instead of hard-coded package maps.
//
// Membership comes from two sources, united:
//
//   - the root maps in internal/analysis/zones (the legacy, central
//     declaration), and
//   - an in-package "//depsense:zone <zone>[,<zone>...]" directive in any
//     file's package doc comment, which lets a new package opt into a
//     contract without editing the linter.
//
// Because the driver analyzes packages dependency-first, downstream
// analyzers can also ask for the zone fact of any package the current one
// imports (e.g. "is this callee's package deterministic?"), which is how
// zone membership propagates through the call graph.
package zonefacts

import (
	"strings"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zones"
)

// ZoneFact is the package fact recording zone membership.
type ZoneFact struct {
	Deterministic bool `json:"deterministic,omitempty"`
	Estimator     bool `json:"estimator,omitempty"`
	Numeric       bool `json:"numeric,omitempty"`
	Clocked       bool `json:"clocked,omitempty"`
	Pipeline      bool `json:"pipeline,omitempty"`
}

// AFact marks ZoneFact as a framework fact.
func (*ZoneFact) AFact() {}

// ZoneMarker is the package-doc directive declaring zone membership in the
// package itself, e.g. "//depsense:zone deterministic,clocked".
const ZoneMarker = "//depsense:zone"

// Analyzer computes and exports each package's ZoneFact. It reports a
// finding only for malformed zone directives; every other analyzer depends
// on it via Requires.
var Analyzer = &framework.Analyzer{
	Name: "zonefacts",
	Doc: "compute zone membership (zones maps ∪ //depsense:zone package directives) " +
		"and export it as a package fact for the checking analyzers",
	FactTypes: []framework.Fact{(*ZoneFact)(nil)},
	Run:       run,
}

func run(pass *framework.Pass) error {
	z := ZoneFact{
		Deterministic: zones.Deterministic[pass.Path],
		Estimator:     zones.Estimator[pass.Path],
		Numeric:       zones.Numeric[pass.Path],
		Clocked:       zones.Clocked[pass.Path],
		Pipeline:      zones.Pipeline[pass.Path],
	}
	for _, file := range pass.Files {
		if file.Doc == nil {
			continue
		}
		for _, c := range file.Doc.List {
			if !strings.HasPrefix(c.Text, ZoneMarker) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ZoneMarker)
			if rest == "" || !(rest[0] == ' ' || rest[0] == '\t') {
				continue // e.g. //depsense:zonefoo — not this directive
			}
			for _, name := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				switch name {
				case "deterministic":
					z.Deterministic = true
				case "estimator":
					z.Estimator = true
				case "numeric":
					z.Numeric = true
				case "clocked":
					z.Clocked = true
				case "pipeline":
					z.Pipeline = true
				default:
					pass.Reportf(c.Pos(),
						"unknown zone %q in %s directive (valid: deterministic, estimator, numeric, clocked, pipeline)",
						name, ZoneMarker)
				}
			}
		}
	}
	return pass.ExportPackageFact(&z)
}

// Of returns the zone membership of the package under analysis. It must be
// called from an analyzer that lists zonefacts.Analyzer in Requires.
func Of(pass *framework.Pass) ZoneFact {
	var z ZoneFact
	pass.ImportPackageFact(pass.Path, &z)
	return z
}

// PkgZone returns the zone membership of the package with the given import
// path — the package under analysis or any of its (transitive) imports,
// which the driver has already analyzed. The second result reports whether
// a fact was found (false for packages outside the analysis scope).
func PkgZone(pass *framework.Pass, path string) (ZoneFact, bool) {
	var z ZoneFact
	ok := pass.ImportPackageFact(path, &z)
	return z, ok
}
