// Package bad typos a zone name in its directive.
//
//depsense:zone pipelines
package bad
