// Package good opts into two zones via the in-package directive.
//
//depsense:zone pipeline,clocked
package good
