// Package framework is a self-contained, stdlib-only implementation of the
// golang.org/x/tools/go/analysis programming model, sized for this
// repository's needs. It exists because the build environment must work
// fully offline: the real x/tools module cannot be assumed present, so the
// depsenselint analyzers are written against this API-compatible core
// instead. The shapes (Analyzer, Pass, Diagnostic, Reportf) mirror
// go/analysis deliberately — if/when x/tools is vendored (see tools/tools.go
// for the version pin), the analyzers port by changing one import.
//
// On top of the go/analysis core it adds the two repo-specific conventions
// the lint suite is built around:
//
//   - Deterministic zones: packages (and functions carrying a
//     "//depsense:deterministic" doc-comment marker) whose outputs must be
//     bit-for-bit reproducible at any worker count. See DESIGN.md
//     ("Static analysis: determinism and numeric-safety contracts").
//   - Suppression: a finding may be silenced with a
//     "//lint:allow <analyzers> <reason>" comment on (or immediately above)
//     the offending line. The reason is mandatory; a reasonless allow is
//     itself a finding.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer, including facts and analyzer
// dependencies.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `depsenselint -help`.
	Doc string
	// Requires lists analyzers that must run (on every package) before
	// this one; their exported facts are visible to this analyzer's Run.
	// The driver runs the transitive closure in topological order.
	Requires []*Analyzer
	// FactTypes declares every fact type Run may export, one zero value
	// per type. Exporting an unregistered type is an error; registration
	// is what lets the cache decode persisted facts.
	FactTypes []Fact
	// Run applies the check to one package and reports findings through
	// pass.Reportf or pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink for
// its findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path. Kept separate from Pkg so that
	// fixture packages can impersonate real import paths in tests.
	Path string

	diags *[]Diagnostic
	facts *factStore
}

// A Diagnostic is one finding at a source position, optionally carrying
// mechanical fixes.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// SuggestedFixes are alternative mechanical resolutions; `depsenselint
	// -fix` applies the first one.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained mechanical resolution of a finding:
// a set of non-overlapping edits to the package's source files.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText. Pos == End
// inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (used by analyzers that attach
// suggested fixes).
func (p *Pass) Report(d Diagnostic) {
	*p.diags = append(*p.diags, d)
}

// DeterministicMarker is the doc-comment directive that marks a single
// function as a deterministic zone even when its package is not one, e.g.
// the reducers in internal/eval.
const DeterministicMarker = "//depsense:deterministic"

// FuncHasMarker reports whether the function declaration carries the given
// doc-comment directive (exact prefix match on one comment line).
func FuncHasMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker || len(c.Text) > len(marker) && c.Text[:len(marker)] == marker {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration of file whose
// body contains pos, or nil.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// PkgNameOf resolves an identifier to the import path of the package it
// names, or "" when the identifier is not a package name. Analyzers use it
// to recognize selectors like rand.Seed or time.Now robustly under import
// renaming.
func PkgNameOf(info *types.Info, id *ast.Ident) string {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// SelectorPkgPath returns the imported package path and selected name when
// expr is a selector on a package name (e.g. "math/rand", "Seed" for
// rand.Seed), or "", "".
func SelectorPkgPath(info *types.Info, expr ast.Expr) (path, name string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if p := PkgNameOf(info, id); p != "" {
		return p, sel.Sel.Name
	}
	return "", ""
}
