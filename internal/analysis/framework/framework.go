// Package framework is a self-contained, stdlib-only implementation of the
// golang.org/x/tools/go/analysis programming model, sized for this
// repository's needs. It exists because the build environment must work
// fully offline: the real x/tools module cannot be assumed present, so the
// depsenselint analyzers are written against this API-compatible core
// instead. The shapes (Analyzer, Pass, Diagnostic, Reportf) mirror
// go/analysis deliberately — if/when x/tools is vendored (see tools/tools.go
// for the version pin), the analyzers port by changing one import.
//
// On top of the go/analysis core it adds the two repo-specific conventions
// the lint suite is built around:
//
//   - Deterministic zones: packages (and functions carrying a
//     "//depsense:deterministic" doc-comment marker) whose outputs must be
//     bit-for-bit reproducible at any worker count. See DESIGN.md
//     ("Static analysis: determinism and numeric-safety contracts").
//   - Suppression: a finding may be silenced with a
//     "//lint:allow <analyzers> <reason>" comment on (or immediately above)
//     the offending line. The reason is mandatory; a reasonless allow is
//     itself a finding.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus facts and dependencies,
// which this suite does not need.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `depsenselint -help`.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink for
// its findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path. Kept separate from Pkg so that
	// fixture packages can impersonate real import paths in tests.
	Path string

	diags *[]Diagnostic
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DeterministicMarker is the doc-comment directive that marks a single
// function as a deterministic zone even when its package is not one, e.g.
// the reducers in internal/eval.
const DeterministicMarker = "//depsense:deterministic"

// FuncHasMarker reports whether the function declaration carries the given
// doc-comment directive (exact prefix match on one comment line).
func FuncHasMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker || len(c.Text) > len(marker) && c.Text[:len(marker)] == marker {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration of file whose
// body contains pos, or nil.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// PkgNameOf resolves an identifier to the import path of the package it
// names, or "" when the identifier is not a package name. Analyzers use it
// to recognize selectors like rand.Seed or time.Now robustly under import
// renaming.
func PkgNameOf(info *types.Info, id *ast.Ident) string {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// SelectorPkgPath returns the imported package path and selected name when
// expr is a selector on a package name (e.g. "math/rand", "Seed" for
// rand.Seed), or "", "".
func SelectorPkgPath(info *types.Info, expr ast.Expr) (path, name string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if p := PkgNameOf(info, id); p != "" {
		return p, sel.Sel.Name
	}
	return "", ""
}
