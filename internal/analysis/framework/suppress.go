package framework

import (
	"go/token"
	"regexp"
	"strings"
)

// AllowName is the analyzer name under which suppression-hygiene findings
// (a //lint:allow with no reason, or malformed) are reported. It cannot
// itself be suppressed.
const AllowName = "lintallow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos       token.Pos
	file      string
	line      int // line the directive suppresses
	ownLine   int // line the comment itself sits on
	analyzers []string
	reason    string
	malformed string // non-empty: why the directive is invalid
}

var (
	// allowPrefixRe decides whether a comment is a directive at all;
	// comments that merely mention lint:allow mid-text (docs) are ignored.
	allowPrefixRe = regexp.MustCompile(`^//\s*lint:allow\b`)
	allowRe       = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,-]+)((?:\s+\S.*)?)$`)
)

// parseAllows scans a package's comments for //lint:allow directives.
// A directive trailing code suppresses its own line; a directive alone on
// its line suppresses the next line (stacked standalone directives chain
// through to the first code line below them).
func parseAllows(pkg *Package) []allowDirective {
	var out []allowDirective
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		src := pkg.Sources[tf.Name()]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !allowPrefixRe.MatchString(text) {
					continue
				}
				line := tf.Line(c.Pos())
				d := allowDirective{pos: c.Pos(), file: tf.Name(), ownLine: line, line: line}
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					d.malformed = "malformed //lint:allow directive; use //lint:allow <analyzer>[,<analyzer>...] <reason>"
					out = append(out, d)
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					if name = strings.TrimSpace(name); name != "" {
						d.analyzers = append(d.analyzers, name)
					}
				}
				d.reason = strings.TrimSpace(m[2])
				if d.reason == "" {
					d.malformed = "//lint:allow must carry a reason: //lint:allow " + m[1] + " <why this is safe>"
				}
				if standaloneComment(src, tf, c.Pos()) {
					d.line = line + 1
				}
				out = append(out, d)
			}
		}
	}
	// Chain stacked standalone directives: a directive whose target line
	// holds another standalone directive suppresses that directive's target
	// instead, so several analyzers can be allowed above one statement.
	type fileLine struct {
		file string
		line int
	}
	byOwnLine := make(map[fileLine]*allowDirective, len(out))
	for i := range out {
		if out[i].line != out[i].ownLine {
			byOwnLine[fileLine{out[i].file, out[i].ownLine}] = &out[i]
		}
	}
	for i := range out {
		d := &out[i]
		for hops := 0; hops < len(out); hops++ {
			next, ok := byOwnLine[fileLine{d.file, d.line}]
			if !ok || next == d {
				break
			}
			d.line = next.line
		}
	}
	return out
}

// standaloneComment reports whether the comment starting at pos is the
// first non-whitespace content on its source line.
func standaloneComment(src []byte, tf *token.File, pos token.Pos) bool {
	off := tf.Offset(pos)
	if src == nil || off > len(src) {
		return false
	}
	lineStart := tf.Offset(tf.LineStart(tf.Line(pos)))
	return len(strings.TrimSpace(string(src[lineStart:off]))) == 0
}
