package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a typed, serializable property attached to a package or to a
// package-level object (function, method, type, var), produced by one
// analyzer and consumed by analyzers that declare it in Requires. It mirrors
// golang.org/x/tools/go/analysis.Fact: fact types must be pointers to
// JSON-serializable structs (JSON rather than gob so the depsenselint cache
// file stays human-inspectable), and every type an analyzer exports must be
// listed in its FactTypes so the driver can decode cached facts.
//
// Facts propagate through the import graph: the driver analyzes packages in
// dependency order, so when an analyzer runs on package P it can import
// facts previously exported for any package P imports (directly or
// transitively). This is what lets zone membership and returns-scratch-memory
// properties follow the call graph instead of living in hard-coded maps.
type Fact interface {
	// AFact is a marker method; implementing it declares the type a Fact.
	AFact()
}

// objectKey names one package-level object portably across load mechanisms.
// A source-checked package and the same package imported from export data
// produce distinct types.Object pointers for the same declaration, so facts
// are keyed by (package path, object key) strings instead of object
// identity. Methods are keyed "Recv.Name"; everything else "Name".
// Non-package-level objects (locals, struct fields) have no stable key and
// cannot carry object facts — encode those in a package fact instead.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
		return fn.Name(), true
	}
	// Package-level vars, types, consts: scope lookup must find the object
	// itself, otherwise it is not package-level.
	if obj.Pkg().Scope().Lookup(obj.Name()) != obj {
		return "", false
	}
	return obj.Name(), true
}

// factKey addresses one fact in the store. Object is "" for package facts.
type factKey struct {
	pkg    string // import path
	object string // objectKey, "" for a package-level fact
	typ    string // fact type name, e.g. "*zonefacts.ZoneFact"
}

func factTypeName(f Fact) string { return fmt.Sprintf("%T", f) }

// factStore holds every fact exported during one driver run.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore { return &factStore{m: map[factKey]Fact{}} }

func (s *factStore) set(k factKey, f Fact) { s.m[k] = f }

// get copies the stored fact for k into ptr (which must be a pointer to the
// fact's struct type) and reports whether a fact was found.
func (s *factStore) get(k factKey, ptr Fact) bool {
	f, ok := s.m[k]
	if !ok {
		return false
	}
	rv := reflect.ValueOf(ptr)
	fv := reflect.ValueOf(f)
	if rv.Kind() != reflect.Pointer || rv.IsNil() || rv.Type() != fv.Type() {
		return false
	}
	rv.Elem().Set(fv.Elem())
	return true
}

// ExportObjectFact attaches fact to obj, a package-level object of the
// package under analysis. Exporting a fact for an object the key scheme
// cannot name (locals, fields) is a hard error: the analyzer is relying on
// propagation that will silently not happen.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) error {
	key, ok := objectKey(obj)
	if !ok {
		return fmt.Errorf("framework: cannot export %s fact for non-package-level object %v", factTypeName(fact), obj)
	}
	if err := p.checkFactType(fact); err != nil {
		return err
	}
	p.facts.set(factKey{pkg: obj.Pkg().Path(), object: key, typ: factTypeName(fact)}, fact)
	return nil
}

// ImportObjectFact copies the fact of ptr's type previously exported for obj
// into *ptr. obj may belong to the package under analysis or to any
// dependency analyzed earlier.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	return p.facts.get(factKey{pkg: obj.Pkg().Path(), object: key, typ: factTypeName(ptr)}, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) error {
	if err := p.checkFactType(fact); err != nil {
		return err
	}
	p.facts.set(factKey{pkg: p.Path, typ: factTypeName(fact)}, fact)
	return nil
}

// ImportPackageFact copies the package fact of ptr's type for the package
// with the given import path (the package under analysis or any dependency
// analyzed earlier) into *ptr.
func (p *Pass) ImportPackageFact(path string, ptr Fact) bool {
	return p.facts.get(factKey{pkg: path, typ: factTypeName(ptr)}, ptr)
}

// checkFactType enforces the FactTypes registration contract, which the
// cache decoder depends on.
func (p *Pass) checkFactType(fact Fact) error {
	for _, ft := range p.Analyzer.FactTypes {
		if factTypeName(ft) == factTypeName(fact) {
			return nil
		}
	}
	return fmt.Errorf("framework: analyzer %s exports unregistered fact type %s (add it to FactTypes)", p.Analyzer.Name, factTypeName(fact))
}

// SavedFact is one serialized fact, as stored in the depsenselint cache:
// facts for a cache-hit package are re-installed from this form instead of
// re-running the analyzers that produced them.
type SavedFact struct {
	// Object is the objectKey of the fact's object, "" for a package fact.
	Object string `json:"object,omitempty"`
	// Type is the fact's registered type name (e.g. "*zonefacts.ZoneFact").
	Type string `json:"type"`
	// Value is the fact's JSON encoding.
	Value json.RawMessage `json:"value"`
}

// exportedFacts serializes every fact the store holds for pkgPath,
// deterministically ordered.
func (s *factStore) exportedFacts(pkgPath string) ([]SavedFact, error) {
	var out []SavedFact
	for k, f := range s.m {
		if k.pkg != pkgPath {
			continue
		}
		raw, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("framework: encoding fact %s for %s: %v", k.typ, pkgPath, err)
		}
		out = append(out, SavedFact{Object: k.object, Type: k.typ, Value: raw})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Type < out[j].Type
	})
	return out, nil
}

// installFacts decodes cached facts back into the store. types maps
// registered fact type names to their reflect types (built from the
// analyzer roster's FactTypes).
func (s *factStore) installFacts(pkgPath string, saved []SavedFact, types map[string]reflect.Type) error {
	for _, sf := range saved {
		rt, ok := types[sf.Type]
		if !ok {
			return fmt.Errorf("framework: cached fact of unknown type %s for %s", sf.Type, pkgPath)
		}
		fv := reflect.New(rt.Elem())
		if err := json.Unmarshal(sf.Value, fv.Interface()); err != nil {
			return fmt.Errorf("framework: decoding cached fact %s for %s: %v", sf.Type, pkgPath, err)
		}
		s.set(factKey{pkg: pkgPath, object: sf.Object, typ: sf.Type}, fv.Interface().(Fact))
	}
	return nil
}

// factTypeRegistry collects the fact types registered by a roster.
func factTypeRegistry(analyzers []*Analyzer) map[string]reflect.Type {
	types := map[string]reflect.Type{}
	for _, a := range analyzers {
		for _, ft := range a.FactTypes {
			types[factTypeName(ft)] = reflect.TypeOf(ft)
		}
	}
	return types
}
