package framework

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one post-suppression diagnostic, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      Position
	Message  string
	// Fixes are the diagnostic's suggested fixes with positions resolved
	// to byte offsets, so they survive serialization into the cache and
	// can be applied without a FileSet.
	Fixes []Fix `json:",omitempty"`
}

// Position is a token.Position that serializes compactly.
type Position struct {
	Filename string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"col"`
}

func positionOf(p token.Position) Position {
	return Position{Filename: p.Filename, Line: p.Line, Column: p.Column}
}

// Fix is one offset-resolved suggested fix.
type Fix struct {
	Message string `json:"message"`
	Edits   []Edit `json:"edits"`
}

// Edit replaces bytes [Start, End) of File with NewText.
type Edit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// StaleAllowName is the analyzer name under which -staleallow findings
// (well-formed //lint:allow directives that suppress nothing) report.
const StaleAllowName = "staleallow"

// Result is the output of one driver run.
type Result struct {
	// Findings are the surviving post-suppression diagnostics, sorted by
	// position.
	Findings []Finding
	// StaleAllows flags every well-formed //lint:allow directive that
	// suppressed no diagnostic of any analyzer it names (or names an
	// analyzer not in the roster). Reported separately so the default
	// mode stays byte-compatible and `-staleallow` can audit.
	StaleAllows []Finding
	// Analyzed and Skipped count packages analyzed versus served from
	// the cache.
	Analyzed int
	Skipped  int
}

// Options configures a driver run.
type Options struct {
	// Cache, when non-nil, lets unchanged packages skip analysis: before
	// analyzing a package the driver asks the cache for a hit keyed by
	// the package's content key; on a hit the cached findings, stale
	// allows, and exported facts are installed verbatim.
	Cache Cache
}

// Cache is the driver's package-result cache interface, implemented by the
// depsenselint CLI over a JSON file.
type Cache interface {
	// Get returns the cached entry for the package key, if present.
	Get(importPath, key string) (*CacheEntry, bool)
	// Put stores the entry for the package key.
	Put(importPath, key string, e *CacheEntry)
}

// CacheEntry is everything a package contributes to a run: its findings,
// its stale-allow findings, and the facts its analysis exported (which
// downstream packages may import even when this package is a cache hit).
type CacheEntry struct {
	Findings    []Finding   `json:"findings,omitempty"`
	StaleAllows []Finding   `json:"staleAllows,omitempty"`
	Facts       []SavedFact `json:"facts,omitempty"`
}

// RunAnalyzers applies every analyzer to every package, filters the
// diagnostics through //lint:allow directives, and returns the surviving
// findings sorted by position. Malformed or reasonless directives surface
// as findings under the reserved "lintallow" name, which no directive can
// suppress — every suppression must carry a justification.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	res, err := Run(pkgs, analyzers, Options{})
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// Run is the full driver: it expands the analyzer roster through Requires,
// orders packages so dependencies are analyzed before dependents (facts
// flow forward), runs each analyzer with fact import/export wired up, and
// resolves suppressions. See RunAnalyzers for the suppression contract.
func Run(pkgs []*Package, analyzers []*Analyzer, opts Options) (*Result, error) {
	roster, err := expandAnalyzers(analyzers)
	if err != nil {
		return nil, err
	}
	ordered, err := sortPackages(pkgs)
	if err != nil {
		return nil, err
	}
	rosterNames := map[string]bool{AllowName: true}
	for _, a := range roster {
		rosterNames[a.Name] = true
	}
	factTypes := factTypeRegistry(roster)

	res := &Result{}
	facts := newFactStore()
	for _, pkg := range ordered {
		if opts.Cache != nil && pkg.Key != "" {
			if e, ok := opts.Cache.Get(pkg.ImportPath, pkg.Key); ok {
				if err := facts.installFacts(pkg.ImportPath, e.Facts, factTypes); err != nil {
					return nil, err
				}
				res.Findings = append(res.Findings, e.Findings...)
				res.StaleAllows = append(res.StaleAllows, e.StaleAllows...)
				res.Skipped++
				continue
			}
		}
		entry, err := runPackage(pkg, roster, rosterNames, facts)
		if err != nil {
			return nil, err
		}
		res.Findings = append(res.Findings, entry.Findings...)
		res.StaleAllows = append(res.StaleAllows, entry.StaleAllows...)
		res.Analyzed++
		if opts.Cache != nil && pkg.Key != "" {
			opts.Cache.Put(pkg.ImportPath, pkg.Key, entry)
		}
	}
	sortFindings(res.Findings)
	sortFindings(res.StaleAllows)
	return res, nil
}

// runPackage applies the full roster to one package and resolves its
// suppressions, returning the package's cacheable contribution.
func runPackage(pkg *Package, roster []*Analyzer, rosterNames map[string]bool, facts *factStore) (*CacheEntry, error) {
	entry := &CacheEntry{}
	allows := parseAllows(pkg)
	for i := range allows {
		if allows[i].malformed != "" {
			entry.Findings = append(entry.Findings, Finding{
				Analyzer: AllowName,
				Pos:      positionOf(pkg.Fset.Position(allows[i].pos)),
				Message:  allows[i].malformed,
			})
		}
	}
	// used[directive index][analyzer name]: which directives suppressed at
	// least one diagnostic, for the stale-allow audit.
	used := make([]map[string]bool, len(allows))
	for _, a := range roster {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Path:      pkg.ImportPath,
			diags:     &diags,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("framework: analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if di := suppressedBy(allows, a.Name, pos); di >= 0 {
				if used[di] == nil {
					used[di] = map[string]bool{}
				}
				used[di][a.Name] = true
				continue
			}
			entry.Findings = append(entry.Findings, Finding{
				Analyzer: a.Name,
				Pos:      positionOf(pos),
				Message:  d.Message,
				Fixes:    resolveFixes(pkg, d.SuggestedFixes),
			})
		}
	}
	for i := range allows {
		if allows[i].malformed != "" {
			continue
		}
		for _, name := range allows[i].analyzers {
			pos := positionOf(pkg.Fset.Position(allows[i].pos))
			switch {
			case !rosterNames[name]:
				entry.StaleAllows = append(entry.StaleAllows, Finding{
					Analyzer: StaleAllowName,
					Pos:      pos,
					Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", name),
				})
			case used[i] == nil || !used[i][name]:
				entry.StaleAllows = append(entry.StaleAllows, Finding{
					Analyzer: StaleAllowName,
					Pos:      pos,
					Message: fmt.Sprintf("stale //lint:allow %s: no %s finding fires on line %d; delete the directive",
						name, name, allows[i].line),
				})
			}
		}
	}
	var err error
	entry.Facts, err = facts.exportedFacts(pkg.ImportPath)
	if err != nil {
		return nil, err
	}
	return entry, nil
}

// resolveFixes converts a diagnostic's fixes from token positions to byte
// offsets. A fix whose edits land outside the package's files is dropped:
// better no fix than a corrupting one.
func resolveFixes(pkg *Package, fixes []SuggestedFix) []Fix {
	var out []Fix
	for _, sf := range fixes {
		fix := Fix{Message: sf.Message}
		ok := true
		for _, te := range sf.TextEdits {
			start := pkg.Fset.Position(te.Pos)
			end := pkg.Fset.Position(te.End)
			src, have := pkg.Sources[start.Filename]
			if !have || start.Filename != end.Filename ||
				start.Offset < 0 || end.Offset < start.Offset || end.Offset > len(src) {
				ok = false
				break
			}
			fix.Edits = append(fix.Edits, Edit{
				File:    start.Filename,
				Start:   start.Offset,
				End:     end.Offset,
				NewText: te.NewText,
			})
		}
		if ok && len(fix.Edits) > 0 {
			out = append(out, fix)
		}
	}
	return out
}

// expandAnalyzers returns the transitive closure of the roster through
// Requires in topological order (dependencies first), rejecting cycles.
func expandAnalyzers(analyzers []*Analyzer) ([]*Analyzer, error) {
	var out []*Analyzer
	state := map[*Analyzer]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("framework: analyzer dependency cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sortPackages orders packages so every package follows the packages it
// imports (facts flow dependency-first); ties break by import path so the
// order — and therefore finding order and cache contents — is
// deterministic.
func sortPackages(pkgs []*Package) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	var out []*Package
	state := map[*Package]int{}
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("framework: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		out = append(out, p)
		return nil
	}
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// suppressedBy returns the index of the well-formed allow directive for the
// analyzer covering the finding's line, or -1.
func suppressedBy(allows []allowDirective, analyzer string, pos token.Position) int {
	for i, d := range allows {
		if d.malformed != "" || d.file != pos.Filename || d.line != pos.Line {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				return i
			}
		}
	}
	return -1
}
