package framework

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one post-suppression diagnostic, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to every package, filters the
// diagnostics through //lint:allow directives, and returns the surviving
// findings sorted by position. Malformed or reasonless directives surface
// as findings under the reserved "lintallow" name, which no directive can
// suppress — every suppression must carry a justification.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allows := parseAllows(pkg)
		for _, d := range allows {
			if d.malformed != "" {
				findings = append(findings, Finding{
					Analyzer: AllowName,
					Pos:      pkg.Fset.Position(d.pos),
					Message:  d.malformed,
				})
			}
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Path:      pkg.ImportPath,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("framework: analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(allows, a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// suppressed reports whether a well-formed allow directive for the analyzer
// covers the finding's line.
func suppressed(allows []allowDirective, analyzer string, pos token.Position) bool {
	for _, d := range allows {
		if d.malformed != "" || d.file != pos.Filename || d.line != pos.Line {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
