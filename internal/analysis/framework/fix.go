package framework

import (
	"fmt"
	"sort"
)

// ApplyFixes applies the first suggested fix of every finding that carries
// one to the given file contents, returning the rewritten files (only the
// files at least one edit touched). Edits within a file must not overlap;
// overlapping fixes are a hard error so `-fix` can never silently corrupt a
// source file — rerun after applying a subset instead.
func ApplyFixes(findings []Finding, sources map[string][]byte) (map[string][]byte, error) {
	perFile := map[string][]Edit{}
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		for _, e := range f.Fixes[0].Edits {
			perFile[e.File] = append(perFile[e.File], e)
		}
	}
	out := map[string][]byte{}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		src, ok := sources[file]
		if !ok {
			return nil, fmt.Errorf("framework: fix targets unknown file %s", file)
		}
		edits := perFile[file]
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		var buf []byte
		last := 0
		for i, e := range edits {
			// Identical duplicate edits (two findings proposing the same
			// insertion, e.g. the same missing import) collapse to one.
			if i > 0 && e == edits[i-1] {
				continue
			}
			if e.Start < last {
				return nil, fmt.Errorf("framework: overlapping fixes in %s at byte %d", file, e.Start)
			}
			if e.End > len(src) {
				return nil, fmt.Errorf("framework: fix edit past end of %s (%d > %d)", file, e.End, len(src))
			}
			buf = append(buf, src[last:e.Start]...)
			buf = append(buf, e.NewText...)
			last = e.End
		}
		buf = append(buf, src[last:]...)
		out[file] = buf
	}
	return out, nil
}
