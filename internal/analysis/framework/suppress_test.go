package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parse builds a minimal Package (no types) for directive-parsing tests.
func parse(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		ImportPath: "fixture",
		Fset:       fset,
		Files:      []*ast.File{f},
		Sources:    map[string][]byte{"fix.go": []byte(src)},
	}
}

func TestParseAllows(t *testing.T) {
	src := `package fixture

func f() {
	x := 1 //lint:allow alpha trailing directive covers its own line
	//lint:allow beta standalone directive covers the next line
	x++
	//lint:allow gamma stacked standalone directives
	//lint:allow delta chain to the first code line below
	x--
	//lint:allow epsilon,zeta comma lists name several analyzers
	_ = x
	//lint:allow
	_ = x
	// a doc sentence may mention lint:allow mid-text without being a directive
}
`
	pkg := parse(t, src)
	allows := parseAllows(pkg)

	byAnalyzer := map[string]allowDirective{}
	malformed := 0
	for _, d := range allows {
		if d.malformed != "" {
			malformed++
			continue
		}
		for _, a := range d.analyzers {
			byAnalyzer[a] = d
		}
	}
	if malformed != 1 {
		t.Errorf("malformed directives = %d, want 1 (the reasonless one)", malformed)
	}
	cases := map[string]int{
		"alpha":   4, // its own line
		"beta":    6, // next line
		"gamma":   9, // chained through delta's line to the code line
		"delta":   9,
		"epsilon": 11,
		"zeta":    11,
	}
	for name, wantLine := range cases {
		d, ok := byAnalyzer[name]
		if !ok {
			t.Errorf("directive %q not parsed", name)
			continue
		}
		if d.line != wantLine {
			t.Errorf("directive %q covers line %d, want %d", name, d.line, wantLine)
		}
		if d.reason == "" {
			t.Errorf("directive %q lost its reason", name)
		}
	}
}

// TestRunAnalyzersSuppression drives the full driver with a dummy analyzer
// that reports on every integer literal, checking line-targeted
// suppression and the lintallow hygiene finding.
func TestRunAnalyzersSuppression(t *testing.T) {
	src := `package fixture

func f() int {
	a := 1
	b := 2 //lint:allow dummy justified
	//lint:allow dummy also justified
	c := 3
	//lint:allow dummy
	d := 4
	return a + b + c + d
}
`
	pkg := parse(t, src)
	dummy := &Analyzer{
		Name: "dummy",
		Doc:  "report every int literal",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if lit, ok := n.(*ast.BasicLit); ok {
						pass.Reportf(lit.Pos(), "literal %s", lit.Value)
					}
					return true
				})
			}
			return nil
		},
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+":"+f.Message)
	}
	want := []string{
		"dummy:literal 1", // unsuppressed
		AllowName + ":" + "//lint:allow must carry a reason: //lint:allow dummy <why this is safe>",
		"dummy:literal 4", // reasonless directive is void
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %d entries %v", got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
