package framework

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path as reported by go list.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Imports are the package's direct imports; the driver analyzes
	// packages dependency-first so facts propagate along this graph.
	Imports []string
	// Key is the package's content key: a hash of its sources and,
	// transitively, of everything its analysis can observe (loaded
	// dependencies by their keys, external dependencies by their
	// export-data hash). Two loads with equal Keys produce identical
	// findings and facts, which is what makes the depsenselint cache
	// sound. Empty when key computation failed; such packages are always
	// re-analyzed.
	Key string
	// Fset positions all files of all packages of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in go list order.
	Files []*ast.File
	// Types and TypesInfo hold the type-checker output. Types is non-nil
	// even when TypeErrors is not empty (partial information).
	Types     *types.Package
	TypesInfo *types.Info
	// Sources maps each file's absolute path to its raw bytes, used by the
	// suppression scanner to classify directive comments.
	Sources map[string][]byte
	// TypeErrors collects soft type-check errors; analysis proceeds on
	// whatever information was recovered.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json patterns...` in dir and
// decodes the package stream. -export makes the go tool compile every
// listed package (and its dependencies) and report the build-cache path of
// its export data, which is what lets the loader type-check offline without
// golang.org/x/tools: dependency types are imported from export data
// instead of being re-checked from source.
func goList(dir string, patterns ...string) ([]listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("framework: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("framework: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves imports from the
// export data of the packages matched (with dependencies) by patterns,
// as built by the local go toolchain. dir anchors pattern resolution.
func ExportImporter(fset *token.FileSet, dir string, patterns ...string) (types.Importer, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return exportImporterFor(fset, pkgs), nil
}

func exportImporterFor(fset *token.FileSet, pkgs []listPkg) types.Importer {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("framework: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewTypesInfo allocates a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load parses and type-checks the non-test Go files of every package
// matched by patterns (relative to dir, typically the module root).
// Packages that fail to parse are reported as errors; packages with type
// errors are returned with TypeErrors set so callers can decide.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporterFor(fset, listed)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Imports:    lp.Imports,
			Fset:       fset,
			Sources:    make(map[string][]byte, len(lp.GoFiles)),
		}
		for _, gf := range lp.GoFiles {
			path := filepath.Join(lp.Dir, gf)
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("framework: %v", err)
			}
			pkg.Sources[path] = src
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("framework: parsing %s: %v", path, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		info := NewTypesInfo()
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Files, info)
		pkg.Types = tpkg
		pkg.TypesInfo = info
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	computeKeys(out, listed)
	return out, nil
}

// computeKeys fills every loaded package's content Key. A loaded package's
// key hashes its own sources plus the keys of its direct imports: loaded
// imports recurse (so an edit anywhere in the module invalidates exactly
// its importers), external imports contribute their export-data hash (which
// changes whenever their visible API or inlinable bodies change — the only
// channels through which they can influence analysis of this package).
func computeKeys(loaded []*Package, listed []listPkg) {
	loadedBy := make(map[string]*Package, len(loaded))
	for _, p := range loaded {
		loadedBy[p.ImportPath] = p
	}
	exportPath := make(map[string]string, len(listed))
	importsOf := make(map[string][]string, len(listed))
	for _, lp := range listed {
		exportPath[lp.ImportPath] = lp.Export
		importsOf[lp.ImportPath] = lp.Imports
	}
	memo := map[string]string{}
	var keyOf func(path string) string
	keyOf = func(path string) string {
		if k, ok := memo[path]; ok {
			return k
		}
		memo[path] = "" // cycle guard; Go import graphs are acyclic anyway
		h := sha256.New()
		if p, ok := loadedBy[path]; ok {
			fmt.Fprintf(h, "pkg %s\n", path)
			files := make([]string, 0, len(p.Sources))
			for f := range p.Sources {
				files = append(files, f)
			}
			sort.Strings(files)
			for _, f := range files {
				fmt.Fprintf(h, "file %s %d\n", filepath.Base(f), len(p.Sources[f]))
				h.Write(p.Sources[f])
			}
			imps := append([]string(nil), importsOf[path]...)
			sort.Strings(imps)
			for _, imp := range imps {
				fmt.Fprintf(h, "import %s %s\n", imp, keyOf(imp))
			}
		} else {
			fmt.Fprintf(h, "dep %s\n", path)
			if ep := exportPath[path]; ep != "" {
				if data, err := os.ReadFile(ep); err == nil {
					h.Write(data)
				}
			}
		}
		k := hex.EncodeToString(h.Sum(nil))
		memo[path] = k
		return k
	}
	for _, p := range loaded {
		p.Key = keyOf(p.ImportPath)
	}
}
