package maporder_test

import (
	"strings"
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/maporder"
)

func TestDeterministicZone(t *testing.T) {
	analysistest.RunPath(t, maporder.Analyzer, "testdata/det", "depsense/internal/core")
}

func TestMarkerOutsideZone(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/marked")
}

// TestSortedKeysFix checks the mapsort.Keys rewrite (including the import
// insertion) against the golden post-fix source.
func TestSortedKeysFix(t *testing.T) {
	analysistest.RunPath(t, maporder.Analyzer, "testdata/fixdet", "depsense/internal/core")
}

// TestReasonlessAllow verifies that a //lint:allow without a reason is void
// (the maporder finding survives) and is itself reported under lintallow.
func TestReasonlessAllow(t *testing.T) {
	findings := analysistest.Findings(t, maporder.Analyzer, "testdata/badallow", "depsense/internal/core")
	var sawMap, sawAllow bool
	for _, f := range findings {
		switch {
		case f.Analyzer == maporder.Analyzer.Name && strings.Contains(f.Message, "range over map"):
			sawMap = true
		case f.Analyzer == framework.AllowName && strings.Contains(f.Message, "must carry a reason"):
			sawAllow = true
		}
	}
	if !sawMap {
		t.Errorf("reasonless allow suppressed the maporder finding; findings: %v", findings)
	}
	if !sawAllow {
		t.Errorf("reasonless allow not reported under %s; findings: %v", framework.AllowName, findings)
	}
}
