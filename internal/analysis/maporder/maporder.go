// Package maporder implements the depsenselint analyzer that forbids
// ranging over maps inside deterministic zones.
//
// Go randomizes map iteration order per range statement, so any reduction,
// matrix build, or accumulation that ranges over a map inside a package
// whose outputs must be bit-for-bit reproducible (internal/core,
// internal/bound, internal/gibbs, ... — see internal/analysis/zones) is a
// latent reproducibility bug even when today's consumer happens to sort
// downstream. The fix is to extract and sort the keys before iterating; a
// site that is provably order-independent may instead carry a
// //lint:allow maporder <reason> suppression.
package maporder

import (
	"go/ast"
	"go/types"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zones"
)

// Analyzer flags range-over-map statements in deterministic zones.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag range over a map in a deterministic zone; Go randomizes map order, " +
		"so iterate sorted keys (or justify with //lint:allow maporder <reason>)",
	Run: run,
}

func run(pass *framework.Pass) error {
	pkgZone := zones.Deterministic[pass.Path]
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pkgZone && !framework.FuncHasMarker(fd, framework.DeterministicMarker) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(rs.Pos(),
						"range over map %s in deterministic zone %s: map order is randomized; "+
							"iterate sorted keys (sort.* / slices.Sort) or suppress with //lint:allow maporder <reason>",
						types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), pass.Path)
				}
				return true
			})
		}
	}
	return nil
}
