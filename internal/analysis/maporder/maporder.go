// Package maporder implements the depsenselint analyzer that forbids
// ranging over maps inside deterministic zones.
//
// Go randomizes map iteration order per range statement, so any reduction,
// matrix build, or accumulation that ranges over a map inside a package
// whose outputs must be bit-for-bit reproducible (internal/core,
// internal/bound, internal/gibbs, ... — see internal/analysis/zones) is a
// latent reproducibility bug even when today's consumer happens to sort
// downstream. The fix is to extract and sort the keys before iterating; a
// site that is provably order-independent may instead carry a
// //lint:allow maporder <reason> suppression.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// mapsortPath is the sanctioned sorted-iteration helper package; the
// suggested fix rewrites flagged ranges to mapsort.Keys.
const mapsortPath = "depsense/internal/mapsort"

// Analyzer flags range-over-map statements in deterministic zones.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag range over a map in a deterministic zone; Go randomizes map order, " +
		"so iterate sorted keys (or justify with //lint:allow maporder <reason>)",
	Requires: []*framework.Analyzer{zonefacts.Analyzer},
	Run:      run,
}

func run(pass *framework.Pass) error {
	pkgZone := zonefacts.Of(pass).Deterministic
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pkgZone && !framework.FuncHasMarker(fd, framework.DeterministicMarker) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				mt, isMap := tv.Type.Underlying().(*types.Map)
				if !isMap {
					return true
				}
				d := framework.Diagnostic{
					Pos: rs.Pos(),
					Message: "range over map " + types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)) +
						" in deterministic zone " + pass.Path + ": map order is randomized; " +
						"iterate sorted keys (sort.* / slices.Sort) or suppress with //lint:allow maporder <reason>",
				}
				if fix, ok := sortedKeysFix(pass, file, rs, mt); ok {
					d.SuggestedFixes = []framework.SuggestedFix{fix}
				}
				pass.Report(d)
				return true
			})
		}
	}
	return nil
}

// sortedKeysFix builds the mechanical rewrite of a key-only map range into
// the mapsort.Keys sorted form:
//
//	for k := range m {  →  for _, k := range mapsort.Keys(m) {
//
// adding the mapsort import when the file lacks it. Ranges that also bind
// the value, discard the key, or use an unordered key type are left to the
// human.
func sortedKeysFix(pass *framework.Pass, file *ast.File, rs *ast.RangeStmt, mt *types.Map) (framework.SuggestedFix, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil || rs.Tok != token.DEFINE {
		return framework.SuggestedFix{}, false
	}
	if b, ok := mt.Key().Underlying().(*types.Basic); !ok ||
		b.Info()&(types.IsInteger|types.IsFloat|types.IsString) == 0 {
		return framework.SuggestedFix{}, false
	}
	name, importEdit, ok := mapsortName(file)
	if !ok {
		return framework.SuggestedFix{}, false
	}
	edits := []framework.TextEdit{{
		Pos:     rs.Key.Pos(),
		End:     rs.X.End(),
		NewText: "_, " + key.Name + " := range " + name + ".Keys(" + types.ExprString(rs.X) + ")",
	}}
	if importEdit != nil {
		edits = append(edits, *importEdit)
	}
	return framework.SuggestedFix{
		Message:   "iterate " + name + ".Keys(" + types.ExprString(rs.X) + ") for deterministic order",
		TextEdits: edits,
	}, true
}

// mapsortName returns the name mapsort is (or would be) known by in file,
// plus an import-inserting edit when the file does not import it yet. The
// insertion keeps the block sorted so the fixed file stays gofmt-clean.
func mapsortName(file *ast.File) (string, *framework.TextEdit, bool) {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == mapsortPath {
			if imp.Name != nil {
				return imp.Name.Name, nil, true
			}
			return "mapsort", nil, true
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		pos := gd.Lparen + 1
		for _, spec := range gd.Specs {
			imp, ok := spec.(*ast.ImportSpec)
			if !ok {
				continue
			}
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path < mapsortPath {
				pos = imp.End()
			}
		}
		return "mapsort", &framework.TextEdit{
			Pos:     pos,
			End:     pos,
			NewText: "\n\t" + strconv.Quote(mapsortPath),
		}, true
	}
	return "", nil, false // no parenthesized import block to extend
}
