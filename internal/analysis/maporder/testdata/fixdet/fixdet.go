// Package fixdet carries the maporder suggested-fix round-trip fixtures:
// key-only map ranges rewritten to mapsort.Keys with the import added.
package fixdet

import (
	"fmt"
)

func sum(m map[string]int) int {
	t := 0
	for k := range m { // want `range over map`
		t += m[k]
	}
	return t
}

func names(m map[int]string) {
	for id := range m { // want `range over map`
		fmt.Println(m[id])
	}
}

func keyAndValue(m map[string]int) int {
	t := 0
	for _, v := range m { // want `range over map`
		t += v // no fix: value-binding form is left to the human
	}
	return t
}
