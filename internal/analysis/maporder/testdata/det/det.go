// Fixture analyzed under the import path depsense/internal/core, a
// deterministic zone.
package fixture

import "sort"

// Reduce ranges a map every way the analyzer cares about.
func Reduce(weights map[int]float64, names map[string]int) float64 {
	total := 0.0
	for _, w := range weights { // want `range over map`
		total += w
	}

	// Sorted-key iteration is the sanctioned pattern: the range is over a
	// slice, so nothing fires.
	keys := make([]int, 0, len(weights))
	for k := range weights { //lint:allow maporder key extraction, sorted on the next line
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		total += weights[k]
	}

	for range names { // want `range over map`
		total++
	}
	return total
}

// Suppressed demonstrates both placements of a justified allow.
func Suppressed(m map[int]int) int {
	n := 0
	for range m { //lint:allow maporder order-independent count accumulation
		n++
	}
	//lint:allow maporder order-independent max over values
	for _, v := range m {
		if v > n {
			n = v
		}
	}
	return n
}

// Slices never fire.
func SliceRange(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
