// Fixture for suppression hygiene, asserted programmatically (a want
// comment cannot trail a directive — the directive runs to end of line).
// The reasonless allow is void, so BOTH the maporder finding and a
// lintallow finding must surface.
package fixture

// Count has a reasonless suppression attempt.
func Count(m map[int]int) int {
	n := 0
	//lint:allow maporder
	for range m {
		n++
	}
	return n
}
