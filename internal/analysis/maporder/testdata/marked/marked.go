// Fixture analyzed under a non-zone import path: only the function carrying
// the //depsense:deterministic marker is patrolled.
package fixture

// Unmarked code in a non-zone package may range maps freely.
func Unmarked(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Marked is a reducer that opted into the deterministic contract.
//
//depsense:deterministic
func Marked(m map[string]int) int {
	n := 0
	for range m { // want `range over map`
		n++
	}
	return n
}
