// Package scratch exercises scratchalias taint tracking.
package scratch

type result struct {
	Posterior []float64
}

// buf owns the reusable per-fit buffers.
//
//depsense:scratch
type buf struct {
	post []float64
	n    int
}

func (b *buf) borrow() []float64 {
	return b.post // ok: unexported borrow, becomes a ReturnsScratch fact
}

func (b *buf) Leak() []float64 {
	return b.post // want `exported Leak returns scratch-backed memory`
}

func (b *buf) LeakSlice() []float64 {
	p := b.post
	return p[1:] // want `exported LeakSlice returns scratch-backed memory`
}

func (b *buf) Count() int {
	return b.n // ok: scalar fields are copied by value anyway
}

func (b *buf) Copy() []float64 {
	return append([]float64(nil), b.post...) // ok: append launders
}

func (b *buf) store(r *result) {
	r.Posterior = b.post // want `scratch-backed memory stored into field r\.Posterior`
}

func (b *buf) storeCopy(r *result) {
	r.Posterior = append([]float64(nil), b.post...) // ok
}

func (b *buf) literal() *result {
	return &result{Posterior: b.post} // want `scratch-backed memory stored into field Posterior`
}

func (b *buf) literalCopy() *result {
	return &result{Posterior: append([]float64(nil), b.post...)} // ok
}

func (b *buf) viaBorrow() *result {
	p := b.borrow()
	return &result{Posterior: p} // want `scratch-backed memory stored into field Posterior`
}

func (b *buf) retaint() []float64 {
	p := b.post
	p = append([]float64(nil), p...)
	return p // ok: reassignment to a laundered copy clears the taint
}
