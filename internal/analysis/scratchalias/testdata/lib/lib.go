// Package pool is the fact-exporting half of the cross-package fixture: an
// exported, explicitly-declared borrow API over scratch memory.
package pool

// Pool owns reusable buffers.
//
//depsense:scratch
type Pool struct {
	buf []float64
}

// Borrow hands out the pool's buffer for the duration of one fit.
//
//depsense:borrows
func (p *Pool) Borrow() []float64 {
	return p.buf // ok: declared borrow, exported as a ReturnsScratch fact
}
