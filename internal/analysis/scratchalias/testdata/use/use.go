// Package use imports the pool fixture; Borrow's ReturnsScratch fact must
// taint its results here.
package use

import "fixturelib/pool"

type snapshot struct {
	Values []float64
}

func capture(p *pool.Pool) *snapshot {
	v := p.Borrow()
	return &snapshot{Values: v} // want `scratch-backed memory stored into field Values`
}

func captureCopy(p *pool.Pool) *snapshot {
	return &snapshot{Values: append([]float64(nil), p.Borrow()...)} // ok
}
