// Package scratchalias implements the depsenselint analyzer that keeps
// scratch-buffer memory from escaping.
//
// A struct marked with a "//depsense:scratch" doc directive (core.Scratch)
// owns buffers that the next fit will overwrite in place. Handing one of
// those slices to a caller that retains it — a Result field, some other
// struct's field — is the classic aliasing bug: the caller's "result"
// silently mutates on the next iteration. The repo convention is to copy
// on the way out (append([]float64(nil), eng.post...)).
//
// scratchalias tracks scratch-backed values lexically within each
// function: a read of a marked struct's slice/pointer field is tainted,
// taint flows through local assignment, slicing, and indexing, and any
// other call (append, copy, Clone) launders it. Violations:
//
//   - a tainted value stored into a struct field or composite-literal
//     field (it outlives the frame);
//   - a tainted value returned by an exported function (the caller cannot
//     know it borrowed).
//
// An unexported function returning tainted memory is the deliberate borrow
// pattern (core's borrowPrev): instead of a finding it gets a
// ReturnsScratch object fact, so its callers — in this package or any
// importing one — propagate the taint and are held to the same rules. An
// exported function may opt into the same borrow semantics with a
// "//depsense:borrows" doc directive; without it, returning scratch memory
// across the API boundary is a finding.
package scratchalias

import (
	"go/ast"
	"go/types"
	"strings"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// ScratchMarker is the doc directive marking a scratch-owning struct.
const ScratchMarker = "//depsense:scratch"

// BorrowMarker is the doc directive by which an exported function declares
// that it intentionally returns scratch-backed memory (borrow semantics).
const BorrowMarker = "//depsense:borrows"

// ReturnsScratch is the object fact on functions that return
// scratch-backed memory (the borrow pattern).
type ReturnsScratch struct{}

// AFact marks ReturnsScratch as a framework fact.
func (*ReturnsScratch) AFact() {}

// Analyzer flags scratch-backed memory escaping into retained storage.
var Analyzer = &framework.Analyzer{
	Name: "scratchalias",
	Doc: "forbid slices of //depsense:scratch structs from escaping into struct fields, " +
		"composite literals, or exported-function returns; export ReturnsScratch facts for borrows",
	Requires:  []*framework.Analyzer{zonefacts.Analyzer},
	FactTypes: []framework.Fact{(*ReturnsScratch)(nil)},
	Run:       run,
}

func run(pass *framework.Pass) error {
	fields := scratchFields(pass)
	funcs := packageFuncs(pass)

	// Fixed point over the package's functions: a function returning a
	// tainted value taints its callers' results, which may make more
	// functions borrow-returners.
	borrows := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, decl := range funcs {
			if borrows[fn] {
				continue
			}
			if returnsTainted(pass, decl, fields, borrows) {
				borrows[fn] = true
				changed = true
			}
		}
	}
	for fn, decl := range funcs {
		if !borrows[fn] {
			continue
		}
		if fn.Exported() && !hasBorrowMarker(decl) {
			continue // reported below, at the return site
		}
		if err := pass.ExportObjectFact(fn, &ReturnsScratch{}); err != nil {
			// Unkeyable objects stay package-local.
			continue
		}
	}

	for fn, decl := range funcs {
		checkFunc(pass, fn, decl, fields, borrows)
	}
	return nil
}

// hasBorrowMarker reports whether decl's doc carries //depsense:borrows.
func hasBorrowMarker(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, BorrowMarker) {
			return true
		}
	}
	return false
}

// scratchFields collects the slice/pointer fields of //depsense:scratch
// structs declared in this package.
func scratchFields(pass *framework.Pass) map[*types.Var]bool {
	fields := map[*types.Var]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(gd.Doc) && !hasMarker(ts.Doc) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						v, ok := pass.TypesInfo.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						switch v.Type().Underlying().(type) {
						case *types.Slice, *types.Pointer, *types.Map:
							fields[v] = true
						}
					}
				}
			}
		}
	}
	return fields
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, ScratchMarker) {
			return true
		}
	}
	return false
}

// packageFuncs indexes the package's function declarations.
func packageFuncs(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	funcs := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				funcs[fn] = fd
			}
		}
	}
	return funcs
}

// taintTracker evaluates scratch taint lexically within one function.
type taintTracker struct {
	pass    *framework.Pass
	fields  map[*types.Var]bool
	borrows map[*types.Func]bool
	locals  map[*types.Var]bool
}

func (t *taintTracker) tainted(e ast.Expr) bool {
	// Only reference-shaped values alias scratch memory: indexing a
	// scratch []float64 yields a scalar copy, which is always safe.
	if tv, ok := t.pass.TypesInfo.Types[e]; ok && !aliasing(tv.Type) {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := t.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok && t.fields[v] {
				return true
			}
		}
		return false
	case *ast.Ident:
		if v, ok := t.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return t.locals[v]
		}
		return false
	case *ast.IndexExpr:
		return t.tainted(e.X)
	case *ast.SliceExpr:
		return t.tainted(e.X) // reslicing still aliases the backing array
	case *ast.CallExpr:
		return t.callReturnsScratch(e)
	case *ast.UnaryExpr:
		return t.tainted(e.X)
	case *ast.StarExpr:
		return t.tainted(e.X)
	}
	return false
}

// aliasing reports whether values of type t can share backing memory with
// a scratch buffer.
func aliasing(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// callReturnsScratch reports whether the call's callee is a known borrow
// returner — from this package's fixed point or an imported package's
// ReturnsScratch fact.
func (t *taintTracker) callReturnsScratch(call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = t.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = t.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if t.borrows[fn] {
		return true
	}
	var fact ReturnsScratch
	return t.pass.ImportObjectFact(fn, &fact)
}

// returnsTainted reports whether any return in decl (outside nested
// function literals) yields a tainted value, tracking local assignments on
// the way.
func returnsTainted(pass *framework.Pass, decl *ast.FuncDecl, fields map[*types.Var]bool, borrows map[*types.Func]bool) bool {
	t := &taintTracker{pass: pass, fields: fields, borrows: borrows, locals: map[*types.Var]bool{}}
	found := false
	walkFrame(decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			t.recordAssign(n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if t.tainted(r) {
					found = true
				}
			}
		}
	})
	return found
}

// recordAssign updates local taint for ident := / = tainted-expr.
func (t *taintTracker) recordAssign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := t.pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			v, ok = t.pass.TypesInfo.Uses[id].(*types.Var)
		}
		if !ok || v.IsField() {
			continue
		}
		t.locals[v] = t.tainted(a.Rhs[i])
	}
}

// checkFunc reports escapes of tainted values in one function.
func checkFunc(pass *framework.Pass, fn *types.Func, decl *ast.FuncDecl, fields map[*types.Var]bool, borrows map[*types.Func]bool) {
	t := &taintTracker{pass: pass, fields: fields, borrows: borrows, locals: map[*types.Var]bool{}}
	walkFrame(decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			t.checkStores(n)
			t.recordAssign(n)
		case *ast.CompositeLit:
			t.checkComposite(n)
		case *ast.ReturnStmt:
			if !fn.Exported() || hasBorrowMarker(decl) {
				return // deliberate borrow: covered by the ReturnsScratch fact
			}
			for _, r := range n.Results {
				if t.tainted(r) {
					pass.Reportf(r.Pos(),
						"exported %s returns scratch-backed memory the caller will retain; "+
							"copy it out (append([]float64(nil), x...)) before returning",
						fn.Name())
				}
			}
		}
	})
}

// checkStores flags tainted values assigned into struct fields that are not
// themselves scratch fields.
func (t *taintTracker) checkStores(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || !t.tainted(a.Rhs[i]) {
			continue
		}
		if s, ok := t.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && t.fields[v] {
				continue // scratch-to-scratch is the buffer's own bookkeeping
			}
		}
		t.pass.Reportf(a.Rhs[i].Pos(),
			"scratch-backed memory stored into field %s outlives the fit that owns it; copy it out first",
			types.ExprString(lhs))
	}
}

// checkComposite flags tainted values placed in struct-literal fields.
func (t *taintTracker) checkComposite(lit *ast.CompositeLit) {
	tv, ok := t.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			if t.tainted(elt) {
				t.pass.Reportf(elt.Pos(),
					"scratch-backed memory stored into a composite literal outlives the fit that owns it; copy it out first")
			}
			continue
		}
		if t.tainted(kv.Value) {
			t.pass.Reportf(kv.Value.Pos(),
				"scratch-backed memory stored into field %s outlives the fit that owns it; copy it out first",
				types.ExprString(kv.Key))
		}
	}
}

// walkFrame visits decl-body nodes in source order without descending into
// nested function literals (each literal is its own frame for the lexical
// taint scan; escapes via closures are out of scope for this analyzer).
func walkFrame(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
