package scratchalias_test

import (
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/scratchalias"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, scratchalias.Analyzer, "testdata/basic")
}

// TestCrossPackageFact checks that an exported //depsense:borrows function
// taints its callers in importing packages via the ReturnsScratch fact.
func TestCrossPackageFact(t *testing.T) {
	analysistest.RunDirs(t, scratchalias.Analyzer,
		analysistest.Fixture{Dir: "testdata/lib", ImportPath: "fixturelib/pool"},
		analysistest.Fixture{Dir: "testdata/use", ImportPath: "fixtureuse/use"},
	)
}
