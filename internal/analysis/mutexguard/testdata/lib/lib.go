// Package shared is the fact-exporting half of the cross-package fixture:
// it declares a guarded exported field and never misuses it itself.
package shared

import "sync"

type Box struct {
	Mu  sync.Mutex
	Val int // guarded by Mu
}

func (b *Box) Get() int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Val // ok
}
