// Package use imports the shared fixture package; the guard contract on
// Box.Val must arrive here via the exported Guards package fact.
package use

import "fixturelib/shared"

func Read(b *shared.Box) int {
	return b.Val // want `Box\.Val is guarded by Mu`
}

func SafeRead(b *shared.Box) int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Val // ok: same discipline as at home
}
