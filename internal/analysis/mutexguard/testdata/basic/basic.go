package basic

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type gauge struct {
	mu  sync.RWMutex
	val float64 // guarded by mu
}

type broken struct {
	lock int
	x    int // guarded by lock // want `not a sync\.Mutex/RWMutex sibling field`
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // ok: local, has not escaped
	return c
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++ // ok: lock held
	c.mu.Unlock()
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: deferred unlock does not release before return
}

func (c *counter) bad() int {
	return c.n // want `counter\.n is guarded by mu`
}

func (c *counter) racy() {
	c.mu.Lock()
	c.mu.Unlock()
	c.n++ // want `counter\.n is guarded by mu`
}

func (c *counter) valueLocked() int {
	return c.n // ok: *Locked naming documents the held-lock precondition
}

func (c *counter) allowed() int {
	return c.n //lint:allow mutexguard approximate read is fine for monitoring
}

func (c *counter) leak() {
	go func() {
		c.n++ // want `counter\.n is guarded by mu`
	}()
}

func (c *counter) nested() {
	f := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++ // ok: locked inside the literal's own frame
	}
	f()
	c.n++ // want `counter\.n is guarded by mu`
}

func (g *gauge) get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val // ok: read lock counts
}

func (g *gauge) set(v float64) {
	g.val = v // want `gauge\.val is guarded by mu`
}
