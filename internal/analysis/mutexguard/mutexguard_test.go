package mutexguard_test

import (
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/mutexguard"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, mutexguard.Analyzer, "testdata/basic")
}

// TestCrossPackageFact checks that a guard annotation declared in one
// package is enforced in an importing package via the Guards package fact.
func TestCrossPackageFact(t *testing.T) {
	analysistest.RunDirs(t, mutexguard.Analyzer,
		analysistest.Fixture{Dir: "testdata/lib", ImportPath: "fixturelib/shared"},
		analysistest.Fixture{Dir: "testdata/use", ImportPath: "fixtureuse/use"},
	)
}
