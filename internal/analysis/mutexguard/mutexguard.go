// Package mutexguard implements the depsenselint analyzer that enforces
// "guarded by" annotations on struct fields.
//
// A struct field whose doc or line comment contains "guarded by <mu>"
// declares that every access to the field must happen with the sibling
// mutex <mu> held. The serving stack's shared state — the obs metrics
// registry, the trace flight recorder and builder — carries these
// annotations; before this analyzer the discipline lived in prose and was
// enforced only by the race detector's luck.
//
// The check is lexical within the innermost enclosing function: an access
// to x.f (f guarded by mu) is accepted when a preceding x.mu.Lock() or
// x.mu.RLock() call dominates it with no non-deferred x.mu.Unlock() in
// between. Three escapes avoid false positives on the standard patterns:
//
//   - methods whose name ends in "Locked" document a held-lock
//     precondition and are exempt;
//   - accesses through a local variable declared inside the function
//     (constructor pattern: the struct has not escaped yet) are exempt;
//   - anything else provably safe carries //lint:allow mutexguard <reason>.
//
// Guard annotations are also exported as a package fact, so accesses to an
// exported guarded field from another package are held to the same
// contract.
package mutexguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// Guard records one annotated field.
type Guard struct {
	Struct string `json:"struct"`
	Field  string `json:"field"`
	Mutex  string `json:"mutex"`
}

// Guards is the package fact listing every guarded field a package
// declares, letting importing packages enforce the same contract on
// exported fields.
type Guards struct {
	Fields []Guard `json:"fields"`
}

// AFact marks Guards as a framework fact.
func (*Guards) AFact() {}

// Analyzer enforces guarded-by field annotations.
var Analyzer = &framework.Analyzer{
	Name: "mutexguard",
	Doc: "flag accesses to struct fields annotated \"guarded by <mu>\" made without " +
		"holding the mutex (lexically, in the enclosing function)",
	Requires:  []*framework.Analyzer{zonefacts.Analyzer},
	FactTypes: []framework.Fact{(*Guards)(nil)},
	Run:       run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// fieldGuard is the resolved in-package form of a Guard.
type fieldGuard struct {
	structName string
	mutex      string
}

func run(pass *framework.Pass) error {
	guards := collectGuards(pass)
	fact := &Guards{}
	for obj, g := range guards {
		fact.Fields = append(fact.Fields, Guard{Struct: g.structName, Field: obj.Name(), Mutex: g.mutex})
	}
	sortGuards(fact.Fields)
	if err := pass.ExportPackageFact(fact); err != nil {
		return err
	}

	for _, file := range pass.Files {
		checkFile(pass, file, guards)
	}
	return nil
}

// collectGuards scans the package's struct declarations for guarded-by
// annotations, validating that the named mutex is a sibling field of a
// sync.Mutex/RWMutex type.
func collectGuards(pass *framework.Pass) map[*types.Var]fieldGuard {
	guards := map[*types.Var]fieldGuard{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexFields := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isMutex(obj.Type()) {
						mutexFields[name.Name] = true
					}
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !mutexFields[mu] {
					pass.Reportf(f.Pos(),
						"field annotated \"guarded by %s\" but %s.%s is not a sync.Mutex/RWMutex sibling field",
						mu, ts.Name.Name, mu)
					continue
				}
				for _, name := range f.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[obj] = fieldGuard{structName: ts.Name.Name, mutex: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation returns the mutex name from the field's doc or line
// comment, or "".
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFile walks one file tracking the enclosing-function stack and
// verifies every guarded-field access.
func checkFile(pass *framework.Pass, file *ast.File, guards map[*types.Var]fieldGuard) {
	var stack []ast.Node // full node stack, innermost last
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, guarded := lookupGuard(pass, guards, field, namedTypeName(selection.Recv()))
		if !guarded {
			return true
		}
		body, funcName := enclosingFunc(stack)
		if body == nil {
			return true // package-level initializer; nothing to lock yet
		}
		if strings.HasSuffix(funcName, "Locked") {
			return true // documented held-lock precondition
		}
		base := types.ExprString(sel.X)
		if localToBody(pass, sel.X, body) {
			return true // constructor pattern: the struct has not escaped
		}
		if !heldAt(body, base, g.mutex, sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s but accessed without %s.%s held in %s; "+
					"lock first (or rename the helper *Locked / suppress with //lint:allow mutexguard <reason>)",
				g.structName, field.Name(), g.mutex, base, g.mutex, funcName)
		}
		return true
	})
}

// lookupGuard resolves a field's guard: object identity for fields declared
// in this package, the exporting package's Guards fact otherwise.
func lookupGuard(pass *framework.Pass, guards map[*types.Var]fieldGuard, field *types.Var, recvName string) (fieldGuard, bool) {
	if g, ok := guards[field]; ok {
		return g, true
	}
	if field.Pkg() == nil || field.Pkg() == pass.Pkg {
		return fieldGuard{}, false
	}
	var remote Guards
	if !pass.ImportPackageFact(field.Pkg().Path(), &remote) {
		return fieldGuard{}, false
	}
	for _, g := range remote.Fields {
		if g.Field == field.Name() && (recvName == "" || g.Struct == recvName) {
			return fieldGuard{structName: g.Struct, mutex: g.Mutex}, true
		}
	}
	return fieldGuard{}, false
}

// namedTypeName returns the name of t's (possibly pointer-wrapped) named
// type, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// enclosingFunc returns the innermost function body on the stack and a
// printable name for it.
func enclosingFunc(stack []ast.Node) (*ast.BlockStmt, string) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body, "a function literal"
		case *ast.FuncDecl:
			return fn.Body, fn.Name.Name
		}
	}
	return nil, ""
}

// localToBody reports whether expr is (rooted at) a local variable declared
// inside body — the constructor pattern, where the value cannot be shared
// yet.
func localToBody(pass *framework.Pass, expr ast.Expr, body *ast.BlockStmt) bool {
	for {
		if sel, ok := expr.(*ast.SelectorExpr); ok {
			expr = sel.X
			continue
		}
		break
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Parameters and receivers are declared at the function's Pos, before
	// the body; true locals are declared inside it.
	return v.Pos() > body.Pos() && v.Pos() < body.End()
}

// heldAt reports whether base's mutex is lexically held at pos inside body:
// a base.mutex.Lock()/RLock() call precedes pos with no non-deferred
// Unlock/RUnlock between the lock and pos.
func heldAt(body *ast.BlockStmt, base, mutex string, pos token.Pos) bool {
	held := false
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// pos is in body's own frame (body is its innermost function),
			// so lock state inside nested literals is irrelevant to it.
			return
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			walk(d.Call, true)
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if kind := lockCallOn(call, base, mutex); kind != "" && call.Pos() < pos {
				switch kind {
				case "lock":
					held = true
				case "unlock":
					if !inDefer {
						held = false
					}
				}
			}
		}
		// Children in source order keeps the lexical scan faithful.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return true
			}
			walk(c, inDefer)
			return false
		})
	}
	walk(body, false)
	return held
}

// lockCallOn classifies call as a lock/unlock of base.mutex, or "".
func lockCallOn(call *ast.CallExpr, base, mutex string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var kind string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return ""
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != mutex {
		return ""
	}
	if types.ExprString(muSel.X) != base {
		return ""
	}
	return kind
}

// isMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func sortGuards(gs []Guard) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && less(gs[j], gs[j-1]); j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

func less(a, b Guard) bool {
	if a.Struct != b.Struct {
		return a.Struct < b.Struct
	}
	return a.Field < b.Field
}
