// Package goroleak implements the depsenselint analyzer that requires a
// provable join for every goroutine started in an estimator or
// deterministic zone package.
//
// Those zones promise bit-for-bit reproducible results and bounded
// shutdown; a goroutine that outlives its spawner breaks both — it keeps
// mutating shared estimator state after Wait/Close returned, and it leaks
// under the ingestion soak tests. goroleak accepts a `go` statement when
// the spawned body carries join evidence:
//
//   - it calls Done() on a sync.WaitGroup (normally `defer wg.Done()`), or
//   - it signals completion over a channel: a send, or a close().
//
// For `go f(...)` on a function declared in the same package the callee's
// body is scanned for the same evidence. Anything else — including
// goroutines whose body lives in another package — is flagged; genuinely
// detached workers suppress with //lint:allow goroleak <reason>.
package goroleak

import (
	"go/ast"
	"go/types"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// Analyzer requires join evidence for zone goroutines.
var Analyzer = &framework.Analyzer{
	Name: "goroleak",
	Doc: "in estimator/deterministic zones, require every go statement to have provable " +
		"join evidence (WaitGroup Done or a completion-channel send/close)",
	Requires: []*framework.Analyzer{zonefacts.Analyzer},
	Run:      run,
}

func run(pass *framework.Pass) error {
	z := zonefacts.Of(pass)
	if !z.Estimator && !z.Deterministic {
		return nil
	}
	decls := localFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !joins(pass, g.Call, decls, map[*ast.FuncDecl]bool{}) {
				pass.Reportf(g.Pos(),
					"goroutine has no provable join (WaitGroup Done or completion-channel send/close in its body); "+
						"a leaked goroutine outlives the run in a reproducibility zone — join it or suppress with //lint:allow goroleak <reason>")
			}
			return true
		})
	}
	return nil
}

// localFuncDecls indexes this package's function declarations by object, so
// `go f(...)` can be resolved to f's body.
func localFuncDecls(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// joins reports whether the go statement's call has join evidence: for a
// function literal, in its body; for a same-package function, in the
// callee's body (one level of indirection, cycle-guarded via seen).
func joins(pass *framework.Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl, seen map[*ast.FuncDecl]bool) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyJoins(pass, lit.Body)
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	fd, ok := decls[fn]
	if !ok || seen[fd] {
		return false
	}
	seen[fd] = true
	return bodyJoins(pass, fd.Body)
}

// bodyJoins scans a goroutine body for join evidence.
func bodyJoins(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) || isClose(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupDone reports whether call is X.Done() for a sync.WaitGroup X.
func isWaitGroupDone(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isClose reports whether call is the close builtin.
func isClose(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}
