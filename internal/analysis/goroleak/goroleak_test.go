package goroleak_test

import (
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/goroleak"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "testdata/basic")
}

// TestZoneGate confirms goroleak is inert outside estimator/deterministic
// zones.
func TestZoneGate(t *testing.T) {
	findings := analysistest.Findings(t, goroleak.Analyzer, "testdata/nozone", "")
	if len(findings) != 0 {
		t.Errorf("expected no findings outside the zones, got %v", findings)
	}
}
