// Package nozone leaks a goroutine outside any zone; goroleak must stay
// silent.
package nozone

func leak() {
	go func() {}()
}
