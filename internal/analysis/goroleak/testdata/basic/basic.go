// Package workers exercises goroleak join-evidence detection.
//
//depsense:zone estimator
package workers

import "sync"

func work() {}

func compute() int { return 1 }

func leak() {
	go func() { // want `goroutine has no provable join`
		work()
	}()
}

func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // ok: WaitGroup Done
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func handshake() {
	done := make(chan struct{})
	go func() { // ok: completion close
		defer close(done)
		work()
	}()
	<-done
}

func result() int {
	ch := make(chan int, 1)
	go func() { // ok: result send is the join
		ch <- compute()
	}()
	return <-ch
}

func runner(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

func namedJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go runner(wg) // ok: callee's body carries the Done
	wg.Wait()
}

func namedLeak() {
	go work() // want `goroutine has no provable join`
}

func detached() {
	//lint:allow goroleak metrics flusher is fire-and-forget by design
	go work()
}
