// Package probexpr implements the depsenselint analyzer that patrols
// numeric packages for probability arithmetic that belongs in log-space.
//
// The paper's posterior computations (Eqs. 9–14) multiply per-source
// emission probabilities across sources; with hundreds of sources a raw
// product underflows float64 long before the posterior itself is
// degenerate, which is why the E-step accumulates log-likelihood terms and
// resolves them with LogSumExp. The analyzer flags two hazards in the
// numeric zones (see internal/analysis/zones):
//
//   - a chained multiplication of four or more probability-named factors
//     (a/b/f/g/z-style parameters, p*/prob*/posterior names) outside a
//     log-space helper — the length at which raw products start risking
//     underflow and at which log-space is always the right representation;
//   - an exact ==/!= comparison of a probability-named float against the
//     literals 0 or 1 — model probabilities are clamped to
//     [ProbEpsilon, 1-ProbEpsilon] by model.ClampProb and never reach the
//     exact endpoints, so such comparisons are dead or wrong.
//
// The fix is the log-space helpers in depsense/internal/model (SafeLog,
// Log1m, LogSumExp, LogProd) or an epsilon-aware comparison.
package probexpr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"depsense/internal/analysis/framework"
	"depsense/internal/analysis/zonefacts"
)

// Analyzer flags raw-space probability products and exact 0/1 probability
// comparisons in numeric packages.
var Analyzer = &framework.Analyzer{
	Name: "probexpr",
	Doc: "flag chained raw-space products of >=4 probability-named factors and " +
		"==/!= comparisons of probabilities against exact 0/1 literals",
	Requires: []*framework.Analyzer{zonefacts.Analyzer},
	Run:      run,
}

// minChain is the factor count at which a raw probability product is
// flagged.
const minChain = 4

func run(pass *framework.Pass) error {
	if !zonefacts.Of(pass).Numeric {
		return nil
	}
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.MUL:
				checkProduct(pass, file, be)
				// Descend no further: checkProduct flattened the whole
				// chain, and nested MUL operands would double-report.
				return false
			case token.EQL, token.NEQ:
				checkExactCompare(pass, be)
			}
			return true
		})
	}
	return nil
}

// checkProduct flattens a multiplication chain rooted at be and reports it
// when enough probability-named float factors are chained outside a
// log-space helper.
func checkProduct(pass *framework.Pass, file *ast.File, be *ast.BinaryExpr) {
	if !isFloat(pass.TypesInfo, be) {
		return
	}
	if fd := framework.EnclosingFunc(file, be.Pos()); fd != nil && strings.Contains(strings.ToLower(fd.Name.Name), "log") {
		return // log-space helper: products here are the conversion point
	}
	var factors []ast.Expr
	flattenMul(be, &factors)
	if len(factors) < minChain {
		return
	}
	named := 0
	for _, f := range factors {
		if probNamed(f) {
			named++
		}
	}
	if named < minChain {
		return
	}
	pass.Reportf(be.Pos(),
		"raw-space product of %d probability factors (%d total): chains this long underflow float64 "+
			"(Eqs. 9-14 posteriors); accumulate with model.LogProd/model.SafeLog and resolve via model.LogSumExp, "+
			"or suppress with //lint:allow probexpr <reason>", named, len(factors))
}

// checkExactCompare reports ==/!= between a probability-named float and an
// exact 0 or 1 literal.
func checkExactCompare(pass *framework.Pass, be *ast.BinaryExpr) {
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		probSide, litSide := pair[0], pair[1]
		lit, ok := exactZeroOrOne(pass.TypesInfo, litSide)
		if !ok {
			continue
		}
		if isFloat(pass.TypesInfo, probSide) && probNamed(probSide) {
			pass.Reportf(be.Pos(),
				"probability compared against exact %s: model probabilities are clamped to "+
					"[ProbEpsilon, 1-ProbEpsilon] (model.ClampProb) and never reach %s exactly; "+
					"compare against the epsilon bounds or with a tolerance, or suppress with //lint:allow probexpr <reason>",
				lit, lit)
			return
		}
	}
}

// flattenMul appends the leaf factors of a *-chain to out.
func flattenMul(e ast.Expr, out *[]ast.Expr) {
	switch v := e.(type) {
	case *ast.ParenExpr:
		flattenMul(v.X, out)
	case *ast.BinaryExpr:
		if v.Op == token.MUL {
			flattenMul(v.X, out)
			flattenMul(v.Y, out)
			return
		}
		*out = append(*out, v)
	default:
		*out = append(*out, e)
	}
}

// probNameRe matches the paper's parameter spellings (a, b, f, g, z, with
// optional digit suffixes), generic probability names (p, q, pi, theta,
// w0/w1 weights), and common prefixed forms (pTrue, probFalse, ...).
var probNameRe = regexp.MustCompile(`(?i)^(a|b|f|g|z|p|q|w|pi|theta|on|off)\d*$|prob|posterior|likeli|belief|credib|^p[A-Z_]`)

// probNamed reports whether the expression reads like a probability: a
// matching identifier/selector/call/index, or the complement (1 - p) of
// one.
func probNamed(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return probNamed(v.X)
	case *ast.Ident:
		return probNameRe.MatchString(v.Name)
	case *ast.SelectorExpr:
		return probNameRe.MatchString(v.Sel.Name)
	case *ast.IndexExpr:
		return probNamed(v.X)
	case *ast.CallExpr:
		switch fun := v.Fun.(type) {
		case *ast.Ident:
			return probNameRe.MatchString(fun.Name)
		case *ast.SelectorExpr:
			return probNameRe.MatchString(fun.Sel.Name)
		}
	case *ast.BinaryExpr:
		// Complement: 1 - p is as much a probability as p.
		if v.Op == token.SUB && isUntypedOne(v.X) {
			return probNamed(v.Y)
		}
	}
	return false
}

func isUntypedOne(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && (lit.Value == "1" || lit.Value == "1.0")
}

// exactZeroOrOne reports whether e is a constant exactly equal to 0 or 1,
// returning its spelling.
func exactZeroOrOne(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return "", false
	}
	if constant.Compare(v, token.EQL, constant.MakeInt64(0)) {
		return "0", true
	}
	if constant.Compare(v, token.EQL, constant.MakeInt64(1)) {
		return "1", true
	}
	return "", false
}

// isFloat reports whether the expression's type is a floating-point kind.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
