package probexpr_test

import (
	"testing"

	"depsense/internal/analysis/analysistest"
	"depsense/internal/analysis/probexpr"
)

func TestNumericZone(t *testing.T) {
	analysistest.RunPath(t, probexpr.Analyzer, "testdata/num", "depsense/internal/model")
}

// TestNonNumericZone re-analyzes the same fixture outside the numeric
// zones: nothing may fire.
func TestNonNumericZone(t *testing.T) {
	findings := analysistest.Findings(t, probexpr.Analyzer, "testdata/num", "depsense/internal/plot")
	if len(findings) != 0 {
		t.Errorf("probexpr fired outside numeric zones: %v", findings)
	}
}
