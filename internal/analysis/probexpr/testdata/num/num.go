// Fixture analyzed under depsense/internal/model, a numeric zone: raw
// probability products of length >= 4 and exact 0/1 comparisons fire.
package fixture

// Params mimics the paper's per-source channel.
type Params struct {
	A, B, F, G float64
}

// Likelihood chains four probability-named factors in raw space.
func Likelihood(p Params, z float64) float64 {
	return p.A * p.B * p.F * z // want `raw-space product of 4 probability factors`
}

// Complements count as probabilities too.
func Complement(a, b, f, g float64) float64 {
	return (1 - a) * (1 - b) * (1 - f) * (1 - g) // want `raw-space product of 4 probability factors`
}

// Indexed per-source parameters fire as well.
func Indexed(a, b []float64) float64 {
	return a[0] * a[1] * b[0] * b[1] // want `raw-space product of 4 probability factors`
}

// Short chains stay below the underflow heuristic.
func Short(p Params) float64 {
	return p.A * p.B * p.F
}

// NonProbability names do not fire regardless of length.
func NonProbability(dx, dy, du, dv float64) float64 {
	return dx * dy * du * dv
}

// Integer products never fire.
func IntProduct(a, b, f, g int) int {
	return a * b * f * g
}

// logLikelihood is a log-space helper: the raw product here is the
// conversion point and is exempt by function name.
func logLikelihood(a, b, f, g float64) float64 {
	return a * b * f * g
}

// Justified carries an allow.
func Justified(a, b, f, g float64) float64 {
	return a * b * f * g //lint:allow probexpr tiny fixed-size product with magnitudes near 1
}

// ExactCompare tests the 0/1 literal rule.
func ExactCompare(p float64, count int) bool {
	if p == 0 { // want `probability compared against exact 0`
		return true
	}
	if p != 1.0 { // want `probability compared against exact 1`
		return false
	}
	if 0 == p { // want `probability compared against exact 0`
		return true
	}
	// Integer comparisons are fine.
	if count == 0 {
		return false
	}
	// Epsilon-aware comparison is the sanctioned pattern.
	const eps = 1e-6
	if p < eps || p > 1-eps {
		return true
	}
	//lint:allow probexpr sentinel: this probability is set to exactly -1 upstream when absent
	return p == 1
}
