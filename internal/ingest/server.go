package ingest

import (
	"errors"
	"net/http"
	"strconv"

	"depsense/internal/httpapi"
	"depsense/internal/obs"
	"depsense/internal/trace"
)

// Server is the ingestion service's HTTP surface: live rankings, queue and
// staleness status, metrics, and per-refit debug traces. It reuses the
// httpapi request middleware, so access logging and the http_* metric
// families are identical across both depsense servers.
type Server struct {
	p   *Pipeline
	mw  *httpapi.Middleware
	mux *http.ServeMux
}

// NewServer wires the pipeline's HTTP surface. The middleware shares the
// pipeline's registry, logger, and clock.
func NewServer(p *Pipeline) *Server {
	s := &Server{
		p:   p,
		mw:  httpapi.NewMiddleware(p.reg, p.log, p.clock),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.mw.Instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/v1/rankings", s.mw.Instrument("/v1/rankings", s.handleRankings))
	s.mux.HandleFunc("/statusz", s.mw.Instrument("/statusz", s.handleStatusz))
	s.mux.HandleFunc("/debug/runs", s.mw.Instrument("/debug/runs", s.handleRunsIndex))
	s.mux.HandleFunc("/debug/runs/{id}", s.mw.Instrument("/debug/runs/{id}", s.handleRunByID))
	s.mux.HandleFunc("/debug/quality", s.mw.Instrument("/debug/quality", s.handleQuality))
	s.mux.HandleFunc("/metrics", s.mw.Instrument("/metrics", s.handleMetrics))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	httpapi.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleRankings serves the latest published ranking, 503 before the first
// committed batch.
func (s *Server) handleRankings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	pub := s.p.Published()
	if pub == nil {
		httpapi.WriteError(w, http.StatusServiceUnavailable, errors.New("no ranking published yet"))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, pub)
}

// Status is the /statusz payload: the operational signals (queue pressure,
// drop counts, snapshot staleness) next to the stream's logical progress.
type Status struct {
	// Queues reports depth/capacity per bounded queue; depths are live
	// channel occupancy.
	Queues map[string]QueueStatus `json:"queues"`
	// Accepted / Dropped are the collector's cumulative tweet outcomes;
	// Batches the committed batch count.
	Accepted float64 `json:"accepted"`
	Dropped  float64 `json:"dropped"`
	Batches  float64 `json:"batches"`
	// SnapshotAgeSeconds is time since the last persisted snapshot
	// (negative when persistence is disabled or nothing is snapshotted
	// yet).
	SnapshotAgeSeconds float64 `json:"snapshotAgeSeconds"`
	// Published mirrors the latest ranking's header (nil before the
	// first batch).
	Published *Published `json:"published,omitempty"`
	// QualityAlarms counts the quality alarms fired so far (-1 when quality
	// monitoring is disabled); the latest verdict rides on
	// Published.Quality and the full view on /debug/quality.
	QualityAlarms int `json:"qualityAlarms"`
}

// QueueStatus is one bounded queue's pressure reading.
type QueueStatus struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, s.status())
}

func (s *Server) status() Status {
	p := s.p
	st := Status{
		Queues:             map[string]QueueStatus{},
		Accepted:           p.reg.Counter(MetricTweets, "", obs.L("outcome", "accepted")).Value(),
		Dropped:            p.reg.Counter(MetricTweets, "", obs.L("outcome", "dropped")).Value(),
		Batches:            p.reg.Counter(MetricBatches, "").Value(),
		SnapshotAgeSeconds: -1,
		Published:          p.Published(),
		QualityAlarms:      -1,
	}
	if p.qual != nil {
		st.QualityAlarms = len(p.qual.Alarms())
	}
	if p.rawCh != nil {
		st.Queues["raw"] = QueueStatus{Depth: len(p.rawCh), Capacity: cap(p.rawCh)}
	}
	if p.batchCh != nil {
		st.Queues["batch"] = QueueStatus{Depth: len(p.batchCh), Capacity: cap(p.batchCh)}
	}
	if last := p.lastSnapshotNS.Load(); last != 0 {
		st.SnapshotAgeSeconds = float64(p.clock().UnixNano()-last) / 1e9
		if st.SnapshotAgeSeconds < 0 {
			st.SnapshotAgeSeconds = 0
		}
	}
	return st
}

// handleMetrics refreshes the scrape-time gauges (queue depths, snapshot
// age) and serves the registry. The stream-level gauges refresh per fit;
// between fits they read as of the last committed batch.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := s.p
	if p.rawCh != nil {
		p.reg.Gauge(MetricQueueDepth, "Bounded inter-stage queue depth.",
			obs.L("queue", "raw")).Set(float64(len(p.rawCh)))
	}
	if p.batchCh != nil {
		p.reg.Gauge(MetricQueueDepth, "Bounded inter-stage queue depth.",
			obs.L("queue", "batch")).Set(float64(len(p.batchCh)))
	}
	p.refreshSnapshotAge()
	p.reg.Handler().ServeHTTP(w, r)
}

// handleQuality serves the estimation-quality report: the latest verdict
// plus the cumulative alarm history. 404 when quality monitoring is
// disabled, 503 before the first refit.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	m := s.p.Quality()
	if m == nil {
		httpapi.WriteError(w, http.StatusNotFound, errors.New("quality monitoring disabled"))
		return
	}
	rep := m.Report()
	if rep.Latest == nil {
		httpapi.WriteError(w, http.StatusServiceUnavailable, errors.New("no refit observed yet"))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, rep)
}

// handleRunsIndex serves the flight recorder's refit-trace index, newest
// first.
func (s *Server) handleRunsIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	added, evicted := s.p.flight.Stats()
	httpapi.WriteJSON(w, http.StatusOK, struct {
		Runs    []trace.Summary `json:"runs"`
		Added   uint64          `json:"added"`
		Evicted uint64          `json:"evicted"`
	}{Runs: s.p.flight.Index(), Added: added, Evicted: evicted})
}

// handleRunByID serves one retained refit trace in full.
func (s *Server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	id := r.PathValue("id")
	t, ok := s.p.flight.Get(id)
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, errors.New("no retained trace with id "+strconv.Quote(id)))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, t)
}
