package ingest

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"depsense/internal/claims"
	"depsense/internal/cluster"
	"depsense/internal/depgraph"
	"depsense/internal/obs"
	"depsense/internal/qual"
	"depsense/internal/runctx"
	"depsense/internal/stream"
	"depsense/internal/trace"
)

// Pipeline is the staged ingestion service. Construct with New (which
// replays any persisted state), then Run it; the stages communicate over
// bounded channels and share no mutable state except through them.
type Pipeline struct {
	opts   Options
	reg    *obs.Registry
	log    *slog.Logger
	clock  func() time.Time
	flight *trace.FlightRecorder
	source Source
	qual   *qual.Monitor // nil when quality monitoring is disabled

	// inc and texts are owned by the clusterer stage while Run is live (the
	// estimator stage sees cluster state only via Batch.ClusterState);
	// est and the claim log are owned by the estimator stage. New touches
	// everything single-threaded during recovery.
	inc   *cluster.Incremental
	texts []string
	est   *stream.Estimator

	batchSeq  int // next batch seq to commit
	tweets    int // cumulative accepted tweets committed
	resumeSeq int // first source seq not yet committed

	wal              *walFile
	lastClusterState *cluster.IncrementalState
	lastSnapshotNS   atomic.Int64

	published atomic.Pointer[Published]

	rawCh   chan Tweet
	batchCh chan Batch
}

// New builds a pipeline over the source. When opts.Dir is set, it replays
// the persisted snapshot and claim log first (refitting any batches
// committed after the last snapshot), so the returned pipeline resumes
// exactly where the previous process stopped; recovery refits run under
// ctx.
func New(ctx context.Context, source Source, opts Options) (*Pipeline, error) {
	o := opts.withDefaults()
	p := &Pipeline{
		opts:   o,
		reg:    o.Metrics,
		log:    o.Logger,
		clock:  o.Clock,
		source: source,
	}
	p.flight = trace.NewFlightRecorder(o.TraceBuffer, o.TraceBuffer/4)
	// The inter-stage queues exist from construction so the HTTP layer can
	// report their occupancy before and during Run without racing it.
	p.rawCh = make(chan Tweet, o.RawQueue)
	p.batchCh = make(chan Batch, o.BatchQueue)

	streamOpts := o.Stream
	streamOpts.Metrics = p.reg
	streamOpts.Clock = p.clock
	if o.Quality != nil {
		qo := *o.Quality
		qo.Metrics = p.reg
		qo.Clock = p.clock
		qo.Flight = p.flight
		if qo.SpillDir == "" {
			qo.SpillDir = o.TraceDir
		}
		p.qual = qual.NewMonitor(qo)
		// The hook runs on the estimator stage's single goroutine (and on
		// the recovery goroutine before Run), so verdict ticks follow
		// commit order deterministically.
		streamOpts.OnRefit = func(ctx context.Context, ev stream.RefitEvent) {
			if _, err := p.qual.ObserveRefit(ctx, qual.Refit{
				Result:  ev.Result,
				Dataset: ev.Dataset,
				Edges:   ev.Edges,
			}); err != nil {
				p.log.Error("quality spill failed", "err", err)
			}
		}
	}
	p.est = stream.New(streamOpts)
	p.inc = o.Leader.Incremental()
	p.lastClusterState = p.inc.State()

	if o.Dir != "" {
		if err := p.recover(ctx, streamOpts); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Published returns the latest published ranking, or nil before the first
// committed batch.
func (p *Pipeline) Published() *Published { return p.published.Load() }

// Metrics returns the pipeline's registry.
func (p *Pipeline) Metrics() *obs.Registry { return p.reg }

// Flight returns the per-refit flight recorder backing /debug/runs.
func (p *Pipeline) Flight() *trace.FlightRecorder { return p.flight }

// Quality returns the estimation-quality monitor, nil when disabled.
func (p *Pipeline) Quality() *qual.Monitor { return p.qual }

// Run consumes the source until it is exhausted (returning nil, after a
// final snapshot) or ctx is cancelled (returning the cancellation cause —
// deliberately crash-equivalent: no final snapshot is written, and restart
// recovers from the claim log exactly as it would from a kill). Run may be
// called at most once per pipeline.
func (p *Pipeline) Run(ctx context.Context) error {
	if s, ok := p.source.(Seeker); ok {
		s.Seek(p.resumeSeq)
	}
	pubCh := make(chan *Published, 1)

	p.reg.Gauge(MetricQueueCapacity, "Bounded inter-stage queue capacity.",
		obs.L("queue", "raw")).Set(float64(cap(p.rawCh)))
	p.reg.Gauge(MetricQueueCapacity, "Bounded inter-stage queue capacity.",
		obs.L("queue", "batch")).Set(float64(cap(p.batchCh)))

	var wg sync.WaitGroup
	var commitErr error // written by the estimator goroutine only
	wg.Add(4)
	go func() { defer wg.Done(); p.collector(ctx) }()
	go func() { defer wg.Done(); p.clusterer(ctx) }()
	go func() { defer wg.Done(); commitErr = p.estimator(ctx, pubCh) }()
	go func() { defer wg.Done(); p.publisher(ctx, pubCh) }()
	wg.Wait()

	if p.wal != nil {
		if err := p.wal.Close(); err != nil && commitErr == nil {
			commitErr = err
		}
		p.wal = nil
	}
	if commitErr != nil {
		return commitErr
	}
	return ctx.Err()
}

// collector pulls raw tweets from the source into the bounded raw queue.
// Under overload it sheds (drops, counted) rather than blocking, so a slow
// estimator degrades coverage, never liveness — unless DisableShedding
// selects lossless backpressure all the way to the source.
func (p *Pipeline) collector(ctx context.Context) {
	defer close(p.rawCh)
	accepted := p.reg.Counter(MetricTweets, "Raw tweets by outcome.", obs.L("outcome", "accepted"))
	dropped := p.reg.Counter(MetricTweets, "Raw tweets by outcome.", obs.L("outcome", "dropped"))
	depth := p.reg.Gauge(MetricQueueDepth, "Bounded inter-stage queue depth.", obs.L("queue", "raw"))
	for {
		if ctx.Err() != nil {
			return
		}
		tw, ok := p.source.Next(ctx)
		if !ok {
			return
		}
		if p.opts.DisableShedding {
			select {
			case p.rawCh <- tw:
				accepted.Inc()
			case <-ctx.Done():
				return
			}
		} else {
			select {
			case p.rawCh <- tw:
				accepted.Inc()
			default:
				// Shed policy: raw tweets are the only thing this service
				// ever drops. Batches and committed claims downstream ride
				// lossless, backpressured channels.
				dropped.Inc()
			}
		}
		depth.Set(float64(len(p.rawCh)))
	}
}

// clusterer cuts the accepted stream into BatchSize batches and runs the
// incremental assertion extraction on each. The send into the batch queue
// blocks (backpressure): once a tweet is accepted, it is never dropped.
func (p *Pipeline) clusterer(ctx context.Context) {
	defer close(p.batchCh)
	depth := p.reg.Gauge(MetricQueueDepth, "Bounded inter-stage queue depth.", obs.L("queue", "batch"))
	stageSec := p.reg.Histogram(MetricStageSeconds,
		"Per-batch pipeline stage duration in seconds.", nil, obs.L("stage", "cluster"))
	nextSeq := p.batchSeq
	var pending []Tweet
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		start := p.clock()
		b := p.deriveBatch(nextSeq, pending)
		stageSec.Observe(p.clock().Sub(start).Seconds())
		select {
		case p.batchCh <- b:
			nextSeq++
			pending = nil
			depth.Set(float64(len(p.batchCh)))
			return true
		case <-ctx.Done():
			return false
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case tw, ok := <-p.rawCh:
			if !ok {
				flush()
				return
			}
			pending = append(pending, tw)
			if len(pending) >= p.opts.BatchSize {
				if !flush() {
					return
				}
			}
		}
	}
}

// deriveBatch runs the assertion extraction for one batch: tokenizing,
// incremental clustering (stable ids), claim events, and retweet-derived
// follow edges. Recovery replays logged tweets through this same function,
// so a replayed batch is identical to the live one by construction.
func (p *Pipeline) deriveBatch(seq int, tweets []Tweet) Batch {
	b := Batch{Seq: seq, Tweets: tweets}
	for _, tw := range tweets {
		toks := cluster.Tokenize(tw.Text)
		before := p.inc.NumClusters()
		cid := p.inc.Add(toks)
		if p.inc.NumClusters() > before {
			b.NewTexts = append(b.NewTexts, tw.Text)
		}
		b.Events = append(b.Events, depgraph.Event{Source: tw.Source, Assertion: cid, Time: tw.Time})
		if tw.RetweetOf >= 0 && tw.RetweetOf != tw.Source {
			b.Follows = append(b.Follows, [2]int{tw.Source, tw.RetweetOf})
		}
	}
	b.ClusterState = p.inc.State()
	return b
}

// estimator commits batches: write-ahead log first (fsynced), then refit,
// then publish; snapshots every SnapshotEvery batches and once more on
// graceful shutdown. Returns the first commit error (cancellation mid-fit
// surfaces here).
func (p *Pipeline) estimator(ctx context.Context, pubCh chan<- *Published) error {
	defer close(pubCh)
	for {
		select {
		case <-ctx.Done():
			return nil
		case b, ok := <-p.batchCh:
			if !ok {
				if ctx.Err() != nil {
					// The clusterer closed the queue because of
					// cancellation, not stream end: crash-equivalent exit,
					// no final snapshot.
					return nil
				}
				// Source exhausted: graceful shutdown, seal the state.
				if p.opts.Dir != "" && p.batchSeq > 0 {
					if err := p.writeSnapshot(); err != nil {
						return err
					}
				}
				return nil
			}
			pub, err := p.commit(ctx, b)
			if err != nil {
				return err
			}
			select {
			case pubCh <- pub:
			case <-ctx.Done():
				return nil
			}
			if p.opts.Dir != "" && b.Seq%p.opts.SnapshotEvery == p.opts.SnapshotEvery-1 {
				if err := p.writeSnapshot(); err != nil {
					return err
				}
			}
		}
	}
}

// commit applies one batch: WAL append + sync, follow observation, refit
// (traced), and ranking assembly.
func (p *Pipeline) commit(ctx context.Context, b Batch) (*Published, error) {
	tb := trace.NewBuilder(fmt.Sprintf("batch-%06d", b.Seq), "ingest", p.clock)
	tb.SetAttr("batch", fmt.Sprintf("%d", b.Seq))
	tb.SetAttr("tweets", fmt.Sprintf("%d", len(b.Tweets)))

	if p.wal != nil {
		start := p.clock()
		if err := p.appendWAL(b); err != nil {
			p.finishTrace(tb, err)
			return nil, fmt.Errorf("ingest: write-ahead log batch %d: %w", b.Seq, err)
		}
		d := p.clock().Sub(start)
		tb.Stage("wal", d)
		p.reg.Histogram(MetricStageSeconds, "Per-batch pipeline stage duration in seconds.",
			nil, obs.L("stage", "wal")).Observe(d.Seconds())
	}

	for _, f := range b.Follows {
		if err := p.est.ObserveFollow(f[0], f[1]); err != nil {
			p.finishTrace(tb, err)
			return nil, fmt.Errorf("ingest: follow %v in batch %d: %w", f, b.Seq, err)
		}
	}

	fitStart := p.clock()
	fitCtx := runctx.WithHook(ctx, runctx.MultiHook(obs.HookExporter(p.reg), tb.Hook()))
	fitCtx = runctx.WithSerializedHook(fitCtx)
	res, err := p.est.AddBatchContext(fitCtx, b.Events)
	fitD := p.clock().Sub(fitStart)
	tb.Stage("fit", fitD)
	p.reg.Histogram(MetricStageSeconds, "Per-batch pipeline stage duration in seconds.",
		nil, obs.L("stage", "fit")).Observe(fitD.Seconds())
	if err != nil {
		p.finishTrace(tb, err)
		return nil, fmt.Errorf("ingest: refit batch %d: %w", b.Seq, err)
	}
	p.finishTrace(tb, nil)

	p.applyCommitted(b)
	p.reg.Counter(MetricBatches, "Committed batches.").Inc()
	p.refreshSnapshotAge()

	pub := p.buildPublished(b.Seq, res.Converged, res.Iterations)
	return pub, nil
}

// applyCommitted advances the pipeline's committed-state counters after a
// batch is durably applied (shared by live commits and recovery replay).
func (p *Pipeline) applyCommitted(b Batch) {
	p.batchSeq = b.Seq + 1
	p.tweets += len(b.Tweets)
	if n := len(b.Tweets); n > 0 {
		p.resumeSeq = b.Tweets[n-1].Seq + 1
	}
	p.texts = append(p.texts, b.NewTexts...)
	p.lastClusterState = b.ClusterState
}

// buildPublished assembles the ranking from the estimator's latest result.
func (p *Pipeline) buildPublished(batchSeq int, converged bool, iterations int) *Published {
	st := p.est.Stats()
	pub := &Published{
		Batch:           batchSeq,
		Tweets:          p.tweets,
		Sources:         st.Sources,
		Assertions:      st.Assertions,
		Claims:          st.Claims,
		Fits:            st.Fits,
		WarmFits:        st.WarmFits,
		ColdFits:        st.ColdFits,
		Converged:       converged,
		Iterations:      iterations,
		UpdatedAtUnixNS: p.clock().UnixNano(),
	}
	if p.qual != nil {
		// ObserveRefit ran synchronously inside the refit that produced
		// this ranking, so Latest() is exactly that refit's verdict.
		pub.Quality = p.qual.Latest()
	}
	res, err := p.est.Result()
	if err != nil {
		return pub
	}
	ds, err := p.est.Dataset()
	if err != nil {
		return pub
	}
	for _, j := range res.TopK(p.opts.TopK) {
		ra := RankedAssertion{Assertion: j, Posterior: res.Posterior[j]}
		if j < len(p.texts) {
			ra.Text = p.texts[j]
		}
		refs := ds.Claimants(j)
		ra.Claims = len(refs)
		for _, ref := range refs {
			if ref.Dependent {
				ra.Dependent++
			}
		}
		pub.Ranked = append(pub.Ranked, ra)
	}
	return pub
}

// publisher installs each ranking for the HTTP layer and the OnPublish
// observer.
func (p *Pipeline) publisher(ctx context.Context, pubCh <-chan *Published) {
	stageSec := p.reg.Histogram(MetricStageSeconds,
		"Per-batch pipeline stage duration in seconds.", nil, obs.L("stage", "publish"))
	for {
		select {
		case <-ctx.Done():
			return
		case pub, ok := <-pubCh:
			if !ok {
				return
			}
			start := p.clock()
			p.published.Store(pub)
			if p.opts.OnPublish != nil {
				p.opts.OnPublish(pub)
			}
			stageSec.Observe(p.clock().Sub(start).Seconds())
			p.log.LogAttrs(ctx, slog.LevelInfo, "published",
				slog.Int("batch", pub.Batch),
				slog.Int("tweets", pub.Tweets),
				slog.Int("assertions", pub.Assertions),
				slog.Int("iterations", pub.Iterations),
			)
		}
	}
}

// finishTrace seals a refit trace into the flight recorder and the
// TraceDir spill. The estimator stage is the only writer, so the spill
// needs no lock.
func (p *Pipeline) finishTrace(tb *trace.Builder, err error) {
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	t := tb.Finish(trace.StatusOf(err), errMsg)
	p.flight.Record(t)
	if p.opts.TraceDir != "" {
		if serr := spillTrace(p.opts.TraceDir, t); serr != nil {
			p.log.Error("trace spill failed", "dir", p.opts.TraceDir, "err", serr)
		}
	}
}

// refreshSnapshotAge republishes the snapshot-age gauge from the pipeline
// clock; called per committed batch and from the status endpoints.
func (p *Pipeline) refreshSnapshotAge() {
	last := p.lastSnapshotNS.Load()
	if last == 0 {
		return
	}
	age := float64(p.clock().UnixNano()-last) / float64(time.Second)
	if age < 0 {
		age = 0
	}
	p.reg.Gauge(MetricSnapshotAge, "Seconds since the last persisted snapshot.").Set(age)
}

// appendWAL logs a batch ahead of applying it: every tweet, then the commit
// marker, flushed and fsynced. After this returns, the batch survives any
// crash.
func (p *Pipeline) appendWAL(b Batch) error {
	for _, tw := range b.Tweets {
		rec := claims.LogRecord{
			Kind:      claims.RecordTweet,
			Seq:       tw.Seq,
			Source:    tw.Source,
			Time:      tw.Time,
			Text:      tw.Text,
			RetweetOf: tw.RetweetOf,
		}
		if err := p.wal.w.Append(rec); err != nil {
			return err
		}
	}
	srcSeq := p.resumeSeq - 1
	if n := len(b.Tweets); n > 0 {
		srcSeq = b.Tweets[n-1].Seq
	}
	commit := claims.LogRecord{
		Kind:      claims.RecordCommit,
		RetweetOf: -1,
		Batch:     b.Seq,
		Tweets:    p.tweets + len(b.Tweets),
		SrcSeq:    srcSeq,
	}
	if err := p.wal.w.Append(commit); err != nil {
		return err
	}
	return p.wal.Sync()
}
