package ingest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"depsense/internal/core"
	"depsense/internal/httpapi"
	"depsense/internal/stream"
	"depsense/internal/trace"
)

func servedPipeline(t *testing.T) (*Pipeline, *Server) {
	t.Helper()
	_, tweets := testTweets(t, 60, 7)
	p, err := New(context.Background(), &SliceSource{Tweets: tweets}, Options{
		Stream:          stream.Options{EM: core.Options{Seed: 5}},
		BatchSize:       32,
		DisableShedding: true,
		Dir:             t.TempDir(),
		SnapshotEvery:   2,
		TraceBuffer:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, NewServer(p)
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestServerRankingsLifecycle(t *testing.T) {
	p, srv := servedPipeline(t)

	// Before any batch: healthy, but no ranking.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	if rec := get(t, srv, "/v1/rankings"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/rankings before first batch = %d, want 503", rec.Code)
	}

	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	rec := get(t, srv, "/v1/rankings")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/rankings = %d: %s", rec.Code, rec.Body)
	}
	var pub Published
	if err := json.Unmarshal(rec.Body.Bytes(), &pub); err != nil {
		t.Fatal(err)
	}
	if len(pub.Ranked) == 0 || pub.Tweets == 0 {
		t.Fatalf("published ranking is empty: %+v", pub)
	}
	want := p.Published()
	if pub.Batch != want.Batch || pub.Fits != want.Fits {
		t.Fatalf("served ranking (batch %d) != published (batch %d)", pub.Batch, want.Batch)
	}

	// POST is rejected.
	post := httptest.NewRecorder()
	srv.ServeHTTP(post, httptest.NewRequest(http.MethodPost, "/v1/rankings", nil))
	if post.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/rankings = %d, want 405", post.Code)
	}
}

func TestServerStatusz(t *testing.T) {
	p, srv := servedPipeline(t)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := get(t, srv, "/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/statusz = %d: %s", rec.Code, rec.Body)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted == 0 || st.Dropped != 0 || st.Batches == 0 {
		t.Fatalf("statusz counters: %+v", st)
	}
	if st.Queues["raw"].Capacity != 1024 || st.Queues["batch"].Capacity != 4 {
		t.Fatalf("statusz queues: %+v", st.Queues)
	}
	if st.SnapshotAgeSeconds < 0 {
		t.Fatalf("snapshot age = %v, want >= 0 after a graceful run", st.SnapshotAgeSeconds)
	}
	if st.Published == nil {
		t.Fatal("statusz has no published header")
	}
}

func TestServerMetricsAndDebugRuns(t *testing.T) {
	p, srv := servedPipeline(t)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A completed request first, so the http_* request series exist.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, name := range []string{
		MetricTweets, MetricBatches, MetricQueueDepth, MetricQueueCapacity,
		MetricSnapshots, MetricSnapshotAge,
		stream.MetricSources, stream.MetricLastRefitAge,
		httpapi.MetricRequests,
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}

	// The flight recorder serves per-refit traces.
	recIdx := get(t, srv, "/debug/runs")
	if recIdx.Code != http.StatusOK {
		t.Fatalf("/debug/runs = %d", recIdx.Code)
	}
	var idx struct {
		Runs []trace.Summary `json:"runs"`
	}
	if err := json.Unmarshal(recIdx.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Runs) == 0 {
		t.Fatal("/debug/runs is empty after a run")
	}
	one := get(t, srv, "/debug/runs/"+idx.Runs[0].ID)
	if one.Code != http.StatusOK {
		t.Fatalf("/debug/runs/{id} = %d", one.Code)
	}
	if miss := get(t, srv, "/debug/runs/nope"); miss.Code != http.StatusNotFound {
		t.Fatalf("/debug/runs/nope = %d, want 404", miss.Code)
	}
}

// TestServerStatuszSnapshotAgeClock pins the snapshot-age plumbing under an
// injected clock: zero right after the run's final snapshot (the clock
// never moved), the true staleness once time passes, and the same value
// republished into the gauge by a /metrics scrape.
func TestServerStatuszSnapshotAgeClock(t *testing.T) {
	var nowNS atomic.Int64
	nowNS.Store(time.Unix(1700000000, 0).UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNS.Load()) }

	_, tweets := testTweets(t, 60, 7)
	p, err := New(context.Background(), &SliceSource{Tweets: tweets}, Options{
		Stream:          stream.Options{EM: core.Options{Seed: 5}},
		BatchSize:       32,
		DisableShedding: true,
		Dir:             t.TempDir(),
		SnapshotEvery:   2,
		Clock:           clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p)

	// Before any snapshot: explicit -1, not a fabricated zero.
	var st Status
	if err := json.Unmarshal(get(t, srv, "/statusz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotAgeSeconds != -1 {
		t.Fatalf("snapshot age before any snapshot = %v, want -1", st.SnapshotAgeSeconds)
	}

	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The clock never advanced, so the final snapshot is zero seconds old.
	if err := json.Unmarshal(get(t, srv, "/statusz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotAgeSeconds != 0 {
		t.Fatalf("snapshot age right after run = %v, want 0", st.SnapshotAgeSeconds)
	}

	// Time passes with no new snapshot: /statusz reports the staleness and
	// a /metrics scrape republishes it into the gauge.
	nowNS.Add(int64(42 * time.Second))
	if err := json.Unmarshal(get(t, srv, "/statusz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotAgeSeconds != 42 {
		t.Fatalf("snapshot age 42s later = %v, want 42", st.SnapshotAgeSeconds)
	}
	if rec := get(t, srv, "/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if got := p.reg.Gauge(MetricSnapshotAge, "").Value(); got != 42 {
		t.Fatalf("snapshot-age gauge after scrape = %v, want 42", got)
	}

	// A backwards clock jump clamps at zero instead of going negative.
	nowNS.Add(-int64(time.Hour))
	if err := json.Unmarshal(get(t, srv, "/statusz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotAgeSeconds != 0 {
		t.Fatalf("snapshot age after backwards jump = %v, want clamp to 0", st.SnapshotAgeSeconds)
	}
}
