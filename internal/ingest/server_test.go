package ingest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"depsense/internal/core"
	"depsense/internal/httpapi"
	"depsense/internal/stream"
	"depsense/internal/trace"
)

func servedPipeline(t *testing.T) (*Pipeline, *Server) {
	t.Helper()
	_, tweets := testTweets(t, 60, 7)
	p, err := New(context.Background(), &SliceSource{Tweets: tweets}, Options{
		Stream:          stream.Options{EM: core.Options{Seed: 5}},
		BatchSize:       32,
		DisableShedding: true,
		Dir:             t.TempDir(),
		SnapshotEvery:   2,
		TraceBuffer:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, NewServer(p)
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestServerRankingsLifecycle(t *testing.T) {
	p, srv := servedPipeline(t)

	// Before any batch: healthy, but no ranking.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	if rec := get(t, srv, "/v1/rankings"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/rankings before first batch = %d, want 503", rec.Code)
	}

	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	rec := get(t, srv, "/v1/rankings")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/rankings = %d: %s", rec.Code, rec.Body)
	}
	var pub Published
	if err := json.Unmarshal(rec.Body.Bytes(), &pub); err != nil {
		t.Fatal(err)
	}
	if len(pub.Ranked) == 0 || pub.Tweets == 0 {
		t.Fatalf("published ranking is empty: %+v", pub)
	}
	want := p.Published()
	if pub.Batch != want.Batch || pub.Fits != want.Fits {
		t.Fatalf("served ranking (batch %d) != published (batch %d)", pub.Batch, want.Batch)
	}

	// POST is rejected.
	post := httptest.NewRecorder()
	srv.ServeHTTP(post, httptest.NewRequest(http.MethodPost, "/v1/rankings", nil))
	if post.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/rankings = %d, want 405", post.Code)
	}
}

func TestServerStatusz(t *testing.T) {
	p, srv := servedPipeline(t)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := get(t, srv, "/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/statusz = %d: %s", rec.Code, rec.Body)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted == 0 || st.Dropped != 0 || st.Batches == 0 {
		t.Fatalf("statusz counters: %+v", st)
	}
	if st.Queues["raw"].Capacity != 1024 || st.Queues["batch"].Capacity != 4 {
		t.Fatalf("statusz queues: %+v", st.Queues)
	}
	if st.SnapshotAgeSeconds < 0 {
		t.Fatalf("snapshot age = %v, want >= 0 after a graceful run", st.SnapshotAgeSeconds)
	}
	if st.Published == nil {
		t.Fatal("statusz has no published header")
	}
}

func TestServerMetricsAndDebugRuns(t *testing.T) {
	p, srv := servedPipeline(t)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A completed request first, so the http_* request series exist.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, name := range []string{
		MetricTweets, MetricBatches, MetricQueueDepth, MetricQueueCapacity,
		MetricSnapshots, MetricSnapshotAge,
		stream.MetricSources, stream.MetricLastRefitAge,
		httpapi.MetricRequests,
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}

	// The flight recorder serves per-refit traces.
	recIdx := get(t, srv, "/debug/runs")
	if recIdx.Code != http.StatusOK {
		t.Fatalf("/debug/runs = %d", recIdx.Code)
	}
	var idx struct {
		Runs []trace.Summary `json:"runs"`
	}
	if err := json.Unmarshal(recIdx.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Runs) == 0 {
		t.Fatal("/debug/runs is empty after a run")
	}
	one := get(t, srv, "/debug/runs/"+idx.Runs[0].ID)
	if one.Code != http.StatusOK {
		t.Fatalf("/debug/runs/{id} = %d", one.Code)
	}
	if miss := get(t, srv, "/debug/runs/nope"); miss.Code != http.StatusNotFound {
		t.Fatalf("/debug/runs/nope = %d, want 404", miss.Code)
	}
}
