package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"depsense/internal/core"
	"depsense/internal/qual"
	"depsense/internal/randutil"
	"depsense/internal/stream"
	"depsense/internal/twittersim"
)

// qualBatch is the e2e pipeline batch size; with the dense scenario's 960
// claims the run refits 30 times, and the flip at claim 640 lands in batch
// qualFlipTick.
const (
	qualBatch    = 32
	qualFlipTick = 640 / qualBatch
)

// flipTweets materializes the drift-injection world: a claim-dense scenario
// (few sources, many claims each, so per-source fits are meaningful) whose
// two most prolific sources turn fabrication mill at claim 640. With
// flip=false the same scenario runs clean, which is what makes the alarm
// assertions causal: whatever fires in both runs is warm-up noise; only the
// flip run's extra alarms are drift.
func flipTweets(t *testing.T, flip bool) (*twittersim.World, []Tweet) {
	t.Helper()
	sc := twittersim.Small("Ukraine", 1000)
	sc.Sources = 24
	sc.Assertions = 120
	sc.Claims = 960
	sc.OriginalClaims = 560
	sc.ActivitySkew = 1.1
	sc.Entities = 320
	sc.Places = 90
	if flip {
		sc.FlipAtClaim = 640
		sc.FlipSources = 2
		sc.FlipReliability = 0.0
	}
	w, err := twittersim.Generate(sc, randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	src := NewFirehoseSource(w, w.Firehose(twittersim.FirehoseOptions{}))
	var tweets []Tweet
	for {
		tw, ok := src.Next(context.Background())
		if !ok {
			break
		}
		tweets = append(tweets, tw)
	}
	return w, tweets
}

// qualOptions is the monitor tuning used by the e2e tests: warmup long
// enough to ride out the estimator's cold start, a lambda that the clean
// run's settling wobble stays under after the flip point, and bound
// tracking off (covered by qual's own tests) so the alarm tick is purely a
// function of the refit sequence.
func qualOptions() *qual.Options {
	return &qual.Options{
		Window: 8, MinObs: 6,
		DriftDelta: 0.03, DriftLambda: 0.4,
		BoundEvery: -1,
	}
}

// runQualityPipeline executes the flip stream through a quality-monitored
// pipeline and returns the pipeline and its published batches.
func runQualityPipeline(t *testing.T, tweets []Tweet, workers int, dir string) (*Pipeline, []*Published) {
	t.Helper()
	var pubs []*Published
	opts := Options{
		Stream:          stream.Options{EM: core.Options{Seed: 5, Workers: workers}},
		BatchSize:       qualBatch,
		DisableShedding: true,
		TraceDir:        dir,
		Quality:         qualOptions(),
		OnPublish:       func(p *Published) { pubs = append(pubs, p) },
	}
	opts.Quality.Workers = workers
	p, err := New(context.Background(), &SliceSource{Tweets: tweets}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return p, pubs
}

// TestPipelineQualityDriftAlarm is the full-pipeline drift e2e, and it is
// differential: the same scenario runs once clean and once with two sources
// turning fabrication mill at claim 640. Both runs are deterministic, their
// alarm streams are identical before the flip tick (the warm-up wobble is
// shared bit for bit), and they diverge after it — the injection visibly
// perturbs the monitor through extraction, dedup and the estimator. An
// alarm from the divergent tail is then recovered from the flight recorder
// and the verdict spill. (The stronger flipped-source-specific causality is
// asserted at the stream layer in internal/qual's TestStreamFlipCausalAlarm;
// through the full pipeline the dedup/clustering path redistributes the
// fabrications' evidence across all sources' fits.)
func TestPipelineQualityDriftAlarm(t *testing.T) {
	_, baseTweets := flipTweets(t, false)
	basePipe, _ := runQualityPipeline(t, baseTweets, 1, t.TempDir())

	w, tweets := flipTweets(t, true)
	dir := t.TempDir()
	p, pubs := runQualityPipeline(t, tweets, 1, dir)

	m := p.Quality()
	if m == nil {
		t.Fatal("pipeline has no quality monitor despite Options.Quality")
	}
	if len(pubs) == 0 {
		t.Fatal("no published batches")
	}
	for i, pub := range pubs {
		if pub.Quality == nil || pub.Quality.Tick != i {
			t.Fatalf("published batch %d quality = %+v, want verdict tick %d", i, pub.Quality, i)
		}
	}

	// srcAlarms filters source-reliability alarms to the tick range
	// [from, to).
	srcAlarms := func(alarms []qual.Alarm, from, to int) []qual.Alarm {
		var out []qual.Alarm
		for _, a := range alarms {
			if a.Kind == qual.AlarmSourceReliability && a.Tick >= from && a.Tick < to {
				out = append(out, a)
			}
		}
		return out
	}
	const noLimit = int(^uint(0) >> 1)

	// Pre-flip the two worlds are byte-identical, and so are their alarms:
	// everything the clean run fires is cold-start settling, not drift.
	basePre := srcAlarms(basePipe.Quality().Alarms(), 0, qualFlipTick)
	flipPre := srcAlarms(m.Alarms(), 0, qualFlipTick)
	if len(basePre) != len(flipPre) {
		t.Fatalf("pre-flip alarms differ: base %d, flip %d", len(basePre), len(flipPre))
	}
	for i := range basePre {
		if basePre[i].Source != flipPre[i].Source || basePre[i].Tick != flipPre[i].Tick {
			t.Fatalf("pre-flip alarm %d differs: base %+v, flip %+v", i, basePre[i], flipPre[i])
		}
	}

	// Post-flip the alarm streams must diverge: some alarm in the flip run
	// has no (source, tick, stat) twin in the clean run. That divergence is
	// the injection's fingerprint — the worlds are identical up to claim
	// 640, so nothing else can cause it.
	key := func(a qual.Alarm) [3]float64 {
		return [3]float64{float64(a.Source), float64(a.Tick), a.Stat}
	}
	baseSet := make(map[[3]float64]bool)
	for _, a := range srcAlarms(basePipe.Quality().Alarms(), qualFlipTick, noLimit) {
		baseSet[key(a)] = true
	}
	var drift *qual.Alarm
	for _, a := range srcAlarms(m.Alarms(), qualFlipTick, noLimit) {
		if !baseSet[key(a)] {
			a := a
			drift = &a
			break
		}
	}
	if drift == nil {
		t.Fatalf("flip run's post-flip alarms are indistinguishable from the clean run's; flip alarms = %+v, flipped sources = %v, latest drift = %+v",
			m.Alarms(), w.FlippedSources, m.Latest().Drift)
	}

	// The offending window is in the flight recorder under the alarm's
	// deterministic trace id, parked in the failed ring.
	if drift.TraceID == "" {
		t.Fatal("alarm carries no trace id")
	}
	tr, ok := p.Flight().Get(drift.TraceID)
	if !ok {
		t.Fatalf("flight recorder lost alarm trace %q", drift.TraceID)
	}
	if tr.Status != qual.TraceStatusAlarm {
		t.Fatalf("alarm trace status = %q, want %q", tr.Status, qual.TraceStatusAlarm)
	}
	if len(tr.Runs) != 1 || len(tr.Runs[0].Events) != len(drift.Window) {
		t.Fatalf("alarm trace events = %+v, want window %v", tr.Runs, drift.Window)
	}

	// The verdict spill landed next to traces.jsonl and replays the run:
	// one verdict per published batch, the alarm at its recorded tick.
	spilled, err := qual.ReadFile(filepath.Join(dir, qual.SpillFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled) != len(pubs) {
		t.Fatalf("spill has %d verdicts, want %d", len(spilled), len(pubs))
	}
	sv := spilled[drift.Tick]
	found := false
	for _, a := range sv.Alarms {
		if a.Kind == drift.Kind && a.Source == drift.Source && a.TraceID == drift.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("spilled verdict %d misses the alarm: %+v", drift.Tick, sv.Alarms)
	}
}

// TestPipelineQualityWorkersEquivalence: the verdict spill is byte-identical
// at EM/monitor worker counts 1 and 4 — the quality layer inherits the
// pipeline's determinism contract.
func TestPipelineQualityWorkersEquivalence(t *testing.T) {
	_, tweets := flipTweets(t, true)
	var spills [][]byte
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		p, _ := runQualityPipeline(t, tweets, workers, dir)
		raw, err := os.ReadFile(filepath.Join(dir, qual.SpillFile))
		if err != nil {
			t.Fatal(err)
		}
		spills = append(spills, raw)
		if p.Quality().Ticks() == 0 {
			t.Fatalf("workers=%d: no verdicts", workers)
		}
	}
	if !bytes.Equal(spills[0], spills[1]) {
		t.Fatalf("verdict spill differs between Workers 1 and 4:\n%s\n---\n%s", spills[0], spills[1])
	}
}

// TestServerQualityEndpoints: /debug/quality serves the full report,
// /statusz counts the alarms, and a quality-disabled pipeline answers 404 /
// -1 instead of fabricating zeros.
func TestServerQualityEndpoints(t *testing.T) {
	_, tweets := flipTweets(t, true)
	p, _ := runQualityPipeline(t, tweets, 1, t.TempDir())
	srv := NewServer(p)

	rec := get(t, srv, "/debug/quality")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/quality = %d: %s", rec.Code, rec.Body)
	}
	var rep qual.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ticks == 0 || rep.Latest == nil {
		t.Fatalf("quality report = %+v", rep)
	}
	if len(rep.Alarms) != len(p.Quality().Alarms()) {
		t.Fatalf("report alarms = %d, monitor has %d", len(rep.Alarms), len(p.Quality().Alarms()))
	}

	st := get(t, srv, "/statusz")
	var status Status
	if err := json.Unmarshal(st.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.QualityAlarms != len(rep.Alarms) {
		t.Fatalf("statusz qualityAlarms = %d, want %d", status.QualityAlarms, len(rep.Alarms))
	}

	// Quality disabled: explicit absence, not zeros.
	_, plainTweets := testTweets(t, 60, 7)
	plain, err := New(context.Background(), &SliceSource{Tweets: plainTweets}, Options{
		Stream:          stream.Options{EM: core.Options{Seed: 5}},
		BatchSize:       32,
		DisableShedding: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	plainSrv := NewServer(plain)
	if rec := get(t, plainSrv, "/debug/quality"); rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/quality without monitor = %d, want 404", rec.Code)
	}
	var plainStatus Status
	if err := json.Unmarshal(get(t, plainSrv, "/statusz").Body.Bytes(), &plainStatus); err != nil {
		t.Fatal(err)
	}
	if plainStatus.QualityAlarms != -1 {
		t.Fatalf("statusz qualityAlarms without monitor = %d, want -1", plainStatus.QualityAlarms)
	}
}
