package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"depsense/internal/claims"
	"depsense/internal/cluster"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/obs"
	"depsense/internal/randutil"
	"depsense/internal/stream"
	"depsense/internal/twittersim"
)

// testTweets materializes a seeded world's stream as ingest tweets (via the
// firehose adapter, unpaced).
func testTweets(t *testing.T, scale int, seed int64) (*twittersim.World, []Tweet) {
	t.Helper()
	w, err := twittersim.Generate(twittersim.Small("Ukraine", scale), randutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := NewFirehoseSource(w, w.Firehose(twittersim.FirehoseOptions{}))
	var tweets []Tweet
	ctx := context.Background()
	for {
		tw, ok := src.Next(ctx)
		if !ok {
			break
		}
		tweets = append(tweets, tw)
	}
	if len(tweets) != len(w.Tweets) {
		t.Fatalf("adapter emitted %d tweets, want %d", len(tweets), len(w.Tweets))
	}
	return w, tweets
}

// directRun feeds the same tweet stream to cluster.Incremental +
// stream.Estimator by hand — the reference the pipeline must match
// bit-for-bit. Returns per-batch posteriors, top-K ids, and the text table.
func directRun(t *testing.T, tweets []Tweet, batchSize, topK int, streamOpts stream.Options) ([][]float64, [][]int, []string) {
	t.Helper()
	inc := (&cluster.Leader{}).Incremental()
	est := stream.New(streamOpts)
	var texts []string
	var posteriors [][]float64
	var rankings [][]int
	for at := 0; at < len(tweets); at += batchSize {
		end := at + batchSize
		if end > len(tweets) {
			end = len(tweets)
		}
		var events []depgraph.Event
		for _, tw := range tweets[at:end] {
			toks := cluster.Tokenize(tw.Text)
			before := inc.NumClusters()
			cid := inc.Add(toks)
			if inc.NumClusters() > before {
				texts = append(texts, tw.Text)
			}
			events = append(events, depgraph.Event{Source: tw.Source, Assertion: cid, Time: tw.Time})
			if tw.RetweetOf >= 0 && tw.RetweetOf != tw.Source {
				if err := est.ObserveFollow(tw.Source, tw.RetweetOf); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := est.AddBatch(events)
		if err != nil {
			t.Fatal(err)
		}
		posteriors = append(posteriors, append([]float64(nil), res.Posterior...))
		rankings = append(rankings, res.TopK(topK))
	}
	return posteriors, rankings, texts
}

// runPipeline executes a pipeline over the tweets and captures every
// published ranking.
func runPipeline(t *testing.T, src Source, opts Options) ([]*Published, error) {
	t.Helper()
	var pubs []*Published
	opts.OnPublish = func(p *Published) { pubs = append(pubs, p) }
	p, err := New(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pubs, p.Run(context.Background())
}

// TestPipelineMatchesDirectEstimator is the tentpole's determinism
// contract: the staged pipeline's published rankings are bit-identical to
// feeding the same batches to stream.Estimator directly — per batch, at EM
// worker counts 1 and 4.
func TestPipelineMatchesDirectEstimator(t *testing.T) {
	const batchSize, topK = 16, 50
	_, tweets := testTweets(t, 60, 7)
	streamOpts := stream.Options{EM: core.Options{Seed: 5}}
	wantPost, wantRank, wantTexts := directRun(t, tweets, batchSize, topK, streamOpts)

	var runs [][]*Published
	for _, workers := range []int{1, 4} {
		opts := Options{
			Stream:          stream.Options{EM: core.Options{Seed: 5, Workers: workers}},
			BatchSize:       batchSize,
			TopK:            topK,
			DisableShedding: true,
		}
		pubs, err := runPipeline(t, &SliceSource{Tweets: tweets}, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(pubs) != len(wantPost) {
			t.Fatalf("workers=%d: %d publishes, want %d batches", workers, len(pubs), len(wantPost))
		}
		for k, pub := range pubs {
			if pub.Batch != k {
				t.Fatalf("workers=%d: publish %d has batch seq %d", workers, k, pub.Batch)
			}
			if len(pub.Ranked) != len(wantRank[k]) {
				t.Fatalf("workers=%d batch %d: %d ranked, want %d", workers, k, len(pub.Ranked), len(wantRank[k]))
			}
			for i, ra := range pub.Ranked {
				if ra.Assertion != wantRank[k][i] {
					t.Fatalf("workers=%d batch %d rank %d: assertion %d, want %d",
						workers, k, i, ra.Assertion, wantRank[k][i])
				}
				if ra.Posterior != wantPost[k][ra.Assertion] {
					t.Fatalf("workers=%d batch %d assertion %d: posterior %v, want %v (bit-exact)",
						workers, k, ra.Assertion, ra.Posterior, wantPost[k][ra.Assertion])
				}
				if ra.Text != wantTexts[ra.Assertion] {
					t.Fatalf("workers=%d batch %d assertion %d: text %q, want %q",
						workers, k, ra.Assertion, ra.Text, wantTexts[ra.Assertion])
				}
			}
		}
		runs = append(runs, pubs)
	}

	// Worker count leaves no trace at all in the published output.
	for k := range runs[0] {
		a, b := *runs[0][k], *runs[1][k]
		a.UpdatedAtUnixNS, b.UpdatedAtUnixNS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("batch %d: published output differs between Workers=1 and Workers=4:\n%+v\n%+v", k, a, b)
		}
	}
}

// TestPipelineKillAndRestartMatchesUninterrupted is the crash/restart-warm
// contract: cancel the service mid-stream (crash-equivalent — no final
// snapshot), restart it over the same directory, and the completed run's
// persisted state is byte-identical to an uninterrupted run's.
func TestPipelineKillAndRestartMatchesUninterrupted(t *testing.T) {
	const batchSize, snapEvery, topK = 8, 2, 25
	world, _ := testTweets(t, 60, 7)
	base := func(dir string) Options {
		return Options{
			Stream:          stream.Options{EM: core.Options{Seed: 3}},
			BatchSize:       batchSize,
			SnapshotEvery:   snapEvery,
			TopK:            topK,
			DisableShedding: true,
			Dir:             dir,
		}
	}

	// Run A: uninterrupted.
	dirA := t.TempDir()
	pubsA, err := runPipeline(t, NewFirehoseSource(world, world.Firehose(twittersim.FirehoseOptions{})), base(dirA))
	if err != nil {
		t.Fatal(err)
	}
	if len(pubsA) == 0 {
		t.Fatal("run A published nothing")
	}

	// Run B: killed after the 5th publish.
	dirB := t.TempDir()
	ctxB, cancelB := context.WithCancel(context.Background())
	killed := 0
	optsB := base(dirB)
	optsB.OnPublish = func(*Published) {
		killed++
		if killed == 5 {
			cancelB()
		}
	}
	pb, err := New(context.Background(), NewFirehoseSource(world, world.Firehose(twittersim.FirehoseOptions{})), optsB)
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Run(ctxB); err == nil {
		t.Fatal("killed run reported clean shutdown")
	}
	if killed >= len(pubsA) {
		t.Fatalf("kill landed after the stream ended (%d publishes)", killed)
	}

	// Run C: restart over run B's directory; recovery replays the claim
	// log on top of the last snapshot, then the source resumes where the
	// committed stream left off.
	var pubsC []*Published
	optsC := base(dirB)
	optsC.OnPublish = func(p *Published) { pubsC = append(pubsC, p) }
	pc, err := New(context.Background(), NewFirehoseSource(world, world.Firehose(twittersim.FirehoseOptions{})), optsC)
	if err != nil {
		t.Fatal(err)
	}
	// (pc.Published() is non-nil here only when the kill landed between
	// snapshot boundaries — the replay then rebuilt a ranking; when the
	// last commit coincided with a snapshot there is nothing to replay.)
	if err := pc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(pubsC) == 0 {
		t.Fatal("run C published nothing")
	}

	// The replayed run reconverges exactly: final snapshots byte-for-byte.
	snapA, err := os.ReadFile(filepath.Join(dirA, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	snapC, err := os.ReadFile(filepath.Join(dirB, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(snapA) != string(snapC) {
		t.Fatalf("final snapshots differ after kill+restart:\nA: %d bytes\nC: %d bytes", len(snapA), len(snapC))
	}

	// And the final published ranking matches the uninterrupted run's.
	finalA, finalC := *pubsA[len(pubsA)-1], *pubsC[len(pubsC)-1]
	finalA.UpdatedAtUnixNS, finalC.UpdatedAtUnixNS = 0, 0
	if !reflect.DeepEqual(finalA, finalC) {
		t.Fatalf("final published ranking differs:\nA: %+v\nC: %+v", finalA, finalC)
	}
}

// TestPipelineRecoversTornLog: a crash mid-append leaves a truncated final
// line; recovery skips it, heals the log, and the service resumes.
func TestPipelineRecoversTornLog(t *testing.T) {
	world, _ := testTweets(t, 60, 7)
	dir := t.TempDir()
	opts := Options{
		Stream:          stream.Options{EM: core.Options{Seed: 3}},
		BatchSize:       16,
		SnapshotEvery:   1000, // no periodic snapshots: the log carries everything
		DisableShedding: true,
		Dir:             dir,
	}

	// First run: cancel after two publishes, so no snapshot exists and the
	// log is the only state.
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	opts.OnPublish = func(*Published) {
		n++
		if n == 2 {
			cancel()
		}
	}
	p, err := New(context.Background(), NewFirehoseSource(world, world.Firehose(twittersim.FirehoseOptions{})), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(ctx); err == nil {
		t.Fatal("cancelled run reported clean shutdown")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("crash-equivalent exit wrote a snapshot (err=%v)", err)
	}

	// Tear the log: a partial record with no newline, crash mid-append.
	logPath := filepath.Join(dir, logFile)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"tweet","seq":999,"sour`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: recovery reports the torn tail, heals the log, resumes.
	reg := obs.NewRegistry()
	opts.OnPublish = nil
	opts.Metrics = reg
	p2, err := New(context.Background(), NewFirehoseSource(world, world.Firehose(twittersim.FirehoseOptions{})), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricTornLog, "").Value(); got != 1 {
		t.Fatalf("torn-log counter = %v, want 1", got)
	}
	if p2.Published() == nil {
		t.Fatal("recovery replayed batches but published nothing")
	}
	// The healed log parses clean.
	if err := p2.wal.Close(); err != nil {
		t.Fatal(err)
	}
	p2.wal = nil
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	recs, torn, err := claims.ReadLog(lf)
	if err != nil {
		t.Fatal(err)
	}
	if torn != nil {
		t.Fatalf("log still torn after healing (%d bytes): %+v", len(data), torn)
	}
	if len(recs) == 0 {
		t.Fatal("healed log is empty")
	}
}

// TestPipelineShedsRawOnly: with the raw queue full, the collector drops
// raw tweets (counted) instead of blocking — and with shedding disabled it
// blocks instead.
func TestPipelineShedsRawOnly(t *testing.T) {
	reg := obs.NewRegistry()
	tweets := []Tweet{
		{Seq: 0, Source: 0, Text: "alpha beta", RetweetOf: -1},
		{Seq: 1, Source: 1, Text: "gamma delta", RetweetOf: -1},
		{Seq: 2, Source: 2, Text: "epsilon zeta", RetweetOf: -1},
	}
	p, err := New(context.Background(), &SliceSource{Tweets: tweets}, Options{
		RawQueue: 1,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// White box: run only the collector, with no clusterer draining, so
	// the one-slot raw queue fills after the first tweet.
	p.collector(context.Background())
	if got := reg.Counter(MetricTweets, "", obs.L("outcome", "accepted")).Value(); got != 1 {
		t.Fatalf("accepted = %v, want 1", got)
	}
	if got := reg.Counter(MetricTweets, "", obs.L("outcome", "dropped")).Value(); got != 2 {
		t.Fatalf("dropped = %v, want 2", got)
	}

	// Lossless mode blocks instead: cancellation is the only way out.
	reg2 := obs.NewRegistry()
	p2, err := New(context.Background(), &SliceSource{Tweets: tweets}, Options{
		RawQueue:        1,
		DisableShedding: true,
		Metrics:         reg2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p2.collector(ctx)
		close(done)
	}()
	// The collector must be blocked, not dropping.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("lossless collector finished with a full queue")
	default:
	}
	cancel()
	<-done
	if got := reg2.Counter(MetricTweets, "", obs.L("outcome", "dropped")).Value(); got != 0 {
		t.Fatalf("lossless mode dropped %v tweets", got)
	}
}

// TestPipelineQueueAndBatchTelemetry: committed batches, queue capacity
// gauges, and per-stage histograms land in the registry.
func TestPipelineQueueAndBatchTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	_, tweets := testTweets(t, 60, 7)
	opts := Options{
		Stream:          stream.Options{EM: core.Options{Seed: 5}},
		BatchSize:       32,
		DisableShedding: true,
		Metrics:         reg,
		TraceBuffer:     8,
	}
	var pubs []*Published
	opts.OnPublish = func(p *Published) { pubs = append(pubs, p) }
	p, err := New(context.Background(), &SliceSource{Tweets: tweets}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantBatches := (len(tweets) + 31) / 32
	if got := reg.Counter(MetricBatches, "").Value(); got != float64(wantBatches) {
		t.Fatalf("batches counter = %v, want %d", got, wantBatches)
	}
	if got := reg.Gauge(MetricQueueCapacity, "", obs.L("queue", "raw")).Value(); got != 1024 {
		t.Fatalf("raw capacity gauge = %v, want 1024", got)
	}
	for _, stage := range []string{"cluster", "wal", "fit", "publish"} {
		h := reg.Histogram(MetricStageSeconds, "", nil, obs.L("stage", stage))
		want := uint64(wantBatches)
		if stage == "wal" {
			want = 0 // persistence disabled
		}
		if h.Count() != want {
			t.Fatalf("stage %q histogram count = %d, want %d", stage, h.Count(), want)
		}
	}
	// Stream gauges rode along via the estimator.
	last := pubs[len(pubs)-1]
	if got := reg.Gauge(stream.MetricSources, "").Value(); got != float64(last.Sources) {
		t.Fatalf("sources gauge = %v, want %d", got, last.Sources)
	}
	// One refit trace per batch in the flight recorder.
	if got := p.Flight().Len(); got != wantBatches {
		t.Fatalf("flight recorder retains %d traces, want %d", got, wantBatches)
	}
}
