// Package ingest is the continuous ingestion service: a staged worker
// pipeline that turns a raw tweet stream into continuously refreshed
// credibility rankings, 24/7.
//
// The pipeline has four stages connected by bounded channels:
//
//	collector -> clusterer -> estimator -> publisher
//
// The collector pulls raw tweets from a Source; under overload it sheds raw
// tweets (counted, never silently) so the stages downstream of clustering
// are never starved by an unbounded backlog. The clusterer owns an
// incremental leader clusterer (stable assertion ids across batches) and
// cuts the stream into fixed-size batches. The estimator owns a
// stream.Estimator and a write-ahead claim log: every batch is logged and
// fsynced before it is fitted, so committed claims are never lost — the
// drop policy degrades raw input first, committed claims never. The
// publisher exposes the latest ranking through an atomic pointer and the
// HTTP layer.
//
// Determinism contract: given the same seeded firehose and batch
// boundaries, the published rankings are bit-identical to feeding the same
// batches to stream.Estimator directly, at any EM worker count; and after a
// crash, replaying the claim log on top of the latest snapshot reconverges
// to exactly the uninterrupted run's state (see DESIGN.md §12).
package ingest

import (
	"context"
	"log/slog"
	"time"

	"depsense/internal/cluster"
	"depsense/internal/depgraph"
	"depsense/internal/obs"
	"depsense/internal/qual"
	"depsense/internal/stream"
	"depsense/internal/twittersim"
)

// Metric names exported by the pipeline (DESIGN.md §10 has the catalog).
const (
	// MetricTweets counts raw tweets by outcome ("accepted" entered the
	// pipeline, "dropped" was shed under overload).
	MetricTweets = "depsense_ingest_tweets_total"
	// MetricQueueDepth / MetricQueueCapacity gauge the bounded inter-stage
	// queues, labeled queue="raw"/"batch".
	MetricQueueDepth    = "depsense_ingest_queue_depth"
	MetricQueueCapacity = "depsense_ingest_queue_capacity"
	// MetricBatches counts committed batches.
	MetricBatches = "depsense_ingest_batches_total"
	// MetricStageSeconds is the per-batch stage-duration histogram, labeled
	// stage="cluster"/"wal"/"fit"/"publish".
	MetricStageSeconds = "depsense_ingest_stage_duration_seconds"
	// MetricSnapshots counts persisted snapshots; MetricSnapshotAge gauges
	// seconds since the last one (refreshed per committed batch).
	MetricSnapshots   = "depsense_ingest_snapshots_total"
	MetricSnapshotAge = "depsense_ingest_snapshot_age_seconds"
	// MetricReplayedBatches counts batches recovered from the claim log on
	// start; MetricTornLog counts truncated log tails healed.
	MetricReplayedBatches = "depsense_ingest_replayed_batches_total"
	MetricTornLog         = "depsense_ingest_torn_log_total"
)

// Tweet is one raw observation entering the pipeline.
type Tweet struct {
	// Seq is the tweet's position in the source stream; the pipeline
	// persists the last committed Seq so a restart can resume the source
	// where it left off.
	Seq int
	// Source is the authoring source id.
	Source int
	// Time is the tweet's stable timestamp in Unix nanoseconds.
	Time int64
	// Text is the raw tweet text.
	Text string
	// RetweetOf is the author this tweet repeats (a follow edge
	// Source -> RetweetOf is observed), or -1 for originals.
	RetweetOf int
}

// Source is a raw tweet stream. Next blocks until a tweet is available and
// reports ok=false when the stream ends or ctx is cancelled. The pipeline
// reads from one goroutine only.
type Source interface {
	Next(ctx context.Context) (Tweet, bool)
}

// Seeker is implemented by replayable sources; the pipeline seeks to the
// first unprocessed Seq before consuming, so a warm restart does not re-read
// tweets it already committed.
type Seeker interface {
	Seek(seq int)
}

// FirehoseSource adapts a twittersim firehose to the pipeline's Source, the
// stand-in for a live tweet stream.
type FirehoseSource struct {
	world *twittersim.World
	fh    *twittersim.Firehose
}

// NewFirehoseSource wraps a firehose over its world.
func NewFirehoseSource(w *twittersim.World, fh *twittersim.Firehose) *FirehoseSource {
	return &FirehoseSource{world: w, fh: fh}
}

// Next implements Source.
func (s *FirehoseSource) Next(ctx context.Context) (Tweet, bool) {
	tt, ok := s.fh.Next(ctx)
	if !ok {
		return Tweet{}, false
	}
	return Tweet{
		Seq:       tt.ID,
		Source:    tt.Source,
		Time:      tt.Time.UnixNano(),
		Text:      tt.Text,
		RetweetOf: s.world.RetweetedSource(tt.Tweet),
	}, true
}

// Seek implements Seeker (firehose tweet ids are stream positions).
func (s *FirehoseSource) Seek(seq int) { s.fh.Seek(seq) }

// SliceSource replays a fixed tweet slice, for tests and file-fed runs.
type SliceSource struct {
	Tweets []Tweet
	next   int
}

// Next implements Source.
func (s *SliceSource) Next(ctx context.Context) (Tweet, bool) {
	if s.next >= len(s.Tweets) || ctx.Err() != nil {
		return Tweet{}, false
	}
	t := s.Tweets[s.next]
	s.next++
	return t, true
}

// Seek implements Seeker, interpreting seq as the slice position.
func (s *SliceSource) Seek(seq int) {
	if seq < 0 {
		seq = 0
	}
	if seq > len(s.Tweets) {
		seq = len(s.Tweets)
	}
	s.next = seq
}

// Batch is one unit of work cut by the clusterer and committed by the
// estimator.
type Batch struct {
	// Seq numbers committed batches from zero.
	Seq int
	// Tweets are the accepted raw tweets, in stream order.
	Tweets []Tweet
	// Events are the claim events (assertion = stable cluster id).
	Events []depgraph.Event
	// Follows are the [follower, followee] edges observed via retweets.
	Follows [][2]int
	// NewTexts are the representative texts of clusters founded by this
	// batch, in founding order; the estimator appends them to its
	// assertion-text table.
	NewTexts []string
	// ClusterState is the clusterer's state at this batch boundary,
	// attached only to batches whose commit triggers a snapshot.
	ClusterState *cluster.IncrementalState
}

// RankedAssertion is one entry of a published ranking.
type RankedAssertion struct {
	// Assertion is the stable cluster id.
	Assertion int `json:"assertion"`
	// Posterior is the estimated probability the assertion is true.
	Posterior float64 `json:"posterior"`
	// Text is the founding tweet's text, the assertion's representative.
	Text string `json:"text"`
	// Claims counts sources asserting it; Dependent how many of those were
	// flagged as dependent repeats.
	Claims    int `json:"claims"`
	Dependent int `json:"dependent"`
}

// Published is the pipeline's output after each committed batch.
type Published struct {
	// Batch is the seq of the batch this ranking reflects; Tweets the
	// cumulative accepted tweets through it.
	Batch  int `json:"batch"`
	Tweets int `json:"tweets"`
	// Stream statistics at publish time.
	Sources    int `json:"sources"`
	Assertions int `json:"assertions"`
	Claims     int `json:"claims"`
	Fits       int `json:"fits"`
	WarmFits   int `json:"warmFits"`
	ColdFits   int `json:"coldFits"`
	// Converged / Iterations describe the refit behind this ranking.
	Converged  bool `json:"converged"`
	Iterations int  `json:"iterations"`
	// Ranked is the top-K ranking, most credible first.
	Ranked []RankedAssertion `json:"ranked"`
	// Quality is the estimation-quality verdict for the refit behind this
	// ranking (nil when quality monitoring is disabled).
	Quality *qual.Verdict `json:"quality,omitempty"`
	// UpdatedAtUnixNS is the publish timestamp (pipeline clock). It is
	// operational metadata, not part of the determinism contract.
	UpdatedAtUnixNS int64 `json:"updatedAtUnixNS"`
}

// Options configures the pipeline.
type Options struct {
	// Stream configures the estimator stage (EM options, warm-refit caps).
	// Its Metrics and Clock are overridden by the pipeline's.
	Stream stream.Options
	// Leader configures the incremental clusterer (threshold, postings
	// cap). Ignored on warm restart: the persisted cluster state carries
	// its own configuration.
	Leader cluster.Leader
	// BatchSize is the number of accepted tweets per batch (default 64).
	BatchSize int
	// RawQueue bounds the collector->clusterer queue (default 1024). When
	// full, raw tweets are shed (counted) unless DisableShedding.
	RawQueue int
	// BatchQueue bounds the clusterer->estimator queue (default 4); a full
	// queue backpressures the clusterer, never drops.
	BatchQueue int
	// DisableShedding makes the collector block instead of dropping when
	// the raw queue is full — lossless mode for replays and tests.
	DisableShedding bool
	// TopK bounds the published ranking (default 100).
	TopK int
	// Dir is the persistence directory (claim log + snapshots); empty
	// disables persistence and warm restarts.
	Dir string
	// SnapshotEvery writes a snapshot after every n-th committed batch
	// (default 16). The final state on graceful shutdown is always
	// snapshotted.
	SnapshotEvery int
	// Metrics receives pipeline and estimator telemetry; nil allocates a
	// private registry.
	Metrics *obs.Registry
	// Clock supplies timestamps (injected per the clocked-zone contract);
	// nil means the wall clock.
	Clock func() time.Time
	// Logger receives operational logs; nil discards.
	Logger *slog.Logger
	// TraceBuffer sizes the per-refit flight recorder (default
	// trace.DefaultCompleted).
	TraceBuffer int
	// TraceDir, when set, appends every refit trace to
	// TraceDir/traces.jsonl.
	TraceDir string
	// Quality, when set, attaches an estimation-quality monitor
	// (internal/qual) to the estimator stage: every refit produces a
	// verdict published alongside the ranking, surfaced on /statusz and
	// /debug/quality, with alarm windows snapshotted into the flight
	// recorder. The monitor's Metrics, Clock, and Flight are overridden by
	// the pipeline's; its SpillDir defaults to TraceDir, so verdicts land
	// in TraceDir/quality.jsonl next to the refit traces for cmd/ssqual.
	// Verdict ticks are per-process: a warm restart replays committed
	// batches through the monitor from tick zero.
	Quality *qual.Options
	// OnPublish, when set, is called synchronously with each published
	// ranking (tests use it to observe batch boundaries).
	OnPublish func(*Published)
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.RawQueue <= 0 {
		opts.RawQueue = 1024
	}
	if opts.BatchQueue <= 0 {
		opts.BatchQueue = 4
	}
	if opts.TopK <= 0 {
		opts.TopK = 100
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 16
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(discardHandler{})
	}
	return opts
}

// discardHandler drops all log records (slog.DiscardHandler arrived in Go
// 1.24; this keeps the floor lower).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
