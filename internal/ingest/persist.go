package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"depsense/internal/claims"
	"depsense/internal/cluster"
	"depsense/internal/stream"
	"depsense/internal/trace"
)

// Persistence layout inside Options.Dir:
//
//	claims.log    — append-only JSONL write-ahead log (claims codec):
//	                tweet records followed by a commit marker per batch.
//	                Synced before a batch is applied, so every applied
//	                batch is durable.
//	snapshot.json — periodic full-state snapshot: estimator, clusterer,
//	                assertion texts, counters. Written atomically
//	                (tmp + rename).
//
// Restart recovery: load the snapshot, then re-derive every batch the log
// committed after it by replaying the logged tweets through the same
// clustering/fit path as live ingestion. Records after the last commit
// marker (including a torn final line) never took effect and are dropped —
// the log is rewritten without them.
const (
	logFile      = "claims.log"
	snapshotFile = "snapshot.json"
	spillFile    = "traces.jsonl"
)

// snapshotVersion guards the persisted-state schema.
const snapshotVersion = 1

// persistedState is the snapshot.json schema.
type persistedState struct {
	Version int `json:"version"`
	// Batches is the number of committed batches the snapshot includes;
	// Tweets the cumulative accepted tweets; ResumeSeq the first source
	// seq not yet committed.
	Batches   int `json:"batches"`
	Tweets    int `json:"tweets"`
	ResumeSeq int `json:"resumeSeq"`
	// Texts is the representative text per assertion id.
	Texts   []string                  `json:"texts"`
	Cluster *cluster.IncrementalState `json:"cluster"`
	Stream  *stream.Snapshot          `json:"stream"`
}

// walFile is the open claim log plus its writer.
type walFile struct {
	f *os.File
	w *claims.LogWriter
}

func openWAL(path string) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walFile{f: f, w: claims.NewLogWriter(f)}, nil
}

// Sync flushes buffered records and forces them to stable storage.
func (w *walFile) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walFile) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// writeSnapshot persists the full pipeline state atomically. Must only run
// from the estimator stage (or single-threaded recovery), which owns every
// piece of state it captures.
func (p *Pipeline) writeSnapshot() error {
	st := persistedState{
		Version:   snapshotVersion,
		Batches:   p.batchSeq,
		Tweets:    p.tweets,
		ResumeSeq: p.resumeSeq,
		Texts:     p.texts,
		Cluster:   p.lastClusterState,
		Stream:    p.est.Snapshot(),
	}
	data, err := json.Marshal(&st)
	if err != nil {
		return fmt.Errorf("ingest: marshal snapshot: %w", err)
	}
	path := filepath.Join(p.opts.Dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: snapshot: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("ingest: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ingest: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ingest: snapshot rename: %w", err)
	}
	p.reg.Counter(MetricSnapshots, "Persisted snapshots.").Inc()
	p.lastSnapshotNS.Store(p.clock().UnixNano())
	p.refreshSnapshotAge()
	p.log.Info("snapshot written", "batches", st.Batches, "tweets", st.Tweets)
	return nil
}

// loggedBatch is one committed batch reconstructed from the claim log.
type loggedBatch struct {
	seq    int
	tweets []Tweet
	srcSeq int
}

// groupLog splits log records into committed batches plus the uncommitted
// orphan tail (records after the last commit marker).
func groupLog(recs []claims.LogRecord) (batches []loggedBatch, orphans int, err error) {
	var pending []Tweet
	for _, rec := range recs {
		switch rec.Kind {
		case claims.RecordTweet:
			pending = append(pending, Tweet{
				Seq:       rec.Seq,
				Source:    rec.Source,
				Time:      rec.Time,
				Text:      rec.Text,
				RetweetOf: rec.RetweetOf,
			})
		case claims.RecordCommit:
			if len(batches) > 0 && rec.Batch != batches[len(batches)-1].seq+1 {
				return nil, 0, fmt.Errorf("ingest: claim log commits batch %d after batch %d",
					rec.Batch, batches[len(batches)-1].seq)
			}
			batches = append(batches, loggedBatch{seq: rec.Batch, tweets: pending, srcSeq: rec.SrcSeq})
			pending = nil
		}
	}
	return batches, len(pending), nil
}

// recover rebuilds pipeline state from Options.Dir: snapshot first, then
// every batch the log committed after it, replayed through the identical
// derive/fit path as live ingestion. It finishes by rewriting the log when
// a torn tail or orphan records are found, and leaves the WAL open for
// appending.
func (p *Pipeline) recover(ctx context.Context, streamOpts stream.Options) error {
	if err := os.MkdirAll(p.opts.Dir, 0o755); err != nil {
		return fmt.Errorf("ingest: data dir: %w", err)
	}

	snapPath := filepath.Join(p.opts.Dir, snapshotFile)
	data, err := os.ReadFile(snapPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Cold start (or crash before the first snapshot): the log alone
		// carries the state.
	case err != nil:
		return fmt.Errorf("ingest: read snapshot: %w", err)
	default:
		var st persistedState
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("ingest: decode snapshot: %w", err)
		}
		if st.Version != snapshotVersion {
			return fmt.Errorf("ingest: snapshot version %d, want %d", st.Version, snapshotVersion)
		}
		inc, err := cluster.RestoreIncremental(st.Cluster)
		if err != nil {
			return fmt.Errorf("ingest: restore clusterer: %w", err)
		}
		est, err := stream.Restore(st.Stream, streamOpts)
		if err != nil {
			return fmt.Errorf("ingest: restore estimator: %w", err)
		}
		p.inc = inc
		p.est = est
		p.texts = st.Texts
		p.batchSeq = st.Batches
		p.tweets = st.Tweets
		p.resumeSeq = st.ResumeSeq
		p.lastClusterState = st.Cluster
	}

	logPath := filepath.Join(p.opts.Dir, logFile)
	var recs []claims.LogRecord
	var torn *claims.TornTail
	lf, err := os.Open(logPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
	case err != nil:
		return fmt.Errorf("ingest: open claim log: %w", err)
	default:
		recs, torn, err = claims.ReadLog(lf)
		lf.Close()
		if err != nil {
			return fmt.Errorf("ingest: replay claim log: %w", err)
		}
	}
	if torn != nil {
		p.reg.Counter(MetricTornLog, "Truncated claim-log tails healed on recovery.").Inc()
		p.log.Warn("claim log has torn tail, healing", "line", torn.Line, "bytes", torn.Bytes)
	}

	batches, orphans, err := groupLog(recs)
	if err != nil {
		return err
	}
	if orphans > 0 {
		p.log.Warn("discarding uncommitted claim-log tail", "tweets", orphans)
	}

	replayed := 0
	for _, lb := range batches {
		if lb.seq < p.batchSeq {
			continue // already inside the snapshot
		}
		if lb.seq > p.batchSeq {
			return fmt.Errorf("ingest: claim log jumps to batch %d with %d batches recovered", lb.seq, p.batchSeq)
		}
		b := p.deriveBatch(lb.seq, lb.tweets)
		for _, f := range b.Follows {
			if err := p.est.ObserveFollow(f[0], f[1]); err != nil {
				return fmt.Errorf("ingest: replay follow %v in batch %d: %w", f, b.Seq, err)
			}
		}
		if _, err := p.est.AddBatchContext(ctx, b.Events); err != nil {
			return fmt.Errorf("ingest: replay batch %d: %w", b.Seq, err)
		}
		p.applyCommitted(b)
		if lb.srcSeq >= 0 {
			p.resumeSeq = lb.srcSeq + 1
		}
		replayed++
	}
	if replayed > 0 {
		p.reg.Counter(MetricReplayedBatches, "Batches recovered from the claim log on start.").Add(float64(replayed))
		p.log.Info("replayed claim log", "batches", replayed, "tweets", p.tweets)
		// Serve the recovered ranking immediately; the refit behind it
		// already ran during replay.
		pub := p.buildPublished(p.batchSeq-1, true, 0)
		res, err := p.est.Result()
		if err == nil {
			pub.Converged = res.Converged
			pub.Iterations = res.Iterations
		}
		p.published.Store(pub)
	}

	if torn != nil || orphans > 0 {
		if err := p.rewriteLog(logPath, batches); err != nil {
			return err
		}
	}
	wal, err := openWAL(logPath)
	if err != nil {
		return fmt.Errorf("ingest: open write-ahead log: %w", err)
	}
	p.wal = wal
	return nil
}

// rewriteLog replaces the claim log with exactly the committed batches,
// dropping torn or orphan trailing records (tmp + rename, so a crash during
// healing leaves either the old or the new log, never a mix).
func (p *Pipeline) rewriteLog(path string, batches []loggedBatch) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: rewrite claim log: %w", err)
	}
	lw := claims.NewLogWriter(f)
	cum := 0
	for _, lb := range batches {
		for _, tw := range lb.tweets {
			rec := claims.LogRecord{
				Kind:      claims.RecordTweet,
				Seq:       tw.Seq,
				Source:    tw.Source,
				Time:      tw.Time,
				Text:      tw.Text,
				RetweetOf: tw.RetweetOf,
			}
			if err := lw.Append(rec); err != nil {
				f.Close()
				return fmt.Errorf("ingest: rewrite claim log: %w", err)
			}
		}
		cum += len(lb.tweets)
		commit := claims.LogRecord{
			Kind:      claims.RecordCommit,
			RetweetOf: -1,
			Batch:     lb.seq,
			Tweets:    cum,
			SrcSeq:    lb.srcSeq,
		}
		if err := lw.Append(commit); err != nil {
			f.Close()
			return fmt.Errorf("ingest: rewrite claim log: %w", err)
		}
	}
	if err := lw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: rewrite claim log: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: rewrite claim log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ingest: rewrite claim log: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ingest: rewrite claim log: %w", err)
	}
	p.log.Info("claim log rewritten", "batches", len(batches))
	return nil
}

// spillTrace appends one finished refit trace to dir/traces.jsonl.
func spillTrace(dir string, t *trace.Trace) error {
	f, err := os.OpenFile(filepath.Join(dir, spillFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Write(f, t)
}
