// Package report renders a fact-finding run as a self-contained HTML
// document: dataset summary, the ranked assertions with credibility bars,
// and (for the EM estimators) the most and least reliable sources with
// confidence intervals. It is the human-facing deliverable of the Apollo
// pipeline, suitable for attaching to an incident report.
package report

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/claims"
	"depsense/internal/core"
)

// Input collects everything the report shows.
type Input struct {
	// Title heads the document.
	Title string
	// Algorithm is the fact-finder's display name.
	Algorithm string
	// Pipeline is the run to render.
	Pipeline *apollo.Output
	// SourceNames optionally maps dense source ids to display names.
	SourceNames []string
	// GeneratedAt stamps the report; zero means Clock (and ultimately
	// time.Now).
	GeneratedAt time.Time
	// Clock supplies the timestamp when GeneratedAt is zero; nil means
	// time.Now. Tests inject a fixed clock so rendered reports are
	// byte-for-byte reproducible.
	Clock func() time.Time
	// MaxSources bounds the reliability table (default 15 most + 15 least
	// reliable).
	MaxSources int
}

type rankedRow struct {
	Rank      int
	Posterior float64
	Percent   int
	Text      string
	Claims    int
	Dependent int
}

type sourceRow struct {
	Name       string
	A, B       float64
	CILo, CIHi float64
	Claims     int
}

type reportData struct {
	Title       string
	Algorithm   string
	GeneratedAt string
	Summary     claims.Summary
	Converged   bool
	Iterations  int
	Ranked      []rankedRow
	TopSources  []sourceRow
	LowSources  []sourceRow
	HasSources  bool
}

// Render writes the HTML document.
func Render(w io.Writer, in Input) error {
	if in.Pipeline == nil {
		return fmt.Errorf("report: nil pipeline output")
	}
	out := in.Pipeline
	data := reportData{
		Title:      in.Title,
		Algorithm:  in.Algorithm,
		Summary:    out.Dataset.Summarize(),
		Converged:  out.Result.Converged,
		Iterations: out.Result.Iterations,
	}
	if data.Title == "" {
		data.Title = "Fact-finding report"
	}
	ts := in.GeneratedAt
	if ts.IsZero() {
		clock := in.Clock
		if clock == nil {
			clock = time.Now // the injectable default, not a bare read
		}
		ts = clock()
	}
	data.GeneratedAt = ts.UTC().Format(time.RFC3339)

	for rank, c := range out.Ranked {
		dep := 0
		for _, cl := range out.Dataset.Claimants(c) {
			if cl.Dependent {
				dep++
			}
		}
		p := out.Result.Posterior[c]
		data.Ranked = append(data.Ranked, rankedRow{
			Rank:      rank + 1,
			Posterior: p,
			Percent:   int(p*100 + 0.5),
			Text:      out.RepresentativeText[c],
			Claims:    len(out.Dataset.Claimants(c)),
			Dependent: dep,
		})
	}

	if params := out.Result.Params; params != nil {
		maxSources := in.MaxSources
		if maxSources <= 0 {
			maxSources = 15
		}
		ci, err := core.ConfidenceIntervals(out.Dataset, params, out.Result.Posterior, 0.95)
		if err != nil {
			return fmt.Errorf("report: confidence intervals: %w", err)
		}
		rows := make([]sourceRow, 0, out.Dataset.N())
		for i, s := range params.Sources {
			nClaims := len(out.Dataset.ClaimsD0(i)) + len(out.Dataset.ClaimsD1(i))
			if nClaims == 0 {
				continue
			}
			name := fmt.Sprintf("source %d", i)
			if i < len(in.SourceNames) && in.SourceNames[i] != "" {
				name = in.SourceNames[i]
			}
			rows = append(rows, sourceRow{
				Name:   name,
				A:      s.A,
				B:      s.B,
				CILo:   ci.Sources[i].A.Lo,
				CIHi:   ci.Sources[i].A.Hi,
				Claims: nClaims,
			})
		}
		sort.SliceStable(rows, func(a, b int) bool { return rows[a].A > rows[b].A })
		if len(rows) > maxSources {
			data.TopSources = rows[:maxSources]
			low := rows[len(rows)-maxSources:]
			data.LowSources = make([]sourceRow, len(low))
			copy(data.LowSources, low)
		} else {
			data.TopSources = rows
		}
		data.HasSources = len(rows) > 0
	}
	return reportTemplate.Execute(w, data)
}

var reportTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.9rem; }
th, td { text-align: left; padding: 0.35rem 0.6rem; border-bottom: 1px solid #e2e2e2; }
th { background: #f5f5f5; }
.meta { color: #555; font-size: 0.85rem; }
.bar { background: #e8eefc; height: 0.8rem; border-radius: 2px; }
.bar > div { background: #1f77b4; height: 100%; border-radius: 2px; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="meta">algorithm: {{.Algorithm}} · generated {{.GeneratedAt}} ·
{{.Summary.Sources}} sources · {{.Summary.Assertions}} assertions ·
{{.Summary.TotalClaims}} claims ({{.Summary.DependentClaims}} dependent) ·
converged: {{.Converged}} after {{.Iterations}} iterations</p>

<h2>Most credible assertions</h2>
<table>
<tr><th>#</th><th>credibility</th><th></th><th>assertion</th><th class="num">claims</th><th class="num">dependent</th></tr>
{{range .Ranked}}
<tr>
  <td>{{.Rank}}</td>
  <td class="num">{{printf "%.3f" .Posterior}}</td>
  <td style="width:8rem"><div class="bar"><div style="width:{{.Percent}}%"></div></div></td>
  <td>{{.Text}}</td>
  <td class="num">{{.Claims}}</td>
  <td class="num">{{.Dependent}}</td>
</tr>
{{end}}
</table>

{{if .HasSources}}
<h2>Most reliable sources (estimated a&#770;, 95% CI)</h2>
<table>
<tr><th>source</th><th class="num">a&#770;</th><th class="num">95% CI</th><th class="num">b&#770;</th><th class="num">claims</th></tr>
{{range .TopSources}}
<tr><td>{{.Name}}</td><td class="num">{{printf "%.3f" .A}}</td>
<td class="num">[{{printf "%.3f" .CILo}}, {{printf "%.3f" .CIHi}}]</td>
<td class="num">{{printf "%.3f" .B}}</td><td class="num">{{.Claims}}</td></tr>
{{end}}
</table>
{{if .LowSources}}
<h2>Least reliable sources</h2>
<table>
<tr><th>source</th><th class="num">a&#770;</th><th class="num">95% CI</th><th class="num">b&#770;</th><th class="num">claims</th></tr>
{{range .LowSources}}
<tr><td>{{.Name}}</td><td class="num">{{printf "%.3f" .A}}</td>
<td class="num">[{{printf "%.3f" .CILo}}, {{printf "%.3f" .CIHi}}]</td>
<td class="num">{{printf "%.3f" .B}}</td><td class="num">{{.Claims}}</td></tr>
{{end}}
</table>
{{end}}
{{end}}
</body>
</html>
`))
