package report

import (
	"strings"
	"testing"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

func pipelineOutput(t *testing.T) (*apollo.Output, string) {
	t.Helper()
	sc := twittersim.Small("Kirkuk", 40)
	w, err := twittersim.Generate(sc, randutil.New(4))
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]apollo.Message, len(w.Tweets))
	for i, tw := range w.Tweets {
		msgs[i] = apollo.Message{Source: tw.Source, Time: int64(tw.ID), Text: tw.Text}
	}
	out, err := apollo.Run(apollo.Input{
		NumSources: sc.Sources,
		Messages:   msgs,
		Graph:      w.Graph,
	}, &core.EMExt{Opts: core.Options{Seed: 1}}, apollo.Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	return out, "EM-Ext"
}

func TestRenderFullReport(t *testing.T) {
	out, alg := pipelineOutput(t)
	var sb strings.Builder
	err := Render(&sb, Input{
		Title:       "Kirkuk incident",
		Algorithm:   alg,
		Pipeline:    out,
		GeneratedAt: time.Date(2015, 3, 10, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	html := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Kirkuk incident", "EM-Ext",
		"Most credible assertions", "Most reliable sources",
		"2015-03-10T12:00:00Z", "95% CI",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if got := strings.Count(html, "<tr>"); got < 11 {
		t.Fatalf("only %d table rows", got)
	}
}

func TestRenderEscapesAssertionText(t *testing.T) {
	// A malicious tweet must not inject markup into the report.
	g := depgraph.NewGraph(2)
	out, err := apollo.Run(apollo.Input{
		NumSources: 2,
		Graph:      g,
		Messages: []apollo.Message{
			{Source: 0, Time: 1, Text: `<script>alert(1)</script> attack at plaza9 n3`},
			{Source: 1, Time: 2, Text: `quiet day near campus1 n7`},
		},
	}, &baselines.Voting{}, apollo.Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, Input{Pipeline: out, Algorithm: "Voting"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<script>") {
		t.Fatal("unescaped script tag in report")
	}
}

func TestRenderHeuristicWithoutParams(t *testing.T) {
	// Heuristic results carry no parameter estimates; the report must omit
	// the source tables rather than fail.
	g := depgraph.NewGraph(1)
	out, err := apollo.Run(apollo.Input{
		NumSources: 1,
		Graph:      g,
		Messages:   []apollo.Message{{Source: 0, Time: 1, Text: "fire near plaza2 n1"}},
	}, &baselines.Voting{}, apollo.Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, Input{Pipeline: out, Algorithm: "Voting"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Most reliable sources") {
		t.Fatal("source table rendered without parameters")
	}
}

func TestRenderNilPipeline(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, Input{}); err == nil {
		t.Fatal("nil pipeline accepted")
	}
}

func TestRenderSourceNames(t *testing.T) {
	out, _ := pipelineOutput(t)
	names := make([]string, out.Dataset.N())
	for i := range names {
		names[i] = "user_" + string(rune('a'+i%26))
	}
	var sb strings.Builder
	if err := Render(&sb, Input{Pipeline: out, Algorithm: "EM-Ext", SourceNames: names}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "user_") {
		t.Fatal("source names not used")
	}
}

// TestRenderInjectedClock verifies the injectable clock: with GeneratedAt
// zero, the timestamp must come from Clock, making two renders of the same
// run byte-for-byte identical.
func TestRenderInjectedClock(t *testing.T) {
	out, alg := pipelineOutput(t)
	fixed := time.Date(2016, 6, 27, 9, 30, 0, 0, time.UTC)
	render := func() string {
		var sb strings.Builder
		if err := Render(&sb, Input{
			Algorithm: alg,
			Pipeline:  out,
			Clock:     func() time.Time { return fixed },
		}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	if !strings.Contains(first, "2016-06-27T09:30:00Z") {
		t.Fatalf("report did not use the injected clock")
	}
	if second := render(); second != first {
		t.Fatalf("two renders with a fixed clock differ")
	}
}

// TestRenderGeneratedAtBeatsClock: an explicit GeneratedAt wins over the
// injected clock.
func TestRenderGeneratedAtBeatsClock(t *testing.T) {
	out, alg := pipelineOutput(t)
	var sb strings.Builder
	err := Render(&sb, Input{
		Algorithm:   alg,
		Pipeline:    out,
		GeneratedAt: time.Date(2015, 3, 10, 12, 0, 0, 0, time.UTC),
		Clock:       func() time.Time { return time.Date(2099, 1, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2015-03-10T12:00:00Z") {
		t.Fatalf("explicit GeneratedAt was not honored")
	}
}
