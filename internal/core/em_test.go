package core

import (
	"errors"
	"math"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/model"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{
		VariantExt:         "EM-Ext",
		VariantIndependent: "EM",
		VariantSocial:      "EM-Social",
		Variant(42):        "Variant(42)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	empty, err := claims.NewBuilder(0, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(empty, VariantExt, Options{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("want ErrEmptyDataset, got %v", err)
	}

	b := claims.NewBuilder(2, 2)
	b.AddClaim(0, 0, false)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	badInit := model.NewParams(3, 0.5)
	if _, err := Run(ds, VariantExt, Options{Init: badInit}); !errors.Is(err, ErrParamsShape) {
		t.Fatalf("want ErrParamsShape, got %v", err)
	}
	invalid := model.NewParams(2, 0.5)
	invalid.Sources[0].A = 2
	if _, err := Run(ds, VariantExt, Options{Init: invalid}); err == nil {
		t.Fatal("invalid init accepted")
	}
}

func TestPosteriorsAreProbabilities(t *testing.T) {
	w := genWorld(t, 12, 40, 321)
	for _, v := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
		res, err := Run(w.Dataset, v, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Posterior) != w.Dataset.M() {
			t.Fatalf("%v: posterior length %d", v, len(res.Posterior))
		}
		for j, p := range res.Posterior {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("%v: posterior[%d] = %v", v, j, p)
			}
		}
		if err := res.Params.Validate(); err != nil {
			t.Fatalf("%v: estimated params invalid: %v", v, err)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	w := genWorld(t, 10, 30, 99)
	a, err := Run(w.Dataset, VariantExt, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w.Dataset, VariantExt, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Posterior {
		if a.Posterior[j] != b.Posterior[j] {
			t.Fatal("same seed, different posteriors")
		}
	}
	if a.LogLikelihood != b.LogLikelihood {
		t.Fatal("same seed, different likelihood")
	}
}

// TestNearPerfectSources: with extremely reliable independent sources the
// posteriors must essentially equal ground truth.
func TestNearPerfectSources(t *testing.T) {
	cfg := synthetic.Config{
		Sources:    8,
		Assertions: 40,
		Trees:      synthetic.FixedInt(8), // all roots: no dependency at all
		TrueRatio:  synthetic.Fixed(0.5),
		POn:        synthetic.Fixed(0.95),
		PDep:       synthetic.Fixed(0.5),
		PIndepT:    synthetic.Fixed(0.97),
		PDepT:      synthetic.Fixed(0.5),
	}
	w, err := synthetic.Generate(cfg, randutil.New(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := stats.Classify(res.Decisions(0.5), w.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy < 0.95 {
		t.Fatalf("near-perfect sources gave accuracy %v", c.Accuracy)
	}
}

// TestEMExtRecoversParameters: on a large dataset the estimated channel
// parameters should approach the generating ones.
func TestEMExtRecoversParameters(t *testing.T) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 30
	cfg.Assertions = 800
	w, err := synthetic.Generate(cfg, randutil.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params.Z-w.TrueRatio) > 0.08 {
		t.Fatalf("ẑ = %v, want ≈ %v", res.Params.Z, w.TrueRatio)
	}
	var errA, errB stats.Series
	for i := range res.Params.Sources {
		errA.Add(math.Abs(res.Params.Sources[i].A - w.TrueParams.Sources[i].A))
		errB.Add(math.Abs(res.Params.Sources[i].B - w.TrueParams.Sources[i].B))
	}
	if errA.Mean() > 0.08 || errB.Mean() > 0.08 {
		t.Fatalf("mean |â-a| = %v, |b̂-b| = %v", errA.Mean(), errB.Mean())
	}
}

// TestVariantsDivergeOnDependentData: the three variants must actually
// compute different things when dependent claims exist.
func TestVariantsDivergeOnDependentData(t *testing.T) {
	w := genWorld(t, 20, 50, 17)
	if w.Dataset.NumDependentClaims() == 0 {
		t.Fatal("test world has no dependent claims")
	}
	resExt, _ := Run(w.Dataset, VariantExt, Options{Seed: 1})
	resInd, _ := Run(w.Dataset, VariantIndependent, Options{Seed: 1})
	resSoc, _ := Run(w.Dataset, VariantSocial, Options{Seed: 1})
	if samePosteriors(resExt.Posterior, resInd.Posterior) {
		t.Error("EM-Ext and EM identical on dependent data")
	}
	if samePosteriors(resInd.Posterior, resSoc.Posterior) {
		t.Error("EM and EM-Social identical on dependent data")
	}
}

// TestVariantsAgreeWithoutDependencies: with no dependent pairs at all,
// all three likelihoods coincide, so results must match closely.
func TestVariantsAgreeWithoutDependencies(t *testing.T) {
	cfg := synthetic.DefaultConfig()
	cfg.Sources = 10
	cfg.Trees = synthetic.FixedInt(10) // every source is a root
	w, err := synthetic.Generate(cfg, randutil.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if w.Dataset.NumDependentClaims() != 0 {
		t.Fatal("all-roots world has dependent claims")
	}
	resInd, _ := Run(w.Dataset, VariantIndependent, Options{Seed: 1})
	resSoc, _ := Run(w.Dataset, VariantSocial, Options{Seed: 1})
	for j := range resInd.Posterior {
		if math.Abs(resInd.Posterior[j]-resSoc.Posterior[j]) > 1e-9 {
			t.Fatalf("EM vs EM-Social differ at %d without dependencies", j)
		}
	}
}

func TestExplicitInitHonored(t *testing.T) {
	w := genWorld(t, 8, 25, 31)
	init := w.TrueParams.Clone()
	res, err := Run(w.Dataset, VariantExt, Options{Init: init, MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One iteration from truth must stay near truth.
	if math.Abs(res.Params.Z-init.Z) > 0.3 {
		t.Fatalf("explicit init ignored: ẑ = %v vs init %v", res.Params.Z, init.Z)
	}
	// The caller's init must not be mutated.
	if init.MaxAbsDiff(w.TrueParams) != 0 {
		t.Fatal("Run mutated the caller's Init")
	}
}

func TestConvergenceFlag(t *testing.T) {
	w := genWorld(t, 10, 30, 77)
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 2, MaxIters: 500, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("EM did not converge in 500 iterations")
	}
	short, err := Run(w.Dataset, VariantExt, Options{Seed: 2, MaxIters: 1, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if short.Converged {
		t.Fatal("1-iteration run reported convergence with tiny tolerance")
	}
}

// TestLikelihoodMonotone: EM's defining property — the data log-likelihood
// must not decrease across iterations (up to numerical slack). The
// smoothed M-step is a MAP-flavored update, so we test with smoothing off.
func TestLikelihoodMonotone(t *testing.T) {
	w := genWorld(t, 10, 40, 55)
	prev := math.Inf(-1)
	for iters := 1; iters <= 30; iters += 3 {
		res, err := Run(w.Dataset, VariantExt, Options{
			Seed: 4, MaxIters: iters, Tol: 1e-15, Smoothing: -1, InitMode: InitVote,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.LogLikelihood < prev-1e-6 {
			t.Fatalf("log-likelihood decreased: %v -> %v at iters=%d", prev, res.LogLikelihood, iters)
		}
		prev = res.LogLikelihood
	}
}

func TestRestartsPickBestLikelihood(t *testing.T) {
	w := genWorld(t, 15, 40, 63)
	single, err := Run(w.Dataset, VariantExt, Options{Seed: 9, InitMode: InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(w.Dataset, VariantExt, Options{Seed: 9, InitMode: InitRandom, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if multi.LogLikelihood < single.LogLikelihood-1e-9 {
		t.Fatalf("restarts returned worse likelihood: %v < %v", multi.LogLikelihood, single.LogLikelihood)
	}
}

func TestEMExtImplementsFactFinder(t *testing.T) {
	w := genWorld(t, 8, 20, 41)
	e := &EMExt{Opts: Options{Seed: 1}}
	if e.Name() != "EM-Ext" {
		t.Fatalf("Name = %q", e.Name())
	}
	res, err := e.Run(w.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK(5)) != 5 {
		t.Fatal("TopK broken")
	}
}

func samePosteriors(a, b []float64) bool {
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-12 {
			return false
		}
	}
	return true
}

func genWorld(t *testing.T, n, m int, seed int64) *synthetic.World {
	t.Helper()
	cfg := synthetic.DefaultConfig()
	cfg.Sources = n
	cfg.Assertions = m
	if cfg.Trees.Hi > n {
		cfg.Trees = synthetic.IntRange{Lo: (n + 2) / 3, Hi: (n + 1) / 2}
	}
	w, err := synthetic.Generate(cfg, randutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}
