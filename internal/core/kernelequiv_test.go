package core

import (
	"fmt"
	"math/rand"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/factfind"
)

// The kernel differential harness: the dense-reference kernel scans the
// full n×m grid and exists purely so the production sparse kernel has an
// oracle to be bit-identical against (DESIGN.md §13). Every case runs the
// full estimator — not a single step — under both kernels at Workers 1
// and 8 and demands byte-equal Result structs.

// kernelGrid is the (n, m, density, seed) case grid. Densities span
// Twitter-sparse (empty columns included) through the paper's dense
// simulation regime.
var kernelGrid = []struct {
	n, m    int
	density float64
	seed    int64
}{
	{5, 12, 0.08, 1},
	{16, 40, 0.02, 2},
	{25, 80, 0.15, 3},
	{40, 64, 0.5, 4},
	{64, 160, 0.05, 5},
	{12, 30, 0.9, 6},
}

// buildRandomDataset draws a dataset at the given claim density, with a
// mix of dependent claims and silent-dependent pairs.
func buildRandomDataset(t *testing.T, n, m int, density float64, seed int64) *claims.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := claims.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			switch {
			case rng.Float64() < density:
				b.AddClaim(i, j, rng.Float64() < 0.35)
			case rng.Float64() < density/4:
				b.MarkSilentDependent(i, j)
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestKernelEquivalence: for every grid case, variant, kernel, and worker
// count, the Result must be bit-identical to the serial sparse run.
func TestKernelEquivalence(t *testing.T) {
	for _, tc := range kernelGrid {
		ds := buildRandomDataset(t, tc.n, tc.m, tc.density, tc.seed)
		for _, v := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
			opts := Options{Seed: tc.seed, DepMode: DepModeJoint}
			ref, err := Run(ds, v, opts)
			if err != nil {
				t.Fatalf("n=%d m=%d %v ref: %v", tc.n, tc.m, v, err)
			}
			for _, kernel := range []Kernel{KernelSparse, KernelDense} {
				for _, workers := range []int{1, 8} {
					o := opts
					o.Kernel = kernel
					o.Workers = workers
					got, err := Run(ds, v, o)
					if err != nil {
						t.Fatalf("n=%d m=%d %v kernel=%v workers=%d: %v", tc.n, tc.m, v, kernel, workers, err)
					}
					assertKernelIdentical(t, ref, got, tc.n, tc.m, v, kernel, workers)
				}
			}
		}
	}
}

// TestKernelEquivalencePlugin covers EM-Ext's plug-in path (coarse
// EM-Social fit + pooled-channel re-score), which routes through
// PosteriorOpts rather than the joint iteration.
func TestKernelEquivalencePlugin(t *testing.T) {
	ds := buildRandomDataset(t, 30, 90, 0.04, 11)
	ref, err := Run(ds, VariantExt, Options{Seed: 9, DepMode: DepModePlugin})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []Kernel{KernelSparse, KernelDense} {
		for _, workers := range []int{1, 8} {
			got, err := Run(ds, VariantExt, Options{
				Seed: 9, DepMode: DepModePlugin, Kernel: kernel, Workers: workers,
			})
			if err != nil {
				t.Fatalf("kernel=%v workers=%d: %v", kernel, workers, err)
			}
			assertKernelIdentical(t, ref, got, 30, 90, VariantExt, kernel, workers)
		}
	}
}

// TestKernelEquivalenceRestartsAndScratch: restarts (serial and
// concurrent) and a reused Scratch must not perturb a single bit either.
func TestKernelEquivalenceRestartsAndScratch(t *testing.T) {
	ds := buildRandomDataset(t, 20, 50, 0.12, 13)
	ref, err := Run(ds, VariantExt, Options{Seed: 21, Restarts: 3, DepMode: DepModeJoint})
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewScratch()
	for _, kernel := range []Kernel{KernelSparse, KernelDense} {
		for _, workers := range []int{1, 8} {
			// Run twice through the same scratch: the second fit starts from
			// dirty buffers and must still match.
			for pass := 0; pass < 2; pass++ {
				got, err := Run(ds, VariantExt, Options{
					Seed: 21, Restarts: 3, DepMode: DepModeJoint,
					Kernel: kernel, Workers: workers, Scratch: scratch,
				})
				if err != nil {
					t.Fatalf("kernel=%v workers=%d pass=%d: %v", kernel, workers, pass, err)
				}
				assertKernelIdentical(t, ref, got, 20, 50, VariantExt, kernel, workers)
			}
		}
	}
}

func assertKernelIdentical(t *testing.T, ref, got *factfind.Result, n, m int, v Variant, kernel Kernel, workers int) {
	t.Helper()
	t.Run(fmt.Sprintf("n=%d_m=%d_%v_%v_w%d", n, m, v, kernel, workers), func(t *testing.T) {
		requireBitIdentical(t, ref, got)
	})
}
