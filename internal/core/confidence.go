package core

import (
	"errors"
	"fmt"
	"math"

	"depsense/internal/claims"
	"depsense/internal/model"
)

// Interval is a two-sided confidence interval for one parameter, clipped
// to [0, 1].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns the interval width.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// SourceConfidence carries the per-channel intervals of one source.
type SourceConfidence struct {
	A, B, F, G Interval
}

// Confidence quantifies the uncertainty of an estimated parameter set, in
// the spirit of the Cramér-Rao confidence bounds of Wang et al. (SECON
// 2012), the paper's reference [17].
//
// Intervals are Wald intervals from the complete-data observed Fisher
// information with the truth posteriors as soft labels: a channel rate p̂
// estimated from posterior mass N_eff in its stratum gets standard error
// sqrt(p̂(1-p̂)/N_eff). This attainable approximation ignores the extra
// uncertainty from the labels themselves being estimated, so intervals are
// slightly optimistic — exactly the accuracy/scalability trade-off [17]
// discusses.
type Confidence struct {
	Sources []SourceConfidence
	Z       Interval
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// ErrBadLevel reports an out-of-range confidence level.
var ErrBadLevel = errors.New("core: confidence level must be in (0, 1)")

// ConfidenceIntervals computes parameter confidence intervals for an
// estimated θ and its posteriors on the given dataset. Level is the
// nominal two-sided coverage (e.g. 0.95). Parameters whose stratum carries
// no posterior mass get the vacuous interval [0, 1].
func ConfidenceIntervals(ds *claims.Dataset, params *model.Params, posterior []float64, level float64) (*Confidence, error) {
	if ds.N() == 0 || ds.M() == 0 {
		return nil, ErrEmptyDataset
	}
	if params.NumSources() != ds.N() {
		return nil, fmt.Errorf("%w: params have %d sources, dataset %d",
			ErrParamsShape, params.NumSources(), ds.N())
	}
	if len(posterior) != ds.M() {
		return nil, fmt.Errorf("core: %d posteriors for %d assertions", len(posterior), ds.M())
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadLevel, level)
	}
	zCrit := normalQuantile(0.5 + level/2)

	sumZ := 0.0
	for _, z := range posterior {
		sumZ += z
	}
	sumY := float64(ds.M()) - sumZ

	out := &Confidence{Sources: make([]SourceConfidence, ds.N()), Level: level}
	for i := 0; i < ds.N(); i++ {
		var depZ, depY float64
		for _, j := range ds.ClaimsD1(i) {
			depZ += posterior[j]
			depY += 1 - posterior[j]
		}
		for _, j := range ds.SilentD1(i) {
			depZ += posterior[j]
			depY += 1 - posterior[j]
		}
		s := params.Sources[i]
		out.Sources[i] = SourceConfidence{
			A: waldInterval(s.A, sumZ-depZ, zCrit),
			B: waldInterval(s.B, sumY-depY, zCrit),
			F: waldInterval(s.F, depZ, zCrit),
			G: waldInterval(s.G, depY, zCrit),
		}
	}
	out.Z = waldInterval(params.Z, float64(ds.M()), zCrit)
	return out, nil
}

// waldInterval builds p ± z·sqrt(p(1-p)/n), clipped to [0,1]; vacuous when
// the effective sample size is (numerically) zero.
func waldInterval(p, nEff, zCrit float64) Interval {
	if nEff < 1e-9 {
		return Interval{Lo: 0, Hi: 1}
	}
	se := math.Sqrt(p * (1 - p) / nEff)
	lo := p - zCrit*se
	hi := p + zCrit*se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}
}

// normalQuantile inverts the standard normal CDF via Acklam's rational
// approximation (absolute error < 1.15e-9), sufficient for confidence
// levels.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
