package core

// Failure-injection tests: degenerate and adversarial datasets must never
// produce NaN posteriors, panics, or invalid parameters.

import (
	"math"
	"testing"
	"testing/quick"

	"depsense/internal/claims"
	"depsense/internal/model"
	"depsense/internal/randutil"
)

// checkResult asserts the structural health of an estimator output.
func checkResult(t *testing.T, ds *claims.Dataset, variant Variant) {
	t.Helper()
	res, err := Run(ds, variant, Options{Seed: 1})
	if err != nil {
		t.Fatalf("%v: %v", variant, err)
	}
	if len(res.Posterior) != ds.M() {
		t.Fatalf("%v: posterior length %d, want %d", variant, len(res.Posterior), ds.M())
	}
	for j, p := range res.Posterior {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			t.Fatalf("%v: posterior[%d] = %v", variant, j, p)
		}
	}
	if err := res.Params.Validate(); err != nil {
		t.Fatalf("%v: params: %v", variant, err)
	}
	if math.IsNaN(res.LogLikelihood) || math.IsInf(res.LogLikelihood, 1) {
		t.Fatalf("%v: log-likelihood = %v", variant, res.LogLikelihood)
	}
}

func allVariants(t *testing.T, ds *claims.Dataset) {
	t.Helper()
	for _, v := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
		checkResult(t, ds, v)
	}
}

func TestNoClaimsAtAll(t *testing.T) {
	ds, err := claims.NewBuilder(5, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	allVariants(t, ds)
}

func TestEveryPairClaimed(t *testing.T) {
	b := claims.NewBuilder(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			b.AddClaim(i, j, false)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	allVariants(t, ds)
}

func TestEverythingDependent(t *testing.T) {
	b := claims.NewBuilder(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			if (i+j)%2 == 0 {
				b.AddClaim(i, j, true)
			} else {
				b.MarkSilentDependent(i, j)
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	allVariants(t, ds)
}

func TestSingleSourceSingleAssertion(t *testing.T) {
	b := claims.NewBuilder(1, 1)
	b.AddClaim(0, 0, false)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	allVariants(t, ds)
}

func TestOneSourceManyAssertions(t *testing.T) {
	b := claims.NewBuilder(1, 40)
	for j := 0; j < 40; j += 2 {
		b.AddClaim(0, j, false)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	allVariants(t, ds)
}

func TestManySourcesOneAssertion(t *testing.T) {
	b := claims.NewBuilder(40, 1)
	for i := 0; i < 40; i += 2 {
		b.AddClaim(i, 0, i%4 == 0)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	allVariants(t, ds)
}

func TestPerfectlyContradictorySources(t *testing.T) {
	// Two blocs claim complementary halves of the assertion space: a
	// maximally ambiguous dataset, the label-switching worst case.
	b := claims.NewBuilder(10, 20)
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			if (i < 5) == (j < 10) {
				b.AddClaim(i, j, false)
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	allVariants(t, ds)
}

// TestRandomDatasetsNeverBreak fuzzes dataset shapes through all variants.
func TestRandomDatasetsNeverBreak(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := randutil.New(seed)
		n := 1 + rng.Intn(15)
		m := 1 + rng.Intn(15)
		b := claims.NewBuilder(n, m)
		type pk struct{ i, j int }
		claimed := map[pk]bool{}
		for k := 0; k < rng.Intn(60); k++ {
			i, j := rng.Intn(n), rng.Intn(m)
			b.AddClaim(i, j, rng.Intn(2) == 0)
			claimed[pk{i, j}] = true
		}
		for k := 0; k < rng.Intn(20); k++ {
			i, j := rng.Intn(n), rng.Intn(m)
			if claimed[pk{i, j}] {
				continue
			}
			b.MarkSilentDependent(i, j)
		}
		ds, err := b.Build()
		if err != nil {
			return false
		}
		for _, v := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
			res, err := Run(ds, v, Options{Seed: seed, MaxIters: 40})
			if err != nil {
				return false
			}
			for _, p := range res.Posterior {
				if math.IsNaN(p) || p < 0 || p > 1 {
					return false
				}
			}
			if res.Params.Validate() != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExtremeInitParams: boundary-valued explicit initializations must be
// clamped, not propagated as ±Inf likelihoods.
func TestExtremeInitParams(t *testing.T) {
	w := genWorld(t, 8, 20, 5)
	init := w.TrueParams.Clone()
	for i := range init.Sources {
		init.Sources[i] = pickBoundary(i)
	}
	init.Z = 1
	res, err := Run(w.Dataset, VariantExt, Options{Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range res.Posterior {
		if math.IsNaN(p) {
			t.Fatalf("posterior[%d] is NaN", j)
		}
	}
}

func pickBoundary(i int) model.SourceParams {
	switch i % 4 {
	case 0:
		return model.SourceParams{A: 1, B: 0, F: 1, G: 0}
	case 1:
		return model.SourceParams{A: 0, B: 1, F: 0, G: 1}
	case 2:
		return model.SourceParams{A: 1, B: 1, F: 1, G: 1}
	default:
		return model.SourceParams{}
	}
}
