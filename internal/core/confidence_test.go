package core

import (
	"errors"
	"math"
	"testing"

	"depsense/internal/model"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.841344746, 1.0},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("boundary quantiles should be NaN")
	}
}

func TestConfidenceValidation(t *testing.T) {
	w := genWorld(t, 6, 15, 8)
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConfidenceIntervals(w.Dataset, res.Params, res.Posterior, 1.5); !errors.Is(err, ErrBadLevel) {
		t.Fatalf("want ErrBadLevel, got %v", err)
	}
	if _, err := ConfidenceIntervals(w.Dataset, model.NewParams(2, 0.5), res.Posterior, 0.95); err == nil {
		t.Fatal("mismatched params accepted")
	}
	if _, err := ConfidenceIntervals(w.Dataset, res.Params, res.Posterior[:3], 0.95); err == nil {
		t.Fatal("mismatched posterior accepted")
	}
}

func TestConfidenceBasicShape(t *testing.T) {
	w := genWorld(t, 10, 40, 9)
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := ConfidenceIntervals(w.Dataset, res.Params, res.Posterior, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Sources) != 10 {
		t.Fatalf("%d source intervals", len(ci.Sources))
	}
	for i, sc := range ci.Sources {
		for _, iv := range [...]Interval{sc.A, sc.B, sc.F, sc.G} {
			if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
				t.Fatalf("source %d: bad interval %+v", i, iv)
			}
		}
		if !sc.A.Contains(res.Params.Sources[i].A) {
			t.Fatalf("source %d: point estimate outside its own interval", i)
		}
	}
	if !ci.Z.Contains(res.Params.Z) {
		t.Fatal("ẑ outside its interval")
	}
}

// TestConfidenceShrinksWithData: more assertions → tighter intervals.
func TestConfidenceShrinksWithData(t *testing.T) {
	width := func(m int) float64 {
		cfg := synthetic.EstimatorConfig()
		cfg.Sources = 20
		cfg.Assertions = m
		w, err := synthetic.Generate(cfg, randutil.New(3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w.Dataset, VariantExt, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ci, err := ConfidenceIntervals(w.Dataset, res.Params, res.Posterior, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		var total stats.Series
		for _, sc := range ci.Sources {
			total.Add(sc.A.Width())
			total.Add(sc.B.Width())
		}
		return total.Mean()
	}
	small := width(30)
	large := width(300)
	if large >= small {
		t.Fatalf("intervals did not shrink: m=30 width %v vs m=300 width %v", small, large)
	}
}

// TestConfidenceCoverage: at m=400 the 95% intervals for the independent
// channel should cover the generating parameters for a healthy majority of
// sources (the approximation is optimistic, so demand ≥ 60%, not 95%).
func TestConfidenceCoverage(t *testing.T) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 30
	cfg.Assertions = 400
	covered, total := 0, 0
	for seed := int64(0); seed < 3; seed++ {
		w, err := synthetic.Generate(cfg, randutil.New(40+seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w.Dataset, VariantExt, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ci, err := ConfidenceIntervals(w.Dataset, res.Params, res.Posterior, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		for i, sc := range ci.Sources {
			truth := w.TrueParams.Sources[i]
			if sc.A.Contains(truth.A) {
				covered++
			}
			if sc.B.Contains(truth.B) {
				covered++
			}
			total += 2
		}
	}
	rate := float64(covered) / float64(total)
	if rate < 0.6 {
		t.Fatalf("coverage %v below 0.6", rate)
	}
}

func TestConfidenceVacuousOnEmptyStrata(t *testing.T) {
	// A dataset with no dependent pairs: the F/G intervals must be vacuous.
	w := func() *synthetic.World {
		cfg := synthetic.DefaultConfig()
		cfg.Sources = 8
		cfg.Trees = synthetic.FixedInt(8) // all roots
		world, err := synthetic.Generate(cfg, randutil.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return world
	}()
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := ConfidenceIntervals(w.Dataset, res.Params, res.Posterior, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range ci.Sources {
		if sc.F.Lo != 0 || sc.F.Hi != 1 || sc.G.Lo != 0 || sc.G.Hi != 1 {
			t.Fatalf("source %d: dependent intervals not vacuous: %+v", i, sc)
		}
	}
}
