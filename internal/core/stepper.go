package core

import (
	"fmt"

	"depsense/internal/claims"
	"depsense/internal/model"
)

// KernelStepper drives the EM engine one kernel step at a time, so callers
// outside this package can measure or inspect the E-step and M-step in
// isolation. core is a clock-free zone (the estimator's results must never
// depend on wall time), so the timing itself lives with the caller — the
// benchhot harness in internal/eval wraps these steps in its own clock.
//
// A stepper holds one engine and one working parameter set; like the
// Scratch it embeds, it is exclusive to a single caller and not safe for
// concurrent use.
type KernelStepper struct {
	eng    *engine
	params *model.Params
}

// NewKernelStepper prepares a stepper over ds starting from init, which is
// cloned and clamped (the caller's value is not mutated). Options supplies
// the kernel, worker count, smoothing, and optional Scratch exactly as for
// Run.
func NewKernelStepper(ds *claims.Dataset, variant Variant, init *model.Params, opts Options) (*KernelStepper, error) {
	opts = opts.normalized()
	if ds.N() == 0 || ds.M() == 0 {
		return nil, ErrEmptyDataset
	}
	if err := init.Validate(); err != nil {
		return nil, fmt.Errorf("core: stepper init params: %w", err)
	}
	if init.NumSources() != ds.N() {
		return nil, fmt.Errorf("%w: init has %d sources, dataset %d",
			ErrParamsShape, init.NumSources(), ds.N())
	}
	eng := newEngine(ds, variant, opts)
	clear(eng.post) // a reused Scratch may carry a previous fit's posteriors
	p := init.Clone()
	p.Clamp()
	return &KernelStepper{eng: eng, params: p}, nil
}

// EStep refreshes the log tables from the current parameters and runs one
// E-step, updating the posteriors and returning the data log-likelihood.
func (s *KernelStepper) EStep() float64 {
	s.eng.refreshLogs(s.params)
	return s.eng.eStep(s.params)
}

// MStep recomputes the parameters from the current posteriors. The
// posteriors are whatever the last EStep left (all-zero before the first),
// so a stepper normally alternates EStep and MStep like the fit loop does.
func (s *KernelStepper) MStep() {
	s.eng.mStep(s.params)
}

// Posterior returns a copy of the current per-assertion truth posteriors.
func (s *KernelStepper) Posterior() []float64 {
	return append([]float64(nil), s.eng.post...)
}

// Params returns a copy of the current parameter set.
func (s *KernelStepper) Params() *model.Params {
	return s.params.Clone()
}
