package core

import (
	"math"
	"testing"

	"depsense/internal/randutil"
	"depsense/internal/synthetic"
)

// TestMetamorphicZeroDependenciesMatchesIndependent: with an all-zero
// dependency indicator matrix the dependent channel (f, g) receives no
// observations, so EM-Ext's likelihood degenerates to the independent
// model's — the posteriors must coincide with VariantIndependent to
// floating-point noise, in every DepMode and at every worker count. Both
// runs start from the same explicit initialization and a fixed iteration
// budget so the trajectories are comparable step by step.
func TestMetamorphicZeroDependenciesMatchesIndependent(t *testing.T) {
	cfg := synthetic.DefaultConfig()
	cfg.Sources = 12
	cfg.Assertions = 60
	cfg.Trees = synthetic.FixedInt(12) // every source a root: D is all-zero
	w, err := synthetic.Generate(cfg, randutil.New(61))
	if err != nil {
		t.Fatal(err)
	}
	if w.Dataset.NumDependentClaims() != 0 {
		t.Fatal("all-roots world has dependent claims")
	}
	for j := 0; j < w.Dataset.M(); j++ {
		for _, c := range w.Dataset.DependencyColumn(j) {
			if c {
				t.Fatal("dependency column not all-zero")
			}
		}
	}

	base := Options{Init: w.TrueParams, MaxIters: 40, Tol: 1e-300}
	ref, err := Run(w.Dataset, VariantIndependent, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []DepMode{DepModeAuto, DepModeJoint} {
		for _, workers := range []int{1, 8} {
			opts := base
			opts.DepMode = mode
			opts.Workers = workers
			res, err := Run(w.Dataset, VariantExt, opts)
			if err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
			for j := range ref.Posterior {
				if d := math.Abs(res.Posterior[j] - ref.Posterior[j]); d > 1e-12 {
					t.Fatalf("mode=%v workers=%d posterior[%d] differs by %v (ext=%v ind=%v)",
						mode, workers, j, d, res.Posterior[j], ref.Posterior[j])
				}
			}
		}
	}
}
