// Package core implements the paper's primary contribution: the
// dependency-aware maximum-likelihood estimator EM-Ext (Section IV,
// Algorithm 2). The estimator jointly infers the source parameter set
// θ = {a_i, b_i, f_i, g_i, z} and per-assertion truth posteriors
// P(C_j = 1 | SC; θ) from the source-claim matrix and the dependency
// indicators alone, iterating the E-step of Eq. (9) against the closed-form
// M-step of Eqs. (10)-(14) until convergence.
//
// The same expectation-maximization engine also powers the two model-based
// baselines the paper compares against — EM (IPSN'12, source independence
// assumed) and EM-Social (IPSN'14, dependent claims discarded) — selected by
// a Variant. Those baselines are exposed under internal/baselines; this
// package exposes EMExt.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"depsense/internal/claims"
	"depsense/internal/factfind"
	"depsense/internal/model"
	"depsense/internal/parallel"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
)

// Variant selects which likelihood the EM engine maximizes.
type Variant int

// EM variants.
const (
	// VariantExt is the paper's dependency-aware estimator: independent
	// pairs go through the (a_i, b_i) channel, dependent pairs (claimed or
	// silent) through the (f_i, g_i) channel.
	VariantExt Variant = iota + 1
	// VariantIndependent is EM (IPSN'12): the dependency indicators are
	// ignored and every pair goes through the (a_i, b_i) channel.
	VariantIndependent
	// VariantSocial is EM-Social (IPSN'14): dependent claims are treated as
	// unobserved — they contribute no likelihood factor and are excluded
	// from the M-step sums.
	VariantSocial
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantExt:
		return "EM-Ext"
	case VariantIndependent:
		return "EM"
	case VariantSocial:
		return "EM-Social"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options tunes an EM run. The zero value selects sensible defaults.
type Options struct {
	// MaxIters caps EM iterations (default 200).
	MaxIters int
	// Tol declares convergence when no parameter moves more than Tol
	// between iterations (default 1e-6).
	Tol float64
	// Seed drives the random initialization (Algorithm 2 line 1).
	Seed int64
	// Init overrides random initialization with explicit parameters. The
	// parameter set is copied; the caller's value is not mutated.
	Init *model.Params
	// Restarts > 1 runs EM from that many random initializations and keeps
	// the result with the highest data log-likelihood (default 1).
	Restarts int
	// InitMode selects the initialization strategy when Init is nil.
	InitMode InitMode
	// Smoothing is the strength (in pseudo-observations) of the M-step's
	// empirical-Bayes shrinkage for the independent channel (a_i, b_i):
	// each per-source estimate is pulled toward the pooled all-source
	// estimate of the same channel. Negative disables all smoothing (the
	// paper's raw M-step); zero selects the default (2).
	Smoothing float64
	// DepSmoothing is the same for the dependent channel (f_i, g_i), which
	// typically rests on far fewer pairs per source — on Twitter-sparse
	// data a couple — so it defaults stronger (8). A source with only a
	// handful of dependent pairs then keeps essentially the pooled
	// channel, while sources with dozens (dense simulation data) retain
	// per-source resolution. Zero selects the default; it is ignored when
	// Smoothing is negative.
	DepSmoothing float64
	// DepMode controls how VariantExt fits the dependent channel; see
	// DepMode. Zero selects DepModeAuto.
	DepMode DepMode
	// DenseThreshold is the dependent-pairs-per-source level above which
	// DepModeAuto selects the joint fit (default 5).
	DenseThreshold float64
	// Workers bounds the run's parallelism: the E-step and M-step shard
	// across fixed-size blocks of assertions/sources, and independent
	// restarts run concurrently, on up to Workers goroutines. Results are
	// bit-for-bit identical for every Workers value because the block
	// decomposition and all reduction orders are fixed (see DESIGN.md,
	// "Deterministic parallel execution"). 0 or 1 runs serial.
	Workers int
	// Kernel selects the hot-path implementation; the zero value is the
	// production sparse kernel. Both kernels are bit-identical (see Kernel
	// and DESIGN.md §13); KernelDense exists as the differential-testing
	// oracle and benchmark baseline.
	Kernel Kernel
	// Scratch, when non-nil, supplies preallocated kernel buffers reused
	// across fits (see Scratch). It must not be shared by concurrent runs;
	// the concurrent-restarts path ignores it. Nil allocates internally.
	Scratch *Scratch
}

// DepMode selects EM-Ext's strategy for the dependent channel (f_i, g_i).
//
// The dependency-aware likelihood is only as identifiable as the dependent
// strata are populated. On dense matrices (the paper's simulations: tens of
// dependent pairs per source) the full joint EM of Algorithm 2 works and is
// the most accurate. On Twitter-sparse matrices (a couple of dependent
// pairs per source) the per-source dependent parameters are unidentified
// and the joint likelihood drifts into a "popularity" labeling: heavily
// retweeted assertions are relabeled true, the dependent channel inverts to
// match, and accuracy collapses — observed directly, and the likelihood
// cannot detect it (the drifted optimum scores higher). The plug-in mode
// guards against this: fit the dependency-blind model first, estimate ONE
// pooled dependent channel from its posteriors, and re-score once.
type DepMode int

// Dependent-channel fitting modes.
const (
	// DepModeAuto (default) picks DepModeJoint when the dataset has at
	// least DenseThreshold dependent pairs per source, DepModePlugin
	// otherwise.
	DepModeAuto DepMode = iota
	// DepModeJoint runs the full joint EM over all of θ (Algorithm 2),
	// staged from the independent fit.
	DepModeJoint
	// DepModePlugin fits EM-Social, then plugs in a single pooled
	// (f, g) estimate and re-scores with one E-step.
	DepModePlugin
)

// InitMode selects how EM is initialized when no explicit parameters are
// given.
type InitMode int

// Initialization strategies.
const (
	// InitDefault resolves to InitVote for every variant. (EM-Ext's joint
	// mode used InitStaged until the dependent-channel smoothing landed;
	// with it, vote initialization matches or beats staging on every
	// simulated regime — see BenchmarkAblationInit.)
	InitDefault InitMode = iota
	// InitVote seeds the posteriors with each assertion's smoothed support
	// fraction and derives θ from an immediate M-step. Anchoring "more
	// support ⇒ more credible" places EM in the basin where sources are
	// better than chance, resolving the likelihood's global label-swap
	// symmetry; restarts perturb the seed posteriors. This is the standard
	// initialization for truth-discovery EM.
	InitVote
	// InitStaged is coarse-to-fine: first fit the independent-source model
	// (vote-initialized), then refine with the full dependency-aware
	// likelihood starting from the coarse solution with both channels
	// initialized to the independent one. This avoids the poor local
	// optima the 4-parameters-per-source landscape exhibits under
	// data-blind starts. Used by EM-Ext's joint mode (see DepMode).
	InitStaged
	// InitInformed draws random parameters with true-claim probabilities
	// above false-claim probabilities (label-identified but data-blind).
	InitInformed
	// InitRandom draws parameters fully at random ("initialize parameter
	// set θ with random probability", Algorithm 2 line 1, taken literally).
	// Subject to label switching; useful for studying the symmetry.
	InitRandom
)

func (o Options) normalized() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	if o.Smoothing == 0 {
		o.Smoothing = 2
	} else if o.Smoothing < 0 {
		o.Smoothing = 0
		o.DepSmoothing = 0
		return o
	}
	if o.DepSmoothing == 0 {
		o.DepSmoothing = 8
	} else if o.DepSmoothing < 0 {
		o.DepSmoothing = 0
	}
	return o
}

// Errors returned by the estimators.
var (
	ErrEmptyDataset = errors.New("core: dataset has no sources or no assertions")
	ErrParamsShape  = errors.New("core: initial parameters do not match dataset")
)

// EMExt is the paper's dependency-aware estimator.
type EMExt struct {
	Opts Options
}

var _ factfind.FactFinder = (*EMExt)(nil)

// Name implements factfind.FactFinder.
func (e *EMExt) Name() string { return "EM-Ext" }

// Run implements factfind.FactFinder.
func (e *EMExt) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return e.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder.
func (e *EMExt) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	return RunCtx(ctx, ds, VariantExt, e.Opts)
}

// Run executes the EM engine for the given variant without cancellation or
// observability, the pre-runctx contract kept for batch callers.
func Run(ds *claims.Dataset, variant Variant, opts Options) (*factfind.Result, error) {
	return RunCtx(context.Background(), ds, variant, opts)
}

// RunCtx executes the EM engine for the given variant under a run-context.
// Cancellation is checked once per E/M iteration; on cancellation it returns
// the context's error together with the partial result of the interrupted
// restart (posteriors from the last completed E-step, Stopped set from the
// context error). Any runctx hook on ctx fires after every iteration with
// the current log-likelihood.
func RunCtx(ctx context.Context, ds *claims.Dataset, variant Variant, opts Options) (*factfind.Result, error) {
	opts = opts.normalized()
	if ds.N() == 0 || ds.M() == 0 {
		return nil, ErrEmptyDataset
	}
	if err := runctx.Err(ctx); err != nil {
		return nil, err
	}
	if opts.Init != nil {
		if err := opts.Init.Validate(); err != nil {
			return nil, fmt.Errorf("core: init params: %w", err)
		}
		if opts.Init.NumSources() != ds.N() {
			return nil, fmt.Errorf("%w: init has %d sources, dataset %d",
				ErrParamsShape, opts.Init.NumSources(), ds.N())
		}
	}

	if variant == VariantExt && opts.Init == nil &&
		(opts.InitMode == InitDefault || opts.InitMode == InitStaged) {
		if depMode(ds, opts) == DepModePlugin {
			return runPlugin(ctx, ds, opts)
		}
	}

	mode := opts.InitMode
	if mode == InitDefault {
		mode = InitVote
	}

	if opts.Init == nil && opts.Restarts > 1 && opts.Workers > 1 {
		return runRestartsParallel(ctx, ds, variant, mode, opts)
	}

	var best *factfind.Result
	for r := 0; r < opts.Restarts; r++ {
		res, err := runRestart(ctx, ds, variant, mode, opts, r)
		if err != nil {
			// Cancellation mid-restart: surface the interrupted restart's
			// partial state rather than silently keeping an earlier best —
			// partial results must be deterministic functions of where the
			// run stopped.
			return res, err
		}
		if best == nil || res.LogLikelihood > best.LogLikelihood {
			best = res
		}
		if opts.Init != nil {
			break // explicit init: restarts would all be identical
		}
	}
	return best, nil
}

// runRestart executes restart r: initialization derived from r's seed, then
// one EM run. Every restart is a deterministic function of (opts, r) alone,
// which is what allows the parallel path to run them concurrently and still
// match the serial path bit for bit.
func runRestart(ctx context.Context, ds *claims.Dataset, variant Variant, mode InitMode, opts Options, r int) (*factfind.Result, error) {
	rng := randutil.New(opts.Seed + int64(r)*7919)
	var init *model.Params
	var seedPost []float64
	switch {
	case opts.Init != nil:
		init = opts.Init.Clone()
	case mode == InitStaged:
		coarseOpts := opts
		coarseOpts.Init = nil
		coarseOpts.InitMode = InitVote
		coarseOpts.Restarts = 1
		coarseOpts.Seed = opts.Seed + int64(r)*7919
		coarse, err := RunCtx(ctx, ds, VariantIndependent, coarseOpts)
		if err != nil {
			if runctx.Reason(err) != "" {
				return coarse, err
			}
			return nil, fmt.Errorf("core: staged init: %w", err)
		}
		init = coarse.Params.Clone()
		for i := range init.Sources {
			s := &init.Sources[i]
			s.F, s.G = s.A, s.B
		}
	case mode == InitInformed:
		init = model.InformedInitParams(rng, ds.N())
	case mode == InitRandom:
		init = model.RandomParams(rng, ds.N())
	default: // InitVote
		init = model.NewParams(ds.N(), 0.5)
		seedPost = votePosteriors(ds, rng, r > 0)
	}
	return runOnce(ctx, ds, variant, init, seedPost, opts, r)
}

// runRestartsParallel fans the restarts out over the worker budget. Each
// restart is deterministic given its index, the best-of selection scans the
// completed slots in restart order with the same strictly-greater rule as
// the serial loop, and on cancellation the lowest-indexed interrupted
// restart's partial state is surfaced — the restart the serial loop would
// have been inside. Hooks are serialized because concurrent restarts emit
// concurrently.
func runRestartsParallel(ctx context.Context, ds *claims.Dataset, variant Variant, mode InitMode, opts Options) (*factfind.Result, error) {
	type slot struct {
		res *factfind.Result
		err error
	}
	slots := make([]slot, opts.Restarts)
	// A Scratch is exclusive to one running fit; concurrent restarts each
	// allocate their own.
	opts.Scratch = nil
	sctx := runctx.WithSerializedHook(ctx)
	poolErr := parallel.ForEachCtx(ctx, opts.Restarts, opts.Workers, func(r int) error {
		slots[r].res, slots[r].err = runRestart(sctx, ds, variant, mode, opts, r)
		return nil
	})
	for r := range slots {
		if slots[r].err != nil {
			return slots[r].res, slots[r].err
		}
		if slots[r].res == nil {
			// Cancellation stopped dispatch before restart r ran. The serial
			// loop would have entered it and returned its initial partial
			// state from the first iteration checkpoint; reproduce that.
			return runRestart(sctx, ds, variant, mode, opts, r)
		}
	}
	if poolErr != nil {
		return nil, poolErr
	}
	var best *factfind.Result
	for r := range slots {
		if best == nil || slots[r].res.LogLikelihood > best.LogLikelihood {
			best = slots[r].res
		}
	}
	return best, nil
}

// votePosteriors seeds per-assertion posteriors from support counts in a
// scale-free way: count/(count + meanCount), which maps the average-support
// assertion to 0.5 on dense simulation matrices (tens of claims per
// assertion) and sparse Twitter-scale ones (one or two claims per
// assertion) alike. Normalizing by the number of sources instead collapses
// every seed toward zero on sparse data and strands EM in a degenerate
// "everything is false" basin. When perturb is set (restart runs after the
// first), uniform noise moves the seed so restarts explore different basins.
func votePosteriors(ds *claims.Dataset, rng interface{ Float64() float64 }, perturb bool) []float64 {
	post := make([]float64, ds.M())
	mean := 0.0
	for j := 0; j < ds.M(); j++ {
		mean += float64(len(ds.Claimants(j)))
	}
	mean /= float64(ds.M())
	if mean <= 0 {
		mean = 1
	}
	for j := range post {
		count := float64(len(ds.Claimants(j)))
		p := (count + 0.25) / (count + mean + 0.5)
		if perturb {
			p += 0.3 * (rng.Float64() - 0.5)
		}
		post[j] = model.ClampProb(p)
	}
	return post
}

// emBlockSize is the fixed shard granularity of the E-step (assertions) and
// M-step (sources). The decomposition depends only on the problem size, so
// per-block partials reduced in block index order make every run
// scheduler-independent: Workers changes wall-clock time, never a bit of
// the result.
const emBlockSize = 256

// engine binds one run's configuration to its Scratch buffers and the
// dataset's flattened sparse view. All mutable per-iteration state lives in
// the embedded Scratch, which outlives the engine when the caller passed
// one through Options.Scratch.
type engine struct {
	ds        *claims.Dataset
	sv        *claims.SparseView
	variant   Variant
	kernel    Kernel
	smooth    float64
	smoothDep float64
	workers   int

	*Scratch
}

// newEngine prepares an engine for one fit, borrowing the caller's Scratch
// when provided (and safe) or allocating a private one.
func newEngine(ds *claims.Dataset, variant Variant, opts Options) *engine {
	s := opts.Scratch
	if s == nil {
		s = NewScratch()
	}
	s.grow(ds.N(), ds.M())
	return &engine{
		ds:        ds,
		sv:        ds.Sparse(),
		variant:   variant,
		kernel:    opts.Kernel,
		smooth:    opts.Smoothing,
		smoothDep: opts.DepSmoothing,
		workers:   opts.Workers,
		Scratch:   s,
	}
}

// runOnce executes one EM run. restart is the 0-based restart index, fired
// through the hook as Iteration.Chain so observers (trace recorders) can
// attribute records to their restart under parallel fan-out.
func runOnce(ctx context.Context, ds *claims.Dataset, variant Variant, params *model.Params, seedPost []float64, opts Options, restart int) (*factfind.Result, error) {
	eng := newEngine(ds, variant, opts)
	params.Clamp()
	if seedPost != nil {
		// Vote initialization: derive θ from the seed posteriors via one
		// M-step before the first E-step.
		copy(eng.post, seedPost)
		eng.mStep(params)
	} else {
		// A reused Scratch may carry a previous fit's posteriors; zero them
		// so a cancellation before the first E-step surfaces the same
		// all-zero partial state a fresh allocation would.
		clear(eng.post)
	}

	var (
		iter      int
		converged bool
		ll        float64
	)
	hook := runctx.HookFrom(ctx)
	start := time.Now() //lint:allow seedsource wall-clock timing for the observability hook Elapsed field, not part of results
	result := func(stopped string) *factfind.Result {
		return &factfind.Result{
			Posterior:     append([]float64(nil), eng.post...),
			Params:        params,
			Iterations:    iter,
			Converged:     converged,
			LogLikelihood: ll,
			Stopped:       stopped,
		}
	}
	prev := eng.borrowPrev(params)
	for iter = 1; iter <= opts.MaxIters; iter++ {
		// One cancellation check per E/M iteration bounds the latency of a
		// cancel to a single iteration's work, and the partial state — the
		// posteriors of the last completed E-step — stays deterministic.
		if err := runctx.Err(ctx); err != nil {
			iter--
			stopped := runctx.Reason(err)
			hook.Emit(runctx.Iteration{
				Algorithm: variant.String(), N: iter, Chain: restart,
				LogLikelihood: ll, HasLL: iter > 0,
				Elapsed: time.Since(start), Done: true, Stopped: stopped,
			})
			return result(stopped), err
		}
		eng.refreshLogs(params)
		ll = eng.eStep(params)
		eng.mStep(params)
		if params.MaxAbsDiff(prev) < opts.Tol {
			converged = true
		}
		it := runctx.Iteration{
			Algorithm: variant.String(), N: iter, Chain: restart,
			LogLikelihood: ll, HasLL: true,
			Elapsed: time.Since(start), Done: converged,
		}
		if converged {
			it.Stopped = runctx.StopConverged
		}
		hook.Emit(it)
		if converged {
			break
		}
		copy(prev.Sources, params.Sources)
		prev.Z = params.Z
	}
	// Final E-step so posteriors reflect the final parameters.
	eng.refreshLogs(params)
	ll = eng.eStep(params)
	if !converged {
		hook.Emit(runctx.Iteration{
			Algorithm: variant.String(), N: opts.MaxIters, Chain: restart,
			LogLikelihood: ll, HasLL: true,
			Elapsed: time.Since(start), Done: true, Stopped: runctx.StopIterationCap,
		})
	}

	return result(runctx.StopOf(converged)), nil
}

// refreshLogs rebuilds the per-source log tables and folds them into the
// sparse-correction tables the E-step adds per nonzero. model.SafeLog is
// exactly math.Log on the clamped parameter range ([ProbEpsilon,
// 1-ProbEpsilon], which Clamp and the M-step guarantee), so routing
// through it changes no bits while making the log-space intent explicit
// and keeping degenerate inputs finite.
func (e *engine) refreshLogs(p *model.Params) {
	for i, s := range p.Sources {
		la, l1a := model.SafeLog(s.A), model.SafeLog(1-s.A)
		lb, l1b := model.SafeLog(s.B), model.SafeLog(1-s.B)
		lf, l1f := model.SafeLog(s.F), model.SafeLog(1-s.F)
		lg, l1g := model.SafeLog(s.G), model.SafeLog(1-s.G)
		e.log1A[i] = l1a
		e.log1B[i] = l1b
		e.corrA1[i] = la - l1a
		e.corrB0[i] = lb - l1b
		e.corrF1[i] = lf - l1a
		e.corrG0[i] = lg - l1b
		e.corrSF1[i] = l1f - l1a
		e.corrSG0[i] = l1g - l1b
	}
}

// eStep computes Z_j = P(C_j = 1 | SC_j; θ) for all assertions (Eq. 9) and
// returns the data log-likelihood (Eq. 7).
//
// The all-silent baseline Σ_i log(1-a_i) is shared across assertions; each
// assertion then applies precomputed sparse corrections for its claimants
// and (under VariantExt) its silent-dependent sources, so the production
// kernel costs O(n + m + nnz) rather than O(n·m); see eStepBlockSparse.
//
// Assertions shard into fixed blocks: each block writes its posteriors
// (disjoint slots) and a block-local log-likelihood partial, and the
// partials are summed in block index order afterwards — the same reduction
// whether the blocks ran on one goroutine or many. At Workers <= 1 the
// blocks run inline without a closure so the step allocates nothing.
func (e *engine) eStep(p *model.Params) float64 {
	var base1, base0 float64
	log1A, log1B := e.log1A, e.log1B
	for i := range log1A {
		base1 += log1A[i]
		base0 += log1B[i]
	}
	logZ := model.SafeLog(p.Z)
	log1Z := model.SafeLog(1 - p.Z)

	m := e.ds.M()
	nb := parallel.Blocks(m, emBlockSize)
	llPart := e.llPart[:nb]
	if e.workers <= 1 {
		for b := 0; b < nb; b++ {
			lo, hi := parallel.BlockRange(b, m, emBlockSize)
			llPart[b] = e.eStepBlock(lo, hi, base1, base0, logZ, log1Z)
		}
	} else {
		_ = parallel.ForEach(nb, e.workers, func(b int) error {
			lo, hi := parallel.BlockRange(b, m, emBlockSize)
			llPart[b] = e.eStepBlock(lo, hi, base1, base0, logZ, log1Z)
			return nil
		})
	}
	ll := 0.0
	for b := 0; b < nb; b++ {
		ll += llPart[b]
	}
	return ll
}

// mStep recomputes θ from the posteriors (Eqs. 10-14).
//
// Each per-source ratio is shrunk toward the pooled all-source estimate of
// the same channel with e.smooth pseudo-observations (empirical-Bayes
// smoothing): â = (num_i + s·pooled) / (den_i + s). With s = 0 this is the
// paper's raw M-step, in which a parameter whose stratum carries no
// posterior mass keeps its previous value.
func (e *engine) mStep(p *model.Params) {
	n, m := e.ds.N(), e.ds.M()

	// Total posterior mass, reduced block-wise in index order (the same
	// decomposition as the E-step) so the sum is Workers-independent.
	nbM := parallel.Blocks(m, emBlockSize)
	zPart := e.zPart[:nbM]
	if e.workers <= 1 {
		for b := 0; b < nbM; b++ {
			zPart[b] = e.sumPostBlock(b, m)
		}
	} else {
		_ = parallel.ForEach(nbM, e.workers, func(b int) error {
			zPart[b] = e.sumPostBlock(b, m)
			return nil
		})
	}
	sumZ := 0.0
	for b := 0; b < nbM; b++ {
		sumZ += zPart[b]
	}
	sumY := float64(m) - sumZ

	// Per-source stratum masses and the numerators/denominators of
	// Eqs. (10)-(13): every source is independent, so source blocks shard
	// freely; each slot is written exactly once (see mStepBlock).
	nbN := parallel.Blocks(n, emBlockSize)
	if e.workers <= 1 {
		for b := 0; b < nbN; b++ {
			lo, hi := parallel.BlockRange(b, n, emBlockSize)
			e.mStepBlock(lo, hi, sumZ, sumY)
		}
	} else {
		_ = parallel.ForEach(nbN, e.workers, func(b int) error {
			lo, hi := parallel.BlockRange(b, n, emBlockSize)
			e.mStepBlock(lo, hi, sumZ, sumY)
			return nil
		})
	}

	// Pooled channel totals for shrinkage, accumulated serially in source
	// index order — a cheap O(n) reduction whose order fixes the result.
	var pool [4]ratio // A, B, F, G
	for i := 0; i < n; i++ {
		for c := 0; c < 4; c++ {
			pool[c].num += e.nums[i][c]
			pool[c].den += e.dens[i][c]
		}
	}

	var pooled, shrink [4]float64
	for c := 0; c < 4; c++ {
		if pool[c].den > 0 {
			pooled[c] = pool[c].num / pool[c].den
		} else {
			pooled[c] = 0.5
		}
		if c < 2 {
			shrink[c] = e.smooth
		} else {
			shrink[c] = e.smoothDep
		}
	}

	for i := range p.Sources {
		s := &p.Sources[i]
		dst := [4]*float64{&s.A, &s.B, &s.F, &s.G}
		for c := 0; c < 4; c++ {
			if e.variant != VariantExt && c >= 2 {
				break
			}
			den := e.dens[i][c] + shrink[c]
			if den <= 1e-12 {
				continue // unsmoothed empty stratum: keep previous value
			}
			*dst[c] = model.ClampProb((e.nums[i][c] + shrink[c]*pooled[c]) / den)
		}
		if e.variant == VariantIndependent {
			// One channel: keep the dependent parameters mirrored so the
			// estimated θ remains interpretable downstream.
			s.F, s.G = s.A, s.B
		}
	}
	p.Z = model.ClampProb(sumZ / float64(m))
}

// sumPostBlock sums the posterior mass of assertion block b.
func (e *engine) sumPostBlock(b, m int) float64 {
	lo, hi := parallel.BlockRange(b, m, emBlockSize)
	z := 0.0
	for j := lo; j < hi; j++ {
		z += e.post[j]
	}
	return z
}

// ratio is a numerator/denominator pair of posterior masses.
type ratio struct{ num, den float64 }

// sigmoidDiff returns exp(w1)/(exp(w1)+exp(w0)) computed stably.
func sigmoidDiff(w1, w0 float64) float64 {
	d := w1 - w0
	if d >= 0 {
		return 1 / (1 + math.Exp(-d))
	}
	ed := math.Exp(d)
	return ed / (1 + ed)
}

// logSumExp returns log(exp(a)+exp(b)) computed stably. It delegates to
// the shared log-space helpers next to the clamp in internal/model.
func logSumExp(a, b float64) float64 {
	return model.LogSumExp(a, b)
}
