package core

import (
	"testing"

	"depsense/internal/model"
)

// TestWarmRefitKernelAllocFree is the regression test for the scratch
// plumbing: with a warmed Scratch and serial workers, one full EM kernel
// iteration — refreshLogs, E-step, M-step — performs zero heap
// allocations, for both kernels and every variant. This is the loop a
// stream warm refit spends its life in; a regression here (a closure
// capture, a forgotten buffer, an escaping slice header) shows up as
// allocs/op > 0.
func TestWarmRefitKernelAllocFree(t *testing.T) {
	w := genWorld(t, 40, 200, 91)
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 3, DepMode: DepModeJoint})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []Kernel{KernelSparse, KernelDense} {
		for _, v := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
			params := res.Params.Clone()
			params.Clamp()
			eng := newEngine(w.Dataset, v, Options{Scratch: NewScratch(), Kernel: kernel})
			iterate := func() {
				eng.refreshLogs(params)
				eng.eStep(params)
				eng.mStep(params)
			}
			iterate() // warm the scratch
			if allocs := testing.AllocsPerRun(20, iterate); allocs != 0 {
				t.Errorf("kernel=%v variant=%v: %.0f allocs per warm iteration, want 0", kernel, v, allocs)
			}
		}
	}
}

// TestWarmFitAllocsSizeIndependent: a warm fit through the public RunCtx
// with a Scratch allocates only per-fit objects (the Result, its posterior
// copy, parameter clones), never per-element kernel buffers — so allocs/op
// must not grow with the dataset.
func TestWarmFitAllocsSizeIndependent(t *testing.T) {
	measure := func(n, m int, seed int64) float64 {
		t.Helper()
		w := genWorld(t, n, m, seed)
		res, err := Run(w.Dataset, VariantExt, Options{Seed: 5, DepMode: DepModeJoint})
		if err != nil {
			t.Fatal(err)
		}
		s := NewScratch()
		warm := func() *model.Params { p := res.Params.Clone(); p.Clamp(); return p }
		opts := Options{Init: warm(), MaxIters: 2, DepMode: DepModeJoint, Scratch: s}
		if _, err := Run(w.Dataset, VariantExt, opts); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := Run(w.Dataset, VariantExt, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(20, 60, 17)
	large := measure(60, 480, 18)
	if small != large {
		t.Fatalf("warm fit allocs scale with dataset size: %.0f at 20×60 vs %.0f at 60×480", small, large)
	}
}

// TestPosteriorOptsScratchReuse: the plug-in re-score path
// (PosteriorOpts with a Scratch) must not reallocate kernel buffers —
// its allocation count is size-independent too.
func TestPosteriorOptsScratchReuse(t *testing.T) {
	measure := func(n, m int, seed int64) float64 {
		t.Helper()
		w := genWorld(t, n, m, seed)
		res, err := Run(w.Dataset, VariantExt, Options{Seed: 5, DepMode: DepModeJoint})
		if err != nil {
			t.Fatal(err)
		}
		s := NewScratch()
		opts := Options{Scratch: s}
		if _, _, err := PosteriorOpts(w.Dataset, res.Params, opts); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, _, err := PosteriorOpts(w.Dataset, res.Params, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(20, 60, 23)
	large := measure(60, 480, 24)
	if small != large {
		t.Fatalf("posterior allocs scale with dataset size: %.0f at 20×60 vs %.0f at 60×480", small, large)
	}
}
