package core

import "fmt"

// Kernel selects the estimator's hot-path implementation. Both kernels
// compute the identical floating-point operations in the identical order,
// so they produce bit-identical Results at any worker count — the
// dense-reference contract the kernelequiv differential suite enforces
// (see DESIGN.md §13). The sparse kernel is the production default; the
// dense kernel exists as the slow, obviously-correct oracle and as the
// baseline the benchhot harness times against.
type Kernel int

// Kernel implementations.
const (
	// KernelSparse iterates only the nonzeros of SC and D through the
	// flattened CSR/CSC view (claims.SparseView): O(n + m + nnz) per
	// E-step, O(m + nnz) per M-step.
	KernelSparse Kernel = iota
	// KernelDense scans the full n×m grid, consulting the sparse pattern
	// at every cell: O(n·m) per E-step and M-step. Reference only.
	KernelDense
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelSparse:
		return "sparse"
	case KernelDense:
		return "dense"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// eStepBlock computes posteriors and the log-likelihood partial for the
// assertion block [lo, hi) under the selected kernel.
func (e *engine) eStepBlock(lo, hi int, base1, base0, logZ, log1Z float64) float64 {
	if e.kernel == KernelDense {
		return e.eStepBlockDense(lo, hi, base1, base0, logZ, log1Z)
	}
	return e.eStepBlockSparse(lo, hi, base1, base0, logZ, log1Z)
}

// mStepBlock rebuilds stratum masses and the Eq. (10)-(13)
// numerator/denominator slots for the source block [lo, hi).
func (e *engine) mStepBlock(lo, hi int, sumZ, sumY float64) {
	if e.kernel == KernelDense {
		e.mStepBlockDense(lo, hi, sumZ, sumY)
		return
	}
	e.mStepBlockSparse(lo, hi, sumZ, sumY)
}

// eStepBlockSparse is the production E-step inner loop: each assertion
// starts from the shared all-silent baseline and applies one correction
// per nonzero of its SC column, then one per silent-dependent pair. The
// variant switch is hoisted out of the column loop so each inner loop
// stays branch-light.
func (e *engine) eStepBlockSparse(lo, hi int, base1, base0, logZ, log1Z float64) float64 {
	var (
		colPtr = e.sv.Claims.ColPtr
		rows   = e.sv.Claims.Row
		dep    = e.sv.ClaimDep
		silPtr = e.sv.Silent.ColPtr
		silRow = e.sv.Silent.Row
		post   = e.post
		ll     = 0.0
	)
	switch e.variant {
	case VariantExt:
		corrA1, corrB0 := e.corrA1, e.corrB0
		corrF1, corrG0 := e.corrF1, e.corrG0
		corrSF1, corrSG0 := e.corrSF1, e.corrSG0
		for j := lo; j < hi; j++ {
			l1, l0 := base1, base0
			for k := colPtr[j]; k < colPtr[j+1]; k++ {
				i := rows[k]
				if dep[k] {
					l1 += corrF1[i]
					l0 += corrG0[i]
				} else {
					l1 += corrA1[i]
					l0 += corrB0[i]
				}
			}
			for k := silPtr[j]; k < silPtr[j+1]; k++ {
				i := silRow[k]
				l1 += corrSF1[i]
				l0 += corrSG0[i]
			}
			w1 := l1 + logZ
			w0 := l0 + log1Z
			post[j] = sigmoidDiff(w1, w0)
			ll += logSumExp(w1, w0)
		}
	case VariantSocial:
		corrA1, corrB0 := e.corrA1, e.corrB0
		log1A, log1B := e.log1A, e.log1B
		for j := lo; j < hi; j++ {
			l1, l0 := base1, base0
			for k := colPtr[j]; k < colPtr[j+1]; k++ {
				i := rows[k]
				if dep[k] {
					// Pair unobserved: remove the baseline silent factor.
					l1 -= log1A[i]
					l0 -= log1B[i]
				} else {
					l1 += corrA1[i]
					l0 += corrB0[i]
				}
			}
			w1 := l1 + logZ
			w0 := l0 + log1Z
			post[j] = sigmoidDiff(w1, w0)
			ll += logSumExp(w1, w0)
		}
	default: // VariantIndependent: dependency indicators ignored
		corrA1, corrB0 := e.corrA1, e.corrB0
		for j := lo; j < hi; j++ {
			l1, l0 := base1, base0
			for k := colPtr[j]; k < colPtr[j+1]; k++ {
				i := rows[k]
				l1 += corrA1[i]
				l0 += corrB0[i]
			}
			w1 := l1 + logZ
			w0 := l0 + log1Z
			post[j] = sigmoidDiff(w1, w0)
			ll += logSumExp(w1, w0)
		}
	}
	return ll
}

// mStepBlockSparse accumulates each source's stratum masses over its CSR
// rows — independent claims, dependent claims, silent-dependent pairs, in
// ascending assertion order, matching the dense kernel's per-stratum
// accumulation order exactly.
func (e *engine) mStepBlockSparse(lo, hi int, sumZ, sumY float64) {
	var (
		d0Ptr, d0Col = e.sv.ClaimsD0.RowPtr, e.sv.ClaimsD0.Col
		d1Ptr, d1Col = e.sv.ClaimsD1.RowPtr, e.sv.ClaimsD1.Col
		sPtr, sCol   = e.sv.SilentD1.RowPtr, e.sv.SilentD1.Col
		post         = e.post
	)
	for i := lo; i < hi; i++ {
		var az, ay float64
		for k := d0Ptr[i]; k < d0Ptr[i+1]; k++ {
			z := post[d0Col[k]]
			az += z
			ay += 1 - z
		}
		var fz, fy float64
		for k := d1Ptr[i]; k < d1Ptr[i+1]; k++ {
			z := post[d1Col[k]]
			fz += z
			fy += 1 - z
		}
		var sz, sy float64
		for k := sPtr[i]; k < sPtr[i+1]; k++ {
			z := post[sCol[k]]
			sz += z
			sy += 1 - z
		}
		e.massAZ[i], e.massAY[i] = az, ay
		e.massFZ[i], e.massFY[i] = fz, fy
		e.silZ[i], e.silY[i] = sz, sy
		e.assembleRatios(i, sumZ, sumY)
	}
}

// assembleRatios fills the Eq. (10)-(13) numerator/denominator slots of
// source i from its stratum masses, per variant. Shared by both kernels.
func (e *engine) assembleRatios(i int, sumZ, sumY float64) {
	var r [4]ratio
	switch e.variant {
	case VariantExt:
		depZ := e.massFZ[i] + e.silZ[i]
		depY := e.massFY[i] + e.silY[i]
		r[0] = ratio{e.massAZ[i], sumZ - depZ}
		r[1] = ratio{e.massAY[i], sumY - depY}
		r[2] = ratio{e.massFZ[i], depZ}
		r[3] = ratio{e.massFY[i], depY}
	case VariantIndependent:
		r[0] = ratio{e.massAZ[i] + e.massFZ[i], sumZ}
		r[1] = ratio{e.massAY[i] + e.massFY[i], sumY}
	case VariantSocial:
		r[0] = ratio{e.massAZ[i], sumZ - e.massFZ[i]}
		r[1] = ratio{e.massAY[i], sumY - e.massFY[i]}
	}
	for c := 0; c < 4; c++ {
		e.nums[i][c] = r[c].num
		e.dens[i][c] = r[c].den
	}
}
