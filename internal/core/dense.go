package core

// The dense-reference kernel: a full n×m grid scan that consults the
// sparse pattern at every cell. It is the oracle half of the
// dense-reference contract — slow, structurally simple, and performing
// the exact floating-point operations of the sparse kernel in the exact
// order, so the differential suite can demand bit-identical Results.
//
// Order correspondence with the sparse kernel: within an assertion the
// claimants' corrections are applied in ascending source order (the CSC
// column order) and the silent-dependent corrections after all claimant
// corrections, so the dense scan makes two passes over the source axis
// per assertion rather than folding both memberships into one pass. In
// the M-step each stratum keeps its own accumulator, so one pass over
// the assertion axis accumulates every stratum in ascending assertion
// order — the CSR row order the sparse kernel uses.

// eStepBlockDense computes the same posteriors as eStepBlockSparse by
// scanning every source for every assertion of the block.
func (e *engine) eStepBlockDense(lo, hi int, base1, base0, logZ, log1Z float64) float64 {
	n := e.ds.N()
	ll := 0.0
	for j := lo; j < hi; j++ {
		col := e.sv.Claims.Col(j)
		depBase := int(e.sv.Claims.ColPtr[j])
		l1, l0 := base1, base0
		ck := 0
		for i := 0; i < n; i++ {
			if ck >= len(col) || int(col[ck]) != i {
				continue // cell (i, j) is zero in SC
			}
			switch {
			case e.variant == VariantExt && e.sv.ClaimDep[depBase+ck]:
				l1 += e.corrF1[i]
				l0 += e.corrG0[i]
			case e.variant == VariantSocial && e.sv.ClaimDep[depBase+ck]:
				l1 -= e.log1A[i]
				l0 -= e.log1B[i]
			default:
				l1 += e.corrA1[i]
				l0 += e.corrB0[i]
			}
			ck++
		}
		if e.variant == VariantExt {
			sil := e.sv.Silent.Col(j)
			sk := 0
			for i := 0; i < n; i++ {
				if sk < len(sil) && int(sil[sk]) == i {
					l1 += e.corrSF1[i]
					l0 += e.corrSG0[i]
					sk++
				}
			}
		}
		w1 := l1 + logZ
		w0 := l0 + log1Z
		e.post[j] = sigmoidDiff(w1, w0)
		ll += logSumExp(w1, w0)
	}
	return ll
}

// mStepBlockDense rebuilds each source's stratum masses by scanning every
// assertion, routing each cell to its stratum accumulator.
func (e *engine) mStepBlockDense(lo, hi int, sumZ, sumY float64) {
	m := e.ds.M()
	for i := lo; i < hi; i++ {
		d0 := e.sv.ClaimsD0.Row(i)
		d1 := e.sv.ClaimsD1.Row(i)
		sil := e.sv.SilentD1.Row(i)
		var az, ay, fz, fy, sz, sy float64
		k0, k1, ks := 0, 0, 0
		for j := 0; j < m; j++ {
			z := e.post[j]
			switch {
			case k0 < len(d0) && int(d0[k0]) == j:
				az += z
				ay += 1 - z
				k0++
			case k1 < len(d1) && int(d1[k1]) == j:
				fz += z
				fy += 1 - z
				k1++
			case ks < len(sil) && int(sil[ks]) == j:
				sz += z
				sy += 1 - z
				ks++
			}
		}
		e.massAZ[i], e.massAY[i] = az, ay
		e.massFZ[i], e.massFY[i] = fz, fy
		e.silZ[i], e.silY[i] = sz, sy
		e.assembleRatios(i, sumZ, sumY)
	}
}
