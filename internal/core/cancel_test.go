package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"depsense/internal/factfind"
	"depsense/internal/runctx"
)

// cancelAfter returns a context whose runctx hook cancels the run once the
// estimator reports iteration n, plus a pointer to the final (Done)
// Iteration the hook observed.
func cancelAfter(t *testing.T, n int) (context.Context, *runctx.Iteration) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	final := &runctx.Iteration{}
	ctx = runctx.WithHook(ctx, func(it runctx.Iteration) {
		if it.Done {
			*final = it
		} else if it.N >= n {
			cancel()
		}
	})
	return ctx, final
}

func TestRunCtxCancelMidRun(t *testing.T) {
	w := genWorld(t, 12, 40, 321)
	for _, variant := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
		run := func() (*factfind.Result, error) {
			ctx, final := cancelAfter(t, 3)
			res, err := RunCtx(ctx, w.Dataset, variant, Options{Seed: 1, DepMode: DepModeJoint})
			if final.Stopped != runctx.StopCancelled {
				t.Fatalf("%v: final hook stopped = %q", variant, final.Stopped)
			}
			return res, err
		}
		res, err := run()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v", variant, err)
		}
		if res == nil {
			t.Fatalf("%v: no partial result", variant)
		}
		if res.Stopped != runctx.StopCancelled {
			t.Fatalf("%v: Stopped = %q", variant, res.Stopped)
		}
		// The cancel fired from the iteration-3 hook, so the run must stop
		// before completing iteration 4 — within one iteration of the
		// cancellation.
		if res.Iterations != 3 {
			t.Fatalf("%v: stopped after %d iterations, want 3", variant, res.Iterations)
		}
		if res.Converged {
			t.Fatalf("%v: cancelled run reported converged", variant)
		}
		// The partial state must be a deterministic function of where the
		// run stopped.
		again, err2 := run()
		if !errors.Is(err2, context.Canceled) {
			t.Fatalf("%v: rerun err = %v", variant, err2)
		}
		for j := range res.Posterior {
			if res.Posterior[j] != again.Posterior[j] {
				t.Fatalf("%v: partial posterior[%d] differs across identical cancelled runs", variant, j)
			}
		}
	}
}

func TestRunCtxDeadlineMidRun(t *testing.T) {
	w := genWorld(t, 12, 40, 321)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	// Slow each iteration down so the deadline reliably lands mid-run, and
	// make convergence unreachable so only the deadline can stop it.
	ctx = runctx.WithHook(ctx, func(runctx.Iteration) { time.Sleep(2 * time.Millisecond) })
	res, err := RunCtx(ctx, w.Dataset, VariantExt, Options{
		Seed: 1, DepMode: DepModeJoint, Tol: 1e-300, MaxIters: 1_000_000,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if res == nil || res.Stopped != runctx.StopDeadline {
		t.Fatalf("res = %+v", res)
	}
	if res.Iterations <= 0 || res.Iterations >= 1_000_000 {
		t.Fatalf("Iterations = %d", res.Iterations)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	w := genWorld(t, 8, 20, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, w.Dataset, VariantExt, Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res != nil {
		t.Fatalf("pre-cancelled run produced a result: %+v", res)
	}
}

func TestRunCtxStoppedReasons(t *testing.T) {
	w := genWorld(t, 10, 30, 99)

	res, err := Run(w.Dataset, VariantExt, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Stopped != runctx.StopConverged {
		t.Fatalf("converged run: Converged=%v Stopped=%q", res.Converged, res.Stopped)
	}

	res, err = Run(w.Dataset, VariantExt, Options{Seed: 7, MaxIters: 2, Tol: 1e-300, DepMode: DepModeJoint})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Stopped != runctx.StopIterationCap {
		t.Fatalf("capped run: Converged=%v Stopped=%q", res.Converged, res.Stopped)
	}
}

func TestRunCtxHookObservesLogLikelihood(t *testing.T) {
	w := genWorld(t, 10, 30, 42)
	var iters []runctx.Iteration
	ctx := runctx.WithHook(context.Background(), func(it runctx.Iteration) {
		iters = append(iters, it)
	})
	res, err := RunCtx(ctx, w.Dataset, VariantIndependent, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("hook never fired")
	}
	last := iters[len(iters)-1]
	if !last.Done || last.Stopped != res.Stopped {
		t.Fatalf("last hook iteration = %+v, result stopped %q", last, res.Stopped)
	}
	if iters[0].N != 1 {
		t.Fatalf("first hook iteration N=%d", iters[0].N)
	}
	prevN := 0
	for _, it := range iters {
		if it.N < prevN {
			t.Fatalf("iteration numbers went backwards: %d after %d", it.N, prevN)
		}
		prevN = it.N
		if it.Algorithm != "EM" {
			t.Fatalf("algorithm = %q", it.Algorithm)
		}
	}
}
