package core

import (
	"depsense/internal/model"
	"depsense/internal/parallel"
)

// Scratch holds every buffer the EM kernels touch per iteration: the
// per-source log tables and correction tables, the posterior vector, the
// M-step stratum masses, and the per-block reduction partials. A run
// without an explicit Scratch allocates one internally (the historical
// behaviour); callers on a refit loop — the stream estimator's warm
// refits, the plug-in re-score, benchmark harnesses — pass one through
// Options.Scratch so consecutive fits reuse the same memory and the
// serial kernel iteration allocates nothing at all.
//
// A Scratch is exclusive to one running fit: it must not be shared by
// concurrent runs. The concurrent-restarts path (Restarts > 1 with
// Workers > 1) therefore ignores Options.Scratch and allocates per
// restart; intra-run E/M-step parallelism is fine, since all workers of
// one run share one engine by design. Buffers grow monotonically and are
// fully rewritten by each fit, so reuse across datasets of different
// shapes is safe.
//
//depsense:scratch
type Scratch struct {
	// Per-source log tables, refreshed each iteration. Only the silent
	// factors log(1-a_i), log(1-b_i) are kept whole: everything else the
	// E-step needs is folded into the correction tables below.
	log1A, log1B []float64

	// Per-source sparse-correction tables: what one nonzero of SC (or of
	// the silent-dependent pattern) adds to the all-silent baseline, per
	// hypothesis. corrA1 = log a_i - log(1-a_i) (independent claim, C=1),
	// corrB0 the same under C=0; corrF1/corrG0 for dependent claims;
	// corrSF1/corrSG0 for silent-dependent pairs.
	corrA1, corrB0   []float64
	corrF1, corrG0   []float64
	corrSF1, corrSG0 []float64

	post []float64 // Z_j = P(C_j = 1 | SC_j; θ)

	// Per-source posterior masses by stratum, rebuilt each M-step:
	// claimed-independent, claimed-dependent, silent-dependent; Z carries
	// P(true) mass and Y carries P(false) mass.
	massAZ, massAY []float64
	massFZ, massFY []float64
	silZ, silY     []float64

	// Per-block reduction partials (E-step log-likelihood, M-step posterior
	// mass) and per-source M-step numerators/denominators.
	llPart, zPart []float64
	nums, dens    [][4]float64

	// prev is the previous iteration's parameter snapshot for the
	// convergence check.
	prev *model.Params
}

// NewScratch returns an empty Scratch; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

// grow (re)sizes every buffer for an n-source, m-assertion dataset. Slices
// keep their backing arrays whenever capacity suffices, so repeated fits at
// a stable problem size never reallocate.
func (s *Scratch) grow(n, m int) {
	growTo(&s.log1A, n)
	growTo(&s.log1B, n)
	growTo(&s.corrA1, n)
	growTo(&s.corrB0, n)
	growTo(&s.corrF1, n)
	growTo(&s.corrG0, n)
	growTo(&s.corrSF1, n)
	growTo(&s.corrSG0, n)
	growTo(&s.post, m)
	growTo(&s.massAZ, n)
	growTo(&s.massAY, n)
	growTo(&s.massFZ, n)
	growTo(&s.massFY, n)
	growTo(&s.silZ, n)
	growTo(&s.silY, n)
	growTo(&s.llPart, parallel.Blocks(m, emBlockSize))
	growTo(&s.zPart, parallel.Blocks(m, emBlockSize))
	if cap(s.nums) < n {
		s.nums = make([][4]float64, n)
		s.dens = make([][4]float64, n)
	} else {
		s.nums = s.nums[:n]
		s.dens = s.dens[:n]
	}
}

func growTo(sl *[]float64, size int) {
	if cap(*sl) < size {
		*sl = make([]float64, size)
	} else {
		*sl = (*sl)[:size]
	}
}

// borrowPrev returns a snapshot buffer holding a copy of p, reusing the
// scratch-resident one when its shape matches.
func (s *Scratch) borrowPrev(p *model.Params) *model.Params {
	if s.prev == nil || len(s.prev.Sources) != len(p.Sources) {
		s.prev = p.Clone()
		return s.prev
	}
	copy(s.prev.Sources, p.Sources)
	s.prev.Z = p.Z
	return s.prev
}
