package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"depsense/internal/claims"
	"depsense/internal/factfind"
	"depsense/internal/model"
	"depsense/internal/runctx"
)

// depMode resolves DepModeAuto against the dataset's dependent-pair
// density.
func depMode(ds *claims.Dataset, opts Options) DepMode {
	if opts.DepMode != DepModeAuto {
		return opts.DepMode
	}
	threshold := opts.DenseThreshold
	if threshold <= 0 {
		threshold = 5
	}
	if DependentPairsPerSource(ds) >= threshold {
		return DepModeJoint
	}
	return DepModePlugin
}

// DependentPairsPerSource returns the average number of dependent pairs
// (dependent claims plus silent-dependent pairs) per source, the
// identifiability measure DepModeAuto switches on.
func DependentPairsPerSource(ds *claims.Dataset) float64 {
	if ds.N() == 0 {
		return 0
	}
	total := ds.NumDependentClaims()
	for j := 0; j < ds.M(); j++ {
		total += len(ds.SilentDependents(j))
	}
	return float64(total) / float64(ds.N())
}

// runPlugin is EM-Ext's sparse-regime strategy: fit the dependency-blind
// EM-Social model, estimate a single pooled dependent channel from its
// posteriors, and re-score every assertion with one dependency-aware
// E-step. See DepMode for why the joint fit is not used here.
func runPlugin(ctx context.Context, ds *claims.Dataset, opts Options) (*factfind.Result, error) {
	hook := runctx.HookFrom(ctx)
	start := time.Now() //lint:allow seedsource wall-clock timing for the observability hook Elapsed field, not part of results
	coarseOpts := opts
	coarseOpts.InitMode = InitVote
	coarse, err := RunCtx(ctx, ds, VariantSocial, coarseOpts)
	if err != nil {
		if runctx.Reason(err) != "" {
			// Cancelled during the coarse stage: the dependency-blind
			// partial fit is the deterministic partial state.
			return coarse, err
		}
		return nil, fmt.Errorf("core: plugin coarse stage: %w", err)
	}
	// The re-score below is a single E-step; one check before it bounds the
	// plug-in stage's cancellation latency.
	if err := runctx.Err(ctx); err != nil {
		coarse.Stopped = runctx.Reason(err)
		return coarse, err
	}
	params := coarse.Params.Clone()
	f, g := PooledDependentChannel(ds, coarse.Posterior)
	for i := range params.Sources {
		s := &params.Sources[i]
		s.F, s.G = f, g
	}
	// The re-score shares the run's Scratch (and kernel/worker settings):
	// under DepModePlugin the coarse fit and this single E-step are the
	// whole run, so a warm-refit caller sees zero kernel reallocations.
	post, ll, err := PosteriorOpts(ds, params, opts)
	if err != nil {
		return nil, err
	}
	// The plug-in re-score is the run's last unit of work and counts
	// toward Iterations; fire it through the hook so observers (progress
	// printers, metrics exporters) see the same totals the Result reports,
	// under the variant the caller asked for.
	hook.Emit(runctx.Iteration{
		Algorithm: VariantExt.String(), N: coarse.Iterations + 1,
		LogLikelihood: ll, HasLL: true, Elapsed: time.Since(start),
		Done: true, Stopped: coarse.Stopped,
	})
	return &factfind.Result{
		Posterior:     post,
		Params:        params,
		Iterations:    coarse.Iterations + 1,
		Converged:     coarse.Converged,
		LogLikelihood: ll,
		Stopped:       coarse.Stopped,
	}, nil
}

// Plug-in channel estimation constants.
const (
	// pluginConfidenceExp is the exponent κ applied to |2Z-1| when
	// weighting assertions in the pooled channel estimate: near-0.5
	// posteriors are noise labels and attenuate the estimate toward the
	// base rate, so confident assertions dominate.
	pluginConfidenceExp = 4
	// pluginShrink is the pseudo-pair count pulling the pooled channel
	// toward the overall dependent claim rate, so datasets with little
	// dependent structure get a near-neutral (and therefore harmless)
	// correction.
	pluginShrink = 200
	// pluginChannelFloor keeps the pooled channel away from {0, 1}: a
	// pooled repeat rate estimated at 0.98+ is almost always coordinated
	// (bot-like) behaviour outside the model's independence assumptions,
	// and an unclamped value would make every silent-dependent pair
	// multiply the posterior by (1-f)/(1-g) ≈ 10^4 — one compromised
	// channel estimate would then reorder the entire ranking.
	pluginChannelFloor = 0.02
)

// PooledDependentChannel estimates one dataset-wide dependent channel
// (f, g) from per-assertion truth posteriors: the posterior-mass-weighted
// rates of claiming among dependent pairs,
//
//	f = Σ_j w_j·Z_j·dep_claims(j) / Σ_j w_j·Z_j·dep_pairs(j)
//
// and symmetrically for g with 1-Z_j — the M-step of Eqs. (11) and (13)
// with all sources pooled. Confidence weights w_j = |2Z_j-1|^κ counter the
// attenuation that near-0.5 posteriors cause, and both rates are shrunk
// toward the overall dependent claim rate by a pseudo-pair count so thin
// dependent structure yields a near-neutral channel.
func PooledDependentChannel(ds *claims.Dataset, posterior []float64) (f, g float64) {
	var fNum, fDen, gNum, gDen float64
	for j := 0; j < ds.M(); j++ {
		z := posterior[j]
		w := math.Pow(math.Abs(2*z-1), pluginConfidenceExp)
		dep := 0
		for _, c := range ds.Claimants(j) {
			if c.Dependent {
				dep++
			}
		}
		pairs := float64(dep + len(ds.SilentDependents(j)))
		fNum += float64(dep) * z * w
		fDen += pairs * z * w
		gNum += float64(dep) * (1 - z) * w
		gDen += pairs * (1 - z) * w
	}
	if fDen+gDen <= 0 {
		return 0.5, 0.5
	}
	base := (fNum + gNum) / (fDen + gDen)
	f = clampChannel((fNum + pluginShrink*base) / (fDen + pluginShrink))
	g = clampChannel((gNum + pluginShrink*base) / (gDen + pluginShrink))
	return f, g
}

func clampChannel(v float64) float64 {
	v = model.ClampProb(v)
	if v < pluginChannelFloor {
		return pluginChannelFloor
	}
	if v > 1-pluginChannelFloor {
		return 1 - pluginChannelFloor
	}
	return v
}

// Posterior computes P(C_j = 1 | SC; θ) for every assertion under the full
// dependency-aware model (Eq. 9) together with the data log-likelihood
// (Eq. 7), without fitting anything — the scoring half of the estimator,
// usable with known or externally estimated parameters.
func Posterior(ds *claims.Dataset, p *model.Params) ([]float64, float64, error) {
	return PosteriorOpts(ds, p, Options{})
}

// PosteriorOpts is Posterior with the kernel knobs honored: Options.Scratch
// supplies reusable buffers (the returned posterior slice is always a fresh
// copy, never an alias of the scratch), Options.Kernel selects the kernel,
// and Options.Workers shards the E-step. All other options are ignored.
func PosteriorOpts(ds *claims.Dataset, p *model.Params, opts Options) ([]float64, float64, error) {
	if ds.N() == 0 || ds.M() == 0 {
		return nil, 0, ErrEmptyDataset
	}
	if err := p.Validate(); err != nil {
		return nil, 0, fmt.Errorf("core: posterior params: %w", err)
	}
	if p.NumSources() != ds.N() {
		return nil, 0, fmt.Errorf("%w: params have %d sources, dataset %d",
			ErrParamsShape, p.NumSources(), ds.N())
	}
	eng := newEngine(ds, VariantExt, opts)
	work := p.Clone()
	work.Clamp()
	eng.refreshLogs(work)
	ll := eng.eStep(work)
	return append([]float64(nil), eng.post...), ll, nil
}
