package core

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/factfind"
	"depsense/internal/model"
)

// Log-space migration edge cases: inputs that would underflow, divide by
// zero, or produce -Inf/NaN in raw-probability space must come out of the
// estimator as finite posteriors in [0, 1] and a finite log-likelihood,
// under both kernels and every variant.

// assertFiniteResult fails if any NaN or infinity escaped into the Result.
func assertFiniteResult(t *testing.T, res *factfind.Result, label string) {
	t.Helper()
	if math.IsNaN(res.LogLikelihood) || math.IsInf(res.LogLikelihood, 0) {
		t.Fatalf("%s: log-likelihood = %v", label, res.LogLikelihood)
	}
	for j, z := range res.Posterior {
		if math.IsNaN(z) || z < 0 || z > 1 {
			t.Fatalf("%s: posterior[%d] = %v outside [0,1]", label, j, z)
		}
	}
	for i, s := range res.Params.Sources {
		for _, v := range []float64{s.A, s.B, s.F, s.G} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("%s: params.Sources[%d] carries %v", label, i, v)
			}
		}
	}
	if math.IsNaN(res.Params.Z) {
		t.Fatalf("%s: z = NaN", label)
	}
}

// edgeDatasets builds the degenerate structures the log-space kernels must
// absorb: single-source assertions (one claimant, no corroboration),
// an all-dependent ring (every claim dependent, so EM-Social observes
// nothing and EM-Ext's independent strata are empty), and a dataset with
// unclaimed assertions mixed in.
func edgeDatasets(t *testing.T) map[string]*claims.Dataset {
	t.Helper()
	out := map[string]*claims.Dataset{}

	single := claims.NewBuilder(6, 12)
	for j := 0; j < 12; j++ {
		single.AddClaim(j%6, j, false)
	}
	out["single-source-assertions"] = mustBuildDS(t, single)

	// Ring: source i follows i+1 mod n; every claim is a dependent repeat,
	// plus silent-dependent marks closing each ring.
	ring := claims.NewBuilder(5, 10)
	for j := 0; j < 10; j++ {
		for i := 0; i < 5; i++ {
			if (i+j)%2 == 0 {
				ring.AddClaim(i, j, true)
			} else {
				ring.MarkSilentDependent(i, j)
			}
		}
	}
	out["all-dependent-ring"] = mustBuildDS(t, ring)

	sparse := claims.NewBuilder(8, 20)
	sparse.AddClaim(0, 0, false)
	sparse.AddClaim(1, 0, true)
	sparse.AddClaim(2, 19, true)
	out["mostly-unclaimed"] = mustBuildDS(t, sparse)
	return out
}

func mustBuildDS(t *testing.T, b *claims.Builder) *claims.Dataset {
	t.Helper()
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEdgeCaseResultsFinite(t *testing.T) {
	for name, ds := range edgeDatasets(t) {
		for _, v := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
			for _, kernel := range []Kernel{KernelSparse, KernelDense} {
				res, err := Run(ds, v, Options{Seed: 2, Kernel: kernel})
				if err != nil {
					t.Fatalf("%s %v %v: %v", name, v, kernel, err)
				}
				assertFiniteResult(t, res, name+"/"+v.String()+"/"+kernel.String())
			}
		}
	}
}

// TestZeroProbabilityInitFinite: explicit initial parameters sitting on
// the {0, 1} boundary — zero-probability claims taken literally — are
// clamped into the log-safe range and cannot poison the fit.
func TestZeroProbabilityInitFinite(t *testing.T) {
	ds := buildRandomDataset(t, 12, 30, 0.2, 31)
	boundary := model.NewParams(12, 0)
	for i := range boundary.Sources {
		switch i % 3 {
		case 0:
			boundary.Sources[i] = model.SourceParams{A: 0, B: 0, F: 0, G: 0}
		case 1:
			boundary.Sources[i] = model.SourceParams{A: 1, B: 1, F: 1, G: 1}
		default:
			boundary.Sources[i] = model.SourceParams{A: 1, B: 0, F: 1, G: 0}
		}
	}
	for _, kernel := range []Kernel{KernelSparse, KernelDense} {
		res, err := Run(ds, VariantExt, Options{Init: boundary, Kernel: kernel, DepMode: DepModeJoint})
		if err != nil {
			t.Fatalf("%v: %v", kernel, err)
		}
		assertFiniteResult(t, res, "boundary-init/"+kernel.String())

		post, ll, err := PosteriorOpts(ds, boundary, Options{Kernel: kernel})
		if err != nil {
			t.Fatalf("%v posterior: %v", kernel, err)
		}
		assertFiniteResult(t, &factfind.Result{Posterior: post, Params: boundary.Clone(), LogLikelihood: ll},
			"boundary-posterior/"+kernel.String())
	}
}

// TestNoProbexprSuppressions: the log-space migration's contract with the
// linter — the probexpr analyzer passes over core and gibbs with zero
// //lint:allow probexpr suppressions. (depsenselint's own test runs the
// analyzer over the whole repo; this guards the suppression count.)
func TestNoProbexprSuppressions(t *testing.T) {
	for _, dir := range []string{".", "../gibbs"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") ||
				strings.HasSuffix(ent.Name(), "_test.go") {
				continue // production sources only (this file names the marker)
			}
			src, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(src), "lint:allow probexpr") {
				t.Errorf("%s/%s carries a probexpr suppression; the log-space kernels must pass clean", dir, ent.Name())
			}
		}
	}
}
