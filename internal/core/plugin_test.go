package core

import (
	"math"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/model"
	"depsense/internal/randutil"
)

func TestDependentPairsPerSource(t *testing.T) {
	b := claims.NewBuilder(4, 3)
	b.AddClaim(0, 0, false)
	b.AddClaim(1, 0, true)
	b.MarkSilentDependent(2, 0)
	b.MarkSilentDependent(3, 1)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 1 dependent claim + 2 silent pairs over 4 sources.
	if got := DependentPairsPerSource(ds); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("density = %v, want 0.75", got)
	}
	empty, err := claims.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if DependentPairsPerSource(empty) != 0 {
		t.Fatal("empty dataset density != 0")
	}
}

func TestDepModeAutoSwitches(t *testing.T) {
	// Dense synthetic world → joint; a sparse handmade one → plugin.
	w := genWorld(t, 20, 50, 3)
	if got := DependentPairsPerSource(w.Dataset); got < 5 {
		t.Skipf("world unexpectedly sparse (%v)", got)
	}
	if depMode(w.Dataset, Options{}) != DepModeJoint {
		t.Fatal("dense world not routed to joint mode")
	}

	b := claims.NewBuilder(50, 20)
	for i := 0; i < 20; i++ {
		b.AddClaim(i, i%20, false)
	}
	b.AddClaim(20, 0, true)
	sparse, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if depMode(sparse, Options{}) != DepModePlugin {
		t.Fatal("sparse dataset not routed to plugin mode")
	}
	// Explicit modes win.
	if depMode(sparse, Options{DepMode: DepModeJoint}) != DepModeJoint {
		t.Fatal("explicit joint overridden")
	}
	if depMode(w.Dataset, Options{DepMode: DepModePlugin}) != DepModePlugin {
		t.Fatal("explicit plugin overridden")
	}
}

func TestPooledDependentChannelDirection(t *testing.T) {
	// Dependent claims sit on confidently-false assertions: g must exceed f.
	b := claims.NewBuilder(6, 4)
	// Assertions 0,1: heavily supported (posterior high), no repeats,
	// but with silent-dependent watchers.
	for i := 0; i < 4; i++ {
		b.AddClaim(i, 0, false)
		b.AddClaim(i, 1, false)
	}
	b.MarkSilentDependent(4, 0)
	b.MarkSilentDependent(4, 1)
	// Assertions 2,3: one original plus dependent repeats, low posterior.
	b.AddClaim(0, 2, false)
	b.AddClaim(4, 2, true)
	b.AddClaim(5, 2, true)
	b.AddClaim(1, 3, false)
	b.AddClaim(5, 3, true)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	post := []float64{0.95, 0.9, 0.05, 0.1}
	f, g := PooledDependentChannel(ds, post)
	if g <= f {
		t.Fatalf("f=%v g=%v: repeats on rumors must push g above f", f, g)
	}
}

func TestPooledDependentChannelNoDependents(t *testing.T) {
	b := claims.NewBuilder(2, 2)
	b.AddClaim(0, 0, false)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, g := PooledDependentChannel(ds, []float64{0.5, 0.5})
	if f != 0.5 || g != 0.5 {
		t.Fatalf("no-dependents channel = (%v,%v), want neutral", f, g)
	}
}

func TestPosteriorMatchesEMOutput(t *testing.T) {
	w := genWorld(t, 10, 30, 44)
	res, err := Run(w.Dataset, VariantExt, Options{Seed: 5, DepMode: DepModeJoint})
	if err != nil {
		t.Fatal(err)
	}
	post, ll, err := Posterior(w.Dataset, res.Params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-res.LogLikelihood) > 1e-9 {
		t.Fatalf("ll = %v vs %v", ll, res.LogLikelihood)
	}
	for j := range post {
		if math.Abs(post[j]-res.Posterior[j]) > 1e-12 {
			t.Fatalf("posterior %d: %v vs %v", j, post[j], res.Posterior[j])
		}
	}
}

func TestPosteriorValidation(t *testing.T) {
	w := genWorld(t, 5, 10, 1)
	if _, _, err := Posterior(w.Dataset, model.NewParams(3, 0.5)); err == nil {
		t.Fatal("mismatched params accepted")
	}
	bad := model.NewParams(5, 0.5)
	bad.Sources[0].A = -1
	if _, _, err := Posterior(w.Dataset, bad); err == nil {
		t.Fatal("invalid params accepted")
	}
	empty, err := claims.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Posterior(empty, model.NewParams(1, 0.5)); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPosteriorDoesNotMutateParams(t *testing.T) {
	w := genWorld(t, 5, 10, 2)
	p := model.NewParams(5, 0)
	for i := range p.Sources {
		p.Sources[i] = model.SourceParams{A: 1, B: 0, F: 1, G: 0} // boundary values
	}
	if _, _, err := Posterior(w.Dataset, p); err != nil {
		t.Fatal(err)
	}
	if p.Z != 0 || p.Sources[0].A != 1 {
		t.Fatal("Posterior clamped the caller's params in place")
	}
}

// TestPluginModeRunsOnSparseData exercises the full plugin path through the
// public entry point.
func TestPluginModeRunsOnSparseData(t *testing.T) {
	// Twitter-sparse: 200 sources, 150 assertions, ~1.3 claims/source.
	rng := randutil.New(12)
	b := claims.NewBuilder(200, 150)
	for i := 0; i < 200; i++ {
		j := rng.Intn(150)
		dep := rng.Float64() < 0.3
		b.AddClaim(i, j, dep)
		if dep {
			b.MarkSilentDependent((i+1)%200, j)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if depMode(ds, Options{}) != DepModePlugin {
		t.Skip("dataset unexpectedly dense")
	}
	res, err := Run(ds, VariantExt, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posterior) != 150 {
		t.Fatalf("posterior length %d", len(res.Posterior))
	}
	for j, p := range res.Posterior {
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("posterior[%d] = %v", j, p)
		}
	}
	// The plugin's dependent channel must be shared across sources.
	f0, g0 := res.Params.Sources[0].F, res.Params.Sources[0].G
	for i, s := range res.Params.Sources {
		if s.F != f0 || s.G != g0 {
			t.Fatalf("source %d has non-pooled dependent channel", i)
		}
	}
}

// TestJointVsPluginDiffer confirms the two strategies are actually
// different estimators on the same data.
func TestJointVsPluginDiffer(t *testing.T) {
	w := genWorld(t, 20, 50, 9)
	joint, err := Run(w.Dataset, VariantExt, Options{Seed: 2, DepMode: DepModeJoint})
	if err != nil {
		t.Fatal(err)
	}
	plug, err := Run(w.Dataset, VariantExt, Options{Seed: 2, DepMode: DepModePlugin})
	if err != nil {
		t.Fatal(err)
	}
	if samePosteriors(joint.Posterior, plug.Posterior) {
		t.Fatal("joint and plugin produced identical posteriors")
	}
}
