package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"depsense/internal/factfind"
	"depsense/internal/runctx"
)

// requireBitIdentical asserts two EM results are equal field by field with
// exact float comparison — the determinism contract of Options.Workers.
func requireBitIdentical(t *testing.T, serial, par *factfind.Result) {
	t.Helper()
	if len(serial.Posterior) != len(par.Posterior) {
		t.Fatalf("posterior lengths differ: %d vs %d", len(serial.Posterior), len(par.Posterior))
	}
	for j := range serial.Posterior {
		if serial.Posterior[j] != par.Posterior[j] {
			t.Fatalf("posterior[%d] differs: %v vs %v", j, serial.Posterior[j], par.Posterior[j])
		}
	}
	if serial.LogLikelihood != par.LogLikelihood {
		t.Fatalf("log-likelihood differs: %v vs %v", serial.LogLikelihood, par.LogLikelihood)
	}
	if serial.Iterations != par.Iterations || serial.Converged != par.Converged || serial.Stopped != par.Stopped {
		t.Fatalf("run shape differs: (%d,%t,%q) vs (%d,%t,%q)",
			serial.Iterations, serial.Converged, serial.Stopped,
			par.Iterations, par.Converged, par.Stopped)
	}
	if !reflect.DeepEqual(serial.Params, par.Params) {
		t.Fatalf("estimated parameters differ:\nserial: %+v\npar:    %+v", serial.Params, par.Params)
	}
}

// TestWorkersEquivalenceSingleRun: the blocked E/M steps must be bit-for-bit
// identical at any worker count, for every variant.
func TestWorkersEquivalenceSingleRun(t *testing.T) {
	w := genWorld(t, 25, 80, 41)
	for _, v := range []Variant{VariantExt, VariantIndependent, VariantSocial} {
		serial, err := Run(w.Dataset, v, Options{Seed: 7})
		if err != nil {
			t.Fatalf("%v serial: %v", v, err)
		}
		for _, workers := range []int{2, 8} {
			par, err := Run(w.Dataset, v, Options{Seed: 7, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", v, workers, err)
			}
			requireBitIdentical(t, serial, par)
		}
	}
}

// TestWorkersEquivalenceRestarts: the concurrent restart fan-out derives
// per-restart seeds identically to the serial loop and picks the same
// winner.
func TestWorkersEquivalenceRestarts(t *testing.T) {
	w := genWorld(t, 15, 40, 13)
	opts := Options{Seed: 3, Restarts: 4}
	serial, err := Run(w.Dataset, VariantExt, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := Run(w.Dataset, VariantExt, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, serial, par)
}

// TestWorkersEquivalenceCancelMidRun: cancelling at a deterministic
// iteration checkpoint must yield the same partial state regardless of
// Workers — partial results are part of the determinism contract.
func TestWorkersEquivalenceCancelMidRun(t *testing.T) {
	w := genWorld(t, 20, 60, 29)
	run := func(workers int) *factfind.Result {
		ctx, _ := cancelAfter(t, 3)
		res, err := RunCtx(ctx, w.Dataset, VariantExt, Options{Seed: 5, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d err = %v", workers, err)
		}
		if res.Iterations != 3 {
			t.Fatalf("workers=%d stopped after %d iterations, want 3", workers, res.Iterations)
		}
		return res
	}
	serial := run(1)
	par := run(8)
	requireBitIdentical(t, serial, par)
}

// TestWorkersRestartsCancelValidPartial: cancelling the concurrent restart
// pool mid-run cannot deterministically pin which restart was interrupted,
// but the surfaced partial state must still be a valid checkpoint: stopped
// reason recorded, posteriors well-formed.
func TestWorkersRestartsCancelValidPartial(t *testing.T) {
	w := genWorld(t, 20, 60, 37)
	ctx, final := cancelAfter(t, 2)
	res, err := RunCtx(ctx, w.Dataset, VariantExt, Options{Seed: 5, Restarts: 4, Workers: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res == nil {
		t.Fatal("cancelled restart pool returned no partial result")
	}
	if res.Stopped != runctx.StopCancelled {
		t.Fatalf("Stopped = %q, want %q", res.Stopped, runctx.StopCancelled)
	}
	if len(res.Posterior) != w.Dataset.M() {
		t.Fatalf("partial posterior has %d entries, want %d", len(res.Posterior), w.Dataset.M())
	}
	for j, p := range res.Posterior {
		if p < 0 || p > 1 {
			t.Fatalf("partial posterior[%d] = %v out of [0,1]", j, p)
		}
	}
	if !final.Done || final.Stopped != runctx.StopCancelled {
		t.Fatalf("final hook iteration = %+v", final)
	}
}
