package core

import (
	"fmt"
	"testing"

	"depsense/internal/randutil"
	"depsense/internal/synthetic"
)

// BenchmarkEMExt measures a full EM-Ext fit at increasing scales.
func BenchmarkEMExt(b *testing.B) {
	for _, size := range []struct{ n, m int }{{20, 50}, {50, 50}, {100, 100}, {200, 400}} {
		cfg := synthetic.EstimatorConfig()
		cfg.Sources = size.n
		cfg.Assertions = size.m
		w, err := synthetic.Generate(cfg, randutil.New(1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d_m=%d", size.n, size.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(w.Dataset, VariantExt, Options{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEMExtWorkers measures the blocked E/M-step sharding on the
// acceptance-scale world (500 sources × 2000 assertions) across worker
// counts. The iteration budget is fixed so every level does identical work;
// speedup is bounded by GOMAXPROCS.
func BenchmarkEMExtWorkers(b *testing.B) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 500
	cfg.Assertions = 2000
	w, err := synthetic.Generate(cfg, randutil.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(w.Dataset, VariantExt, Options{
					Seed: 1, MaxIters: 3, Tol: 1e-300, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEMExtRestartsWorkers measures the restart fan-out: independent
// EM runs on concurrent goroutines, reduced in restart order.
func BenchmarkEMExtRestartsWorkers(b *testing.B) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 50
	cfg.Assertions = 200
	w, err := synthetic.Generate(cfg, randutil.New(3))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(w.Dataset, VariantExt, Options{
					Seed: 1, Restarts: 4, MaxIters: 20, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEStep isolates one E-step (the per-iteration hot path) via the
// Posterior scorer.
func BenchmarkEStep(b *testing.B) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 100
	cfg.Assertions = 200
	w, err := synthetic.Generate(cfg, randutil.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Posterior(w.Dataset, w.TrueParams); err != nil {
			b.Fatal(err)
		}
	}
}
