// Package runctx is the run-lifecycle layer shared by every long-running
// computation in this repository: EM iterations (Algorithm 2), Gibbs sweeps
// (Algorithm 1), and the exact 2^n bound enumeration (Eq. 3). It makes runs
// cancellable and observable without widening each algorithm's signature
// beyond the standard context.Context:
//
//   - Cancellation rides on the context itself. Compute loops call Err at
//     iteration/sweep/block granularity and return the context's error
//     together with their deterministic partial state.
//   - Observability rides on a Hook attached with WithHook. Every layer
//     fires an Iteration record per unit of work (iteration, sweep
//     checkpoint, enumeration block) so callers can log progress, export
//     metrics, or cancel based on what they see.
//   - Determinism rides on an optional *rand.Rand attached with WithRNG,
//     used by stochastic layers when the caller passes no generator.
//
// The Stop* constants name the reasons a run ends; factfind.Result.Stopped
// carries one of them so callers and tests can assert why, not just whether,
// a run stopped.
package runctx

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Stop reasons recorded in factfind.Result.Stopped and Iteration.Stopped.
const (
	// StopConverged: the run met its convergence criterion.
	StopConverged = "converged"
	// StopIterationCap: the run exhausted its iteration/sweep budget
	// without converging.
	StopIterationCap = "iteration-cap"
	// StopCancelled: the context was cancelled mid-run.
	StopCancelled = "cancelled"
	// StopDeadline: the context's deadline expired mid-run.
	StopDeadline = "deadline"
)

// Iteration is one observable unit of work: an E/M iteration for the EM
// estimators, a checkpoint of Gibbs sweeps for the bound approximation, an
// enumeration block for the exact bound, or a belief/trust round for the
// heuristic baselines.
type Iteration struct {
	// Algorithm is the display name of the computation firing the hook
	// (e.g. "EM-Ext", "gibbs-bound", "exact-bound").
	Algorithm string
	// N is the 1-based iteration / round / checkpoint number.
	N int
	// Chain is the 0-based index of the restart / Gibbs chain firing this
	// record, when the computation fans out over several (EM restart pools,
	// multi-chain bound approximation); 0 for serial single-run layers.
	Chain int
	// LogLikelihood is the current data log-likelihood for model-based
	// estimators. HasLL distinguishes "no log-likelihood" (heuristics,
	// enumeration loops) from a genuine value — including a genuine 0.0.
	LogLikelihood float64
	// HasLL marks LogLikelihood as meaningful. Observers must gate on it
	// rather than comparing LogLikelihood against zero.
	HasLL bool
	// Value is an algorithm-specific scalar trajectory statistic — for the
	// Gibbs bound approximation, the checkpoint's batch-mean conditional
	// error (the average over just this checkpoint's sweeps) — with HasValue
	// marking it meaningful. Convergence diagnostics (split-chain R-hat)
	// read per-chain Value sequences, which is why layers should report
	// near-iid batch statistics rather than trend-carrying running means.
	Value float64
	// HasValue marks Value as meaningful.
	HasValue bool
	// Samples is the cumulative sample / pattern count for Monte Carlo and
	// enumeration loops; zero for fixed-point iterations.
	Samples int
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Done marks the run's final hook firing.
	Done bool
	// Stopped is the stop reason (Stop* constant), set only when Done.
	Stopped string
}

// Hook observes Iterations. Hooks run inline on the computing goroutine:
// they must be fast and must not block. A nil Hook is valid and fires
// nothing (see Emit).
type Hook func(Iteration)

// Emit fires the hook if it is non-nil, so call sites never branch.
func (h Hook) Emit(it Iteration) {
	if h != nil {
		h(it)
	}
}

// MultiHook composes hooks into a single hook that fires each non-nil
// sub-hook in argument order for every record — the fan-out that lets one
// run feed a metrics exporter and a trace recorder at once. Nil sub-hooks
// are skipped; zero non-nil sub-hooks compose to a nil Hook, and a single
// one is returned unwrapped.
//
// A panicking sub-hook does not starve the rest: the remaining hooks still
// fire, and the first recovered panic is re-raised afterwards on the
// computing goroutine, so an observer bug is reported, never swallowed.
func MultiHook(hooks ...Hook) Hook {
	live := make([]Hook, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(it Iteration) {
		var first any
		for _, h := range live {
			func() {
				defer func() {
					if r := recover(); r != nil && first == nil {
						first = r
					}
				}()
				h(it)
			}()
		}
		if first != nil {
			panic(first)
		}
	}
}

type hookKey struct{}

// WithHook returns a context carrying the hook. If the context already
// carries one, both fire (earliest first), so independent observers —
// a progress printer and a metrics exporter, say — compose without
// coordination.
func WithHook(ctx context.Context, h Hook) context.Context {
	if h == nil {
		return ctx
	}
	if prev := HookFrom(ctx); prev != nil {
		inner := h
		h = func(it Iteration) {
			prev(it)
			inner(it)
		}
	}
	return context.WithValue(ctx, hookKey{}, h)
}

// HookFrom extracts the context's hook, nil if none. Compute loops hoist
// this once before iterating rather than paying a context lookup per
// iteration.
func HookFrom(ctx context.Context) Hook {
	if ctx == nil {
		return nil
	}
	h, _ := ctx.Value(hookKey{}).(Hook)
	return h
}

// WithSerializedHook returns a context whose hook chain (if any) is
// replaced by a mutex-guarded equivalent. Parallel compute paths — EM
// restarts, exact-bound blocks, Gibbs chains running concurrently — wrap
// their context with this before fanning out, so user hooks written for the
// serial contract never observe two concurrent calls.
func WithSerializedHook(ctx context.Context) context.Context {
	h := HookFrom(ctx)
	if h == nil {
		return ctx
	}
	var mu sync.Mutex
	locked := Hook(func(it Iteration) {
		mu.Lock()
		defer mu.Unlock()
		h(it)
	})
	return context.WithValue(ctx, hookKey{}, locked)
}

type rngKey struct{}

// WithRNG returns a context carrying a deterministic random generator for
// stochastic layers to fall back on when the caller passes none. The
// generator is not safe for concurrent use; attach one per run, not one per
// process.
func WithRNG(ctx context.Context, rng *rand.Rand) context.Context {
	if rng == nil {
		return ctx
	}
	return context.WithValue(ctx, rngKey{}, rng)
}

// RNGFrom extracts the context's generator, nil if none.
func RNGFrom(ctx context.Context) *rand.Rand {
	if ctx == nil {
		return nil
	}
	rng, _ := ctx.Value(rngKey{}).(*rand.Rand)
	return rng
}

// Err is a nil-tolerant ctx.Err(): it reports the context's cancellation
// error, or nil for a nil context. Compute loops call it at
// iteration/sweep/block boundaries.
func Err(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Reason maps a run-ending error to its Stop* constant: StopDeadline for
// context.DeadlineExceeded, StopCancelled for context.Canceled, and "" for
// anything else (including nil).
func Reason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return StopDeadline
	case errors.Is(err, context.Canceled):
		return StopCancelled
	}
	return ""
}

// StopOf names the stop reason of a run that ended on its own: converged or
// iteration-cap.
func StopOf(converged bool) string {
	if converged {
		return StopConverged
	}
	return StopIterationCap
}
