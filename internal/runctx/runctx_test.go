package runctx

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestHookEmitNilSafe(t *testing.T) {
	var h Hook
	h.Emit(Iteration{N: 1}) // must not panic
}

func TestWithHookComposes(t *testing.T) {
	var order []string
	ctx := WithHook(context.Background(), func(it Iteration) {
		order = append(order, fmt.Sprintf("first:%d", it.N))
	})
	ctx = WithHook(ctx, func(it Iteration) {
		order = append(order, fmt.Sprintf("second:%d", it.N))
	})
	HookFrom(ctx).Emit(Iteration{N: 7})
	if len(order) != 2 || order[0] != "first:7" || order[1] != "second:7" {
		t.Fatalf("hooks did not compose in order: %v", order)
	}
}

func TestWithHookNilIsNoop(t *testing.T) {
	ctx := context.Background()
	if got := WithHook(ctx, nil); got != ctx {
		t.Fatal("WithHook(nil) should return the context unchanged")
	}
	if HookFrom(ctx) != nil {
		t.Fatal("background context should carry no hook")
	}
	if HookFrom(nil) != nil { //nolint:staticcheck // nil tolerance is the contract
		t.Fatal("nil context should carry no hook")
	}
}

func TestMultiHookOrderAndNilHandling(t *testing.T) {
	if MultiHook() != nil || MultiHook(nil, nil) != nil {
		t.Fatal("MultiHook of no live hooks should be nil")
	}
	var single []int
	one := Hook(func(it Iteration) { single = append(single, it.N) })
	MultiHook(nil, one).Emit(Iteration{N: 3})
	if len(single) != 1 || single[0] != 3 {
		t.Fatalf("single live hook not returned unwrapped: %v", single)
	}

	var order []string
	mk := func(name string) Hook {
		return func(it Iteration) { order = append(order, fmt.Sprintf("%s:%d", name, it.N)) }
	}
	h := MultiHook(mk("a"), nil, mk("b"), mk("c"))
	h.Emit(Iteration{N: 5})
	want := []string{"a:5", "b:5", "c:5"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v (argument order)", order, want)
		}
	}
}

func TestMultiHookPanicReportedNotSwallowed(t *testing.T) {
	var before, after int
	h := MultiHook(
		func(Iteration) { before++ },
		func(Iteration) { panic("observer bug") },
		func(Iteration) { after++ },
	)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		h.Emit(Iteration{N: 1})
	}()
	if recovered == nil {
		t.Fatal("sub-hook panic was swallowed")
	}
	if msg, ok := recovered.(string); !ok || msg != "observer bug" {
		t.Fatalf("recovered %v, want the sub-hook's panic value", recovered)
	}
	if before != 1 || after != 1 {
		t.Fatalf("hooks around the panicking one fired %d/%d times, want 1/1", before, after)
	}
}

func TestRNGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := WithRNG(context.Background(), rng)
	if got := RNGFrom(ctx); got != rng {
		t.Fatal("RNG did not round-trip")
	}
	if RNGFrom(context.Background()) != nil {
		t.Fatal("background context should carry no RNG")
	}
	if got := WithRNG(ctx, nil); got != ctx {
		t.Fatal("WithRNG(nil) should return the context unchanged")
	}
}

func TestErrNilTolerant(t *testing.T) {
	if err := Err(nil); err != nil { //nolint:staticcheck // nil tolerance is the contract
		t.Fatalf("Err(nil) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := Err(ctx); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	if !errors.Is(Err(ctx), context.Canceled) {
		t.Fatal("cancelled context not reported")
	}
}

func TestReason(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{errors.New("estimator blew up"), ""},
		{context.Canceled, StopCancelled},
		{context.DeadlineExceeded, StopDeadline},
		{fmt.Errorf("wrapped: %w", context.Canceled), StopCancelled},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), StopDeadline},
	}
	for _, c := range cases {
		if got := Reason(c.err); got != c.want {
			t.Errorf("Reason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestStopOf(t *testing.T) {
	if StopOf(true) != StopConverged || StopOf(false) != StopIterationCap {
		t.Fatal("StopOf mapping wrong")
	}
}
