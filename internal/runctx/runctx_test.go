package runctx

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestHookEmitNilSafe(t *testing.T) {
	var h Hook
	h.Emit(Iteration{N: 1}) // must not panic
}

func TestWithHookComposes(t *testing.T) {
	var order []string
	ctx := WithHook(context.Background(), func(it Iteration) {
		order = append(order, fmt.Sprintf("first:%d", it.N))
	})
	ctx = WithHook(ctx, func(it Iteration) {
		order = append(order, fmt.Sprintf("second:%d", it.N))
	})
	HookFrom(ctx).Emit(Iteration{N: 7})
	if len(order) != 2 || order[0] != "first:7" || order[1] != "second:7" {
		t.Fatalf("hooks did not compose in order: %v", order)
	}
}

func TestWithHookNilIsNoop(t *testing.T) {
	ctx := context.Background()
	if got := WithHook(ctx, nil); got != ctx {
		t.Fatal("WithHook(nil) should return the context unchanged")
	}
	if HookFrom(ctx) != nil {
		t.Fatal("background context should carry no hook")
	}
	if HookFrom(nil) != nil { //nolint:staticcheck // nil tolerance is the contract
		t.Fatal("nil context should carry no hook")
	}
}

func TestRNGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := WithRNG(context.Background(), rng)
	if got := RNGFrom(ctx); got != rng {
		t.Fatal("RNG did not round-trip")
	}
	if RNGFrom(context.Background()) != nil {
		t.Fatal("background context should carry no RNG")
	}
	if got := WithRNG(ctx, nil); got != ctx {
		t.Fatal("WithRNG(nil) should return the context unchanged")
	}
}

func TestErrNilTolerant(t *testing.T) {
	if err := Err(nil); err != nil { //nolint:staticcheck // nil tolerance is the contract
		t.Fatalf("Err(nil) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := Err(ctx); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	if !errors.Is(Err(ctx), context.Canceled) {
		t.Fatal("cancelled context not reported")
	}
}

func TestReason(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{errors.New("estimator blew up"), ""},
		{context.Canceled, StopCancelled},
		{context.DeadlineExceeded, StopDeadline},
		{fmt.Errorf("wrapped: %w", context.Canceled), StopCancelled},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), StopDeadline},
	}
	for _, c := range cases {
		if got := Reason(c.err); got != c.want {
			t.Errorf("Reason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestStopOf(t *testing.T) {
	if StopOf(true) != StopConverged || StopOf(false) != StopIterationCap {
		t.Fatal("StopOf mapping wrong")
	}
}
