package gibbs

import (
	"fmt"
	"testing"

	"depsense/internal/randutil"
)

// BenchmarkProductMixtureSweep measures one systematic-scan sweep of the
// two-component chain used by the error bound, across vector sizes.
func BenchmarkProductMixtureSweep(b *testing.B) {
	for _, n := range []int{10, 50, 200, 1000} {
		rng := randutil.New(1)
		prior, pOn := randomMixture(rng, 2, n)
		chain, err := NewProductMixtureChain(prior, pOn, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chain.Sweep()
			}
		})
	}
}
