package gibbs

import (
	"context"
	"fmt"
	"testing"

	"depsense/internal/randutil"
)

// BenchmarkProductMixtureSweep measures one systematic-scan sweep of the
// two-component chain used by the error bound, across vector sizes.
func BenchmarkProductMixtureSweep(b *testing.B) {
	for _, n := range []int{10, 50, 200, 1000} {
		rng := randutil.New(1)
		prior, pOn := randomMixture(rng, 2, n)
		chain, err := NewProductMixtureChain(prior, pOn, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chain.Sweep()
			}
		})
	}
}

// BenchmarkSweepN measures the batched sweep loop (the burn-in path of the
// bound approximation) including its per-batch cancellation checks.
func BenchmarkSweepN(b *testing.B) {
	for _, n := range []int{50, 500} {
		rng := randutil.New(2)
		prior, pOn := randomMixture(rng, 2, n)
		chain, err := NewProductMixtureChain(prior, pOn, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chain.SweepN(context.Background(), 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
