// Package gibbs implements Gibbs sampling over binary vectors.
//
// The error bound of Section III-B needs samples of claim patterns
// SC_j ∈ {0,1}^n from the marginal P(SC_j) = Σ_c P(C_j=c)·P(SC_j|C_j=c),
// a two-component mixture of product-of-Bernoulli distributions. The
// ProductMixtureChain samples from the general H-component version of that
// family with O(1) work per bit update, by maintaining the running product
// weights of every mixture component in log space.
//
// A generic Sampler over a user-supplied Model is also provided; it is used
// by tests to cross-check the specialized chain against a from-scratch
// conditional computation.
package gibbs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"depsense/internal/runctx"
)

// Model defines a joint distribution over binary vectors through its full
// conditionals, the minimal interface Gibbs sampling needs.
type Model interface {
	// Len returns the vector dimension.
	Len() int
	// CondProbOne returns P(x_i = 1 | x_{-i}) for the current state x.
	// Implementations may inspect x[i] but must not depend on it.
	CondProbOne(x []bool, i int) float64
}

// Sampler runs systematic-scan Gibbs sweeps over a Model.
type Sampler struct {
	model Model
	rng   *rand.Rand
	state []bool
}

// NewSampler creates a Sampler with the given initial state; a nil init
// starts from the all-false vector.
func NewSampler(m Model, rng *rand.Rand, init []bool) (*Sampler, error) {
	n := m.Len()
	state := make([]bool, n)
	if init != nil {
		if len(init) != n {
			return nil, fmt.Errorf("gibbs: init length %d != model length %d", len(init), n)
		}
		copy(state, init)
	}
	return &Sampler{model: m, rng: rng, state: state}, nil
}

// Sweep resamples every coordinate once in index order.
func (s *Sampler) Sweep() {
	for i := range s.state {
		s.state[i] = s.rng.Float64() < s.model.CondProbOne(s.state, i)
	}
}

// SweepN runs up to n sweeps, checking ctx between sweeps — the per-sweep
// checkpoint of the run-context layer. It returns the number of completed
// sweeps and the context's error if cancellation cut the run short.
func (s *Sampler) SweepN(ctx context.Context, n int) (int, error) {
	for done := 0; done < n; done++ {
		if err := runctx.Err(ctx); err != nil {
			return done, err
		}
		s.Sweep()
	}
	return n, nil
}

// State returns the current vector. The slice is owned by the Sampler; copy
// it before mutating.
func (s *Sampler) State() []bool { return s.state }

// ProductMixtureChain samples x ∈ {0,1}^n from
//
//	P(x) = Σ_h prior[h] · Π_i pOn[h][i]^x_i (1-pOn[h][i])^(1-x_i)
//
// maintaining per-component running log-products so one bit update costs
// O(H) instead of O(H·n). Numerical drift from incremental updates is
// bounded by recomputing the products from scratch every refreshEvery
// sweeps.
// The per-bit tables are stored bit-major and flattened — entry (k, i)
// lives at [i*h + k] — so one bit update reads all H components from a
// single cache line, and exp(logOn)/exp(logOff) are precomputed at
// construction instead of re-exponentiated on every visit (the same
// float64 values, so sampling paths are bit-identical to the
// per-bit-Exp formulation the differential test replays).
type ProductMixtureChain struct {
	n        int
	h        int
	logOn    []float64 // [i*h + k] log pOn[k][i]
	logOff   []float64 // [i*h + k] log (1-pOn[k][i])
	expOn    []float64 // [i*h + k] pOn as exp(logOn), the conditional's numerator factor
	expOff   []float64 // [i*h + k] exp(logOff)
	logPrior []float64
	state    []bool
	logW     []float64 // logPrior[h] + Σ_i log p_h(x_i)
	rng      *rand.Rand
	sweeps   int
}

// refreshEvery bounds floating-point drift in the incremental log-weights.
const refreshEvery = 256

// ErrBadMixture is returned for structurally invalid mixture parameters.
var ErrBadMixture = errors.New("gibbs: invalid mixture specification")

// NewProductMixtureChain validates the mixture and initializes the chain at
// a random state. Priors must be positive and on-probabilities in (0,1);
// callers clamp boundary values first (see model.ClampProb).
func NewProductMixtureChain(prior []float64, pOn [][]float64, rng *rand.Rand) (*ProductMixtureChain, error) {
	h := len(prior)
	if h == 0 || len(pOn) != h {
		return nil, fmt.Errorf("%w: %d priors, %d components", ErrBadMixture, h, len(pOn))
	}
	n := len(pOn[0])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length vectors", ErrBadMixture)
	}
	c := &ProductMixtureChain{
		n:        n,
		h:        h,
		logOn:    make([]float64, n*h),
		logOff:   make([]float64, n*h),
		expOn:    make([]float64, n*h),
		expOff:   make([]float64, n*h),
		logPrior: make([]float64, h),
		state:    make([]bool, n),
		logW:     make([]float64, h),
		rng:      rng,
	}
	for k := 0; k < h; k++ {
		if len(pOn[k]) != n {
			return nil, fmt.Errorf("%w: component %d has %d probs, want %d", ErrBadMixture, k, len(pOn[k]), n)
		}
		if prior[k] <= 0 {
			return nil, fmt.Errorf("%w: prior[%d] = %v must be positive", ErrBadMixture, k, prior[k])
		}
		c.logPrior[k] = math.Log(prior[k])
		for i, p := range pOn[k] {
			if p <= 0 || p >= 1 {
				return nil, fmt.Errorf("%w: pOn[%d][%d] = %v must be in (0,1)", ErrBadMixture, k, i, p)
			}
			at := i*h + k
			c.logOn[at] = math.Log(p)
			c.logOff[at] = math.Log(1 - p)
			c.expOn[at] = math.Exp(c.logOn[at])
			c.expOff[at] = math.Exp(c.logOff[at])
		}
	}
	for i := range c.state {
		c.state[i] = rng.Float64() < 0.5
	}
	c.recomputeWeights()
	return c, nil
}

// N returns the vector dimension.
func (c *ProductMixtureChain) N() int { return c.n }

// recomputeWeights rebuilds the running log-products from the state, each
// component's sum accumulated in ascending bit order.
func (c *ProductMixtureChain) recomputeWeights() {
	for k := 0; k < c.h; k++ {
		w := c.logPrior[k]
		for i, on := range c.state {
			if on {
				w += c.logOn[i*c.h+k]
			} else {
				w += c.logOff[i*c.h+k]
			}
		}
		c.logW[k] = w
	}
}

// Sweep resamples every bit once. Each bit uses the exact full conditional
// P(x_i=1 | x_{-i}) = Σ_h W_h^{-i}·pOn[h][i] / Σ_h W_h^{-i}, where W_h^{-i}
// is the component joint weight with bit i's factor removed. The
// two-component case — the truth mixture of Section III-B, and by far the
// dominant caller — runs through an unrolled sweep that keeps the running
// weights in registers across the whole batch of bits.
func (c *ProductMixtureChain) Sweep() {
	if c.h == 2 {
		c.sweep2()
	} else {
		for i := 0; i < c.n; i++ {
			c.sampleBit(i)
		}
	}
	c.sweeps++
	if c.sweeps%refreshEvery == 0 {
		c.recomputeWeights()
	}
}

// sweep2 is Sweep's batched inner loop for H = 2, bit-identical to the
// generic path: the same subtractions, the same strict-greater max rule,
// and the same accumulation order for the conditional's numerator and
// denominator.
func (c *ProductMixtureChain) sweep2() {
	var (
		logOn, logOff = c.logOn, c.logOff
		expOn, expOff = c.expOn, c.expOff
		state         = c.state
		rng           = c.rng
		w0, w1        = c.logW[0], c.logW[1]
	)
	for i := 0; i < c.n; i++ {
		at := i * 2
		cur0, cur1 := logOff[at], logOff[at+1]
		if state[i] {
			cur0, cur1 = logOn[at], logOn[at+1]
		}
		m0 := w0 - cur0
		m1 := w1 - cur1
		maxLog := m0
		if m1 > maxLog {
			maxLog = m1
		}
		e0 := math.Exp(m0 - maxLog)
		e1 := math.Exp(m1 - maxLog)
		num := e0*expOn[at] + e1*expOn[at+1]
		den := e0*expOff[at] + e1*expOff[at+1]
		pOne := num / (num + den)
		on := rng.Float64() < pOne
		state[i] = on
		if on {
			w0 = m0 + logOn[at]
			w1 = m1 + logOn[at+1]
		} else {
			w0 = m0 + logOff[at]
			w1 = m1 + logOff[at+1]
		}
	}
	c.logW[0], c.logW[1] = w0, w1
}

func (c *ProductMixtureChain) sampleBit(i int) {
	// Remove bit i's factor from every component weight.
	maxLog := math.Inf(-1)
	var minus [8]float64 // stack space for the common small-H case
	var minusSlice []float64
	if c.h <= len(minus) {
		minusSlice = minus[:c.h]
	} else {
		minusSlice = make([]float64, c.h)
	}
	base := i * c.h
	for k := 0; k < c.h; k++ {
		cur := c.logOff[base+k]
		if c.state[i] {
			cur = c.logOn[base+k]
		}
		minusSlice[k] = c.logW[k] - cur
		if minusSlice[k] > maxLog {
			maxLog = minusSlice[k]
		}
	}
	var num, den float64
	for k := 0; k < c.h; k++ {
		w := math.Exp(minusSlice[k] - maxLog)
		num += w * c.expOn[base+k]
		den += w * c.expOff[base+k]
	}
	pOne := num / (num + den)
	on := c.rng.Float64() < pOne
	c.state[i] = on
	for k := 0; k < c.h; k++ {
		if on {
			c.logW[k] = minusSlice[k] + c.logOn[base+k]
		} else {
			c.logW[k] = minusSlice[k] + c.logOff[base+k]
		}
	}
}

// SweepN runs up to n sweeps, checking ctx between sweeps. It returns the
// number of completed sweeps and the context's error if cancellation cut the
// run short; the chain state after a partial run is the deterministic result
// of the completed sweeps.
func (c *ProductMixtureChain) SweepN(ctx context.Context, n int) (int, error) {
	for done := 0; done < n; done++ {
		if err := runctx.Err(ctx); err != nil {
			return done, err
		}
		c.Sweep()
	}
	return n, nil
}

// State returns the current vector, owned by the chain.
func (c *ProductMixtureChain) State() []bool { return c.state }

// LogJointWeights returns, for each component h, log(prior[h]·P(x|h)) at
// the current state. The slice is owned by the chain.
func (c *ProductMixtureChain) LogJointWeights() []float64 { return c.logW }
