// Package gibbs implements Gibbs sampling over binary vectors.
//
// The error bound of Section III-B needs samples of claim patterns
// SC_j ∈ {0,1}^n from the marginal P(SC_j) = Σ_c P(C_j=c)·P(SC_j|C_j=c),
// a two-component mixture of product-of-Bernoulli distributions. The
// ProductMixtureChain samples from the general H-component version of that
// family with O(1) work per bit update, by maintaining the running product
// weights of every mixture component in log space.
//
// A generic Sampler over a user-supplied Model is also provided; it is used
// by tests to cross-check the specialized chain against a from-scratch
// conditional computation.
package gibbs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"depsense/internal/runctx"
)

// Model defines a joint distribution over binary vectors through its full
// conditionals, the minimal interface Gibbs sampling needs.
type Model interface {
	// Len returns the vector dimension.
	Len() int
	// CondProbOne returns P(x_i = 1 | x_{-i}) for the current state x.
	// Implementations may inspect x[i] but must not depend on it.
	CondProbOne(x []bool, i int) float64
}

// Sampler runs systematic-scan Gibbs sweeps over a Model.
type Sampler struct {
	model Model
	rng   *rand.Rand
	state []bool
}

// NewSampler creates a Sampler with the given initial state; a nil init
// starts from the all-false vector.
func NewSampler(m Model, rng *rand.Rand, init []bool) (*Sampler, error) {
	n := m.Len()
	state := make([]bool, n)
	if init != nil {
		if len(init) != n {
			return nil, fmt.Errorf("gibbs: init length %d != model length %d", len(init), n)
		}
		copy(state, init)
	}
	return &Sampler{model: m, rng: rng, state: state}, nil
}

// Sweep resamples every coordinate once in index order.
func (s *Sampler) Sweep() {
	for i := range s.state {
		s.state[i] = s.rng.Float64() < s.model.CondProbOne(s.state, i)
	}
}

// SweepN runs up to n sweeps, checking ctx between sweeps — the per-sweep
// checkpoint of the run-context layer. It returns the number of completed
// sweeps and the context's error if cancellation cut the run short.
func (s *Sampler) SweepN(ctx context.Context, n int) (int, error) {
	for done := 0; done < n; done++ {
		if err := runctx.Err(ctx); err != nil {
			return done, err
		}
		s.Sweep()
	}
	return n, nil
}

// State returns the current vector. The slice is owned by the Sampler; copy
// it before mutating.
func (s *Sampler) State() []bool { return s.state }

// ProductMixtureChain samples x ∈ {0,1}^n from
//
//	P(x) = Σ_h prior[h] · Π_i pOn[h][i]^x_i (1-pOn[h][i])^(1-x_i)
//
// maintaining per-component running log-products so one bit update costs
// O(H) instead of O(H·n). Numerical drift from incremental updates is
// bounded by recomputing the products from scratch every refreshEvery
// sweeps.
type ProductMixtureChain struct {
	n        int
	h        int
	logOn    [][]float64 // [h][i] log pOn
	logOff   [][]float64 // [h][i] log (1-pOn)
	logPrior []float64
	state    []bool
	logW     []float64 // logPrior[h] + Σ_i log p_h(x_i)
	rng      *rand.Rand
	sweeps   int
}

// refreshEvery bounds floating-point drift in the incremental log-weights.
const refreshEvery = 256

// ErrBadMixture is returned for structurally invalid mixture parameters.
var ErrBadMixture = errors.New("gibbs: invalid mixture specification")

// NewProductMixtureChain validates the mixture and initializes the chain at
// a random state. Priors must be positive and on-probabilities in (0,1);
// callers clamp boundary values first (see model.ClampProb).
func NewProductMixtureChain(prior []float64, pOn [][]float64, rng *rand.Rand) (*ProductMixtureChain, error) {
	h := len(prior)
	if h == 0 || len(pOn) != h {
		return nil, fmt.Errorf("%w: %d priors, %d components", ErrBadMixture, h, len(pOn))
	}
	n := len(pOn[0])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length vectors", ErrBadMixture)
	}
	c := &ProductMixtureChain{
		n:        n,
		h:        h,
		logOn:    make([][]float64, h),
		logOff:   make([][]float64, h),
		logPrior: make([]float64, h),
		state:    make([]bool, n),
		logW:     make([]float64, h),
		rng:      rng,
	}
	for k := 0; k < h; k++ {
		if len(pOn[k]) != n {
			return nil, fmt.Errorf("%w: component %d has %d probs, want %d", ErrBadMixture, k, len(pOn[k]), n)
		}
		if prior[k] <= 0 {
			return nil, fmt.Errorf("%w: prior[%d] = %v must be positive", ErrBadMixture, k, prior[k])
		}
		c.logPrior[k] = math.Log(prior[k])
		c.logOn[k] = make([]float64, n)
		c.logOff[k] = make([]float64, n)
		for i, p := range pOn[k] {
			if p <= 0 || p >= 1 {
				return nil, fmt.Errorf("%w: pOn[%d][%d] = %v must be in (0,1)", ErrBadMixture, k, i, p)
			}
			c.logOn[k][i] = math.Log(p)
			c.logOff[k][i] = math.Log(1 - p)
		}
	}
	for i := range c.state {
		c.state[i] = rng.Float64() < 0.5
	}
	c.recomputeWeights()
	return c, nil
}

// N returns the vector dimension.
func (c *ProductMixtureChain) N() int { return c.n }

// recomputeWeights rebuilds the running log-products from the state.
func (c *ProductMixtureChain) recomputeWeights() {
	for k := 0; k < c.h; k++ {
		w := c.logPrior[k]
		for i, on := range c.state {
			if on {
				w += c.logOn[k][i]
			} else {
				w += c.logOff[k][i]
			}
		}
		c.logW[k] = w
	}
}

// Sweep resamples every bit once. Each bit uses the exact full conditional
// P(x_i=1 | x_{-i}) = Σ_h W_h^{-i}·pOn[h][i] / Σ_h W_h^{-i}, where W_h^{-i}
// is the component joint weight with bit i's factor removed.
func (c *ProductMixtureChain) Sweep() {
	for i := 0; i < c.n; i++ {
		c.sampleBit(i)
	}
	c.sweeps++
	if c.sweeps%refreshEvery == 0 {
		c.recomputeWeights()
	}
}

func (c *ProductMixtureChain) sampleBit(i int) {
	// Remove bit i's factor from every component weight.
	maxLog := math.Inf(-1)
	var minus [8]float64 // stack space for the common small-H case
	var minusSlice []float64
	if c.h <= len(minus) {
		minusSlice = minus[:c.h]
	} else {
		minusSlice = make([]float64, c.h)
	}
	for k := 0; k < c.h; k++ {
		cur := c.logOff[k][i]
		if c.state[i] {
			cur = c.logOn[k][i]
		}
		minusSlice[k] = c.logW[k] - cur
		if minusSlice[k] > maxLog {
			maxLog = minusSlice[k]
		}
	}
	var num, den float64
	for k := 0; k < c.h; k++ {
		w := math.Exp(minusSlice[k] - maxLog)
		num += w * math.Exp(c.logOn[k][i])
		den += w * math.Exp(c.logOff[k][i])
	}
	pOne := num / (num + den)
	on := c.rng.Float64() < pOne
	c.state[i] = on
	for k := 0; k < c.h; k++ {
		if on {
			c.logW[k] = minusSlice[k] + c.logOn[k][i]
		} else {
			c.logW[k] = minusSlice[k] + c.logOff[k][i]
		}
	}
}

// SweepN runs up to n sweeps, checking ctx between sweeps. It returns the
// number of completed sweeps and the context's error if cancellation cut the
// run short; the chain state after a partial run is the deterministic result
// of the completed sweeps.
func (c *ProductMixtureChain) SweepN(ctx context.Context, n int) (int, error) {
	for done := 0; done < n; done++ {
		if err := runctx.Err(ctx); err != nil {
			return done, err
		}
		c.Sweep()
	}
	return n, nil
}

// State returns the current vector, owned by the chain.
func (c *ProductMixtureChain) State() []bool { return c.state }

// LogJointWeights returns, for each component h, log(prior[h]·P(x|h)) at
// the current state. The slice is owned by the chain.
func (c *ProductMixtureChain) LogJointWeights() []float64 { return c.logW }
