package gibbs

import (
	"math"
	"math/rand"
	"testing"
)

// refChain is the pre-flattening ProductMixtureChain implementation kept
// verbatim as the differential oracle: [h][i] tables, per-bit
// re-exponentiation, one generic sample loop. The production chain
// (flattened tables, precomputed exp, unrolled two-component sweep) must
// reproduce its state stream bit for bit — same conditionals, same RNG
// consumption, same incremental weights.
type refChain struct {
	n, h     int
	logOn    [][]float64
	logOff   [][]float64
	logPrior []float64
	state    []bool
	logW     []float64
	rng      *rand.Rand
	sweeps   int
}

func newRefChain(prior []float64, pOn [][]float64, rng *rand.Rand) *refChain {
	h := len(prior)
	n := len(pOn[0])
	c := &refChain{
		n: n, h: h,
		logOn:    make([][]float64, h),
		logOff:   make([][]float64, h),
		logPrior: make([]float64, h),
		state:    make([]bool, n),
		logW:     make([]float64, h),
		rng:      rng,
	}
	for k := 0; k < h; k++ {
		c.logPrior[k] = math.Log(prior[k])
		c.logOn[k] = make([]float64, n)
		c.logOff[k] = make([]float64, n)
		for i, p := range pOn[k] {
			c.logOn[k][i] = math.Log(p)
			c.logOff[k][i] = math.Log(1 - p)
		}
	}
	for i := range c.state {
		c.state[i] = rng.Float64() < 0.5
	}
	c.recompute()
	return c
}

func (c *refChain) recompute() {
	for k := 0; k < c.h; k++ {
		w := c.logPrior[k]
		for i, on := range c.state {
			if on {
				w += c.logOn[k][i]
			} else {
				w += c.logOff[k][i]
			}
		}
		c.logW[k] = w
	}
}

func (c *refChain) sweep() {
	for i := 0; i < c.n; i++ {
		maxLog := math.Inf(-1)
		minus := make([]float64, c.h)
		for k := 0; k < c.h; k++ {
			cur := c.logOff[k][i]
			if c.state[i] {
				cur = c.logOn[k][i]
			}
			minus[k] = c.logW[k] - cur
			if minus[k] > maxLog {
				maxLog = minus[k]
			}
		}
		var num, den float64
		for k := 0; k < c.h; k++ {
			w := math.Exp(minus[k] - maxLog)
			num += w * math.Exp(c.logOn[k][i])
			den += w * math.Exp(c.logOff[k][i])
		}
		pOne := num / (num + den)
		on := c.rng.Float64() < pOne
		c.state[i] = on
		for k := 0; k < c.h; k++ {
			if on {
				c.logW[k] = minus[k] + c.logOn[k][i]
			} else {
				c.logW[k] = minus[k] + c.logOff[k][i]
			}
		}
	}
	c.sweeps++
	if c.sweeps%refreshEvery == 0 {
		c.recompute()
	}
}

// TestChainMatchesReference drives the production chain and the reference
// implementation from identically seeded RNGs and demands bit-identical
// states and log-weights after every sweep, at H = 2 (the unrolled sweep2
// path) and H = 3 (the generic path), across the refreshEvery boundary so
// the periodic from-scratch recomputation is also covered.
func TestChainMatchesReference(t *testing.T) {
	for _, h := range []int{2, 3} {
		for _, n := range []int{1, 7, 64, 301} {
			seed := int64(1000*h + n)
			setup := rand.New(rand.NewSource(seed))
			prior := make([]float64, h)
			pOn := make([][]float64, h)
			for k := range prior {
				prior[k] = 0.1 + setup.Float64()
				pOn[k] = make([]float64, n)
				for i := range pOn[k] {
					// Include near-boundary probabilities: the bound's
					// clamped channels sit at 1e-9.
					switch i % 3 {
					case 0:
						pOn[k][i] = 1e-9 + setup.Float64()*1e-6
					case 1:
						pOn[k][i] = 1 - 1e-9 - setup.Float64()*1e-6
					default:
						pOn[k][i] = 0.05 + 0.9*setup.Float64()
					}
				}
			}
			got, err := NewProductMixtureChain(prior, pOn, rand.New(rand.NewSource(seed+1)))
			if err != nil {
				t.Fatalf("h=%d n=%d: %v", h, n, err)
			}
			want := newRefChain(prior, pOn, rand.New(rand.NewSource(seed+1)))
			sweeps := refreshEvery + 40 // cross the periodic recompute
			if testing.Short() {
				sweeps = 50
			}
			for s := 0; s < sweeps; s++ {
				got.Sweep()
				want.sweep()
				for i := range want.state {
					if got.state[i] != want.state[i] {
						t.Fatalf("h=%d n=%d sweep %d: state[%d] diverged", h, n, s, i)
					}
				}
				for k := range want.logW {
					if math.Float64bits(got.logW[k]) != math.Float64bits(want.logW[k]) {
						t.Fatalf("h=%d n=%d sweep %d: logW[%d] = %x, want %x",
							h, n, s, k, got.logW[k], want.logW[k])
					}
				}
			}
		}
	}
}
