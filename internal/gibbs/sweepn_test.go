package gibbs

import (
	"context"
	"errors"
	"testing"

	"depsense/internal/randutil"
)

// constModel is a trivial Model whose bits are i.i.d. Bernoulli(p).
type constModel struct {
	n int
	p float64
}

func (m constModel) Len() int                        { return m.n }
func (m constModel) CondProbOne([]bool, int) float64 { return m.p }

func newTestChain(t *testing.T, seed int64) *ProductMixtureChain {
	t.Helper()
	prior := []float64{0.4, 0.6}
	pOn := [][]float64{
		{0.8, 0.2, 0.7, 0.3, 0.5},
		{0.1, 0.9, 0.4, 0.6, 0.2},
	}
	c, err := NewProductMixtureChain(prior, pOn, randutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSamplerSweepNPreCancelled(t *testing.T) {
	s, err := NewSampler(constModel{n: 8, p: 0.3}, randutil.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]bool(nil), s.State()...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done, err := s.SweepN(ctx, 50)
	if done != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("done=%d err=%v", done, err)
	}
	for i, b := range s.State() {
		if b != before[i] {
			t.Fatalf("state mutated by a pre-cancelled SweepN at bit %d", i)
		}
	}
}

func TestSamplerSweepNMatchesSweepLoop(t *testing.T) {
	const n, sweeps = 8, 37
	a, err := NewSampler(constModel{n: n, p: 0.3}, randutil.New(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSampler(constModel{n: n, p: 0.3}, randutil.New(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	done, err := a.SweepN(context.Background(), sweeps)
	if done != sweeps || err != nil {
		t.Fatalf("done=%d err=%v", done, err)
	}
	for i := 0; i < sweeps; i++ {
		b.Sweep()
	}
	for i := range a.State() {
		if a.State()[i] != b.State()[i] {
			t.Fatalf("SweepN and Sweep loop diverge at bit %d", i)
		}
	}
}

func TestChainSweepNPreCancelled(t *testing.T) {
	c := newTestChain(t, 3)
	before := append([]bool(nil), c.State()...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done, err := c.SweepN(ctx, 100)
	if done != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("done=%d err=%v", done, err)
	}
	for i, b := range c.State() {
		if b != before[i] {
			t.Fatalf("state mutated by a pre-cancelled SweepN at bit %d", i)
		}
	}
}

func TestChainSweepNMatchesSweepLoop(t *testing.T) {
	const sweeps = 300 // crosses a refreshEvery boundary on neither chain
	a := newTestChain(t, 11)
	b := newTestChain(t, 11)
	done, err := a.SweepN(context.Background(), sweeps)
	if done != sweeps || err != nil {
		t.Fatalf("done=%d err=%v", done, err)
	}
	for i := 0; i < sweeps; i++ {
		b.Sweep()
	}
	for i := range a.State() {
		if a.State()[i] != b.State()[i] {
			t.Fatalf("SweepN and Sweep loop diverge at bit %d", i)
		}
	}
}

func TestChainSweepNPartialIsDeterministic(t *testing.T) {
	// Two identically-seeded chains cancelled at the same sweep count land
	// in the same state.
	run := func() (int, []bool, error) {
		c := newTestChain(t, 21)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := 0
		var err error
		for done < 50 {
			var d int
			d, err = c.SweepN(ctx, 1)
			done += d
			if err != nil {
				break
			}
			if done == 20 {
				cancel()
			}
		}
		return done, append([]bool(nil), c.State()...), err
	}
	d1, s1, err1 := run()
	d2, s2, err2 := run()
	if !errors.Is(err1, context.Canceled) || !errors.Is(err2, context.Canceled) {
		t.Fatalf("errs = %v, %v", err1, err2)
	}
	if d1 != 20 || d2 != 20 {
		t.Fatalf("completed sweeps = %d, %d, want 20", d1, d2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("partial states diverge at bit %d", i)
		}
	}
}
