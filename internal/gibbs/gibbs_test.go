package gibbs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"depsense/internal/randutil"
)

// bruteMixture is a reference Model implementation of the same product
// mixture, computing conditionals from scratch.
type bruteMixture struct {
	prior []float64
	pOn   [][]float64
}

func (b *bruteMixture) Len() int { return len(b.pOn[0]) }

func (b *bruteMixture) joint(x []bool) float64 {
	total := 0.0
	for h := range b.prior {
		w := b.prior[h]
		for i, on := range x {
			if on {
				w *= b.pOn[h][i]
			} else {
				w *= 1 - b.pOn[h][i]
			}
		}
		total += w
	}
	return total
}

func (b *bruteMixture) CondProbOne(x []bool, i int) float64 {
	y := make([]bool, len(x))
	copy(y, x)
	y[i] = true
	on := b.joint(y)
	y[i] = false
	off := b.joint(y)
	return on / (on + off)
}

func randomMixture(rng *rand.Rand, h, n int) ([]float64, [][]float64) {
	prior := make([]float64, h)
	total := 0.0
	for k := range prior {
		prior[k] = 0.1 + rng.Float64()
		total += prior[k]
	}
	for k := range prior {
		prior[k] /= total
	}
	pOn := make([][]float64, h)
	for k := range pOn {
		pOn[k] = make([]float64, n)
		for i := range pOn[k] {
			pOn[k][i] = 0.05 + 0.9*rng.Float64()
		}
	}
	return prior, pOn
}

// TestChainConditionalsMatchBruteForce compares the incremental O(1)
// conditionals of ProductMixtureChain against from-scratch computation.
func TestChainConditionalsMatchBruteForce(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := randutil.New(seed)
		h := 2 + rng.Intn(3)
		n := 1 + rng.Intn(8)
		prior, pOn := randomMixture(rng, h, n)
		chain, err := NewProductMixtureChain(prior, pOn, rng)
		if err != nil {
			return false
		}
		brute := &bruteMixture{prior: prior, pOn: pOn}
		for sweep := 0; sweep < 3; sweep++ {
			for i := 0; i < n; i++ {
				// Probe the chain's conditional by reconstructing it from
				// the running weights (mirrors sampleBit's arithmetic).
				state := chain.State()
				lw := chain.LogJointWeights()
				num, den := 0.0, 0.0
				for k := 0; k < h; k++ {
					cur := 1 - pOn[k][i]
					if state[i] {
						cur = pOn[k][i]
					}
					wMinus := math.Exp(lw[k]) / cur
					num += wMinus * pOn[k][i]
					den += wMinus * (1 - pOn[k][i])
				}
				got := num / (num + den)
				want := brute.CondProbOne(state, i)
				if math.Abs(got-want) > 1e-9 {
					return false
				}
			}
			chain.Sweep()
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChainSamplesTargetDistribution verifies empirically that long-run
// state frequencies approach the mixture probabilities on a tiny space.
func TestChainSamplesTargetDistribution(t *testing.T) {
	rng := randutil.New(7)
	prior := []float64{0.6, 0.4}
	pOn := [][]float64{{0.8, 0.3}, {0.2, 0.9}}
	chain, err := NewProductMixtureChain(prior, pOn, rng)
	if err != nil {
		t.Fatal(err)
	}
	brute := &bruteMixture{prior: prior, pOn: pOn}

	counts := make(map[int]int)
	const sweeps = 200000
	for s := 0; s < sweeps; s++ {
		chain.Sweep()
		key := 0
		for i, on := range chain.State() {
			if on {
				key |= 1 << i
			}
		}
		counts[key]++
	}
	for key := 0; key < 4; key++ {
		x := []bool{key&1 != 0, key&2 != 0}
		want := brute.joint(x)
		got := float64(counts[key]) / sweeps
		if math.Abs(got-want) > 0.01 {
			t.Errorf("pattern %02b: freq %v, want %v", key, got, want)
		}
	}
}

// TestLogJointWeightsStayConsistent checks that incremental updates plus
// periodic refresh never drift from the from-scratch weights.
func TestLogJointWeightsStayConsistent(t *testing.T) {
	rng := randutil.New(9)
	prior, pOn := randomMixture(rng, 3, 12)
	chain, err := NewProductMixtureChain(prior, pOn, rng)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 600; s++ {
		chain.Sweep()
	}
	state := chain.State()
	lw := chain.LogJointWeights()
	for k := range prior {
		want := math.Log(prior[k])
		for i, on := range state {
			if on {
				want += math.Log(pOn[k][i])
			} else {
				want += math.Log(1 - pOn[k][i])
			}
		}
		if math.Abs(lw[k]-want) > 1e-8 {
			t.Fatalf("component %d drifted: %v vs %v", k, lw[k], want)
		}
	}
}

func TestNewProductMixtureChainValidation(t *testing.T) {
	rng := randutil.New(1)
	cases := []struct {
		prior []float64
		pOn   [][]float64
	}{
		{nil, nil},
		{[]float64{1}, [][]float64{}},
		{[]float64{0.5, 0.5}, [][]float64{{0.5}, {0.5, 0.5}}},
		{[]float64{0.5, 0.5}, [][]float64{{}, {}}},
		{[]float64{0, 1}, [][]float64{{0.5}, {0.5}}},
		{[]float64{0.5, 0.5}, [][]float64{{0.5}, {1.0}}},
		{[]float64{0.5, 0.5}, [][]float64{{0.0}, {0.5}}},
	}
	for i, c := range cases {
		if _, err := NewProductMixtureChain(c.prior, c.pOn, rng); err == nil {
			t.Errorf("case %d: invalid mixture accepted", i)
		}
	}
}

func TestGenericSampler(t *testing.T) {
	rng := randutil.New(3)
	brute := &bruteMixture{
		prior: []float64{0.5, 0.5},
		pOn:   [][]float64{{0.9, 0.1}, {0.1, 0.9}},
	}
	s, err := NewSampler(brute, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	onCount := 0
	const sweeps = 50000
	for i := 0; i < sweeps; i++ {
		s.Sweep()
		if s.State()[0] {
			onCount++
		}
	}
	// Marginal P(x0=1) = 0.5·0.9 + 0.5·0.1 = 0.5.
	rate := float64(onCount) / sweeps
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("marginal = %v, want ~0.5", rate)
	}
}

func TestNewSamplerInitValidation(t *testing.T) {
	brute := &bruteMixture{prior: []float64{1}, pOn: [][]float64{{0.5, 0.5}}}
	if _, err := NewSampler(brute, randutil.New(1), []bool{true}); err == nil {
		t.Fatal("mismatched init length accepted")
	}
	s, err := NewSampler(brute, randutil.New(1), []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if !s.State()[0] || s.State()[1] {
		t.Fatal("init state not honored")
	}
}
