package serve

import "sync"

// flightCall is one in-flight computation shared by every concurrent caller
// of the same key. val is written by the leader before done is closed; the
// close is the happens-before edge that publishes it to followers.
type flightCall struct {
	done chan struct{}
	val  any
	// waiters counts attached followers; accessed only under Group.mu.
	waiters int
}

// Group coalesces concurrent calls with the same key into one execution:
// the first caller (the leader) runs fn, everyone else (the followers)
// blocks until the leader finishes and observes the same value. Unlike
// x/sync/singleflight there is no error channel — the serving layer folds
// failures into the shared value itself, so followers replay exactly the
// bytes the leader produced.
type Group struct {
	mu    sync.Mutex
	calls map[string]*flightCall // guarded by mu
}

// Do executes fn under key, coalescing concurrent duplicates: exactly one
// caller runs fn; the rest wait and receive the leader's value with
// shared=true. Once the leader returns, the key is forgotten — later calls
// start a fresh execution (the result cache, not the group, carries values
// forward in time). If the leader's fn panics, followers observe a nil
// value (and the panic propagates on the leader's goroutine); callers must
// treat nil as an internal failure.
func (g *Group) Do(key string, fn func() any) (v any, shared bool) {
	c, leader := g.join(key)
	if !leader {
		<-c.done
		return c.val, true
	}
	g.lead(key, c, fn)
	return c.val, false
}

// join attaches the caller to key's flight, creating it when absent, and
// reports whether the caller is its leader.
func (g *Group) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// Pending reports how many callers are currently attached to key: 0 when
// idle, leader + followers otherwise. Tests use it to know a coalescing
// scenario is fully assembled before releasing the leader.
func (g *Group) Pending(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return 0
	}
	return c.waiters + 1
}

// lead runs fn as the key's leader. The deferred close is what releases the
// followers; deferring it (and the map cleanup before it, LIFO) means even
// a panicking fn cannot strand them.
func (g *Group) lead(key string, c *flightCall, fn func() any) {
	defer close(c.done)
	defer g.forget(key)
	c.val = fn()
}

// forget detaches key so the next caller starts a new execution.
func (g *Group) forget(key string) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
}
