// Package serve holds the serving-scale building blocks the HTTP facade
// composes in front of the estimators: a TTL+LRU result cache, a
// singleflight group that coalesces concurrent identical computations, and
// a bounded admission controller that sheds load instead of piling it onto
// the compute pool.
//
// The package exists because fit results are pure functions of
// (dataset, options): two requests carrying the same normalized payload
// are entitled to byte-identical answers, so the serving layer may answer
// the second from a cache — or, when they are concurrent, from the very
// same pipeline run — without ever touching EM. Everything here is
// stdlib-only and clock-injected (the package sits in the Clocked lint
// zone): callers pass `now` explicitly so TTL expiry is testable and
// deterministic.
package serve

import (
	"container/list"
	"sync"
	"time"
)

// Cache is a concurrent-safe result cache with LRU eviction and optional
// TTL expiry. Values are opaque to the cache; the HTTP layer stores decoded
// responses and re-stamps per-request fields (trace ids) on replay.
type Cache struct {
	mu      sync.Mutex
	max     int                      // guarded by mu
	ttl     time.Duration            // guarded by mu
	order   *list.List               // guarded by mu; front = most recently used
	entries map[string]*list.Element // guarded by mu
}

// cacheEntry is one stored (key, value) pair plus its store time for TTL
// expiry.
type cacheEntry struct {
	key    string
	val    any
	stored time.Time
}

// NewCache builds a cache holding at most max entries. A ttl > 0 expires
// entries that old on their next lookup; ttl <= 0 means entries never
// expire (LRU eviction still bounds the size). A max <= 0 returns a nil
// cache, on which every method is a safe no-op — the disabled state.
func NewCache(max int, ttl time.Duration) *Cache {
	if max <= 0 {
		return nil
	}
	return &Cache{
		max:     max,
		ttl:     ttl,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the value stored under key, if present and not expired at
// `now`, and marks it most recently used. An expired entry is removed on
// the spot, so a Get-miss after the TTL frees the slot immediately.
func (c *Cache) Get(key string, now time.Time) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && now.Sub(e.stored) > c.ttl {
		c.removeLocked(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.val, true
}

// Put stores val under key, stamped at `now`, replacing any existing entry
// and evicting from the LRU tail until the size bound holds.
func (c *Cache) Put(key string, val any, now time.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val, e.stored = val, now
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val, stored: now})
	for c.order.Len() > c.max {
		c.removeLocked(c.order.Back())
	}
}

// Len reports the number of entries currently held (expired-but-unvisited
// entries included: expiry is lazy, applied on lookup).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// removeLocked drops one element; callers hold mu.
func (c *Cache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	c.order.Remove(el)
	delete(c.entries, el.Value.(*cacheEntry).key)
}
