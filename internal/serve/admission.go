package serve

import (
	"context"
	"errors"
)

// ErrShed is returned by Admission.Acquire when both the compute pool and
// the wait queue are full — the request should be rejected with 429 rather
// than allowed to pile onto the pool.
var ErrShed = errors.New("serve: compute pool and admission queue are full")

// Gauge is the slice of obs.Gauge the admission controller needs to mirror
// its occupancy into the metrics registry. Declared here (instead of
// importing internal/obs) so the controller stays a pure concurrency
// primitive and tests can observe transitions with a counter of their own.
type Gauge interface {
	Add(v float64)
}

// nopGauge backs nil gauge arguments.
type nopGauge struct{}

func (nopGauge) Add(float64) {}

// Admission bounds how many computations run concurrently and how many may
// wait for a slot. Both bounds are plain buffered channels, so the
// accounting cannot drift: a slot is a token in `slots`, a queue position a
// token in `queue`, and the race detector sees every transition.
//
// The zero/nil Admission admits everything — the unlimited configuration.
type Admission struct {
	slots    chan struct{}
	queue    chan struct{}
	inFlight Gauge
	queued   Gauge
}

// NewAdmission builds a controller allowing maxInFlight concurrent
// computations and queueDepth waiters. maxInFlight <= 0 returns nil:
// admission disabled, Acquire always succeeds immediately. queueDepth <= 0
// means no queue — when every slot is busy, Acquire sheds on the spot.
// The gauges (either may be nil) receive +1/-1 on every occupancy change.
func NewAdmission(maxInFlight, queueDepth int, inFlight, queued Gauge) *Admission {
	if maxInFlight <= 0 {
		return nil
	}
	a := &Admission{
		slots:    make(chan struct{}, maxInFlight),
		inFlight: inFlight,
		queued:   queued,
	}
	if queueDepth > 0 {
		a.queue = make(chan struct{}, queueDepth)
	}
	if a.inFlight == nil {
		a.inFlight = nopGauge{}
	}
	if a.queued == nil {
		a.queued = nopGauge{}
	}
	return a
}

// Acquire claims a compute slot, waiting in the bounded queue when the pool
// is busy. It returns a release function that must be called exactly once
// when the computation finishes. Failure modes: ErrShed when pool and queue
// are both full, or ctx.Err() when the caller's budget expires while
// queued. On error the release function is nil and nothing is held.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return a.release, nil
	default:
	}
	// Pool busy: take a queue position or shed. A nil queue channel makes
	// the send unreachable, so queueDepth 0 sheds immediately.
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, ErrShed
	}
	a.queued.Add(1)
	defer func() {
		<-a.queue
		a.queued.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns the held slot to the pool.
func (a *Admission) release() {
	<-a.slots
	a.inFlight.Add(-1)
}

// InFlight reports how many compute slots are currently held.
func (a *Admission) InFlight() int {
	if a == nil {
		return 0
	}
	return len(a.slots)
}

// Queued reports how many callers are waiting for a slot.
func (a *Admission) Queued() int {
	if a == nil {
		return 0
	}
	return len(a.queue)
}
