package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func at(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestCacheGetPut(t *testing.T) {
	c := NewCache(2, 0)
	if _, ok := c.Get("a", at(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, at(0))
	c.Put("b", 2, at(1))
	if v, ok := c.Get("a", at(2)); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	// a is now most recent; inserting c evicts b.
	c.Put("c", 3, at(3))
	if _, ok := c.Get("b", at(3)); ok {
		t.Fatal("LRU tail b survived eviction")
	}
	if _, ok := c.Get("a", at(3)); !ok {
		t.Fatal("recently-used a evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheTTL(t *testing.T) {
	c := NewCache(4, 10*time.Second)
	c.Put("a", 1, at(0))
	if _, ok := c.Get("a", at(10)); !ok {
		t.Fatal("entry expired at exactly ttl")
	}
	if _, ok := c.Get("a", at(11)); ok {
		t.Fatal("entry survived past ttl")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still held, len = %d", c.Len())
	}
	// Re-putting restamps the entry.
	c.Put("a", 2, at(20))
	if v, ok := c.Get("a", at(25)); !ok || v.(int) != 2 {
		t.Fatalf("restamped entry = %v, %v", v, ok)
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := NewCache(2, 0)
	c.Put("a", 1, at(0))
	c.Put("a", 2, at(1))
	if v, _ := c.Get("a", at(1)); v.(int) != 2 {
		t.Fatalf("value = %v, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, time.Minute) // nil cache
	c.Put("a", 1, at(0))
	if _, ok := c.Get("a", at(0)); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}

func TestGroupCoalesces(t *testing.T) {
	var g Group
	var runs atomic.Int32
	gate := make(chan struct{})
	const followers = 7

	var wg sync.WaitGroup
	results := make([]any, followers+1)
	sharedCount := atomic.Int32{}
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared := g.Do("k", func() any {
				runs.Add(1)
				<-gate
				return "value"
			})
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Wait until the leader plus every follower is attached, then let the
	// leader finish — deterministic, no sleeps.
	for g.Pending("k") != followers+1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != followers {
		t.Fatalf("shared for %d callers, want %d", got, followers)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("caller %d observed %v", i, v)
		}
	}
	if g.Pending("k") != 0 {
		t.Fatal("key still pending after completion")
	}
}

func TestGroupForgetsBetweenCalls(t *testing.T) {
	var g Group
	runs := 0
	for i := 0; i < 3; i++ {
		v, shared := g.Do("k", func() any { runs++; return runs })
		if shared {
			t.Fatalf("call %d unexpectedly shared", i)
		}
		if v.(int) != i+1 {
			t.Fatalf("call %d = %v", i, v)
		}
	}
	if runs != 3 {
		t.Fatalf("sequential calls coalesced: runs = %d", runs)
	}
}

// countGauge verifies the controller mirrors occupancy transitions.
type countGauge struct{ v atomic.Int64 }

func (g *countGauge) Add(v float64) { g.v.Add(int64(v)) }

func TestAdmissionFastPath(t *testing.T) {
	inF, q := &countGauge{}, &countGauge{}
	a := NewAdmission(2, 1, inF, q)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 2 || inF.v.Load() != 2 {
		t.Fatalf("in-flight = %d/%d, want 2", a.InFlight(), inF.v.Load())
	}
	r1()
	r2()
	if a.InFlight() != 0 || inF.v.Load() != 0 {
		t.Fatalf("in-flight after release = %d/%d, want 0", a.InFlight(), inF.v.Load())
	}
}

func TestAdmissionSheds(t *testing.T) {
	a := NewAdmission(1, 0, nil, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("second acquire err = %v, want ErrShed", err)
	}
	release()
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("accounting dirty: inflight=%d queued=%d", a.InFlight(), a.Queued())
	}
}

func TestAdmissionQueueThenShed(t *testing.T) {
	a := NewAdmission(1, 1, nil, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second caller queues.
	got := make(chan error, 1)
	var qrel func()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := a.Acquire(context.Background())
		qrel = r
		got <- err
	}()
	for a.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	// Third caller finds pool and queue full: shed.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow acquire err = %v, want ErrShed", err)
	}
	release()
	<-done
	if err := <-got; err != nil {
		t.Fatalf("queued acquire err = %v", err)
	}
	qrel()
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("accounting dirty: inflight=%d queued=%d", a.InFlight(), a.Queued())
	}
}

func TestAdmissionQueueRespectsDeadline(t *testing.T) {
	a := NewAdmission(1, 4, nil, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire err = %v, want DeadlineExceeded", err)
	}
	if a.Queued() != 0 {
		t.Fatalf("queue position leaked: %d", a.Queued())
	}
	release()
	if a.InFlight() != 0 {
		t.Fatalf("in-flight leaked: %d", a.InFlight())
	}
}

func TestAdmissionUnlimited(t *testing.T) {
	var a *Admission // nil: the unlimited configuration
	for i := 0; i < 100; i++ {
		release, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if NewAdmission(0, 5, nil, nil) != nil {
		t.Fatal("maxInFlight 0 should disable admission")
	}
}

// TestAdmissionConcurrentAccounting hammers the controller from many
// goroutines; under -race this is the in-flight-accounting proof the
// acceptance criteria ask for.
func TestAdmissionConcurrentAccounting(t *testing.T) {
	inF, q := &countGauge{}, &countGauge{}
	a := NewAdmission(4, 8, inF, q)
	var wg sync.WaitGroup
	var admitted, shed atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background())
			switch {
			case err == nil:
				if n := a.InFlight(); n > 4 {
					t.Errorf("in-flight %d exceeds limit 4", n)
				}
				admitted.Add(1)
				time.Sleep(time.Millisecond)
				release()
			case errors.Is(err, ErrShed):
				shed.Add(1)
			default:
				t.Errorf("unexpected acquire error: %v", err)
			}
		}()
	}
	wg.Wait()
	if admitted.Load()+shed.Load() != 64 {
		t.Fatalf("admitted %d + shed %d != 64", admitted.Load(), shed.Load())
	}
	if a.InFlight() != 0 || a.Queued() != 0 || inF.v.Load() != 0 || q.v.Load() != 0 {
		t.Fatalf("accounting dirty after drain: inflight=%d queued=%d gauges=%d/%d",
			a.InFlight(), a.Queued(), inF.v.Load(), q.v.Load())
	}
}
