package factfind

import (
	"errors"
	"fmt"
)

// ErrRankLength reports rankings over different assertion counts.
var ErrRankLength = errors.New("factfind: rankings have different lengths")

// KendallTau computes the Kendall rank correlation τ between two complete
// rankings of the same assertions (each a permutation of assertion ids, as
// returned by Result.Ranking). τ = 1 for identical orderings, -1 for exact
// reversals, ~0 for unrelated ones. It is the standard way to quantify how
// differently two fact-finders order the same dataset.
//
// Complexity is O(k log k) via merge-sort inversion counting, so it is
// usable on the Twitter-scale rankings (tens of thousands of assertions).
func KendallTau(a, b []int) (float64, error) {
	k := len(a)
	if k != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrRankLength, k, len(b))
	}
	if k < 2 {
		return 1, nil
	}
	// Position of every assertion in ranking b.
	posB := make([]int, k)
	for rank, id := range b {
		if id < 0 || id >= k {
			return 0, fmt.Errorf("factfind: ranking b contains id %d outside [0,%d)", id, k)
		}
		posB[id] = rank
	}
	// Sequence of b-positions in a's order; inversions in it are exactly
	// the discordant pairs.
	seq := make([]int, k)
	for rank, id := range a {
		if id < 0 || id >= k {
			return 0, fmt.Errorf("factfind: ranking a contains id %d outside [0,%d)", id, k)
		}
		seq[rank] = posB[id]
	}
	inversions := countInversions(seq)
	pairs := k * (k - 1) / 2
	concordant := pairs - inversions
	return float64(concordant-inversions) / float64(pairs), nil
}

// countInversions counts pairs i < j with seq[i] > seq[j] by merge sort.
func countInversions(seq []int) int {
	buf := make([]int, len(seq))
	work := make([]int, len(seq))
	copy(work, seq)
	return mergeCount(work, buf)
}

func mergeCount(seq, buf []int) int {
	n := len(seq)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(seq[:mid], buf[:mid]) + mergeCount(seq[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	//lint:allow ctxloop bounded merge: i and j advance every iteration until mid/n
	for i < mid && j < n {
		if seq[i] <= seq[j] {
			buf[k] = seq[i]
			i++
		} else {
			buf[k] = seq[j]
			j++
			inv += mid - i
		}
		k++
	}
	copy(buf[k:], seq[i:mid])
	copy(buf[k+(mid-i):], seq[j:])
	copy(seq, buf[:n])
	return inv
}
