// Package factfind defines the common vocabulary shared by every
// fact-finding algorithm in this repository: the FactFinder interface, the
// Result type carrying per-assertion credibility scores, and decision /
// ranking helpers used by the evaluation harness.
package factfind

import (
	"context"
	"sort"

	"depsense/internal/claims"
	"depsense/internal/model"
)

// Result is the output of a fact-finder run.
//
// Posterior[j] is the algorithm's credibility for assertion j. For the EM
// estimators it is the actual posterior P(C_j = 1 | SC; θ̂); for the
// heuristic baselines (Voting, Sums, Average.Log, TruthFinder) it is the
// algorithm's score normalized into [0, 1], meaningful for ranking but not
// calibrated as a probability.
type Result struct {
	Posterior []float64
	// Params holds the estimated θ for model-based estimators, nil for
	// heuristics.
	Params *model.Params
	// Iterations is the number of iterations the algorithm ran.
	Iterations int
	// Converged reports whether the iteration stopped by its convergence
	// criterion rather than the iteration cap.
	Converged bool
	// LogLikelihood is the final data log-likelihood for EM estimators
	// (Eq. 7); zero for heuristics.
	LogLikelihood float64
	// Stopped records why the run ended: one of the runctx.Stop* reasons
	// ("converged", "iteration-cap", "cancelled", "deadline"). It refines
	// Converged — tests and serving layers can assert not just whether a
	// run finished but why it stopped.
	Stopped string
}

// FactFinder scores the assertions of a dataset.
//
// RunContext is the primary contract: it honors the context's cancellation
// and deadline at iteration granularity and fires any runctx hook the
// context carries. On cancellation it returns the context's error together
// with the run's deterministic partial result (Stopped set to "cancelled"
// or "deadline"), so callers can report completed iterations instead of
// losing the run. Run is the backward-compatible adapter, equivalent to
// RunContext(context.Background(), ds).
type FactFinder interface {
	// Name returns the algorithm's display name as used in the paper's
	// figures (e.g. "EM-Ext", "Voting").
	Name() string
	// Run scores every assertion in the dataset.
	Run(ds *claims.Dataset) (*Result, error)
	// RunContext scores every assertion, honoring ctx for cancellation,
	// deadlines, and iteration hooks.
	RunContext(ctx context.Context, ds *claims.Dataset) (*Result, error)
}

// DefaultThreshold is the posterior decision threshold used throughout the
// simulations: an assertion is declared true iff its posterior exceeds it.
const DefaultThreshold = 0.5

// Decisions thresholds the posteriors into true/false verdicts.
func (r *Result) Decisions(threshold float64) []bool {
	out := make([]bool, len(r.Posterior))
	for j, p := range r.Posterior {
		out[j] = p > threshold
	}
	return out
}

// Ranking returns assertion ids sorted by decreasing credibility, ties
// broken by ascending id for determinism. This is the ordering behind the
// paper's top-100 empirical evaluation.
func (r *Result) Ranking() []int {
	ids := make([]int, len(r.Posterior))
	for j := range ids {
		ids[j] = j
	}
	sort.SliceStable(ids, func(a, b int) bool {
		pa, pb := r.Posterior[ids[a]], r.Posterior[ids[b]]
		if pa != pb {
			return pa > pb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// TopK returns the K highest-credibility assertion ids (fewer if the
// dataset is smaller).
func (r *Result) TopK(k int) []int {
	ranked := r.Ranking()
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}
