package factfind

import (
	"math"
	"math/rand"
	"testing"
)

func TestDecisions(t *testing.T) {
	r := &Result{Posterior: []float64{0.9, 0.5, 0.1, 0.51}}
	got := r.Decisions(DefaultThreshold)
	want := []bool{true, false, false, true}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("decisions = %v, want %v", got, want)
		}
	}
}

func TestRankingOrderAndTies(t *testing.T) {
	r := &Result{Posterior: []float64{0.3, 0.9, 0.3, 0.7}}
	got := r.Ranking()
	want := []int{1, 3, 0, 2} // ties broken by ascending id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", got, want)
		}
	}
}

func TestTopK(t *testing.T) {
	r := &Result{Posterior: []float64{0.1, 0.5, 0.9}}
	if got := r.TopK(2); len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("TopK(2) = %v", got)
	}
	if got := r.TopK(10); len(got) != 3 {
		t.Fatalf("TopK clamp failed: %v", got)
	}
	if got := r.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0) = %v", got)
	}
}

func TestKendallTau(t *testing.T) {
	id := []int{0, 1, 2, 3, 4}
	rev := []int{4, 3, 2, 1, 0}
	if tau, err := KendallTau(id, id); err != nil || tau != 1 {
		t.Fatalf("identical tau = %v, %v", tau, err)
	}
	if tau, err := KendallTau(id, rev); err != nil || tau != -1 {
		t.Fatalf("reversed tau = %v, %v", tau, err)
	}
	// One adjacent swap: 1 discordant pair of 10 → tau = 0.8.
	swapped := []int{1, 0, 2, 3, 4}
	if tau, _ := KendallTau(id, swapped); tau != 0.8 {
		t.Fatalf("swap tau = %v, want 0.8", tau)
	}
	// Degenerate sizes.
	if tau, _ := KendallTau([]int{0}, []int{0}); tau != 1 {
		t.Fatal("singleton tau != 1")
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]int{0, 1}, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := KendallTau([]int{0, 5}, []int{0, 1}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := KendallTau([]int{0, 1}, []int{0, 7}); err == nil {
		t.Fatal("out-of-range id in b accepted")
	}
}

// TestKendallTauMatchesBruteForce cross-checks the O(k log k) inversion
// count against the quadratic definition on random permutations.
func TestKendallTauMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(40)
		a := rng.Perm(k)
		b := rng.Perm(k)
		got, err := KendallTau(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over pairs.
		posA := make([]int, k)
		posB := make([]int, k)
		for r, id := range a {
			posA[id] = r
		}
		for r, id := range b {
			posB[id] = r
		}
		conc, disc := 0, 0
		for x := 0; x < k; x++ {
			for y := x + 1; y < k; y++ {
				sameOrder := (posA[x] < posA[y]) == (posB[x] < posB[y])
				if sameOrder {
					conc++
				} else {
					disc++
				}
			}
		}
		want := float64(conc-disc) / float64(k*(k-1)/2)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("k=%d tau=%v want %v", k, got, want)
		}
	}
}
