package stream

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/obs"
)

// metricsBody renders the registry as the /metrics endpoint would.
func metricsBody(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}

// TestLastRefitAgeGauge pins the age gauge's lifecycle under an injected
// clock: absent before the first fit (no fabricated zero), zero right after
// a fit, growing with wall time between fits, and reset to zero by the next
// refit.
func TestLastRefitAgeGauge(t *testing.T) {
	now := time.Unix(1700000000, 0)
	reg := obs.NewRegistry()
	e := New(Options{
		EM:      core.Options{Seed: 3},
		Metrics: reg,
		Clock:   func() time.Time { return now },
	})

	// Before any fit: ExportGauges must not publish the age series at all —
	// a 0 here would read as "just refitted" on a service that never fit.
	e.ExportGauges()
	if body := metricsBody(t, reg); strings.Contains(body, MetricLastRefitAge) {
		t.Fatalf("age gauge published before any fit:\n%s", body)
	}

	batch := []depgraph.Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2},
		{Source: 2, Assertion: 1, Time: 3},
	}
	if _, err := e.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	age := reg.Gauge(MetricLastRefitAge, "")
	if got := age.Value(); got != 0 {
		t.Fatalf("age right after fit = %v, want 0 (clock frozen)", got)
	}

	// Time passes with no refit: a scrape-time ExportGauges reports the
	// true staleness.
	now = now.Add(42 * time.Second)
	e.ExportGauges()
	if got := age.Value(); got != 42 {
		t.Fatalf("age 42s after fit = %v, want 42", got)
	}

	// A new refit resets the age to zero even though the clock advanced.
	now = now.Add(17 * time.Second)
	if _, err := e.AddBatch([]depgraph.Event{{Source: 0, Assertion: 1, Time: 4}}); err != nil {
		t.Fatal(err)
	}
	if got := age.Value(); got != 0 {
		t.Fatalf("age after second fit = %v, want reset to 0", got)
	}

	// A clock that jumps backwards clamps at zero instead of going
	// negative.
	now = now.Add(-time.Hour)
	e.ExportGauges()
	if got := age.Value(); got != 0 {
		t.Fatalf("age after backwards clock jump = %v, want clamp to 0", got)
	}
}
