package stream

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/obs"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

func TestEmptyEstimator(t *testing.T) {
	e := New(Options{})
	if _, err := e.Result(); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := e.Dataset(); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := e.AddBatch(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty first batch: want ErrNoData, got %v", err)
	}
}

func TestBadEventsRejected(t *testing.T) {
	e := New(Options{})
	if _, err := e.AddBatch([]depgraph.Event{{Source: -1, Assertion: 0}}); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("want ErrBadEvent, got %v", err)
	}
	if err := e.ObserveFollow(-1, 0); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("want ErrBadEvent, got %v", err)
	}
}

// TestRejectedBatchLeavesStateUnchanged is the batch-atomicity regression
// test: a batch with one invalid event mid-batch must leave every piece of
// estimator state — events, id spaces, follow graph, warm-start parameters,
// latest result — bit-for-bit as it was. (The pre-fix code appended and
// grew per event before validating the rest, so the valid prefix leaked in.)
func TestRejectedBatchLeavesStateUnchanged(t *testing.T) {
	e := New(Options{EM: core.Options{Seed: 3}})
	if err := e.ObserveFollow(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2},
		{Source: 2, Assertion: 1, Time: 3},
	}); err != nil {
		t.Fatal(err)
	}

	wantStats := e.Stats()
	wantEvents := append([]depgraph.Event(nil), e.events...)
	wantParams := e.params.Clone()
	wantLast, wantDS := e.last, e.lastDS
	wantGraphN := e.graph.N()

	// Valid prefix, invalid event mid-batch, valid suffix with ids that
	// would grow both id spaces if ingested.
	_, err := e.AddBatch([]depgraph.Event{
		{Source: 7, Assertion: 5, Time: 4},
		{Source: -1, Assertion: 0, Time: 5},
		{Source: 9, Assertion: 8, Time: 6},
	})
	if !errors.Is(err, ErrBadEvent) {
		t.Fatalf("want ErrBadEvent, got %v", err)
	}

	if got := e.Stats(); got != wantStats {
		t.Fatalf("stats changed after rejected batch: %+v, want %+v", got, wantStats)
	}
	if !reflect.DeepEqual(e.events, wantEvents) {
		t.Fatalf("events changed after rejected batch: %+v, want %+v", e.events, wantEvents)
	}
	if !reflect.DeepEqual(e.params, wantParams) {
		t.Fatal("warm-start parameters changed after rejected batch")
	}
	if e.last != wantLast || e.lastDS != wantDS {
		t.Fatal("latest result/dataset replaced after rejected batch")
	}
	if e.graph.N() != wantGraphN {
		t.Fatalf("graph grew to %d sources after rejected batch, want %d", e.graph.N(), wantGraphN)
	}

	// The estimator still works: resubmitting the fixed batch succeeds and
	// ingests all of it.
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 7, Assertion: 5, Time: 4},
		{Source: 9, Assertion: 8, Time: 6},
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats(); got.Sources != 10 || got.Assertions != 9 || got.Claims != 5 {
		t.Fatalf("post-fix stats = %+v", got)
	}
}

// TestFitTelemetry: warm/cold fit counts land in Stats and, through the
// injected clock, exact fit durations land in the attached registry.
func TestFitTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(0, 0)
	clock := func() time.Time {
		now = now.Add(250 * time.Millisecond) // each clock read advances 250ms
		return now
	}
	e := New(Options{EM: core.Options{Seed: 5}, Metrics: reg, Clock: clock})
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 1, Time: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 1, Assertion: 0, Time: 3},
	}); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Fits != 2 || st.ColdFits != 1 || st.WarmFits != 1 {
		t.Fatalf("fit stats = %+v", st)
	}
	for _, mode := range []string{"cold", "warm"} {
		if got := reg.Counter(MetricFits, "", obs.L("mode", mode)).Value(); got != 1 {
			t.Fatalf("fits{mode=%q} = %v, want 1", mode, got)
		}
		h := reg.Histogram(MetricFitSeconds, "", nil, obs.L("mode", mode))
		// Each fit spans exactly one 250ms clock step.
		if h.Count() != 1 || h.Sum() != 0.25 {
			t.Fatalf("fit duration{mode=%q}: count=%d sum=%v, want 1/0.25", mode, h.Count(), h.Sum())
		}
	}
}

func TestIDSpacesGrow(t *testing.T) {
	e := New(Options{EM: core.Options{Seed: 1}})
	if err := e.ObserveFollow(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2}, // dependent repeat
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Sources != 2 || st.Assertions != 1 || st.Claims != 2 || st.Fits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A later batch introduces new sources and assertions.
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 5, Assertion: 3, Time: 3},
	}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Sources != 6 || st.Assertions != 4 || st.Fits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	ds, err := e.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Dependent(1, 0) {
		t.Fatal("dependency lost across batches")
	}
}

// TestStreamingMatchesBatchAccuracy: feeding a world in batches must reach
// accuracy comparable to one cold batch fit on the same data.
func TestStreamingMatchesBatchAccuracy(t *testing.T) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 30
	cfg.Assertions = 120
	w, err := synthetic.Generate(cfg, randutil.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// Serialize the world into timestamped events: roots first (time 0),
	// then leaves (time 1), matching generation order.
	var events []depgraph.Event
	for j := 0; j < w.Dataset.M(); j++ {
		for _, c := range w.Dataset.Claimants(j) {
			tm := int64(0)
			if c.Dependent {
				tm = 1
			}
			events = append(events, depgraph.Event{Source: c.Source, Assertion: j, Time: tm})
		}
	}

	est := New(Options{EM: core.Options{Seed: 2}})
	for i := 0; i < w.Graph.N(); i++ {
		for _, anc := range w.Graph.Ancestors(i) {
			if err := est.ObserveFollow(i, anc); err != nil {
				t.Fatal(err)
			}
		}
	}
	const batches = 5
	per := (len(events) + batches - 1) / batches
	var lastAcc float64
	for b := 0; b < batches; b++ {
		lo := b * per
		hi := min(len(events), lo+per)
		if lo >= hi {
			break
		}
		r, err := est.AddBatch(events[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if b == batches-1 {
			cl, err := stats.Classify(r.Decisions(0.5), w.Truth)
			if err != nil {
				t.Fatal(err)
			}
			lastAcc = cl.Accuracy
		}
	}

	cold, err := core.Run(mustDS(t, est), core.VariantExt, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	clCold, err := stats.Classify(cold.Decisions(0.5), w.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if lastAcc < clCold.Accuracy-0.08 {
		t.Fatalf("streaming accuracy %.3f far below cold fit %.3f", lastAcc, clCold.Accuracy)
	}
	if lastAcc < 0.6 {
		t.Fatalf("streaming accuracy %.3f implausibly low", lastAcc)
	}
}

// TestWarmStartConverges: the warm-started refit after a tiny incremental
// batch should converge within the reduced iteration budget.
func TestWarmStartConverges(t *testing.T) {
	cfg := synthetic.DefaultConfig()
	w, err := synthetic.Generate(cfg, randutil.New(31))
	if err != nil {
		t.Fatal(err)
	}
	var events []depgraph.Event
	for j := 0; j < w.Dataset.M(); j++ {
		for _, c := range w.Dataset.Claimants(j) {
			tm := int64(0)
			if c.Dependent {
				tm = 1
			}
			events = append(events, depgraph.Event{Source: c.Source, Assertion: j, Time: tm})
		}
	}
	est := New(Options{EM: core.Options{Seed: 4}})
	for i := 0; i < w.Graph.N(); i++ {
		for _, anc := range w.Graph.Ancestors(i) {
			_ = est.ObserveFollow(i, anc)
		}
	}
	if _, err := est.AddBatch(events[:len(events)-3]); err != nil {
		t.Fatal(err)
	}
	r, err := est.AddBatch(events[len(events)-3:])
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("warm-started refit did not converge within the incremental budget")
	}
	if r.Iterations > 60 {
		t.Fatalf("warm start took %d iterations", r.Iterations)
	}
}

func mustDS(t *testing.T, e *Estimator) *claims.Dataset {
	t.Helper()
	ds, err := e.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
