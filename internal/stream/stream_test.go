package stream

import (
	"errors"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

func TestEmptyEstimator(t *testing.T) {
	e := New(Options{})
	if _, err := e.Result(); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := e.Dataset(); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := e.AddBatch(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty first batch: want ErrNoData, got %v", err)
	}
}

func TestBadEventsRejected(t *testing.T) {
	e := New(Options{})
	if _, err := e.AddBatch([]depgraph.Event{{Source: -1, Assertion: 0}}); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("want ErrBadEvent, got %v", err)
	}
	if err := e.ObserveFollow(-1, 0); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("want ErrBadEvent, got %v", err)
	}
}

func TestIDSpacesGrow(t *testing.T) {
	e := New(Options{EM: core.Options{Seed: 1}})
	if err := e.ObserveFollow(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2}, // dependent repeat
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Sources != 2 || st.Assertions != 1 || st.Claims != 2 || st.Fits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A later batch introduces new sources and assertions.
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 5, Assertion: 3, Time: 3},
	}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Sources != 6 || st.Assertions != 4 || st.Fits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	ds, err := e.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Dependent(1, 0) {
		t.Fatal("dependency lost across batches")
	}
}

// TestStreamingMatchesBatchAccuracy: feeding a world in batches must reach
// accuracy comparable to one cold batch fit on the same data.
func TestStreamingMatchesBatchAccuracy(t *testing.T) {
	cfg := synthetic.EstimatorConfig()
	cfg.Sources = 30
	cfg.Assertions = 120
	w, err := synthetic.Generate(cfg, randutil.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// Serialize the world into timestamped events: roots first (time 0),
	// then leaves (time 1), matching generation order.
	var events []depgraph.Event
	for j := 0; j < w.Dataset.M(); j++ {
		for _, c := range w.Dataset.Claimants(j) {
			tm := int64(0)
			if c.Dependent {
				tm = 1
			}
			events = append(events, depgraph.Event{Source: c.Source, Assertion: j, Time: tm})
		}
	}

	est := New(Options{EM: core.Options{Seed: 2}})
	for i := 0; i < w.Graph.N(); i++ {
		for _, anc := range w.Graph.Ancestors(i) {
			if err := est.ObserveFollow(i, anc); err != nil {
				t.Fatal(err)
			}
		}
	}
	const batches = 5
	per := (len(events) + batches - 1) / batches
	var lastAcc float64
	for b := 0; b < batches; b++ {
		lo := b * per
		hi := min(len(events), lo+per)
		if lo >= hi {
			break
		}
		r, err := est.AddBatch(events[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if b == batches-1 {
			cl, err := stats.Classify(r.Decisions(0.5), w.Truth)
			if err != nil {
				t.Fatal(err)
			}
			lastAcc = cl.Accuracy
		}
	}

	cold, err := core.Run(mustDS(t, est), core.VariantExt, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	clCold, err := stats.Classify(cold.Decisions(0.5), w.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if lastAcc < clCold.Accuracy-0.08 {
		t.Fatalf("streaming accuracy %.3f far below cold fit %.3f", lastAcc, clCold.Accuracy)
	}
	if lastAcc < 0.6 {
		t.Fatalf("streaming accuracy %.3f implausibly low", lastAcc)
	}
}

// TestWarmStartConverges: the warm-started refit after a tiny incremental
// batch should converge within the reduced iteration budget.
func TestWarmStartConverges(t *testing.T) {
	cfg := synthetic.DefaultConfig()
	w, err := synthetic.Generate(cfg, randutil.New(31))
	if err != nil {
		t.Fatal(err)
	}
	var events []depgraph.Event
	for j := 0; j < w.Dataset.M(); j++ {
		for _, c := range w.Dataset.Claimants(j) {
			tm := int64(0)
			if c.Dependent {
				tm = 1
			}
			events = append(events, depgraph.Event{Source: c.Source, Assertion: j, Time: tm})
		}
	}
	est := New(Options{EM: core.Options{Seed: 4}})
	for i := 0; i < w.Graph.N(); i++ {
		for _, anc := range w.Graph.Ancestors(i) {
			_ = est.ObserveFollow(i, anc)
		}
	}
	if _, err := est.AddBatch(events[:len(events)-3]); err != nil {
		t.Fatal(err)
	}
	r, err := est.AddBatch(events[len(events)-3:])
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("warm-started refit did not converge within the incremental budget")
	}
	if r.Iterations > 60 {
		t.Fatalf("warm start took %d iterations", r.Iterations)
	}
}

func mustDS(t *testing.T, e *Estimator) *claims.Dataset {
	t.Helper()
	ds, err := e.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
