package stream

import (
	"fmt"
	"sort"

	"depsense/internal/depgraph"
	"depsense/internal/model"
)

// Snapshot is the serializable state of an Estimator: everything needed to
// reconstruct it exactly — accumulated events, follow edges, id spaces,
// warm-start parameters, and fit counters. The latest Result/Dataset are
// deliberately not captured; they are derived state, reproduced by the
// first AddBatch after Restore (callers that need a ranking immediately
// after restart should persist the published ranking separately).
//
// Follow edges are serialized sorted, so two estimators with the same
// follow set produce byte-identical snapshots regardless of the order the
// edges were observed in.
type Snapshot struct {
	Sources    int              `json:"sources"`
	Assertions int              `json:"assertions"`
	Events     []depgraph.Event `json:"events"`
	// Follows lists [follower, followee] edges, sorted.
	Follows  [][2]int      `json:"follows,omitempty"`
	Params   *model.Params `json:"params,omitempty"`
	Fits     int           `json:"fits"`
	WarmFits int           `json:"warmFits"`
	ColdFits int           `json:"coldFits"`
}

// Snapshot captures the estimator's current state for persistence.
func (e *Estimator) Snapshot() *Snapshot {
	snap := &Snapshot{
		Sources:    e.numSrc,
		Assertions: e.numAssert,
		Events:     append([]depgraph.Event(nil), e.events...),
		Fits:       e.fits,
		WarmFits:   e.warmFits,
		ColdFits:   e.coldFits,
	}
	for i := 0; i < e.numSrc; i++ {
		for _, anc := range e.graph.Ancestors(i) {
			snap.Follows = append(snap.Follows, [2]int{i, anc})
		}
	}
	sort.Slice(snap.Follows, func(a, b int) bool {
		if snap.Follows[a][0] != snap.Follows[b][0] {
			return snap.Follows[a][0] < snap.Follows[b][0]
		}
		return snap.Follows[a][1] < snap.Follows[b][1]
	})
	if e.params != nil {
		snap.Params = e.params.Clone()
	}
	return snap
}

// Restore rebuilds an estimator from a snapshot under opts (the runtime
// options — EM config, metrics, clock — are not part of the snapshot). The
// restored estimator refits lazily: Result returns ErrNoData until the
// first AddBatch, which warm-starts from the snapshot's parameters over the
// snapshot's accumulated events plus the new batch — exactly as the
// uninterrupted estimator would have.
func Restore(snap *Snapshot, opts Options) (*Estimator, error) {
	if snap == nil {
		return nil, fmt.Errorf("stream: nil snapshot")
	}
	if snap.Sources < 0 || snap.Assertions < 0 {
		return nil, fmt.Errorf("stream: snapshot has negative id space (%d sources, %d assertions)",
			snap.Sources, snap.Assertions)
	}
	for _, ev := range snap.Events {
		if ev.Source < 0 || ev.Source >= snap.Sources || ev.Assertion < 0 || ev.Assertion >= snap.Assertions {
			return nil, fmt.Errorf("stream: snapshot event %+v outside id space (%d sources, %d assertions)",
				ev, snap.Sources, snap.Assertions)
		}
	}
	if snap.Params != nil && snap.Params.NumSources() != snap.Sources {
		return nil, fmt.Errorf("stream: snapshot params cover %d sources, id space has %d",
			snap.Params.NumSources(), snap.Sources)
	}
	e := New(opts)
	e.numSrc = snap.Sources
	e.numAssert = snap.Assertions
	e.graph = depgraph.NewGraph(snap.Sources)
	for _, f := range snap.Follows {
		if f[0] < 0 || f[0] >= snap.Sources || f[1] < 0 || f[1] >= snap.Sources {
			return nil, fmt.Errorf("stream: snapshot follow %v outside id space (%d sources)", f, snap.Sources)
		}
		if err := e.graph.AddFollow(f[0], f[1]); err != nil {
			return nil, fmt.Errorf("stream: snapshot follow %v: %w", f, err)
		}
	}
	e.events = append([]depgraph.Event(nil), snap.Events...)
	if snap.Params != nil {
		e.params = snap.Params.Clone()
	}
	e.fits = snap.Fits
	e.warmFits = snap.WarmFits
	e.coldFits = snap.ColdFits
	e.ExportGauges()
	return e, nil
}
