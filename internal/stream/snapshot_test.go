package stream

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/obs"
)

func snapshotBatches() [][]depgraph.Event {
	return [][]depgraph.Event{
		{
			{Source: 0, Assertion: 0, Time: 1},
			{Source: 1, Assertion: 0, Time: 2},
			{Source: 2, Assertion: 1, Time: 3},
		},
		{
			{Source: 3, Assertion: 1, Time: 4},
			{Source: 1, Assertion: 2, Time: 5},
		},
		{
			{Source: 4, Assertion: 2, Time: 6},
			{Source: 0, Assertion: 3, Time: 7},
		},
	}
}

// TestSnapshotRestoreMatchesUninterrupted is the warm-restart contract:
// snapshot after batch k, restore (through JSON, as the persistence layer
// does), feed the remaining batches — and the final state is byte-identical
// to the uninterrupted run's snapshot, with per-batch results equal along
// the way.
func TestSnapshotRestoreMatchesUninterrupted(t *testing.T) {
	opts := Options{EM: core.Options{Seed: 9}}
	batches := snapshotBatches()

	full := New(opts)
	if err := full.ObserveFollow(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := full.ObserveFollow(3, 2); err != nil {
		t.Fatal(err)
	}
	var wantResults [][]float64
	for _, b := range batches {
		res, err := full.AddBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		wantResults = append(wantResults, append([]float64(nil), res.Posterior...))
	}

	const cut = 2 // snapshot after this many batches
	part := New(opts)
	if err := part.ObserveFollow(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := part.ObserveFollow(3, 2); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:cut] {
		if _, err := part.AddBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(part.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Restore does not refit: the latest estimate is derived state.
	if _, err := restored.Result(); !errors.Is(err, ErrNoData) {
		t.Fatalf("Result after restore: want ErrNoData, got %v", err)
	}
	if got, want := restored.Stats(), part.Stats(); got != want {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}

	for i, b := range batches[cut:] {
		res, err := restored.AddBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Posterior, wantResults[cut+i]) {
			t.Fatalf("batch %d after restore diverged from uninterrupted run", cut+i)
		}
	}

	finalA, err := json.Marshal(full.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	finalB, err := json.Marshal(restored.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(finalA) != string(finalB) {
		t.Fatalf("final snapshots differ:\nuninterrupted: %s\nrestored:      %s", finalA, finalB)
	}
	if st := restored.Stats(); st.WarmFits != 2 || st.ColdFits != 1 {
		t.Fatalf("restored fit split = %+v, want 1 cold + 2 warm", st)
	}
}

// TestSnapshotFollowsSorted: snapshots serialize follow edges sorted, so
// observation order does not leak into the bytes.
func TestSnapshotFollowsSorted(t *testing.T) {
	a := New(Options{})
	b := New(Options{})
	edges := [][2]int{{3, 1}, {1, 0}, {2, 0}, {3, 0}}
	for _, f := range edges {
		if err := a.ObserveFollow(f[0], f[1]); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(edges) - 1; i >= 0; i-- {
		if err := b.ObserveFollow(edges[i][0], edges[i][1]); err != nil {
			t.Fatal(err)
		}
	}
	sa, _ := json.Marshal(a.Snapshot())
	sb, _ := json.Marshal(b.Snapshot())
	if string(sa) != string(sb) {
		t.Fatalf("snapshot bytes depend on follow observation order:\n%s\n%s", sa, sb)
	}
	want := [][2]int{{1, 0}, {2, 0}, {3, 0}, {3, 1}}
	if got := a.Snapshot().Follows; !reflect.DeepEqual(got, want) {
		t.Fatalf("follows = %v, want %v", got, want)
	}
}

func TestRestoreRejectsBadSnapshot(t *testing.T) {
	cases := []*Snapshot{
		nil,
		{Sources: -1},
		{Sources: 1, Assertions: 1, Events: []depgraph.Event{{Source: 2, Assertion: 0}}},
		{Sources: 2, Assertions: 1, Follows: [][2]int{{0, 5}}},
		{Sources: 2, Assertions: 1, Params: nil, Events: []depgraph.Event{{Source: 0, Assertion: 2}}},
	}
	for i, snap := range cases {
		if _, err := Restore(snap, Options{}); err == nil {
			t.Fatalf("case %d: bad snapshot accepted", i)
		}
	}
}

// TestStreamGauges: the size gauges and the last-refit-age gauge land in
// the registry after fits, and ExportGauges refreshes the age on demand.
func TestStreamGauges(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(100, 0)
	e := New(Options{EM: core.Options{Seed: 2}, Metrics: reg,
		Clock: func() time.Time { return now }})
	if err := e.ObserveFollow(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddBatch([]depgraph.Event{
		{Source: 0, Assertion: 0, Time: 1},
		{Source: 1, Assertion: 0, Time: 2},
		{Source: 2, Assertion: 1, Time: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge(MetricSources, "").Value(); got != 3 {
		t.Fatalf("sources gauge = %v, want 3", got)
	}
	if got := reg.Gauge(MetricAssertions, "").Value(); got != 2 {
		t.Fatalf("assertions gauge = %v, want 2", got)
	}
	if got := reg.Gauge(MetricClaims, "").Value(); got != 3 {
		t.Fatalf("claims gauge = %v, want 3", got)
	}
	if got := reg.Gauge(MetricLastRefitAge, "").Value(); got != 0 {
		t.Fatalf("refit age right after fit = %v, want 0", got)
	}
	// Ops refresh the age gauge on scrape; 40 seconds later it reads 40.
	now = now.Add(40 * time.Second)
	e.ExportGauges()
	if got := reg.Gauge(MetricLastRefitAge, "").Value(); got != 40 {
		t.Fatalf("refit age after 40s = %v, want 40", got)
	}
}
