// Package stream provides an incremental fact-finder for social data
// streams, the extension direction the paper cites as [21] (Yao et al.,
// "Recursive ground truth estimator for social data streams", IPSN 2016).
//
// A stream.Estimator ingests timestamped claims in batches. After each
// batch it rebuilds the (sparse) dataset seen so far and re-estimates truth
// posteriors with EM-Ext — but warm-started from the previous batch's
// parameter estimates, so late batches converge in a handful of iterations
// instead of a full cold fit. Sources and assertions may appear at any
// time; the id spaces grow monotonically.
package stream

import (
	"context"
	"errors"
	"fmt"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/factfind"
	"depsense/internal/model"
)

// Options tunes the incremental estimator.
type Options struct {
	// EM configures the underlying estimator; Seed and DepMode are
	// honored. Its MaxIters applies to the cold first fit.
	EM core.Options
	// WarmMaxIters caps the warm-started refits after later batches
	// (default 60 — warm starts need fewer iterations than a cold
	// fit).
	WarmMaxIters int
	// WarmTol is the convergence tolerance of warm refits (default 1e-3).
	// Streaming estimates are revised on the next batch anyway, so the
	// cold fit's strict tolerance buys nothing but iterations here.
	WarmTol float64
}

// Estimator accumulates a claim stream and maintains truth estimates.
type Estimator struct {
	opts      Options
	graph     *depgraph.Graph
	events    []depgraph.Event
	numSrc    int
	numAssert int

	params *model.Params // warm-start parameters from the last fit
	last   *factfind.Result
	lastDS *claims.Dataset
	fits   int
}

// New creates an empty streaming estimator.
func New(opts Options) *Estimator {
	if opts.WarmMaxIters <= 0 {
		opts.WarmMaxIters = 60
	}
	if opts.WarmTol <= 0 {
		opts.WarmTol = 1e-3
	}
	return &Estimator{opts: opts, graph: depgraph.NewGraph(0)}
}

// Errors returned by the estimator.
var (
	ErrNoData   = errors.New("stream: no claims ingested yet")
	ErrBadEvent = errors.New("stream: invalid event")
)

// ObserveFollow records a follow edge (follower sees followee's claims).
// New source ids grow the id space.
func (e *Estimator) ObserveFollow(follower, followee int) error {
	if follower < 0 || followee < 0 {
		return fmt.Errorf("%w: follow(%d -> %d)", ErrBadEvent, follower, followee)
	}
	e.growSources(max(follower, followee) + 1)
	return e.graph.AddFollow(follower, followee)
}

// AddBatch ingests a batch of claims and refits the estimator.
func (e *Estimator) AddBatch(batch []depgraph.Event) (*factfind.Result, error) {
	return e.AddBatchContext(context.Background(), batch)
}

// AddBatchContext ingests a batch of claims and refits the estimator under
// ctx. Cancelling mid-refit keeps the estimator's previous state: the batch
// is still ingested (the events are recorded and the id spaces grown), but
// the warm-start parameters and latest estimate stay those of the last
// completed fit, so the next AddBatch refits over all accumulated events.
func (e *Estimator) AddBatchContext(ctx context.Context, batch []depgraph.Event) (*factfind.Result, error) {
	for _, ev := range batch {
		if ev.Source < 0 || ev.Assertion < 0 {
			return nil, fmt.Errorf("%w: %+v", ErrBadEvent, ev)
		}
		e.growSources(ev.Source + 1)
		if ev.Assertion >= e.numAssert {
			e.numAssert = ev.Assertion + 1
		}
		e.events = append(e.events, ev)
	}
	if len(e.events) == 0 {
		return nil, ErrNoData
	}
	ds, err := depgraph.BuildDataset(e.graph, e.events, e.numAssert)
	if err != nil {
		return nil, err
	}

	opts := e.opts.EM
	if e.params != nil && e.params.NumSources() == ds.N() {
		opts.Init = e.params
		opts.MaxIters = e.opts.WarmMaxIters
		opts.Tol = e.opts.WarmTol
	}
	res, err := core.RunCtx(ctx, ds, core.VariantExt, opts)
	if err != nil {
		// On cancellation res carries the partial fit; surface it to the
		// caller but do not install it as the warm-start state.
		return res, err
	}
	e.params = res.Params.Clone()
	e.last = res
	e.lastDS = ds
	e.fits++
	return res, nil
}

// growSources extends the id space and carries prior parameter estimates
// over, giving brand-new sources neutral warm-start channels.
func (e *Estimator) growSources(n int) {
	if n <= e.numSrc {
		return
	}
	grown := depgraph.NewGraph(n)
	for i := 0; i < e.numSrc; i++ {
		for _, anc := range e.graph.Ancestors(i) {
			// Re-adding within a larger graph cannot fail: indices are
			// in range by construction.
			_ = grown.AddFollow(i, anc)
		}
	}
	e.graph = grown
	if e.params != nil {
		p := model.NewParams(n, e.params.Z)
		copy(p.Sources, e.params.Sources)
		for i := e.numSrc; i < n; i++ {
			p.Sources[i] = model.SourceParams{A: 0.5, B: 0.5, F: 0.5, G: 0.5}
		}
		e.params = p
	}
	e.numSrc = n
}

// Result returns the latest estimate.
func (e *Estimator) Result() (*factfind.Result, error) {
	if e.last == nil {
		return nil, ErrNoData
	}
	return e.last, nil
}

// Dataset returns the dataset underlying the latest estimate.
func (e *Estimator) Dataset() (*claims.Dataset, error) {
	if e.lastDS == nil {
		return nil, ErrNoData
	}
	return e.lastDS, nil
}

// Stats describes the stream state.
type Stats struct {
	Sources    int
	Assertions int
	Claims     int
	Fits       int
}

// Stats reports the accumulated stream size and fit count.
func (e *Estimator) Stats() Stats {
	return Stats{
		Sources:    e.numSrc,
		Assertions: e.numAssert,
		Claims:     len(e.events),
		Fits:       e.fits,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
