// Package stream provides an incremental fact-finder for social data
// streams, the extension direction the paper cites as [21] (Yao et al.,
// "Recursive ground truth estimator for social data streams", IPSN 2016).
//
// A stream.Estimator ingests timestamped claims in batches. After each
// batch it rebuilds the (sparse) dataset seen so far and re-estimates truth
// posteriors with EM-Ext — but warm-started from the previous batch's
// parameter estimates, so late batches converge in a handful of iterations
// instead of a full cold fit. Sources and assertions may appear at any
// time; the id spaces grow monotonically.
package stream

import (
	"context"
	"errors"
	"fmt"
	"time"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/factfind"
	"depsense/internal/model"
	"depsense/internal/obs"
)

// Metric names recorded into Options.Metrics, one catalog entry per series
// (see DESIGN.md §10).
const (
	// MetricFits counts completed refits by mode ("cold" for the full
	// first fit, "warm" for parameter-carrying refits).
	MetricFits = "depsense_stream_fits_total"
	// MetricFitSeconds is the refit-duration histogram by mode.
	MetricFitSeconds = "depsense_stream_fit_duration_seconds"
	// MetricSources / MetricAssertions / MetricClaims gauge the accumulated
	// stream id spaces and claim count.
	MetricSources    = "depsense_stream_sources"
	MetricAssertions = "depsense_stream_assertions"
	MetricClaims     = "depsense_stream_claims"
	// MetricLastRefitAge gauges seconds since the last completed refit —
	// the staleness signal ops watch, as opposed to the fit counters.
	MetricLastRefitAge = "depsense_stream_last_refit_age_seconds"
)

// Options tunes the incremental estimator.
type Options struct {
	// EM configures the underlying estimator; Seed and DepMode are
	// honored. Its MaxIters applies to the cold first fit.
	EM core.Options
	// WarmMaxIters caps the warm-started refits after later batches
	// (default 60 — warm starts need fewer iterations than a cold
	// fit).
	WarmMaxIters int
	// WarmTol is the convergence tolerance of warm refits (default 1e-3).
	// Streaming estimates are revised on the next batch anyway, so the
	// cold fit's strict tolerance buys nothing but iterations here.
	WarmTol float64
	// Metrics, when set, receives fit telemetry: MetricFits counters and
	// MetricFitSeconds histograms labeled mode="cold"/"warm". Nil records
	// nothing.
	Metrics *obs.Registry
	// Clock supplies the fit-duration timestamps; nil means the wall
	// clock. Injected so the package honors the clocked-zone lint
	// contract and fit durations are testable.
	Clock func() time.Time
	// OnRefit, when set, fires synchronously after every completed refit,
	// once the new estimate is installed as the estimator's state — the
	// attachment point for the estimation-quality monitor (internal/qual).
	// It runs on the AddBatch caller's goroutine under the caller's
	// context; a cancelled or failed refit does not fire it.
	OnRefit func(ctx context.Context, ev RefitEvent)
}

// RefitEvent describes one completed refit to Options.OnRefit.
type RefitEvent struct {
	// Fit is the 0-based index of this refit; Warm whether it warm-started.
	Fit  int
	Warm bool
	// Result and Dataset are the refit's estimate and the dataset behind
	// it — the same values a subsequent Result()/Dataset() would return.
	Result  *factfind.Result
	Dataset *claims.Dataset
	// Edges is the cumulative follow-edge count observed so far.
	Edges int
}

// Estimator accumulates a claim stream and maintains truth estimates.
type Estimator struct {
	opts      Options
	graph     *depgraph.Graph
	events    []depgraph.Event
	numSrc    int
	numAssert int

	params   *model.Params // warm-start parameters from the last fit
	scratch  *core.Scratch // kernel buffers reused by every refit
	last     *factfind.Result
	lastDS   *claims.Dataset
	fits     int
	warmFits int
	coldFits int
	lastFit  time.Time
	clock    func() time.Time
}

// New creates an empty streaming estimator.
func New(opts Options) *Estimator {
	if opts.WarmMaxIters <= 0 {
		opts.WarmMaxIters = 60
	}
	if opts.WarmTol <= 0 {
		opts.WarmTol = 1e-3
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Estimator{
		opts:    opts,
		graph:   depgraph.NewGraph(0),
		clock:   clock,
		scratch: core.NewScratch(),
	}
}

// Errors returned by the estimator.
var (
	ErrNoData   = errors.New("stream: no claims ingested yet")
	ErrBadEvent = errors.New("stream: invalid event")
)

// ObserveFollow records a follow edge (follower sees followee's claims).
// New source ids grow the id space.
func (e *Estimator) ObserveFollow(follower, followee int) error {
	if follower < 0 || followee < 0 {
		return fmt.Errorf("%w: follow(%d -> %d)", ErrBadEvent, follower, followee)
	}
	e.growSources(max(follower, followee) + 1)
	return e.graph.AddFollow(follower, followee)
}

// AddBatch ingests a batch of claims and refits the estimator.
func (e *Estimator) AddBatch(batch []depgraph.Event) (*factfind.Result, error) {
	return e.AddBatchContext(context.Background(), batch)
}

// AddBatchContext ingests a batch of claims and refits the estimator under
// ctx. Batch ingestion is atomic: the whole batch is validated before
// anything is mutated, so a rejected batch leaves the estimator's state —
// events, id spaces, follow graph, warm-start parameters — exactly as it
// was, and the caller can fix and resubmit. (Appending events one-by-one
// before validating the rest used to leave a half-ingested batch behind a
// mid-batch error, silently corrupting every later fit.)
//
// Cancelling mid-refit keeps the estimator's previous estimate: the batch
// is still ingested (the events are recorded and the id spaces grown), but
// the warm-start parameters and latest estimate stay those of the last
// completed fit, so the next AddBatch refits over all accumulated events.
func (e *Estimator) AddBatchContext(ctx context.Context, batch []depgraph.Event) (*factfind.Result, error) {
	// Validate the full batch before mutating any estimator state.
	maxSrc, maxAssert := -1, -1
	for _, ev := range batch {
		if ev.Source < 0 || ev.Assertion < 0 {
			return nil, fmt.Errorf("%w: %+v", ErrBadEvent, ev)
		}
		if ev.Source > maxSrc {
			maxSrc = ev.Source
		}
		if ev.Assertion > maxAssert {
			maxAssert = ev.Assertion
		}
	}
	if len(e.events)+len(batch) == 0 {
		return nil, ErrNoData
	}
	e.growSources(maxSrc + 1)
	if maxAssert >= e.numAssert {
		e.numAssert = maxAssert + 1
	}
	e.events = append(e.events, batch...)
	ds, err := depgraph.BuildDataset(e.graph, e.events, e.numAssert)
	if err != nil {
		return nil, err
	}

	opts := e.opts.EM
	// Every refit of this estimator runs through the same Scratch, so a
	// stable-sized stream refits without growing the kernel buffers at all
	// (AddBatch is not safe for concurrent use, so neither is sharing the
	// scratch a new hazard; the concurrent-restarts path inside core
	// ignores it).
	opts.Scratch = e.scratch
	warm := e.params != nil && e.params.NumSources() == ds.N()
	if warm {
		opts.Init = e.params
		opts.MaxIters = e.opts.WarmMaxIters
		opts.Tol = e.opts.WarmTol
	}
	start := e.clock()
	res, err := core.RunCtx(ctx, ds, core.VariantExt, opts)
	if err != nil {
		// On cancellation res carries the partial fit; surface it to the
		// caller but do not install it as the warm-start state.
		return res, err
	}
	e.recordFit(warm, e.clock().Sub(start))
	e.params = res.Params.Clone()
	e.last = res
	e.lastDS = ds
	e.fits++
	if e.opts.OnRefit != nil {
		e.opts.OnRefit(ctx, RefitEvent{
			Fit:     e.fits - 1,
			Warm:    warm,
			Result:  res,
			Dataset: ds,
			Edges:   e.graph.NumEdges(),
		})
	}
	return res, nil
}

// recordFit tracks warm/cold fit counts and, when a registry is attached,
// exports the fit telemetry.
func (e *Estimator) recordFit(warm bool, d time.Duration) {
	mode := "cold"
	if warm {
		mode = "warm"
		e.warmFits++
	} else {
		e.coldFits++
	}
	e.lastFit = e.clock()
	if reg := e.opts.Metrics; reg != nil {
		reg.Counter(MetricFits, "Completed stream refits by mode (cold first fit vs warm-started refit).",
			obs.L("mode", mode)).Inc()
		reg.Histogram(MetricFitSeconds, "Stream refit duration in seconds by mode.",
			nil, obs.L("mode", mode)).Observe(d.Seconds())
	}
	e.ExportGauges()
}

// ExportGauges publishes the current stream-size gauges and the
// last-refit-age gauge into the attached registry. It runs after every
// completed fit; long-lived services should also call it on scrape (or on a
// timer), since the age gauge goes stale between fits by definition.
func (e *Estimator) ExportGauges() {
	reg := e.opts.Metrics
	if reg == nil {
		return
	}
	reg.Gauge(MetricSources, "Sources in the accumulated stream id space.").Set(float64(e.numSrc))
	reg.Gauge(MetricAssertions, "Assertions in the accumulated stream id space.").Set(float64(e.numAssert))
	reg.Gauge(MetricClaims, "Claim events accumulated over the stream.").Set(float64(len(e.events)))
	if !e.lastFit.IsZero() {
		age := e.clock().Sub(e.lastFit).Seconds()
		if age < 0 {
			age = 0
		}
		reg.Gauge(MetricLastRefitAge, "Seconds since the last completed refit.").Set(age)
	}
}

// growSources extends the id space and carries prior parameter estimates
// over, giving brand-new sources neutral warm-start channels.
func (e *Estimator) growSources(n int) {
	if n <= e.numSrc {
		return
	}
	grown := depgraph.NewGraph(n)
	for i := 0; i < e.numSrc; i++ {
		for _, anc := range e.graph.Ancestors(i) {
			// Re-adding within a larger graph cannot fail: indices are
			// in range by construction.
			_ = grown.AddFollow(i, anc)
		}
	}
	e.graph = grown
	if e.params != nil {
		p := model.NewParams(n, e.params.Z)
		copy(p.Sources, e.params.Sources)
		for i := e.numSrc; i < n; i++ {
			p.Sources[i] = model.SourceParams{A: 0.5, B: 0.5, F: 0.5, G: 0.5}
		}
		e.params = p
	}
	e.numSrc = n
}

// Result returns the latest estimate.
func (e *Estimator) Result() (*factfind.Result, error) {
	if e.last == nil {
		return nil, ErrNoData
	}
	return e.last, nil
}

// Dataset returns the dataset underlying the latest estimate.
func (e *Estimator) Dataset() (*claims.Dataset, error) {
	if e.lastDS == nil {
		return nil, ErrNoData
	}
	return e.lastDS, nil
}

// Stats describes the stream state.
type Stats struct {
	Sources    int
	Assertions int
	Claims     int
	Fits       int
	// WarmFits counts the refits that warm-started from the previous
	// batch's parameters; ColdFits the full fits. They sum to Fits.
	WarmFits int
	ColdFits int
}

// Stats reports the accumulated stream size and fit counts.
func (e *Estimator) Stats() Stats {
	return Stats{
		Sources:    e.numSrc,
		Assertions: e.numAssert,
		Claims:     len(e.events),
		Fits:       e.fits,
		WarmFits:   e.warmFits,
		ColdFits:   e.coldFits,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
