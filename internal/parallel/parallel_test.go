package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var hits [100]int32
		err := ForEach(100, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsLowestFailure(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(50, 8, func(i int) error {
		if i == 7 || i == 31 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "item 7") {
		t.Fatalf("not lowest-indexed failure: %v", err)
	}
}

func TestForEachStopsDispatchingAfterFailure(t *testing.T) {
	var ran int32
	_ = ForEach(10000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if got := atomic.LoadInt32(&ran); got > 5000 {
		t.Fatalf("dispatch did not stop early: %d items ran", got)
	}
}

func TestForEachCtxStopsDispatchingOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := ForEachCtx(ctx, 10000, workers, func(i int) error {
			if atomic.AddInt32(&ran, 1) == 10 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// In-flight items finish and a few dispatches can race the
		// cancellation, but the vast majority of items must never run.
		if got := atomic.LoadInt32(&ran); got > 5000 {
			t.Fatalf("workers=%d: dispatch did not stop: %d items ran", workers, got)
		}
		cancel()
	}
}

func TestForEachCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEachCtx(ctx, 100, 4, func(int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt32(&ran); got != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", got)
	}
}

func TestForEachCtxItemErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 100, 4, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the item error to win", err)
	}
	if !strings.Contains(err.Error(), "item 3") {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachCtxClampsWorkers(t *testing.T) {
	// workers > n must clamp to n, and workers <= 0 must select a positive
	// default; both still run every item exactly once.
	for _, workers := range []int{-1, 0, 3, 1000} {
		var hits [3]int32
		err := ForEachCtx(context.Background(), 3, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachSequentialWhenOneWorker(t *testing.T) {
	// With one worker the order must be strictly sequential (the fast
	// path), which ForEach guarantees by running inline.
	last := -1
	err := ForEach(100, 1, func(i int) error {
		if i != last+1 {
			t.Fatalf("out of order: %d after %d", i, last)
		}
		last = i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
