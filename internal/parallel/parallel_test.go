package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var hits [100]int32
		err := ForEach(100, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsLowestFailure(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(50, 8, func(i int) error {
		if i == 7 || i == 31 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "item 7") {
		t.Fatalf("not lowest-indexed failure: %v", err)
	}
}

func TestForEachStopsDispatchingAfterFailure(t *testing.T) {
	var ran int32
	_ = ForEach(10000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if got := atomic.LoadInt32(&ran); got > 5000 {
		t.Fatalf("dispatch did not stop early: %d items ran", got)
	}
}

func TestForEachSequentialWhenOneWorker(t *testing.T) {
	// With one worker the order must be strictly sequential (the fast
	// path), which ForEach guarantees by running inline.
	last := -1
	err := ForEach(100, 1, func(i int) error {
		if i != last+1 {
			t.Fatalf("out of order: %d after %d", i, last)
		}
		last = i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
