// Package parallel provides a minimal bounded worker pool for
// embarrassingly parallel experiment sweeps. Work items are indexed so
// callers can write results into pre-allocated slots and aggregate
// deterministically afterwards regardless of scheduling order.
//
// Blocks and BlockRange define the fixed block decomposition used by the
// deterministic hot paths (EM E/M steps, exact bound enumeration): the
// decomposition depends only on the problem size, never on the worker
// count, so per-block partials reduced in block index order yield results
// that are bit-for-bit identical at any parallelism level.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Blocks returns the number of fixed-size blocks covering n items. It is
// zero for n <= 0 and never depends on the worker count, which is what
// makes block-partial reductions scheduler-independent.
func Blocks(n, size int) int {
	if n <= 0 {
		return 0
	}
	if size <= 0 {
		size = 1
	}
	return (n + size - 1) / size
}

// BlockRange returns the half-open item range [lo, hi) of block b under the
// same decomposition as Blocks.
func BlockRange(b, n, size int) (lo, hi int) {
	lo = b * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). It waits for all items to finish and
// returns the error of the lowest-indexed item that failed, if any. fn must
// be safe to call concurrently; writing to disjoint result slots is the
// intended aggregation pattern.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach under a context: once ctx is cancelled no further
// items are dispatched, though in-flight items run to completion. The
// lowest-indexed item error still wins when both an item failed and the
// context was cancelled; with no item failures the context's error is
// returned. fn does not receive ctx — callers that want per-item
// cancellation close over it.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return fmt.Errorf("parallel: item %d: %w", i, err)
			}
		}
		return nil
	}

	// One mutex guards both the dispatch cursor and the first-failure
	// record, so "stop dispatching after a failure" and "report the
	// lowest-indexed failure" cannot race with each other.
	var (
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
	}
	takeNext := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		// Stop dispatching after the first failure or cancellation;
		// in-flight items still run to completion.
		if next >= n || firstIdx >= 0 || ctx.Err() != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			//lint:allow ctxloop cancellation is consulted inside takeNext, the dispatch gate that ends this loop
			for {
				i, ok := takeNext()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("parallel: item %d: %w", firstIdx, firstErr)
	}
	if next < n {
		// Dispatch stopped early without an item failure: the context
		// was cancelled.
		return ctx.Err()
	}
	return nil
}
