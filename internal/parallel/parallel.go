// Package parallel provides a minimal bounded worker pool for
// embarrassingly parallel experiment sweeps. Work items are indexed so
// callers can write results into pre-allocated slots and aggregate
// deterministically afterwards regardless of scheduling order.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). It waits for all items to finish and
// returns the error of the lowest-indexed item that failed, if any. fn must
// be safe to call concurrently; writing to disjoint result slots is the
// intended aggregation pattern.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return fmt.Errorf("parallel: item %d: %w", i, err)
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
	}
	takeNext := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || firstIdx >= 0 {
			// Stop dispatching after the first failure; in-flight items
			// still run to completion.
			if next >= n {
				return 0, false
			}
			if firstIdx >= 0 {
				return 0, false
			}
		}
		i := next
		next++
		return i, true
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := takeNext()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("parallel: item %d: %w", firstIdx, firstErr)
	}
	return nil
}
