package tweetjson

import (
	"errors"
	"strings"
	"testing"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
)

const fixtureJSONL = `
{"id_str":"1001","text":"explosion reported near bridge7 #demo","created_at":"Sat Mar 14 10:00:00 +0000 2015","user":{"id_str":"42","screen_name":"alice"}}
{"id_str":"1002","text":"RT @alice: explosion reported near bridge7 #demo","created_at":"Sat Mar 14 10:05:00 +0000 2015","user":{"id_str":"77","screen_name":"bob"},"retweeted_status":{"id_str":"1001","text":"explosion reported near bridge7 #demo","user":{"id_str":"42","screen_name":"alice"}}}

{"id_str":"1003","full_text":"officials deny outage near campus2 #demo","timestamp_ms":"1426327500000","user":{"id_str":"9","screen_name":"carol"}}
`

func TestParseJSONL(t *testing.T) {
	tweets, err := Parse(strings.NewReader(fixtureJSONL))
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) != 3 {
		t.Fatalf("%d tweets", len(tweets))
	}
	if tweets[1].RetweetedStatus == nil || tweets[1].RetweetedStatus.User.ScreenName != "alice" {
		t.Fatal("retweeted_status lost")
	}
	if tweets[2].Body() != "officials deny outage near campus2 #demo" {
		t.Fatalf("full_text not preferred: %q", tweets[2].Body())
	}
}

func TestParseArray(t *testing.T) {
	arr := `[{"id_str":"1","text":"a","user":{"id_str":"5"}},{"id_str":"2","text":"b","user":{"id_str":"6"}}]`
	tweets, err := Parse(strings.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) != 2 {
		t.Fatalf("%d tweets", len(tweets))
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); !errors.Is(err, ErrEmptyArchive) {
		t.Fatalf("want ErrEmptyArchive, got %v", err)
	}
	if _, err := Parse(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := Parse(strings.NewReader("[{]")); err == nil {
		t.Fatal("malformed array accepted")
	}
}

func TestTimeResolution(t *testing.T) {
	// created_at format.
	tw := Tweet{CreatedAt: "Sat Mar 14 10:00:00 +0000 2015"}
	want := time.Date(2015, 3, 14, 10, 0, 0, 0, time.UTC)
	if !tw.Time().Equal(want) {
		t.Fatalf("created_at time = %v", tw.Time())
	}
	// timestamp_ms wins over created_at.
	tw.TimestampMS = "1426327500000"
	if tw.Time().UnixMilli() != 1426327500000 {
		t.Fatalf("timestamp_ms time = %v", tw.Time())
	}
	// Snowflake fallback: id 576813921862553600 is ~2015-03-14T18:20Z.
	snow := Tweet{IDStr: "576813921862553600"}
	got := snow.Time()
	if got.Year() != 2015 || got.Month() != time.March {
		t.Fatalf("snowflake time = %v", got)
	}
	// Nothing available.
	if !(&Tweet{}).Time().IsZero() {
		t.Fatal("zero tweet has non-zero time")
	}
}

func TestToPipeline(t *testing.T) {
	tweets, err := Parse(strings.NewReader(fixtureJSONL))
	if err != nil {
		t.Fatal(err)
	}
	in, mapping, err := ToPipeline(tweets)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumSources != 3 || len(in.Messages) != 3 {
		t.Fatalf("sources=%d messages=%d", in.NumSources, len(in.Messages))
	}
	// Messages must be chronological.
	for i := 1; i < len(in.Messages); i++ {
		if in.Messages[i].Time < in.Messages[i-1].Time {
			t.Fatal("messages not chronological")
		}
	}
	// The retweet edge bob -> alice must exist.
	bob, alice := -1, -1
	for i, name := range mapping.ScreenNames {
		switch name {
		case "bob":
			bob = i
		case "alice":
			alice = i
		}
	}
	if bob < 0 || alice < 0 {
		t.Fatalf("mapping: %v", mapping.ScreenNames)
	}
	found := false
	for _, anc := range in.Graph.Ancestors(bob) {
		if anc == alice {
			found = true
		}
	}
	if !found {
		t.Fatal("retweet edge missing")
	}
	if len(mapping.TweetIDs) != 3 || mapping.TweetIDs[0] != "1001" {
		t.Fatalf("tweet ids: %v", mapping.TweetIDs)
	}
}

func TestToPipelineRunsEndToEnd(t *testing.T) {
	tweets, err := Parse(strings.NewReader(fixtureJSONL))
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := ToPipeline(tweets)
	if err != nil {
		t.Fatal(err)
	}
	out, err := apollo.Run(in, &baselines.Voting{}, apollo.Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The retweet must cluster with its original and be dependent.
	c := out.MessageAssertion[0]
	if out.MessageAssertion[1] != c {
		t.Fatal("retweet clustered apart from original")
	}
	if out.Dataset.NumDependentClaims() != 1 {
		t.Fatalf("dependent claims = %d", out.Dataset.NumDependentClaims())
	}
}

func TestToPipelineRejectsAnonymousTweets(t *testing.T) {
	if _, _, err := ToPipeline([]Tweet{{IDStr: "1", Text: "x"}}); !errors.Is(err, ErrNoAuthor) {
		t.Fatalf("want ErrNoAuthor, got %v", err)
	}
}
