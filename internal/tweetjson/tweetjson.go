// Package tweetjson ingests real tweet archives in the Twitter API v1.1
// JSON format (the format of the paper's 2015 datasets) and converts them
// into Apollo pipeline inputs: dense source ids, a follow graph implied by
// retweet edges, and chronologically ordered messages.
//
// Both JSON Lines (one tweet object per line, the streaming API's output)
// and a single JSON array are accepted. Only the handful of fields the
// pipeline needs are decoded; unknown fields are ignored.
package tweetjson

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/depgraph"
)

// Tweet is the subset of the Twitter API v1.1 tweet object the pipeline
// consumes.
type Tweet struct {
	IDStr       string `json:"id_str"`
	Text        string `json:"text"`
	FullText    string `json:"full_text"` // extended-mode archives
	CreatedAt   string `json:"created_at"`
	TimestampMS string `json:"timestamp_ms"` // streaming API extra
	User        User   `json:"user"`
	// RetweetedStatus is set when this tweet is a retweet; its author
	// becomes a followee of this tweet's author in the derived graph.
	RetweetedStatus *Tweet `json:"retweeted_status"`
}

// User is the tweet author.
type User struct {
	IDStr      string `json:"id_str"`
	ScreenName string `json:"screen_name"`
}

// createdAtLayout is Twitter's classic timestamp format.
const createdAtLayout = "Mon Jan 02 15:04:05 -0700 2006"

// Errors returned by the decoder.
var (
	ErrEmptyArchive = errors.New("tweetjson: archive contains no tweets")
	ErrNoAuthor     = errors.New("tweetjson: tweet has no author id")
)

// Parse reads an archive: a JSON array of tweet objects, or JSON Lines.
// Blank lines are skipped; a malformed line aborts with its line number.
func Parse(r io.Reader) ([]Tweet, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(1)
	if err != nil {
		return nil, ErrEmptyArchive
	}
	if head[0] == '[' {
		var tweets []Tweet
		dec := json.NewDecoder(br)
		if err := dec.Decode(&tweets); err != nil {
			return nil, fmt.Errorf("tweetjson: decode array: %w", err)
		}
		if len(tweets) == 0 {
			return nil, ErrEmptyArchive
		}
		return tweets, nil
	}
	var tweets []Tweet
	scanner := bufio.NewScanner(br)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for scanner.Scan() {
		line++
		raw := bytes.TrimSpace(scanner.Bytes())
		if len(raw) == 0 {
			continue
		}
		var t Tweet
		if err := json.Unmarshal(raw, &t); err != nil {
			return nil, fmt.Errorf("tweetjson: line %d: %w", line, err)
		}
		tweets = append(tweets, t)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("tweetjson: read: %w", err)
	}
	if len(tweets) == 0 {
		return nil, ErrEmptyArchive
	}
	return tweets, nil
}

// Time resolves the tweet's timestamp: timestamp_ms when present, else
// created_at, else the snowflake id's embedded time, else zero.
func (t *Tweet) Time() time.Time {
	if t.TimestampMS != "" {
		if ms, err := strconv.ParseInt(t.TimestampMS, 10, 64); err == nil {
			return time.UnixMilli(ms).UTC()
		}
	}
	if t.CreatedAt != "" {
		if ts, err := time.Parse(createdAtLayout, t.CreatedAt); err == nil {
			return ts.UTC()
		}
	}
	if id, err := strconv.ParseInt(t.IDStr, 10, 64); err == nil && id > (1<<22) {
		// Snowflake ids embed milliseconds since the Twitter epoch
		// (2010-11-04T01:42:54.657Z) in their upper bits.
		const twitterEpochMS = 1288834974657
		return time.UnixMilli((id >> 22) + twitterEpochMS).UTC()
	}
	return time.Time{}
}

// Body returns the tweet text, preferring the extended full_text field.
func (t *Tweet) Body() string {
	if t.FullText != "" {
		return t.FullText
	}
	return t.Text
}

// Mapping connects the pipeline's dense ids back to the archive.
type Mapping struct {
	// ScreenNames[i] is the display name of dense source id i (falls back
	// to the user id when the archive has no screen name).
	ScreenNames []string
	// UserIDs[i] is the Twitter user id of dense source id i.
	UserIDs []string
	// TweetIDs[k] is the id_str of pipeline message k.
	TweetIDs []string
}

// ToPipeline converts an archive into an Apollo input: sources are densely
// renumbered, messages are sorted chronologically, and every retweet adds a
// follow edge retweeter -> original author — the same construction the
// paper uses to obtain its dependency network.
func ToPipeline(tweets []Tweet) (apollo.Input, *Mapping, error) {
	if len(tweets) == 0 {
		return apollo.Input{}, nil, ErrEmptyArchive
	}
	order := make([]int, len(tweets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tweets[order[a]].Time().Before(tweets[order[b]].Time())
	})

	mapping := &Mapping{}
	denseID := make(map[string]int)
	intern := func(u User) (int, error) {
		if u.IDStr == "" {
			return 0, ErrNoAuthor
		}
		if id, ok := denseID[u.IDStr]; ok {
			return id, nil
		}
		id := len(mapping.UserIDs)
		denseID[u.IDStr] = id
		mapping.UserIDs = append(mapping.UserIDs, u.IDStr)
		name := u.ScreenName
		if name == "" {
			name = u.IDStr
		}
		mapping.ScreenNames = append(mapping.ScreenNames, name)
		return id, nil
	}

	type edge struct{ follower, followee int }
	var edges []edge
	messages := make([]apollo.Message, 0, len(tweets))
	for _, idx := range order {
		t := &tweets[idx]
		src, err := intern(t.User)
		if err != nil {
			return apollo.Input{}, nil, fmt.Errorf("%w (tweet %q)", err, t.IDStr)
		}
		if rt := t.RetweetedStatus; rt != nil && rt.User.IDStr != "" {
			orig, err := intern(rt.User)
			if err != nil {
				return apollo.Input{}, nil, err
			}
			if orig != src {
				edges = append(edges, edge{follower: src, followee: orig})
			}
		}
		messages = append(messages, apollo.Message{
			Source: src,
			Time:   t.Time().UnixMilli(),
			Text:   t.Body(),
		})
		mapping.TweetIDs = append(mapping.TweetIDs, t.IDStr)
	}

	graph := depgraph.NewGraph(len(mapping.UserIDs))
	for _, e := range edges {
		if err := graph.AddFollow(e.follower, e.followee); err != nil {
			return apollo.Input{}, nil, err
		}
	}
	return apollo.Input{
		NumSources: len(mapping.UserIDs),
		Messages:   messages,
		Graph:      graph,
	}, mapping, nil
}
