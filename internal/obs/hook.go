package obs

import (
	"sync"
	"time"

	"depsense/internal/runctx"
)

// Metric names exported by HookExporter, kept as constants so the serving
// layer and tests share one catalog (see DESIGN.md §10 for the full list).
const (
	// MetricIterations counts completed work units — EM iterations,
	// Gibbs sweep checkpoints, heuristic rounds — per algorithm.
	MetricIterations = "depsense_estimator_iterations_total"
	// MetricLogLikelihood gauges the latest data log-likelihood reported
	// by a model-based estimator (heuristics, which report none, leave it
	// untouched).
	MetricLogLikelihood = "depsense_estimator_log_likelihood"
	// MetricIterationSeconds is the per-iteration latency histogram.
	MetricIterationSeconds = "depsense_estimator_iteration_duration_seconds"
	// MetricRuns counts finished runs per algorithm and stop reason
	// (converged / iteration-cap / cancelled / deadline).
	MetricRuns = "depsense_estimator_runs_total"
)

// HookExporter adapts a Registry into a runctx.Hook: attach the returned
// hook with runctx.WithHook (and serialize with runctx.WithSerializedHook
// before any parallel fan-out) and every estimator iteration record lands
// in reg as
//
//   - MetricIterations{algorithm}: one increment per completed work unit,
//   - MetricLogLikelihood{algorithm}: the latest log-likelihood,
//   - MetricIterationSeconds{algorithm}: per-unit latency, derived from the
//     deltas of Iteration.Elapsed (which is cumulative per run),
//   - MetricRuns{algorithm,stopped}: one increment per final (Done) firing.
//
// A work unit is any non-final firing plus the final firing of a converged
// run (convergence is detected on the iteration itself); the extra final
// firings emitted on cancellation, deadline, and iteration-cap repeat an
// already-counted unit and only feed MetricRuns.
//
// Create one exporter per run or request: the exporter carries the
// last-elapsed state that turns cumulative Elapsed into per-unit latency,
// and that state must not be shared between runs. The registry may be (and
// usually is) shared process-wide. The hook is internally serialized, so it
// is safe even without WithSerializedHook — but without it the latency
// deltas of concurrently interleaved runs of the same algorithm are
// meaningless.
func HookExporter(reg *Registry) runctx.Hook {
	var mu sync.Mutex
	last := make(map[string]time.Duration)
	return func(it runctx.Iteration) {
		mu.Lock()
		defer mu.Unlock()
		alg := L("algorithm", it.Algorithm)
		if !it.Done || it.Stopped == runctx.StopConverged {
			reg.Counter(MetricIterations,
				"Completed estimator work units (EM iterations, Gibbs checkpoints, heuristic rounds) by algorithm.",
				alg).Inc()
			prev := last[it.Algorithm]
			last[it.Algorithm] = it.Elapsed
			if d := it.Elapsed - prev; d >= 0 {
				reg.Histogram(MetricIterationSeconds,
					"Per-work-unit estimator latency in seconds by algorithm.",
					nil, alg).Observe(d.Seconds())
			}
		}
		if it.HasLL {
			reg.Gauge(MetricLogLikelihood,
				"Latest data log-likelihood reported by a model-based estimator, by algorithm.",
				alg).Set(it.LogLikelihood)
		}
		if it.Done {
			reg.Counter(MetricRuns,
				"Finished estimator runs by algorithm and stop reason.",
				alg, L("stopped", it.Stopped)).Inc()
		}
	}
}
