// Package obs is the serving stack's observability layer: a concurrent-safe
// metrics registry (counters, gauges, fixed-bucket histograms) that renders
// the Prometheus text exposition format, plus a HookExporter that adapts a
// Registry into a runctx.Hook so every estimator's iteration records (EM-Ext
// iterations of Algorithm 2, Gibbs sweep checkpoints of Algorithm 1,
// exact-bound enumeration blocks of Eq. 3) land in scrapeable metrics.
//
// The package is stdlib-only and deliberately tiny compared to a Prometheus
// client library: metric handles are looked up by (name, labels) on each
// use, families materialize on first touch, and rendering is deterministic —
// families sorted by name, series sorted by label signature — so /metrics
// output is stable byte-for-byte for the same underlying values (the same
// contract the rest of the repository holds for estimator outputs).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric series. Label names
// must match the Prometheus grammar; values are escaped at render time.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefBuckets is the default histogram bucket layout (seconds), the standard
// latency spread from 1ms to 10s.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// kind discriminates metric families.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and hands out series handles. The zero
// value is not usable; construct with NewRegistry. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogramKind only
	series  map[string]*series
}

// series is one (family, labels) time series. Counters and gauges use val;
// histograms use counts/sum/count. A single mutex per series keeps updates
// race-free without the registry lock.
type series struct {
	mu     sync.Mutex
	labels string   // canonical `a="b",c="d"` signature, "" for none; immutable
	val    float64  // guarded by mu
	counts []uint64 // guarded by mu
	sum    float64  // guarded by mu
	count  uint64   // guarded by mu
}

// Counter is a monotonically increasing metric handle.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas panic (counters are monotone).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter add of negative value %v", v))
	}
	c.s.mu.Lock()
	c.s.val += v
	c.s.mu.Unlock()
}

// Value reads the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// Gauge is a metric handle that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.val = v
	g.s.mu.Unlock()
}

// Add shifts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	g.s.mu.Lock()
	g.s.val += v
	g.s.mu.Unlock()
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current gauge value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.val
}

// Histogram is a fixed-bucket cumulative histogram handle.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	for i, ub := range h.buckets {
		if v <= ub {
			h.s.counts[i]++
			break
		}
	}
	h.s.count++
	h.s.sum += v
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution from the bucket counts, returning the upper bound of the
// bucket the quantile falls in — a deliberately conservative (never
// underestimating) answer, which is what admission control wants when it
// compares an observed p50 cost against a remaining deadline budget.
//
// Edge cases are defined, not incidental: an empty histogram (no
// observations) returns NaN — callers must treat "no data" explicitly
// rather than receive a fake cost — and a quantile landing in the implicit
// overflow bucket returns the LAST FINITE bucket upper bound, saturating
// instead of answering +Inf. The saturated answer is still a lower bound
// on the true quantile, but it keeps downstream arithmetic (deadline
// ratios, retry hints, quality gauges) finite; callers that must detect
// saturation can compare against the last configured bucket bound.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.s.mu.Lock()
	count := h.s.count
	counts := append([]uint64(nil), h.s.counts...)
	h.s.mu.Unlock()
	if count == 0 || len(h.buckets) == 0 {
		return math.NaN()
	}
	// Rank of the quantile observation, 1-based: ceil(q * count), at least 1.
	rank := uint64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return h.buckets[i]
		}
	}
	// The rank lies in the overflow bucket (observations beyond the last
	// finite bound): saturate at the last finite bucket.
	return h.buckets[len(h.buckets)-1]
}

// Counter returns the counter series for (name, labels), creating the
// family (with help text) and series on first use. Registering the same
// name as a different metric kind panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{s: r.lookup(name, help, counterKind, nil, labels)}
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{s: r.lookup(name, help, gaugeKind, nil, labels)}
}

// Histogram returns the histogram series for (name, labels). Buckets are
// upper bounds in increasing order; nil selects DefBuckets. A trailing +Inf
// bound is accepted and stripped: the exposition format's implicit
// le="+Inf" bucket (rendered from the observation count) already covers it,
// and keeping the explicit bound would render the same series twice. The
// bucket layout is fixed by the first registration; later calls may pass
// nil to reuse it, but a different explicit layout panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	buckets = stripInfBucket(buckets)
	s := r.lookup(name, help, histogramKind, buckets, labels)
	r.mu.Lock()
	b := r.families[name].buckets
	r.mu.Unlock()
	return &Histogram{s: s, buckets: b}
}

// lookup finds or creates the (family, series) pair under the registry
// lock. Contract violations — invalid names, kind mismatches, bucket
// layout mismatches — panic: they are wiring bugs, not runtime conditions.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Name, name))
		}
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		if k == histogramKind {
			if !sort.Float64sAreSorted(buckets) || len(buckets) == 0 {
				panic(fmt.Sprintf("obs: histogram %q buckets must be non-empty and increasing", name))
			}
			f.buckets = append([]float64(nil), buckets...)
		}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, previously %s", name, k, f.kind))
	}
	if k == histogramKind && buckets != nil && !equalBuckets(buckets, f.buckets) && !equalBuckets(buckets, DefBuckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with a different bucket layout", name))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sig}
		if k == histogramKind {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[sig] = s
	}
	return s
}

// stripInfBucket drops trailing +Inf upper bounds; render emits the
// implicit le="+Inf" bucket unconditionally, so an explicit one would
// duplicate it. A layout that was ONLY +Inf is left for lookup's
// non-empty validation to reject.
func stripInfBucket(buckets []float64) []float64 {
	n := len(buckets)
	for n > 0 && math.IsInf(buckets[n-1], 1) {
		n--
	}
	return buckets[:n]
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelSignature renders labels into the canonical signature used both as
// the series map key and (verbatim) inside the exposition braces: names
// sorted, values escaped.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition format's label escaping:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and is
// not a reserved double-underscore name.
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
