package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "", []float64{0.1, 0.5, 1, 5})

	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram quantile = %v, want NaN", v)
	}

	// Ten observations: 4 in (<=0.1), 4 in (<=0.5), 2 in (<=1).
	for i := 0; i < 4; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 4; i++ {
		h.Observe(0.3)
	}
	h.Observe(0.9)
	h.Observe(0.9)

	cases := []struct {
		q, want float64
	}{
		{0, 0.1},    // rank 1 → first bucket
		{0.4, 0.1},  // rank 4 → still first bucket
		{0.5, 0.5},  // rank 5 → second bucket
		{0.8, 0.5},  // rank 8 → second bucket
		{0.9, 1},    // rank 9 → third bucket
		{1, 1},      // rank 10 → third bucket
		{-0.5, 0.1}, // clamped to 0
		{1.5, 1},    // clamped to 1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileOverflow: observations beyond the last bucket land
// in the implicit +Inf bucket; a quantile falling there SATURATES at the
// last finite bucket bound instead of answering +Inf, so downstream
// arithmetic (deadline ratios, Retry-After hints, quality gauges) stays
// finite. It used to return +Inf, which leaked into duration math as
// Inf-seconds.
func TestHistogramQuantileOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_overflow_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(100) // overflow
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("p100 = %v, want saturation at last finite bucket 2", got)
	}
	// All observations in overflow: every quantile saturates.
	h2 := r.Histogram("q_overflow_all_seconds", "", []float64{1, 2})
	h2.Observe(50)
	h2.Observe(100)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h2.Quantile(q); got != 2 {
			t.Fatalf("all-overflow Quantile(%v) = %v, want 2", q, got)
		}
	}
}

// TestHistogramQuantileEmpty: the empty histogram's behavior is part of
// the contract — NaN for any q, forcing callers to handle "no data"
// explicitly rather than receive a fabricated cost.
func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_empty_seconds", "", []float64{1, 2})
	for _, q := range []float64{0, 0.5, 1, -3, 7} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("empty Quantile(%v) = %v, want NaN", q, got)
		}
	}
}
