package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "", []float64{0.1, 0.5, 1, 5})

	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram quantile = %v, want NaN", v)
	}

	// Ten observations: 4 in (<=0.1), 4 in (<=0.5), 2 in (<=1).
	for i := 0; i < 4; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 4; i++ {
		h.Observe(0.3)
	}
	h.Observe(0.9)
	h.Observe(0.9)

	cases := []struct {
		q, want float64
	}{
		{0, 0.1},    // rank 1 → first bucket
		{0.4, 0.1},  // rank 4 → still first bucket
		{0.5, 0.5},  // rank 5 → second bucket
		{0.8, 0.5},  // rank 8 → second bucket
		{0.9, 1},    // rank 9 → third bucket
		{1, 1},      // rank 10 → third bucket
		{-0.5, 0.1}, // clamped to 0
		{1.5, 1},    // clamped to 1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileOverflow: observations beyond the last bucket land
// in the implicit +Inf bucket; a quantile falling there reports +Inf — the
// conservative answer for budget checks.
func TestHistogramQuantileOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_overflow_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(100) // overflow
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("p100 = %v, want +Inf", got)
	}
}
