package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"depsense/internal/mapsort"
)

// Render writes the registry in Prometheus text exposition format
// (version 0.0.4). Output is deterministic: families are sorted by metric
// name, series by label signature, and histogram buckets by upper bound —
// the same registry state always renders the same bytes.
func (r *Registry) Render(w io.Writer) error {
	var b strings.Builder
	// The registry lock covers the family/series maps for the whole render
	// (lookups block during a scrape; series value updates do not — they
	// take only the per-series mutex).
	r.mu.Lock()
	for _, name := range mapsort.Keys(r.families) {
		r.families[name].render(&b)
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, sig := range mapsort.Keys(f.series) {
		s := f.series[sig]
		s.mu.Lock()
		switch f.kind {
		case counterKind, gaugeKind:
			b.WriteString(f.name)
			writeLabels(b, sig, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(s.val))
			b.WriteByte('\n')
		case histogramKind:
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += s.counts[i]
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, sig, `le="`+formatValue(ub)+`"`)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, sig, `le="+Inf"`)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(s.count, 10))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, sig, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(s.sum))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, sig, "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(s.count, 10))
			b.WriteByte('\n')
		}
		s.mu.Unlock()
	}
}

// writeLabels emits `{sig,extra}` with either part optional; nothing when
// both are empty.
func writeLabels(b *strings.Builder, sig, extra string) {
	if sig == "" && extra == "" {
		return
	}
	b.WriteByte('{')
	b.WriteString(sig)
	if sig != "" && extra != "" {
		b.WriteByte(',')
	}
	b.WriteString(extra)
	b.WriteByte('}')
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trippable decimal, with the special IEEE values spelled
// +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the exposition format's HELP escaping: backslash and
// newline (quotes are legal in help text).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var b strings.Builder
	for _, r := range h {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Handler returns a GET-only http.Handler serving the rendered registry,
// suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Render(w)
	})
}
