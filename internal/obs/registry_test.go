package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exposition format byte-for-byte: family
// ordering (sorted by name), series ordering (sorted by label signature),
// label escaping, histogram bucket/sum/count lines, and value formatting.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_requests_total", "Requests.", L("endpoint", "/v1/factfind"), L("code", "200")).Add(3)
	r.Counter("z_requests_total", "Requests.", L("endpoint", "/healthz"), L("code", "200")).Inc()
	r.Gauge("a_in_flight", "In-flight requests.").Set(2)
	r.Gauge("m_temperature", "Escaped label.", L("site", `quo"te\slash`+"\n")).Set(-1.5)
	h := r.Histogram("h_latency_seconds", "Latency.", []float64{0.1, 1}, L("endpoint", "/v1/factfind"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	want := strings.Join([]string{
		`# HELP a_in_flight In-flight requests.`,
		`# TYPE a_in_flight gauge`,
		`a_in_flight 2`,
		`# HELP h_latency_seconds Latency.`,
		`# TYPE h_latency_seconds histogram`,
		`h_latency_seconds_bucket{endpoint="/v1/factfind",le="0.1"} 1`,
		`h_latency_seconds_bucket{endpoint="/v1/factfind",le="1"} 2`,
		`h_latency_seconds_bucket{endpoint="/v1/factfind",le="+Inf"} 3`,
		`h_latency_seconds_sum{endpoint="/v1/factfind"} 5.55`,
		`h_latency_seconds_count{endpoint="/v1/factfind"} 3`,
		`# HELP m_temperature Escaped label.`,
		`# TYPE m_temperature gauge`,
		`m_temperature{site="quo\"te\\slash\n"} -1.5`,
		`# HELP z_requests_total Requests.`,
		`# TYPE z_requests_total counter`,
		`z_requests_total{code="200",endpoint="/healthz"} 1`,
		`z_requests_total{code="200",endpoint="/v1/factfind"} 3`,
		``,
	}, "\n")

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestExpositionSpecialValues pins the rendering of the IEEE special values
// (NaN, ±Inf gauges — reachable through HookExporter when an estimator
// reports a degenerate log-likelihood) and the histogram +Inf bucket: an
// explicit trailing +Inf bound in the registered layout must collapse into
// the implicit le="+Inf" line, never render as a duplicate series.
func TestExpositionSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g_nan", "NaN gauge.").Set(math.NaN())
	r.Gauge("g_pinf", "Positive infinity gauge.").Set(math.Inf(1))
	r.Gauge("g_ninf", "Negative infinity gauge.").Set(math.Inf(-1))
	h := r.Histogram("h_seconds", "Explicit +Inf bucket.", []float64{0.5, math.Inf(1)})
	h.Observe(0.1)
	h.Observe(99)

	want := strings.Join([]string{
		`# HELP g_nan NaN gauge.`,
		`# TYPE g_nan gauge`,
		`g_nan NaN`,
		`# HELP g_ninf Negative infinity gauge.`,
		`# TYPE g_ninf gauge`,
		`g_ninf -Inf`,
		`# HELP g_pinf Positive infinity gauge.`,
		`# TYPE g_pinf gauge`,
		`g_pinf +Inf`,
		`# HELP h_seconds Explicit +Inf bucket.`,
		`# TYPE h_seconds histogram`,
		`h_seconds_bucket{le="0.5"} 1`,
		`h_seconds_bucket{le="+Inf"} 2`,
		`h_seconds_sum 99.1`,
		`h_seconds_count 2`,
		``,
	}, "\n")

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}

	// Re-registering with and without the stripped +Inf bound is the same
	// layout, and the handles share the series.
	if got := r.Histogram("h_seconds", "", []float64{0.5}).Count(); got != 2 {
		t.Fatalf("stripped layout resolved to a different series: count=%d", got)
	}
	if got := r.Histogram("h_seconds", "", []float64{0.5, math.Inf(1)}).Count(); got != 2 {
		t.Fatalf("+Inf layout resolved to a different series: count=%d", got)
	}
}

// TestRenderDeterministic: repeated renders of the same state are
// byte-identical (sorted iteration everywhere, no map-order leakage).
func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, ep := range []string{"/b", "/a", "/c", "/z", "/m"} {
		r.Counter("req_total", "Requests.", L("endpoint", ep)).Inc()
	}
	var first strings.Builder
	if err := r.Render(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again strings.Builder
		if err := r.Render(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
}

// TestSameSeriesShared: two lookups of the same (name, labels) hit one
// series regardless of label order.
func TestSameSeriesShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "C.", L("x", "1"), L("y", "2"))
	b := r.Counter("c_total", "C.", L("y", "2"), L("x", "1"))
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("shared series value = %v, want 3", got)
	}
}

// TestConcurrentUpdates exercises the registry from many goroutines; run
// under -race this is the concurrency-safety test.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("conc_total", "C.", L("w", string(rune('a'+w%4)))).Inc()
				r.Gauge("conc_gauge", "G.").Set(float64(i))
				r.Histogram("conc_seconds", "H.", nil).Observe(float64(i) / per)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.Render(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, lv := range []string{"a", "b", "c", "d"} {
		total += r.Counter("conc_total", "C.", L("w", lv)).Value()
	}
	if total != workers*per {
		t.Fatalf("counter total = %v, want %d", total, workers*per)
	}
	if got := r.Histogram("conc_seconds", "H.", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestHandler: the registry handler is GET-only and serves the exposition
// content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "One.").Inc()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1") {
		t.Fatalf("body missing metric:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestContractViolationsPanic: wiring bugs fail loudly.
func TestContractViolationsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("1bad", "X.") }},
		{"bad label name", func(r *Registry) { r.Counter("ok_total", "X.", L("__bad", "v")) }},
		{"kind mismatch", func(r *Registry) { r.Counter("k_total", "X."); r.Gauge("k_total", "X.") }},
		{"negative counter add", func(r *Registry) { r.Counter("n_total", "X.").Add(-1) }},
		{"bucket mismatch", func(r *Registry) {
			r.Histogram("h_s", "X.", []float64{1, 2})
			r.Histogram("h_s", "X.", []float64{3, 4})
		}},
		{"unsorted buckets", func(r *Registry) { r.Histogram("u_s", "X.", []float64{2, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f(NewRegistry())
		})
	}
}
