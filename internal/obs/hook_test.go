package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"depsense/internal/core"
	"depsense/internal/randutil"
	"depsense/internal/runctx"
	"depsense/internal/synthetic"
)

// TestHookExporterCounting feeds a synthetic firing sequence covering every
// stop reason and checks the counting rules: non-final firings and the
// converged final firing are work units; cap/cancel final firings repeat an
// already-counted unit and only feed the runs counter.
func TestHookExporterCounting(t *testing.T) {
	reg := NewRegistry()
	hook := HookExporter(reg)

	// A converged run: 3 iterations, convergence detected on the third.
	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 1, LogLikelihood: -10, HasLL: true, Elapsed: time.Millisecond})
	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 2, LogLikelihood: -8, HasLL: true, Elapsed: 2 * time.Millisecond})
	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 3, LogLikelihood: -7, HasLL: true, Elapsed: 3 * time.Millisecond,
		Done: true, Stopped: runctx.StopConverged})
	// A capped run: 2 iterations then the extra final firing.
	hook(runctx.Iteration{Algorithm: "Voting", N: 1, Elapsed: time.Millisecond})
	hook(runctx.Iteration{Algorithm: "Voting", N: 2, Elapsed: 2 * time.Millisecond})
	hook(runctx.Iteration{Algorithm: "Voting", N: 2, Elapsed: 2 * time.Millisecond,
		Done: true, Stopped: runctx.StopIterationCap})
	// A cancelled run: only the final firing.
	hook(runctx.Iteration{Algorithm: "gibbs-bound", N: 0, Elapsed: time.Millisecond,
		Done: true, Stopped: runctx.StopCancelled})

	alg := func(a string) Label { return L("algorithm", a) }
	if got := reg.Counter(MetricIterations, "", alg("EM-Ext")).Value(); got != 3 {
		t.Fatalf("EM-Ext iterations = %v, want 3", got)
	}
	if got := reg.Counter(MetricIterations, "", alg("Voting")).Value(); got != 2 {
		t.Fatalf("Voting iterations = %v, want 2", got)
	}
	if got := reg.Counter(MetricIterations, "", alg("gibbs-bound")).Value(); got != 0 {
		t.Fatalf("gibbs-bound iterations = %v, want 0", got)
	}
	if got := reg.Gauge(MetricLogLikelihood, "", alg("EM-Ext")).Value(); got != -7 {
		t.Fatalf("log-likelihood gauge = %v, want -7", got)
	}
	for _, tc := range []struct {
		alg, stopped string
	}{
		{"EM-Ext", runctx.StopConverged},
		{"Voting", runctx.StopIterationCap},
		{"gibbs-bound", runctx.StopCancelled},
	} {
		if got := reg.Counter(MetricRuns, "", alg(tc.alg), L("stopped", tc.stopped)).Value(); got != 1 {
			t.Fatalf("runs{%s,%s} = %v, want 1", tc.alg, tc.stopped, got)
		}
	}
	// Latency: three EM-Ext deltas of 1ms each.
	h := reg.Histogram(MetricIterationSeconds, "", nil, alg("EM-Ext"))
	if h.Count() != 3 || h.Sum() < 0.0029 || h.Sum() > 0.0031 {
		t.Fatalf("EM-Ext latency histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestHookExporterZeroLogLikelihood checks the HasLL disambiguation: a
// genuine log-likelihood of exactly 0.0 (a perfectly explained dataset)
// updates the gauge, while a firing without HasLL — a heuristic round —
// leaves it alone even when the zero-valued field would previously have
// been mistaken for "absent".
func TestHookExporterZeroLogLikelihood(t *testing.T) {
	reg := NewRegistry()
	hook := HookExporter(reg)
	alg := L("algorithm", "EM-Ext")

	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 1, LogLikelihood: -5, HasLL: true, Elapsed: time.Millisecond})
	hook(runctx.Iteration{Algorithm: "EM-Ext", N: 2, LogLikelihood: 0, HasLL: true, Elapsed: 2 * time.Millisecond})
	if got := reg.Gauge(MetricLogLikelihood, "", alg).Value(); got != 0 {
		t.Fatalf("gauge after genuine 0.0 log-likelihood = %v, want 0", got)
	}

	// A heuristic firing carries no log-likelihood: no gauge series may
	// appear for its algorithm, even though the zero-valued field would
	// previously have been indistinguishable from "absent".
	hook(runctx.Iteration{Algorithm: "Voting", N: 1, Elapsed: time.Millisecond})
	var b strings.Builder
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), MetricLogLikelihood+`{algorithm="Voting"}`) {
		t.Fatalf("gauge series created for a firing without HasLL:\n%s", b.String())
	}
	if !strings.Contains(b.String(), MetricLogLikelihood+`{algorithm="EM-Ext"} 0`) {
		t.Fatalf("genuine 0.0 log-likelihood not exported:\n%s", b.String())
	}
}

// TestHookExporterLiveRun attaches the exporter to a real EM run and checks
// the exported totals against the run's own result.
func TestHookExporterLiveRun(t *testing.T) {
	w, err := synthetic.Generate(synthetic.EstimatorConfig(), randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	ctx := runctx.WithHook(context.Background(), HookExporter(reg))
	res, err := core.RunCtx(ctx, w.Dataset, core.VariantExt, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := 0.0
	for _, a := range []string{"EM-Ext", "EM-Social"} {
		got += reg.Counter(MetricIterations, "", L("algorithm", a)).Value()
	}
	if got < float64(res.Iterations) {
		t.Fatalf("exported iterations %v < result iterations %d", got, res.Iterations)
	}
	stopped := reg.Counter(MetricRuns, "", L("algorithm", "EM-Ext"), L("stopped", res.Stopped)).Value() +
		reg.Counter(MetricRuns, "", L("algorithm", "EM-Social"), L("stopped", res.Stopped)).Value()
	if stopped == 0 {
		t.Fatalf("no run recorded with stop reason %q", res.Stopped)
	}
	var b strings.Builder
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), MetricIterations) || !strings.Contains(b.String(), MetricRuns) {
		t.Fatalf("render missing estimator metrics:\n%s", b.String())
	}
}
