// Package apollo is the end-to-end fact-finding pipeline modeled on the
// Apollo tool the paper integrates its estimator into: ingest a raw tweet
// stream, cluster near-duplicate tweets into assertions, derive the
// source-claim matrix and dependency indicators from the follow graph and
// claim timing, run a fact-finder, and rank assertions by credibility.
package apollo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"depsense/internal/claims"
	"depsense/internal/cluster"
	"depsense/internal/depgraph"
	"depsense/internal/factfind"
	"depsense/internal/runctx"
)

// Message is one raw input item (a tweet).
type Message struct {
	// Source is the author id in [0, NumSources).
	Source int
	// Time orders messages; only relative order matters.
	Time int64
	// Text is the message body; assertions are extracted from it.
	Text string
}

// Input is a complete pipeline input.
type Input struct {
	// NumSources bounds the source id space.
	NumSources int
	// Messages is the raw stream.
	Messages []Message
	// Graph is the follow graph among sources (who can see whom). The
	// pipeline treats it as given; in practice it is constructed from
	// retweet behaviour.
	Graph *depgraph.Graph
}

// Options tunes the pipeline.
type Options struct {
	// Clusterer groups tweets into assertions (cluster.Leader or
	// cluster.MinHash); nil selects a Leader clusterer with default
	// settings.
	Clusterer cluster.Clusterer
	// TopK is the size of the ranked output (default 100, the paper's
	// evaluation cut-off).
	TopK int
	// Clock supplies the timestamps behind Output.Stages; nil means the
	// wall clock. Injected (rather than read directly) so pipeline timing
	// stays testable and the package honors the repository's clocked-zone
	// lint contract.
	Clock func() time.Time
}

// StageTiming is the measured duration of one pipeline stage.
type StageTiming struct {
	// Stage is the stage name: "ingest" (tokenization), "cluster"
	// (assertion extraction), "build" (source-claim matrix + dependency
	// indicators), "fit" (fact-finding), or "rank".
	Stage string
	// Duration is the stage's wall-clock (or injected-clock) cost.
	Duration time.Duration
}

// Output is the pipeline result.
type Output struct {
	// Dataset is the derived source-claim matrix with dependency
	// indicators; assertion j corresponds to cluster j.
	Dataset *claims.Dataset
	// MessageAssertion[i] is the assertion (cluster) id of message i.
	MessageAssertion []int
	// RepresentativeText[j] is the founding message's text for assertion j.
	RepresentativeText []string
	// Result is the fact-finder's scoring.
	Result *factfind.Result
	// Ranked is the TopK assertion ids by decreasing credibility.
	Ranked []int
	// Stages holds per-stage timings in execution order (ingest, cluster,
	// build, fit, rank). A run cut short carries the stages it completed.
	Stages []StageTiming
}

// Errors returned by the pipeline.
var (
	ErrNoMessages = errors.New("apollo: input has no messages")
	ErrNilFinder  = errors.New("apollo: nil fact-finder")
	ErrGraphSize  = errors.New("apollo: graph size does not match NumSources")
)

// Run executes the pipeline with the given fact-finder.
func Run(in Input, finder factfind.FactFinder, opts Options) (*Output, error) {
	return RunContext(context.Background(), in, finder, opts)
}

// RunContext executes the pipeline with the given fact-finder under ctx.
// The context is checked between stages and threaded into the fact-finder;
// if the finder is cancelled mid-run, the partially built Output (dataset,
// cluster assignment, and the finder's partial result, when it produced
// one) is returned alongside the context's error so callers can report how
// far the run got.
func RunContext(ctx context.Context, in Input, finder factfind.FactFinder, opts Options) (*Output, error) {
	if len(in.Messages) == 0 {
		return nil, ErrNoMessages
	}
	if finder == nil {
		return nil, ErrNilFinder
	}
	graph := in.Graph
	if graph == nil {
		graph = depgraph.NewGraph(in.NumSources)
	}
	if graph.N() != in.NumSources {
		return nil, fmt.Errorf("%w: graph has %d sources, input %d", ErrGraphSize, graph.N(), in.NumSources)
	}
	topK := opts.TopK
	if topK <= 0 {
		topK = 100
	}
	clusterer := opts.Clusterer
	if clusterer == nil {
		clusterer = &cluster.Leader{}
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	var stages []StageTiming
	mark := clock()
	stageDone := func(name string) {
		now := clock()
		stages = append(stages, StageTiming{Stage: name, Duration: now.Sub(mark)})
		mark = now
	}

	// Stage 1: assertion extraction.
	if err := runctx.Err(ctx); err != nil {
		return nil, err
	}
	docs := make([][]string, len(in.Messages))
	for i, msg := range in.Messages {
		docs[i] = cluster.Tokenize(msg.Text)
	}
	stageDone("ingest")
	assign := clusterer.Cluster(docs)
	stageDone("cluster")

	// Stage 2: source-claim matrix + dependency indicators from timing and
	// the follow graph.
	if err := runctx.Err(ctx); err != nil {
		return nil, err
	}
	events := make([]depgraph.Event, len(in.Messages))
	for i, msg := range in.Messages {
		if msg.Source < 0 || msg.Source >= in.NumSources {
			return nil, fmt.Errorf("apollo: message %d has source %d outside [0,%d)", i, msg.Source, in.NumSources)
		}
		events[i] = depgraph.Event{Source: msg.Source, Assertion: assign.Cluster[i], Time: msg.Time}
	}
	ds, err := depgraph.BuildDataset(graph, events, assign.NumClusters)
	if err != nil {
		return nil, fmt.Errorf("apollo: build dataset: %w", err)
	}
	stageDone("build")

	// Stage 3: fact-finding.
	reps := make([]string, assign.NumClusters)
	for c, leader := range assign.Leaders {
		reps[c] = in.Messages[leader].Text
	}
	res, err := finder.RunContext(ctx, ds)
	stageDone("fit")
	if err != nil {
		out := &Output{
			Dataset:            ds,
			MessageAssertion:   assign.Cluster,
			RepresentativeText: reps,
			Result:             res,
			Stages:             stages,
		}
		if runctx.Reason(err) != "" {
			// Cancellation mid-run: surface the partial output with the
			// context's error untouched so errors.Is still matches.
			return out, err
		}
		return out, fmt.Errorf("apollo: %s: %w", finder.Name(), err)
	}
	ranked := res.TopK(topK)
	stageDone("rank")
	return &Output{
		Dataset:            ds,
		MessageAssertion:   assign.Cluster,
		RepresentativeText: reps,
		Result:             res,
		Ranked:             ranked,
		Stages:             stages,
	}, nil
}
