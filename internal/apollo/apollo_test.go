package apollo

import (
	"context"
	"errors"
	"testing"
	"time"

	"depsense/internal/baselines"
	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/factfind"
	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

func smallInput() Input {
	g := depgraph.NewGraph(4)
	_ = g.AddFollow(1, 0)
	return Input{
		NumSources: 4,
		Graph:      g,
		Messages: []Message{
			{Source: 0, Time: 1, Text: "witness2 reported fire near plaza3 n42 #demo"},
			{Source: 1, Time: 2, Text: "rt @user0: witness2 reported fire near plaza3 n42 #demo"},
			{Source: 2, Time: 3, Text: "official7 denied outage near campus9 n17 #demo"},
			{Source: 3, Time: 4, Text: "official7 denied outage near campus9 n17 #demo update"},
		},
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	out, err := Run(smallInput(), &baselines.Voting{}, Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Two assertions should be extracted.
	if out.Dataset.M() != 2 {
		t.Fatalf("extracted %d assertions", out.Dataset.M())
	}
	// The retweet must be marked dependent (source 1 follows source 0 and
	// claimed the same cluster later).
	c0 := out.MessageAssertion[0]
	if out.MessageAssertion[1] != c0 {
		t.Fatal("retweet clustered separately")
	}
	if !out.Dataset.Dependent(1, c0) {
		t.Fatal("retweet not dependent")
	}
	if out.Dataset.Dependent(0, c0) {
		t.Fatal("original marked dependent")
	}
	// Message 3 repeats message 2's assertion but has no follow edge.
	c2 := out.MessageAssertion[2]
	if out.MessageAssertion[3] != c2 {
		t.Fatal("duplicate report clustered separately")
	}
	if out.Dataset.Dependent(3, c2) {
		t.Fatal("independent duplicate marked dependent")
	}
	if len(out.Ranked) != 2 {
		t.Fatalf("ranked = %v", out.Ranked)
	}
	if out.RepresentativeText[c0] != smallInput().Messages[0].Text {
		t.Fatalf("representative = %q", out.RepresentativeText[c0])
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := Run(Input{}, &baselines.Voting{}, Options{}); !errors.Is(err, ErrNoMessages) {
		t.Fatalf("want ErrNoMessages, got %v", err)
	}
	in := smallInput()
	if _, err := Run(in, nil, Options{}); !errors.Is(err, ErrNilFinder) {
		t.Fatalf("want ErrNilFinder, got %v", err)
	}
	in.Graph = depgraph.NewGraph(2)
	if _, err := Run(in, &baselines.Voting{}, Options{}); !errors.Is(err, ErrGraphSize) {
		t.Fatalf("want ErrGraphSize, got %v", err)
	}
	in = smallInput()
	in.Messages[0].Source = 99
	if _, err := Run(in, &baselines.Voting{}, Options{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestPipelineNilGraphDefaultsToNoEdges(t *testing.T) {
	in := smallInput()
	in.Graph = nil
	out, err := Run(in, &baselines.Voting{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dataset.NumDependentClaims() != 0 {
		t.Fatal("dependencies without a graph")
	}
}

func TestPipelineWithSimulatedStream(t *testing.T) {
	sc := twittersim.Small("Ukraine", 20)
	w, err := twittersim.Generate(sc, randutil.New(3))
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, len(w.Tweets))
	for i, tw := range w.Tweets {
		msgs[i] = Message{Source: tw.Source, Time: int64(tw.ID), Text: tw.Text}
	}
	in := Input{NumSources: sc.Sources, Messages: msgs, Graph: w.Graph}

	for _, alg := range []factfind.FactFinder{
		&core.EMExt{Opts: core.Options{Seed: 1}},
		&baselines.Voting{},
	} {
		out, err := Run(in, alg, Options{TopK: 25})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if out.Dataset.N() != sc.Sources {
			t.Fatalf("%s: dataset sources %d", alg.Name(), out.Dataset.N())
		}
		// Clustering should land in the right ballpark of the true
		// assertion count (fragmentation < 35%).
		m := out.Dataset.M()
		if m < len(w.Kinds) || m > len(w.Kinds)*135/100 {
			t.Fatalf("%s: %d clusters for %d assertions", alg.Name(), m, len(w.Kinds))
		}
		if len(out.Ranked) != 25 {
			t.Fatalf("%s: ranked %d", alg.Name(), len(out.Ranked))
		}
		// Retweet-heavy streams must surface dependent claims.
		if out.Dataset.NumDependentClaims() == 0 {
			t.Fatalf("%s: no dependent claims derived", alg.Name())
		}
	}
}

// failingFinder exercises error propagation from the fact-finding stage.
type failingFinder struct{}

func (failingFinder) Name() string { return "failing" }
func (failingFinder) Run(*claims.Dataset) (*factfind.Result, error) {
	return nil, errors.New("boom")
}
func (f failingFinder) RunContext(context.Context, *claims.Dataset) (*factfind.Result, error) {
	return f.Run(nil)
}

func TestPipelinePropagatesFinderErrors(t *testing.T) {
	if _, err := Run(smallInput(), failingFinder{}, Options{}); err == nil {
		t.Fatal("finder error swallowed")
	}
}

// TestStageTimings: the injected clock drives per-stage timing, so each of
// the five pipeline stages reports exactly one clock step, in execution
// order.
func TestStageTimings(t *testing.T) {
	now := time.Unix(0, 0)
	step := 100 * time.Millisecond
	out, err := Run(smallInput(), &baselines.Voting{}, Options{
		TopK: 10,
		Clock: func() time.Time {
			now = now.Add(step)
			return now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ingest", "cluster", "build", "fit", "rank"}
	if len(out.Stages) != len(want) {
		t.Fatalf("stages = %+v, want %v", out.Stages, want)
	}
	for i, st := range out.Stages {
		if st.Stage != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, st.Stage, want[i])
		}
		if st.Duration != step {
			t.Fatalf("stage %q duration = %v, want %v", st.Stage, st.Duration, step)
		}
	}
}

// TestStageTimingsDefaultClock: without an injected clock the pipeline
// still reports all five stages with non-negative durations.
func TestStageTimingsDefaultClock(t *testing.T) {
	out, err := Run(smallInput(), &baselines.Voting{}, Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stages) != 5 {
		t.Fatalf("stages = %+v", out.Stages)
	}
	for _, st := range out.Stages {
		if st.Duration < 0 {
			t.Fatalf("negative stage duration: %+v", st)
		}
	}
}
