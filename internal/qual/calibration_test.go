package qual

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestComputeCalibrationHandChecked(t *testing.T) {
	// Four labeled posteriors in two of five buckets plus one unlabeled.
	// Bucket [0.8, 1.0): p=0.9 twice, one true, one false -> conf 0.9, acc 0.5.
	// Bucket [0.0, 0.2): p=0.1 twice, both false -> conf 0.1, acc 0.
	posteriors := []float64{0.9, 0.9, 0.1, 0.1, 0.5}
	labels := map[int]bool{0: true, 1: false, 2: false, 3: false}
	label := func(j int) (bool, bool) { lab, ok := labels[j]; return lab, ok }

	c := computeCalibration(5, posteriors, label, "truth")
	if c.Reference != "truth" || c.Assertions != 5 || c.Labeled != 4 {
		t.Fatalf("header = %+v", c)
	}
	// ECE = 2/4*|0.9-0.5| + 2/4*|0.1-0| = 0.2 + 0.05 = 0.25.
	if !almost(c.ECE, 0.25) {
		t.Fatalf("ECE = %v, want 0.25", c.ECE)
	}
	// Disagreement: j=1 (p=0.9 -> true, label false) only -> 1/4.
	if !almost(c.Disagreement, 0.25) {
		t.Fatalf("disagreement = %v, want 0.25", c.Disagreement)
	}
	// ImpliedError = mean min(p,1-p) over ALL five = (0.1+0.1+0.1+0.1+0.5)/5.
	if !almost(c.ImpliedError, 0.18) {
		t.Fatalf("impliedError = %v, want 0.18", c.ImpliedError)
	}
	if !almost(c.MeanPosterior, (0.9+0.9+0.1+0.1+0.5)/5) {
		t.Fatalf("meanPosterior = %v", c.MeanPosterior)
	}
	if len(c.Buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(c.Buckets))
	}
	top := c.Buckets[4]
	if top.Count != 2 || !almost(top.Confidence, 0.9) || !almost(top.Accuracy, 0.5) {
		t.Fatalf("top bucket = %+v", top)
	}
	bottom := c.Buckets[0]
	if bottom.Count != 2 || !almost(bottom.Confidence, 0.1) || bottom.Accuracy != 0 {
		t.Fatalf("bottom bucket = %+v", bottom)
	}
	if mid := c.Buckets[2]; mid.Count != 0 || mid.Confidence != 0 || mid.Accuracy != 0 {
		t.Fatalf("empty bucket = %+v", mid)
	}
}

func TestComputeCalibrationEdges(t *testing.T) {
	// p = 1.0 lands in the top bucket, not out of range; an empty input
	// yields zeros, not NaNs.
	c := computeCalibration(10, []float64{1.0}, func(int) (bool, bool) { return true, true }, "truth")
	if c.Buckets[9].Count != 1 {
		t.Fatalf("p=1.0 not in top bucket: %+v", c.Buckets)
	}
	if c.Disagreement != 0 {
		t.Fatalf("p=1.0 true label disagreement = %v", c.Disagreement)
	}

	empty := computeCalibration(10, nil, func(int) (bool, bool) { return false, false }, "voting")
	if empty.ECE != 0 || empty.ImpliedError != 0 || empty.MeanPosterior != 0 {
		t.Fatalf("empty calibration = %+v", empty)
	}
	for _, b := range empty.Buckets {
		if b.Count != 0 {
			t.Fatalf("empty calibration bucket = %+v", b)
		}
	}

	// All unlabeled: label-free statistics still computed.
	c = computeCalibration(4, []float64{0.25, 0.75}, func(int) (bool, bool) { return false, false }, "voting")
	if c.Labeled != 0 || c.ECE != 0 || c.Disagreement != 0 {
		t.Fatalf("unlabeled calibration = %+v", c)
	}
	if !almost(c.ImpliedError, 0.25) {
		t.Fatalf("unlabeled impliedError = %v, want 0.25", c.ImpliedError)
	}
}
