// Package qual is the estimation-quality observability layer: where
// internal/obs reports whether the serving stack is mechanically healthy
// (latency, queues, iterations), this package reports whether the
// *estimates* are healthy. A Monitor observes every completed refit and
// produces a deterministic Verdict with three ingredients:
//
//   - calibration tracking: a fixed-bucket reliability diagram and expected
//     calibration error (ECE) over the posterior assertion probabilities,
//     scored against ground truth in eval/simulation mode and against the
//     Voting baseline's decisions (cross-estimator agreement) in live mode;
//   - bound-vs-empirical tracking: every BoundEvery refits the paper's
//     error bound is re-evaluated on the current fitted parameters (the
//     Gibbs approximation of Algorithm 1 under a compute budget) and
//     compared against the observed disagreement rate — empirical error
//     exceeding the bound is the immediate red flag the paper's theory
//     licenses;
//   - drift detection: deterministic Page-Hinkley detectors over every
//     source's fitted reliability trajectory and one-sided CUSUM detectors
//     over dependency-graph churn (dependent-claim fraction, follow-edge
//     add rate), alarming with the exact triggering tick and the offending
//     window of observations.
//
// Determinism contract: a Verdict carries no timestamps and no
// scheduler-dependent state — it is a pure function of the refit sequence
// (results, datasets, edge counts) and the Options, so two monitors fed
// the same stream produce byte-identical verdict JSON at any Workers
// value. Timing lands only in the obs metrics. Alarms additionally
// snapshot their window into an attached trace.FlightRecorder under a
// non-"ok" status, parking them in the failed ring where healthy refit
// traffic can never evict them, and every verdict can be spilled as JSONL
// for the cmd/ssqual offline checker.
package qual

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"depsense/internal/baselines"
	"depsense/internal/bound"
	"depsense/internal/claims"
	"depsense/internal/factfind"
	"depsense/internal/obs"
	"depsense/internal/randutil"
	"depsense/internal/trace"
)

// Metric names exported by the monitor (DESIGN.md §16 has the catalog).
const (
	// MetricECE / MetricDisagreement / MetricImpliedError gauge the latest
	// verdict's calibration summary.
	MetricECE          = "depsense_qual_ece"
	MetricDisagreement = "depsense_qual_disagreement"
	MetricImpliedError = "depsense_qual_implied_error"
	// MetricPosterior is the fixed-bucket posterior histogram, labeled
	// set="all" (every posterior) and set="agree" (posteriors whose
	// decision matches the reference) — the scrapeable reliability diagram.
	MetricPosterior = "depsense_qual_posterior"
	// MetricBound / MetricBoundObserved / MetricBoundRatio gauge the latest
	// bound evaluation: the computed error bound, the observed disagreement
	// rate at that tick, and observed/bound (ratio > 1 = red flag).
	MetricBound         = "depsense_qual_bound_err"
	MetricBoundObserved = "depsense_qual_bound_observed_err"
	MetricBoundRatio    = "depsense_qual_bound_ratio"
	// MetricAlarms counts drift/bound alarms by kind.
	MetricAlarms = "depsense_qual_alarm_total"
	// MetricDriftStat gauges the largest per-source Page-Hinkley statistic
	// observed at the latest tick — how close the worst source is to an
	// alarm.
	MetricDriftStat = "depsense_qual_drift_stat_max"
	// MetricVerdicts counts verdicts produced.
	MetricVerdicts = "depsense_qual_verdicts_total"
	// MetricObserveSeconds / MetricBoundSeconds are TIMING histograms: the
	// monitor's per-refit overhead (calibration + drift; what benchqual
	// gates against fit cost) and the amortized bound evaluation cost.
	MetricObserveSeconds = "depsense_qual_observe_duration_seconds"
	MetricBoundSeconds   = "depsense_qual_bound_duration_seconds"
)

// Alarm kinds.
const (
	// AlarmSourceReliability fires when a source's fitted reliability
	// trajectory drifts down (Page-Hinkley).
	AlarmSourceReliability = "source-reliability"
	// AlarmDependentFraction fires when the dependent-claim fraction
	// drifts up (CUSUM).
	AlarmDependentFraction = "dependent-fraction"
	// AlarmEdgeRate fires when the follow-edge add rate drifts up (CUSUM).
	AlarmEdgeRate = "edge-rate"
	// AlarmBoundExceeded fires when the observed disagreement rate exceeds
	// the computed error bound.
	AlarmBoundExceeded = "bound-exceeded"
)

// TraceStatusAlarm is the status of alarm-window snapshot traces; any
// non-"ok" status routes them into the flight recorder's failed ring.
const TraceStatusAlarm = "alarm"

// decisionThreshold thresholds posteriors into decisions, matching
// factfind.DefaultThreshold.
const decisionThreshold = factfind.DefaultThreshold

// SpillFile is the quality spill filename under Options.SpillDir.
const SpillFile = "quality.jsonl"

// Options configures a Monitor. The zero value selects the documented
// defaults with drift detection on, the bound evaluated every 8 refits,
// and live-mode (Voting agreement) calibration.
type Options struct {
	// CalibrationBuckets is the reliability-diagram bin count (default 10).
	CalibrationBuckets int
	// Window is the per-series observation window retained for alarm
	// snapshots, in refits (default 32).
	Window int
	// MinObs is the detector warmup: no alarms before this many
	// observations of a series (default 8).
	MinObs int
	// DriftDelta / DriftLambda tune the per-source reliability
	// Page-Hinkley detectors: the per-step drift allowance and the alarm
	// threshold on the accumulated statistic (defaults 0.005 and 0.05).
	DriftDelta  float64
	DriftLambda float64
	// ChurnDelta / ChurnLambda tune the graph-churn CUSUM detectors
	// (defaults 0.01 and 0.1). The edge-rate series is normalized by the
	// batch claim count, so the thresholds are scale-free.
	ChurnDelta  float64
	ChurnLambda float64
	// DisableDrift turns the drift detectors off — the right mode when
	// refits are unrelated datasets (the per-request HTTP service) rather
	// than one evolving stream.
	DisableDrift bool

	// BoundEvery evaluates the error bound every n-th refit; 0 selects 8,
	// negative disables bound tracking.
	BoundEvery int
	// BoundSeed seeds the bound evaluation's private generator; each
	// evaluation derives its own deterministic seed from it and the tick.
	BoundSeed int64
	// BoundMaxColumns caps the distinct dependency columns evaluated per
	// bound (sampled and reweighted beyond it; default 16).
	BoundMaxColumns int
	// BoundSweeps caps the Gibbs sweeps per column (default 400).
	BoundSweeps int
	// Workers bounds the bound evaluation's parallelism; the result is
	// identical at any value.
	Workers int

	// Truth, when set, supplies ground-truth labels by assertion id
	// (ok=false when unknown) and selects eval/simulation mode. Nil
	// selects live mode: labels come from the Voting baseline re-run on
	// the same dataset.
	Truth func(assertion int) (label, ok bool)

	// Metrics receives the monitor's telemetry; nil records nothing.
	Metrics *obs.Registry
	// Clock supplies the TIMING measurements only (overhead histograms);
	// nil means the wall clock. Verdicts never read it.
	Clock func() time.Time
	// Flight, when set, receives each alarm's window snapshot as a trace
	// with status "alarm" (retained in the failed ring).
	Flight *trace.FlightRecorder
	// SpillDir, when set, appends every verdict to SpillDir/quality.jsonl
	// for offline analysis with cmd/ssqual. The directory must exist.
	SpillDir string
}

func (o Options) withDefaults() Options {
	if o.CalibrationBuckets <= 0 {
		o.CalibrationBuckets = 10
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.MinObs <= 0 {
		o.MinObs = 8
	}
	if o.DriftDelta <= 0 {
		o.DriftDelta = 0.005
	}
	if o.DriftLambda <= 0 {
		o.DriftLambda = 0.05
	}
	if o.ChurnDelta <= 0 {
		o.ChurnDelta = 0.01
	}
	if o.ChurnLambda <= 0 {
		o.ChurnLambda = 0.1
	}
	if o.BoundEvery == 0 {
		o.BoundEvery = 8
	}
	if o.BoundMaxColumns <= 0 {
		o.BoundMaxColumns = 16
	}
	if o.BoundSweeps <= 0 {
		o.BoundSweeps = 400
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Refit describes one completed refit for ObserveRefit.
type Refit struct {
	// Result is the refit's estimate; Posterior drives calibration, Params
	// (when present) drives the per-source drift series and the bound.
	Result *factfind.Result
	// Dataset is the dataset behind the refit.
	Dataset *claims.Dataset
	// Edges is the cumulative follow-edge count observed so far; negative
	// when the caller has no graph-churn signal (the edge-rate detector
	// then skips this tick).
	Edges int
}

// Verdict is the quality analysis of one refit. Every field is
// deterministic — no timestamps, no scheduler-dependent state — so verdict
// JSON is byte-identical at any Workers value.
type Verdict struct {
	// Tick is the 0-based refit index this verdict describes.
	Tick int `json:"tick"`
	// Sources / Assertions / Claims describe the dataset shape.
	Sources    int `json:"sources"`
	Assertions int `json:"assertions"`
	Claims     int `json:"claims"`
	// Calibration is the reliability diagram and its summary statistics.
	Calibration Calibration `json:"calibration"`
	// Drift summarizes the detectors' state after this tick; nil when
	// drift detection is disabled.
	Drift *DriftStatus `json:"drift,omitempty"`
	// Bound is the most recent bound evaluation (re-attached between
	// evaluations so every verdict carries the standing comparison); nil
	// before the first evaluation or when bound tracking is disabled.
	Bound *BoundStatus `json:"bound,omitempty"`
	// Alarms lists the alarms that fired at exactly this tick.
	Alarms []Alarm `json:"alarms,omitempty"`
}

// DriftStatus is the drift detectors' per-tick summary.
type DriftStatus struct {
	// SourcesTracked is the number of per-source detectors fed this tick.
	SourcesTracked int `json:"sourcesTracked"`
	// MaxStat is the largest per-source Page-Hinkley statistic and
	// MaxStatSource the source holding it (lowest id on ties, -1 when no
	// sources are tracked).
	MaxStat       float64 `json:"maxStat"`
	MaxStatSource int     `json:"maxStatSource"`
	// DependentFraction is this tick's dependent-claim fraction and
	// DependentStat its CUSUM statistic.
	DependentFraction float64 `json:"dependentFraction"`
	DependentStat     float64 `json:"dependentStat"`
	// EdgeRate is this tick's new-edge count per claim (-1 when the
	// caller supplied no edge signal) and EdgeStat its CUSUM statistic.
	EdgeRate float64 `json:"edgeRate"`
	EdgeStat float64 `json:"edgeStat"`
}

// BoundStatus is one bound-vs-empirical comparison.
type BoundStatus struct {
	// Tick is the refit the bound was evaluated at (bounds amortize over
	// BoundEvery refits, so a verdict may carry an earlier tick's bound).
	Tick int `json:"tick"`
	// Bound is the computed expected error bound; StdErr its Monte-Carlo
	// standard error; Sweeps the Gibbs sweeps spent.
	Bound  float64 `json:"bound"`
	StdErr float64 `json:"stdErr,omitempty"`
	Sweeps int     `json:"sweeps,omitempty"`
	// Observed is the disagreement rate at the evaluation tick and Ratio
	// is Observed/Bound; Exceeded flags Observed > Bound, the red-flag
	// condition.
	Observed float64 `json:"observed"`
	Ratio    float64 `json:"ratio"`
	Exceeded bool    `json:"exceeded"`
}

// Alarm is one detector firing.
type Alarm struct {
	// Kind is one of the Alarm* constants.
	Kind string `json:"kind"`
	// Source is the offending source for AlarmSourceReliability, -1
	// otherwise.
	Source int `json:"source"`
	// Tick is the exact refit index the detector crossed its threshold.
	Tick int `json:"tick"`
	// Stat is the detector statistic at the crossing; Threshold the
	// configured alarm threshold it crossed.
	Stat      float64 `json:"stat"`
	Threshold float64 `json:"threshold"`
	// StartTick is the tick of the oldest retained observation in Window;
	// Window is the offending observation stretch in chronological order.
	StartTick int       `json:"startTick"`
	Window    []float64 `json:"window"`
	// TraceID names the window snapshot recorded into the flight
	// recorder, empty when no recorder is attached. The id is
	// deterministic (derived from kind, source, and tick).
	TraceID string `json:"traceID,omitempty"`
}

// Monitor tracks estimation quality across a refit sequence. Construct
// with NewMonitor; ObserveRefit is safe for concurrent use (observations
// serialize), though tick numbering then follows arrival order.
type Monitor struct {
	opts Options

	mu        sync.Mutex
	tick      int
	perSource []*pageHinkley
	depDet    *cusum
	edgeDet   *cusum
	prevEdges int
	alarms    []Alarm
	boundLast *BoundStatus

	latest atomic.Pointer[Verdict]
}

// NewMonitor builds a monitor.
func NewMonitor(opts Options) *Monitor {
	return &Monitor{opts: opts.withDefaults(), prevEdges: -1}
}

// Latest returns the most recent verdict, nil before the first refit.
func (m *Monitor) Latest() *Verdict { return m.latest.Load() }

// Ticks returns the number of refits observed.
func (m *Monitor) Ticks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tick
}

// Alarms returns a copy of every alarm fired so far, in tick order.
func (m *Monitor) Alarms() []Alarm {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alarm(nil), m.alarms...)
}

// Report is the /debug/quality payload: the latest verdict plus the
// cumulative alarm history.
type Report struct {
	// Ticks is the number of refits observed; Latest the most recent
	// verdict (nil before the first).
	Ticks  int      `json:"ticks"`
	Latest *Verdict `json:"latest,omitempty"`
	// Alarms is every alarm fired over the monitor's lifetime, in tick
	// order — not just the latest tick's.
	Alarms []Alarm `json:"alarms,omitempty"`
}

// Report assembles the monitor's debug payload.
func (m *Monitor) Report() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Report{
		Ticks:  m.tick,
		Latest: m.latest.Load(),
		Alarms: append([]Alarm(nil), m.alarms...),
	}
}

// ObserveRefit analyzes one completed refit and returns its verdict. The
// returned error reports a spill failure only — the verdict is always
// produced — so callers can log it without losing the analysis. The bound
// evaluation honors ctx; a cancelled bound is skipped, never partial.
func (m *Monitor) ObserveRefit(ctx context.Context, r Refit) (*Verdict, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.opts
	start := o.Clock()

	v := &Verdict{
		Tick:       m.tick,
		Sources:    r.Dataset.N(),
		Assertions: r.Dataset.M(),
		Claims:     r.Dataset.NumClaims(),
	}
	v.Calibration = m.calibrate(ctx, r)
	if !o.DisableDrift {
		v.Drift = m.observeDrift(r, v)
	}
	m.exportCalibration(r, v)
	observeD := o.Clock().Sub(start)

	if o.BoundEvery > 0 && r.Result.Params != nil && m.tick%o.BoundEvery == 0 {
		boundStart := o.Clock()
		if bs := m.evaluateBound(ctx, r, v.Calibration.Disagreement); bs != nil {
			m.boundLast = bs
			if bs.Exceeded {
				m.fireAlarm(v, Alarm{
					Kind:      AlarmBoundExceeded,
					Source:    -1,
					Tick:      m.tick,
					Stat:      bs.Ratio,
					Threshold: 1,
					StartTick: bs.Tick,
					Window:    []float64{bs.Bound, bs.Observed},
				})
			}
			if reg := o.Metrics; reg != nil {
				reg.Gauge(MetricBound, "Computed expected error bound on the current fitted parameters.").Set(bs.Bound)
				reg.Gauge(MetricBoundObserved, "Observed disagreement rate at the last bound evaluation.").Set(bs.Observed)
				reg.Gauge(MetricBoundRatio, "Observed disagreement over computed bound (>1 = red flag).").Set(bs.Ratio)
			}
		}
		if reg := o.Metrics; reg != nil {
			reg.Histogram(MetricBoundSeconds, "Amortized bound evaluation duration in seconds.", nil).
				Observe(o.Clock().Sub(boundStart).Seconds())
		}
	}
	v.Bound = m.boundLast

	m.tick++
	m.latest.Store(v)
	if reg := o.Metrics; reg != nil {
		reg.Counter(MetricVerdicts, "Quality verdicts produced.").Inc()
		reg.Histogram(MetricObserveSeconds,
			"Per-refit quality-monitor overhead in seconds (calibration + drift; bound excluded).", nil).
			Observe(observeD.Seconds())
	}
	if o.SpillDir != "" {
		if err := AppendVerdict(o.SpillDir, v); err != nil {
			return v, fmt.Errorf("qual: spill verdict %d: %w", v.Tick, err)
		}
	}
	return v, nil
}

// calibrate computes the tick's calibration block against ground truth or
// the Voting baseline.
func (m *Monitor) calibrate(ctx context.Context, r Refit) Calibration {
	if m.opts.Truth != nil {
		return computeCalibration(m.opts.CalibrationBuckets, r.Result.Posterior, m.opts.Truth, "truth")
	}
	// Live mode: agreement against Voting, the cheapest independent
	// estimator (one pass over the dataset). Voting cannot fail on a
	// dataset the refit just fit; a cancelled context yields an empty
	// reference, leaving only the label-free statistics.
	label := func(int) (bool, bool) { return false, false }
	if ref, err := (&baselines.Voting{}).RunContext(ctx, r.Dataset); err == nil {
		dec := ref.Decisions(decisionThreshold)
		label = func(j int) (bool, bool) {
			if j >= len(dec) {
				return false, false
			}
			return dec[j], true
		}
	}
	return computeCalibration(m.opts.CalibrationBuckets, r.Result.Posterior, label, "voting")
}

// exportCalibration publishes the calibration gauges and the posterior
// histograms.
func (m *Monitor) exportCalibration(r Refit, v *Verdict) {
	reg := m.opts.Metrics
	if reg == nil {
		return
	}
	c := &v.Calibration
	reg.Gauge(MetricECE, "Expected calibration error of the latest refit's posteriors.").Set(c.ECE)
	reg.Gauge(MetricDisagreement, "Decision disagreement rate against the calibration reference.").Set(c.Disagreement)
	reg.Gauge(MetricImpliedError, "Posterior-implied Bayes error mean min(p, 1-p).").Set(c.ImpliedError)
	all := reg.Histogram(MetricPosterior, "Posterior assertion probabilities of the latest refit, by agreement with the reference.",
		PosteriorBuckets(), obs.L("set", "all"))
	agree := reg.Histogram(MetricPosterior, "Posterior assertion probabilities of the latest refit, by agreement with the reference.",
		PosteriorBuckets(), obs.L("set", "agree"))
	labels := referenceLabels(m.opts, r, v)
	for j, p := range r.Result.Posterior {
		all.Observe(p)
		if lab, ok := labels(j); ok && (p > decisionThreshold) == lab {
			agree.Observe(p)
		}
	}
	if v.Drift != nil {
		reg.Gauge(MetricDriftStat, "Largest per-source Page-Hinkley drift statistic at the latest tick.").Set(v.Drift.MaxStat)
	}
}

// referenceLabels rebuilds the label function used by the histograms.
// Truth mode reuses Options.Truth; voting mode re-derives the decisions
// (one extra Voting pass only when a registry is attached).
func referenceLabels(o Options, r Refit, v *Verdict) func(int) (bool, bool) {
	if o.Truth != nil {
		return o.Truth
	}
	ref, err := (&baselines.Voting{}).Run(r.Dataset)
	if err != nil {
		return func(int) (bool, bool) { return false, false }
	}
	dec := ref.Decisions(decisionThreshold)
	return func(j int) (bool, bool) {
		if j >= len(dec) {
			return false, false
		}
		return dec[j], true
	}
}

// observeDrift feeds this tick into every detector and collects alarms.
// Sources are visited in ascending id order, so alarm order — and the
// verdict bytes — never depend on map iteration or scheduling.
func (m *Monitor) observeDrift(r Refit, v *Verdict) *DriftStatus {
	o := m.opts
	st := &DriftStatus{MaxStatSource: -1, EdgeRate: -1}

	if p := r.Result.Params; p != nil {
		for len(m.perSource) < len(p.Sources) {
			m.perSource = append(m.perSource,
				newPageHinkley(o.DriftDelta, o.DriftLambda, o.MinObs, o.Window))
		}
		st.SourcesTracked = len(p.Sources)
		for i := range p.Sources {
			// Track the posterior reliability t_i rather than the raw claim
			// rate a_i: t_i is scale-free, so the detector sees "this source
			// went bad", not "this source tweets less".
			stat, alarm := m.perSource[i].observe(p.Sources[i].Reliability(p.Z), m.tick)
			if stat > st.MaxStat {
				st.MaxStat = stat
				st.MaxStatSource = i
			}
			if alarm {
				win, start := m.perSource[i].win.snapshot()
				m.fireAlarm(v, Alarm{
					Kind: AlarmSourceReliability, Source: i, Tick: m.tick,
					Stat: stat, Threshold: o.DriftLambda,
					StartTick: start, Window: win,
				})
			}
		}
	}

	if m.depDet == nil {
		m.depDet = newCUSUM(o.ChurnDelta, o.ChurnLambda, o.MinObs, o.Window)
		m.edgeDet = newCUSUM(o.ChurnDelta, o.ChurnLambda, o.MinObs, o.Window)
	}
	if n := r.Dataset.NumClaims(); n > 0 {
		st.DependentFraction = float64(r.Dataset.NumDependentClaims()) / float64(n)
	}
	var alarm bool
	st.DependentStat, alarm = m.depDet.observe(st.DependentFraction, m.tick)
	if alarm {
		win, start := m.depDet.win.snapshot()
		m.fireAlarm(v, Alarm{
			Kind: AlarmDependentFraction, Source: -1, Tick: m.tick,
			Stat: st.DependentStat, Threshold: o.ChurnLambda,
			StartTick: start, Window: win,
		})
	}
	if r.Edges >= 0 {
		newEdges := 0
		if m.prevEdges >= 0 {
			newEdges = r.Edges - m.prevEdges
			if newEdges < 0 {
				newEdges = 0
			}
		}
		m.prevEdges = r.Edges
		st.EdgeRate = 0
		if n := r.Dataset.NumClaims(); n > 0 {
			st.EdgeRate = float64(newEdges) / float64(n)
		}
		st.EdgeStat, alarm = m.edgeDet.observe(st.EdgeRate, m.tick)
		if alarm {
			win, start := m.edgeDet.win.snapshot()
			m.fireAlarm(v, Alarm{
				Kind: AlarmEdgeRate, Source: -1, Tick: m.tick,
				Stat: st.EdgeStat, Threshold: o.ChurnLambda,
				StartTick: start, Window: win,
			})
		}
	}
	return st
}

// evaluateBound runs the paper's error bound on the refit's fitted
// parameters under the configured compute budget. The generator is
// re-derived from BoundSeed and the tick, so evaluations are independent
// of each other and of everything else in the process.
func (m *Monitor) evaluateBound(ctx context.Context, r Refit, observed float64) *BoundStatus {
	o := m.opts
	rng := randutil.New(o.BoundSeed ^ (int64(m.tick)+1)*0x6A09E667F3BCC909)
	res, err := bound.ForDatasetContext(ctx, r.Dataset, r.Result.Params, bound.DatasetOptions{
		Method: bound.MethodApprox,
		Approx: bound.ApproxOptions{
			BurnIn:     o.BoundSweeps / 4,
			MaxSweeps:  o.BoundSweeps,
			CheckEvery: o.BoundSweeps / 4,
			Tol:        1e-3,
		},
		MaxColumns: o.BoundMaxColumns,
		Workers:    o.Workers,
	}, rng)
	if err != nil {
		return nil
	}
	bs := &BoundStatus{
		Tick:     m.tick,
		Bound:    res.Err,
		StdErr:   res.StdErr,
		Sweeps:   res.Sweeps,
		Observed: observed,
		Exceeded: observed > res.Err,
	}
	if res.Err > 0 {
		bs.Ratio = observed / res.Err
	}
	// A zero bound with nonzero observed error leaves Ratio at 0 (JSON has
	// no +Inf); Exceeded already carries the red flag.
	return bs
}

// fireAlarm records an alarm into the verdict and the monitor history,
// bumps the alarm counter, and snapshots the window into the flight
// recorder.
func (m *Monitor) fireAlarm(v *Verdict, a Alarm) {
	if f := m.opts.Flight; f != nil {
		a.TraceID = alarmTraceID(a)
		f.Record(alarmTrace(a, m.opts.Clock))
	}
	v.Alarms = append(v.Alarms, a)
	m.alarms = append(m.alarms, a)
	if reg := m.opts.Metrics; reg != nil {
		reg.Counter(MetricAlarms, "Quality alarms by kind.", obs.L("kind", a.Kind)).Inc()
	}
}

// alarmTraceID derives the deterministic flight-recorder id of an alarm's
// window snapshot.
func alarmTraceID(a Alarm) string {
	if a.Source >= 0 {
		return fmt.Sprintf("qual-%06d-%s-s%d", a.Tick, a.Kind, a.Source)
	}
	return fmt.Sprintf("qual-%06d-%s", a.Tick, a.Kind)
}

// alarmTrace renders an alarm's offending window as a trace: one event per
// retained observation (N = 1-based position, Value = the observation),
// status "alarm" so the flight recorder parks it in the failed ring.
func alarmTrace(a Alarm, clock func() time.Time) *trace.Trace {
	tb := trace.NewBuilder(a.TraceID, "qual", clock)
	tb.SetAttr("kind", a.Kind)
	if a.Source >= 0 {
		tb.SetAttr("source", fmt.Sprintf("%d", a.Source))
	}
	tb.SetAttr("tick", fmt.Sprintf("%d", a.Tick))
	tb.SetAttr("startTick", fmt.Sprintf("%d", a.StartTick))
	tb.SetAttr("stat", fmt.Sprintf("%g", a.Stat))
	tb.SetAttr("threshold", fmt.Sprintf("%g", a.Threshold))
	hook := tb.Hook()
	for i, x := range a.Window {
		hook(alarmIteration(a.Kind, i+1, x))
	}
	return tb.Finish(TraceStatusAlarm,
		fmt.Sprintf("%s drift alarm at tick %d: stat %g > threshold %g", a.Kind, a.Tick, a.Stat, a.Threshold))
}

// PosteriorBuckets returns the fixed posterior histogram layout: ten
// equal-width bins over [0, 1].
func PosteriorBuckets() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

// AppendVerdict appends one verdict to dir/quality.jsonl as a single JSON
// line — the spill read back by ReadFile and cmd/ssqual.
func AppendVerdict(dir string, v *Verdict) error {
	f, err := os.OpenFile(filepath.Join(dir, SpillFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := writeVerdict(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
