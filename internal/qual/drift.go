package qual

// Deterministic sequential change detectors over per-tick quality series.
// Both detectors are pure functions of the observation sequence — no
// randomness, no clocks — so two monitors fed the same refit sequence alarm
// at exactly the same tick, which is what lets the e2e tests assert an
// alarm's tick number and what keeps verdicts byte-identical at any
// Workers value.

// window is a fixed-capacity ring of the most recent observations with
// their tick numbers, kept so an alarm can snapshot the offending stretch
// of the series.
type window struct {
	vals  []float64
	ticks []int
	head  int
	n     int
}

func newWindow(cap int) *window {
	return &window{vals: make([]float64, cap), ticks: make([]int, cap)}
}

func (w *window) push(v float64, tick int) {
	w.vals[w.head] = v
	w.ticks[w.head] = tick
	w.head = (w.head + 1) % len(w.vals)
	if w.n < len(w.vals) {
		w.n++
	}
}

// snapshot returns the retained values in chronological order and the tick
// of the oldest one.
func (w *window) snapshot() (vals []float64, startTick int) {
	if w.n == 0 {
		return nil, 0
	}
	start := (w.head - w.n + len(w.vals)) % len(w.vals)
	vals = make([]float64, w.n)
	for i := 0; i < w.n; i++ {
		vals[i] = w.vals[(start+i)%len(w.vals)]
	}
	return vals, w.ticks[start]
}

// pageHinkley is the Page-Hinkley test for a DECREASE in the mean of a
// series: it accumulates m_t = Σ (x̄_i − x_i − δ) and alarms when m_t rises
// more than λ above its running minimum — i.e. when recent observations
// run persistently below the series' historical mean by more than the
// drift allowance δ. Used for per-source reliability trajectories, where
// the failure mode of interest is a source going bad.
type pageHinkley struct {
	delta  float64 // per-step drift allowance
	lambda float64 // alarm threshold on the PH statistic
	minObs int     // warmup: no alarms before this many observations

	n      int
	mean   float64
	cum    float64
	minCum float64
	win    *window
}

func newPageHinkley(delta, lambda float64, minObs, windowCap int) *pageHinkley {
	return &pageHinkley{delta: delta, lambda: lambda, minObs: minObs, win: newWindow(windowCap)}
}

// observe feeds one observation and returns the current PH statistic and
// whether it crossed the alarm threshold at this tick. After an alarm the
// detector resets to a fresh warmup, so a persisting shift re-alarms only
// after re-accumulating evidence instead of firing every tick.
func (d *pageHinkley) observe(x float64, tick int) (stat float64, alarm bool) {
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	d.cum += d.mean - x - d.delta
	if d.cum < d.minCum {
		d.minCum = d.cum
	}
	d.win.push(x, tick)
	stat = d.cum - d.minCum
	if d.n >= d.minObs && stat > d.lambda {
		d.reset()
		return stat, true
	}
	return stat, false
}

func (d *pageHinkley) reset() {
	d.n, d.mean, d.cum, d.minCum = 0, 0, 0, 0
}

// cusum is a one-sided CUSUM for an INCREASE in the mean of a series
// relative to its running baseline: S_t = max(0, S_{t-1} + x_t − x̄ − δ),
// alarming when S_t exceeds λ. Used for dependency-graph churn series
// (dependent-claim fraction, follow-edge add rate), where the failure mode
// of interest is the graph regime heating up beyond what the model was fit
// on.
type cusum struct {
	delta  float64
	lambda float64
	minObs int

	n    int
	mean float64
	s    float64
	win  *window
}

func newCUSUM(delta, lambda float64, minObs, windowCap int) *cusum {
	return &cusum{delta: delta, lambda: lambda, minObs: minObs, win: newWindow(windowCap)}
}

// observe feeds one observation; semantics mirror pageHinkley.observe. The
// baseline mean updates after the excess is scored, so a step change is
// measured against the pre-change mean until it is absorbed.
func (d *cusum) observe(x float64, tick int) (stat float64, alarm bool) {
	excess := 0.0
	if d.n > 0 {
		excess = x - d.mean - d.delta
	}
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	d.s += excess
	if d.s < 0 {
		d.s = 0
	}
	d.win.push(x, tick)
	stat = d.s
	if d.n >= d.minObs && stat > d.lambda {
		d.reset()
		return stat, true
	}
	return stat, false
}

func (d *cusum) reset() {
	d.n, d.mean, d.s = 0, 0, 0
}
