package qual

import "testing"

func TestWindowSnapshot(t *testing.T) {
	w := newWindow(4)
	if vals, _ := w.snapshot(); vals != nil {
		t.Fatalf("empty window snapshot = %v, want nil", vals)
	}
	for i := 0; i < 6; i++ {
		w.push(float64(i), 10+i)
	}
	vals, start := w.snapshot()
	want := []float64{2, 3, 4, 5}
	if len(vals) != len(want) {
		t.Fatalf("snapshot = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", vals, want)
		}
	}
	if start != 12 {
		t.Fatalf("startTick = %d, want 12", start)
	}
}

func TestPageHinkleyDetectsDecrease(t *testing.T) {
	d := newPageHinkley(0.005, 0.05, 4, 8)
	// Stable stretch: no alarm, tiny statistic.
	for i := 0; i < 10; i++ {
		if stat, alarm := d.observe(0.9, i); alarm || stat > 0.05 {
			t.Fatalf("stable tick %d: stat=%v alarm=%v", i, stat, alarm)
		}
	}
	// Step down: the statistic accumulates and alarms within a couple of
	// ticks.
	alarmed := -1
	for i := 10; i < 14; i++ {
		if _, alarm := d.observe(0.4, i); alarm {
			alarmed = i
			break
		}
	}
	if alarmed < 0 {
		t.Fatal("no alarm after reliability step 0.9 -> 0.4")
	}
	// Reset after alarm: a fresh warmup, no immediate re-alarm.
	if d.n != 0 {
		t.Fatalf("detector not reset after alarm: n=%d", d.n)
	}
	if _, alarm := d.observe(0.4, alarmed+1); alarm {
		t.Fatal("re-alarmed immediately after reset")
	}
	// The window survives the reset: the offending stretch stays
	// snapshottable.
	vals, _ := d.win.snapshot()
	if len(vals) == 0 {
		t.Fatal("window lost after alarm")
	}
}

func TestPageHinkleyIgnoresIncrease(t *testing.T) {
	d := newPageHinkley(0.005, 0.05, 4, 8)
	for i := 0; i < 10; i++ {
		d.observe(0.5, i)
	}
	for i := 10; i < 30; i++ {
		if _, alarm := d.observe(0.95, i); alarm {
			t.Fatalf("decrease detector alarmed on an increase at tick %d", i)
		}
	}
}

func TestCUSUMDetectsIncrease(t *testing.T) {
	d := newCUSUM(0.01, 0.1, 4, 8)
	for i := 0; i < 10; i++ {
		if stat, alarm := d.observe(0.1, i); alarm || stat > 0.1 {
			t.Fatalf("stable tick %d: stat=%v alarm=%v", i, stat, alarm)
		}
	}
	alarmed := -1
	var alarmStat float64
	for i := 10; i < 14; i++ {
		if stat, alarm := d.observe(0.4, i); alarm {
			alarmed, alarmStat = i, stat
			break
		}
	}
	if alarmed < 0 {
		t.Fatal("no alarm after dependent-fraction step 0.1 -> 0.4")
	}
	// The returned statistic is the pre-reset crossing value, not the
	// zeroed post-reset state.
	if alarmStat <= 0.1 {
		t.Fatalf("alarm stat = %v, want > lambda 0.1", alarmStat)
	}
	if d.n != 0 || d.s != 0 {
		t.Fatalf("detector not reset after alarm: n=%d s=%v", d.n, d.s)
	}
}

func TestCUSUMIgnoresDecrease(t *testing.T) {
	d := newCUSUM(0.01, 0.1, 4, 8)
	for i := 0; i < 10; i++ {
		d.observe(0.5, i)
	}
	for i := 10; i < 30; i++ {
		if _, alarm := d.observe(0.05, i); alarm {
			t.Fatalf("increase detector alarmed on a decrease at tick %d", i)
		}
	}
}

// TestDetectorsWarmup: no alarms before minObs, however extreme the shift.
func TestDetectorsWarmup(t *testing.T) {
	ph := newPageHinkley(0.005, 0.001, 8, 8)
	cs := newCUSUM(0.005, 0.001, 8, 8)
	for i := 0; i < 7; i++ {
		x := 1.0
		if i > 0 {
			x = 0.0 // maximal decrease for PH, then increase for CUSUM
		}
		if _, alarm := ph.observe(x, i); alarm {
			t.Fatalf("page-hinkley alarmed during warmup at tick %d", i)
		}
		if _, alarm := cs.observe(1-x, i); alarm {
			t.Fatalf("cusum alarmed during warmup at tick %d", i)
		}
	}
}
