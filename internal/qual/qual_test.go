package qual

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/factfind"
	"depsense/internal/model"
	"depsense/internal/obs"
	"depsense/internal/randutil"
	"depsense/internal/stream"
	"depsense/internal/trace"
	"depsense/internal/twittersim"
)

var update = flag.Bool("update", false, "rewrite golden verdict files")

// testDataset builds a tiny independent-claims dataset: 3 sources each
// claiming a disjoint pair of 4 assertions (plus overlap on assertion 0).
func testDataset(t *testing.T) *claims.Dataset {
	t.Helper()
	ds, err := claims.NewBuilder(3, 4).
		AddClaim(0, 0, false).AddClaim(0, 1, false).
		AddClaim(1, 0, false).AddClaim(1, 2, false).
		AddClaim(2, 3, false).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// testRefit fabricates a refit with the given per-source reliabilities.
func testRefit(ds *claims.Dataset, a []float64) Refit {
	p := model.NewParams(len(a), 0.5)
	for i, ai := range a {
		p.Sources[i] = model.SourceParams{A: ai, B: 0.2, F: 0.5, G: 0.1}
	}
	return Refit{
		Result:  &factfind.Result{Posterior: []float64{0.9, 0.8, 0.7, 0.6}, Params: p},
		Dataset: ds,
		Edges:   -1,
	}
}

// TestMonitorSourceDriftAlarm is the heart of the drift contract: a source
// whose fitted reliability steps down fires a source-reliability alarm at a
// deterministic tick, the offending window lands in the flight recorder
// under a deterministic id, and the verdict spill round-trips it.
func TestMonitorSourceDriftAlarm(t *testing.T) {
	ds := testDataset(t)
	flight := trace.NewFlightRecorder(4, 4)
	reg := obs.NewRegistry()
	dir := t.TempDir()
	m := NewMonitor(Options{
		Window: 8, MinObs: 4,
		BoundEvery: -1,
		Truth:      func(int) (bool, bool) { return true, true },
		Metrics:    reg, Flight: flight, SpillDir: dir,
	})

	ctx := context.Background()
	var verdicts []*Verdict
	reliability := func(tick int) []float64 {
		if tick >= 10 {
			return []float64{0.9, 0.4, 0.85} // source 1 steps down
		}
		return []float64{0.9, 0.9, 0.85}
	}
	for tick := 0; tick < 16; tick++ {
		v, err := m.ObserveRefit(ctx, testRefit(ds, reliability(tick)))
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if v.Tick != tick {
			t.Fatalf("verdict tick = %d, want %d", v.Tick, tick)
		}
		verdicts = append(verdicts, v)
	}

	alarms := m.Alarms()
	if len(alarms) == 0 {
		t.Fatal("no alarm after reliability step 0.9 -> 0.4")
	}
	a := alarms[0]
	if a.Kind != AlarmSourceReliability || a.Source != 1 {
		t.Fatalf("alarm = %+v, want %s on source 1", a, AlarmSourceReliability)
	}
	if a.Tick < 10 || a.Tick > 13 {
		t.Fatalf("alarm tick = %d, want within a few ticks of the step at 10", a.Tick)
	}
	if a.Stat <= a.Threshold {
		t.Fatalf("alarm stat %v <= threshold %v", a.Stat, a.Threshold)
	}
	if len(a.Window) == 0 || a.StartTick > a.Tick {
		t.Fatalf("alarm window = %v startTick = %d", a.Window, a.StartTick)
	}
	// The alarm tick's verdict carries the alarm; re-running the same
	// sequence into a fresh monitor fires at the same tick (determinism).
	if got := verdicts[a.Tick].Alarms; len(got) != 1 || got[0].Tick != a.Tick {
		t.Fatalf("verdict %d alarms = %+v", a.Tick, got)
	}
	m2 := NewMonitor(Options{Window: 8, MinObs: 4, BoundEvery: -1,
		Truth: func(int) (bool, bool) { return true, true }})
	for tick := 0; tick < 16; tick++ {
		if _, err := m2.ObserveRefit(ctx, testRefit(ds, reliability(tick))); err != nil {
			t.Fatal(err)
		}
	}
	if a2 := m2.Alarms(); len(a2) == 0 || a2[0].Tick != a.Tick || a2[0].Stat != a.Stat {
		t.Fatalf("replay alarms = %+v, want first at tick %d stat %v", a2, a.Tick, a.Stat)
	}

	// Flight snapshot: deterministic id, alarm status, window as events.
	if a.TraceID == "" {
		t.Fatal("alarm has no trace id despite attached recorder")
	}
	tr, ok := flight.Get(a.TraceID)
	if !ok {
		t.Fatalf("flight recorder has no trace %q", a.TraceID)
	}
	if tr.Status != TraceStatusAlarm || tr.Name != "qual" {
		t.Fatalf("trace status/name = %q/%q", tr.Status, tr.Name)
	}
	if len(tr.Runs) != 1 || tr.Runs[0].Algorithm != AlarmSourceReliability {
		t.Fatalf("trace runs = %+v", tr.Runs)
	}
	evs := tr.Runs[0].Events
	if len(evs) != len(a.Window) {
		t.Fatalf("trace has %d events, window has %d values", len(evs), len(a.Window))
	}
	for i, ev := range evs {
		if !ev.HasValue || ev.Value != a.Window[i] || ev.N != i+1 {
			t.Fatalf("event %d = %+v, want value %v", i, ev, a.Window[i])
		}
	}

	// Spill round-trip: the alarm verdict is recoverable offline.
	spilled, err := ReadFile(filepath.Join(dir, SpillFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled) != len(verdicts) {
		t.Fatalf("spill has %d verdicts, want %d", len(spilled), len(verdicts))
	}
	sv := spilled[a.Tick]
	if len(sv.Alarms) != 1 || sv.Alarms[0].Kind != a.Kind || sv.Alarms[0].TraceID != a.TraceID {
		t.Fatalf("spilled alarm = %+v, want %+v", sv.Alarms, a)
	}

	// Telemetry: alarm counter and verdict counter.
	if got := reg.Counter(MetricAlarms, "", obs.L("kind", AlarmSourceReliability)).Value(); got != float64(len(alarms)) {
		t.Fatalf("alarm counter = %v, want %v", got, len(alarms))
	}
	if got := reg.Counter(MetricVerdicts, "").Value(); got != 16 {
		t.Fatalf("verdict counter = %v, want 16", got)
	}
	rep := m.Report()
	if rep.Ticks != 16 || rep.Latest == nil || rep.Latest.Tick != 15 || len(rep.Alarms) != len(alarms) {
		t.Fatalf("report = %+v", rep)
	}
}

// TestMonitorEdgeRateAlarm: a burst of new follow edges per claim trips the
// edge-rate CUSUM; a caller with no edge signal (Edges < 0) never does.
func TestMonitorEdgeRateAlarm(t *testing.T) {
	ds := testDataset(t)
	m := NewMonitor(Options{Window: 8, MinObs: 4, BoundEvery: -1,
		Truth: func(int) (bool, bool) { return true, true }})
	ctx := context.Background()
	edges := 0
	for tick := 0; tick < 20; tick++ {
		if tick >= 10 {
			edges += 10 // burst: 2 new edges per claim
		}
		r := testRefit(ds, []float64{0.9, 0.9, 0.9})
		r.Edges = edges
		v, err := m.ObserveRefit(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		if tick < 10 && len(v.Alarms) != 0 {
			t.Fatalf("tick %d: unexpected alarms %+v", tick, v.Alarms)
		}
		if v.Drift == nil || (tick > 0 && tick < 10 && v.Drift.EdgeRate != 0) {
			t.Fatalf("tick %d: drift = %+v", tick, v.Drift)
		}
	}
	alarms := m.Alarms()
	if len(alarms) == 0 || alarms[0].Kind != AlarmEdgeRate || alarms[0].Source != -1 {
		t.Fatalf("alarms = %+v, want %s", alarms, AlarmEdgeRate)
	}
	if alarms[0].Tick < 10 {
		t.Fatalf("edge-rate alarm before the burst: tick %d", alarms[0].Tick)
	}

	// No edge signal: the detector is never fed, so it never fires.
	m2 := NewMonitor(Options{Window: 8, MinObs: 4, BoundEvery: -1,
		Truth: func(int) (bool, bool) { return true, true }})
	for tick := 0; tick < 20; tick++ {
		v, err := m2.ObserveRefit(ctx, testRefit(ds, []float64{0.9, 0.9, 0.9}))
		if err != nil {
			t.Fatal(err)
		}
		if v.Drift.EdgeRate != -1 {
			t.Fatalf("edgeRate = %v without a signal, want -1", v.Drift.EdgeRate)
		}
	}
	if a := m2.Alarms(); len(a) != 0 {
		t.Fatalf("alarms without edge signal: %+v", a)
	}
}

// TestMonitorLiveModeVoting: with no Truth function the calibration
// reference is the Voting baseline and every assertion is labeled.
func TestMonitorLiveModeVoting(t *testing.T) {
	ds := testDataset(t)
	m := NewMonitor(Options{BoundEvery: -1})
	v, err := m.ObserveRefit(context.Background(), testRefit(ds, []float64{0.9, 0.9, 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	c := v.Calibration
	if c.Reference != "voting" {
		t.Fatalf("reference = %q, want voting", c.Reference)
	}
	if c.Assertions != ds.M() || c.Labeled != ds.M() {
		t.Fatalf("assertions/labeled = %d/%d, want %d/%d", c.Assertions, c.Labeled, ds.M(), ds.M())
	}
}

// TestMonitorBoundTracking: the bound evaluates on schedule, re-attaches to
// verdicts between evaluations, and is byte-deterministic at any Workers
// value.
func TestMonitorBoundTracking(t *testing.T) {
	ds := testDataset(t)
	ctx := context.Background()
	run := func(workers int) []*Verdict {
		m := NewMonitor(Options{
			Window: 8, MinObs: 4,
			BoundEvery: 2, BoundSeed: 11, BoundMaxColumns: 4, BoundSweeps: 64,
			Workers: workers,
			Truth:   func(int) (bool, bool) { return true, true },
		})
		var out []*Verdict
		for tick := 0; tick < 5; tick++ {
			v, err := m.ObserveRefit(ctx, testRefit(ds, []float64{0.9, 0.8, 0.85}))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}

	vs := run(1)
	if vs[0].Bound == nil || vs[0].Bound.Tick != 0 {
		t.Fatalf("tick 0 bound = %+v, want evaluation at tick 0", vs[0].Bound)
	}
	if vs[1].Bound == nil || vs[1].Bound.Tick != 0 {
		t.Fatalf("tick 1 bound = %+v, want re-attached tick-0 evaluation", vs[1].Bound)
	}
	if vs[2].Bound == nil || vs[2].Bound.Tick != 2 {
		t.Fatalf("tick 2 bound = %+v, want fresh evaluation", vs[2].Bound)
	}
	b := vs[4].Bound
	if b.Bound <= 0 || b.Sweeps <= 0 {
		t.Fatalf("bound = %+v, want positive bound and sweeps", b)
	}
	if b.Exceeded != (b.Observed > b.Bound) {
		t.Fatalf("exceeded = %v with observed %v bound %v", b.Exceeded, b.Observed, b.Bound)
	}

	var w1, w4 bytes.Buffer
	if err := Write(&w1, vs...); err != nil {
		t.Fatal(err)
	}
	if err := Write(&w4, run(4)...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w4.Bytes()) {
		t.Fatalf("verdict bytes differ between Workers 1 and 4:\n%s\n---\n%s", w1.Bytes(), w4.Bytes())
	}
}

// streamVerdicts drives the real attachment point — stream.Estimator's
// OnRefit hook — over a seeded twittersim stream and returns the verdict
// sequence the monitor produced.
func streamVerdicts(t *testing.T, workers int) []*Verdict {
	t.Helper()
	w, err := twittersim.Generate(twittersim.Small("Ukraine", 60), randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	kinds := w.Kinds
	truth := func(j int) (bool, bool) {
		if j < 0 || j >= len(kinds) || kinds[j] == twittersim.KindOpinion {
			return false, false
		}
		return kinds[j] == twittersim.KindTrue, true
	}
	m := NewMonitor(Options{
		Window: 8, MinObs: 3,
		BoundEvery: 3, BoundSeed: 17, BoundMaxColumns: 4, BoundSweeps: 64,
		Workers: workers,
		Truth:   truth,
	})
	var verdicts []*Verdict
	est := stream.New(stream.Options{
		EM: core.Options{Seed: 5, Workers: workers},
		OnRefit: func(ctx context.Context, ev stream.RefitEvent) {
			v, err := m.ObserveRefit(ctx, Refit{Result: ev.Result, Dataset: ev.Dataset, Edges: ev.Edges})
			if err != nil {
				t.Errorf("observe refit %d: %v", ev.Fit, err)
			}
			verdicts = append(verdicts, v)
		},
	})
	events := w.Events()
	const batch = 16
	for at := 0; at < len(events); at += batch {
		end := min(at+batch, len(events))
		for _, tw := range w.Tweets[at:end] {
			if tw.RetweetOf >= 0 {
				orig := w.Tweets[tw.RetweetOf]
				if orig.Source != tw.Source {
					if err := est.ObserveFollow(tw.Source, orig.Source); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if _, err := est.AddBatch(events[at:end]); err != nil {
			t.Fatal(err)
		}
	}
	if len(verdicts) == 0 {
		t.Fatal("no verdicts produced")
	}
	return verdicts
}

// TestStreamVerdictsGoldenAndWorkersEquivalence is the tentpole's
// determinism gate: the verdict JSONL produced by monitoring a real
// streaming run is byte-identical at Workers 1 and 4 and matches the
// checked-in golden (refresh with go test ./internal/qual -run Golden
// -update).
func TestStreamVerdictsGoldenAndWorkersEquivalence(t *testing.T) {
	var w1, w4 bytes.Buffer
	if err := Write(&w1, streamVerdicts(t, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := Write(&w4, streamVerdicts(t, 4)...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w4.Bytes()) {
		t.Fatalf("verdict bytes differ between Workers 1 and 4:\n%s\n---\n%s", w1.Bytes(), w4.Bytes())
	}

	golden := filepath.Join("testdata", "verdicts.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, w1.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), want) {
		t.Fatalf("verdicts diverge from golden %s (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			golden, w1.Bytes(), want)
	}
}

// TestVerdictJSONLRoundTrip: Write/Read preserve verdicts exactly.
func TestVerdictJSONLRoundTrip(t *testing.T) {
	ds := testDataset(t)
	m := NewMonitor(Options{BoundEvery: -1, Truth: func(int) (bool, bool) { return true, true }})
	var vs []*Verdict
	for i := 0; i < 3; i++ {
		v, err := m.ObserveRefit(context.Background(), testRefit(ds, []float64{0.9, 0.8, 0.7}))
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	path := filepath.Join(t.TempDir(), "v.jsonl")
	if err := WriteFile(path, vs...); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("read %d verdicts, want %d", len(got), len(vs))
	}
	for i := range vs {
		a, _ := Marshal(vs[i])
		b, _ := Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("verdict %d round-trip mismatch:\n%s\n%s", i, a, b)
		}
	}
}

// denseFlipScenario is a claim-dense world — few sources, many claims each,
// so per-source fits carry real signal — whose two most prolific sources
// turn fabrication mill at claim 640 (batch tick 20 at batch size 32) when
// flip is set. With flip off the same scenario runs clean.
func denseFlipScenario(flip bool) twittersim.Scenario {
	sc := twittersim.Small("Ukraine", 1000)
	sc.Sources = 24
	sc.Assertions = 120
	sc.Claims = 960
	sc.OriginalClaims = 560
	sc.ActivitySkew = 1.1
	if flip {
		sc.FlipAtClaim = 640
		sc.FlipSources = 2
		sc.FlipReliability = 0.0
	}
	return sc
}

// flipStreamAlarms drives the flip world's event stream through a real
// estimator+monitor pair and returns the monitor's alarms plus the world.
func flipStreamAlarms(t *testing.T, flip bool, workers int) (*twittersim.World, []Alarm) {
	t.Helper()
	w, err := twittersim.Generate(denseFlipScenario(flip), randutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(Options{
		Window: 8, MinObs: 6,
		DriftDelta: 0.03, DriftLambda: 0.4,
		BoundEvery: -1,
		Workers:    workers,
	})
	est := stream.New(stream.Options{
		EM: core.Options{Seed: 5, Workers: workers},
		OnRefit: func(ctx context.Context, ev stream.RefitEvent) {
			if _, err := m.ObserveRefit(ctx, Refit{Result: ev.Result, Dataset: ev.Dataset, Edges: ev.Edges}); err != nil {
				t.Errorf("observe refit %d: %v", ev.Fit, err)
			}
		},
	})
	events := w.Events()
	const batch = 32
	for at := 0; at < len(events); at += batch {
		end := min(at+batch, len(events))
		for _, tw := range w.Tweets[at:end] {
			if tw.RetweetOf >= 0 {
				orig := w.Tweets[tw.RetweetOf]
				if orig.Source != tw.Source {
					if err := est.ObserveFollow(tw.Source, orig.Source); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if _, err := est.AddBatch(events[at:end]); err != nil {
			t.Fatal(err)
		}
	}
	return w, m.Alarms()
}

// TestStreamFlipCausalAlarm is the drift detector's causal e2e over a real
// estimator: the clean run of the dense scenario fires no source-reliability
// alarm after the flip tick, while the flipped run alarms on a flipped
// source — at a tick that is identical across worker counts.
func TestStreamFlipCausalAlarm(t *testing.T) {
	const flipTick = 640 / 32

	srcAlarms := func(alarms []Alarm, from int) []Alarm {
		var out []Alarm
		for _, a := range alarms {
			if a.Kind == AlarmSourceReliability && a.Tick >= from {
				out = append(out, a)
			}
		}
		return out
	}

	_, baseAlarms := flipStreamAlarms(t, false, 1)
	if late := srcAlarms(baseAlarms, flipTick+1); len(late) != 0 {
		t.Fatalf("clean run has post-flip source alarms (detector too hot): %+v", late)
	}

	w, flipAlarms := flipStreamAlarms(t, true, 1)
	flipped := make(map[int]bool)
	for _, s := range w.FlippedSources {
		flipped[s] = true
	}
	var hit *Alarm
	for _, a := range srcAlarms(flipAlarms, flipTick+1) {
		if flipped[a.Source] {
			a := a
			hit = &a
			break
		}
	}
	if hit == nil {
		t.Fatalf("no post-flip alarm on a flipped source %v; alarms = %+v", w.FlippedSources, flipAlarms)
	}

	// The alarm tick is deterministic: a Workers-4 run reproduces it bit
	// for bit (alarm streams are part of the verdict determinism contract).
	_, flipAlarms4 := flipStreamAlarms(t, true, 4)
	if len(flipAlarms4) != len(flipAlarms) {
		t.Fatalf("alarm count differs across workers: %d vs %d", len(flipAlarms), len(flipAlarms4))
	}
	for i := range flipAlarms {
		a, b := flipAlarms[i], flipAlarms4[i]
		if a.Kind != b.Kind || a.Source != b.Source || a.Tick != b.Tick || a.Stat != b.Stat {
			t.Fatalf("alarm %d differs across workers:\n%+v\n%+v", i, a, b)
		}
	}
}
