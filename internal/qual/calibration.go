package qual

// Calibration is the windowed reliability diagram over one refit's
// posterior assertion probabilities: assertions are binned by posterior
// into fixed equal-width buckets and each bucket's mean predicted
// probability is compared against the empirical frequency of
// reference-true assertions in it. The reference is ground truth in
// eval/simulation mode and the Voting baseline's decisions in live mode —
// in the latter case "accuracy" reads as cross-estimator agreement, not
// correctness, and a calibration break signals the estimators diverging.
type Calibration struct {
	// Reference names the label source: "truth" or "voting".
	Reference string `json:"reference"`
	// Assertions is the posterior count; Labeled how many had a reference
	// label (with ground truth, opinions and unknown ids have none).
	Assertions int `json:"assertions"`
	Labeled    int `json:"labeled"`
	// Buckets is the reliability diagram, fixed equal-width posterior bins.
	Buckets []CalBucket `json:"buckets"`
	// ECE is the expected calibration error: the label-count-weighted mean
	// absolute gap between each bucket's mean posterior and its empirical
	// true-fraction.
	ECE float64 `json:"ece"`
	// Disagreement is the fraction of labeled assertions whose thresholded
	// decision contradicts the reference — with ground truth this is the
	// empirical estimation error the paper's bound bounds.
	Disagreement float64 `json:"disagreement"`
	// ImpliedError is the posterior-implied Bayes error mean min(p, 1−p)
	// over all assertions: the error the estimator believes it is making,
	// no labels needed. ImpliedError far below Disagreement means the
	// posteriors are overconfident.
	ImpliedError float64 `json:"impliedError"`
	// MeanPosterior is the mean posterior over all assertions.
	MeanPosterior float64 `json:"meanPosterior"`
}

// CalBucket is one reliability-diagram bin over [Lo, Hi).
type CalBucket struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Count is the number of labeled assertions in the bin.
	Count int `json:"count"`
	// Confidence is the bin's mean posterior; Accuracy its fraction of
	// reference-true assertions. Both are 0 when Count is 0.
	Confidence float64 `json:"confidence"`
	Accuracy   float64 `json:"accuracy"`
}

// computeCalibration bins posteriors against the label function, which
// returns (label, ok); assertions with ok=false contribute to the
// label-free statistics (ImpliedError, MeanPosterior) only.
func computeCalibration(nbuckets int, posteriors []float64, label func(j int) (bool, bool), reference string) Calibration {
	c := Calibration{
		Reference:  reference,
		Assertions: len(posteriors),
		Buckets:    make([]CalBucket, nbuckets),
	}
	width := 1.0 / float64(nbuckets)
	for b := range c.Buckets {
		c.Buckets[b].Lo = float64(b) * width
		c.Buckets[b].Hi = float64(b+1) * width
	}
	confSum := make([]float64, nbuckets)
	trueCount := make([]int, nbuckets)
	disagree := 0
	for j, p := range posteriors {
		c.ImpliedError += minProb(p)
		c.MeanPosterior += p
		lab, ok := label(j)
		if !ok {
			continue
		}
		c.Labeled++
		b := int(p / width)
		if b >= nbuckets {
			b = nbuckets - 1 // p == 1.0 lands in the top bin
		}
		if b < 0 {
			b = 0
		}
		c.Buckets[b].Count++
		confSum[b] += p
		if lab {
			trueCount[b]++
		}
		if (p > decisionThreshold) != lab {
			disagree++
		}
	}
	if c.Assertions > 0 {
		c.ImpliedError /= float64(c.Assertions)
		c.MeanPosterior /= float64(c.Assertions)
	}
	if c.Labeled > 0 {
		c.Disagreement = float64(disagree) / float64(c.Labeled)
		for b := range c.Buckets {
			n := c.Buckets[b].Count
			if n == 0 {
				continue
			}
			c.Buckets[b].Confidence = confSum[b] / float64(n)
			c.Buckets[b].Accuracy = float64(trueCount[b]) / float64(n)
			gap := c.Buckets[b].Confidence - c.Buckets[b].Accuracy
			if gap < 0 {
				gap = -gap
			}
			c.ECE += float64(n) / float64(c.Labeled) * gap
		}
	}
	return c
}

func minProb(p float64) float64 {
	if q := 1 - p; q < p {
		return q
	}
	return p
}
