package qual

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"depsense/internal/runctx"
)

// The verdict JSONL codec mirrors internal/trace's: one compact JSON object
// per line, struct field order fixed by the type definitions, every field
// deterministic — the same refit sequence always spills the same bytes,
// which is what lets tests diff quality spills across Workers values and
// what cmd/ssqual consumes offline.

// Write encodes verdicts as JSONL.
func Write(w io.Writer, verdicts ...*Verdict) error {
	for _, v := range verdicts {
		if err := writeVerdict(w, v); err != nil {
			return err
		}
	}
	return nil
}

func writeVerdict(w io.Writer, v *Verdict) error {
	line, err := Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(line); err != nil {
		return err
	}
	_, err = w.Write([]byte{'\n'})
	return err
}

// Marshal encodes one verdict as a single JSON line (no trailing newline).
func Marshal(v *Verdict) ([]byte, error) {
	line, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("qual: encode verdict %d: %w", v.Tick, err)
	}
	return line, nil
}

// WriteFile writes verdicts as a JSONL file at path, replacing any
// existing file (the monitor's SpillDir appends instead).
func WriteFile(path string, verdicts ...*Verdict) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, verdicts...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a JSONL verdict spill.
func ReadFile(path string) ([]*Verdict, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read decodes a JSONL stream of verdicts. Blank lines are skipped; a
// malformed line fails the whole read with its line number, since a spill
// with a corrupt record should be noticed, not silently truncated.
func Read(r io.Reader) ([]*Verdict, error) {
	var out []*Verdict
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		v := &Verdict{}
		if err := json.Unmarshal(line, v); err != nil {
			return nil, fmt.Errorf("qual: line %d: %w", lineNo, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qual: read: %w", err)
	}
	return out, nil
}

// maxLineBytes bounds a single JSONL line (64 MiB), matching the trace
// codec: a verdict holds a fixed bucket list and bounded alarm windows,
// far below this, so hitting the limit indicates a corrupt file.
const maxLineBytes = 64 << 20

// alarmIteration renders one retained window observation as a runctx
// iteration record for the alarm's flight-recorder snapshot.
func alarmIteration(kind string, n int, x float64) runctx.Iteration {
	return runctx.Iteration{Algorithm: kind, N: n, Value: x, HasValue: true}
}
