package baselines

import (
	"testing"

	"depsense/internal/claims"
	"depsense/internal/factfind"
	"depsense/internal/randutil"
	"depsense/internal/stats"
	"depsense/internal/synthetic"
)

// handcrafted builds a small dataset: assertion 0 has broad support,
// assertion 1 narrow support, assertion 2 none.
func handcrafted(t *testing.T) *claims.Dataset {
	t.Helper()
	b := claims.NewBuilder(5, 3)
	for i := 0; i < 4; i++ {
		b.AddClaim(i, 0, false)
	}
	b.AddClaim(4, 1, false)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAllLineup(t *testing.T) {
	algs := All(1)
	wantNames := []string{"EM-Ext", "EM-Social", "EM", "Voting", "Sums", "Average.Log", "Truth-Finder"}
	if len(algs) != len(wantNames) {
		t.Fatalf("lineup has %d algorithms", len(algs))
	}
	for i, alg := range algs {
		if alg.Name() != wantNames[i] {
			t.Errorf("lineup[%d] = %q, want %q", i, alg.Name(), wantNames[i])
		}
	}
}

func TestAllRunOnSynthetic(t *testing.T) {
	cfg := synthetic.DefaultConfig()
	w, err := synthetic.Generate(cfg, randutil.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range All(1) {
		res, err := alg.Run(w.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(res.Posterior) != w.Dataset.M() {
			t.Fatalf("%s: posterior length %d", alg.Name(), len(res.Posterior))
		}
		for j, p := range res.Posterior {
			if p < 0 || p > 1 {
				t.Fatalf("%s: score[%d] = %v outside [0,1]", alg.Name(), j, p)
			}
		}
	}
}

func TestVotingCounts(t *testing.T) {
	ds := handcrafted(t)
	res, err := (&Voting{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior[0] != 1 || res.Posterior[1] != 0.25 || res.Posterior[2] != 0 {
		t.Fatalf("voting scores = %v", res.Posterior)
	}
	if got := res.Ranking(); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ranking = %v", got)
	}
}

func TestVotingEmptyDataset(t *testing.T) {
	ds, err := claims.NewBuilder(3, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Voting{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Posterior {
		if p != 0 {
			t.Fatal("claims-free dataset should score zero")
		}
	}
}

func TestSumsRanksSupportedFirst(t *testing.T) {
	ds := handcrafted(t)
	res, err := (&Sums{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior[0] <= res.Posterior[1] || res.Posterior[1] <= res.Posterior[2] {
		t.Fatalf("sums scores = %v", res.Posterior)
	}
}

// TestSumsMutualReinforcement: a source sharing claims with a well-connected
// cluster boosts its other claims above an otherwise identical claim from an
// isolated source.
func TestSumsMutualReinforcement(t *testing.T) {
	b := claims.NewBuilder(5, 4)
	// Cluster: sources 0-2 all claim assertion 0; source 0 also claims 1.
	for i := 0; i < 3; i++ {
		b.AddClaim(i, 0, false)
	}
	b.AddClaim(0, 1, false)
	// Isolated: source 3 claims assertion 2 (and nothing else).
	b.AddClaim(3, 2, false)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Sums{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior[1] <= res.Posterior[2] {
		t.Fatalf("reinforced claim (%v) not above isolated claim (%v)",
			res.Posterior[1], res.Posterior[2])
	}
}

func TestAverageLogProlificSources(t *testing.T) {
	ds := handcrafted(t)
	res, err := (&AverageLog{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior[0] <= res.Posterior[2] {
		t.Fatalf("avg.log scores = %v", res.Posterior)
	}
}

func TestTruthFinderBasics(t *testing.T) {
	ds := handcrafted(t)
	tf := &TruthFinder{}
	res, err := tf.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("TruthFinder did not converge on a tiny dataset")
	}
	if res.Posterior[0] <= res.Posterior[1] {
		t.Fatalf("truthfinder scores = %v", res.Posterior)
	}
	// Confidence of an unclaimed assertion is the logistic at 0 = 0.5;
	// broad support must clear that.
	if res.Posterior[0] <= 0.5 {
		t.Fatalf("broadly supported assertion scored %v", res.Posterior[0])
	}
}

func TestTruthFinderTrustSaturationIsFinite(t *testing.T) {
	// One source claiming one assertion drives trust toward the logistic
	// fixed point; -ln(1-t) must stay finite (no NaN/Inf propagation).
	b := claims.NewBuilder(1, 1)
	b.AddClaim(0, 0, false)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&TruthFinder{MaxIters: 500, InitialTrust: 0.999999}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior[0] < 0 || res.Posterior[0] > 1 {
		t.Fatalf("score = %v", res.Posterior[0])
	}
}

// TestHeuristicsInflatedByDependentClaims documents the failure mode the
// paper attributes to dependency-blind algorithms: adding dependent repeats
// raises a false assertion's rank under Voting.
func TestHeuristicsInflatedByDependentClaims(t *testing.T) {
	b := claims.NewBuilder(8, 2)
	// Assertion 0: 3 independent claims. Assertion 1: 2 independent + 4
	// dependent repeats.
	for i := 0; i < 3; i++ {
		b.AddClaim(i, 0, false)
	}
	b.AddClaim(3, 1, false)
	b.AddClaim(4, 1, false)
	for i := 4; i < 8; i++ {
		b.AddClaim(i, 1, true)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Voting{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior[1] <= res.Posterior[0] {
		t.Fatal("voting should be fooled by dependent repeats (that is its documented flaw)")
	}
}

func TestBaselinesAccuracyOnEasyWorld(t *testing.T) {
	cfg := synthetic.Config{
		Sources:    12,
		Assertions: 60,
		Trees:      synthetic.FixedInt(6),
		TrueRatio:  synthetic.Fixed(0.5),
		POn:        synthetic.Fixed(0.9),
		PDep:       synthetic.Fixed(0.4),
		PIndepT:    synthetic.Fixed(0.95),
		PDepT:      synthetic.Fixed(0.8),
	}
	w, err := synthetic.Generate(cfg, randutil.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []factfind.FactFinder{&EM{}, &EMSocial{}} {
		res, err := alg.Run(w.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		c, err := stats.Classify(res.Decisions(0.5), w.Truth)
		if err != nil {
			t.Fatal(err)
		}
		if c.Accuracy < 0.85 {
			t.Errorf("%s accuracy %v on easy world", alg.Name(), c.Accuracy)
		}
	}
}

func TestInvestmentRanksSupportedFirst(t *testing.T) {
	ds := handcrafted(t)
	for _, alg := range []factfind.FactFinder{&Investment{}, &PooledInvestment{}} {
		res, err := alg.Run(ds)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.Posterior[0] <= res.Posterior[1] || res.Posterior[1] <= res.Posterior[2] {
			t.Fatalf("%s scores = %v", alg.Name(), res.Posterior)
		}
		for j, p := range res.Posterior {
			if p < 0 || p > 1 {
				t.Fatalf("%s: score[%d] = %v", alg.Name(), j, p)
			}
		}
	}
}

func TestInvestmentOnEmptyDataset(t *testing.T) {
	ds, err := claims.NewBuilder(3, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []factfind.FactFinder{&Investment{}, &PooledInvestment{}} {
		res, err := alg.Run(ds)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for _, p := range res.Posterior {
			if p != 0 {
				t.Fatalf("%s scored an unclaimed assertion", alg.Name())
			}
		}
	}
}

func TestExtendedLineup(t *testing.T) {
	algs := Extended(1)
	if len(algs) != 9 {
		t.Fatalf("extended lineup has %d algorithms", len(algs))
	}
	if algs[7].Name() != "Investment" || algs[8].Name() != "PooledInvestment" {
		t.Fatalf("tail: %s, %s", algs[7].Name(), algs[8].Name())
	}
	cfg := synthetic.DefaultConfig()
	w, err := synthetic.Generate(cfg, randutil.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range algs[7:] {
		res, err := alg.Run(w.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(res.Posterior) != w.Dataset.M() {
			t.Fatalf("%s posterior length", alg.Name())
		}
	}
}
