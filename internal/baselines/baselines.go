// Package baselines implements the comparison algorithms from the paper's
// evaluation (Section V): the model-based estimators EM (IPSN'12) and
// EM-Social (IPSN'14), and the heuristic fact-finders Voting, Sums,
// Average.Log, and TruthFinder. None of the heuristics uses the dependency
// indicators — exactly the modeling gap the paper attributes their variance
// to.
package baselines

import (
	"context"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/factfind"
)

// EM is the IPSN'12 estimator of Wang et al.: maximum-likelihood truth
// discovery under the assumption that all sources are independent. It is
// the core EM engine with the dependency channel disabled.
type EM struct {
	Opts core.Options
}

var _ factfind.FactFinder = (*EM)(nil)

// Name implements factfind.FactFinder.
func (e *EM) Name() string { return "EM" }

// Run implements factfind.FactFinder.
func (e *EM) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return e.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder.
func (e *EM) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	return core.RunCtx(ctx, ds, core.VariantIndependent, e.Opts)
}

// EMSocial is the IPSN'14 estimator: dependent claims are assumed to carry
// no information and are removed from the likelihood before running
// independent-source EM.
type EMSocial struct {
	Opts core.Options
}

var _ factfind.FactFinder = (*EMSocial)(nil)

// Name implements factfind.FactFinder.
func (e *EMSocial) Name() string { return "EM-Social" }

// Run implements factfind.FactFinder.
func (e *EMSocial) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return e.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder.
func (e *EMSocial) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	return core.RunCtx(ctx, ds, core.VariantSocial, e.Opts)
}

// All returns the full algorithm lineup of the empirical evaluation
// (Fig. 11), in the paper's order: EM-Ext first, then the baselines. Every
// algorithm is seeded from the same value for reproducibility.
func All(seed int64) []factfind.FactFinder {
	return AllOpts(core.Options{Seed: seed})
}

// AllOpts is All with full control over the shared EM options — callers use
// it to thread Workers (and any other execution tuning) into every
// model-based algorithm in the lineup. The heuristic fact-finders take no
// options.
func AllOpts(opts core.Options) []factfind.FactFinder {
	return []factfind.FactFinder{
		&core.EMExt{Opts: opts},
		&EMSocial{Opts: opts},
		&EM{Opts: opts},
		&Voting{},
		&Sums{},
		&AverageLog{},
		&TruthFinder{},
	}
}

// Extended returns All plus the additional Pasternack & Roth fact-finders
// implemented beyond the paper's lineup (Investment, PooledInvestment),
// useful for broader comparisons.
func Extended(seed int64) []factfind.FactFinder {
	return ExtendedOpts(core.Options{Seed: seed})
}

// ExtendedOpts is Extended with full control over the shared EM options.
func ExtendedOpts(opts core.Options) []factfind.FactFinder {
	return append(AllOpts(opts), &Investment{}, &PooledInvestment{})
}
