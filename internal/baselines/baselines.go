// Package baselines implements the comparison algorithms from the paper's
// evaluation (Section V): the model-based estimators EM (IPSN'12) and
// EM-Social (IPSN'14), and the heuristic fact-finders Voting, Sums,
// Average.Log, and TruthFinder. None of the heuristics uses the dependency
// indicators — exactly the modeling gap the paper attributes their variance
// to.
package baselines

import (
	"context"
	"strings"

	"depsense/internal/claims"
	"depsense/internal/core"
	"depsense/internal/factfind"
)

// EM is the IPSN'12 estimator of Wang et al.: maximum-likelihood truth
// discovery under the assumption that all sources are independent. It is
// the core EM engine with the dependency channel disabled.
type EM struct {
	Opts core.Options
}

var _ factfind.FactFinder = (*EM)(nil)

// Name implements factfind.FactFinder.
func (e *EM) Name() string { return "EM" }

// Run implements factfind.FactFinder.
func (e *EM) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return e.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder.
func (e *EM) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	return core.RunCtx(ctx, ds, core.VariantIndependent, e.Opts)
}

// EMSocial is the IPSN'14 estimator: dependent claims are assumed to carry
// no information and are removed from the likelihood before running
// independent-source EM.
type EMSocial struct {
	Opts core.Options
}

var _ factfind.FactFinder = (*EMSocial)(nil)

// Name implements factfind.FactFinder.
func (e *EMSocial) Name() string { return "EM-Social" }

// Run implements factfind.FactFinder.
func (e *EMSocial) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return e.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder.
func (e *EMSocial) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	return core.RunCtx(ctx, ds, core.VariantSocial, e.Opts)
}

// lineup is the single declaration of the algorithm roster: canonical name
// plus a constructor building exactly one finder. Everything else —
// All/Extended slices, the name list the HTTP API advertises, and the
// by-name lookup serving each request — derives from it, so the roster
// cannot drift between surfaces. The first allCount entries are the
// paper's Fig. 11 lineup in the paper's order; the remainder are the
// Pasternack & Roth extensions.
var lineup = []struct {
	name string
	make func(core.Options) factfind.FactFinder
}{
	{"EM-Ext", func(o core.Options) factfind.FactFinder { return &core.EMExt{Opts: o} }},
	{"EM-Social", func(o core.Options) factfind.FactFinder { return &EMSocial{Opts: o} }},
	{"EM", func(o core.Options) factfind.FactFinder { return &EM{Opts: o} }},
	{"Voting", func(core.Options) factfind.FactFinder { return &Voting{} }},
	{"Sums", func(core.Options) factfind.FactFinder { return &Sums{} }},
	{"Average.Log", func(core.Options) factfind.FactFinder { return &AverageLog{} }},
	{"Truth-Finder", func(core.Options) factfind.FactFinder { return &TruthFinder{} }},
	{"Investment", func(core.Options) factfind.FactFinder { return &Investment{} }},
	{"PooledInvestment", func(core.Options) factfind.FactFinder { return &PooledInvestment{} }},
}

// allCount is how many lineup entries belong to the paper's evaluation.
const allCount = 7

// All returns the full algorithm lineup of the empirical evaluation
// (Fig. 11), in the paper's order: EM-Ext first, then the baselines. Every
// algorithm is seeded from the same value for reproducibility.
func All(seed int64) []factfind.FactFinder {
	return AllOpts(core.Options{Seed: seed})
}

// AllOpts is All with full control over the shared EM options — callers use
// it to thread Workers (and any other execution tuning) into every
// model-based algorithm in the lineup. The heuristic fact-finders take no
// options.
func AllOpts(opts core.Options) []factfind.FactFinder {
	out := make([]factfind.FactFinder, 0, allCount)
	for _, e := range lineup[:allCount] {
		out = append(out, e.make(opts))
	}
	return out
}

// Extended returns All plus the additional Pasternack & Roth fact-finders
// implemented beyond the paper's lineup (Investment, PooledInvestment),
// useful for broader comparisons.
func Extended(seed int64) []factfind.FactFinder {
	return ExtendedOpts(core.Options{Seed: seed})
}

// ExtendedOpts is Extended with full control over the shared EM options.
func ExtendedOpts(opts core.Options) []factfind.FactFinder {
	out := make([]factfind.FactFinder, 0, len(lineup))
	for _, e := range lineup {
		out = append(out, e.make(opts))
	}
	return out
}

// ExtendedNames returns the canonical names of the extended lineup, in
// lineup order, without constructing any finder. Serving layers build this
// once and answer the algorithm-listing endpoint from the copy.
func ExtendedNames() []string {
	names := make([]string, len(lineup))
	for i, e := range lineup {
		names[i] = e.name
	}
	return names
}

// ExtendedByName constructs only the named finder (matched
// case-insensitively against the canonical names) with the given options,
// or nil when the name is unknown. It exists so a serving hot path
// resolving one algorithm per request does not instantiate the entire
// nine-estimator roster just to string-match a name.
func ExtendedByName(name string, opts core.Options) factfind.FactFinder {
	for _, e := range lineup {
		if strings.EqualFold(e.name, name) {
			return e.make(opts)
		}
	}
	return nil
}
