package baselines

import (
	"context"

	"depsense/internal/claims"
	"depsense/internal/factfind"
)

// Sums is the Hubs-and-Authorities style iterative fact-finder of
// Pasternack & Roth (COLING 2010), reference [15]: assertion belief is the
// sum of its claimants' trust, source trust is the sum of its claims'
// beliefs, with max-normalization after every round to keep values bounded.
type Sums struct {
	// Iters is the number of belief/trust rounds (default 20).
	Iters int
}

var _ factfind.FactFinder = (*Sums)(nil)

// Name implements factfind.FactFinder.
func (s *Sums) Name() string { return "Sums" }

// Run implements factfind.FactFinder.
func (s *Sums) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return s.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder. Cancellation is checked before
// every belief/trust round; on cancellation the beliefs of the completed
// rounds are returned with the context's error.
func (s *Sums) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	iters := s.Iters
	if iters <= 0 {
		iters = 20
	}
	n, m := ds.N(), ds.M()
	trust := make([]float64, n)
	belief := make([]float64, m)
	for i := range trust {
		trust[i] = 1
	}
	completed, loopErr := heuristicLoop(ctx, s.Name(), iters, func(int) {
		maxB := 0.0
		for j := 0; j < m; j++ {
			b := 0.0
			for _, c := range ds.Claimants(j) {
				b += trust[c.Source]
			}
			belief[j] = b
			if b > maxB {
				maxB = b
			}
		}
		if maxB > 0 {
			for j := range belief {
				belief[j] /= maxB
			}
		}
		maxT := 0.0
		for i := 0; i < n; i++ {
			t := 0.0
			for _, j := range ds.ClaimsD0(i) {
				t += belief[j]
			}
			for _, j := range ds.ClaimsD1(i) {
				t += belief[j]
			}
			trust[i] = t
			if t > maxT {
				maxT = t
			}
		}
		if maxT > 0 {
			for i := range trust {
				trust[i] /= maxT
			}
		}
	})
	iterations, converged, stopped := stampHeuristic(completed, loopErr)
	return &factfind.Result{
		Posterior: belief, Iterations: iterations, Converged: converged,
		Stopped: stopped,
	}, loopErr
}
