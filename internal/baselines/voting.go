package baselines

import (
	"depsense/internal/claims"
	"depsense/internal/factfind"
)

// Voting ranks assertions by their raw support count: the number of sources
// that made the claim. It is the simplest baseline and the one most
// vulnerable to dependent claims, since every repeat inflates the count.
type Voting struct{}

var _ factfind.FactFinder = (*Voting)(nil)

// Name implements factfind.FactFinder.
func (v *Voting) Name() string { return "Voting" }

// Run implements factfind.FactFinder.
func (v *Voting) Run(ds *claims.Dataset) (*factfind.Result, error) {
	scores := make([]float64, ds.M())
	maxScore := 0.0
	for j := 0; j < ds.M(); j++ {
		scores[j] = float64(len(ds.Claimants(j)))
		if scores[j] > maxScore {
			maxScore = scores[j]
		}
	}
	if maxScore > 0 {
		for j := range scores {
			scores[j] /= maxScore
		}
	}
	return &factfind.Result{Posterior: scores, Iterations: 1, Converged: true}, nil
}
