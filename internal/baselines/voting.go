package baselines

import (
	"context"

	"depsense/internal/claims"
	"depsense/internal/factfind"
	"depsense/internal/runctx"
)

// Voting ranks assertions by their raw support count: the number of sources
// that made the claim. It is the simplest baseline and the one most
// vulnerable to dependent claims, since every repeat inflates the count.
type Voting struct{}

var _ factfind.FactFinder = (*Voting)(nil)

// Name implements factfind.FactFinder.
func (v *Voting) Name() string { return "Voting" }

// Run implements factfind.FactFinder.
func (v *Voting) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return v.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder. Voting is a single pass, so
// the context is checked once up front; there is no partial state to
// return.
func (v *Voting) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	if err := runctx.Err(ctx); err != nil {
		return nil, err
	}
	scores := make([]float64, ds.M())
	maxScore := 0.0
	for j := 0; j < ds.M(); j++ {
		scores[j] = float64(len(ds.Claimants(j)))
		if scores[j] > maxScore {
			maxScore = scores[j]
		}
	}
	if maxScore > 0 {
		for j := range scores {
			scores[j] /= maxScore
		}
	}
	return &factfind.Result{
		Posterior: scores, Iterations: 1, Converged: true,
		Stopped: runctx.StopConverged,
	}, nil
}
