package baselines

import (
	"testing"

	"depsense/internal/core"
)

// TestLineupNamesMatchFinders: the table's canonical names must be exactly
// what each constructed finder reports — the by-name lookup and the
// advertised name list both depend on it.
func TestLineupNamesMatchFinders(t *testing.T) {
	names := ExtendedNames()
	finders := ExtendedOpts(core.Options{Seed: 1})
	if len(names) != len(finders) {
		t.Fatalf("%d names, %d finders", len(names), len(finders))
	}
	for i, f := range finders {
		if f.Name() != names[i] {
			t.Errorf("lineup[%d]: name %q but finder reports %q", i, names[i], f.Name())
		}
	}
	if len(AllOpts(core.Options{})) != allCount {
		t.Fatalf("AllOpts length %d, want %d", len(AllOpts(core.Options{})), allCount)
	}
}

func TestExtendedByName(t *testing.T) {
	for _, name := range ExtendedNames() {
		f := ExtendedByName(name, core.Options{Seed: 1})
		if f == nil {
			t.Fatalf("ExtendedByName(%q) = nil", name)
		}
		if f.Name() != name {
			t.Fatalf("ExtendedByName(%q).Name() = %q", name, f.Name())
		}
	}
	// Case-insensitive, like the HTTP API's historical matching.
	if f := ExtendedByName("em-ext", core.Options{}); f == nil || f.Name() != "EM-Ext" {
		t.Fatalf("case-insensitive lookup failed: %v", f)
	}
	if f := ExtendedByName("Oracle", core.Options{}); f != nil {
		t.Fatalf("unknown name resolved to %v", f)
	}
}

// TestExtendedByNameAllocs locks in the point of the per-request fix: one
// lookup constructs one finder, not the whole nine-estimator roster.
func TestExtendedByNameAllocs(t *testing.T) {
	opts := core.Options{Seed: 1, Workers: 4}
	allocs := testing.AllocsPerRun(200, func() {
		if ExtendedByName("EM-Ext", opts) == nil {
			t.Fatal("lookup failed")
		}
	})
	if allocs > 1 {
		t.Fatalf("ExtendedByName allocates %.1f objects per lookup, want <= 1", allocs)
	}
}

// BenchmarkExtendedByName vs BenchmarkExtendedOpts documents the
// allocation drop from constructing only the selected finder.
func BenchmarkExtendedByName(b *testing.B) {
	opts := core.Options{Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ExtendedByName("Truth-Finder", opts) == nil {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkExtendedOpts(b *testing.B) {
	opts := core.Options{Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(ExtendedOpts(opts)) != len(lineup) {
			b.Fatal("bad lineup")
		}
	}
}
