package baselines

import (
	"context"
	"math"

	"depsense/internal/claims"
	"depsense/internal/factfind"
)

// AverageLog is Pasternack & Roth's Average·Log variant of Sums: source
// trust is the average belief of the source's claims, scaled by
// log(1 + #claims) so prolific sources carry more weight without letting a
// single lucky claim dominate. (The original uses log(#claims), which
// zeroes out single-claim sources entirely; the +1 smoothing keeps the vast
// single-claim majority of Twitter-scale datasets in play while preserving
// the ordering the heuristic is built on.)
type AverageLog struct {
	// Iters is the number of belief/trust rounds (default 20).
	Iters int
}

var _ factfind.FactFinder = (*AverageLog)(nil)

// Name implements factfind.FactFinder.
func (a *AverageLog) Name() string { return "Average.Log" }

// Run implements factfind.FactFinder.
func (a *AverageLog) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return a.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder. Cancellation is checked before
// every belief/trust round; on cancellation the beliefs of the completed
// rounds are returned with the context's error.
func (a *AverageLog) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	iters := a.Iters
	if iters <= 0 {
		iters = 20
	}
	n, m := ds.N(), ds.M()
	trust := make([]float64, n)
	belief := make([]float64, m)
	claimCount := make([]int, n)
	for i := 0; i < n; i++ {
		claimCount[i] = len(ds.ClaimsD0(i)) + len(ds.ClaimsD1(i))
		trust[i] = 1
	}
	completed, loopErr := heuristicLoop(ctx, a.Name(), iters, func(int) {
		maxB := 0.0
		for j := 0; j < m; j++ {
			b := 0.0
			for _, c := range ds.Claimants(j) {
				b += trust[c.Source]
			}
			belief[j] = b
			if b > maxB {
				maxB = b
			}
		}
		if maxB > 0 {
			for j := range belief {
				belief[j] /= maxB
			}
		}
		maxT := 0.0
		for i := 0; i < n; i++ {
			if claimCount[i] == 0 {
				trust[i] = 0
				continue
			}
			sum := 0.0
			for _, j := range ds.ClaimsD0(i) {
				sum += belief[j]
			}
			for _, j := range ds.ClaimsD1(i) {
				sum += belief[j]
			}
			t := math.Log1p(float64(claimCount[i])) * sum / float64(claimCount[i])
			trust[i] = t
			if t > maxT {
				maxT = t
			}
		}
		if maxT > 0 {
			for i := range trust {
				trust[i] /= maxT
			}
		}
	})
	iterations, converged, stopped := stampHeuristic(completed, loopErr)
	return &factfind.Result{
		Posterior: belief, Iterations: iterations, Converged: converged,
		Stopped: stopped,
	}, loopErr
}
