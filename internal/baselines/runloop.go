package baselines

import (
	"context"
	"time"

	"depsense/internal/runctx"
)

// heuristicLoop drives the fixed-round belief/trust iteration shared by the
// Pasternack & Roth family (Sums, Average.Log, Investment,
// PooledInvestment) under a run-context: the context is checked before
// every round — bounding cancellation latency to one round's work — and any
// runctx hook fires after each completed round. It returns the number of
// completed rounds plus the context's error if cancellation cut the loop
// short; the caller's accumulator state after a partial run is the
// deterministic product of the completed rounds.
func heuristicLoop(ctx context.Context, name string, rounds int, round func(it int)) (completed int, err error) {
	hook := runctx.HookFrom(ctx)
	start := time.Now() //lint:allow seedsource wall-clock timing for the observability hook Elapsed field, not part of results
	for it := 0; it < rounds; it++ {
		if err := runctx.Err(ctx); err != nil {
			hook.Emit(runctx.Iteration{
				Algorithm: name, N: it, Elapsed: time.Since(start),
				Done: true, Stopped: runctx.Reason(err),
			})
			return it, err
		}
		round(it)
		done := it+1 == rounds
		iter := runctx.Iteration{
			Algorithm: name, N: it + 1, Elapsed: time.Since(start), Done: done,
		}
		if done {
			iter.Stopped = runctx.StopConverged
		}
		hook.Emit(iter)
	}
	return rounds, nil
}

// heuristicResult stamps the lifecycle fields of a fixed-round heuristic's
// result: a completed loop counts as converged, a cancelled one carries the
// context's stop reason.
func stampHeuristic(completed int, err error) (iterations int, converged bool, stopped string) {
	if err != nil {
		return completed, false, runctx.Reason(err)
	}
	return completed, true, runctx.StopConverged
}
