package baselines

import (
	"context"
	"math"
	"time"

	"depsense/internal/claims"
	"depsense/internal/factfind"
	"depsense/internal/runctx"
)

// TruthFinder is the iterative fact-finder of Yin, Han & Yu (TKDE 2008),
// reference [22]. Source trustworthiness and assertion confidence reinforce
// each other through the -ln(1-t) score transform and a dampened logistic:
//
//	τ(s)  = -ln(1 - t(s))            source trustworthiness score
//	σ(c)  = Σ_{s claims c} τ(s)      raw assertion confidence score
//	conf(c) = 1 / (1 + e^{-γ σ(c)})  dampened confidence
//	t(s)  = avg_{c ∈ claims(s)} conf(c)
//
// Iteration stops when the trust vector stabilizes (cosine similarity) or
// the cap is reached.
type TruthFinder struct {
	// InitialTrust seeds every source's trustworthiness (default 0.9, the
	// value used in the original paper).
	InitialTrust float64
	// Gamma is the dampening factor γ (default 0.3).
	Gamma float64
	// MaxIters caps the iterations (default 50).
	MaxIters int
	// Tol stops iteration when 1 - cos(t, t_prev) < Tol (default 1e-6).
	Tol float64
}

var _ factfind.FactFinder = (*TruthFinder)(nil)

// Name implements factfind.FactFinder.
func (t *TruthFinder) Name() string { return "Truth-Finder" }

// Run implements factfind.FactFinder.
func (t *TruthFinder) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return t.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder. Cancellation is checked before
// every trust/confidence round; on cancellation the confidences of the
// completed rounds are returned with the context's error.
func (t *TruthFinder) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	initTrust := t.InitialTrust
	if initTrust <= 0 || initTrust >= 1 {
		initTrust = 0.9
	}
	gamma := t.Gamma
	if gamma <= 0 {
		gamma = 0.3
	}
	maxIters := t.MaxIters
	if maxIters <= 0 {
		maxIters = 50
	}
	tol := t.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	n, m := ds.N(), ds.M()
	trust := make([]float64, n)
	prev := make([]float64, n)
	conf := make([]float64, m)
	for i := range trust {
		trust[i] = initTrust
	}

	hook := runctx.HookFrom(ctx)
	start := time.Now() //lint:allow seedsource wall-clock timing for the observability hook Elapsed field, not part of results
	iter := 0
	converged := false
	for iter = 1; iter <= maxIters; iter++ {
		if err := runctx.Err(ctx); err != nil {
			stopped := runctx.Reason(err)
			hook.Emit(runctx.Iteration{
				Algorithm: t.Name(), N: iter - 1, Elapsed: time.Since(start),
				Done: true, Stopped: stopped,
			})
			return &factfind.Result{
				Posterior: conf, Iterations: iter - 1, Stopped: stopped,
			}, err
		}
		copy(prev, trust)
		for j := 0; j < m; j++ {
			score := 0.0
			for _, c := range ds.Claimants(j) {
				// Clamp keeps -ln(1-t) finite when trust saturates.
				ti := trust[c.Source]
				if ti > 1-1e-9 {
					ti = 1 - 1e-9
				}
				score += -math.Log(1 - ti)
			}
			conf[j] = 1 / (1 + math.Exp(-gamma*score))
		}
		for i := 0; i < n; i++ {
			cnt := len(ds.ClaimsD0(i)) + len(ds.ClaimsD1(i))
			if cnt == 0 {
				trust[i] = 0
				continue
			}
			sum := 0.0
			for _, j := range ds.ClaimsD0(i) {
				sum += conf[j]
			}
			for _, j := range ds.ClaimsD1(i) {
				sum += conf[j]
			}
			trust[i] = sum / float64(cnt)
		}
		if 1-cosine(trust, prev) < tol {
			converged = true
		}
		it := runctx.Iteration{
			Algorithm: t.Name(), N: iter, Elapsed: time.Since(start),
			Done: converged,
		}
		if converged {
			it.Stopped = runctx.StopConverged
		}
		hook.Emit(it)
		if converged {
			break
		}
	}
	return &factfind.Result{
		Posterior: conf, Iterations: iter, Converged: converged,
		Stopped: runctx.StopOf(converged),
	}, nil
}

// cosine returns the cosine similarity of two equal-length vectors, 1 for
// two zero vectors (both "no signal" states count as identical).
func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
