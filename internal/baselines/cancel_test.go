package baselines

import (
	"context"
	"errors"
	"testing"

	"depsense/internal/claims"
	"depsense/internal/runctx"
)

// cancelDataset builds a small deterministic source-claim matrix that every
// finder in the lineup accepts.
func cancelDataset(t *testing.T) *claims.Dataset {
	t.Helper()
	b := claims.NewBuilder(5, 8)
	for i := 0; i < 5; i++ {
		for j := 0; j < 8; j++ {
			if (i+j)%2 == 0 {
				b.AddClaim(i, j, false)
			}
		}
	}
	b.AddClaim(0, 1, true)
	b.AddClaim(1, 0, true)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAllFindersPreCancelled(t *testing.T) {
	ds := cancelDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, f := range Extended(1) {
		res, err := f.RunContext(ctx, ds)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v", f.Name(), err)
		}
		if res != nil && res.Stopped != runctx.StopCancelled {
			t.Fatalf("%s: Stopped = %q", f.Name(), res.Stopped)
		}
	}
}

func TestSumsCancelMidRun(t *testing.T) {
	ds := cancelDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = runctx.WithHook(ctx, func(it runctx.Iteration) {
		if it.N >= 2 && !it.Done {
			cancel()
		}
	})
	res, err := (&Sums{Iters: 20}).RunContext(ctx, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Stopped != runctx.StopCancelled || res.Converged {
		t.Fatalf("res = %+v", res)
	}
	if res.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", res.Iterations)
	}
	// The partial beliefs equal a full run truncated to the same rounds.
	want, err := (&Sums{Iters: 2}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Posterior {
		if res.Posterior[j] != want.Posterior[j] {
			t.Fatalf("belief[%d]: cancelled-run %v != 2-round run %v", j, res.Posterior[j], want.Posterior[j])
		}
	}
}

func TestTruthFinderCancelMidRun(t *testing.T) {
	ds := cancelDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = runctx.WithHook(ctx, func(it runctx.Iteration) {
		if it.N >= 2 && !it.Done {
			cancel()
		}
	})
	res, err := (&TruthFinder{Tol: 1e-300}).RunContext(ctx, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Stopped != runctx.StopCancelled || res.Converged {
		t.Fatalf("res = %+v", res)
	}
	if res.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", res.Iterations)
	}
	if len(res.Posterior) != ds.M() {
		t.Fatalf("partial posterior has %d entries, want %d", len(res.Posterior), ds.M())
	}
}

func TestHeuristicHookLabels(t *testing.T) {
	ds := cancelDataset(t)
	// The iterative heuristics (Voting is single-pass and fires no
	// per-round hooks).
	for _, f := range Extended(1)[4:] {
		var labels []string
		ctx := runctx.WithHook(context.Background(), func(it runctx.Iteration) {
			labels = append(labels, it.Algorithm)
		})
		if _, err := f.RunContext(ctx, ds); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(labels) == 0 {
			t.Fatalf("%s: hook never fired", f.Name())
		}
		for _, l := range labels {
			if l != f.Name() {
				t.Fatalf("%s: hook labelled %q", f.Name(), l)
			}
		}
	}
}
