package baselines

import (
	"context"
	"math"

	"depsense/internal/claims"
	"depsense/internal/factfind"
)

// trustFloor keeps sources with at least one claim from collapsing to
// exactly zero trust: the Investment family has winner-take-all dynamics,
// and a hard zero would leave claimed assertions tied with unclaimed ones
// in the final ranking.
const trustFloor = 1e-6

// Investment is Pasternack & Roth's Investment fact-finder (COLING 2010,
// the paper's reference [15] alongside Sums and Average.Log): each source
// "invests" its trust uniformly across its claims, an assertion's belief
// grows non-linearly (power g) in the invested amount, and returns flow
// back to sources proportionally to their share of each assertion's
// investment:
//
//	B(c)  = (Σ_{s claims c} T(s)/|claims(s)|)^g
//	T(s)  = Σ_{c ∈ claims(s)} B(c) · (T_prev(s)/|claims(s)|) / I(c)
//
// where I(c) is the total investment in c. Like the other heuristics it is
// dependency-blind, which is exactly how the paper positions this family.
type Investment struct {
	// Iters is the number of rounds (default 20).
	Iters int
	// G is the belief growth exponent (default 1.2, the original's value).
	G float64
}

var _ factfind.FactFinder = (*Investment)(nil)

// Name implements factfind.FactFinder.
func (v *Investment) Name() string { return "Investment" }

// Run implements factfind.FactFinder.
func (v *Investment) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return v.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder. Cancellation is checked before
// every investment round; on cancellation the beliefs of the completed
// rounds are returned with the context's error.
func (v *Investment) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	iters := v.Iters
	if iters <= 0 {
		iters = 20
	}
	g := v.G
	if g <= 0 {
		g = 1.2
	}
	n, m := ds.N(), ds.M()
	trust := make([]float64, n)
	belief := make([]float64, m)
	invested := make([]float64, m)
	counts := make([]float64, n)
	for i := 0; i < n; i++ {
		counts[i] = float64(len(ds.ClaimsD0(i)) + len(ds.ClaimsD1(i)))
		trust[i] = 1
	}

	forEachClaim := func(i int, fn func(j int)) {
		for _, j := range ds.ClaimsD0(i) {
			fn(j)
		}
		for _, j := range ds.ClaimsD1(i) {
			fn(j)
		}
	}

	completed, loopErr := heuristicLoop(ctx, v.Name(), iters, func(int) {
		// Invest: every source splits its trust across its claims.
		for j := range invested {
			invested[j] = 0
		}
		for i := 0; i < n; i++ {
			if counts[i] == 0 {
				continue
			}
			share := trust[i] / counts[i]
			forEachClaim(i, func(j int) { invested[j] += share })
		}
		// Grow beliefs, normalized by the maximum to keep the exponent
		// numerically tame.
		maxB := 0.0
		for j := range belief {
			belief[j] = math.Pow(invested[j], g)
			if belief[j] > maxB {
				maxB = belief[j]
			}
		}
		if maxB > 0 {
			for j := range belief {
				belief[j] /= maxB
			}
		}
		// Collect returns.
		newTrust := make([]float64, n)
		maxT := 0.0
		for i := 0; i < n; i++ {
			if counts[i] == 0 {
				continue
			}
			share := trust[i] / counts[i]
			sum := 0.0
			forEachClaim(i, func(j int) {
				if invested[j] > 0 {
					sum += belief[j] * share / invested[j]
				}
			})
			newTrust[i] = sum
			if sum > maxT {
				maxT = sum
			}
		}
		if maxT > 0 {
			for i := range newTrust {
				newTrust[i] /= maxT
			}
		}
		for i := range newTrust {
			if counts[i] > 0 && newTrust[i] < trustFloor {
				newTrust[i] = trustFloor
			}
		}
		trust = newTrust
	})
	iterations, converged, stopped := stampHeuristic(completed, loopErr)
	return &factfind.Result{
		Posterior: belief, Iterations: iterations, Converged: converged,
		Stopped: stopped,
	}, loopErr
}

// PooledInvestment is the PooledInvestment variant of Investment: beliefs
// are linearly pooled before the non-linear growth, which the original work
// found more stable on sparse data.
type PooledInvestment struct {
	// Iters is the number of rounds (default 20).
	Iters int
	// G is the growth exponent (default 1.4, the original's value).
	G float64
}

var _ factfind.FactFinder = (*PooledInvestment)(nil)

// Name implements factfind.FactFinder.
func (v *PooledInvestment) Name() string { return "PooledInvestment" }

// Run implements factfind.FactFinder.
func (v *PooledInvestment) Run(ds *claims.Dataset) (*factfind.Result, error) {
	return v.RunContext(context.Background(), ds)
}

// RunContext implements factfind.FactFinder. Cancellation is checked before
// every investment round; on cancellation the beliefs of the completed
// rounds are returned with the context's error.
func (v *PooledInvestment) RunContext(ctx context.Context, ds *claims.Dataset) (*factfind.Result, error) {
	iters := v.Iters
	if iters <= 0 {
		iters = 20
	}
	g := v.G
	if g <= 0 {
		g = 1.4
	}
	n, m := ds.N(), ds.M()
	trust := make([]float64, n)
	belief := make([]float64, m)
	linear := make([]float64, m)
	counts := make([]float64, n)
	for i := 0; i < n; i++ {
		counts[i] = float64(len(ds.ClaimsD0(i)) + len(ds.ClaimsD1(i)))
		trust[i] = 1
	}
	forEachClaim := func(i int, fn func(j int)) {
		for _, j := range ds.ClaimsD0(i) {
			fn(j)
		}
		for _, j := range ds.ClaimsD1(i) {
			fn(j)
		}
	}
	completed, loopErr := heuristicLoop(ctx, v.Name(), iters, func(int) {
		for j := range linear {
			linear[j] = 0
		}
		for i := 0; i < n; i++ {
			if counts[i] == 0 {
				continue
			}
			share := trust[i] / counts[i]
			forEachClaim(i, func(j int) { linear[j] += share })
		}
		// Pooled growth: H(c) = linear(c) · (linear(c)^g / Σ linear^g),
		// normalized by max.
		total := 0.0
		for j := range linear {
			total += math.Pow(linear[j], g)
		}
		maxB := 0.0
		for j := range belief {
			if total > 0 {
				belief[j] = linear[j] * math.Pow(linear[j], g) / total
			} else {
				belief[j] = 0
			}
			if belief[j] > maxB {
				maxB = belief[j]
			}
		}
		if maxB > 0 {
			for j := range belief {
				belief[j] /= maxB
			}
		}
		newTrust := make([]float64, n)
		maxT := 0.0
		for i := 0; i < n; i++ {
			if counts[i] == 0 {
				continue
			}
			share := trust[i] / counts[i]
			sum := 0.0
			forEachClaim(i, func(j int) {
				if linear[j] > 0 {
					sum += belief[j] * share / linear[j]
				}
			})
			newTrust[i] = sum
			if sum > maxT {
				maxT = sum
			}
		}
		if maxT > 0 {
			for i := range newTrust {
				newTrust[i] /= maxT
			}
		}
		for i := range newTrust {
			if counts[i] > 0 && newTrust[i] < trustFloor {
				newTrust[i] = trustFloor
			}
		}
		trust = newTrust
	})
	iterations, converged, stopped := stampHeuristic(completed, loopErr)
	return &factfind.Result{
		Posterior: belief, Iterations: iterations, Converged: converged,
		Stopped: stopped,
	}, loopErr
}
