package plot

import (
	"encoding/xml"
	"errors"
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "accuracy vs n",
		XLabel: "n",
		YLabel: "accuracy",
		Series: []Series{
			{Name: "EM-Ext", X: []float64{10, 20, 30}, Y: []float64{0.7, 0.8, 0.85}},
			{Name: "EM", X: []float64{10, 20, 30}, Y: []float64{0.6, 0.65, 0.7}},
		},
	}
}

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var sb strings.Builder
	if err := c.RenderSVG(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRenderWellFormedXML(t *testing.T) {
	out := render(t, sampleChart())
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestRenderContainsSeriesAndLabels(t *testing.T) {
	out := render(t, sampleChart())
	for _, want := range []string{
		"<polyline", "EM-Ext", ">EM<", "accuracy vs n", ">n<", "accuracy",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("%d polylines, want 2", got)
	}
}

func TestRenderEscapesText(t *testing.T) {
	c := sampleChart()
	c.Title = `a < b & "c"`
	out := render(t, c)
	if strings.Contains(out, `a < b &`) {
		t.Fatal("unescaped text in SVG")
	}
	if !strings.Contains(out, "a &lt; b &amp;") {
		t.Fatal("escape output missing")
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := (&Chart{}).RenderSVG(&sb); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("want ErrNoSeries, got %v", err)
	}
	c := &Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: nil}}}
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrBadSeries) {
		t.Fatalf("want ErrBadSeries, got %v", err)
	}
	c = &Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrNotFiniteX) {
		t.Fatalf("want ErrNotFiniteX, got %v", err)
	}
	c = sampleChart()
	c.YMin, c.YMax = 1, 0.5
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrBadYRange) {
		t.Fatalf("want ErrBadYRange, got %v", err)
	}
}

func TestRenderDegenerateData(t *testing.T) {
	// Single point, constant series: must render without NaN coordinates.
	c := &Chart{Series: []Series{{Name: "dot", X: []float64{5}, Y: []float64{1}}}}
	out := render(t, c)
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
	c = &Chart{Series: []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{2, 2, 2}}}}
	out = render(t, c)
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into SVG for constant series")
	}
}

func TestRenderFixedYRange(t *testing.T) {
	c := sampleChart()
	c.YMin, c.YMax = 0, 1
	out := render(t, c)
	// The fixed [0,1] range produces a 0 tick and a 1 tick.
	if !strings.Contains(out, ">0<") || !strings.Contains(out, ">1<") {
		t.Fatalf("fixed-range ticks missing:\n%s", out)
	}
}

func TestTicks(t *testing.T) {
	got := ticks(0, 1, 6)
	if len(got) < 4 || got[0] != 0 {
		t.Fatalf("ticks(0,1) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ticks not increasing: %v", got)
		}
		if got[i] > 1+1e-9 {
			t.Fatalf("tick out of range: %v", got)
		}
	}
	got = ticks(17, 123, 8)
	for _, v := range got {
		if v < 17 || v > 123 {
			t.Fatalf("tick %v outside [17,123]", v)
		}
	}
	if got := ticks(5, 5, 6); len(got) != 1 {
		t.Fatalf("degenerate ticks = %v", got)
	}
}

func TestTickLabel(t *testing.T) {
	cases := map[float64]string{
		3:    "3",
		0.25: "0.25",
		0.1:  "0.1",
		-2:   "-2",
	}
	for v, want := range cases {
		if got := tickLabel(v); got != want {
			t.Errorf("tickLabel(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestMarkersVary(t *testing.T) {
	c := &Chart{Series: []Series{
		{Name: "a", X: []float64{1}, Y: []float64{1}},
		{Name: "b", X: []float64{1}, Y: []float64{2}},
		{Name: "c", X: []float64{1}, Y: []float64{3}},
	}}
	out := render(t, c)
	if !strings.Contains(out, "<circle") || !strings.Contains(out, "<rect x=") || !strings.Contains(out, "<polygon") {
		t.Fatal("marker shapes not varied across series")
	}
}
