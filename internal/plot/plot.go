// Package plot renders line charts as standalone SVG documents using only
// the standard library. The experiment harness uses it to regenerate the
// paper's figures as actual plots (cmd/experiments -svg), not just tables.
//
// The renderer covers what scientific line charts need and nothing more:
// margins, x/y axes with 1-2-5 tick progression, grid lines, one polyline
// with point markers per series, and a legend.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a renderable line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG dimensions in pixels (default 720×440).
	Width, Height int
	// YMin/YMax fix the y range when both are set (YMax > YMin);
	// otherwise the range is derived from the data with 5% padding.
	YMin, YMax float64
}

// Errors returned by the renderer.
var (
	ErrNoSeries   = errors.New("plot: chart has no series")
	ErrBadSeries  = errors.New("plot: series has mismatched or empty x/y")
	ErrBadYRange  = errors.New("plot: YMin/YMax invalid")
	ErrNotFiniteX = errors.New("plot: non-finite coordinate")
)

// palette holds the line colors, chosen to stay distinguishable in print.
var palette = [...]string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// markers cycle alongside colors so series stay distinguishable without
// color.
var markers = [...]string{"circle", "square", "diamond", "triangle"}

// RenderSVG writes the chart as a complete SVG document.
func (c *Chart) RenderSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return ErrNoSeries
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 440
	}
	const (
		marginLeft   = 64
		marginRight  = 160
		marginTop    = 40
		marginBottom = 52
	)
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)
	if plotW < 50 || plotH < 50 {
		return fmt.Errorf("plot: chart %dx%d too small", width, height)
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return fmt.Errorf("%w: %q has %d x and %d y", ErrBadSeries, s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if !isFinite(s.X[i]) || !isFinite(s.Y[i]) {
				return fmt.Errorf("%w: %q[%d]", ErrNotFiniteX, s.Name, i)
			}
			xMin, xMax = math.Min(xMin, s.X[i]), math.Max(xMax, s.X[i])
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		if c.YMax <= c.YMin {
			return fmt.Errorf("%w: [%v, %v]", ErrBadYRange, c.YMin, c.YMax)
		}
		yMin, yMax = c.YMin, c.YMax
	} else {
		pad := (yMax - yMin) * 0.05
		if pad == 0 {
			pad = math.Max(math.Abs(yMax)*0.05, 0.5)
		}
		yMin -= pad
		yMax += pad
	}
	if xMax == xMin {
		xMin -= 0.5
		xMax += 0.5
	}

	toX := func(v float64) float64 { return marginLeft + (v-xMin)/(xMax-xMin)*plotW }
	toY := func(v float64) float64 { return marginTop + plotH - (v-yMin)/(yMax-yMin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n",
			marginLeft, escape(c.Title))
	}

	// Grid and ticks.
	for _, t := range ticks(yMin, yMax, 6) {
		y := toY(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#e0e0e0"/>`+"\n",
			marginLeft, y, float64(marginLeft)+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-8, y+4, tickLabel(t))
	}
	for _, t := range ticks(xMin, xMax, 8) {
		x := toX(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#e0e0e0"/>`+"\n",
			x, marginTop, x, float64(marginTop)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, float64(marginTop)+plotH+16, tickLabel(t))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, float64(marginTop)+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, float64(marginTop)+plotH, float64(marginLeft)+plotW, float64(marginTop)+plotH)
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			float64(marginLeft)+plotW/2, height-10, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
			float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(c.YLabel))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts strings.Builder
		for i := range s.X {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", toX(s.X[i]), toY(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, pts.String())
		for i := range s.X {
			writeMarker(&b, markers[si%len(markers)], toX(s.X[i]), toY(s.Y[i]), color)
		}
	}

	// Legend.
	lx := marginLeft + int(plotW) + 14
	for si, s := range c.Series {
		ly := marginTop + 16 + 20*si
		color := palette[si%len(palette)]
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.8"/>`+"\n",
			lx, ly, lx+22, ly, color)
		writeMarker(&b, markers[si%len(markers)], float64(lx+11), float64(ly), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n",
			lx+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeMarker(b *strings.Builder, kind string, x, y float64, color string) {
	const r = 3.2
	switch kind {
	case "square":
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y, x, y+r+1, x-r-1, y, color)
	case "triangle":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y+r, x-r-1, y+r, color)
	default:
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
}

// ticks returns at most maxTicks nicely rounded values covering [lo, hi],
// on the classic 1-2-5 progression.
func ticks(lo, hi float64, maxTicks int) []float64 {
	if hi <= lo || maxTicks < 2 {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(maxTicks)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag <= 1:
		step = mag
	case rawStep/mag <= 2:
		step = 2 * mag
	case rawStep/mag <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var out []float64
	for v := first; v <= hi+step*1e-9; v += step {
		// Snap tiny float drift to the lattice.
		out = append(out, math.Round(v/step)*step)
	}
	return out
}

func tickLabel(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
