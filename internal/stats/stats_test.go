package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	decisions := []bool{true, true, false, false, true}
	truth := []bool{true, false, false, true, true}
	c, err := Classify(decisions, truth)
	if err != nil {
		t.Fatal(err)
	}
	if c.TruePos != 2 || c.TrueNeg != 1 || c.FalsePos != 1 || c.FalseNeg != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if math.Abs(c.Accuracy-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", c.Accuracy)
	}
	if math.Abs(c.FalsePosRate-0.2) > 1e-12 || math.Abs(c.FalseNegRate-0.2) > 1e-12 {
		t.Fatalf("rates: %+v", c)
	}
	// Accuracy identity matches the bound decomposition.
	if math.Abs(c.Accuracy+c.FalsePosRate+c.FalseNegRate-1) > 1e-12 {
		t.Fatal("accuracy + FP + FN != 1")
	}
}

func TestClassifyErrors(t *testing.T) {
	if _, err := Classify([]bool{true}, []bool{true, false}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := Classify(nil, nil); err == nil {
		t.Fatal("empty vectors accepted")
	}
}

func TestClassifyIdentity(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		d := make([]bool, n)
		tr := make([]bool, n)
		for i := range d {
			d[i] = rng.Intn(2) == 0
			tr[i] = rng.Intn(2) == 0
		}
		c, err := Classify(d, tr)
		if err != nil {
			return false
		}
		return c.TruePos+c.TrueNeg+c.FalsePos+c.FalseNeg == n &&
			math.Abs(c.Accuracy+c.FalsePosRate+c.FalseNegRate-1) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSeriesKnownValues(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance is
	// 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance())
	}
}

func TestSeriesEmptyAndSingle(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty series not zeroed")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Fatal("single-value series wrong")
	}
}

// TestSeriesMatchesNaive cross-checks Welford against the two-pass formula.
func TestSeriesMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		var s Series
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, v := range xs {
			ss += (v - mean) * (v - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-naiveVar) < 1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	d, err := MaxAbsDiff([]float64{1, 2, 3}, []float64{1.5, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("diff = %v", d)
	}
	if _, err := MaxAbsDiff([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("length mismatch accepted")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}
