// Package stats provides the evaluation metrics and aggregation helpers
// used by the experiment harness: classification accuracy with its
// false-positive/false-negative decomposition (matching the bound's
// decomposition), and running mean/deviation accumulators for repeated
// simulation runs.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Classification summarizes a truth-valued decision vector against ground
// truth. Rates are normalized by the total number of assertions, so
// Accuracy = 1 - FalsePosRate - FalseNegRate, mirroring the error bound's
// decomposition (Section V-A: "false positive bound and false negative
// bound represent the portion of error bound caused by regarding false
// assertions as true and true assertions as false").
type Classification struct {
	Accuracy     float64
	FalsePosRate float64
	FalseNegRate float64
	// Raw counts.
	TruePos, TrueNeg, FalsePos, FalseNeg int
}

// ErrLengthMismatch reports decision/truth vectors of different lengths.
var ErrLengthMismatch = errors.New("stats: decisions and truth have different lengths")

// Classify scores decisions against truth.
func Classify(decisions, truth []bool) (Classification, error) {
	if len(decisions) != len(truth) {
		return Classification{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(decisions), len(truth))
	}
	if len(truth) == 0 {
		return Classification{}, errors.New("stats: empty vectors")
	}
	var c Classification
	for j := range truth {
		switch {
		case decisions[j] && truth[j]:
			c.TruePos++
		case decisions[j] && !truth[j]:
			c.FalsePos++
		case !decisions[j] && truth[j]:
			c.FalseNeg++
		default:
			c.TrueNeg++
		}
	}
	total := float64(len(truth))
	c.Accuracy = float64(c.TruePos+c.TrueNeg) / total
	c.FalsePosRate = float64(c.FalsePos) / total
	c.FalseNegRate = float64(c.FalseNeg) / total
	return c, nil
}

// Series accumulates repeated scalar observations (one per simulation run)
// with Welford's online algorithm, so long sweeps stay numerically stable.
type Series struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (s *Series) Add(v float64) {
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the number of observations.
func (s *Series) N() int { return s.n }

// Mean returns the sample mean (0 for an empty series).
func (s *Series) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Series) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Series) Std() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Series) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (s *Series) CI95() float64 { return 1.96 * s.StdErr() }

// MaxAbsDiff returns max_i |a_i - b_i| for two equal-length float slices,
// used to report the "maximum difference between exact and approximated
// error bound" numbers of Figs. 3-5.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}
