// Package mapsort provides the sanctioned way for deterministic-zone code
// (see internal/analysis/zones) to iterate maps: extract the keys, sort
// them, range over the slice. Go randomizes map iteration order per range
// statement, so any zone package ranging a map directly is flagged by the
// maporder analyzer; calling these helpers instead keeps call sites clean
// of suppression comments.
//
// The package itself is not a deterministic zone — its single unordered
// range is immediately made deterministic by the sort that follows.
package mapsort

import (
	"cmp"
	"sort"
)

// Keys returns the map's keys in ascending order.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return cmp.Less(ks[i], ks[j]) })
	return ks
}

// KeysFunc returns the map's keys ordered by less, for key types without a
// natural order (composite keys).
func KeysFunc[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return less(ks[i], ks[j]) })
	return ks
}
