package mapsort

import (
	"sort"
	"testing"
)

func TestKeysSorted(t *testing.T) {
	m := map[int]string{9: "i", 3: "c", 7: "g", 1: "a"}
	for run := 0; run < 20; run++ {
		got := Keys(m)
		if !sort.IntsAreSorted(got) {
			t.Fatalf("Keys returned unsorted order %v", got)
		}
		if len(got) != len(m) {
			t.Fatalf("Keys returned %d keys, want %d", len(got), len(m))
		}
	}
}

func TestKeysStringOrder(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := Keys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestKeysEmptyAndNil(t *testing.T) {
	if got := Keys(map[int]int{}); len(got) != 0 {
		t.Errorf("empty map: got %v", got)
	}
	var nilMap map[int]int
	if got := Keys(nilMap); len(got) != 0 {
		t.Errorf("nil map: got %v", got)
	}
}

type pair struct{ i, j int }

func TestKeysFunc(t *testing.T) {
	m := map[pair]bool{{2, 1}: true, {1, 9}: true, {1, 2}: true, {2, 0}: true}
	less := func(a, b pair) bool {
		if a.i != b.i {
			return a.i < b.i
		}
		return a.j < b.j
	}
	want := []pair{{1, 2}, {1, 9}, {2, 0}, {2, 1}}
	for run := 0; run < 20; run++ {
		got := KeysFunc(m, less)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("KeysFunc = %v, want %v", got, want)
			}
		}
	}
}
