package cluster

import (
	"encoding/json"
	"testing"

	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

// TestIncrementalMatchesBatch is the refactor's core contract: feeding a
// stream through Add, split across arbitrary batch boundaries, yields
// exactly the assignment Cluster produces on the whole slice.
func TestIncrementalMatchesBatch(t *testing.T) {
	docs := twittersimSmall(t)
	batch := (&Leader{}).Cluster(docs)

	inc := (&Leader{}).Incremental()
	got := make([]int, len(docs))
	for d, doc := range docs {
		got[d] = inc.Add(doc)
	}
	for d := range docs {
		if got[d] != batch.Cluster[d] {
			t.Fatalf("doc %d: incremental cluster %d, batch %d", d, got[d], batch.Cluster[d])
		}
	}
	if inc.NumClusters() != batch.NumClusters {
		t.Fatalf("clusters: incremental %d, batch %d", inc.NumClusters(), batch.NumClusters)
	}
	leaders := inc.Leaders()
	for c := range leaders {
		if leaders[c] != batch.Leaders[c] {
			t.Fatalf("cluster %d leader: incremental %d, batch %d", c, leaders[c], batch.Leaders[c])
		}
	}
}

// TestIncrementalStableIDsAcrossBatches: a cluster id assigned in an early
// batch keeps meaning the same assertion for every later document.
func TestIncrementalStableIDsAcrossBatches(t *testing.T) {
	inc := (&Leader{}).Incremental()
	first := inc.Add([]string{"explosion", "bridge", "north"})
	second := inc.Add([]string{"outage", "campus", "south"})
	if first == second {
		t.Fatal("distinct documents merged")
	}
	// A later batch's near-duplicate joins the original cluster.
	if got := inc.Add([]string{"explosion", "bridge", "north", "breaking"}); got != first {
		t.Fatalf("repeat assigned to %d, want %d", got, first)
	}
	if got := inc.Add([]string{"outage", "campus", "south"}); got != second {
		t.Fatalf("repeat assigned to %d, want %d", got, second)
	}
	if inc.Docs() != 4 {
		t.Fatalf("docs = %d, want 4", inc.Docs())
	}
}

// TestAssignDoesNotMutate: Assign previews the assignment without founding
// clusters or consuming a document id.
func TestAssignDoesNotMutate(t *testing.T) {
	inc := (&Leader{}).Incremental()
	if got := inc.Assign([]string{"fresh", "tokens"}); got != -1 {
		t.Fatalf("Assign on empty state = %d, want -1", got)
	}
	if inc.NumClusters() != 0 || inc.Docs() != 0 {
		t.Fatal("Assign mutated state")
	}
	c := inc.Add([]string{"fresh", "tokens"})
	if got := inc.Assign([]string{"fresh", "tokens"}); got != c {
		t.Fatalf("Assign = %d, want %d", got, c)
	}
	if inc.Docs() != 1 {
		t.Fatalf("docs = %d, want 1", inc.Docs())
	}
}

// TestIncrementalStateRoundTrip: snapshotting mid-stream and restoring
// (through JSON, as the ingest snapshot does) continues the stream with
// assignments identical to the uninterrupted run.
func TestIncrementalStateRoundTrip(t *testing.T) {
	docs := twittersimSmall(t)
	cut := len(docs) / 2

	full := (&Leader{}).Incremental()
	want := make([]int, len(docs))
	for d, doc := range docs {
		want[d] = full.Add(doc)
	}

	half := (&Leader{}).Incremental()
	for _, doc := range docs[:cut] {
		half.Add(doc)
	}
	data, err := json.Marshal(half.State())
	if err != nil {
		t.Fatal(err)
	}
	var st IncrementalState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreIncremental(&st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Docs() != cut {
		t.Fatalf("restored docs = %d, want %d", restored.Docs(), cut)
	}
	for d := cut; d < len(docs); d++ {
		if got := restored.Add(docs[d]); got != want[d] {
			t.Fatalf("doc %d after restore: cluster %d, want %d", d, got, want[d])
		}
	}
	if restored.NumClusters() != full.NumClusters() {
		t.Fatalf("clusters after restore = %d, want %d", restored.NumClusters(), full.NumClusters())
	}
}

// TestIncrementalStateRebuildsPostingsCap: the restored inverted index
// honors the postings cap exactly as the original run did, so hub tokens
// keep generating the same (capped) candidate sets after a restart.
func TestIncrementalStateRebuildsPostingsCap(t *testing.T) {
	l := &Leader{MaxPostings: 4}
	inc := l.Incremental()
	for d := 0; d < 50; d++ {
		inc.Add([]string{"hub", token("unique", d), token("extra", d)})
	}
	restored, err := RestoreIncremental(inc.State())
	if err != nil {
		t.Fatal(err)
	}
	probe := []string{"hub", "unique49", "extra49"}
	if got, want := restored.Assign(probe), inc.Assign(probe); got != want {
		t.Fatalf("restored Assign = %d, original %d", got, want)
	}
	// Both continue identically on a fresh shared-token stream.
	for d := 0; d < 20; d++ {
		doc := []string{"hub", token("late", d)}
		if got, want := restored.Add(doc), inc.Add(doc); got != want {
			t.Fatalf("post-restore doc %d: %d vs %d", d, got, want)
		}
	}
}

func TestRestoreIncrementalRejectsBadState(t *testing.T) {
	cases := []*IncrementalState{
		nil,
		{Docs: 1, Leaders: []int{0}, LeaderTokens: nil},
		{Docs: 0, Leaders: []int{0}, LeaderTokens: [][]string{{"a"}}},
		{Docs: 2, Leaders: []int{5}, LeaderTokens: [][]string{{"a"}}},
	}
	for i, st := range cases {
		if _, err := RestoreIncremental(st); err == nil {
			t.Fatalf("case %d: bad state accepted", i)
		}
	}
}

// TestIncrementalMatchesBatchOnLargeStream exercises the equivalence on a
// generated stream with a second seed and a non-default configuration.
func TestIncrementalMatchesBatchOnLargeStream(t *testing.T) {
	sc := twittersim.Small("Kirkuk", 30)
	w, err := twittersim.Generate(sc, randutil.New(11))
	if err != nil {
		t.Fatal(err)
	}
	docs := make([][]string, len(w.Tweets))
	for i, tw := range w.Tweets {
		docs[i] = Tokenize(tw.Text)
	}
	l := &Leader{Threshold: 0.4, MaxPostings: 16}
	batch := l.Cluster(docs)
	inc := l.Incremental()
	for d, doc := range docs {
		if got := inc.Add(doc); got != batch.Cluster[d] {
			t.Fatalf("doc %d: incremental %d, batch %d", d, got, batch.Cluster[d])
		}
	}
}

func token(stem string, d int) string {
	return stem + string(rune('0'+d/10)) + string(rune('0'+d%10))
}
