package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"RT @user12: Bomb threat at Mira Costa!", []string{"bomb", "threat", "mira", "costa"}},
		{"The explosion was near THE bridge.", []string{"explosion", "near", "bridge"}},
		{"check http://t.co/abc now now now", []string{"check", "now"}},
		{"", nil},
		{"rt rt RT", nil},
		{"...!!!", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestTokenizeDeduplicates(t *testing.T) {
	got := Tokenize("fire fire fire alarm")
	if len(got) != 2 {
		t.Fatalf("tokens = %v", got)
	}
}

func TestRetweetClustersWithOriginal(t *testing.T) {
	original := "witness3 reported explosion near bridge7 #paris"
	retweet := "rt @user55: witness3 reported explosion near bridge7 #paris"
	other := "official9 denied outage near campus2 #paris"

	l := &Leader{}
	docs := [][]string{Tokenize(original), Tokenize(retweet), Tokenize(other)}
	a := l.Cluster(docs)
	if a.Cluster[0] != a.Cluster[1] {
		t.Fatal("retweet not clustered with its original")
	}
	if a.Cluster[2] == a.Cluster[0] {
		t.Fatal("unrelated tweet merged")
	}
	if a.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", a.NumClusters)
	}
}

func TestLeadersRecorded(t *testing.T) {
	l := &Leader{}
	a := l.Cluster([][]string{
		{"alpha", "beta", "gamma"},
		{"alpha", "beta", "gamma", "delta"},
		{"omega", "psi", "chi"},
	})
	if len(a.Leaders) != a.NumClusters {
		t.Fatalf("leaders %d vs clusters %d", len(a.Leaders), a.NumClusters)
	}
	if a.Leaders[0] != 0 || a.Leaders[1] != 2 {
		t.Fatalf("leaders = %v", a.Leaders)
	}
}

func TestThresholdControlsMerging(t *testing.T) {
	// 3 of 5 shared tokens: Jaccard = 3/7 ≈ 0.43.
	a := []string{"t1", "t2", "t3", "x1", "x2"}
	b := []string{"t1", "t2", "t3", "y1", "y2"}
	strict := &Leader{Threshold: 0.5}
	if got := strict.Cluster([][]string{a, b}); got.NumClusters != 2 {
		t.Fatal("0.43 similarity merged at threshold 0.5")
	}
	loose := &Leader{Threshold: 0.4}
	if got := loose.Cluster([][]string{a, b}); got.NumClusters != 1 {
		t.Fatal("0.43 similarity not merged at threshold 0.4")
	}
}

func TestEmptyDocuments(t *testing.T) {
	l := &Leader{}
	a := l.Cluster([][]string{nil, {"word"}, nil})
	if len(a.Cluster) != 3 {
		t.Fatalf("assignments = %v", a.Cluster)
	}
	// Empty docs cannot share tokens; each becomes its own cluster.
	if a.Cluster[0] == a.Cluster[1] || a.Cluster[0] == a.Cluster[2] {
		t.Fatalf("empty docs merged: %v", a.Cluster)
	}
}

func TestClusterAssignmentsComplete(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		docs := make([][]string, 30)
		for d := range docs {
			n := int(seed>>uint(d%8))%4 + 1
			for k := 0; k < n; k++ {
				docs[d] = append(docs[d], fmt.Sprintf("tok%d", (int(seed)+d*k)%17))
			}
		}
		a := (&Leader{}).Cluster(docs)
		if len(a.Cluster) != len(docs) {
			return false
		}
		for _, c := range a.Cluster {
			if c < 0 || c >= a.NumClusters {
				return false
			}
		}
		// Every cluster id must be used.
		used := make([]bool, a.NumClusters)
		for _, c := range a.Cluster {
			used[c] = true
		}
		for _, u := range used {
			if !u {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxPostingsStopsHubTokens(t *testing.T) {
	// 300 docs sharing one hub token plus a unique token each: with a tiny
	// postings cap the clusterer must still terminate and produce 300
	// singleton clusters (hub token alone is below threshold anyway).
	docs := make([][]string, 300)
	for d := range docs {
		docs[d] = []string{"hub", fmt.Sprintf("unique%d", d), fmt.Sprintf("extra%d", d)}
	}
	a := (&Leader{MaxPostings: 4}).Cluster(docs)
	if a.NumClusters != 300 {
		t.Fatalf("clusters = %d, want 300", a.NumClusters)
	}
}

func TestMinHashMatchesLeaderOnRetweets(t *testing.T) {
	original := "witness3 reported explosion near bridge7 #paris"
	retweet := "rt @user55: witness3 reported explosion near bridge7 #paris"
	other := "official9 denied outage near campus2 #paris"
	docs := [][]string{Tokenize(original), Tokenize(retweet), Tokenize(other)}
	a := (&MinHash{}).Cluster(docs)
	if a.Cluster[0] != a.Cluster[1] {
		t.Fatal("retweet not clustered with its original")
	}
	if a.Cluster[2] == a.Cluster[0] {
		t.Fatal("unrelated tweet merged")
	}
}

func TestMinHashAgreementWithLeader(t *testing.T) {
	sc := twittersimSmall(t)
	leader := (&Leader{}).Cluster(sc)
	minhash := (&MinHash{}).Cluster(sc)
	// Pairwise agreement: two docs co-clustered under one method should
	// mostly be co-clustered under the other. Sample pairs within leader
	// clusters.
	agree, total := 0, 0
	byCluster := map[int][]int{}
	for d, c := range leader.Cluster {
		byCluster[c] = append(byCluster[c], d)
	}
	for _, members := range byCluster {
		for k := 1; k < len(members); k++ {
			total++
			if minhash.Cluster[members[0]] == minhash.Cluster[members[k]] {
				agree++
			}
		}
	}
	if total == 0 {
		t.Skip("no multi-document clusters")
	}
	rate := float64(agree) / float64(total)
	if rate < 0.9 {
		t.Fatalf("minhash co-clusters only %.2f of leader pairs", rate)
	}
}

func TestMinHashDeterministic(t *testing.T) {
	docs := twittersimSmall(t)
	a := (&MinHash{Seed: 5}).Cluster(docs)
	b := (&MinHash{Seed: 5}).Cluster(docs)
	for d := range a.Cluster {
		if a.Cluster[d] != b.Cluster[d] {
			t.Fatal("same seed, different clustering")
		}
	}
}

func TestMinHashEmptyDocs(t *testing.T) {
	a := (&MinHash{}).Cluster([][]string{nil, {"word"}, nil})
	if len(a.Cluster) != 3 || a.NumClusters < 2 {
		t.Fatalf("assignment = %+v", a)
	}
}

func TestMinHashBadBandsFallsBack(t *testing.T) {
	// Hashes not divisible by Bands must not panic.
	a := (&MinHash{Hashes: 10, Bands: 16}).Cluster([][]string{{"a", "b"}, {"a", "b"}})
	if a.Cluster[0] != a.Cluster[1] {
		t.Fatal("identical docs split")
	}
}

// twittersimSmall tokenizes a small simulated stream for cross-method tests.
func twittersimSmall(t *testing.T) [][]string {
	t.Helper()
	sc := twittersim.Small("Ukraine", 20)
	w, err := twittersim.Generate(sc, randutil.New(3))
	if err != nil {
		t.Fatal(err)
	}
	docs := make([][]string, len(w.Tweets))
	for i, tw := range w.Tweets {
		docs[i] = Tokenize(tw.Text)
	}
	return docs
}

// TestClusterStableAcrossRuns is the regression test for the map-iteration
// fix in Leader.Cluster: documents engineered to tie on Jaccard similarity
// between two clusters must land in the same cluster on every run. Before
// the fix, candidate clusters were scanned in map order, so the winner of a
// tie depended on Go's randomized map iteration.
func TestClusterStableAcrossRuns(t *testing.T) {
	// Leaders l1 = {a, b, x} and l2 = {a, b, y}; the probe {a, b} has
	// Jaccard 2/3 with both, an exact tie. The contract: lowest cluster
	// id wins.
	docs := [][]string{
		{"a", "b", "x"},
		{"a", "b", "y"},
		{"a", "b"},
	}
	l := &Leader{Threshold: 0.5}
	first := l.Cluster(docs)
	if first.Cluster[2] != 0 {
		t.Fatalf("tie broke to cluster %d, want lowest id 0", first.Cluster[2])
	}
	for run := 0; run < 50; run++ {
		got := l.Cluster(docs)
		for d := range docs {
			if got.Cluster[d] != first.Cluster[d] {
				t.Fatalf("run %d: doc %d assigned to %d, first run said %d",
					run, d, got.Cluster[d], first.Cluster[d])
			}
		}
	}
}
