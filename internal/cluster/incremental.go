package cluster

import (
	"fmt"
	"sort"
)

// Incremental is the stateful form of Leader: documents arrive one at a
// time via Add, cluster ids are stable across calls (and hence across
// batches — cluster c keeps meaning the same assertion forever), and the
// whole state round-trips through State/RestoreIncremental so a long-lived
// ingestion service can snapshot its assertion extraction and restart warm.
//
// Leader.Cluster is reimplemented on top of this type, so the batch path
// and the incremental path are the same algorithm by construction: feeding
// a document stream through Add in order yields exactly the assignment
// Cluster would have produced on the concatenated slice.
type Incremental struct {
	threshold   float64
	maxPostings int

	// index is the inverted token index: token -> cluster ids whose leader
	// contains it, in cluster-creation order, capped at maxPostings.
	index        map[string][]int
	leaderTokens [][]string
	leaders      []int
	docs         int

	counts map[int]int // scratch: candidate cluster -> shared tokens
	cands  []int       // scratch: candidate ids in first-seen order
}

// Incremental returns a fresh incremental clusterer with the Leader's
// threshold and postings cap (defaults applied as in Cluster).
func (l *Leader) Incremental() *Incremental {
	threshold := l.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	maxPostings := l.MaxPostings
	if maxPostings <= 0 {
		maxPostings = 128
	}
	return &Incremental{
		threshold:   threshold,
		maxPostings: maxPostings,
		index:       make(map[string][]int),
		counts:      make(map[int]int),
		cands:       make([]int, 0, 64),
	}
}

// NumClusters returns the number of clusters created so far.
func (inc *Incremental) NumClusters() int { return len(inc.leaderTokens) }

// Docs returns the number of documents consumed so far. Document ids are
// assigned sequentially, so the next Add processes document Docs().
func (inc *Incremental) Docs() int { return inc.docs }

// Leaders returns a copy of the founding document id per cluster.
func (inc *Incremental) Leaders() []int {
	return append([]int(nil), inc.leaders...)
}

// Assign returns the cluster the document would join, without mutating any
// state: the best existing cluster at least threshold-similar, or -1 when
// the document would found a new cluster.
func (inc *Incremental) Assign(doc []string) int {
	return inc.bestCluster(doc)
}

// Add assigns the document to a cluster, founding a new one when no
// existing cluster is at least threshold-similar, and returns its id.
func (inc *Incremental) Add(doc []string) int {
	best := inc.bestCluster(doc)
	if best < 0 {
		best = len(inc.leaderTokens)
		inc.leaders = append(inc.leaders, inc.docs)
		inc.leaderTokens = append(inc.leaderTokens, doc)
		for _, tok := range doc {
			if len(inc.index[tok]) < inc.maxPostings {
				inc.index[tok] = append(inc.index[tok], best)
			}
		}
	}
	inc.docs++
	return best
}

// bestCluster scans the inverted index for the most similar existing
// cluster above the threshold, ties broken toward the lowest cluster id.
func (inc *Incremental) bestCluster(doc []string) int {
	clear(inc.counts)
	inc.cands = inc.cands[:0]
	for _, tok := range doc {
		for _, c := range inc.index[tok] {
			if inc.counts[c] == 0 {
				inc.cands = append(inc.cands, c)
			}
			inc.counts[c]++
		}
	}
	// Scan candidates in sorted id order, never map order, so the winner
	// on Jaccard ties is reproducibly the lowest cluster id.
	sort.Ints(inc.cands)
	best, bestSim := -1, inc.threshold
	for _, c := range inc.cands {
		shared := inc.counts[c]
		// Jaccard from intersection size and set sizes.
		union := len(doc) + len(inc.leaderTokens[c]) - shared
		if union == 0 {
			continue
		}
		sim := float64(shared) / float64(union)
		if sim > bestSim {
			best, bestSim = c, sim
		}
	}
	return best
}

// IncrementalState is the serializable snapshot of an Incremental. The
// inverted index is not stored: it is a deterministic function of the
// leader token sets (postings are appended in cluster-creation order, then
// per-leader token order, capped at MaxPostings), so RestoreIncremental
// rebuilds it exactly.
type IncrementalState struct {
	Threshold    float64    `json:"threshold"`
	MaxPostings  int        `json:"maxPostings"`
	Docs         int        `json:"docs"`
	Leaders      []int      `json:"leaders"`
	LeaderTokens [][]string `json:"leaderTokens"`
}

// State captures the clusterer's current state for persistence.
func (inc *Incremental) State() *IncrementalState {
	tokens := make([][]string, len(inc.leaderTokens))
	for c, toks := range inc.leaderTokens {
		tokens[c] = append([]string(nil), toks...)
	}
	return &IncrementalState{
		Threshold:    inc.threshold,
		MaxPostings:  inc.maxPostings,
		Docs:         inc.docs,
		Leaders:      append([]int(nil), inc.leaders...),
		LeaderTokens: tokens,
	}
}

// RestoreIncremental rebuilds an Incremental from a persisted state,
// including the inverted index, so continuing the stream after a restart
// produces exactly the assignments an uninterrupted run would have.
func RestoreIncremental(st *IncrementalState) (*Incremental, error) {
	if st == nil {
		return nil, fmt.Errorf("cluster: nil incremental state")
	}
	if len(st.Leaders) != len(st.LeaderTokens) {
		return nil, fmt.Errorf("cluster: state has %d leaders but %d token sets",
			len(st.Leaders), len(st.LeaderTokens))
	}
	if st.Docs < len(st.Leaders) {
		return nil, fmt.Errorf("cluster: state has %d docs but %d clusters", st.Docs, len(st.Leaders))
	}
	l := &Leader{Threshold: st.Threshold, MaxPostings: st.MaxPostings}
	inc := l.Incremental()
	inc.docs = st.Docs
	inc.leaders = append([]int(nil), st.Leaders...)
	inc.leaderTokens = make([][]string, len(st.LeaderTokens))
	for c, toks := range st.LeaderTokens {
		if st.Leaders[c] < 0 || st.Leaders[c] >= st.Docs {
			return nil, fmt.Errorf("cluster: leader doc %d of cluster %d out of range [0,%d)",
				st.Leaders[c], c, st.Docs)
		}
		inc.leaderTokens[c] = append([]string(nil), toks...)
		for _, tok := range inc.leaderTokens[c] {
			if len(inc.index[tok]) < inc.maxPostings {
				inc.index[tok] = append(inc.index[tok], c)
			}
		}
	}
	return inc, nil
}
