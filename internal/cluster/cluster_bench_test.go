package cluster

import (
	"fmt"
	"testing"

	"depsense/internal/randutil"
	"depsense/internal/twittersim"
)

// BenchmarkLeaderCluster measures clustering throughput on simulated tweet
// streams of increasing volume.
func BenchmarkLeaderCluster(b *testing.B) {
	for _, scale := range []int{40, 10, 4} {
		sc := twittersim.Small("Paris Attack", scale)
		w, err := twittersim.Generate(sc, randutil.New(1))
		if err != nil {
			b.Fatal(err)
		}
		docs := make([][]string, len(w.Tweets))
		for i, t := range w.Tweets {
			docs[i] = Tokenize(t.Text)
		}
		b.Run(fmt.Sprintf("tweets=%d", len(docs)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				(&Leader{}).Cluster(docs)
			}
		})
	}
}

// BenchmarkTokenize measures tokenization of a typical retweet.
func BenchmarkTokenize(b *testing.B) {
	const tweet = "rt @user8812: breaking witness12 reported explosion near bridge7 n412 #paris http://t.co/abc123"
	for i := 0; i < b.N; i++ {
		Tokenize(tweet)
	}
}

// BenchmarkMinHashCluster measures the LSH clusterer on the same streams as
// BenchmarkLeaderCluster.
func BenchmarkMinHashCluster(b *testing.B) {
	for _, scale := range []int{40, 10, 4} {
		sc := twittersim.Small("Paris Attack", scale)
		w, err := twittersim.Generate(sc, randutil.New(1))
		if err != nil {
			b.Fatal(err)
		}
		docs := make([][]string, len(w.Tweets))
		for i, t := range w.Tweets {
			docs[i] = Tokenize(t.Text)
		}
		b.Run(fmt.Sprintf("tweets=%d", len(docs)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				(&MinHash{}).Cluster(docs)
			}
		})
	}
}
