package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Clusterer groups tokenized documents into assertions. Leader and MinHash
// both implement it; the Apollo pipeline accepts either.
type Clusterer interface {
	Cluster(docs [][]string) Assignment
}

var (
	_ Clusterer = (*Leader)(nil)
	_ Clusterer = (*MinHash)(nil)
)

// MinHash is an LSH-accelerated leader clusterer: each document gets a
// minhash signature, banded into LSH buckets; a new document only compares
// (exact Jaccard, against the founding document) with clusters sharing at
// least one band. Compared to Leader's inverted token index, candidate
// generation cost is independent of token document frequency, which keeps
// throughput stable on streams dominated by a few hub tokens.
type MinHash struct {
	// Threshold is the minimum Jaccard similarity for joining a cluster
	// (default 0.5).
	Threshold float64
	// Hashes is the signature length (default 64).
	Hashes int
	// Bands is the number of LSH bands (default 16; Hashes must be
	// divisible by Bands). With r = Hashes/Bands rows per band, the
	// candidate-recall curve is 1-(1-s^r)^Bands for similarity s.
	Bands int
	// Seed perturbs the hash family.
	Seed uint64
}

// Cluster implements Clusterer.
func (mh *MinHash) Cluster(docs [][]string) Assignment {
	threshold := mh.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	hashes := mh.Hashes
	if hashes <= 0 {
		hashes = 64
	}
	bands := mh.Bands
	if bands <= 0 || hashes%bands != 0 {
		bands = 16
		if hashes%bands != 0 {
			bands = 1
		}
	}
	rows := hashes / bands

	assign := Assignment{Cluster: make([]int, len(docs))}
	leaderTokens := make([]map[string]struct{}, 0)
	// buckets[b] maps a band key to the clusters whose leader hashed there.
	buckets := make([]map[uint64][]int, bands)
	for b := range buckets {
		buckets[b] = make(map[uint64][]int)
	}

	sig := make([]uint64, hashes)
	bandKeys := make([]uint64, bands)
	seen := make(map[int]struct{}, 8)

	for d, doc := range docs {
		mh.signature(doc, sig)
		for b := 0; b < bands; b++ {
			bandKeys[b] = bandKey(sig[b*rows:(b+1)*rows], uint64(b))
		}

		clear(seen)
		best, bestSim := -1, threshold
		for b := 0; b < bands; b++ {
			for _, c := range buckets[b][bandKeys[b]] {
				if _, dup := seen[c]; dup {
					continue
				}
				seen[c] = struct{}{}
				sim := jaccard(doc, leaderTokens[c])
				if sim > bestSim || (sim == bestSim && best >= 0 && c < best) {
					best, bestSim = c, sim
				}
			}
		}
		if best < 0 {
			best = assign.NumClusters
			assign.NumClusters++
			assign.Leaders = append(assign.Leaders, d)
			set := make(map[string]struct{}, len(doc))
			for _, tok := range doc {
				set[tok] = struct{}{}
			}
			leaderTokens = append(leaderTokens, set)
			for b := 0; b < bands; b++ {
				buckets[b][bandKeys[b]] = append(buckets[b][bandKeys[b]], best)
			}
		}
		assign.Cluster[d] = best
	}
	return assign
}

// signature fills sig with the document's minhash values. An empty
// document gets a degenerate all-max signature, which collides only with
// other empty documents.
func (mh *MinHash) signature(doc []string, sig []uint64) {
	for k := range sig {
		sig[k] = math.MaxUint64
	}
	for _, tok := range doc {
		base := tokenHash(tok, mh.Seed)
		// One strong base hash per token, expanded into the hash family by
		// multiply-xor mixing — the standard "one permutation per affine
		// remix" construction.
		h := base
		for k := range sig {
			h = (h ^ uint64(k+1)*0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
			h ^= h >> 31
			if h < sig[k] {
				sig[k] = h
			}
		}
	}
}

func tokenHash(tok string, seed uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(tok))
	return h.Sum64()
}

func bandKey(rows []uint64, band uint64) uint64 {
	h := band*0x9e3779b97f4a7c15 + 0x85ebca6b
	for _, v := range rows {
		h ^= v
		h *= 0xc2b2ae3d27d4eb4f
		h ^= h >> 29
	}
	return h
}

// jaccard computes exact Jaccard similarity between a token slice and a
// token set.
func jaccard(doc []string, set map[string]struct{}) float64 {
	if len(doc) == 0 && len(set) == 0 {
		return 1
	}
	shared := 0
	for _, tok := range doc {
		if _, ok := set[tok]; ok {
			shared++
		}
	}
	union := len(doc) + len(set) - shared
	if union == 0 {
		return 0
	}
	return float64(shared) / float64(union)
}
