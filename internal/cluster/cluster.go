// Package cluster groups near-duplicate short texts (tweets) into
// assertions, the extraction step the paper inherits from the Apollo
// fact-finding tool. It implements single-pass leader clustering over token
// sets with Jaccard similarity, accelerated by an inverted token index so
// only clusters sharing at least one token with the incoming document are
// considered.
package cluster

import (
	"strings"
)

// Tokenize normalizes tweet text into a deduplicated token set: lowercase,
// punctuation-stripped, with retweet markers ("rt"), @-mentions, URLs, and
// common stopwords removed. These are exactly the elements that vary
// between a claim and its repeats, so removing them lets a retweet cluster
// with its original.
func Tokenize(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	seen := make(map[string]struct{}, len(fields))
	tokens := make([]string, 0, len(fields))
	for _, f := range fields {
		f = strings.Trim(f, ".,!?;:'\"()[]{}…—-")
		switch {
		case f == "" || f == "rt":
			continue
		case strings.HasPrefix(f, "@"):
			continue
		case strings.HasPrefix(f, "http://") || strings.HasPrefix(f, "https://"):
			continue
		case stopwords[f]:
			continue
		}
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		tokens = append(tokens, f)
	}
	return tokens
}

var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true, "was": true,
	"were": true, "be": true, "been": true, "to": true, "of": true, "in": true,
	"on": true, "at": true, "and": true, "or": true, "it": true, "its": true,
	"this": true, "that": true, "with": true, "for": true, "by": true,
	"from": true, "as": true, "has": true, "have": true, "had": true,
	"i": true, "we": true, "you": true, "they": true, "he": true, "she": true,
}

// Leader is a single-pass leader clusterer: each document joins the best
// existing cluster whose centroid token set is at least Threshold-similar
// (Jaccard), otherwise it founds a new cluster. The centroid is the
// founding document's token set — cheap, deterministic, and faithful to
// Apollo's streaming design.
type Leader struct {
	// Threshold is the minimum Jaccard similarity for joining a cluster
	// (default 0.5).
	Threshold float64
	// MaxPostings caps the inverted-index list per token (default 128).
	// Tokens contained in more clusters than this are treated as
	// non-discriminative and stop generating candidates — the standard
	// stop-token defense that keeps a 40k-tweet stream from degenerating
	// into all-pairs comparison through one shared hashtag. The shared
	// token still undercounts intersections slightly for such tokens,
	// which is the accepted trade-off.
	MaxPostings int
}

// Assignment is the clustering output.
type Assignment struct {
	// Cluster[d] is the cluster id of document d.
	Cluster []int
	// NumClusters is the number of clusters created.
	NumClusters int
	// Leaders[c] is the founding document id of cluster c.
	Leaders []int
}

// Cluster assigns every tokenized document to a cluster. It is the batch
// form of the incremental API: feeding the documents through
// Incremental.Add in order (see incremental.go), so batch callers and the
// streaming ingestion service share one clustering algorithm.
func (l *Leader) Cluster(docs [][]string) Assignment {
	inc := l.Incremental()
	assign := Assignment{Cluster: make([]int, len(docs))}
	for d, doc := range docs {
		assign.Cluster[d] = inc.Add(doc)
	}
	assign.NumClusters = inc.NumClusters()
	assign.Leaders = inc.Leaders()
	return assign
}
