// Package cluster groups near-duplicate short texts (tweets) into
// assertions, the extraction step the paper inherits from the Apollo
// fact-finding tool. It implements single-pass leader clustering over token
// sets with Jaccard similarity, accelerated by an inverted token index so
// only clusters sharing at least one token with the incoming document are
// considered.
package cluster

import (
	"sort"
	"strings"
)

// Tokenize normalizes tweet text into a deduplicated token set: lowercase,
// punctuation-stripped, with retweet markers ("rt"), @-mentions, URLs, and
// common stopwords removed. These are exactly the elements that vary
// between a claim and its repeats, so removing them lets a retweet cluster
// with its original.
func Tokenize(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	seen := make(map[string]struct{}, len(fields))
	tokens := make([]string, 0, len(fields))
	for _, f := range fields {
		f = strings.Trim(f, ".,!?;:'\"()[]{}…—-")
		switch {
		case f == "" || f == "rt":
			continue
		case strings.HasPrefix(f, "@"):
			continue
		case strings.HasPrefix(f, "http://") || strings.HasPrefix(f, "https://"):
			continue
		case stopwords[f]:
			continue
		}
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		tokens = append(tokens, f)
	}
	return tokens
}

var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true, "was": true,
	"were": true, "be": true, "been": true, "to": true, "of": true, "in": true,
	"on": true, "at": true, "and": true, "or": true, "it": true, "its": true,
	"this": true, "that": true, "with": true, "for": true, "by": true,
	"from": true, "as": true, "has": true, "have": true, "had": true,
	"i": true, "we": true, "you": true, "they": true, "he": true, "she": true,
}

// Leader is a single-pass leader clusterer: each document joins the best
// existing cluster whose centroid token set is at least Threshold-similar
// (Jaccard), otherwise it founds a new cluster. The centroid is the
// founding document's token set — cheap, deterministic, and faithful to
// Apollo's streaming design.
type Leader struct {
	// Threshold is the minimum Jaccard similarity for joining a cluster
	// (default 0.5).
	Threshold float64
	// MaxPostings caps the inverted-index list per token (default 128).
	// Tokens contained in more clusters than this are treated as
	// non-discriminative and stop generating candidates — the standard
	// stop-token defense that keeps a 40k-tweet stream from degenerating
	// into all-pairs comparison through one shared hashtag. The shared
	// token still undercounts intersections slightly for such tokens,
	// which is the accepted trade-off.
	MaxPostings int
}

// Assignment is the clustering output.
type Assignment struct {
	// Cluster[d] is the cluster id of document d.
	Cluster []int
	// NumClusters is the number of clusters created.
	NumClusters int
	// Leaders[c] is the founding document id of cluster c.
	Leaders []int
}

// Cluster assigns every tokenized document to a cluster.
func (l *Leader) Cluster(docs [][]string) Assignment {
	threshold := l.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	maxPostings := l.MaxPostings
	if maxPostings <= 0 {
		maxPostings = 128
	}
	assign := Assignment{Cluster: make([]int, len(docs))}
	// Inverted index: token -> cluster ids whose leader contains it.
	index := make(map[string][]int)
	leaderTokens := make([][]string, 0)
	counts := make(map[int]int) // scratch: candidate cluster -> shared tokens
	cands := make([]int, 0, 64) // scratch: candidate ids in first-seen order

	for d, doc := range docs {
		clear(counts)
		cands = cands[:0]
		for _, tok := range doc {
			for _, c := range index[tok] {
				if counts[c] == 0 {
					cands = append(cands, c)
				}
				counts[c]++
			}
		}
		// Scan candidates in sorted id order, never map order, so the
		// winner on Jaccard ties is reproducibly the lowest cluster id.
		sort.Ints(cands)
		best, bestSim := -1, threshold
		for _, c := range cands {
			shared := counts[c]
			// Jaccard from intersection size and set sizes.
			union := len(doc) + len(leaderTokens[c]) - shared
			if union == 0 {
				continue
			}
			sim := float64(shared) / float64(union)
			if sim > bestSim {
				best, bestSim = c, sim
			}
		}
		if best < 0 {
			best = assign.NumClusters
			assign.NumClusters++
			assign.Leaders = append(assign.Leaders, d)
			leaderTokens = append(leaderTokens, doc)
			for _, tok := range doc {
				if len(index[tok]) < maxPostings {
					index[tok] = append(index[tok], best)
				}
			}
		}
		assign.Cluster[d] = best
	}
	return assign
}
