// Package httpapi exposes the fact-finding pipeline as a small HTTP
// service: POST a message stream, get back ranked assertions with
// credibility scores. It exists for deployments that want Apollo-style
// fact-finding behind a network interface rather than a CLI.
//
// Endpoints:
//
//	GET  /healthz         — liveness probe
//	GET  /v1/algorithms   — the available fact-finder names
//	POST /v1/factfind     — run the pipeline; see Request/Response
//	GET  /metrics         — Prometheus text exposition (unless disabled)
//	GET  /debug/runs      — flight-recorder index (recent run traces)
//	GET  /debug/runs/{id} — one run's full trace JSON
//
// Every endpoint runs behind the request middleware: per-endpoint
// request/status counters, latency histograms, an in-flight gauge, and
// request-id-tagged slog access logs. /v1/factfind additionally attaches an
// obs.HookExporter to the request context, so estimator iteration records
// (EM iterations, heuristic rounds) land in the same registry the /metrics
// endpoint serves — composed via runctx.MultiHook with a trace.Builder hook
// that records the same iterations, plus the pipeline stage timings, into a
// per-request trace. Finished traces land in an in-memory flight recorder
// (bounded rings of recent completed and failed runs, served by the /debug
// endpoints) and, when Options.TraceDir is set, are appended to a JSONL
// spill file for post-mortem analysis with cmd/sstrace.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/core"
	"depsense/internal/depgraph"
	"depsense/internal/factfind"
	"depsense/internal/obs"
	"depsense/internal/runctx"
	"depsense/internal/trace"
	"depsense/internal/tweetjson"
)

// Options tunes the server.
type Options struct {
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// DefaultTopK is the ranked output size when the request does not set
	// one (default 100).
	DefaultTopK int
	// Seed drives the estimators' initialization.
	Seed int64
	// ComputeTimeout bounds the pipeline compute per request (0 = no
	// limit). Requests that exceed it get a 503 with the progress the
	// estimator made before the deadline.
	ComputeTimeout time.Duration
	// Workers bounds the intra-request estimator parallelism (EM restart
	// fan-out). Results are bit-for-bit identical at any value; 0 or 1 runs
	// serial.
	Workers int
	// Metrics receives the server's telemetry and backs the /metrics
	// endpoint; nil creates a private registry (retrievable with
	// Server.Metrics).
	Metrics *obs.Registry
	// DisableMetrics removes the /metrics endpoint. Telemetry is still
	// recorded into the registry for programmatic access.
	DisableMetrics bool
	// Logger receives request-id-tagged access logs; nil discards them.
	Logger *slog.Logger
	// Clock supplies request/latency timestamps; nil means the wall
	// clock. Injected so middleware accounting is testable.
	Clock func() time.Time
	// TraceBuffer sets how many completed run traces the flight recorder
	// retains (failed/cancelled runs get an additional quarter-sized ring of
	// their own, at least trace.DefaultFailed). 0 selects
	// trace.DefaultCompleted.
	TraceBuffer int
	// TraceDir, when non-empty, appends every finished run trace to
	// TraceDir/traces.jsonl — the post-mortem spill read by cmd/sstrace.
	// The directory must exist; write failures are logged, never fatal.
	TraceDir string
}

// Server is the HTTP facade over the Apollo pipeline.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	reg     *obs.Registry
	log     *slog.Logger
	clock   func() time.Time
	mw      *Middleware
	flight  *trace.FlightRecorder
	spillMu sync.Mutex // serializes appends to TraceDir/traces.jsonl
}

var _ http.Handler = (*Server)(nil)

// New builds the server.
func New(opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	if opts.DefaultTopK <= 0 {
		opts.DefaultTopK = 100
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := opts.Logger
	if log == nil {
		log = discardLogger()
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{opts: opts, mux: http.NewServeMux(), reg: reg, log: log, clock: clock,
		mw: NewMiddleware(reg, log, clock)}
	s.flight = trace.NewFlightRecorder(opts.TraceBuffer, traceFailedRetention(opts.TraceBuffer))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/v1/algorithms", s.instrument("/v1/algorithms", s.handleAlgorithms))
	s.mux.HandleFunc("/v1/factfind", s.instrument("/v1/factfind", s.handleFactFind))
	s.mux.HandleFunc("/debug/runs", s.instrument("/debug/runs", s.handleRunsIndex))
	s.mux.HandleFunc("/debug/runs/{id}", s.instrument("/debug/runs/{id}", s.handleRunByID))
	if !opts.DisableMetrics {
		s.mux.HandleFunc("/metrics", s.instrument("/metrics", reg.Handler().ServeHTTP))
	}
	return s
}

// Metrics returns the server's registry, for callers that want to render or
// extend it themselves (ssserve, tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Message is one input message.
type Message struct {
	// Source is the author's dense id in [0, Sources).
	Source int `json:"source"`
	// Time orders messages (any monotone integer scale).
	Time int64 `json:"time"`
	// Text is the message body.
	Text string `json:"text"`
}

// Request is the /v1/factfind payload.
type Request struct {
	// Sources is the source id space size. Ignored (derived) for
	// format "twitter-json".
	Sources int `json:"sources"`
	// Follows lists [follower, followee] pairs.
	Follows [][2]int `json:"follows"`
	// Messages is the stream, for the default format.
	Messages []Message `json:"messages"`
	// Archive carries a raw Twitter v1.1 archive (JSONL or array) when
	// Format is "twitter-json".
	Archive string `json:"archive,omitempty"`
	// Format selects the input format: "" (messages) or "twitter-json".
	Format string `json:"format,omitempty"`
	// Algorithm names the fact-finder (default "EM-Ext").
	Algorithm string `json:"algorithm,omitempty"`
	// TopK bounds the ranked output.
	TopK int `json:"topK,omitempty"`
}

// RankedAssertion is one output row.
type RankedAssertion struct {
	Assertion int     `json:"assertion"`
	Posterior float64 `json:"posterior"`
	Text      string  `json:"text"`
	Claims    int     `json:"claims"`
	Dependent int     `json:"dependentClaims"`
}

// Response is the /v1/factfind result.
type Response struct {
	Algorithm  string `json:"algorithm"`
	Sources    int    `json:"sources"`
	Assertions int    `json:"assertions"`
	Claims     int    `json:"claims"`
	Dependent  int    `json:"dependentClaims"`
	Converged  bool   `json:"converged"`
	Iterations int    `json:"iterations"`
	// Stopped is the run's stop reason: "converged", "iteration-cap",
	// "cancelled", or "deadline".
	Stopped string `json:"stopped,omitempty"`
	// TraceID names the run trace retained by the flight recorder; fetch the
	// full record at /debug/runs/{traceID}.
	TraceID string            `json:"traceID,omitempty"`
	Ranked  []RankedAssertion `json:"ranked"`
}

type apiError struct {
	Error string `json:"error"`
	// Stopped distinguishes compute-budget failures ("deadline",
	// "cancelled") from estimator failures (empty).
	Stopped string `json:"stopped,omitempty"`
	// Iterations reports the progress made before a compute-budget
	// failure.
	Iterations int `json:"iterations,omitempty"`
	// TraceID names the run trace retained by the flight recorder, when the
	// failure happened after compute started; the post-mortem record lives at
	// /debug/runs/{traceID}.
	TraceID string `json:"traceID,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}`))
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	names := make([]string, 0, 9)
	for _, alg := range baselines.Extended(s.opts.Seed) {
		names = append(names, alg.Name())
	}
	writeJSON(w, http.StatusOK, map[string][]string{"algorithms": names})
}

func (s *Server) handleFactFind(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req Request
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// An oversized body is the client exceeding the configured limit,
		// not a malformed payload: report 413 with the limit, not a
		// generic 400.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}

	in, err := s.buildInput(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	finder := pickAlgorithm(req.Algorithm, core.Options{Seed: s.opts.Seed, Workers: s.opts.Workers})
	if finder == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", req.Algorithm))
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = s.opts.DefaultTopK
	}
	ctx := r.Context()
	if s.opts.ComputeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.ComputeTimeout)
		defer cancel()
	}
	// Estimator telemetry: one metrics exporter plus one trace recorder per
	// request, composed with MultiHook and serialized so parallel compute
	// paths (EM restart fan-out at Workers > 1) never fire them
	// concurrently — counter values and traces stay identical at any worker
	// count.
	tb := s.newRunTrace(r, finder.Name())
	ctx = runctx.WithHook(ctx, runctx.MultiHook(obs.HookExporter(s.reg), tb.Hook()))
	ctx = runctx.WithSerializedHook(ctx)
	out, err := apollo.RunContext(ctx, in, finder, apollo.Options{TopK: topK, Clock: s.clock})
	if out != nil {
		s.recordStages(out.Stages)
	}
	traceID := s.finishRunTrace(tb, out, err)
	if err != nil {
		if reason := runctx.Reason(err); reason != "" {
			// Compute budget exhausted (or client gone) — report the
			// partial progress, distinguished from estimator failure.
			s.reg.Counter(MetricComputeExhausted,
				"Factfind requests rejected with 503 because the compute budget ran out, by stop reason.",
				obs.L("reason", reason)).Inc()
			e := apiError{
				Error:   fmt.Sprintf("compute budget exhausted (%s): %v", reason, err),
				Stopped: reason,
				TraceID: traceID,
			}
			if out != nil && out.Result != nil {
				e.Iterations = out.Result.Iterations
			}
			writeJSON(w, http.StatusServiceUnavailable, e)
			return
		}
		status := http.StatusBadRequest
		if !errors.Is(err, apollo.ErrNoMessages) && !errors.Is(err, apollo.ErrGraphSize) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, apiError{Error: err.Error(), TraceID: traceID})
		return
	}

	resp := Response{
		Algorithm:  finder.Name(),
		Sources:    out.Dataset.N(),
		Assertions: out.Dataset.M(),
		Claims:     out.Dataset.NumClaims(),
		Dependent:  out.Dataset.NumDependentClaims(),
		Converged:  out.Result.Converged,
		Iterations: out.Result.Iterations,
		Stopped:    out.Result.Stopped,
		TraceID:    traceID,
	}
	for _, c := range out.Ranked {
		claimants := out.Dataset.Claimants(c)
		dep := 0
		for _, cl := range claimants {
			if cl.Dependent {
				dep++
			}
		}
		resp.Ranked = append(resp.Ranked, RankedAssertion{
			Assertion: c,
			Posterior: out.Result.Posterior[c],
			Text:      out.RepresentativeText[c],
			Claims:    len(claimants),
			Dependent: dep,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) buildInput(req Request) (apollo.Input, error) {
	if strings.EqualFold(req.Format, "twitter-json") {
		tweets, err := tweetjson.Parse(strings.NewReader(req.Archive))
		if err != nil {
			return apollo.Input{}, err
		}
		in, _, err := tweetjson.ToPipeline(tweets)
		return in, err
	}
	graph := depgraph.NewGraph(req.Sources)
	for _, e := range req.Follows {
		if err := graph.AddFollow(e[0], e[1]); err != nil {
			return apollo.Input{}, err
		}
	}
	msgs := make([]apollo.Message, len(req.Messages))
	for i, m := range req.Messages {
		msgs[i] = apollo.Message{Source: m.Source, Time: m.Time, Text: m.Text}
	}
	return apollo.Input{NumSources: req.Sources, Messages: msgs, Graph: graph}, nil
}

func pickAlgorithm(name string, opts core.Options) factfind.FactFinder {
	if name == "" {
		name = "EM-Ext"
	}
	for _, alg := range baselines.ExtendedOpts(opts) {
		if strings.EqualFold(alg.Name(), name) {
			return alg
		}
	}
	return nil
}

// discardLogger is the default when no logger is injected.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}
