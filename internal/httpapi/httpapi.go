// Package httpapi exposes the fact-finding pipeline as a small HTTP
// service: POST a message stream, get back ranked assertions with
// credibility scores. It exists for deployments that want Apollo-style
// fact-finding behind a network interface rather than a CLI.
//
// Endpoints:
//
//	GET  /healthz         — liveness probe
//	GET  /v1/algorithms   — the available fact-finder names
//	POST /v1/factfind     — run the pipeline; see Request/Response
//	GET  /metrics         — Prometheus text exposition (unless disabled)
//	GET  /debug/runs      — flight-recorder index (recent run traces)
//	GET  /debug/runs/{id} — one run's full trace JSON
//
// Every endpoint runs behind the request middleware: per-endpoint
// request/status counters, latency histograms, an in-flight gauge, and
// request-id-tagged slog access logs. /v1/factfind additionally attaches an
// obs.HookExporter to the request context, so estimator iteration records
// (EM iterations, heuristic rounds) land in the same registry the /metrics
// endpoint serves — composed via runctx.MultiHook with a trace.Builder hook
// that records the same iterations, plus the pipeline stage timings, into a
// per-request trace. Finished traces land in an in-memory flight recorder
// (bounded rings of recent completed and failed runs, served by the /debug
// endpoints) and, when Options.TraceDir is set, are appended to a JSONL
// spill file for post-mortem analysis with cmd/sstrace.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"depsense/internal/apollo"
	"depsense/internal/baselines"
	"depsense/internal/depgraph"
	"depsense/internal/obs"
	"depsense/internal/qual"
	"depsense/internal/serve"
	"depsense/internal/trace"
	"depsense/internal/tweetjson"
)

// Options tunes the server.
type Options struct {
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// DefaultTopK is the ranked output size when the request does not set
	// one (default 100).
	DefaultTopK int
	// Seed drives the estimators' initialization.
	Seed int64
	// ComputeTimeout bounds the pipeline compute per request (0 = no
	// limit). Requests that exceed it get a 503 with the progress the
	// estimator made before the deadline.
	ComputeTimeout time.Duration
	// Workers bounds the intra-request estimator parallelism (EM restart
	// fan-out). Results are bit-for-bit identical at any value; 0 or 1 runs
	// serial.
	Workers int
	// Metrics receives the server's telemetry and backs the /metrics
	// endpoint; nil creates a private registry (retrievable with
	// Server.Metrics).
	Metrics *obs.Registry
	// DisableMetrics removes the /metrics endpoint. Telemetry is still
	// recorded into the registry for programmatic access.
	DisableMetrics bool
	// Logger receives request-id-tagged access logs; nil discards them.
	Logger *slog.Logger
	// Clock supplies request/latency timestamps; nil means the wall
	// clock. Injected so middleware accounting is testable.
	Clock func() time.Time
	// TraceBuffer sets how many completed run traces the flight recorder
	// retains (failed/cancelled runs get an additional quarter-sized ring of
	// their own, at least trace.DefaultFailed). 0 selects
	// trace.DefaultCompleted.
	TraceBuffer int
	// TraceDir, when non-empty, appends every finished run trace to
	// TraceDir/traces.jsonl — the post-mortem spill read by cmd/sstrace.
	// The directory must exist; write failures are logged, never fatal.
	TraceDir string
	// CacheSize bounds the result cache in responses. 0 selects
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
	// CacheTTL bounds how long a cached response may be replayed. 0 selects
	// DefaultCacheTTL; negative means entries never expire (LRU eviction
	// still bounds the footprint).
	CacheTTL time.Duration
	// MaxInFlight caps concurrently executing pipeline computations
	// (cache hits and coalesced followers don't count — they compute
	// nothing). 0 means unlimited.
	MaxInFlight int
	// QueueDepth bounds computations waiting for a compute slot when
	// MaxInFlight is saturated; beyond it requests are shed with 429.
	// Ignored when MaxInFlight is 0; 0 means no queue (shed immediately).
	QueueDepth int
}

// Server is the HTTP facade over the Apollo pipeline.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	reg     *obs.Registry
	log     *slog.Logger
	clock   func() time.Time
	mw      *Middleware
	flight  *trace.FlightRecorder
	qual    *qual.Monitor
	spillMu sync.Mutex // serializes appends to TraceDir/traces.jsonl

	// The serving layer: results keyed by content hash, concurrent
	// identical computations coalesced, computation bounded by admission.
	cache     *serve.Cache
	coalesce  serve.Group
	admission *serve.Admission
	// algorithms is the canonical finder name list, built once so
	// per-request resolution never constructs the nine-estimator roster.
	algorithms []string
	// testComputeHook, when set by tests, runs inside the admitted compute
	// section just before the pipeline executes — used to count and block
	// leader executions deterministically.
	testComputeHook func()
}

var _ http.Handler = (*Server)(nil)

// New builds the server.
func New(opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	if opts.DefaultTopK <= 0 {
		opts.DefaultTopK = 100
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := opts.Logger
	if log == nil {
		log = discardLogger()
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{opts: opts, mux: http.NewServeMux(), reg: reg, log: log, clock: clock,
		mw: NewMiddleware(reg, log, clock)}
	s.flight = trace.NewFlightRecorder(opts.TraceBuffer, traceFailedRetention(opts.TraceBuffer))
	// Estimation-quality monitoring (internal/qual), calibration-only:
	// each request fits an unrelated dataset, so the drift detectors (which
	// assume one evolving stream) and the amortized bound tracking are off;
	// what remains — ECE, cross-estimator disagreement, posterior
	// histograms — is meaningful per computation and cheap (one Voting
	// pass). Ticks count computed (non-cached) factfind results.
	s.qual = qual.NewMonitor(qual.Options{
		DisableDrift: true,
		BoundEvery:   -1,
		Metrics:      reg,
		Clock:        clock,
		Flight:       s.flight,
	})
	cacheSize, cacheTTL := opts.CacheSize, opts.CacheTTL
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	if cacheTTL == 0 {
		cacheTTL = DefaultCacheTTL
	}
	s.cache = serve.NewCache(cacheSize, cacheTTL)
	s.admission = serve.NewAdmission(opts.MaxInFlight, opts.QueueDepth,
		reg.Gauge(MetricComputeInFlight, "Pipeline computations holding a compute slot."),
		reg.Gauge(MetricComputeQueued, "Pipeline computations queued for a compute slot."))
	s.algorithms = baselines.ExtendedNames()
	// Every route is method-restricted by methodOnly (405 + Allow header),
	// with instrumentation outermost so rejected methods stay counted.
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", methodOnly(http.MethodGet, s.handleHealthz)))
	s.mux.HandleFunc("/v1/algorithms", s.instrument("/v1/algorithms", methodOnly(http.MethodGet, s.handleAlgorithms)))
	s.mux.HandleFunc("/v1/factfind", s.instrument("/v1/factfind", methodOnly(http.MethodPost, s.handleFactFind)))
	s.mux.HandleFunc("/debug/runs", s.instrument("/debug/runs", methodOnly(http.MethodGet, s.handleRunsIndex)))
	s.mux.HandleFunc("/debug/runs/{id}", s.instrument("/debug/runs/{id}", methodOnly(http.MethodGet, s.handleRunByID)))
	s.mux.HandleFunc("/debug/quality", s.instrument("/debug/quality", methodOnly(http.MethodGet, s.handleQuality)))
	if !opts.DisableMetrics {
		s.mux.HandleFunc("/metrics", s.instrument("/metrics", methodOnly(http.MethodGet, reg.Handler().ServeHTTP)))
	}
	return s
}

// Metrics returns the server's registry, for callers that want to render or
// extend it themselves (ssserve, tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Message is one input message.
type Message struct {
	// Source is the author's dense id in [0, Sources).
	Source int `json:"source"`
	// Time orders messages (any monotone integer scale).
	Time int64 `json:"time"`
	// Text is the message body.
	Text string `json:"text"`
}

// Request is the /v1/factfind payload.
type Request struct {
	// Sources is the source id space size. Ignored (derived) for
	// format "twitter-json".
	Sources int `json:"sources"`
	// Follows lists [follower, followee] pairs.
	Follows [][2]int `json:"follows"`
	// Messages is the stream, for the default format.
	Messages []Message `json:"messages"`
	// Archive carries a raw Twitter v1.1 archive (JSONL or array) when
	// Format is "twitter-json".
	Archive string `json:"archive,omitempty"`
	// Format selects the input format: "" (messages) or "twitter-json".
	Format string `json:"format,omitempty"`
	// Algorithm names the fact-finder (default "EM-Ext").
	Algorithm string `json:"algorithm,omitempty"`
	// TopK bounds the ranked output.
	TopK int `json:"topK,omitempty"`
}

// RankedAssertion is one output row.
type RankedAssertion struct {
	Assertion int     `json:"assertion"`
	Posterior float64 `json:"posterior"`
	Text      string  `json:"text"`
	Claims    int     `json:"claims"`
	Dependent int     `json:"dependentClaims"`
}

// Response is the /v1/factfind result.
type Response struct {
	Algorithm  string `json:"algorithm"`
	Sources    int    `json:"sources"`
	Assertions int    `json:"assertions"`
	Claims     int    `json:"claims"`
	Dependent  int    `json:"dependentClaims"`
	Converged  bool   `json:"converged"`
	Iterations int    `json:"iterations"`
	// Stopped is the run's stop reason: "converged", "iteration-cap",
	// "cancelled", or "deadline".
	Stopped string `json:"stopped,omitempty"`
	// TraceID names the run trace retained by the flight recorder; fetch the
	// full record at /debug/runs/{traceID}.
	TraceID string            `json:"traceID,omitempty"`
	Ranked  []RankedAssertion `json:"ranked"`
}

type apiError struct {
	Error string `json:"error"`
	// Stopped distinguishes compute-budget failures ("deadline",
	// "cancelled") from estimator failures (empty).
	Stopped string `json:"stopped,omitempty"`
	// Iterations reports the progress made before a compute-budget
	// failure.
	Iterations int `json:"iterations,omitempty"`
	// TraceID names the run trace retained by the flight recorder, when the
	// failure happened after compute started; the post-mortem record lives at
	// /debug/runs/{traceID}.
	TraceID string `json:"traceID,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}`))
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"algorithms": s.algorithms})
}

// handleFactFind is the serving front door: decode and validate, then try
// the result cache, then coalesce into (or lead) the one pipeline run for
// this content hash. The computation itself lives in computeResult
// (serving.go), which also owns admission control and the deadline-aware
// budget check.
func (s *Server) handleFactFind(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req Request
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// An oversized body is the client exceeding the configured limit,
		// not a malformed payload: report 413 with the limit, not a
		// generic 400.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	// A conforming payload is exactly one JSON object. Trailing data (a
	// second object, stray tokens) is a malformed request — and would also
	// poison the content-hash cache key, which covers only the decoded
	// fields — so reject it instead of silently ignoring it.
	if err := dec.Decode(&json.RawMessage{}); !errors.Is(err, io.EOF) {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest,
			errors.New("decode request: unexpected data after the JSON payload"))
		return
	}

	algorithm, ok := s.canonicalAlgorithm(req.Algorithm)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", req.Algorithm))
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = s.opts.DefaultTopK
	}

	key := s.resultKey(req, algorithm, topK)
	if resp, ok := s.cachedResponse(key); ok {
		s.reg.Counter(MetricCacheHits,
			"Factfind requests answered from the result cache.").Inc()
		writeServed(w, s.replayCached(r, resp, algorithm), "hit")
		return
	}
	// Every request the cache could not answer counts as a miss — leaders
	// and coalesced followers alike — so hits + misses equals the total of
	// validated requests.
	s.reg.Counter(MetricCacheMisses,
		"Factfind requests the result cache could not answer.").Inc()

	v, shared := s.coalesce.Do(key, func() any {
		return s.computeResult(r, req, algorithm, topK, key)
	})
	res, _ := v.(*servedResult)
	if res == nil {
		writeError(w, http.StatusInternalServerError, errors.New("internal serving failure"))
		return
	}
	state := "miss"
	if shared {
		s.reg.Counter(MetricCoalesced,
			"Factfind requests that attached to an in-flight identical computation.").Inc()
		state = "coalesced"
	}
	if res.fromCache {
		// The leader's double-check found the result cached between this
		// request's miss and its election.
		state = "hit"
	}
	writeServed(w, res, state)
}

func (s *Server) buildInput(req Request) (apollo.Input, error) {
	if strings.EqualFold(req.Format, "twitter-json") {
		tweets, err := tweetjson.Parse(strings.NewReader(req.Archive))
		if err != nil {
			return apollo.Input{}, err
		}
		in, _, err := tweetjson.ToPipeline(tweets)
		return in, err
	}
	graph := depgraph.NewGraph(req.Sources)
	for _, e := range req.Follows {
		if err := graph.AddFollow(e[0], e[1]); err != nil {
			return apollo.Input{}, err
		}
	}
	msgs := make([]apollo.Message, len(req.Messages))
	for i, m := range req.Messages {
		msgs[i] = apollo.Message{Source: m.Source, Time: m.Time, Text: m.Text}
	}
	return apollo.Input{NumSources: req.Sources, Messages: msgs, Graph: graph}, nil
}

// discardLogger is the default when no logger is injected.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}
