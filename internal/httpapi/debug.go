package httpapi

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"depsense/internal/apollo"
	"depsense/internal/trace"
)

// spillFile is the JSONL file name appended inside Options.TraceDir.
const spillFile = "traces.jsonl"

// traceFailedRetention derives the failed-ring capacity from the completed
// retention: a quarter of it, never below trace.DefaultFailed, so shrinking
// -trace-buffer can't silently stop retaining the failures the operator is
// hunting.
func traceFailedRetention(completed int) int {
	if completed <= 0 {
		return trace.DefaultFailed
	}
	if f := completed / 4; f > trace.DefaultFailed {
		return f
	}
	return trace.DefaultFailed
}

// Flight returns the server's flight recorder, for programmatic access to
// retained run traces (tests, embedding servers).
func (s *Server) Flight() *trace.FlightRecorder { return s.flight }

// newRunTrace starts the per-request trace record for a factfind request:
// id shared with the access log, workload attrs, hook to be composed with
// the metrics exporter via runctx.MultiHook. The worker count is
// deliberately NOT an attr: traces are byte-identical at any Workers value
// (outside timing fields), and recording the knob itself would break that
// guarantee — the count is in the access log and server config instead.
func (s *Server) newRunTrace(r *http.Request, algorithm string) *trace.Builder {
	b := trace.NewBuilder("req-"+strconv.FormatUint(s.requestID(r), 10), "factfind", s.clock)
	b.SetAttr("algorithm", algorithm)
	b.SetAttr("seed", strconv.FormatInt(s.opts.Seed, 10))
	return b
}

// finishRunTrace seals the builder with the run outcome, records the trace
// into the flight recorder, and spills it to TraceDir when configured. It
// returns the trace id so responses can point the client at
// /debug/runs/{id}.
func (s *Server) finishRunTrace(b *trace.Builder, out *apollo.Output, err error) string {
	if out != nil {
		for _, st := range out.Stages {
			b.Stage(st.Stage, st.Duration)
		}
	}
	status := trace.StatusOf(err)
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	t := b.Finish(status, errMsg)
	s.flight.Record(t)
	s.spillTrace(t)
	return t.ID
}

// spillTrace appends one finished trace to TraceDir/traces.jsonl. Spill
// failures are an operational problem, not a request failure: they are
// logged and the request proceeds.
func (s *Server) spillTrace(t *trace.Trace) {
	if s.opts.TraceDir == "" {
		return
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	path := filepath.Join(s.opts.TraceDir, spillFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.log.Error("trace spill open failed", "path", path, "err", err)
		return
	}
	defer f.Close()
	if err := trace.Write(f, t); err != nil {
		s.log.Error("trace spill write failed", "path", path, "err", err)
	}
}

// handleRunsIndex serves GET /debug/runs: the flight recorder's index,
// newest first.
func (s *Server) handleRunsIndex(w http.ResponseWriter, r *http.Request) {
	added, evicted := s.flight.Stats()
	writeJSON(w, http.StatusOK, struct {
		Runs    []trace.Summary `json:"runs"`
		Added   uint64          `json:"added"`
		Evicted uint64          `json:"evicted"`
	}{Runs: s.flight.Index(), Added: added, Evicted: evicted})
}

// handleRunByID serves GET /debug/runs/{id}: one retained trace in full,
// iteration events and diagnostics included.
func (s *Server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.flight.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no retained trace with id "+strconv.Quote(id)))
		return
	}
	writeJSON(w, http.StatusOK, t)
}

// handleQuality serves GET /debug/quality: the estimation-quality report
// (latest verdict + cumulative alarms) over computed factfind results. 503
// before the first computed (non-cached) result.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	rep := s.qual.Report()
	if rep.Latest == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no computed result observed yet"))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
