package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"depsense/internal/trace"
)

// getJSON GETs url and decodes the JSON body into out, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

type runsIndex struct {
	Runs    []trace.Summary `json:"runs"`
	Added   uint64          `json:"added"`
	Evicted uint64          `json:"evicted"`
}

// TestDebugRunsEndpoints: a successful factfind run is announced via
// Response.TraceID and fully recoverable from the flight-recorder
// endpoints — stages, per-iteration events, and diagnostics included.
func TestDebugRunsEndpoints(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()

	req := sampleRequest()
	req.Algorithm = "EM-Ext"
	resp, body := postJSON(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factfind status %d: %s", resp.StatusCode, body)
	}
	var out Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" {
		t.Fatalf("response carries no trace id: %s", body)
	}

	var idx runsIndex
	if code := getJSON(t, ts.URL+"/debug/runs", &idx); code != http.StatusOK {
		t.Fatalf("/debug/runs status %d", code)
	}
	if len(idx.Runs) != 1 || idx.Runs[0].ID != out.TraceID || idx.Runs[0].Status != trace.StatusOK {
		t.Fatalf("index: %+v", idx)
	}
	if idx.Added != 1 || idx.Evicted != 0 {
		t.Fatalf("index counters added=%d evicted=%d, want 1/0", idx.Added, idx.Evicted)
	}

	var tr trace.Trace
	if code := getJSON(t, ts.URL+"/debug/runs/"+out.TraceID, &tr); code != http.StatusOK {
		t.Fatalf("/debug/runs/{id} status %d", code)
	}
	if tr.Name != "factfind" || tr.Status != trace.StatusOK {
		t.Fatalf("trace header: %+v", tr)
	}
	if len(tr.Stages) != 5 {
		t.Fatalf("stages: %+v", tr.Stages)
	}
	if tr.Events() == 0 || len(tr.Runs) == 0 {
		t.Fatalf("trace recorded no estimator events: %+v", tr)
	}
	// The run for the algorithm the API reported matches the response's
	// iteration count and stop reason.
	var run *trace.Run
	for _, r := range tr.Runs {
		if r.Algorithm == out.Algorithm {
			run = r
		}
	}
	if run == nil {
		t.Fatalf("no trace run for %q: %+v", out.Algorithm, tr.Runs)
	}
	if run.Iterations() != out.Iterations || run.Stopped() != out.Stopped {
		t.Fatalf("trace run iterations=%d stopped=%q, response reported %d/%q",
			run.Iterations(), run.Stopped(), out.Iterations, out.Stopped)
	}
	if tr.Diagnostics == nil || len(tr.Diagnostics.Runs) == 0 {
		t.Fatalf("no diagnostics on the retained trace: %+v", tr)
	}

	// Unknown id and wrong method.
	if code := getJSON(t, ts.URL+"/debug/runs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", code)
	}
	r2, err := http.Post(ts.URL+"/debug/runs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/runs status %d, want 405", r2.StatusCode)
	}
}

// TestDeadlineRunRecoverablePostMortem is the acceptance fixture for the
// observability loop: a request killed by the compute deadline must remain
// reconstructible after the fact — the 503 names a trace id, the flight
// recorder retains the failed trace in its error ring, and the TraceDir
// spill holds the same record on disk.
func TestDeadlineRunRecoverablePostMortem(t *testing.T) {
	dir := t.TempDir()
	ts := httptest.NewServer(New(Options{
		Seed:           1,
		ComputeTimeout: time.Nanosecond,
		TraceDir:       dir,
	}))
	defer ts.Close()

	req := sampleRequest()
	req.Algorithm = "EM-Ext"
	resp, body := postJSON(t, ts.URL, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID == "" {
		t.Fatalf("503 carries no trace id: %s", body)
	}

	// In-memory post-mortem: the failed trace is retained and marked.
	var tr trace.Trace
	if code := getJSON(t, ts.URL+"/debug/runs/"+e.TraceID, &tr); code != http.StatusOK {
		t.Fatalf("/debug/runs/%s status %d", e.TraceID, code)
	}
	if tr.Status != trace.StatusDeadline {
		t.Fatalf("retained status = %q, want %q", tr.Status, trace.StatusDeadline)
	}
	if tr.Error == "" {
		t.Fatal("retained trace has no error message")
	}

	// On-disk post-mortem: the spill file decodes to the same record.
	f, err := os.Open(filepath.Join(dir, spillFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spilled, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled) != 1 || spilled[0].ID != e.TraceID || spilled[0].Status != trace.StatusDeadline {
		t.Fatalf("spill: %+v", spilled)
	}
}

// TestHTTPTraceDeterminismAcrossWorkers is the end-to-end mirror of the
// trace-layer determinism test: the same request served at Workers: 1 and
// Workers: 4 must retain byte-identical traces once timing fields are
// stripped.
func TestHTTPTraceDeterminismAcrossWorkers(t *testing.T) {
	fetch := func(workers int) []byte {
		ts := httptest.NewServer(New(Options{Seed: 1, Workers: workers}))
		defer ts.Close()
		req := sampleRequest()
		req.Algorithm = "EM-Ext"
		resp, body := postJSON(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d status %d: %s", workers, resp.StatusCode, body)
		}
		var out Response
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		var tr trace.Trace
		if code := getJSON(t, ts.URL+"/debug/runs/"+out.TraceID, &tr); code != http.StatusOK {
			t.Fatalf("workers=%d trace fetch status %d", workers, code)
		}
		line, err := trace.Marshal(tr.StripTimings())
		if err != nil {
			t.Fatal(err)
		}
		return line
	}
	serial, parallel := fetch(1), fetch(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("Workers leaked into the retained trace:\nworkers=1: %s\nworkers=4: %s", serial, parallel)
	}
}

// TestFlightRecorderBounded: TraceBuffer caps retention while the lifetime
// counters keep the full history — memory stays bounded no matter how much
// traffic the server serves.
func TestFlightRecorderBounded(t *testing.T) {
	ts := httptest.NewServer(New(Options{Seed: 1, TraceBuffer: 2}))
	defer ts.Close()
	const requests = 5
	for i := 0; i < requests; i++ {
		resp, body := postJSON(t, ts.URL, sampleRequest())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	var idx runsIndex
	if code := getJSON(t, ts.URL+"/debug/runs", &idx); code != http.StatusOK {
		t.Fatalf("/debug/runs status %d", code)
	}
	if len(idx.Runs) != 2 {
		t.Fatalf("retained %d runs, want 2: %+v", len(idx.Runs), idx.Runs)
	}
	if idx.Added != requests || idx.Evicted != requests-2 {
		t.Fatalf("counters added=%d evicted=%d, want %d/%d", idx.Added, idx.Evicted, requests, requests-2)
	}
	// Newest first: the last two request ids survive.
	if idx.Runs[0].StartUnixNS < idx.Runs[1].StartUnixNS {
		t.Fatalf("index not newest-first: %+v", idx.Runs)
	}
}

// TestDebugRunsConcurrent hammers the flight recorder through the HTTP
// surface — factfind writers racing /debug/runs readers — and is the
// race-detector fixture for the serving path.
func TestDebugRunsConcurrent(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, body := postJSON(t, ts.URL, sampleRequest())
				if resp.StatusCode != http.StatusOK {
					t.Errorf("factfind status %d: %s", resp.StatusCode, body)
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var idx runsIndex
				if code := getJSON(t, ts.URL+"/debug/runs", &idx); code != http.StatusOK {
					t.Errorf("/debug/runs status %d", code)
					return
				}
				for _, s := range idx.Runs {
					var tr trace.Trace
					if code := getJSON(t, ts.URL+"/debug/runs/"+s.ID, &tr); code != http.StatusOK && code != http.StatusNotFound {
						t.Errorf("/debug/runs/%s status %d", s.ID, code)
					}
				}
			}
		}()
	}
	wg.Wait()

	var idx runsIndex
	if code := getJSON(t, ts.URL+"/debug/runs", &idx); code != http.StatusOK {
		t.Fatalf("/debug/runs status %d", code)
	}
	if idx.Added != 12 {
		t.Fatalf("added = %d, want 12", idx.Added)
	}
	for _, s := range idx.Runs {
		if _, err := strconv.Atoi(s.ID[len("req-"):]); err != nil {
			t.Fatalf("unexpected trace id %q", s.ID)
		}
	}
}
