package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"

	"depsense/internal/qual"
)

// TestDebugQualityEndpoint: the per-request service runs a calibration-only
// monitor — 503 before the first computed result, a report with voting-mode
// calibration after, and ticks that count computations, not cache replays.
func TestDebugQualityEndpoint(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/quality")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/debug/quality before any compute = %d, want 503", resp.StatusCode)
	}

	readReport := func() qual.Report {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/quality")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/quality = %d", resp.StatusCode)
		}
		var rep qual.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	if resp, body := postJSON(t, ts.URL, sampleRequest()); resp.StatusCode != http.StatusOK {
		t.Fatalf("factfind = %d: %s", resp.StatusCode, body)
	}
	rep := readReport()
	if rep.Ticks != 1 || rep.Latest == nil {
		t.Fatalf("report after first compute = %+v", rep)
	}
	c := rep.Latest.Calibration
	if c.Reference != "voting" || c.Assertions == 0 {
		t.Fatalf("calibration = %+v, want voting reference over the computed assertions", c)
	}
	// Per-request datasets are unrelated streams: drift and bound stay off.
	if rep.Latest.Drift != nil || rep.Latest.Bound != nil {
		t.Fatalf("per-request verdict has drift/bound: %+v", rep.Latest)
	}

	// An identical request is served from the result cache and must NOT
	// advance the monitor; a genuinely different request must.
	if resp, body := postJSON(t, ts.URL, sampleRequest()); resp.StatusCode != http.StatusOK {
		t.Fatalf("cached factfind = %d: %s", resp.StatusCode, body)
	}
	if rep := readReport(); rep.Ticks != 1 {
		t.Fatalf("ticks after cache replay = %d, want still 1", rep.Ticks)
	}
	req := sampleRequest()
	req.Algorithm = "Sums"
	if resp, body := postJSON(t, ts.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("second factfind = %d: %s", resp.StatusCode, body)
	}
	if rep := readReport(); rep.Ticks != 2 {
		t.Fatalf("ticks after second compute = %d, want 2", rep.Ticks)
	}
}
